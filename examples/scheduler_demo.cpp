// Compare CPU scheduling policies on a workload of your choosing (or a
// built-in mixed demo): Gantt charts plus the turnaround/response table.
//
//   ./build/examples/scheduler_demo
#include <cstdio>

#include "os/scheduler.hpp"

int main() {
  using namespace cs31::os;
  const std::vector<Job> jobs = {
      {"compile", 0, 24, 2},
      {"editor", 2, 3, 1},
      {"backup", 4, 12, 3},
      {"editor2", 9, 3, 1},
      {"render", 10, 8, 2},
  };

  std::printf("jobs:\n");
  for (const Job& j : jobs) {
    std::printf("  %-8s arrives %2llu, needs %2llu, priority %d\n", j.name.c_str(),
                static_cast<unsigned long long>(j.arrival),
                static_cast<unsigned long long>(j.burst), j.priority);
  }

  for (const SchedPolicy p : {SchedPolicy::Fifo, SchedPolicy::RoundRobin,
                              SchedPolicy::Sjf, SchedPolicy::Srtf,
                              SchedPolicy::Priority}) {
    const Schedule s = schedule(jobs, p, 4);
    std::printf("\n=== %s%s ===\n", policy_name(p).c_str(),
                p == SchedPolicy::RoundRobin ? " (quantum 4)" : "");
    std::printf("%s", render_gantt(s).c_str());
    std::printf("avg turnaround %.1f, avg response %.1f, avg waiting %.1f\n",
                s.avg_turnaround(), s.avg_response(), s.avg_waiting());
  }
  return 0;
}
