// Print the CS 31 curriculum as data: Table I, the module list with the
// kit libraries implementing each, the eleven labs, the twelve written
// homeworks, and the 14-week schedule — the paper's artifact, queryable.
//
//   ./build/examples/course_catalog
#include <cstdio>

#include "core/curriculum.hpp"

int main() {
  using namespace cs31::core;
  const Curriculum& course = Curriculum::cs31();

  std::printf("%s\n", course.render_table1().c_str());

  std::printf("Modules (and the kit library that implements each):\n");
  for (const CourseModule& m : course.modules()) {
    std::printf("  %-28s src/%-9s covers %zu TCPP topics\n", m.name.c_str(),
                m.kit_module.c_str(), m.topics.size());
  }

  std::printf("\nLabs:\n");
  for (const LabAssignment& lab : course.labs()) {
    std::printf("  Lab %-2d %-36s -> %s\n", lab.number, lab.title.c_str(),
                lab.kit_component.c_str());
  }

  std::printf("\nWritten homeworks:\n");
  for (const Homework& hw : course.homeworks()) {
    std::printf("  %s\n", hw.title.c_str());
  }

  std::printf("\nSemester schedule:\n");
  for (const Week& week : course.schedule()) {
    std::printf("  week %-2d %-28s", week.number, week.module.c_str());
    if (week.lab_due >= 0) std::printf("  Lab %d due", week.lab_due);
    if (!week.homework.empty()) std::printf("  HW: %s", week.homework.c_str());
    std::printf("\n");
  }

  std::printf("\nCoverage check: %zu TCPP topics, %zu uncovered.\n",
              course.topics().size(), course.uncovered_topics().size());
  return course.uncovered_topics().empty() ? 0 : 1;
}
