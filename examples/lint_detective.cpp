// lint_detective — the course's classic undefined-behaviour and
// broken-assembly bugs, caught *before* running anything, by the
// cs31::analyze static-analysis tier.
//
// The race_detective's pitch was determinism for concurrency bugs; the
// same pitch applies one layer down. "It printed garbage once" is a
// flaky demo of an uninitialized variable, and a smashed stack is a
// miserable thing to debug one stepi at a time. The analyzer's verdict
// follows from the control-flow graph, not from which stack garbage a
// run happened to inherit. Each act shows a buggy program, the
// findings, and the fixed program coming back clean.
//
// Usage: lint_detective            (runs all four acts)
#include <iostream>
#include <string>

#include "analyze/checks_c.hpp"
#include "analyze/checks_isa.hpp"
#include "analyze/diagnostic.hpp"
#include "ccomp/driver.hpp"
#include "ccomp/parser.hpp"
#include "common/error.hpp"
#include "isa/assembler.hpp"
#include "isa/debugger.hpp"
#include "isa/machine.hpp"

namespace {

void heading(const std::string& title) {
  std::cout << '\n' << std::string(66, '=') << '\n' << title << '\n'
            << std::string(66, '=') << '\n';
}

void act1_uninitialized_sum() {
  heading("Act 1 — the uninitialized accumulator (mini-C)");

  const std::string buggy =
      "int sum_to(int n) {\n"
      "  int s;\n"
      "  int i = 0;\n"
      "  while (i < n) {\n"
      "    s = s + i;\n"
      "    i = i + 1;\n"
      "  }\n"
      "  return s;\n"
      "}\n"
      "int main(int n) { return sum_to(n); }\n";
  std::cout << "\n[buggy] int s; never gets a first value:\n\n" << buggy << '\n';
  const auto diags = cs31::analyze::analyze_program(cs31::cc::parse(buggy));
  std::cout << cs31::analyze::render(diags);
  std::cout << "\n(the run would 'work' whenever the stack slot happens to hold 0 —\n"
               " the worst kind of bug; the lattice sees every path at once)\n";

  const std::string fixed =
      "int sum_to(int n) {\n"
      "  int s = 0;\n"
      "  int i = 0;\n"
      "  while (i < n) { s = s + i; i = i + 1; }\n"
      "  return s;\n"
      "}\n"
      "int main(int n) { return sum_to(n); }\n";
  const auto clean = cs31::analyze::analyze_program(cs31::cc::parse(fixed));
  std::cout << "\n[fixed] int s = 0; -> " << (clean.empty() ? "no findings\n" : "findings?!\n");
}

void act2_dead_logic() {
  heading("Act 2 — stores nobody reads, code nobody runs (mini-C)");

  const std::string buggy =
      "int classify(int x) {\n"
      "  int verdict = 0 - 1;\n"
      "  while (0) { x = x + 1; }\n"
      "  if (x >= 0) { verdict = 1; } else { verdict = 0; }\n"
      "  return verdict;\n"
      "  verdict = 99;\n"
      "}\n"
      "int main(int x) { return classify(x); }\n";
  std::cout << "\n[buggy] a pile of harmless-looking lines:\n\n" << buggy << '\n';
  const auto diags = cs31::analyze::analyze_program(cs31::cc::parse(buggy));
  std::cout << cs31::analyze::render(diags);

  const std::string fixed =
      "int classify(int x) {\n"
      "  if (x >= 0) { return 1; }\n"
      "  return 0;\n"
      "}\n"
      "int main(int x) { return classify(x); }\n";
  const auto clean = cs31::analyze::analyze_program(cs31::cc::parse(fixed));
  std::cout << "\n[fixed] the three-line version -> "
            << (clean.empty() ? "no findings\n" : "findings?!\n");
}

void act3_strict_mode() {
  heading("Act 3 — strict mode: the pipeline refuses to build bugs");

  const std::string buggy = "int main() {\n  int x;\n  return x;\n}\n";
  std::cout << "\ncompile_pipeline(source, {.werror = true}) on a use-before-init:\n\n";
  cs31::cc::PipelineOptions strict;
  strict.werror = true;
  try {
    (void)cs31::cc::compile_pipeline(buggy, strict);
    std::cout << "it compiled?!\n";
  } catch (const cs31::Error& e) {
    std::cout << e.what() << "\n\n(the default mode warns and compiles anyway;\n"
                 " -Werror is how the autograder runs it)\n";
  }
}

void act4_assembly_lint() {
  heading("Act 4 — hand-written assembly under the debugger's `lint`");

  const std::string buggy =
      "_start:\n"
      "    movl $21, %ebx\n"
      "    call doubler\n"
      "    addl %ebx, %eax\n"
      "    hlt\n"
      "doubler:\n"
      "    pushl $0\n"
      "    movl $2, %ebx\n"
      "    movl 8(%ebp), %eax\n"
      "    ret\n";
  std::cout << "\n[buggy] a student's first cdecl routine (three distinct bugs):\n\n"
            << buggy << '\n';
  const cs31::isa::Image image = cs31::isa::assemble(buggy);
  cs31::isa::Machine machine;
  machine.load(image);
  cs31::isa::Debugger dbg(machine);
  cs31::analyze::attach_lint(dbg, image);
  std::cout << "(dbg) lint\n" << dbg.execute("lint");
  std::cout << "\n(stepping into that ret would teach the same lesson in twenty\n"
               " minutes; the depth lattice teaches it in zero)\n";

  const std::string fixed =
      "_start:\n"
      "    movl $21, %ebx\n"
      "    call doubler\n"
      "    addl %eax, %eax\n"
      "    hlt\n"
      "doubler:\n"
      "    pushl %ebx\n"
      "    movl $2, %ebx\n"
      "    movl %ebx, %eax\n"
      "    popl %ebx\n"
      "    ret\n";
  const cs31::isa::Image fixed_image = cs31::isa::assemble(fixed);
  cs31::isa::Machine machine2;
  machine2.load(fixed_image);
  cs31::isa::Debugger dbg2(machine2);
  cs31::analyze::attach_lint(dbg2, fixed_image);
  std::cout << "\n[fixed] save %ebx, balance the stack:\n(dbg) lint\n"
            << dbg2.execute("lint");
}

}  // namespace

int main() {
  std::cout << "lint_detective: the static-analysis tier on the course's bug parade\n";
  act1_uninitialized_sum();
  act2_dead_logic();
  act3_strict_mode();
  act4_assembly_lint();
  std::cout << "\nAll acts done. The same passes run on every compile (mini_c),\n"
               "on demand in the debugger (`lint`), and over the whole sample set\n"
               "in ctest (analyze_selflint_smoke).\n";
  return 0;
}
