// race_detective — the lecture's buggy/fixed program pairs, run through
// the cs31::race happens-before detector.
//
// The CS 31 synchronization module teaches races by *showing* them:
// the shared counter that "usually returns less", the Game of Life
// that corrupts without its barrier, the fork-homework's "which outputs
// are possible?". Statistically observing a race is flaky (a fast or
// single-core machine can hide it for a whole demo); the detector makes
// the verdict deterministic — it follows from the happens-before
// structure, not the scheduler's mood. Each act below runs a buggy
// variant and its fix and prints the detector's reports.
//
// Usage: race_detective            (runs all three acts)
#include <cstddef>
#include <iostream>
#include <string>
#include <vector>

#include "life/life.hpp"
#include "life/traced.hpp"
#include "parallel/sync.hpp"
#include "race/replay.hpp"

namespace {

void heading(const std::string& title) {
  std::cout << '\n' << std::string(66, '=') << '\n' << title << '\n'
            << std::string(66, '=') << '\n';
}

void act1_shared_counter() {
  using cs31::parallel::SharedCounter;
  heading("Act 1 — the shared counter (two threads, 1000 increments each)");

  std::cout << "\n[buggy] counter = counter + 1, no lock:\n";
  const auto buggy = SharedCounter::run_traced(SharedCounter::Mode::Unsynchronized, 2, 1000);
  std::cout << "  final count: " << buggy.value << " (exact would be 2000)\n"
            << buggy.report << '\n';

  std::cout << "\n[fixed] same loop with a mutex around the increment:\n";
  const auto fixed =
      SharedCounter::run_traced(SharedCounter::Mode::MutexPerIncrement, 2, 1000);
  std::cout << "  final count: " << fixed.value << '\n' << "  " << fixed.report << '\n';
}

void act2_game_of_life() {
  heading("Act 2 — parallel Game of Life (3 bands, 3 generations)");
  const cs31::life::Grid initial = cs31::life::Grid::random(12, 12, 0.3, 2022);

  std::cout << "\n[fixed] Lab 10 structure: compute, barrier, serial swap, barrier:\n";
  const auto good = cs31::life::traced_life_check(initial, 3, 3, /*use_barrier=*/true);
  std::cout << "  " << good.report << '\n';

  std::cout << "\n[buggy] same run with the barriers deleted:\n";
  const auto bad = cs31::life::traced_life_check(initial, 3, 3, /*use_barrier=*/false);
  std::cout << "  " << bad.races.size() << " distinct races; the first:\n"
            << bad.races.front().to_string() << '\n';
}

void act3_replay() {
  using namespace cs31::race;
  heading("Act 3 — every schedule of the homework's two processes");

  const std::vector<std::vector<std::string>> unlocked = {
      {"read balance", "write balance"},
      {"read balance", "write balance"},
  };
  const auto racy = summarize(replay_all_interleavings(unlocked));
  std::cout << "\n[buggy] both threads: read balance; write balance (no lock)\n"
            << "  " << racy.racy << " of " << racy.schedules
            << " schedules expose a race — the \"possible outputs\" homework\n"
            << "  and race detection are the same question.\n";

  // Show one flagged schedule end to end.
  const auto results = replay_all_interleavings(unlocked);
  for (const auto& r : results) {
    if (r.race_free()) continue;
    std::cout << "  one racy schedule:\n";
    for (const auto& op : r.schedule) std::cout << "    " << op << '\n';
    std::cout << r.races.front().to_string() << '\n';
    break;
  }

  const std::vector<std::vector<std::string>> locked = {
      {"lock m", "read balance", "write balance", "unlock m"},
      {"lock m", "read balance", "write balance", "unlock m"},
  };
  const auto clean = summarize(replay_all_interleavings(locked));
  std::cout << "\n[fixed] with lock m around each section:\n"
            << "  " << clean.clean() << " of " << clean.schedules
            << " schedules are race-free — exactly the two the mutex permits\n"
            << "  (the other " << clean.racy
            << " interleave inside the critical sections, which a real\n"
            << "  mutex forbids: the enumerator over-approximates, and the\n"
            << "  detector shows why those schedules must be excluded).\n";
}

}  // namespace

int main() {
  std::cout << "race_detective — vector-clock happens-before detection for CS 31\n";
  act1_shared_counter();
  act2_game_of_life();
  act3_replay();
  std::cout << "\nAll three acts: the bug is a missing happens-before edge;\n"
               "the fix (lock, barrier, or channel) is that edge.\n";
  return 0;
}
