// race_detective — the lecture's buggy/fixed program pairs, run through
// the cs31::race happens-before detector.
//
// The CS 31 synchronization module teaches races by *showing* them:
// the shared counter that "usually returns less", the Game of Life
// that corrupts without its barrier, the fork-homework's "which outputs
// are possible?". Statistically observing a race is flaky (a fast or
// single-core machine can hide it for a whole demo); the detector makes
// the verdict deterministic — it follows from the happens-before
// structure, not the scheduler's mood. Each act below runs a buggy
// variant and its fix and prints the detector's reports.
//
// Usage: race_detective            (runs all eight acts)
#include <chrono>
#include <cstddef>
#include <iomanip>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "analyze/checks_script.hpp"
#include "life/life.hpp"
#include "life/traced.hpp"
#include "parallel/sync.hpp"
#include "parallel/threads.hpp"
#include "race/explore.hpp"
#include "race/lockset.hpp"
#include "race/replay.hpp"
#include "trace/context.hpp"
#include "trace/instrumented.hpp"
#include "trace/pipeline.hpp"

namespace {

void heading(const std::string& title) {
  std::cout << '\n' << std::string(66, '=') << '\n' << title << '\n'
            << std::string(66, '=') << '\n';
}

void act1_shared_counter() {
  using cs31::parallel::SharedCounter;
  heading("Act 1 — the shared counter (two threads, 1000 increments each)");

  std::cout << "\n[buggy] counter = counter + 1, no lock:\n";
  const auto buggy = SharedCounter::run_traced(SharedCounter::Mode::Unsynchronized, 2, 1000);
  std::cout << "  final count: " << buggy.value << " (exact would be 2000)\n"
            << buggy.report << '\n';

  std::cout << "\n[fixed] same loop with a mutex around the increment:\n";
  const auto fixed =
      SharedCounter::run_traced(SharedCounter::Mode::MutexPerIncrement, 2, 1000);
  std::cout << "  final count: " << fixed.value << '\n' << "  " << fixed.report << '\n';
}

void act2_game_of_life() {
  heading("Act 2 — parallel Game of Life (3 bands, 3 generations)");
  const cs31::life::Grid initial = cs31::life::Grid::random(12, 12, 0.3, 2022);

  std::cout << "\n[fixed] Lab 10 structure: compute, barrier, serial swap, barrier:\n";
  const auto good = cs31::life::traced_life_check(initial, 3, 3, /*use_barrier=*/true);
  std::cout << "  " << good.report << '\n';

  std::cout << "\n[buggy] same run with the barriers deleted:\n";
  const auto bad = cs31::life::traced_life_check(initial, 3, 3, /*use_barrier=*/false);
  std::cout << "  " << bad.races.size() << " distinct races; the first:\n"
            << bad.races.front().to_string() << '\n';
}

void act3_replay() {
  using namespace cs31::race;
  heading("Act 3 — every schedule of the homework's two processes");

  const std::vector<std::vector<std::string>> unlocked = {
      {"read balance", "write balance"},
      {"read balance", "write balance"},
  };
  const auto racy = summarize(replay_all_interleavings(unlocked));
  std::cout << "\n[buggy] both threads: read balance; write balance (no lock)\n"
            << "  " << racy.racy << " of " << racy.schedules
            << " schedules expose a race — the \"possible outputs\" homework\n"
            << "  and race detection are the same question.\n";

  // Show one flagged schedule end to end.
  const auto results = replay_all_interleavings(unlocked);
  for (const auto& r : results) {
    if (r.race_free()) continue;
    std::cout << "  one racy schedule:\n";
    for (const auto& op : r.schedule) std::cout << "    " << op << '\n';
    std::cout << r.races.front().to_string() << '\n';
    break;
  }

  const std::vector<std::vector<std::string>> locked = {
      {"lock m", "read balance", "write balance", "unlock m"},
      {"lock m", "read balance", "write balance", "unlock m"},
  };
  const auto clean = summarize(replay_all_interleavings(locked));
  std::cout << "\n[fixed] with lock m around each section:\n"
            << "  " << clean.clean() << " of " << clean.schedules
            << " schedules are race-free — exactly the two the mutex permits\n"
            << "  (the other " << clean.racy
            << " interleave inside the critical sections, which a real\n"
            << "  mutex forbids: the enumerator over-approximates, and the\n"
            << "  detector shows why those schedules must be excluded).\n";
}

// Two detectives on the same evidence. Everything above used the
// happens-before detector; Eraser's lockset algorithm is the other
// classic, and the TraceContext lets both consume the identical
// real-thread event stream. Where the program's discipline is "one lock
// per shared variable" they agree; where the discipline is a barrier,
// lockset cries wolf — it has no notion of ordering, only of locks —
// and happens-before correctly stays quiet. That false positive *is*
// the lecture point: the two algorithms check different invariants.
void act4_two_detectives() {
  using cs31::parallel::ThreadTeam;
  using cs31::race::LocksetDetector;
  using cs31::trace::TraceContext;
  using cs31::trace::TracedMutex;
  using cs31::trace::TracedVar;
  heading("Act 4 — two detectives on real threads: happens-before vs lockset");

  const auto verdicts = [](const TraceContext& ctx, const LocksetDetector& lockset) {
    std::cout << "    happens-before: "
              << (ctx.detector().race_free()
                      ? "race-free"
                      : std::to_string(ctx.detector().races().size()) + " race(s)")
              << "\n    lockset:        "
              << (lockset.race_free()
                      ? "race-free"
                      : std::to_string(lockset.races().size()) + " report(s)")
              << '\n';
  };

  std::cout << "\n[agree: buggy] 2 real threads, counter = counter + 1, no lock:\n";
  {
    TraceContext ctx;
    LocksetDetector lockset;
    ctx.attach_sink(lockset);
    TracedVar<int> counter("counter", ctx);
    ThreadTeam team(2, ctx, [&](std::size_t) {
      for (int i = 0; i < 50; ++i) counter.store(counter.load() + 1);
    });
    team.join();
    ctx.flush();
    verdicts(ctx, lockset);
  }

  std::cout << "\n[agree: fixed] same loop with a mutex around the increment:\n";
  {
    TraceContext ctx;
    LocksetDetector lockset;
    ctx.attach_sink(lockset);
    TracedVar<int> counter("counter", ctx);
    TracedMutex mutex("counter_lock", ctx);
    ThreadTeam team(2, ctx, [&](std::size_t) {
      for (int i = 0; i < 50; ++i) {
        std::scoped_lock hold(mutex);
        counter.store(counter.load() + 1);
      }
    });
    team.join();
    ctx.flush();
    verdicts(ctx, lockset);
  }

  std::cout << "\n[disagree] barrier-synchronized Life, 3 real threads, 2 rounds:\n";
  {
    TraceContext ctx;
    LocksetDetector lockset;
    ctx.attach_sink(lockset);
    cs31::life::ParallelLife life(cs31::life::Grid::random(12, 12, 0.3, 2022), 3);
    life.run(2, {.ctx = &ctx});
    ctx.flush();
    verdicts(ctx, lockset);
    std::cout << "  lockset's first report (a FALSE positive — the barrier is the\n"
                 "  synchronization, but Eraser only understands locks):\n"
              << lockset.races().front().to_string() << '\n';
  }
}

// The detective's back office. Acts 1-4 ran analysis *inline*: the
// draining thread replayed every event through the detector while the
// workers waited. Act 5 moves the detective off the critical path — the
// drain publishes batches to a bounded queue, a router broadcasts sync
// events and shards accesses by variable, and N workers analyze private
// slices of FastTrack shadow state. Partitioning the work is the
// McKenney lesson; the punchline is that the verdict is byte-identical
// to the inline one, whatever the shard count.
void act5_pipelined_analysis() {
  using cs31::life::TracedLifeOptions;
  using cs31::trace::AnalysisPipeline;
  heading("Act 5 — the off-critical-path detective (sharded pipeline)");
  const cs31::life::Grid initial = cs31::life::Grid::random(12, 12, 0.3, 2022);

  const auto inline_verdict = cs31::life::traced_life_check(initial, 3, 3, false);
  std::cout << "\n[inline]   barrier-less Life: " << inline_verdict.races.size()
            << " distinct races over " << inline_verdict.events << " events\n";

  for (const std::size_t shards : {1, 2, 4}) {
    AnalysisPipeline pipeline(
        AnalysisPipeline::Options{.shards = shards, .queue_capacity = 4});
    TracedLifeOptions options;
    options.use_barrier = false;
    options.pipeline = &pipeline;
    const auto piped = cs31::life::traced_life_check(initial, 3, 3, options);
    std::cout << "[" << shards << " shard" << (shards == 1 ? "] " : "s]")
              << " same run, analyzed off-thread: " << piped.races.size()
              << " races, report " << (piped.report == inline_verdict.report
                                           ? "byte-identical to inline"
                                           : "DIFFERS (bug!)")
              << '\n';
  }
  std::cout << "  the shards never share mutable state: sync events broadcast so\n"
               "  every shard holds the same happens-before clocks; each variable's\n"
               "  shadow state lives on exactly one shard; the merge re-sorts\n"
               "  reports into inline detection order.\n";
}

// Act 6 turns the detective on itself. Recording an event must not
// reorder the program being watched — but the original capture design
// pushed every sync event through ONE mutex-ordered stream, so four
// threads that never share a lock still queued up behind the recorder.
// The lock-free design records each sync into its thread's own buffer,
// stamped from an atomic counter while the traced primitive is held; a
// drain-time merge rebuilds the exact total order. Same verdict bytes,
// no recorder-induced serialization — measured here, live.
void act6_lockfree_capture() {
  using cs31::trace::CaptureMode;
  using cs31::trace::TraceContext;
  heading("Act 6 — the detective's own lock: mutex-stream vs lock-free capture");
  constexpr std::size_t kThreads = 4;
  constexpr int kIters = 20000;

  std::cout << "\n" << kThreads << " threads, each locking its OWN mutex " << kIters
            << " times — zero real contention,\nso any serialization is the recorder's "
               "fault:\n\n";

  std::string summaries[2];
  for (const CaptureMode mode : {CaptureMode::mutex_stream, CaptureMode::lockfree}) {
    const auto start = std::chrono::steady_clock::now();
    TraceContext ctx(TraceContext::Options{.capture = mode});
    std::vector<std::unique_ptr<cs31::trace::TracedMutex>> mutexes;
    for (std::size_t t = 0; t < kThreads; ++t) {
      std::string name = "m";
      name += std::to_string(t);
      mutexes.push_back(std::make_unique<cs31::trace::TracedMutex>(name, ctx));
    }
    cs31::parallel::ThreadTeam team(kThreads, ctx, [&](std::size_t who) {
      for (int i = 0; i < kIters; ++i) {
        mutexes[who]->lock();
        mutexes[who]->unlock();
      }
    });
    team.join();
    ctx.flush();
    const double ms =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count() *
        1e3;
    const bool lockfree = mode == CaptureMode::lockfree;
    summaries[lockfree ? 1 : 0] = ctx.detector().summary();
    std::cout << (lockfree ? "[lock-free]    " : "[mutex-stream] ") << std::fixed
              << std::setprecision(1) << ms << " ms for "
              << ctx.events_captured() << " sync events"
              << (lockfree ? "  (per-thread buffers + atomic stamps)\n"
                           : "  (every sync through one global mutex)\n");
  }
  std::cout << "  verdicts "
            << (summaries[0] == summaries[1] ? "byte-identical" : "DIFFER (bug!)")
            << ": the merge reconstructs the mutex-stream's exact total order\n"
               "  from (stamp, per-object seq) pairs — the certificate cannot tell\n"
               "  the designs apart, only the threads' wall clock can.\n";
}

// Act 3 replayed every interleaving, which stops scaling almost
// immediately (2 threads x 10 ops each is already 184756 schedules).
// Act 7 is the escape hatch: swapping two adjacent INDEPENDENT ops
// cannot change the verdict, so the DPOR explorer replays one
// representative per equivalence class — same distinct races, a
// vanishing fraction of the schedules — and keeps an honest budget for
// spaces too big to ever finish.
void act7_explorer() {
  using namespace cs31::race;
  heading("Act 7 — exploring without enumerating (detector-guided DPOR)");

  // Two mostly-independent threads (a and b are thread-private) around
  // one under-synchronized shared z: C(14,7) = 3432 interleavings.
  const std::vector<std::vector<std::string>> scripts = {
      {"read a", "write a", "lock m", "write z", "unlock m", "read a", "write a"},
      {"read b", "write b", "read z", "write z", "read b", "write b", "write b"},
  };
  const auto exhaustive = summarize(replay_all_interleavings(scripts, 10000));
  const auto reduced = explore_races(scripts);
  std::cout << "\n[exhaustive] " << exhaustive.schedules << " schedules replayed, "
            << exhaustive.distinct << " distinct races\n"
            << "[explorer]   " << reduced.summary() << '\n'
            << "  same " << reduced.races.size() << " races, "
            << reduced.schedules_replayed << " of " << exhaustive.schedules
            << " schedules replayed: every skipped schedule only reorders\n"
            << "  independent ops, so it could not have changed the verdict.\n";

  // The space the exhaustive path can never touch: 4 threads x ~40 ops,
  // interleaving count past uint64. Budgeted + hinted, the explorer
  // confirms the planted race in the FIRST schedule it replays and
  // reports its coverage honestly instead of pretending.
  std::vector<std::vector<std::string>> monster(4);
  for (std::size_t t = 0; t < 4; ++t) {
    std::string private_op = "write p";
    private_op += std::to_string(t);
    for (int i = 0; i < 20; ++i) monster[t].push_back(private_op);
    monster[t].push_back("lock m0");
    monster[t].push_back("write guarded");
    monster[t].push_back("unlock m0");
    if (t < 2) monster[t].push_back("write shared_total");
    for (int i = 0; i < 20; ++i) monster[t].push_back(private_op);
  }
  ExploreOptions budget;
  budget.max_schedules = 25;
  RaceReport hint;  // "yesterday's report": re-confirm it cheaply today
  hint.variable = "shared_total";
  hint.first.where = "t0 write shared_total";
  hint.second.where = "t1 write shared_total";
  budget.hints.push_back(hint);
  const auto big = explore_races(monster, budget);
  std::cout << "\n[over the wall] 4 threads, 174 ops, hinted by a prior report:\n"
            << "  " << big.summary() << '\n'
            << "  the hint steered schedule 0 straight onto the known race;\n"
            << "  \"budget hit\" says the sweep is partial — no false confidence.\n";
}

// Act 4's lockset detective was DYNAMIC — Eraser watched one execution
// and checked which locks were held at each access. Act 8's detective
// never runs the program at all: analyze_scripts abstractly interprets
// the script text, computes the MUST-HOLD lockset at every access (plus
// barrier epochs and a wait-order graph), and predicts the races and
// deadlocks before a single schedule is replayed. Then the dynamic tier
// confirms each prediction — and the static facts (guarded variables,
// pure-guard mutexes) feed back to prune the exploration itself.
void act8_static_first() {
  using namespace cs31::race;
  heading("Act 8 — predict, then run: the static lockset detective");

  // The forgotten lock, again — but this time nothing executes.
  const std::vector<std::vector<std::string>> buggy = {
      {"lock m", "read counter", "write counter", "unlock m"},
      {"write counter"},
  };
  const auto prediction = cs31::analyze::analyze_scripts(buggy);
  std::cout << "\n[buggy] t1 forgets the lock; the analyzer reads the script, not a trace:\n";
  for (const auto& d : prediction.diagnostics) std::cout << "  " << d.to_string() << '\n';

  const auto confirmed =
      explore_races(buggy, cs31::analyze::seed_explore_options(prediction));
  bool all_predicted = true;
  for (const auto& race : confirmed.races) {
    all_predicted = all_predicted &&
                    prediction.covers_race(race.variable, race.first.where,
                                           race.second.where);
  }
  std::cout << "  dynamic confirmation: " << confirmed.races.size() << " race(s), "
            << (all_predicted ? "every one" : "NOT every one (bug!)")
            << " a static candidate — the subset\n"
               "  relation the tier-1 differential asserts over 1000 random scripts.\n";

  // The fix is visible statically too — and the proof is not wasted:
  // a consistently-guarded variable and a pure-guard mutex become
  // independence facts that shrink the DPOR tree.
  const std::vector<std::vector<std::string>> fixed = {
      {"lock m", "read counter", "write counter", "unlock m"},
      {"lock m", "write counter", "unlock m"},
  };
  const auto clean = cs31::analyze::analyze_scripts(fixed);
  std::cout << "\n[fixed] both accesses hold m. Static verdict: "
            << (clean.may_race() ? "candidates remain (bug!)" : "no race candidates")
            << ";\n  proven facts: ";
  for (const auto& [var, guard] : clean.guarded_vars) {
    std::cout << "'" << var << "' guarded by '" << guard << "'";
  }
  std::cout << (clean.independent_mutexes.empty() ? "" : "; pure-guard mutexes: ");
  for (const auto& m : clean.independent_mutexes) std::cout << "'" << m << "'";
  ExploreOptions plain;
  plain.model_blocking = true;
  const auto unpruned = explore_races(fixed, plain);
  const auto pruned = explore_races(fixed, cs31::analyze::seed_explore_options(clean));
  std::cout << "\n  exploration with those facts: " << pruned.schedules_replayed
            << " schedule(s) instead of " << unpruned.schedules_replayed
            << " — two critical\n"
               "  sections of a pure guard commute, so one acquisition order suffices —\n"
               "  and the verdict is still "
            << (pruned.races.empty() && unpruned.races.empty() ? "race-free"
                                                               : "DIFFERENT (bug!)")
            << " either way.\n";

  // Act 4's trap, revisited: Eraser flagged correct barrier code because
  // it only understands locks. The static pass tracks barrier EPOCHS
  // alongside locksets, so the ordering Eraser cannot see is right there
  // in the model.
  const std::vector<std::vector<std::string>> barriered = {
      {"write cell", "barrier"},
      {"barrier", "read cell"},
  };
  const auto quiet = cs31::analyze::analyze_scripts(barriered);
  std::cout << "\n[Act 4's trap] writer before the barrier, reader after it:\n"
            << "  dynamic lockset (Act 4): false positive — disjoint locksets, no idea\n"
               "  about ordering. Static analyzer: "
            << (quiet.may_race() ? "candidates (bug!)"
                                 : "no candidates — the accesses sit in\n"
                                   "  different barrier epochs, which order them in "
                                   "every schedule.")
            << '\n';

  // Deadlocks get the same treatment: the ABBA nest is a cycle in the
  // static lock-order graph, and the blocking-aware search reaches the
  // stuck state it predicts.
  const std::vector<std::vector<std::string>> abba = {
      {"lock a", "lock b", "unlock b", "unlock a"},
      {"lock b", "lock a", "unlock a", "unlock b"},
  };
  const auto cyclic = cs31::analyze::analyze_scripts(abba);
  std::cout << "\n[ABBA] opposite nesting orders on two mutexes:\n";
  for (const auto& d : cyclic.diagnostics) std::cout << "  " << d.to_string() << '\n';
  const auto stuck = find_deadlocks(abba);
  std::cout << "  dynamic confirmation: " << stuck.deadlocks.size()
            << " reachable stuck state(s); the witness schedule:\n";
  for (const auto& op : stuck.deadlocks.front().witness) std::cout << "    " << op << '\n';
  for (const auto& w : stuck.deadlocks.front().waiting) std::cout << "    [stuck] " << w << '\n';
}

}  // namespace

int main() {
  std::cout << "race_detective — vector-clock happens-before detection for CS 31\n";
  act1_shared_counter();
  act2_game_of_life();
  act3_replay();
  act4_two_detectives();
  act5_pipelined_analysis();
  act6_lockfree_capture();
  act7_explorer();
  act8_static_first();
  std::cout << "\nActs 1-3: the bug is a missing happens-before edge;\n"
               "the fix (lock, barrier, or channel) is that edge.\n"
               "Act 4: an algorithm that can't see that edge (Eraser's lockset)\n"
               "calls correct barrier code racy — check what invariant your\n"
               "detector actually checks.\n"
               "Acts 5-6: the detective must neither slow the program down nor\n"
               "reorder it — analysis moves off-thread, capture goes lock-free,\n"
               "and the verdict bytes never change.\n"
               "Act 7: don't enumerate the schedule space, explore it — one\n"
               "representative per equivalence class is the same evidence.\n"
               "Act 8: predict before you run — the static locksets that flag the\n"
               "bug are the same facts that prune the dynamic search, and every\n"
               "dynamic finding arrives pre-explained by a static candidate.\n";
  return 0;
}
