// The Binary Maze (Lab 5), playable: generates a maze, shows the
// disassembly students would read in GDB, demonstrates a debugger
// session on the first floor, and then plays guesses supplied on the
// command line (or, with --solve, the derived solutions).
//
//   ./build/examples/binary_maze              # show the maze + a debug session
//   ./build/examples/binary_maze --solve      # watch all floors fall
//   ./build/examples/binary_maze 1234 777 ... # your own guesses, floor by floor
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "analyze/checks_isa.hpp"
#include "isa/debugger.hpp"
#include "isa/maze.hpp"

int main(int argc, char** argv) {
  using namespace cs31::isa;
  const Maze maze(5, 0xC0FFEE);

  std::printf("Welcome to the Binary Maze: %u floors between you and daylight.\n\n",
              maze.floors());
  std::printf("The disassembly (what `disas` shows in the debugger):\n");
  for (const DisasmLine& line : disassemble(maze.image())) {
    if (!line.label.empty()) std::printf("%s:\n", line.label.c_str());
    std::printf("   0x%x:\t%s\n", line.address, line.text.c_str());
  }

  std::printf("\n--- a debugger session on floor_0 (the workflow of Lab 5) ---\n");
  Machine machine;
  machine.load(maze.image());
  machine.set_reg(Reg::Eip, maze.image().symbol("floor_0"));
  machine.set_reg(Reg::Eax, 42);  // a guess
  Debugger dbg(machine);
  cs31::analyze::attach_lint(dbg, maze.image());
  // Lint before stepping: a clean bill of health means every BOOM ahead
  // is a wrong guess, not a broken binary.
  std::printf("(maze) lint\n%s", dbg.execute("lint").c_str());
  std::printf("(maze) disas\n%s", dbg.disas(0, 2).c_str());
  std::printf("(maze) stepi\n%s", dbg.execute("stepi").c_str());
  std::printf("(maze) info registers\n%s", dbg.execute("info registers").c_str());
  std::printf("--- the cmpl operand above IS the secret; that's the lab's aha ---\n\n");

  std::vector<std::uint32_t> guesses;
  if (argc > 1 && std::strcmp(argv[1], "--solve") == 0) {
    for (unsigned k = 0; k < maze.floors(); ++k) guesses.push_back(maze.solution(k));
  } else {
    for (int i = 1; i < argc; ++i) {
      guesses.push_back(static_cast<std::uint32_t>(std::strtoul(argv[i], nullptr, 0)));
    }
  }
  if (guesses.empty()) {
    std::printf("No guesses given. Re-run with guesses as arguments, or --solve.\n");
    return 0;
  }

  unsigned floor = 0;
  for (; floor < maze.floors() && floor < guesses.size(); ++floor) {
    const AttemptResult r = maze.attempt(floor, guesses[floor]);
    std::printf("floor %u: guess %u -> %s (%zu instructions)\n", floor, guesses[floor],
                r.passed ? "PASS" : "BOOM", r.instructions);
    if (!r.passed) break;
  }
  if (floor == maze.floors()) {
    std::printf("\nYou escaped the maze!\n");
    return 0;
  }
  std::printf("\nYou made it past %u floor(s). Fire up the debugger and look again.\n",
              floor);
  return 1;
}
