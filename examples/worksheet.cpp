// Generate a CS 31 practice worksheet and its machine-computed answer
// key (the weekly written homeworks of the paper, self-grading).
//
//   ./build/examples/worksheet [seed]
#include <cstdio>
#include <cstdlib>

#include "homework/homework.hpp"

int main(int argc, char** argv) {
  const std::uint32_t seed =
      argc > 1 ? static_cast<std::uint32_t>(std::strtoul(argv[1], nullptr, 0)) : 31;
  const cs31::homework::Worksheet sheet = cs31::homework::render_worksheet(seed);
  std::printf("%s\n", sheet.problems.c_str());
  std::printf("------------------------------------------------------------\n\n");
  std::printf("%s", sheet.answer_key.c_str());
  return 0;
}
