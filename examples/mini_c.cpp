// The vertical slice, live: write C, watch the compiler lower it to the
// stack-frame assembly the course teaches, then run it on the emulated
// machine. Pass a filename to compile your own mini-C program (main may
// take int arguments, supplied after the filename).
//
// The compiler front door runs cs31::analyze on every compile: warnings
// (use-before-init, dead stores, unreachable code, constant conditions,
// missing returns) print before the assembly; --werror makes them fatal
// and --no-analyze turns the stage off.
//
//   ./build/examples/mini_c                 # built-in demo
//   ./build/examples/mini_c prog.c 6        # your file, main(6)
//   ./build/examples/mini_c --werror prog.c # refuse to run buggy code
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analyze/diagnostic.hpp"
#include "ccomp/codegen.hpp"
#include "ccomp/driver.hpp"
#include "common/error.hpp"

namespace {

const char* kDemo = R"(
// Count the set bits of n, then square the count.
int popcount(int n) {
    int count = 0;
    while (n != 0) {
        count = count + (n & 1);
        n = (n >> 1) & 2147483647;   // logical shift via masking
    }
    return count;
}

int square(int x) { return x * x; }

int main(int n) {
    return square(popcount(n));
}
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace cs31::cc;

  PipelineOptions options;
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--werror") {
      options.werror = true;
    } else if (arg == "--no-analyze") {
      options.analyze = false;
    } else {
      positional.push_back(argv[i]);
    }
  }

  std::string source = kDemo;
  std::vector<std::int32_t> args = {0x3F};  // six set bits -> returns 36
  if (!positional.empty()) {
    std::ifstream in(positional[0]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", positional[0]);
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    source = buf.str();
    args.clear();
    for (std::size_t i = 1; i < positional.size(); ++i) {
      args.push_back(static_cast<std::int32_t>(std::strtol(positional[i], nullptr, 0)));
    }
  }

  std::printf("=== mini-C source ===\n%s\n", source.c_str());
  std::string assembly;
  try {
    const PipelineResult compiled = compile_pipeline(source, options);
    if (!compiled.diagnostics.empty()) {
      std::printf("=== analysis ===\n%s\n",
                  cs31::analyze::render(compiled.diagnostics).c_str());
    }
    assembly = compiled.assembly;
  } catch (const cs31::Error& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  std::printf("=== compiled IA-32 subset (AT&T) ===\n%s\n", assembly.c_str());

  std::printf("=== running main(");
  for (std::size_t i = 0; i < args.size(); ++i) {
    std::printf("%s%d", i ? ", " : "", args[i]);
  }
  std::printf(") on the emulated machine ===\n");
  const std::int32_t result = run_mini_c(source, args);
  std::printf("main returned %d\n", result);
  return 0;
}
