// The vertical slice, live: write C, watch the compiler lower it to the
// stack-frame assembly the course teaches, then run it on the emulated
// machine. Pass a filename to compile your own mini-C program (main may
// take int arguments, supplied after the filename).
//
//   ./build/examples/mini_c                 # built-in demo
//   ./build/examples/mini_c prog.c 6        # your file, main(6)
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "ccomp/codegen.hpp"

namespace {

const char* kDemo = R"(
// Count the set bits of n, then square the count.
int popcount(int n) {
    int count = 0;
    while (n != 0) {
        count = count + (n & 1);
        n = (n >> 1) & 2147483647;   // logical shift via masking
    }
    return count;
}

int square(int x) { return x * x; }

int main(int n) {
    return square(popcount(n));
}
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace cs31::cc;

  std::string source = kDemo;
  std::vector<std::int32_t> args = {0x3F};  // six set bits -> returns 36
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    source = buf.str();
    args.clear();
    for (int i = 2; i < argc; ++i) {
      args.push_back(static_cast<std::int32_t>(std::strtol(argv[i], nullptr, 0)));
    }
  }

  std::printf("=== mini-C source ===\n%s\n", source.c_str());
  const std::string assembly = compile_to_assembly(source);
  std::printf("=== compiled IA-32 subset (AT&T) ===\n%s\n", assembly.c_str());

  std::printf("=== running main(");
  for (std::size_t i = 0; i < args.size(); ++i) {
    std::printf("%s%d", i ? ", " : "", args[i]);
  }
  std::printf(") on the emulated machine ===\n");
  const std::int32_t result = run_mini_c(source, args);
  std::printf("main returned %d\n", result);
  return 0;
}
