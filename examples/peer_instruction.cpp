// Simulate one peer-instruction class session (the paper's pedagogy:
// individual clicker vote -> small-group discussion -> second vote),
// printing per-topic first/second-round correctness and the normalized
// gain.
//
//   ./build/examples/peer_instruction [seed]
#include <cstdio>
#include <cstdlib>

#include "pedagogy/peer.hpp"

int main(int argc, char** argv) {
  using namespace cs31;
  pedagogy::SessionConfig cfg;
  if (argc > 1) cfg.seed = static_cast<std::uint32_t>(std::strtoul(argv[1], nullptr, 0));

  const auto bank = pedagogy::question_bank(core::Curriculum::cs31());
  const auto results = pedagogy::run_session(bank, cfg);

  std::printf("Peer-instruction session: %u students, groups of %u, seed %u\n\n",
              cfg.students, cfg.group_size, cfg.seed);
  std::printf("%-32s %10s %10s %8s\n", "topic", "1st vote", "2nd vote", "gain");
  for (const pedagogy::PollResult& poll : results) {
    std::printf("%-32s %9.0f%% %9.0f%% %8.2f\n", poll.topic.c_str(),
                100 * poll.first_rate(), 100 * poll.second_rate(),
                poll.normalized_gain());
  }
  const pedagogy::SessionSummary s = pedagogy::summarize(results);
  std::printf("\nsession means: first %.0f%%, second %.0f%%, normalized gain %.2f\n",
              100 * s.mean_first_rate, 100 * s.mean_second_rate,
              s.mean_normalized_gain);
  std::printf("(the reliable second-round lift is why the course polls twice)\n");
  return 0;
}
