// The Lab 9 Unix shell on the simulated kernel. Interactive when stdin
// is a terminal; otherwise runs a scripted demo session showing
// foreground/background execution, job reaping, history, and !n.
//
//   ./build/examples/unix_shell            # demo script (or pipe commands in)
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "os/kernel.hpp"
#include "shell/shell.hpp"

namespace {

void run_one(cs31::shell::Shell& shell, cs31::os::Kernel& kernel,
             const std::string& line, bool echo) {
  if (echo) std::printf("cs31sh> %s\n", line.c_str());
  const std::size_t printed_before = kernel.output().size();
  const cs31::shell::ShellResult result = shell.run_line(line);
  // Print whatever the child processes wrote during this command.
  for (std::size_t i = printed_before; i < kernel.output().size(); ++i) {
    std::printf("%s\n", kernel.output()[i].c_str());
  }
  if (!result.output.empty()) std::printf("%s", result.output.c_str());
  if (result.exited) std::printf("exit\n");
}

}  // namespace

int main() {
  cs31::os::Kernel kernel;
  cs31::shell::Shell shell(kernel);
  shell.install_standard_commands();

  std::string line;
  if (std::getline(std::cin, line)) {
    // Piped/interactive input: process it line by line.
    do {
      run_one(shell, kernel, line, true);
      if (line == "exit") return 0;
    } while (std::getline(std::cin, line));
    return 0;
  }

  // No stdin: scripted demo.
  const std::vector<std::string> script = {
      "echo hello from the cs31 shell",
      "countdown 3",
      "spin 40 &",
      "echo foreground runs while the job spins",
      "jobs",
      "spin 60",  // drives the kernel long enough for the job to finish
      "jobs",
      "history",
      "!1",
      "exit",
  };
  for (const std::string& cmd : script) run_one(shell, kernel, cmd, true);
  std::printf("\nfinal process table:\n%s", kernel.hierarchy().c_str());
  return 0;
}
