// Cache explorer: the caching homework, executable. Configure a cache
// geometry, feed it an access pattern, and watch the tag/index/offset
// division, hits, misses, evictions, and the final line table.
//
//   ./build/examples/cache_explorer                     # demo trace
//   ./build/examples/cache_explorer 0x0 0x4 0x40 0x0    # your addresses
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "memhier/cache.hpp"
#include "memhier/trace.hpp"
#include "vm/paging.hpp"

int main(int argc, char** argv) {
  using namespace cs31::memhier;

  CacheConfig cfg;
  cfg.block_bytes = 16;
  cfg.num_lines = 8;
  cfg.associativity = 2;
  Cache cache(cfg);

  std::printf("cache: %u B blocks x %u lines, %u-way (%u sets), LRU, write-back\n",
              cfg.block_bytes, cfg.num_lines, cfg.associativity, cfg.num_sets());
  const AddressParts shape = cache.split(0);
  std::printf("address split: %d tag bits | %d index bits | %d offset bits\n\n",
              shape.tag_bits, shape.index_bits, shape.offset_bits);

  std::vector<std::uint32_t> addresses;
  if (argc > 1) {
    for (int i = 1; i < argc; ++i) {
      addresses.push_back(static_cast<std::uint32_t>(std::strtoul(argv[i], nullptr, 0)));
    }
  } else {
    // The homework's canonical trace: spatial reuse, a conflict pair,
    // and a return to an evicted block.
    addresses = {0x000, 0x004, 0x00C, 0x080, 0x100, 0x180, 0x000, 0x100};
  }

  std::printf("%-10s %-8s %-6s %-6s %-8s %s\n", "address", "tag", "index", "offset",
              "result", "notes");
  for (const std::uint32_t addr : addresses) {
    const AddressParts p = cache.split(addr);
    const AccessResult r = cache.read(addr);
    std::printf("0x%-8x 0x%-6x %-6u %-6u %-8s %s\n", addr, p.tag, p.index, p.offset,
                r.hit ? "HIT" : "miss",
                r.evicted ? (r.writeback ? "evicted a dirty line" : "evicted a line")
                          : "");
  }

  std::printf("\nfinal cache state:\n%s", cache.dump().c_str());
  const CacheStats& s = cache.stats();
  std::printf("totals: %llu accesses, %llu hits (%.0f%%), %llu evictions\n",
              static_cast<unsigned long long>(s.accesses),
              static_cast<unsigned long long>(s.hits), 100 * s.hit_rate(),
              static_cast<unsigned long long>(s.evictions));

  // And the next rung of the ladder: the same addresses as *virtual*
  // addresses through a page table.
  std::printf("\nthe same addresses through a 4-frame, 256-byte-page VM:\n");
  cs31::vm::PagingConfig vm_cfg;
  vm_cfg.page_bytes = 256;
  vm_cfg.virtual_pages = 8;
  vm_cfg.physical_frames = 4;
  cs31::vm::PagingSystem vm(vm_cfg);
  vm.create_process();
  for (const std::uint32_t addr : addresses) {
    const auto r = vm.access(addr % (vm_cfg.page_bytes * vm_cfg.virtual_pages), false);
    std::printf("va 0x%-6x -> pa 0x%-6x %s\n", addr, r.physical_address,
                r.page_fault ? "(page fault)" : "");
  }
  std::printf("%s", vm.dump_frames().c_str());
  return 0;
}
