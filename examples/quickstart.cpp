// Quickstart: a ten-minute tour of the cs31kit public API, following the
// course's own arc — bits -> circuits -> assembly -> caching -> OS ->
// threads. Build and run:
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "bits/convert.hpp"
#include "core/curriculum.hpp"
#include "isa/machine.hpp"
#include "life/life.hpp"
#include "logic/alu.hpp"
#include "memhier/cache.hpp"
#include "memhier/trace.hpp"
#include "os/kernel.hpp"
#include "parallel/speedup.hpp"

int main() {
  using namespace cs31;

  std::printf("== 1. binary representation ==\n");
  const bits::Word w = bits::parse_decimal("-93", 8);
  const bits::ConversionRow row = conversion_row(w);
  std::printf("-93 as an 8-bit pattern: %s (%s), unsigned reading %llu\n\n",
              row.binary.c_str(), row.hex.c_str(),
              static_cast<unsigned long long>(row.as_unsigned));

  std::printf("== 2. a gate-level ALU (Lab 3) ==\n");
  logic::Circuit circuit;
  const logic::Alu alu = logic::build_alu(circuit, 8);
  const logic::AluReading sum = run_alu(circuit, alu, logic::AluOp::Add, 200, 100);
  std::printf("200 + 100 at 8 bits = %llu, carry=%d (that's unsigned overflow), "
              "built from %zu gates\n\n",
              static_cast<unsigned long long>(sum.result), sum.carry,
              circuit.gate_count());

  std::printf("== 3. assembly on the IA-32 subset (Labs 4-5) ==\n");
  isa::Machine machine;
  machine.load(isa::assemble(R"(
main:
    pushl $6
    call factorial_ish    # 6 * 7 via the stack discipline
    hlt
factorial_ish:
    pushl %ebp
    movl %esp, %ebp
    movl 8(%ebp), %eax
    imull $7, %eax
    leave
    ret
)"));
  machine.run();
  std::printf("assembled, ran through call/ret/leave: eax = %u\n\n",
              machine.reg(isa::Reg::Eax));

  std::printf("== 4. cache behaviour (the stride exercise) ==\n");
  memhier::CacheConfig cache_cfg;
  cache_cfg.block_bytes = 64;
  cache_cfg.num_lines = 64;
  memhier::Cache rows_cache(cache_cfg), cols_cache(cache_cfg);
  const auto row_stats = replay(rows_cache, memhier::row_major_trace(0, 64, 64));
  const auto col_stats = replay(cols_cache, memhier::column_major_trace(0, 64, 64));
  std::printf("row-major hit rate %.0f%%, column-major %.0f%% — same loop body!\n\n",
              100 * row_stats.hit_rate(), 100 * col_stats.hit_rate());

  std::printf("== 5. processes on the simulated kernel ==\n");
  os::Kernel kernel;
  kernel.spawn(os::ProgramBuilder()
                   .fork(os::ProgramBuilder().print("child: hello").build())
                   .wait()
                   .print("parent: reaped my child")
                   .build());
  kernel.run();
  for (const std::string& line : kernel.output()) std::printf("  %s\n", line.c_str());
  std::printf("\n");

  std::printf("== 6. shared-memory parallelism (Labs 6 & 10) ==\n");
  const life::Grid initial = life::Grid::random(64, 64, 0.3, 7);
  life::SerialLife serial(initial);
  life::ParallelLife parallel_sim(initial, 4);
  serial.run(10);
  parallel_sim.run(10);
  std::printf("10 generations: serial pop %zu, 4-thread pop %zu (equal: %s)\n",
              serial.grid().population(), parallel_sim.grid().population(),
              serial.grid() == parallel_sim.grid() ? "yes" : "NO");
  std::printf("modeled 16-thread speedup for the big lab grid: %.1fx\n\n",
              parallel::modeled_speedup(
                  {.total_work = 512u * 512u * 100u, .rounds = 100,
                   .barrier_cost = 400, .critical_section = 60,
                   .contention_factor = 0.004},
                  16));

  std::printf("== 7. the curriculum that ties it together ==\n");
  std::printf("%s", core::Curriculum::cs31().render_table1().c_str());
  return 0;
}
