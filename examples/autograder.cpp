// The grading service, end to end: a teaching tour of cs31::grader in
// four acts — one submission of each kind through the toolchain, a
// deadline-hour duplicate storm collapsing onto the verdict cache, a
// poison batch that cannot take the worker pool down, and the
// determinism contract (same batch, any worker count, byte-identical
// reports).
#include <cstdio>
#include <string>

#include "grader/loadgen.hpp"
#include "grader/service.hpp"

using namespace cs31::grader;

namespace {

void act(int n, const char* title) { std::printf("\n=== Act %d: %s ===\n\n", n, title); }

GraderService::Options quick_options(std::size_t workers) {
  GraderService::Options options;
  options.workers = workers;
  options.limits = ToolchainLimits{100'000, 5.0};
  return options;
}

}  // namespace

int main() {
  std::printf("cs31::grader — the course toolchain as a batch grading service\n");

  act(1, "one submission of each kind");
  {
    GraderService service(quick_options(2));
    service.submit({"alice/hw3", SubmissionKind::MiniC, mini_c_body(41)});
    service.submit({"bob/lab4", SubmissionKind::Assembly, assembly_body(17)});
    service.submit({"carol/lab10", SubmissionKind::LifeTrace,
                    life_body(2, /*with_barrier=*/true)});
    service.submit({"dave/lab10", SubmissionKind::LifeTrace,
                    life_body(2, /*with_barrier=*/false)});  // forgot the barrier
    service.wait_idle();
    std::printf("%s", service.report_stream().c_str());
    std::printf("\nDave forgot the per-round barrier — the FastTrack detector names the\n"
                "racing band accesses right in his report.\n");
  }

  act(2, "deadline hour: a duplicate storm hits the verdict cache");
  {
    const LoadPlan storm = make_scenario("duplicate_storm", 256, 1);
    GraderService service(quick_options(4));
    service.submit_all(storm.submissions);
    service.wait_idle();
    const auto stats = service.stats();
    std::printf("submissions graded   %8llu\n",
                static_cast<unsigned long long>(stats.graded));
    std::printf("toolchain runs       %8llu  (one per distinct body)\n",
                static_cast<unsigned long long>(stats.toolchain_runs));
    std::printf("cache hits           %8llu\n",
                static_cast<unsigned long long>(stats.cache.hits));
    std::printf("in-flight collapses  %8llu\n",
                static_cast<unsigned long long>(stats.cache.collapsed));
  }

  act(3, "poison submissions cannot take the pool down");
  {
    const LoadPlan poison = make_scenario("poison", 32, 5);
    GraderService service(quick_options(4));
    service.submit_all(poison.submissions);
    service.wait_idle();
    std::printf("graded %llu/%zu — infinite loops come back as \"timeout\", syntax\n"
                "errors as \"compile_error\", malformed configs as \"invalid\"; every\n"
                "worker is still alive:\n\n",
                static_cast<unsigned long long>(service.stats().graded),
                poison.submissions.size());
    for (const std::string& line : service.report_lines()) {
      if (line.find("poison/") != std::string::npos) std::printf("%s\n", line.c_str());
    }
  }

  act(4, "determinism: worker count changes wall-clock, never the reports");
  {
    const LoadPlan plan = make_scenario("steady", 24, 3);
    std::string streams[2];
    const std::size_t worker_counts[2] = {1, 4};
    for (int i = 0; i < 2; ++i) {
      GraderService service(quick_options(worker_counts[i]));
      service.submit_all(plan.submissions);
      service.wait_idle();
      streams[i] = service.report_stream();
    }
    std::printf("1 worker vs 4 workers, same 24-submission batch: report streams are %s\n",
                streams[0] == streams[1] ? "BYTE-IDENTICAL" : "DIFFERENT (bug!)");
  }

  std::printf("\nDone. bench_grader measures sustained submissions/s, cold vs warm.\n");
  return 0;
}
