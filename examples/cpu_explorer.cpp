// Architecture explorer: assemble an IA-32-subset program (from a file,
// or a built-in demo), single-step it in the debugger printing registers
// after every instruction, then time its mini-CPU-style trace on the
// sequential and pipelined machine models.
//
//   ./build/examples/cpu_explorer              # built-in demo program
//   ./build/examples/cpu_explorer prog.s       # your own AT&T-subset file
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "isa/debugger.hpp"
#include "isa/machine.hpp"
#include "logic/cpu.hpp"
#include "logic/pipeline.hpp"

namespace {

const char* kDemo = R"(
# sum of squares 1..5, the long way
main:
    movl $0, %eax       # total
    movl $1, %ecx       # i
loop:
    cmpl $5, %ecx
    jg done
    movl %ecx, %ebx
    imull %ecx, %ebx    # i*i
    addl %ebx, %eax
    incl %ecx
    jmp loop
done:
    hlt
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace cs31::isa;

  std::string source = kDemo;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    source = buf.str();
  }

  Machine machine;
  machine.load(assemble(source));
  Debugger dbg(machine);

  std::printf("=== disassembly ===\n");
  for (const DisasmLine& line : disassemble(machine.image())) {
    if (!line.label.empty()) std::printf("%s:\n", line.label.c_str());
    std::printf("   0x%x:\t%s\n", line.address, line.text.c_str());
  }

  std::printf("\n=== stepping (first 12 instructions) ===\n");
  for (int i = 0; i < 12 && !machine.halted(); ++i) {
    std::printf("%s", dbg.disas(0, 0).c_str());
    dbg.stepi();
    std::printf("   eax=%-6d ebx=%-6d ecx=%-6d  flags[%s%s%s%s]\n",
                static_cast<int>(machine.reg(Reg::Eax)),
                static_cast<int>(machine.reg(Reg::Ebx)),
                static_cast<int>(machine.reg(Reg::Ecx)),
                machine.flags().cf ? " CF" : "", machine.flags().zf ? " ZF" : "",
                machine.flags().sf ? " SF" : "", machine.flags().of ? " OF" : "");
  }
  if (!machine.halted()) {
    std::printf("   ... (continuing to halt)\n");
    machine.run();
  }
  std::printf("\nhalted after %zu instructions; eax = %d\n",
              machine.instructions_executed(),
              static_cast<int>(machine.reg(Reg::Eax)));

  // Bonus: the same loop shape on the mini-CPU, timed both ways.
  std::printf("\n=== pipeline timing of an equivalent mini-CPU trace ===\n");
  cs31::logic::MiniCpu cpu;
  for (unsigned i = 0; i < 5; ++i) cpu.set_mem(100 + i, static_cast<std::uint16_t>((i + 1) * (i + 1)));
  cpu.load_program(cs31::logic::sample_sum_program(100, 5));
  cpu.run();
  const cs31::logic::StageLatencies stages;
  const auto seq = time_sequential(cpu.trace(), stages);
  const auto pipe = time_pipelined(cpu.trace(), {stages, true, 2});
  std::printf("sequential: %zu cycles @ %.0fps   pipelined: %zu cycles @ %.0fps"
              "   gain %.2fx\n",
              seq.cycles, seq.cycle_time_ps, pipe.cycles, pipe.cycle_time_ps,
              seq.time_ps() / pipe.time_ps());
  return 0;
}
