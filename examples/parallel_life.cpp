// Labs 6 & 10 together: run Conway's Game of Life serially and in
// parallel, rendering frames through the ParaVis substitute with each
// thread's region in a different color (pass --plain for no ANSI).
//
//   ./build/examples/parallel_life [threads] [generations] [--plain]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "life/life.hpp"
#include "paravis/paravis.hpp"

int main(int argc, char** argv) {
  using namespace cs31;
  std::size_t threads = 4, generations = 6;
  bool ansi = true;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--plain") == 0) {
      ansi = false;
    } else if (threads == 4 && i == 1) {
      threads = std::strtoul(argv[i], nullptr, 10);
    } else {
      generations = std::strtoul(argv[i], nullptr, 10);
    }
  }

  // The lab's file format, inline: an 18x36 grid seeded with two gliders
  // and a blinker.
  const life::Grid initial = life::Grid::parse(R"(18 36
13
0 1
1 2
2 0
2 1
2 2
8 20
9 21
10 19
10 20
10 21
5 10
5 11
5 12
)");

  life::ParallelLife sim(initial, threads);
  paravis::VisConfig cfg;
  cfg.ansi_colors = ansi;

  std::printf("Parallel Game of Life: %zux%zu grid, %zu threads, %zu generations\n",
              initial.rows(), initial.cols(), threads, generations);
  std::printf("(each thread's band rendered in its own background color)\n\n");

  for (std::size_t g = 0; g <= generations; ++g) {
    const paravis::FrameSource frame{
        sim.grid().rows(), sim.grid().cols(),
        [&](std::size_t r, std::size_t c) { return sim.grid().alive(r, c); },
        [&](std::size_t r, std::size_t c) { return sim.owner(r, c); }};
    std::printf("generation %zu (population %zu):\n%s\n", sim.generation(),
                sim.grid().population(), paravis::render(frame, cfg).c_str());
    if (g < generations) sim.run(1);
  }

  std::printf("totals: %llu births, %llu deaths, max population %llu\n",
              static_cast<unsigned long long>(sim.stats().births),
              static_cast<unsigned long long>(sim.stats().deaths),
              static_cast<unsigned long long>(sim.stats().max_population));

  // Cross-check against the Lab 6 serial engine, as the lab requires.
  life::SerialLife reference(initial);
  reference.run(generations);
  std::printf("matches the serial Lab 6 result: %s\n",
              reference.grid() == sim.grid() ? "yes" : "NO");
  return reference.grid() == sim.grid() ? 0 : 1;
}
