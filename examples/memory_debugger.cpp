// The Valgrind workflow, on the kit's teaching allocator: run a buggy
// "program" against MemCheck and read the familiar report — leaks
// attributed to call sites, double frees, and invalid accesses. This is
// the memory-debugging muscle CS 31 builds all semester.
//
//   ./build/examples/memory_debugger
#include <cstdio>

#include "heap/memcheck.hpp"

int main() {
  using namespace cs31::heap;
  MemCheck mc(64 * 1024);

  std::printf("running a deliberately buggy allocation workload...\n\n");

  // Correct usage: a buffer filled and freed.
  const std::uint32_t ok = mc.alloc(64, "read_config");
  for (int i = 0; i < 64; ++i) mc.write8(ok + i, static_cast<std::uint8_t>(i));
  mc.release(ok);

  // Bug 1: a leak — allocated in a "loop", never freed.
  for (int i = 0; i < 3; ++i) {
    (void)mc.alloc(128, "parse_line (loop body)");
  }

  // Bug 2: off-by-one write past the end of a buffer.
  const std::uint32_t buf = mc.alloc(16, "build_name");
  for (int i = 0; i <= 16; ++i) {
    mc.write8(buf + i, 'x');  // i == 16 is one past the end
  }

  // Bug 3: use after free.
  mc.release(buf);
  (void)mc.read8(buf);

  // Bug 4: double free.
  mc.release(buf);

  std::printf("%s\n", mc.render_report().c_str());

  std::printf("heap block list after the run:\n%s", mc.heap().dump().c_str());

  const LeakReport report = mc.report();
  std::printf("\n%zu diagnostics, %u bytes leaked in %u blocks — exactly what\n"
              "`valgrind ./lab` would have shown.\n",
              report.diagnostics.size(), report.leaked_bytes, report.leaked_blocks);
  return 0;
}
