// Translation lookaside buffer (CS 31 "TLB caching of address
// translations to speed-up effective memory access time"): a small,
// fully-associative, LRU-replaced cache of VPN -> PFN mappings, flushed
// on context switch.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace cs31::vm {

/// TLB statistics.
struct TlbStats {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  std::uint64_t flushes = 0;

  [[nodiscard]] double hit_rate() const {
    return lookups == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(lookups);
  }
};

class Tlb {
 public:
  /// Throws cs31::Error when entries == 0.
  explicit Tlb(std::uint32_t entries);

  /// Look up a virtual page number; returns the frame on a hit.
  [[nodiscard]] std::optional<std::uint32_t> lookup(std::uint32_t vpn);

  /// Install a translation (LRU-evicting if full).
  void insert(std::uint32_t vpn, std::uint32_t frame);

  /// Drop one translation (on page eviction).
  void invalidate(std::uint32_t vpn);

  /// Drop everything (on context switch).
  void flush();

  [[nodiscard]] const TlbStats& stats() const { return stats_; }
  [[nodiscard]] std::uint32_t capacity() const { return capacity_; }

 private:
  struct Entry {
    bool valid = false;
    std::uint32_t vpn = 0;
    std::uint32_t frame = 0;
    std::uint64_t last_used = 0;
  };
  std::vector<Entry> entries_;
  std::uint32_t capacity_;
  std::uint64_t clock_ = 0;
  TlbStats stats_;
};

/// The course's effective-access-time formula with both a TLB and the
/// possibility of page faults:
///   EAT = tlb_ns + mem_ns                          on a TLB hit
///       + (1-tlb_hit)*mem_ns                       page-table walk
///       + fault_rate * fault_penalty_ns            demand paging
/// averaged over accesses.
[[nodiscard]] double effective_access_time_ns(double tlb_hit_rate, double fault_rate,
                                              double mem_ns, double tlb_ns,
                                              double fault_penalty_ns);

}  // namespace cs31::vm
