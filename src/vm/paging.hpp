// Single-level paged virtual memory (CS 31 "Operating Systems" / the
// "Virtual memory 1/2" homeworks): per-process page tables, virtual-to-
// physical translation, demand paging with page faults, LRU frame
// replacement across processes, dirty-page writeback, context switching
// that changes the active page table (and flushes the TLB), and an
// optional TLB accelerating translation.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "vm/tlb.hpp"

namespace cs31::vm {

/// Frame-replacement policy. The course teaches LRU; FIFO and Clock
/// (second chance) exist for the ablation bench.
enum class PageReplacement { Lru, Fifo, Clock };

/// Geometry of the paging system.
struct PagingConfig {
  std::uint32_t page_bytes = 4096;    ///< power of two
  std::uint32_t virtual_pages = 64;   ///< pages per address space
  std::uint32_t physical_frames = 8;  ///< frames of RAM
  std::uint32_t tlb_entries = 0;      ///< 0 = no TLB
  PageReplacement replacement = PageReplacement::Lru;
};

/// One page-table entry, exactly the fields the homework tables carry.
struct PageTableEntry {
  bool valid = false;       ///< resident in RAM
  bool dirty = false;
  bool referenced = false;
  bool on_disk = false;     ///< has been paged out at least once
  std::uint32_t frame = 0;
};

/// What one memory access did.
struct VmAccessResult {
  std::uint32_t physical_address = 0;
  bool page_fault = false;
  bool evicted = false;          ///< another page lost its frame
  bool dirty_writeback = false;  ///< the evicted page was dirty
  bool tlb_hit = false;
};

/// Cumulative statistics.
struct VmStats {
  std::uint64_t accesses = 0;
  std::uint64_t page_faults = 0;
  std::uint64_t evictions = 0;
  std::uint64_t dirty_writebacks = 0;
  std::uint64_t context_switches = 0;

  [[nodiscard]] double fault_rate() const {
    return accesses == 0 ? 0.0
                         : static_cast<double>(page_faults) / static_cast<double>(accesses);
  }
};

/// A paging system hosting multiple processes that share RAM frames.
class PagingSystem {
 public:
  /// Throws cs31::Error for non-power-of-two pages or zero frames.
  explicit PagingSystem(const PagingConfig& config);

  /// Create a process (empty page table); returns its pid. The first
  /// created process becomes current.
  std::uint32_t create_process();

  /// Context switch: subsequent accesses use this process's page table;
  /// the TLB (if any) is flushed. Throws on unknown pid.
  void switch_to(std::uint32_t pid);

  [[nodiscard]] std::uint32_t current_process() const;

  /// Access a virtual address in the current process. Faults in the
  /// page on demand, evicting the globally least-recently-used page if
  /// RAM is full. Throws cs31::Error when the address is outside the
  /// virtual address space.
  VmAccessResult access(std::uint32_t virtual_address, bool is_write);

  /// Translate without faulting; nullopt when the page is not resident.
  [[nodiscard]] std::optional<std::uint32_t> translate(std::uint32_t virtual_address) const;

  /// Inspect a page-table entry of any process (homework tables).
  [[nodiscard]] const PageTableEntry& entry(std::uint32_t pid, std::uint32_t vpn) const;

  [[nodiscard]] const VmStats& stats() const { return stats_; }
  [[nodiscard]] const TlbStats* tlb_stats() const;
  [[nodiscard]] const PagingConfig& config() const { return config_; }

  /// Number of frames currently in use.
  [[nodiscard]] std::uint32_t frames_used() const;

  /// Render the frame table (frame -> pid:vpn), the RAM column of the
  /// homework's paging-trace tables.
  [[nodiscard]] std::string dump_frames() const;

 private:
  struct Frame {
    bool used = false;
    std::uint32_t pid = 0;
    std::uint32_t vpn = 0;
    std::uint64_t last_used = 0;
    std::uint64_t filled_at = 0;  // FIFO age
  };

  [[nodiscard]] std::uint32_t pick_victim();
  struct Process {
    std::vector<PageTableEntry> table;
  };

  std::uint32_t handle_fault(std::uint32_t vpn);

  PagingConfig config_;
  std::map<std::uint32_t, Process> processes_;
  std::vector<Frame> frames_;
  std::uint32_t next_pid_ = 1;
  std::optional<std::uint32_t> current_;
  std::optional<Tlb> tlb_;
  std::uint64_t clock_ = 0;
  std::uint32_t clock_hand_ = 0;  // Clock policy's sweep position
  VmStats stats_;
};

}  // namespace cs31::vm
