#include "vm/paging.hpp"

#include <bit>
#include <sstream>

#include "common/error.hpp"

namespace cs31::vm {

PagingSystem::PagingSystem(const PagingConfig& config) : config_(config) {
  require(std::has_single_bit(config.page_bytes) && config.page_bytes >= 16,
          "page size must be a power of two >= 16");
  require(config.virtual_pages >= 1, "need at least one virtual page");
  require(config.physical_frames >= 1, "need at least one physical frame");
  frames_.resize(config.physical_frames);
  if (config.tlb_entries > 0) tlb_.emplace(config.tlb_entries);
}

std::uint32_t PagingSystem::create_process() {
  const std::uint32_t pid = next_pid_++;
  processes_[pid].table.resize(config_.virtual_pages);
  if (!current_) current_ = pid;
  return pid;
}

void PagingSystem::switch_to(std::uint32_t pid) {
  require(processes_.contains(pid), "no such process");
  if (current_ == pid) return;
  current_ = pid;
  ++stats_.context_switches;
  if (tlb_) tlb_->flush();
}

std::uint32_t PagingSystem::current_process() const {
  require(current_.has_value(), "no process exists yet");
  return *current_;
}

std::uint32_t PagingSystem::pick_victim() {
  switch (config_.replacement) {
    case PageReplacement::Lru: {
      std::uint32_t victim = 0;
      for (std::uint32_t f = 1; f < frames_.size(); ++f) {
        if (frames_[f].last_used < frames_[victim].last_used) victim = f;
      }
      return victim;
    }
    case PageReplacement::Fifo: {
      std::uint32_t victim = 0;
      for (std::uint32_t f = 1; f < frames_.size(); ++f) {
        if (frames_[f].filled_at < frames_[victim].filled_at) victim = f;
      }
      return victim;
    }
    case PageReplacement::Clock: {
      // Second chance: sweep, clearing referenced bits, until a frame
      // whose page is unreferenced comes under the hand. Terminates
      // within two sweeps because cleared bits stay cleared.
      for (std::uint32_t step = 0; step < 2 * frames_.size() + 1; ++step) {
        const std::uint32_t f = clock_hand_;
        clock_hand_ = (clock_hand_ + 1) % static_cast<std::uint32_t>(frames_.size());
        PageTableEntry& entry = processes_.at(frames_[f].pid).table[frames_[f].vpn];
        if (entry.referenced) {
          entry.referenced = false;  // second chance granted
        } else {
          return f;
        }
      }
      return clock_hand_;  // unreachable; appeases control-flow analysis
    }
  }
  return 0;
}

std::uint32_t PagingSystem::handle_fault(std::uint32_t vpn) {
  // Find a free frame, or evict per the configured policy.
  std::uint32_t victim = 0;
  bool found_free = false;
  for (std::uint32_t f = 0; f < frames_.size(); ++f) {
    if (!frames_[f].used) {
      victim = f;
      found_free = true;
      break;
    }
  }
  if (!found_free) {
    victim = pick_victim();
    Frame& old = frames_[victim];
    PageTableEntry& old_entry = processes_.at(old.pid).table[old.vpn];
    ++stats_.evictions;
    if (old_entry.dirty) ++stats_.dirty_writebacks;
    old_entry.valid = false;
    old_entry.dirty = false;
    old_entry.on_disk = true;
    old_entry.frame = 0;
    if (tlb_ && old.pid == *current_) tlb_->invalidate(old.vpn);
  }
  Frame& frame = frames_[victim];
  frame.used = true;
  frame.pid = *current_;
  frame.vpn = vpn;
  frame.last_used = clock_;
  frame.filled_at = clock_;
  PageTableEntry& entry = processes_.at(*current_).table[vpn];
  entry.valid = true;
  entry.frame = victim;
  return victim;
}

VmAccessResult PagingSystem::access(std::uint32_t virtual_address, bool is_write) {
  require(current_.has_value(), "create a process before accessing memory");
  const std::uint32_t vpn = virtual_address / config_.page_bytes;
  const std::uint32_t offset = virtual_address % config_.page_bytes;
  require(vpn < config_.virtual_pages, "virtual address outside the address space");

  ++clock_;
  ++stats_.accesses;
  VmAccessResult result;
  Process& proc = processes_.at(*current_);
  PageTableEntry& entry = proc.table[vpn];

  if (tlb_) {
    if (const std::optional<std::uint32_t> frame = tlb_->lookup(vpn)) {
      // TLB hit: translation without touching the page table.
      result.tlb_hit = true;
      frames_[*frame].last_used = clock_;
      entry.referenced = true;
      if (is_write) entry.dirty = true;
      result.physical_address = *frame * config_.page_bytes + offset;
      return result;
    }
  }

  if (!entry.valid) {
    result.page_fault = true;
    ++stats_.page_faults;
    const std::uint64_t evictions_before = stats_.evictions;
    const std::uint64_t writebacks_before = stats_.dirty_writebacks;
    handle_fault(vpn);
    result.evicted = stats_.evictions != evictions_before;
    result.dirty_writeback = stats_.dirty_writebacks != writebacks_before;
  }

  entry.referenced = true;
  if (is_write) entry.dirty = true;
  frames_[entry.frame].last_used = clock_;
  if (tlb_) tlb_->insert(vpn, entry.frame);
  result.physical_address = entry.frame * config_.page_bytes + offset;
  return result;
}

std::optional<std::uint32_t> PagingSystem::translate(std::uint32_t virtual_address) const {
  require(current_.has_value(), "create a process before translating");
  const std::uint32_t vpn = virtual_address / config_.page_bytes;
  require(vpn < config_.virtual_pages, "virtual address outside the address space");
  const PageTableEntry& entry = processes_.at(*current_).table[vpn];
  if (!entry.valid) return std::nullopt;
  return entry.frame * config_.page_bytes + virtual_address % config_.page_bytes;
}

const PageTableEntry& PagingSystem::entry(std::uint32_t pid, std::uint32_t vpn) const {
  require(processes_.contains(pid), "no such process");
  require(vpn < config_.virtual_pages, "virtual page number out of range");
  return processes_.at(pid).table[vpn];
}

const TlbStats* PagingSystem::tlb_stats() const {
  return tlb_ ? &tlb_->stats() : nullptr;
}

std::uint32_t PagingSystem::frames_used() const {
  std::uint32_t n = 0;
  for (const Frame& f : frames_) {
    if (f.used) ++n;
  }
  return n;
}

std::string PagingSystem::dump_frames() const {
  std::ostringstream out;
  out << "frame  contents\n";
  for (std::uint32_t f = 0; f < frames_.size(); ++f) {
    out << f << "      ";
    if (frames_[f].used) {
      out << "pid " << frames_[f].pid << ", vpn " << frames_[f].vpn;
    } else {
      out << "(free)";
    }
    out << '\n';
  }
  return out.str();
}

}  // namespace cs31::vm
