#include "vm/tlb.hpp"

#include "common/error.hpp"

namespace cs31::vm {

Tlb::Tlb(std::uint32_t entries) : entries_(entries), capacity_(entries) {
  require(entries >= 1, "TLB needs at least one entry");
}

std::optional<std::uint32_t> Tlb::lookup(std::uint32_t vpn) {
  ++clock_;
  ++stats_.lookups;
  for (Entry& e : entries_) {
    if (e.valid && e.vpn == vpn) {
      ++stats_.hits;
      e.last_used = clock_;
      return e.frame;
    }
  }
  return std::nullopt;
}

void Tlb::insert(std::uint32_t vpn, std::uint32_t frame) {
  ++clock_;
  Entry* victim = nullptr;
  for (Entry& e : entries_) {
    if (e.valid && e.vpn == vpn) { victim = &e; break; }  // refresh existing
    if (!e.valid && victim == nullptr) victim = &e;
  }
  if (victim == nullptr) {
    victim = &entries_[0];
    for (Entry& e : entries_) {
      if (e.last_used < victim->last_used) victim = &e;
    }
  }
  *victim = Entry{.valid = true, .vpn = vpn, .frame = frame, .last_used = clock_};
}

void Tlb::invalidate(std::uint32_t vpn) {
  for (Entry& e : entries_) {
    if (e.valid && e.vpn == vpn) e.valid = false;
  }
}

void Tlb::flush() {
  for (Entry& e : entries_) e.valid = false;
  ++stats_.flushes;
}

double effective_access_time_ns(double tlb_hit_rate, double fault_rate, double mem_ns,
                                double tlb_ns, double fault_penalty_ns) {
  require(tlb_hit_rate >= 0 && tlb_hit_rate <= 1, "TLB hit rate must be in [0, 1]");
  require(fault_rate >= 0 && fault_rate <= 1, "fault rate must be in [0, 1]");
  // Every access: TLB probe + the data access itself.
  double eat = tlb_ns + mem_ns;
  // TLB misses add a page-table walk (one extra memory access for the
  // single-level tables the course teaches).
  eat += (1.0 - tlb_hit_rate) * mem_ns;
  // Faults add the demand-paging penalty.
  eat += fault_rate * fault_penalty_ns;
  return eat;
}

}  // namespace cs31::vm
