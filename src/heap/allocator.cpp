#include "heap/allocator.hpp"

#include <sstream>

#include "common/error.hpp"

namespace cs31::heap {

Heap::Heap(std::uint32_t region_bytes, FitPolicy policy)
    : region_(region_bytes, 0), policy_(policy), next_fit_cursor_(0) {
  require(region_bytes >= 64, "heap region must be at least 64 bytes");
  require(region_bytes <= (1u << 30), "heap region must be at most 1 GiB");
  require(region_bytes % kAlign == 0, "heap region must be 8-byte aligned");
  // One big free block spanning the region.
  write_block(0, region_bytes - kOverhead, false);
}

std::uint32_t Heap::load_tag(std::uint32_t offset) const {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(region_[offset + i]) << (8 * i);
  return v;
}

void Heap::store_tag(std::uint32_t offset, std::uint32_t tag) {
  for (int i = 0; i < 4; ++i) region_[offset + i] = static_cast<std::uint8_t>(tag >> (8 * i));
}

std::uint32_t Heap::block_size(std::uint32_t header) const {
  return load_tag(header) >> 1;
}

bool Heap::block_allocated(std::uint32_t header) const {
  return load_tag(header) & 1u;
}

void Heap::write_block(std::uint32_t header, std::uint32_t payload, bool allocated) {
  const std::uint32_t tag = (payload << 1) | (allocated ? 1u : 0u);
  store_tag(header, tag);
  store_tag(header + kHeaderBytes + payload, tag);
}

std::uint32_t Heap::find_block(std::uint32_t payload_size) {
  constexpr std::uint32_t kNone = ~std::uint32_t{0};
  std::uint32_t best = kNone;
  std::uint32_t best_size = ~std::uint32_t{0};

  auto scan_from = [&](std::uint32_t start, std::uint32_t end) -> std::uint32_t {
    for (std::uint32_t h = start; h < end; h += block_size(h) + kOverhead) {
      if (!block_allocated(h) && block_size(h) >= payload_size) {
        if (policy_ != FitPolicy::BestFit) return h;
        if (block_size(h) < best_size) {
          best = h;
          best_size = block_size(h);
        }
      }
    }
    return kNone;
  };

  const std::uint32_t region_end = static_cast<std::uint32_t>(region_.size());
  if (policy_ == FitPolicy::NextFit) {
    // Resume after the last placement; wrap once.
    const std::uint32_t hit = scan_from(next_fit_cursor_, region_end);
    if (hit != kNone) return hit;
    return scan_from(0, next_fit_cursor_);
  }
  const std::uint32_t hit = scan_from(0, region_end);
  return policy_ == FitPolicy::BestFit ? best : hit;
}

std::uint32_t Heap::malloc(std::uint32_t size) {
  require(size > 0, "malloc(0) is not allowed in the teaching allocator");
  const std::uint32_t payload = (size + kAlign - 1) & ~(kAlign - 1);
  const std::uint32_t header = find_block(payload);
  if (header == ~std::uint32_t{0}) {
    ++stats_.failed_allocations;
    return 0;
  }
  const std::uint32_t found = block_size(header);
  if (found >= payload + kOverhead + kAlign) {
    // Split: requested block, then a free remainder.
    write_block(header, payload, true);
    const std::uint32_t rest_header = header + kOverhead + payload;
    write_block(rest_header, found - payload - kOverhead, false);
  } else {
    write_block(header, found, true);
  }
  if (policy_ == FitPolicy::NextFit) {
    next_fit_cursor_ = header + block_size(header) + kOverhead;
    if (next_fit_cursor_ >= region_.size()) next_fit_cursor_ = 0;
  }
  ++stats_.allocations;
  stats_.bytes_in_use += block_size(header);
  if (stats_.bytes_in_use > stats_.peak_bytes_in_use) {
    stats_.peak_bytes_in_use = stats_.bytes_in_use;
  }
  return header + kHeaderBytes;
}

void Heap::free(std::uint32_t address) {
  require(address >= kHeaderBytes && address < region_.size(),
          "invalid free: address outside the heap");
  // Validate that `address` is the payload start of a live block by
  // walking the block list (teaching allocator: clarity over speed).
  std::uint32_t header = ~std::uint32_t{0};
  for (std::uint32_t h = 0; h < region_.size(); h += block_size(h) + kOverhead) {
    if (h + kHeaderBytes == address) {
      header = h;
      break;
    }
    if (h + kHeaderBytes > address) break;
  }
  require(header != ~std::uint32_t{0}, "invalid free: not an allocation start");
  require(block_allocated(header), "double free detected");

  std::uint32_t start = header;
  std::uint32_t payload = block_size(header);
  stats_.bytes_in_use -= payload;
  ++stats_.frees;

  // Coalesce with the next block.
  const std::uint32_t next = header + kOverhead + payload;
  if (next < region_.size() && !block_allocated(next)) {
    payload += kOverhead + block_size(next);
  }
  // Coalesce with the previous block via its footer.
  if (start >= kOverhead) {
    const std::uint32_t prev_footer = start - kHeaderBytes;
    const std::uint32_t prev_tag = load_tag(prev_footer);
    if ((prev_tag & 1u) == 0) {
      const std::uint32_t prev_size = prev_tag >> 1;
      start -= kOverhead + prev_size;
      payload += kOverhead + prev_size;
    }
  }
  write_block(start, payload, false);
  // The cursor may now point into the middle of the merged block.
  if (policy_ == FitPolicy::NextFit && next_fit_cursor_ > start &&
      next_fit_cursor_ < start + kOverhead + payload) {
    next_fit_cursor_ = start;
  }
}

std::uint32_t Heap::allocation_size(std::uint32_t address) const {
  require(address >= kHeaderBytes && address < region_.size(), "address outside the heap");
  for (std::uint32_t h = 0; h < region_.size(); h += block_size(h) + kOverhead) {
    if (h + kHeaderBytes == address) {
      require(block_allocated(h), "address is not currently allocated");
      return block_size(h);
    }
  }
  throw Error("address is not an allocation start");
}

bool Heap::is_allocated(std::uint32_t address) const {
  if (address < kHeaderBytes || address >= region_.size()) return false;
  for (std::uint32_t h = 0; h < region_.size(); h += block_size(h) + kOverhead) {
    if (h + kHeaderBytes == address) return block_allocated(h);
    if (h + kHeaderBytes > address) return false;
  }
  return false;
}

std::uint8_t Heap::read8(std::uint32_t address) const {
  for (std::uint32_t h = 0; h < region_.size(); h += block_size(h) + kOverhead) {
    const std::uint32_t lo = h + kHeaderBytes, hi = lo + block_size(h);
    if (address >= lo && address < hi) {
      require(block_allocated(h), "invalid read of freed memory");
      return region_[address];
    }
  }
  throw Error("invalid read: address is not inside any block's payload");
}

void Heap::write8(std::uint32_t address, std::uint8_t value) {
  for (std::uint32_t h = 0; h < region_.size(); h += block_size(h) + kOverhead) {
    const std::uint32_t lo = h + kHeaderBytes, hi = lo + block_size(h);
    if (address >= lo && address < hi) {
      require(block_allocated(h), "invalid write to freed memory");
      region_[address] = value;
      return;
    }
  }
  throw Error("invalid write: address is not inside any block's payload");
}

HeapStats Heap::stats() const {
  HeapStats s = stats_;
  s.free_bytes = 0;
  s.free_blocks = 0;
  s.largest_free_block = 0;
  for (std::uint32_t h = 0; h < region_.size(); h += block_size(h) + kOverhead) {
    if (!block_allocated(h)) {
      ++s.free_blocks;
      s.free_bytes += block_size(h);
      if (block_size(h) > s.largest_free_block) s.largest_free_block = block_size(h);
    }
  }
  return s;
}

std::string Heap::dump() const {
  std::ostringstream out;
  out << "offset     payload  status\n";
  for (std::uint32_t h = 0; h < region_.size(); h += block_size(h) + kOverhead) {
    out << h << "\t" << block_size(h) << "\t"
        << (block_allocated(h) ? "allocated" : "free") << '\n';
  }
  return out.str();
}

bool Heap::check_invariants() const {
  std::uint32_t h = 0;
  bool prev_free = false;
  while (h < region_.size()) {
    const std::uint32_t payload = block_size(h);
    const std::uint32_t footer = h + kHeaderBytes + payload;
    if (footer + kHeaderBytes > region_.size()) return false;
    if (load_tag(h) != load_tag(footer)) return false;
    const bool is_free = !block_allocated(h);
    if (is_free && prev_free) return false;  // missed coalesce
    prev_free = is_free;
    h = footer + kHeaderBytes;
  }
  return h == region_.size();
}

}  // namespace cs31::heap
