// A teaching heap allocator (CS 31's dynamic-memory unit: "C's
// philosophy of memory management, memory leaks, and segmentation
// violations"). Manages a simulated heap region with boundary-tagged
// blocks, split-on-allocate and coalesce-on-free, and selectable
// placement policies (first/best/next fit) so the ablation bench can
// compare fragmentation behaviour.
//
// Addresses are offsets into the simulated region; 0 plays the role of
// NULL (allocation failure), exactly like the malloc the course teaches.
#pragma once

#include <cstdint>
#include <string>

#include <vector>

namespace cs31::heap {

/// Placement policy for the allocation scan.
enum class FitPolicy { FirstFit, BestFit, NextFit };

/// Allocator statistics (the "what does the heap look like" homework).
struct HeapStats {
  std::uint64_t allocations = 0;
  std::uint64_t frees = 0;
  std::uint64_t failed_allocations = 0;
  std::uint32_t bytes_in_use = 0;      ///< payload bytes currently allocated
  std::uint32_t peak_bytes_in_use = 0;
  std::uint32_t free_bytes = 0;        ///< payload bytes available
  std::uint32_t free_blocks = 0;
  std::uint32_t largest_free_block = 0;

  /// External fragmentation: 1 - largest_free / total_free (0 when the
  /// free space is one block; approaches 1 when it is shattered).
  [[nodiscard]] double fragmentation() const {
    return free_bytes == 0
               ? 0.0
               : 1.0 - static_cast<double>(largest_free_block) / free_bytes;
  }
};

class Heap {
 public:
  /// A heap managing `region_bytes` of storage. Throws cs31::Error for
  /// regions smaller than 64 bytes or larger than 1 GiB.
  explicit Heap(std::uint32_t region_bytes, FitPolicy policy = FitPolicy::FirstFit);

  /// Allocate `size` payload bytes (8-byte aligned). Returns the payload
  /// address, or 0 when no block fits. Throws cs31::Error for size 0.
  [[nodiscard]] std::uint32_t malloc(std::uint32_t size);

  /// Free a previously-allocated address. Throws cs31::Error on
  /// addresses that were never returned by malloc (invalid free) or
  /// were already freed (double free) — the two classic Valgrind finds.
  void free(std::uint32_t address);

  /// Size of the allocation at `address`. Throws when not allocated.
  [[nodiscard]] std::uint32_t allocation_size(std::uint32_t address) const;

  /// Is `address` the start of a live allocation?
  [[nodiscard]] bool is_allocated(std::uint32_t address) const;

  /// Read/write payload bytes with bounds checking against live blocks
  /// (out-of-bounds or freed access throws — the "invalid read/write").
  [[nodiscard]] std::uint8_t read8(std::uint32_t address) const;
  void write8(std::uint32_t address, std::uint8_t value);

  [[nodiscard]] HeapStats stats() const;
  [[nodiscard]] std::uint32_t region_bytes() const {
    return static_cast<std::uint32_t>(region_.size());
  }

  /// Walk the block list: "addr size status" lines (the heap-drawing
  /// homework view).
  [[nodiscard]] std::string dump() const;

  /// Internal consistency check (headers match footers, sizes add up);
  /// used by the property tests after random workloads.
  [[nodiscard]] bool check_invariants() const;

 private:
  // Block layout: [header:4][payload...][footer:4]; header==footer ==
  // (payload_size << 1) | allocated_bit. Blocks are contiguous.
  static constexpr std::uint32_t kHeaderBytes = 4;
  static constexpr std::uint32_t kOverhead = 2 * kHeaderBytes;
  static constexpr std::uint32_t kAlign = 8;

  [[nodiscard]] std::uint32_t load_tag(std::uint32_t offset) const;
  void store_tag(std::uint32_t offset, std::uint32_t tag);
  [[nodiscard]] std::uint32_t block_size(std::uint32_t header) const;
  [[nodiscard]] bool block_allocated(std::uint32_t header) const;
  void write_block(std::uint32_t header, std::uint32_t payload, bool allocated);
  [[nodiscard]] std::uint32_t find_block(std::uint32_t payload_size);
  [[nodiscard]] const std::uint8_t* payload_block(std::uint32_t address) const;

  std::vector<std::uint8_t> region_;
  FitPolicy policy_;
  std::uint32_t next_fit_cursor_;
  HeapStats stats_;
};

}  // namespace cs31::heap
