#include "heap/memcheck.hpp"

#include <sstream>

#include "common/error.hpp"

namespace cs31::heap {

MemCheck::MemCheck(std::uint32_t region_bytes, FitPolicy policy)
    : heap_(region_bytes, policy) {}

std::uint32_t MemCheck::alloc(std::uint32_t size, const std::string& label) {
  const std::uint32_t address = heap_.malloc(size);
  if (address != 0) {
    live_[address] = label;
    freed_.erase(address);  // address reuse is legitimate
  }
  return address;
}

void MemCheck::release(std::uint32_t address) {
  const auto it = live_.find(address);
  if (it == live_.end()) {
    const auto freed_it = freed_.find(address);
    Diagnostic d;
    d.address = address;
    if (freed_it != freed_.end()) {
      d.kind = Diagnostic::Kind::DoubleFree;
      d.label = freed_it->second;
    } else {
      d.kind = Diagnostic::Kind::InvalidFree;
    }
    diagnostics_.push_back(d);
    return;
  }
  heap_.free(address);
  freed_[address] = it->second;
  live_.erase(it);
}

std::uint8_t MemCheck::read8(std::uint32_t address) {
  try {
    return heap_.read8(address);
  } catch (const Error&) {
    Diagnostic d;
    d.kind = Diagnostic::Kind::InvalidRead;
    d.address = address;
    const auto it = freed_.lower_bound(address);
    if (it != freed_.begin()) d.label = std::prev(it)->second;
    diagnostics_.push_back(d);
    return 0;
  }
}

void MemCheck::write8(std::uint32_t address, std::uint8_t value) {
  try {
    heap_.write8(address, value);
  } catch (const Error&) {
    Diagnostic d;
    d.kind = Diagnostic::Kind::InvalidWrite;
    d.address = address;
    diagnostics_.push_back(d);
  }
}

LeakReport MemCheck::report() const {
  LeakReport r;
  const HeapStats stats = heap_.stats();
  r.allocations = stats.allocations;
  r.frees = stats.frees;
  for (const auto& [address, label] : live_) {
    ++r.leaked_blocks;
    r.leaked_bytes += heap_.allocation_size(address);
    r.leak_labels.push_back(label);
  }
  r.diagnostics = diagnostics_;
  return r;
}

std::string MemCheck::render_report() const {
  const LeakReport r = report();
  std::ostringstream out;
  out << "== memcheck summary ==\n";
  out << "  total heap usage: " << r.allocations << " allocs, " << r.frees
      << " frees\n";
  for (const Diagnostic& d : r.diagnostics) {
    switch (d.kind) {
      case Diagnostic::Kind::InvalidFree: out << "  invalid free"; break;
      case Diagnostic::Kind::DoubleFree: out << "  double free"; break;
      case Diagnostic::Kind::InvalidRead: out << "  invalid read"; break;
      case Diagnostic::Kind::InvalidWrite: out << "  invalid write"; break;
    }
    out << " at address " << d.address;
    if (!d.label.empty()) out << " (allocated at '" << d.label << "')";
    out << '\n';
  }
  if (r.leaked_blocks > 0) {
    out << "  definitely lost: " << r.leaked_bytes << " bytes in " << r.leaked_blocks
        << " block(s)\n";
    for (const std::string& label : r.leak_labels) {
      out << "    leaked allocation from '" << label << "'\n";
    }
  } else {
    out << "  all heap blocks were freed -- no leaks are possible\n";
  }
  return out.str();
}

}  // namespace cs31::heap
