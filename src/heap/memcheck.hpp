// The kit's Valgrind substitute ("we particularly emphasize the use of
// Valgrind for memory debugging"): wraps a Heap, records the call-site
// label of every allocation, converts allocator faults (double free,
// invalid free, invalid read/write) into counted diagnostics instead of
// exceptions, and produces the familiar leak report at the end.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "heap/allocator.hpp"

namespace cs31::heap {

/// One recorded diagnostic, e.g. "double free at label 'loop'".
struct Diagnostic {
  enum class Kind { InvalidFree, DoubleFree, InvalidRead, InvalidWrite } kind;
  std::string label;   ///< the call-site label the program supplied
  std::uint32_t address = 0;
};

/// The end-of-run summary, shaped like Valgrind's.
struct LeakReport {
  std::uint64_t allocations = 0;
  std::uint64_t frees = 0;
  std::uint32_t leaked_bytes = 0;
  std::uint32_t leaked_blocks = 0;
  std::vector<std::string> leak_labels;  ///< call sites that leaked
  std::vector<Diagnostic> diagnostics;

  [[nodiscard]] bool clean() const {
    return leaked_blocks == 0 && diagnostics.empty();
  }
};

class MemCheck {
 public:
  /// Wrap (and drive) a heap of `region_bytes`.
  explicit MemCheck(std::uint32_t region_bytes,
                    FitPolicy policy = FitPolicy::FirstFit);

  /// malloc with a call-site label ("parse_grid", "line 42"). Returns 0
  /// on out-of-memory, like the real thing.
  [[nodiscard]] std::uint32_t alloc(std::uint32_t size, const std::string& label);

  /// free; faults become diagnostics rather than exceptions.
  void release(std::uint32_t address);

  /// Checked accesses; faults become diagnostics (reads return 0).
  std::uint8_t read8(std::uint32_t address);
  void write8(std::uint32_t address, std::uint8_t value);

  /// The Valgrind-style summary for everything so far.
  [[nodiscard]] LeakReport report() const;

  /// Render the report as text ("N bytes in M blocks definitely lost").
  [[nodiscard]] std::string render_report() const;

  [[nodiscard]] const Heap& heap() const { return heap_; }

 private:
  Heap heap_;
  std::map<std::uint32_t, std::string> live_;   ///< address -> label
  std::map<std::uint32_t, std::string> freed_;  ///< recently freed -> label
  std::vector<Diagnostic> diagnostics_;
};

}  // namespace cs31::heap
