// Per-shard statistical counter (McKenney, *Is Parallel Programming
// Hard*, ch. 5): writers bump a cache-line-private shard chosen by
// thread identity — one uncontended relaxed fetch_add, no mutex, no
// shared cache line — and readers sum the shards. The classic trade:
// updates are exact and fast, reads are *eventually* exact (a read
// concurrent with updates may miss in-flight increments, but every
// increment is counted once and a read after the writers quiesce is
// exact). That is precisely the contract statistics want and the one
// thing a mutex'd counter also cannot improve on — a mutex'd reader
// still races the *next* increment.
//
// Users in this kit: trace::MetricsSink's event totals (satellite of
// the lock-free capture refactor — the sink used to take its mutex on
// every drained event) and grader::VerdictCache's hit/miss/collapse
// stats (used to be bumped inside the cache's map lock).
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>

namespace cs31::common {

/// Monotonic statistical counter, sharded to keep concurrent writers
/// off each other's cache lines. Shard choice hashes a per-thread slot
/// (assigned once per thread, round-robin), so a thread always hits the
/// same shard and two threads rarely share one.
class ShardedCounter {
 public:
  static constexpr std::size_t kShards = 16;

  ShardedCounter() = default;
  ShardedCounter(const ShardedCounter&) = delete;
  ShardedCounter& operator=(const ShardedCounter&) = delete;

  void add(std::uint64_t delta = 1) {
    shards_[this_thread_shard()].count.fetch_add(delta, std::memory_order_relaxed);
  }

  /// Sum of all shards. Exact once writers are quiescent; a read
  /// concurrent with updates may miss increments still in flight but
  /// never counts one twice.
  [[nodiscard]] std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const Shard& shard : shards_) {
      total += shard.count.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  // One shard per cache line; 64 covers every target this kit builds on
  // (std::hardware_destructive_interference_size draws a GCC warning
  // about ABI stability, so the constant is spelled out).
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> count{0};
  };

  static std::size_t this_thread_shard() {
    static std::atomic<std::size_t> next_slot{0};
    thread_local const std::size_t slot =
        next_slot.fetch_add(1, std::memory_order_relaxed);
    return slot % kShards;
  }

  std::array<Shard, kShards> shards_{};
};

}  // namespace cs31::common
