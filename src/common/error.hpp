// Common error type for the cs31 kit.
//
// All public APIs in the kit signal caller mistakes (bad widths, malformed
// input, out-of-range addresses, API-protocol violations) by throwing
// cs31::Error. Internal invariants use assert().
#pragma once

#include <stdexcept>
#include <string>

namespace cs31 {

/// Exception thrown by every cs31 module on invalid arguments or misuse.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Throw cs31::Error with `msg` when `cond` does not hold.
inline void require(bool cond, const std::string& msg) {
  if (!cond) throw Error(msg);
}

}  // namespace cs31
