// The kit's backpressure primitive: a bounded FIFO with a blocking
// push, shared by every producer/consumer stage that must cap its
// memory no matter how far the consumer falls behind. Extracted from
// trace::AnalysisPipeline (which pioneered it as the batch and
// per-shard chunk queue) so cs31::grader's ingest and worker queues are
// the same implementation, not a copy.
//
// Semantics (unchanged from the pipeline original):
//   push          blocks while the queue is full — that block IS the
//                 backpressure; `waits` counts how often it happened.
//                 Throws cs31::Error after close().
//   pop           blocks until an item or close; returns false only
//                 when closed AND drained, so a closed queue still
//                 delivers everything it holds. Marks the consumer
//                 busy until done().
//   try_pop       non-blocking pop: false when nothing is available
//                 right now. Same busy-until-done() contract as pop.
//   done          the consumer finished a popped item. wait_drained
//                 needs this: "empty" alone would declare a queue
//                 drained while a consumer still chews the last item.
//   wait_drained  blocks until the queue is empty and every consumer is
//                 idle — the building block for a stage-ordered
//                 wait_idle across a multi-queue topology.
//   close         wakes everyone; pending items still drain.
//
// Any number of pushers. Consumers: `consumers_active` counts every
// popped-but-not-done() item, so a shared pool of poppers (the race
// explorer's replay workers all pop one queue) keeps wait_drained
// honest — it was a single bool when the pipeline and grader owned one
// consumer thread per queue.
#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>

#include "common/error.hpp"

namespace cs31::common {

template <typename T>
struct BoundedQueue {
  mutable std::mutex mutex;
  std::condition_variable not_full, not_empty;
  std::deque<T> items;
  std::size_t capacity = 8;
  bool closed = false;
  std::size_t consumers_active = 0;  ///< popped items not yet done()
  std::uint64_t waits = 0;       ///< producer blocks on full
  std::uint64_t high_water = 0;  ///< max queue depth observed

  BoundedQueue() = default;
  explicit BoundedQueue(std::size_t cap) : capacity(cap) {}

  void push(T item) {
    std::unique_lock lock(mutex);
    require(!closed, "bounded queue: push after close");
    if (items.size() >= capacity) {
      ++waits;
      not_full.wait(lock, [&] { return items.size() < capacity || closed; });
      require(!closed, "bounded queue: push after close");
    }
    items.push_back(std::move(item));
    high_water = std::max<std::uint64_t>(high_water, items.size());
    not_empty.notify_all();
  }

  /// False when closed and drained; counts the consumer as busy while
  /// the item is out (cleared by done()).
  bool pop(T& out) {
    std::unique_lock lock(mutex);
    not_empty.wait(lock, [&] { return !items.empty() || closed; });
    if (items.empty()) return false;
    out = std::move(items.front());
    items.pop_front();
    ++consumers_active;
    not_full.notify_all();
    return true;
  }

  /// Non-blocking pop: false when nothing is available *right now*
  /// (empty, whether or not closed). Same done() contract as pop.
  bool try_pop(T& out) {
    std::scoped_lock lock(mutex);
    if (items.empty()) return false;
    out = std::move(items.front());
    items.pop_front();
    ++consumers_active;
    not_full.notify_all();
    return true;
  }

  void done() {
    std::scoped_lock lock(mutex);
    if (consumers_active > 0) --consumers_active;
    // wait_drained waits on not_full too (an empty queue is "not full").
    not_full.notify_all();
  }

  void close() {
    std::scoped_lock lock(mutex);
    closed = true;
    not_empty.notify_all();
    not_full.notify_all();
  }

  void wait_drained() {
    std::unique_lock lock(mutex);
    not_full.wait(lock, [&] { return items.empty() && consumers_active == 0; });
  }
};

}  // namespace cs31::common
