// The kit's backpressure primitive: a bounded FIFO with a blocking
// push, shared by every producer/consumer stage that must cap its
// memory no matter how far the consumer falls behind. Extracted from
// trace::AnalysisPipeline (which pioneered it as the batch and
// per-shard chunk queue) so cs31::grader's ingest and worker queues are
// the same implementation, not a copy.
//
// Semantics (unchanged from the pipeline original):
//   push          blocks while the queue is full — that block IS the
//                 backpressure; `waits` counts how often it happened.
//                 Throws cs31::Error after close().
//   pop           blocks until an item or close; returns false only
//                 when closed AND drained, so a closed queue still
//                 delivers everything it holds. Marks the consumer
//                 busy until done().
//   done          the consumer finished the popped item. wait_drained
//                 needs this: "empty" alone would declare a queue
//                 drained while its consumer still chews the last item.
//   wait_drained  blocks until the queue is empty and the consumer is
//                 idle — the building block for a stage-ordered
//                 wait_idle across a multi-queue topology.
//   close         wakes everyone; pending items still drain.
//
// MPSC discipline: any number of pushers, one popper. (Multiple
// poppers would not corrupt the queue, but consumer_busy tracks only
// one outstanding item, so wait_drained's guarantee assumes a single
// consumer thread.)
#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>

#include "common/error.hpp"

namespace cs31::common {

template <typename T>
struct BoundedQueue {
  mutable std::mutex mutex;
  std::condition_variable not_full, not_empty;
  std::deque<T> items;
  std::size_t capacity = 8;
  bool closed = false;
  bool consumer_busy = false;
  std::uint64_t waits = 0;       ///< producer blocks on full
  std::uint64_t high_water = 0;  ///< max queue depth observed

  BoundedQueue() = default;
  explicit BoundedQueue(std::size_t cap) : capacity(cap) {}

  void push(T item) {
    std::unique_lock lock(mutex);
    require(!closed, "bounded queue: push after close");
    if (items.size() >= capacity) {
      ++waits;
      not_full.wait(lock, [&] { return items.size() < capacity || closed; });
      require(!closed, "bounded queue: push after close");
    }
    items.push_back(std::move(item));
    high_water = std::max<std::uint64_t>(high_water, items.size());
    not_empty.notify_all();
  }

  /// False when closed and drained; sets consumer_busy while an item
  /// is out (cleared by done()).
  bool pop(T& out) {
    std::unique_lock lock(mutex);
    not_empty.wait(lock, [&] { return !items.empty() || closed; });
    if (items.empty()) return false;
    out = std::move(items.front());
    items.pop_front();
    consumer_busy = true;
    not_full.notify_all();
    return true;
  }

  void done() {
    std::scoped_lock lock(mutex);
    consumer_busy = false;
    // wait_drained waits on not_full too (an empty queue is "not full").
    not_full.notify_all();
  }

  void close() {
    std::scoped_lock lock(mutex);
    closed = true;
    not_empty.notify_all();
    not_full.notify_all();
  }

  void wait_drained() {
    std::unique_lock lock(mutex);
    not_full.wait(lock, [&] { return items.empty() && !consumer_busy; });
  }
};

}  // namespace cs31::common
