// Command parser library (CS 31 Lab 8): tokenize a command line into an
// argv vector and detect the trailing ampersand that requests background
// execution. Tokenization is built on the kit's own C string library
// (str_token), the way the lab layers the parser over earlier work.
#pragma once

#include <string>
#include <vector>

namespace cs31::shell {

/// A parsed command line.
struct ParsedCommand {
  std::vector<std::string> argv;  ///< command name + arguments
  bool background = false;        ///< trailing '&' present

  [[nodiscard]] bool empty() const { return argv.empty(); }
};

/// Parse one command line. Whitespace separates tokens; a final "&"
/// (either its own token or glued to the last one) marks a background
/// command. Throws cs31::Error when '&' appears anywhere but the end.
[[nodiscard]] ParsedCommand parse_command(const std::string& line);

}  // namespace cs31::shell
