#include "shell/parser.hpp"

#include <memory>

#include "common/error.hpp"
#include "cstr/cstring.hpp"

namespace cs31::shell {

ParsedCommand parse_command(const std::string& line) {
  // Tokenize with the kit's own strtok_r over a mutable copy.
  const std::unique_ptr<char[]> buffer = cstr::str_duplicate(line.c_str());
  ParsedCommand cmd;
  char* save = nullptr;
  for (char* tok = cstr::str_token(buffer.get(), " \t\n", &save); tok != nullptr;
       tok = cstr::str_token(nullptr, " \t\n", &save)) {
    cmd.argv.emplace_back(tok);
  }

  // Background detection: '&' as the final token, or glued to it.
  for (std::size_t i = 0; i < cmd.argv.size(); ++i) {
    std::string& tok = cmd.argv[i];
    const std::size_t amp = tok.find('&');
    if (amp == std::string::npos) continue;
    const bool last_token = i + 1 == cmd.argv.size();
    require(last_token && amp == tok.size() - 1,
            "'&' is only allowed at the end of a command");
    cmd.background = true;
    tok.erase(amp);
    if (tok.empty()) cmd.argv.pop_back();
    break;
  }
  require(!(cmd.background && cmd.argv.empty()), "'&' with no command");
  return cmd;
}

}  // namespace cs31::shell
