#include "shell/shell.hpp"

#include <sstream>

#include "common/error.hpp"

namespace cs31::shell {

Shell::Shell(os::Kernel& kernel) : kernel_(kernel) {}

void Shell::install(const std::string& name, CommandFactory factory) {
  commands_[name] = std::move(factory);
}

void Shell::install_standard_commands() {
  install("echo", [](const std::vector<std::string>& argv) {
    std::string text;
    for (std::size_t i = 1; i < argv.size(); ++i) {
      if (i > 1) text += ' ';
      text += argv[i];
    }
    return os::ProgramBuilder().print(text).exit(0).build();
  });
  install("yes", [](const std::vector<std::string>& argv) {
    const std::string word = argv.size() > 1 ? argv[1] : "y";
    os::ProgramBuilder b;
    for (int i = 0; i < 5; ++i) b.print(word);  // bounded, unlike the real one
    return b.exit(0).build();
  });
  install("countdown", [](const std::vector<std::string>& argv) {
    int n = 3;
    if (argv.size() > 1) n = std::stoi(argv[1]);
    os::ProgramBuilder b;
    for (int i = n; i >= 1; --i) b.print(std::to_string(i));
    return b.print("liftoff").exit(0).build();
  });
  install("spin", [](const std::vector<std::string>& argv) {
    int ticks = 10;
    if (argv.size() > 1) ticks = std::stoi(argv[1]);
    return os::ProgramBuilder().compute(ticks).exit(0).build();
  });
  install("false", [](const std::vector<std::string>&) {
    return os::ProgramBuilder().exit(1).build();
  });
}

void Shell::remember(const std::string& line) {
  history_.push_back(line);
  ++next_history_id_;
  if (history_.size() > kHistorySize) {
    history_.pop_front();
    ++history_base_;
  }
}

std::size_t Shell::reap_background() {
  std::size_t reaped = 0;
  for (Job& job : jobs_) {
    if (job.finished) continue;
    const os::ProcessInfo info = kernel_.info(job.pid);
    if (info.state == os::ProcState::Zombie || info.state == os::ProcState::Reaped) {
      job.finished = true;
      job.exit_status = info.exit_status;
      ++reaped;
    }
  }
  return reaped;
}

ShellResult Shell::run_foreground(const ParsedCommand& cmd, const std::string& line) {
  (void)line;
  ShellResult result;
  const auto it = commands_.find(cmd.argv[0]);
  if (it == commands_.end()) {
    result.ok = false;
    result.output = cmd.argv[0] + ": command not found\n";
    return result;
  }
  const std::uint32_t pid = kernel_.spawn(it->second(cmd.argv));
  // waitpid(pid, ...): drive the kernel until this child terminates.
  // Background jobs keep running during the wait, exactly as on Unix.
  while (true) {
    const os::ProcessInfo info = kernel_.info(pid);
    if (info.state == os::ProcState::Zombie || info.state == os::ProcState::Reaped) {
      result.status = info.exit_status;
      break;
    }
    if (!kernel_.tick()) break;  // nothing runnable: child is stuck/never
  }
  reap_background();
  return result;
}

ShellResult Shell::run_background(const ParsedCommand& cmd, const std::string& line) {
  ShellResult result;
  const auto it = commands_.find(cmd.argv[0]);
  if (it == commands_.end()) {
    result.ok = false;
    result.output = cmd.argv[0] + ": command not found\n";
    return result;
  }
  const std::uint32_t pid = kernel_.spawn(it->second(cmd.argv));
  jobs_.push_back(Job{pid, line, false, 0});
  std::ostringstream out;
  out << "[" << jobs_.size() << "] " << pid << "\n";
  result.output = out.str();
  return result;
}

ShellResult Shell::run_line(const std::string& line) {
  ShellResult result;

  // History expansion (!n) happens before anything else, like bash.
  std::string effective = line;
  {
    ParsedCommand probe;
    try {
      probe = parse_command(line);
    } catch (const Error& e) {
      result.ok = false;
      result.output = std::string(e.what()) + "\n";
      return result;
    }
    if (!probe.empty() && probe.argv[0].size() > 1 && probe.argv[0][0] == '!') {
      std::uint64_t id = 0;
      try {
        id = std::stoull(probe.argv[0].substr(1));
      } catch (...) {
        result.ok = false;
        result.output = "history: bad event designator\n";
        return result;
      }
      if (id < history_base_ || id >= history_base_ + history_.size()) {
        result.ok = false;
        result.output = "history: no such event: " + std::to_string(id) + "\n";
        return result;
      }
      effective = history_[static_cast<std::size_t>(id - history_base_)];
    }
  }

  ParsedCommand cmd;
  try {
    cmd = parse_command(effective);
  } catch (const Error& e) {
    result.ok = false;
    result.output = std::string(e.what()) + "\n";
    return result;
  }
  if (cmd.empty()) return result;

  remember(effective);

  // Builtins run in the shell itself (no fork), as the lab requires.
  if (cmd.argv[0] == "exit") {
    result.exited = true;
    return result;
  }
  if (cmd.argv[0] == "history") {
    std::ostringstream out;
    for (std::size_t i = 0; i < history_.size(); ++i) {
      out << (history_base_ + i) << "  " << history_[i] << "\n";
    }
    result.output = out.str();
    return result;
  }
  if (cmd.argv[0] == "kill") {
    // kill %n — send SIGKILL to background job n (the signals unit
    // applied to the lab shell).
    if (cmd.argv.size() != 2 || cmd.argv[1].size() < 2 || cmd.argv[1][0] != '%') {
      result.ok = false;
      result.output = "usage: kill %<job>\n";
      return result;
    }
    std::size_t job_number = 0;
    try {
      job_number = std::stoul(cmd.argv[1].substr(1));
    } catch (...) {
      job_number = 0;
    }
    if (job_number == 0 || job_number > jobs_.size()) {
      result.ok = false;
      result.output = "kill: no such job: " + cmd.argv[1] + "\n";
      return result;
    }
    Job& job = jobs_[job_number - 1];
    if (job.finished) {
      result.output = "kill: job already done\n";
      return result;
    }
    kernel_.deliver(job.pid, os::Signal::Kill);
    // Let the kernel process the signal, then reap.
    while (!kernel_.idle()) {
      const os::ProcessInfo info = kernel_.info(job.pid);
      if (info.state == os::ProcState::Zombie || info.state == os::ProcState::Reaped) {
        break;
      }
      if (!kernel_.tick()) break;
    }
    reap_background();
    result.output = "[" + std::to_string(job_number) + "] Killed\n";
    return result;
  }
  if (cmd.argv[0] == "jobs") {
    reap_background();
    std::ostringstream out;
    for (std::size_t i = 0; i < jobs_.size(); ++i) {
      out << "[" << (i + 1) << "] " << (jobs_[i].finished ? "Done      " : "Running   ")
          << jobs_[i].command << "\n";
    }
    result.output = out.str();
    return result;
  }

  return cmd.background ? run_background(cmd, effective) : run_foreground(cmd, effective);
}

}  // namespace cs31::shell
