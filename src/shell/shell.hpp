// The Unix shell of CS 31 Lab 9, running on the kit's simulated kernel:
// foreground commands block until the child terminates; background
// commands ("cmd &") run concurrently and are reaped like a SIGCHLD
// handler would; plus the lab's simplified history mechanism (`history`
// lists recent commands, `!n` re-runs one).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "os/kernel.hpp"
#include "shell/parser.hpp"

namespace cs31::shell {

/// A "binary" the shell can exec: given argv, produce the kernel program
/// to run (the stand-in for the filesystem's executables).
using CommandFactory = std::function<os::Program(const std::vector<std::string>& argv)>;

/// One background job.
struct Job {
  std::uint32_t pid = 0;
  std::string command;
  bool finished = false;
  int exit_status = 0;
};

/// Result of running one command line.
struct ShellResult {
  bool ok = true;
  bool exited = false;        ///< the `exit` builtin ran
  int status = 0;             ///< foreground child's exit status
  std::string output;         ///< builtin output / error text
};

class Shell {
 public:
  /// The shell drives (and does not own) a kernel.
  explicit Shell(os::Kernel& kernel);

  /// Register an executable name. Re-registering replaces it.
  void install(const std::string& name, CommandFactory factory);

  /// Install the standard demo binaries: echo, yes (bounded), countdown,
  /// spin — enough to exercise fg/bg behaviour in examples and tests.
  void install_standard_commands();

  /// Run one command line end to end (parse, history, builtins,
  /// fork/exec/wait semantics). Never throws for user errors; they are
  /// reported in ShellResult.
  ShellResult run_line(const std::string& line);

  /// History, oldest first (bounded at kHistorySize).
  [[nodiscard]] const std::deque<std::string>& history() const { return history_; }

  /// Background jobs table (including finished ones).
  [[nodiscard]] const std::vector<Job>& jobs() const { return jobs_; }

  /// Reap finished background jobs (the waitpid(-1, WNOHANG) loop of the
  /// lab's SIGCHLD handler); returns how many were newly reaped.
  std::size_t reap_background();

  static constexpr std::size_t kHistorySize = 10;

 private:
  ShellResult run_foreground(const ParsedCommand& cmd, const std::string& line);
  ShellResult run_background(const ParsedCommand& cmd, const std::string& line);
  void remember(const std::string& line);

  os::Kernel& kernel_;
  std::map<std::string, CommandFactory> commands_;
  std::deque<std::string> history_;
  std::vector<Job> jobs_;
  std::uint64_t next_history_id_ = 1;
  std::uint64_t history_base_ = 1;  ///< id of history_.front()
};

}  // namespace cs31::shell
