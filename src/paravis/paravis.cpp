#include "paravis/paravis.hpp"

#include <sstream>

#include "common/error.hpp"

namespace cs31::paravis {

int region_color(int owner) {
  if (owner < 0) return 49;          // default background
  return 41 + owner % 8;             // ANSI backgrounds 41..48
}

std::string render(const FrameSource& frame, const VisConfig& config) {
  require(static_cast<bool>(frame.alive), "frame source needs an alive() callback");
  require(frame.rows > 0 && frame.cols > 0, "frame must have nonzero size");
  std::ostringstream out;
  for (std::size_t r = 0; r < frame.rows; ++r) {
    int current_color = -1;
    for (std::size_t c = 0; c < frame.cols; ++c) {
      if (config.ansi_colors && frame.owner) {
        const int color = region_color(frame.owner(r, c));
        if (color != current_color) {
          out << "\x1b[" << color << 'm';
          current_color = color;
        }
      }
      out << (frame.alive(r, c) ? config.alive : config.dead);
    }
    if (config.ansi_colors) out << "\x1b[0m";
    out << '\n';
  }
  return out.str();
}

void Recorder::record(const FrameSource& frame, const VisConfig& config) {
  frames_.push_back(render(frame, config));
}

}  // namespace cs31::paravis
