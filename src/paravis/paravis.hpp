// ParaVis substitute: the course's visualization library (Danner,
// Newhall, Webb, EduPar'19) renders a parallel application's 2-D grid
// with each thread's region in a different color so students can *see*
// their partitioning. This headless stand-in renders to ANSI-colored
// text (or plain ASCII), preserving the debugging function: cell state
// plus owning-thread region, frame by frame.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace cs31::paravis {

/// Rendering options.
struct VisConfig {
  bool ansi_colors = false;  ///< emit ANSI background colors per region
  char alive = '@';
  char dead = '.';
};

/// A frame: cell states plus the thread id owning each cell (-1 = no
/// owner shading). Both callbacks are indexed (row, col).
struct FrameSource {
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::function<bool(std::size_t, std::size_t)> alive;
  std::function<int(std::size_t, std::size_t)> owner;  ///< may be null
};

/// Render one frame to text. Throws cs31::Error when the source has no
/// alive() callback or zero size.
[[nodiscard]] std::string render(const FrameSource& frame, const VisConfig& config = {});

/// The 8 distinct ANSI background color codes cycled across threads.
[[nodiscard]] int region_color(int owner);

/// Collects frames into an animation log (what a GUI would play back);
/// useful in tests to assert on the evolution of a simulation.
class Recorder {
 public:
  void record(const FrameSource& frame, const VisConfig& config = {});
  [[nodiscard]] const std::vector<std::string>& frames() const { return frames_; }
  [[nodiscard]] std::size_t frame_count() const { return frames_.size(); }

 private:
  std::vector<std::string> frames_;
};

}  // namespace cs31::paravis
