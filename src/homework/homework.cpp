#include "homework/homework.hpp"

#include <sstream>

#include "bits/convert.hpp"
#include "common/error.hpp"
#include "logic/circuit.hpp"
#include "os/interleave.hpp"

namespace cs31::homework {

namespace {

/// The deterministic generator shared by every problem set.
class Rng {
 public:
  explicit Rng(std::uint32_t seed) : state_(seed | 1u) {}
  std::uint32_t next(std::uint32_t mod) {
    state_ = state_ * 1664525u + 1013904223u;
    return (state_ >> 8) % mod;
  }

 private:
  std::uint32_t state_;
};

}  // namespace

std::vector<ConversionProblem> conversion_set(std::uint32_t seed, std::size_t count) {
  require(count >= 1, "empty problem set");
  Rng rng(seed);
  std::vector<ConversionProblem> problems;
  for (std::size_t i = 0; i < count; ++i) {
    ConversionProblem p;
    p.width = 4 + 4 * static_cast<int>(rng.next(4));  // 4, 8, 12, 16
    p.pattern = rng.next(static_cast<std::uint32_t>(bits::max_unsigned(p.width)) + 1u);
    const bits::Word w(p.pattern, p.width);
    p.binary = bits::to_binary_grouped(p.pattern, p.width);
    p.hex = bits::to_hex(p.pattern, p.width);
    p.as_signed = w.as_signed();
    p.as_unsigned = w.as_unsigned();
    p.prompt = "Convert " + p.hex + " (" + std::to_string(p.width) +
               "-bit) to binary, and give its unsigned and signed (two's "
               "complement) decimal readings.";
    problems.push_back(p);
  }
  return problems;
}

std::vector<ArithmeticProblem> arithmetic_set(std::uint32_t seed, std::size_t count) {
  require(count >= 1, "empty problem set");
  Rng rng(seed);
  std::vector<ArithmeticProblem> problems;
  for (std::size_t i = 0; i < count; ++i) {
    ArithmeticProblem p;
    p.width = 8;
    p.a = rng.next(256);
    p.b = rng.next(256);
    p.key = bits::add(bits::Word(p.a, 8), bits::Word(p.b, 8));
    p.prompt = "Compute " + bits::to_hex(p.a, 8) + " + " + bits::to_hex(p.b, 8) +
               " at 8 bits. Give the result pattern and state whether carry-out "
               "and signed overflow occur.";
    problems.push_back(p);
  }
  return problems;
}

CircuitProblem circuit_problem(std::uint32_t seed) {
  Rng rng(seed);
  CircuitProblem p;
  p.inputs = 3;

  // Build out = (a OP1 b) OP2 (maybe-NOT c) in a real Circuit, and
  // derive both the prose and the key from the same netlist.
  logic::Circuit circuit;
  const logic::Wire a = circuit.input("a");
  const logic::Wire b = circuit.input("b");
  const logic::Wire c = circuit.input("c");

  struct GateChoice {
    logic::GateKind kind;
    const char* name;
  };
  static const GateChoice kGates[] = {
      {logic::GateKind::And, "AND"}, {logic::GateKind::Or, "OR"},
      {logic::GateKind::Xor, "XOR"}, {logic::GateKind::Nand, "NAND"},
      {logic::GateKind::Nor, "NOR"},
  };
  const GateChoice& g1 = kGates[rng.next(5)];
  const GateChoice& g2 = kGates[rng.next(5)];
  const bool negate_c = rng.next(2) == 1;

  const logic::Wire left = circuit.gate(g1.kind, a, b);
  const logic::Wire right = negate_c ? circuit.not_(c) : c;
  const logic::Wire out = circuit.gate(g2.kind, left, right);

  p.description = std::string("out = (a ") + g1.name + " b) " + g2.name +
                  (negate_c ? " (NOT c)" : " c");
  p.truth_table = logic::truth_table(circuit, {a, b, c}, out);
  return p;
}

std::vector<AsmTraceProblem> asm_trace_set(std::uint32_t seed, std::size_t count) {
  require(count >= 1, "empty problem set");
  Rng rng(seed);
  std::vector<AsmTraceProblem> problems;
  for (std::size_t i = 0; i < count; ++i) {
    // 4-6 random arithmetic instructions over eax/ebx/ecx, seeded with
    // movl immediates so the trace is fully determined.
    std::ostringstream src;
    src << "    movl $" << rng.next(20) << ", %eax\n";
    src << "    movl $" << (1 + rng.next(10)) << ", %ebx\n";
    src << "    movl $" << rng.next(10) << ", %ecx\n";
    const int extra = 2 + static_cast<int>(rng.next(3));
    static const char* kRegs[] = {"%eax", "%ebx", "%ecx"};
    for (int k = 0; k < extra; ++k) {
      const char* dst = kRegs[rng.next(3)];
      const char* src_reg = kRegs[rng.next(3)];
      switch (rng.next(4)) {
        case 0: src << "    addl " << src_reg << ", " << dst << "\n"; break;
        case 1: src << "    subl " << src_reg << ", " << dst << "\n"; break;
        case 2: src << "    imull " << src_reg << ", " << dst << "\n"; break;
        case 3: src << "    xorl " << src_reg << ", " << dst << "\n"; break;
      }
    }
    src << "    hlt\n";
    AsmTraceProblem p;
    p.source = src.str();
    isa::Machine machine;
    machine.load(isa::assemble(p.source));
    machine.run();
    p.eax = machine.reg(isa::Reg::Eax);
    p.ebx = machine.reg(isa::Reg::Ebx);
    p.ecx = machine.reg(isa::Reg::Ecx);
    problems.push_back(std::move(p));
  }
  return problems;
}

CacheTraceProblem cache_trace_problem(std::uint32_t seed, std::uint32_t associativity,
                                      std::size_t accesses) {
  require(accesses >= 1, "empty access list");
  Rng rng(seed);
  CacheTraceProblem p;
  p.config.block_bytes = 16;
  p.config.num_lines = 8;
  p.config.associativity = associativity;
  memhier::Cache cache(p.config);  // validates associativity

  // A homework-flavored mix: a few distinct blocks, revisited, with a
  // deliberate conflict pair.
  for (std::size_t i = 0; i < accesses; ++i) {
    const std::uint32_t block = rng.next(6);
    const std::uint32_t conflict = rng.next(3) == 0 ? 0x200u : 0u;
    p.addresses.push_back(block * 16 + conflict + 4 * rng.next(4));
  }
  for (const std::uint32_t address : p.addresses) {
    const memhier::AddressParts parts = cache.split(address);
    const memhier::AccessResult r = cache.read(address);
    p.key.push_back(CacheTraceProblem::Row{r.hit, r.evicted, parts.tag, parts.index,
                                           parts.offset});
  }
  p.final_hit_rate = cache.stats().hit_rate();
  return p;
}

VmTraceProblem vm_trace_problem(std::uint32_t seed, bool two_processes,
                                std::size_t accesses) {
  require(accesses >= 1, "empty access list");
  Rng rng(seed);
  VmTraceProblem p;
  p.config.page_bytes = 256;
  p.config.virtual_pages = 8;
  p.config.physical_frames = 3;
  vm::PagingSystem system(p.config);
  std::vector<std::uint32_t> pids = {system.create_process()};
  if (two_processes) pids.push_back(system.create_process());

  for (std::size_t i = 0; i < accesses; ++i) {
    VmTraceProblem::Access a;
    a.process = two_processes ? rng.next(2) : 0;
    a.virtual_address = rng.next(5) * 256 + rng.next(256);  // 5-page working set
    p.accesses.push_back(a);
    system.switch_to(pids[a.process]);
    const vm::VmAccessResult r = system.access(a.virtual_address, rng.next(3) == 0);
    p.key.push_back(VmTraceProblem::Row{
        r.page_fault, r.evicted, r.physical_address / p.config.page_bytes});
  }
  p.final_frames = system.dump_frames();
  return p;
}

ForkProblem fork_problem(std::uint32_t seed) {
  Rng rng(seed);
  ForkProblem p;
  // Parent prints a1..aN after forking a child that prints b1..bM; a
  // classic "list all possible outputs" exercise sized to stay
  // enumerable.
  const std::size_t parent_prints = 2 + rng.next(2);
  const std::size_t child_prints = 1 + rng.next(2);
  std::vector<std::string> parent_seq, child_seq;
  for (std::size_t i = 0; i < parent_prints; ++i) {
    parent_seq.push_back("parent" + std::to_string(i + 1));
  }
  for (std::size_t i = 0; i < child_prints; ++i) {
    child_seq.push_back("child" + std::to_string(i + 1));
  }
  p.sequences = {parent_seq, child_seq};
  std::ostringstream desc;
  desc << "if (fork() == 0) {\n";
  for (const std::string& line : child_seq) desc << "    printf(\"" << line << "\\n\");\n";
  desc << "    exit(0);\n}\n";
  for (const std::string& line : parent_seq) desc << "printf(\"" << line << "\\n\");\n";
  desc << "wait(NULL);\n";
  p.description = desc.str();
  p.possible_outputs = os::all_interleavings(p.sequences);
  return p;
}

bool grade_fork_answer(const ForkProblem& problem,
                       const std::vector<std::string>& claimed) {
  return os::is_possible_output(problem.sequences, claimed);
}

Worksheet render_worksheet(std::uint32_t seed) {
  std::ostringstream problems, key;
  int number = 1;

  problems << "CS 31 practice worksheet (seed " << seed << ")\n";
  problems << "=========================================\n\n";
  key << "Answer key (seed " << seed << ")\n";
  key << "=========================\n\n";

  for (const ConversionProblem& p : conversion_set(seed, 3)) {
    problems << number << ". " << p.prompt << "\n\n";
    key << number << ". binary " << p.binary << ", unsigned " << p.as_unsigned
        << ", signed " << p.as_signed << "\n";
    ++number;
  }
  for (const ArithmeticProblem& p : arithmetic_set(seed + 1, 2)) {
    problems << number << ". " << p.prompt << "\n\n";
    key << number << ". result " << bits::to_hex(p.key.pattern, 8) << ", carry "
        << (p.key.flags.carry ? "yes" : "no") << ", overflow "
        << (p.key.flags.overflow ? "yes" : "no") << "\n";
    ++number;
  }
  {
    const CircuitProblem p = circuit_problem(seed + 6);
    problems << number << ". Produce the logic table of: " << p.description
             << "  (rows ordered a=bit0, b=bit1, c=bit2)\n\n";
    key << number << ".";
    for (const bool row : p.truth_table) key << " " << (row ? 1 : 0);
    key << "\n";
    ++number;
  }
  for (const AsmTraceProblem& p : asm_trace_set(seed + 2, 2)) {
    problems << number << ". Trace this program; give eax, ebx, ecx at hlt:\n"
             << p.source << "\n";
    key << number << ". eax=" << static_cast<std::int32_t>(p.eax)
        << " ebx=" << static_cast<std::int32_t>(p.ebx)
        << " ecx=" << static_cast<std::int32_t>(p.ecx) << "\n";
    ++number;
  }
  {
    const CacheTraceProblem p = cache_trace_problem(seed + 3, 2);
    problems << number << ". Trace these reads through a " << p.config.block_bytes
             << "B-block, " << p.config.num_lines << "-line, "
             << p.config.associativity
             << "-way LRU cache; mark each hit/miss:\n   ";
    for (const std::uint32_t address : p.addresses) {
      problems << "0x" << std::hex << address << std::dec << " ";
    }
    problems << "\n\n";
    key << number << ".";
    for (const CacheTraceProblem::Row& row : p.key) {
      key << " " << (row.hit ? "H" : (row.evicted ? "M(evict)" : "M"));
    }
    key << "\n";
    ++number;
  }
  {
    const VmTraceProblem p = vm_trace_problem(seed + 5, /*two_processes=*/false, 8);
    problems << number << ". Trace these virtual accesses through a "
             << p.config.physical_frames << "-frame, " << p.config.page_bytes
             << "-byte-page system (LRU); mark each fault and give the frame:\n   ";
    for (const VmTraceProblem::Access& a : p.accesses) {
      problems << "0x" << std::hex << a.virtual_address << std::dec << " ";
    }
    problems << "\n\n";
    key << number << ".";
    for (const VmTraceProblem::Row& row : p.key) {
      key << " " << (row.fault ? "F" : "h") << row.frame;
    }
    key << "\n";
    ++number;
  }
  {
    const ForkProblem p = fork_problem(seed + 4);
    problems << number << ". List every possible output of:\n" << p.description << "\n";
    key << number << ". " << p.possible_outputs.size() << " possible orderings, e.g.:";
    for (const std::string& line : p.possible_outputs.front()) key << " " << line;
    key << "\n";
  }
  return Worksheet{problems.str(), key.str()};
}

}  // namespace cs31::homework
