// Homework generators and answer keys (paper §III-B "Written
// Homeworks"): parameterized problem generators for the course's weekly
// drill topics, each paired with a machine-computed solution so the
// worksheet is self-grading. Every generator is deterministic per seed
// and computes its key by running the corresponding kit substrate — the
// key is *simulated*, never hand-derived.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bits/integer.hpp"
#include "isa/machine.hpp"
#include "memhier/cache.hpp"
#include "os/kernel.hpp"
#include "vm/paging.hpp"

namespace cs31::homework {

/// "Binary and arithmetic": convert a value between bases and read it
/// both signed and unsigned.
struct ConversionProblem {
  int width = 8;
  std::uint64_t pattern = 0;
  std::string prompt;        ///< e.g. "Convert 0xa3 (8-bit) to binary; give
                             ///  its signed and unsigned decimal readings."
  std::string binary;        ///< answer key
  std::string hex;
  std::int64_t as_signed = 0;
  std::uint64_t as_unsigned = 0;
};
[[nodiscard]] std::vector<ConversionProblem> conversion_set(std::uint32_t seed,
                                                            std::size_t count);

/// "Binary and arithmetic" part 2: add two fixed-width values; report
/// result pattern plus carry/overflow flags.
struct ArithmeticProblem {
  int width = 8;
  std::uint64_t a = 0, b = 0;
  std::string prompt;
  bits::ArithResult key;
};
[[nodiscard]] std::vector<ArithmeticProblem> arithmetic_set(std::uint32_t seed,
                                                            std::size_t count);

/// "Circuits": trace a randomly generated two-level combinational
/// circuit to produce its logic table (the homework's "tracing through
/// a circuit to produce its logic table").
struct CircuitProblem {
  std::string description;        ///< e.g. "out = (a AND b) XOR (NOT c)"
  unsigned inputs = 3;
  std::vector<bool> truth_table;  ///< key: 2^inputs rows, input bits of
                                  ///  row i are the binary digits of i
};
[[nodiscard]] CircuitProblem circuit_problem(std::uint32_t seed);

/// "Simple assembly": trace a short straight-line program; give final
/// register values.
struct AsmTraceProblem {
  std::string source;                 ///< the worksheet listing
  std::uint32_t eax = 0, ebx = 0, ecx = 0;  ///< answer key after hlt
};
[[nodiscard]] std::vector<AsmTraceProblem> asm_trace_set(std::uint32_t seed,
                                                         std::size_t count);

/// "Direct mapped / set associative caching": trace accesses through a
/// cache; give hit/miss (and eviction) per access.
struct CacheTraceProblem {
  memhier::CacheConfig config;
  std::vector<std::uint32_t> addresses;
  struct Row {
    bool hit = false;
    bool evicted = false;
    std::uint32_t tag = 0, index = 0, offset = 0;
  };
  std::vector<Row> key;
  double final_hit_rate = 0;
};
[[nodiscard]] CacheTraceProblem cache_trace_problem(std::uint32_t seed,
                                                    std::uint32_t associativity,
                                                    std::size_t accesses = 10);

/// "Virtual memory 1/2": trace virtual accesses (optionally across two
/// processes); give fault/frame per access and the final frame table.
struct VmTraceProblem {
  vm::PagingConfig config;
  struct Access {
    std::uint32_t process = 0;  ///< 0 or 1 (index, not pid)
    std::uint32_t virtual_address = 0;
  };
  std::vector<Access> accesses;
  struct Row {
    bool fault = false;
    bool evicted = false;
    std::uint32_t frame = 0;
  };
  std::vector<Row> key;
  std::string final_frames;  ///< dump_frames() at the end
};
[[nodiscard]] VmTraceProblem vm_trace_problem(std::uint32_t seed, bool two_processes,
                                              std::size_t accesses = 12);

/// "Processes": a fork program; list every possible output ordering.
struct ForkProblem {
  std::string description;  ///< pseudo-C rendering of the program
  std::vector<std::vector<std::string>> sequences;  ///< per-process prints
  std::vector<std::vector<std::string>> possible_outputs;  ///< the key
};
[[nodiscard]] ForkProblem fork_problem(std::uint32_t seed);

/// Grade a claimed output for a fork problem.
[[nodiscard]] bool grade_fork_answer(const ForkProblem& problem,
                                     const std::vector<std::string>& claimed);

/// Render a complete worksheet (prompts only) and its answer key.
struct Worksheet {
  std::string problems;
  std::string answer_key;
};
[[nodiscard]] Worksheet render_worksheet(std::uint32_t seed);

}  // namespace cs31::homework
