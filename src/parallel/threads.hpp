// Thread-team management and data partitioning in the pthreads idiom of
// CS 31's shared-memory module: spawn N workers with ids, join them all,
// and split 1-D ranges or 2-D grids into the per-thread blocks students
// compute by hand in Lab 10 (vertical or horizontal grid partitioning).
#pragma once

#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

#include "trace/context.hpp"

namespace cs31::parallel {

/// Half-open index range [begin, end) owned by one thread.
struct Range {
  std::size_t begin = 0;
  std::size_t end = 0;
  [[nodiscard]] std::size_t size() const { return end - begin; }
  friend bool operator==(const Range&, const Range&) = default;
};

/// Split [0, n) into `parts` contiguous blocks whose sizes differ by at
/// most one (the first n % parts blocks get the extra element) — the
/// partitioning rule Lab 10 asks students to derive. Throws cs31::Error
/// when parts == 0.
[[nodiscard]] std::vector<Range> block_partition(std::size_t n, std::size_t parts);

/// 2-D grid partition: split rows (Horizontal) or columns (Vertical)
/// among threads; each thread gets a band of complete rows/columns.
enum class GridSplit { Horizontal, Vertical };

struct GridRegion {
  Range rows;
  Range cols;
  friend bool operator==(const GridRegion&, const GridRegion&) = default;
};

[[nodiscard]] std::vector<GridRegion> grid_partition(std::size_t rows, std::size_t cols,
                                                     std::size_t parts, GridSplit split);

/// pthread_create/pthread_join in miniature: run `body(thread_id)` on
/// `count` threads and join them all. The destructor joins any threads
/// still running (RAII; no detached threads in the kit).
class ThreadTeam {
 public:
  /// Throws cs31::Error when count == 0.
  ThreadTeam(std::size_t count, const std::function<void(std::size_t)>& body);

  /// Traced variant: the spawning thread records a Fork edge per worker
  /// (happens-before edge parent -> child, and the parent's buffer is
  /// drained so a drain is always a consistent prefix), each worker
  /// binds its OS thread to its trace id before running `body`, and
  /// join() records Join edges (child -> parent) and drains each
  /// child's buffer. Everything `body` captures through `ctx` is then
  /// ordered correctly for every attached sink.
  ThreadTeam(std::size_t count, trace::TraceContext& ctx,
             const std::function<void(std::size_t)>& body);

  ~ThreadTeam();

  ThreadTeam(const ThreadTeam&) = delete;
  ThreadTeam& operator=(const ThreadTeam&) = delete;

  /// Join all workers (idempotent: a second call is a no-op, as is a
  /// destructor after an explicit join).
  void join();

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// The trace id of worker `t` (traced teams only; empty otherwise) —
  /// lets a traced body name itself without calling ctx.self().
  [[nodiscard]] const std::vector<trace::ThreadId>& traced_ids() const {
    return traced_ids_;
  }

 private:
  std::vector<std::thread> workers_;
  trace::TraceContext* tracer_ = nullptr;
  std::vector<trace::ThreadId> traced_ids_;
  bool trace_joined_ = false;
};

/// Fork-join parallel loop: split [0, n) into `threads` blocks and run
/// `body(range, thread_id)` on real threads, joining before returning.
/// Pass a TraceContext to run the same loop traced: fork/join edges are
/// recorded and whatever `body` captures through the context is
/// correctly ordered for race detection (`ctx == nullptr` is the plain
/// untraced loop).
void parallel_for(std::size_t n, std::size_t threads,
                  const std::function<void(Range, std::size_t)>& body,
                  trace::TraceContext* ctx = nullptr);

}  // namespace cs31::parallel
