// Synchronization primitives in the pthreads style CS 31 teaches: a
// counting Barrier and a bounded-buffer producer/consumer queue built
// from mutexes and condition variables (not std::barrier — the point is
// the construction students learn), plus the shared-counter apparatus
// used to demonstrate data races, critical sections, and atomic fixes.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <vector>

namespace cs31::parallel {

/// Cyclic barrier with pthread_barrier_wait semantics: every cycle,
/// exactly one waiter is told it was the "serial thread" (the last to
/// arrive), mirroring PTHREAD_BARRIER_SERIAL_THREAD.
class Barrier {
 public:
  /// Throws cs31::Error when count == 0.
  explicit Barrier(std::size_t count);

  Barrier(const Barrier&) = delete;
  Barrier& operator=(const Barrier&) = delete;

  /// Block until `count` threads have arrived. Returns true for the
  /// last arriver of this cycle.
  bool wait();

  /// Completed cycles so far (each round of a parallel simulation).
  [[nodiscard]] std::uint64_t cycles() const;

 private:
  const std::size_t count_;
  std::size_t arrived_ = 0;
  std::uint64_t generation_ = 0;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
};

/// The lecture's shared-counter race demonstration: N threads each
/// increment a counter `per_thread` times, with a selectable protection
/// strategy. `run()` reports the final value so callers can observe the
/// lost updates of the unsynchronized version.
class SharedCounter {
 public:
  enum class Mode {
    Unsynchronized,  ///< read-modify-write race (torn updates likely)
    MutexPerIncrement,
    Atomic,
    LocalThenMerge,  ///< per-thread partial counts merged under one lock
  };

  /// Run the experiment with real threads. Returns the final counter.
  /// A correct mode always returns threads * per_thread; the
  /// unsynchronized mode usually returns less on real hardware.
  static std::uint64_t run(Mode mode, unsigned threads, std::uint64_t per_thread);
};

/// Bounded buffer (the producer/consumer problem that closes the CS 31
/// parallelism module), built from one mutex and two condition
/// variables. Blocking counts are tracked so experiments can report
/// contention (E9).
class BoundedBuffer {
 public:
  /// Throws cs31::Error when capacity == 0.
  explicit BoundedBuffer(std::size_t capacity);

  BoundedBuffer(const BoundedBuffer&) = delete;
  BoundedBuffer& operator=(const BoundedBuffer&) = delete;

  /// Block while full, then enqueue.
  void put(std::int64_t item);

  /// Block while empty, then dequeue.
  [[nodiscard]] std::int64_t get();

  /// Nonblocking variants; nullopt/false when the buffer is empty/full.
  bool try_put(std::int64_t item);
  [[nodiscard]] std::optional<std::int64_t> try_get();

  /// Close the buffer: blocked and future get() calls drain remaining
  /// items, then return nullopt via get_until_closed().
  void close();

  /// Blocking get that returns nullopt once the buffer is closed and
  /// drained — the consumer-loop idiom.
  [[nodiscard]] std::optional<std::int64_t> get_until_closed();

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::uint64_t producer_blocks() const { return producer_blocks_.load(); }
  [[nodiscard]] std::uint64_t consumer_blocks() const { return consumer_blocks_.load(); }

 private:
  const std::size_t capacity_;
  std::vector<std::int64_t> ring_;
  std::size_t head_ = 0, tail_ = 0, count_ = 0;
  bool closed_ = false;
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::atomic<std::uint64_t> producer_blocks_{0};
  std::atomic<std::uint64_t> consumer_blocks_{0};
};

}  // namespace cs31::parallel
