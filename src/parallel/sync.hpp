// Synchronization primitives in the pthreads style CS 31 teaches: a
// counting Barrier and a bounded-buffer producer/consumer queue built
// from mutexes and condition variables (not std::barrier — the point is
// the construction students learn), plus the shared-counter apparatus
// used to demonstrate data races, critical sections, and atomic fixes.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "race/detector.hpp"
#include "trace/context.hpp"

namespace cs31::parallel {

/// Cyclic barrier with pthread_barrier_wait semantics: every cycle,
/// exactly one waiter is told it was the "serial thread" (the last to
/// arrive), mirroring PTHREAD_BARRIER_SERIAL_THREAD.
class Barrier {
 public:
  /// Throws cs31::Error when count == 0.
  explicit Barrier(std::size_t count);

  Barrier(const Barrier&) = delete;
  Barrier& operator=(const Barrier&) = delete;

  /// Block until `count` threads have arrived. Returns true for the
  /// last arriver of this cycle.
  bool wait();

  /// Completed cycles so far (each round of a parallel simulation).
  [[nodiscard]] std::uint64_t cycles() const;

  /// Report each completed cycle to a trace context as a happens-before
  /// edge among that cycle's waiters, and drain their buffers (every
  /// waiter is blocked in the barrier while the last arriver drains, so
  /// a barrier is a natural bounded-memory drain point). Every thread
  /// that calls wait() must be bound to `ctx` (e.g. spawned by a traced
  /// ThreadTeam). Attach before the first wait().
  ///
  /// `report_edges = false` is the "forgotten barrier" teaching mode:
  /// the real barrier still runs (the execution stays well-defined) but
  /// the happens-before edge is withheld from the sinks, so the
  /// detector sees — deterministically — exactly the races the program
  /// would have without the barrier.
  void attach_tracer(trace::TraceContext& ctx, bool report_edges = true);

 private:
  const std::size_t count_;
  std::size_t arrived_ = 0;
  std::uint64_t generation_ = 0;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  trace::TraceContext* tracer_ = nullptr;
  bool report_edges_ = true;
  std::vector<trace::ThreadId> cycle_waiters_;
};

/// The lecture's shared-counter race demonstration: N threads each
/// increment a counter `per_thread` times, with a selectable protection
/// strategy. `run()` reports the final value so callers can observe the
/// lost updates of the unsynchronized version.
class SharedCounter {
 public:
  enum class Mode {
    Unsynchronized,  ///< read-modify-write race (torn updates likely)
    MutexPerIncrement,
    Atomic,
    LocalThenMerge,  ///< per-thread partial counts merged under one lock
  };

  /// Run the experiment with real threads. Returns the final counter.
  ///
  /// Guarantees (and the only safe assertions to make about them):
  /// a correct mode always returns exactly threads * per_thread; the
  /// Unsynchronized mode is only *bounded above* by that — lost updates
  /// can drive the result arbitrarily low (even below per_thread: a
  /// stale read can erase whole stretches of other threads' work), and
  /// on a fast or single-core machine it can coincidentally be exact.
  /// That statistical flakiness is why the race detector exists: use
  /// run_traced() to get a deterministic verdict instead of eyeballing
  /// the lost updates.
  static std::uint64_t run(Mode mode, unsigned threads, std::uint64_t per_thread);

  /// run() with `detect_races` semantics: execute the same experiment
  /// through the cs31::trace capture layer and return the detector's
  /// verdict alongside the count. Detection is deterministic — it
  /// depends on the happens-before structure of the mode, not on the
  /// scheduler — so Unsynchronized is *always* flagged (with both
  /// access sites) and the synchronized modes are always race-free.
  struct TracedRun {
    std::uint64_t value = 0;
    bool race_detected = false;
    std::vector<race::RaceReport> races;
    std::string report;  ///< human-readable detector summary
  };
  static TracedRun run_traced(Mode mode, unsigned threads, std::uint64_t per_thread);
};

/// Bounded buffer (the producer/consumer problem that closes the CS 31
/// parallelism module), built from one mutex and two condition
/// variables. Blocking counts are tracked so experiments can report
/// contention (E9).
class BoundedBuffer {
 public:
  /// Throws cs31::Error when capacity == 0.
  explicit BoundedBuffer(std::size_t capacity);

  BoundedBuffer(const BoundedBuffer&) = delete;
  BoundedBuffer& operator=(const BoundedBuffer&) = delete;

  /// Block while full, then enqueue.
  void put(std::int64_t item);

  /// Block while empty, then dequeue.
  [[nodiscard]] std::int64_t get();

  /// Nonblocking variants; nullopt/false when the buffer is empty/full.
  bool try_put(std::int64_t item);
  [[nodiscard]] std::optional<std::int64_t> try_get();

  /// Close the buffer: blocked and future get() calls drain remaining
  /// items, then return nullopt via get_until_closed().
  void close();

  /// Blocking get that returns nullopt once the buffer is closed and
  /// drained — the consumer-loop idiom.
  [[nodiscard]] std::optional<std::int64_t> get_until_closed();

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::uint64_t producer_blocks() const { return producer_blocks_.load(); }
  [[nodiscard]] std::uint64_t consumer_blocks() const { return consumer_blocks_.load(); }

  /// Report puts/gets to a trace context as channel send/recv events,
  /// mirroring the happens-before edge the buffer's internal mutex
  /// really provides (a producer's work before put() is visible to any
  /// consumer after the matching get()). Every thread using the buffer
  /// must be bound to `ctx`.
  ///
  /// Precision is per *slot*, not per buffer: ring slot `s` is the
  /// channel "name[s]", so a recv is ordered only after the sends that
  /// went through the same slot — the put that produced this item and
  /// earlier occupants of its slot, not every put ever. A misused
  /// buffer (consumer reads an item the producer never published
  /// through the buffer) is then localized to the exact item instead of
  /// being hidden behind one conservative whole-buffer clock. close()
  /// publishes on the dedicated "name[closed]" channel.
  void attach_tracer(trace::TraceContext& ctx, std::string channel_name);

 private:
  const std::size_t capacity_;
  std::vector<std::int64_t> ring_;
  std::size_t head_ = 0, tail_ = 0, count_ = 0;
  bool closed_ = false;
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::atomic<std::uint64_t> producer_blocks_{0};
  std::atomic<std::uint64_t> consumer_blocks_{0};
  trace::TraceContext* tracer_ = nullptr;
  std::string channel_name_;
  std::vector<trace::NameId> slot_channels_;  ///< "name[s]" per ring slot
  trace::NameId close_channel_ = 0;
};

}  // namespace cs31::parallel
