#include "parallel/sync.hpp"

#include <thread>

#include "common/error.hpp"
#include "parallel/threads.hpp"
#include "trace/instrumented.hpp"

namespace cs31::parallel {

Barrier::Barrier(std::size_t count) : count_(count) {
  require(count >= 1, "barrier count must be at least 1");
}

bool Barrier::wait() {
  std::unique_lock lock(mutex_);
  const std::uint64_t my_generation = generation_;
  if (tracer_ != nullptr) cycle_waiters_.push_back(tracer_->self());
  if (++arrived_ == count_) {
    // Last arriver releases the cycle.
    if (tracer_ != nullptr) {
      // The completed cycle orders every waiter's pre-barrier work
      // before every waiter's post-barrier work — and every other
      // waiter is blocked in this barrier right now, so their buffers
      // are safe to drain (bounded capture memory).
      tracer_->barrier_cycle(std::move(cycle_waiters_), report_edges_);
      cycle_waiters_.clear();
    }
    arrived_ = 0;
    ++generation_;
    cv_.notify_all();
    return true;
  }
  cv_.wait(lock, [&] { return generation_ != my_generation; });
  return false;
}

std::uint64_t Barrier::cycles() const {
  std::scoped_lock lock(mutex_);
  return generation_;
}

void Barrier::attach_tracer(trace::TraceContext& ctx, bool report_edges) {
  std::scoped_lock lock(mutex_);
  tracer_ = &ctx;
  report_edges_ = report_edges;
}

std::uint64_t SharedCounter::run(Mode mode, unsigned threads, std::uint64_t per_thread) {
  require(threads >= 1, "need at least one thread");

  // The shared state under test. `plain` is deliberately unprotected in
  // Unsynchronized mode; volatile blocks the compiler from collapsing
  // the read-modify-write loop so the race stays observable.
  volatile std::uint64_t plain = 0;
  std::atomic<std::uint64_t> atomic{0};
  std::mutex mutex;
  std::uint64_t merged = 0;

  auto body = [&](unsigned) {
    switch (mode) {
      case Mode::Unsynchronized:
        for (std::uint64_t i = 0; i < per_thread; ++i) plain = plain + 1;
        break;
      case Mode::MutexPerIncrement:
        for (std::uint64_t i = 0; i < per_thread; ++i) {
          std::scoped_lock lock(mutex);
          plain = plain + 1;
        }
        break;
      case Mode::Atomic:
        for (std::uint64_t i = 0; i < per_thread; ++i) {
          atomic.fetch_add(1, std::memory_order_relaxed);
        }
        break;
      case Mode::LocalThenMerge: {
        std::uint64_t local = 0;
        for (std::uint64_t i = 0; i < per_thread; ++i) ++local;
        std::scoped_lock lock(mutex);
        merged += local;
        break;
      }
    }
  };

  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) workers.emplace_back(body, t);
  for (std::thread& w : workers) w.join();

  switch (mode) {
    case Mode::Unsynchronized:
    case Mode::MutexPerIncrement:
      return plain;
    case Mode::Atomic:
      return atomic.load();
    case Mode::LocalThenMerge:
      return merged;
  }
  return 0;
}

SharedCounter::TracedRun SharedCounter::run_traced(Mode mode, unsigned threads,
                                                  std::uint64_t per_thread) {
  require(threads >= 1, "need at least one thread");

  trace::TraceContext ctx;
  trace::TracedVar<std::uint64_t> counter("counter", ctx, 0);
  trace::TracedMutex mutex("counter_mutex", ctx);

  // The same four strategies as run(), expressed through the capture
  // layer so every logical access reaches the attached sinks.
  ThreadTeam team(threads, ctx, [&](std::size_t) {
    switch (mode) {
      case Mode::Unsynchronized:
        for (std::uint64_t i = 0; i < per_thread; ++i) {
          const std::uint64_t v = counter.load("counter = counter + 1 (no lock)");
          counter.store(v + 1, "counter = counter + 1 (no lock)");
        }
        break;
      case Mode::MutexPerIncrement:
        for (std::uint64_t i = 0; i < per_thread; ++i) {
          std::scoped_lock lock(mutex);
          const std::uint64_t v = counter.load("counter = counter + 1 (mutexed)");
          counter.store(v + 1, "counter = counter + 1 (mutexed)");
        }
        break;
      case Mode::Atomic:
        for (std::uint64_t i = 0; i < per_thread; ++i) {
          counter.fetch_add(1, "counter.fetch_add(1)");
        }
        break;
      case Mode::LocalThenMerge: {
        std::uint64_t local = 0;
        for (std::uint64_t i = 0; i < per_thread; ++i) ++local;
        std::scoped_lock lock(mutex);
        const std::uint64_t v = counter.load("merged += local (mutexed)");
        counter.store(v + local, "merged += local (mutexed)");
        break;
      }
    }
  });
  team.join();

  TracedRun result;
  // The joins order every worker before this read — never itself a race.
  result.value = counter.load("final read after join");
  ctx.flush();  // drain the main thread's tail before reading verdicts
  result.races = ctx.detector().races();
  result.race_detected = !result.races.empty();
  result.report = ctx.detector().summary();
  return result;
}

BoundedBuffer::BoundedBuffer(std::size_t capacity)
    : capacity_(capacity), ring_(capacity) {
  require(capacity >= 1, "buffer capacity must be at least 1");
}

void BoundedBuffer::put(std::int64_t item) {
  std::unique_lock lock(mutex_);
  require(!closed_, "put on a closed buffer");
  if (count_ == capacity_) {
    producer_blocks_.fetch_add(1, std::memory_order_relaxed);
    not_full_.wait(lock, [&] { return count_ < capacity_ || closed_; });
    require(!closed_, "buffer closed while a producer was blocked");
  }
  const std::size_t slot = tail_;
  ring_[tail_] = item;
  tail_ = (tail_ + 1) % capacity_;
  ++count_;
  // Recorded under the buffer mutex, so the send's stamp order is the
  // real publication order of this slot.
  if (tracer_ != nullptr) tracer_->send(slot_channels_[slot]);
  not_empty_.notify_one();
}

std::int64_t BoundedBuffer::get() {
  std::unique_lock lock(mutex_);
  if (count_ == 0) {
    consumer_blocks_.fetch_add(1, std::memory_order_relaxed);
    not_empty_.wait(lock, [&] { return count_ > 0; });
  }
  const std::size_t slot = head_;
  const std::int64_t item = ring_[head_];
  head_ = (head_ + 1) % capacity_;
  --count_;
  // Per-slot recv: ordered only after the sends through this slot.
  if (tracer_ != nullptr) tracer_->recv(slot_channels_[slot]);
  not_full_.notify_one();
  return item;
}

bool BoundedBuffer::try_put(std::int64_t item) {
  std::scoped_lock lock(mutex_);
  require(!closed_, "put on a closed buffer");
  if (count_ == capacity_) return false;
  const std::size_t slot = tail_;
  ring_[tail_] = item;
  tail_ = (tail_ + 1) % capacity_;
  ++count_;
  if (tracer_ != nullptr) tracer_->send(slot_channels_[slot]);
  not_empty_.notify_one();
  return true;
}

std::optional<std::int64_t> BoundedBuffer::try_get() {
  std::scoped_lock lock(mutex_);
  if (count_ == 0) return std::nullopt;
  const std::size_t slot = head_;
  const std::int64_t item = ring_[head_];
  head_ = (head_ + 1) % capacity_;
  --count_;
  if (tracer_ != nullptr) tracer_->recv(slot_channels_[slot]);
  not_full_.notify_one();
  return item;
}

void BoundedBuffer::close() {
  std::scoped_lock lock(mutex_);
  closed_ = true;
  // Closing publishes too: a consumer that wakes to "closed and
  // drained" is still ordered after everything the closer did.
  if (tracer_ != nullptr) tracer_->send(close_channel_);
  not_empty_.notify_all();
  not_full_.notify_all();
}

std::optional<std::int64_t> BoundedBuffer::get_until_closed() {
  std::unique_lock lock(mutex_);
  if (count_ == 0 && !closed_) {
    consumer_blocks_.fetch_add(1, std::memory_order_relaxed);
    not_empty_.wait(lock, [&] { return count_ > 0 || closed_; });
  }
  if (count_ == 0) {
    // Closed and drained: still observe the closer's publication.
    if (tracer_ != nullptr) tracer_->recv(close_channel_);
    return std::nullopt;
  }
  const std::size_t slot = head_;
  const std::int64_t item = ring_[head_];
  head_ = (head_ + 1) % capacity_;
  --count_;
  if (tracer_ != nullptr) tracer_->recv(slot_channels_[slot]);
  not_full_.notify_one();
  return item;
}

std::size_t BoundedBuffer::size() const {
  std::scoped_lock lock(mutex_);
  return count_;
}

void BoundedBuffer::attach_tracer(trace::TraceContext& ctx, std::string channel_name) {
  std::scoped_lock lock(mutex_);
  tracer_ = &ctx;
  channel_name_ = std::move(channel_name);
  // One channel per ring slot (plus one for close()): interned up front
  // so put/get fire id-based events only.
  slot_channels_.clear();
  slot_channels_.reserve(capacity_);
  for (std::size_t s = 0; s < capacity_; ++s) {
    slot_channels_.push_back(ctx.intern_channel(channel_name_ + "[" + std::to_string(s) + "]"));
  }
  close_channel_ = ctx.intern_channel(channel_name_ + "[closed]");
}

}  // namespace cs31::parallel
