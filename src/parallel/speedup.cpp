#include "parallel/speedup.hpp"

#include <cmath>

#include "common/error.hpp"

namespace cs31::parallel {

double speedup(double serial_time, double parallel_time) {
  require(parallel_time > 0, "parallel time must be positive");
  require(serial_time >= 0, "serial time cannot be negative");
  return serial_time / parallel_time;
}

double efficiency(double serial_time, double parallel_time, unsigned p) {
  require(p >= 1, "need at least one processor");
  return speedup(serial_time, parallel_time) / static_cast<double>(p);
}

double amdahl_speedup(double serial_fraction, unsigned p) {
  require(serial_fraction >= 0.0 && serial_fraction <= 1.0,
          "serial fraction must be in [0, 1]");
  require(p >= 1, "need at least one processor");
  return 1.0 / (serial_fraction + (1.0 - serial_fraction) / static_cast<double>(p));
}

double amdahl_limit(double serial_fraction) {
  require(serial_fraction > 0.0 && serial_fraction <= 1.0,
          "asymptote needs a serial fraction in (0, 1]");
  return 1.0 / serial_fraction;
}

double gustafson_speedup(double serial_fraction, unsigned p) {
  require(serial_fraction >= 0.0 && serial_fraction <= 1.0,
          "serial fraction must be in [0, 1]");
  require(p >= 1, "need at least one processor");
  return static_cast<double>(p) - serial_fraction * (static_cast<double>(p) - 1.0);
}

namespace {
double log2_ceil(unsigned n) {
  double v = 0;
  unsigned x = 1;
  while (x < n) {
    x *= 2;
    v += 1;
  }
  return v;
}
}  // namespace

double modeled_time(const WorkloadModel& model, unsigned threads) {
  require(threads >= 1, "need at least one thread");
  require(model.rounds >= 1, "workload needs at least one round");
  require(model.contention_factor >= 0 && model.barrier_cost >= 0 &&
              model.critical_section >= 0,
          "model costs cannot be negative");

  const double work_per_round =
      static_cast<double>(model.total_work) / static_cast<double>(model.rounds);
  // The slowest thread of each round carries ceil(work / threads).
  const double block = std::ceil(work_per_round / static_cast<double>(threads));
  const double contention = 1.0 + model.contention_factor * static_cast<double>(threads - 1);

  double per_round = block * contention;
  if (threads > 1) {
    per_round += model.barrier_cost * log2_ceil(threads);
    per_round += model.critical_section * static_cast<double>(threads);
  }
  return static_cast<double>(model.serial_work) +
         per_round * static_cast<double>(model.rounds);
}

double modeled_speedup(const WorkloadModel& model, unsigned threads) {
  return modeled_time(model, 1) / modeled_time(model, threads);
}

}  // namespace cs31::parallel
