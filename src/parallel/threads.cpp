#include "parallel/threads.hpp"

#include "common/error.hpp"

namespace cs31::parallel {

std::vector<Range> block_partition(std::size_t n, std::size_t parts) {
  require(parts >= 1, "partition needs at least one part");
  std::vector<Range> ranges;
  ranges.reserve(parts);
  const std::size_t base = n / parts;
  const std::size_t extra = n % parts;
  std::size_t begin = 0;
  for (std::size_t p = 0; p < parts; ++p) {
    const std::size_t len = base + (p < extra ? 1 : 0);
    ranges.push_back(Range{begin, begin + len});
    begin += len;
  }
  return ranges;
}

std::vector<GridRegion> grid_partition(std::size_t rows, std::size_t cols,
                                       std::size_t parts, GridSplit split) {
  std::vector<GridRegion> regions;
  regions.reserve(parts);
  if (split == GridSplit::Horizontal) {
    for (const Range& r : block_partition(rows, parts)) {
      regions.push_back(GridRegion{r, Range{0, cols}});
    }
  } else {
    for (const Range& c : block_partition(cols, parts)) {
      regions.push_back(GridRegion{Range{0, rows}, c});
    }
  }
  return regions;
}

ThreadTeam::ThreadTeam(std::size_t count, const std::function<void(std::size_t)>& body) {
  require(count >= 1, "thread team needs at least one thread");
  workers_.reserve(count);
  for (std::size_t t = 0; t < count; ++t) {
    workers_.emplace_back(body, t);
  }
}

ThreadTeam::ThreadTeam(std::size_t count, trace::TraceContext& ctx,
                       const std::function<void(std::size_t)>& body)
    : tracer_(&ctx) {
  require(count >= 1, "thread team needs at least one thread");
  // Fork edges first (parent's clock flows to each child), then spawn;
  // each worker binds its OS thread to its trace id before the body.
  traced_ids_.reserve(count);
  for (std::size_t t = 0; t < count; ++t) traced_ids_.push_back(ctx.on_thread_create());
  workers_.reserve(count);
  for (std::size_t t = 0; t < count; ++t) {
    workers_.emplace_back([&ctx, body, t, tid = traced_ids_[t]] {
      ctx.bind_self(tid);
      body(t);
    });
  }
  // The parent typically blocks in join() from here; parking it lets
  // the workers' barrier drains dispatch each cycle instead of pooling
  // behind the idle parent's watermark. A parent that does capture
  // again (e.g. as a consumer of a traced BoundedBuffer) un-parks on
  // its first access.
  ctx.park_self();
}

ThreadTeam::~ThreadTeam() { join(); }

void ThreadTeam::join() {
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  if (tracer_ != nullptr && !trace_joined_) {
    trace_joined_ = true;  // join edges once, matching the real joins
    // Joins are recorded in worker order by this (single) thread, so
    // the drained stream is schedule-independent.
    for (const trace::ThreadId tid : traced_ids_) tracer_->on_thread_join(tid);
  }
}

void parallel_for(std::size_t n, std::size_t threads,
                  const std::function<void(Range, std::size_t)>& body,
                  trace::TraceContext* ctx) {
  require(threads >= 1, "parallel_for needs at least one thread");
  const std::vector<Range> ranges = block_partition(n, threads);
  if (ctx == nullptr) {
    ThreadTeam team(threads, [&](std::size_t t) { body(ranges[t], t); });
    team.join();
    return;
  }
  ThreadTeam team(threads, *ctx, [&](std::size_t t) { body(ranges[t], t); });
  team.join();
}

}  // namespace cs31::parallel
