#include "parallel/deadlock.hpp"

#include <algorithm>

namespace cs31::parallel {

void LockOrderRegistry::on_acquire(const std::string& lock) {
  std::scoped_lock guard(mutex_);
  std::vector<std::string>& held = held_[std::this_thread::get_id()];
  for (const std::string& h : held) {
    if (h != lock) edges_[h].insert(lock);
  }
  held.push_back(lock);
}

void LockOrderRegistry::on_release(const std::string& lock) {
  std::scoped_lock guard(mutex_);
  std::vector<std::string>& held = held_[std::this_thread::get_id()];
  const auto it = std::find(held.rbegin(), held.rend(), lock);
  if (it != held.rend()) held.erase(std::next(it).base());
}

std::map<std::string, std::set<std::string>> LockOrderRegistry::graph() const {
  std::scoped_lock guard(mutex_);
  return edges_;
}

std::vector<std::string> LockOrderRegistry::find_cycle() const {
  const std::map<std::string, std::set<std::string>> edges = graph();

  // Iterative DFS with colors; reconstruct the cycle from the stack.
  enum class Color { White, Gray, Black };
  std::map<std::string, Color> color;
  for (const auto& [from, tos] : edges) {
    color[from] = Color::White;
    for (const std::string& to : tos) color.emplace(to, Color::White);
  }

  std::vector<std::string> path;

  // Recursive helper as an explicit lambda-with-self.
  struct Dfs {
    const std::map<std::string, std::set<std::string>>& edges;
    std::map<std::string, Color>& color;
    std::vector<std::string>& path;

    // Returns the node that closes a cycle, or "" when none found.
    std::string visit(const std::string& node) {
      color[node] = Color::Gray;
      path.push_back(node);
      if (const auto it = edges.find(node); it != edges.end()) {
        for (const std::string& next : it->second) {
          if (color[next] == Color::Gray) {
            path.push_back(next);
            return next;
          }
          if (color[next] == Color::White) {
            const std::string hit = visit(next);
            if (!hit.empty()) return hit;
          }
        }
      }
      color[node] = Color::Black;
      path.pop_back();
      return "";
    }
  };

  Dfs dfs{edges, color, path};
  for (const auto& [node, c] : color) {
    if (c != Color::White) continue;
    path.clear();
    const std::string closer = dfs.visit(node);
    if (!closer.empty()) {
      // Trim the path to start at the closing node.
      const auto it = std::find(path.begin(), path.end(), closer);
      return {it, path.end()};
    }
  }
  return {};
}

void LockOrderRegistry::clear() {
  std::scoped_lock guard(mutex_);
  held_.clear();
  edges_.clear();
}

}  // namespace cs31::parallel
