// Speedup, efficiency, Amdahl's Law, and the deterministic multicore
// cost model (CS 31's "speedup … resource contention can reduce observed
// speedup from theoretical ideal linear speedup", experiments E3/E7).
//
// The MulticoreModel exists because the kit must reproduce the paper's
// Lab 10 result — near-linear Game-of-Life speedup up to 16 threads —
// on machines with any number of physical cores (including the 1-core
// CI host): it prices a parallel computation in abstract cycles (work,
// barriers, critical sections, serial setup) and reports the time a
// p-core machine would take.
#pragma once

#include <cstdint>

namespace cs31::parallel {

/// speedup = T1 / Tp. Throws cs31::Error when parallel_time <= 0.
[[nodiscard]] double speedup(double serial_time, double parallel_time);

/// efficiency = speedup / p.
[[nodiscard]] double efficiency(double serial_time, double parallel_time, unsigned p);

/// Amdahl's Law: maximum speedup on p processors of a program whose
/// serial fraction is f: 1 / (f + (1 - f) / p).
/// Throws cs31::Error for f outside [0, 1] or p == 0.
[[nodiscard]] double amdahl_speedup(double serial_fraction, unsigned p);

/// Amdahl's asymptote: 1 / f (infinite processors).
[[nodiscard]] double amdahl_limit(double serial_fraction);

/// Gustafson's scaled speedup: p - f * (p - 1) (covered in the course's
/// "defer a deeper dive" pointer to upper-level work; included for the
/// extension bench).
[[nodiscard]] double gustafson_speedup(double serial_fraction, unsigned p);

/// Deterministic cost model of one parallel computation on a p-core
/// shared-memory machine. All costs are in abstract cycles.
struct WorkloadModel {
  std::uint64_t total_work = 0;        ///< parallelizable work units
  std::uint64_t serial_work = 0;       ///< un-parallelizable setup/teardown
  std::uint64_t rounds = 1;            ///< barrier-separated phases (e.g. Life steps)
  double barrier_cost = 0;             ///< cycles per barrier crossing, per thread count scaling below
  double critical_section = 0;         ///< serialized cycles per thread per round
  double contention_factor = 0;        ///< per-extra-thread memory slowdown fraction
};

/// Simulated execution time of the workload on `threads` threads.
/// Model:
///   work term      = ceil(total_work / rounds / threads) per round
///                    (threads with the fat block dominate each round)
///   barrier term   = barrier_cost * log2ceil(threads) per round
///   critical term  = critical_section * threads per round (serialized)
///   contention     = work term inflated by contention_factor*(threads-1)
///   serial term    = serial_work, once
/// Throws cs31::Error when threads == 0 or the model is degenerate.
[[nodiscard]] double modeled_time(const WorkloadModel& model, unsigned threads);

/// Modeled speedup relative to the same model on one thread.
[[nodiscard]] double modeled_speedup(const WorkloadModel& model, unsigned threads);

}  // namespace cs31::parallel
