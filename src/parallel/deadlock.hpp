// Deadlock analysis (CS 31: "once we introduce synchronization, we
// discuss the potential for deadlock"): a lock-order registry that
// records which locks each thread holds when it acquires another, builds
// the lock-ordering graph, and reports cycles — the standard
// order-inversion detector, usable both as a teaching visualization and
// as a correctness check in tests.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

namespace cs31::parallel {

/// Records acquisition orderings between named locks.
class LockOrderRegistry {
 public:
  /// Note that the calling thread acquired `lock`; any locks it already
  /// holds gain an edge held -> lock in the ordering graph.
  void on_acquire(const std::string& lock);

  /// Note that the calling thread released `lock`.
  void on_release(const std::string& lock);

  /// Edges of the ordering graph (from -> set of to).
  [[nodiscard]] std::map<std::string, std::set<std::string>> graph() const;

  /// A cycle in the ordering graph, if any — the deadlock potential.
  /// Empty vector when the graph is acyclic. The cycle lists the locks
  /// in order, with the first repeated at the end.
  [[nodiscard]] std::vector<std::string> find_cycle() const;

  /// Convenience: true when find_cycle() is nonempty.
  [[nodiscard]] bool deadlock_possible() const { return !find_cycle().empty(); }

  void clear();

 private:
  mutable std::mutex mutex_;
  std::map<std::thread::id, std::vector<std::string>> held_;
  std::map<std::string, std::set<std::string>> edges_;
};

/// A named mutex that reports to a registry — drop-in for std::mutex in
/// demonstrations (works with std::scoped_lock via lock()/unlock()).
class TrackedMutex {
 public:
  TrackedMutex(std::string name, LockOrderRegistry& registry)
      : name_(std::move(name)), registry_(registry) {}

  void lock() {
    mutex_.lock();
    registry_.on_acquire(name_);
  }
  void unlock() {
    registry_.on_release(name_);
    mutex_.unlock();
  }
  bool try_lock() {
    if (!mutex_.try_lock()) return false;
    registry_.on_acquire(name_);
    return true;
  }

  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  std::string name_;
  LockOrderRegistry& registry_;
  std::mutex mutex_;
};

}  // namespace cs31::parallel
