// Named Game-of-Life patterns in the Lab 6 grid-file format — the
// initial states the course hands out ("read game parameters and an
// initial grid state from a file"), plus their documented behaviour
// (period, displacement) so tests can verify the engine against known
// dynamics rather than hand-derived grids.
#pragma once

#include <string>
#include <vector>

#include "life/life.hpp"

namespace cs31::life {

/// What kind of dynamics the pattern has.
enum class PatternKind { Still, Oscillator, Ship, Methuselah };

/// A catalogued pattern.
struct Pattern {
  std::string name;
  PatternKind kind = PatternKind::Still;
  std::string grid_file;   ///< Lab 6 file format, parseable by Grid::parse
  int period = 1;          ///< generations per cycle (Still: 1)
  int dr = 0, dc = 0;      ///< displacement per period (ships), torus space
};

/// The catalog: block, beehive, blinker, toad, beacon, glider,
/// lightweight spaceship (LWSS), r-pentomino.
[[nodiscard]] const std::vector<Pattern>& pattern_catalog();

/// Look up by name. Throws cs31::Error when unknown.
[[nodiscard]] const Pattern& pattern(const std::string& name);

/// Parse the pattern's grid file.
[[nodiscard]] Grid pattern_grid(const Pattern& pattern);

}  // namespace cs31::life
