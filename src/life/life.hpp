// Conway's Game of Life, the application spine of CS 31's programming
// labs: Lab 6 builds the sequential simulation (2-D grid allocation,
// file-driven initial state); Lab 10 parallelizes it with pthreads —
// partition the grid into per-thread bands, barrier between rounds, and
// a mutex protecting shared statistics.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "parallel/threads.hpp"

namespace cs31::life {

/// Edge behaviour: Bounded treats outside as dead; Torus wraps (both
/// appear in course offerings).
enum class EdgeRule { Bounded, Torus };

/// The game grid. Cells are stored row-major, matching the C labs'
/// one-big-malloc layout discussion.
class Grid {
 public:
  /// Dead grid of the given size. Throws cs31::Error on zero dimensions.
  Grid(std::size_t rows, std::size_t cols);

  /// Parse the lab's file format:
  ///   line 1: rows cols
  ///   line 2: number of coordinate pairs that follow
  ///   then one "row col" pair per line for each live cell.
  /// Throws cs31::Error on malformed input or out-of-range coordinates.
  static Grid parse(const std::string& text);

  /// A deterministic pseudo-random soup with the given live-cell
  /// fraction, for benchmarks.
  static Grid random(std::size_t rows, std::size_t cols, double fill, std::uint32_t seed);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] bool alive(std::size_t r, std::size_t c) const;
  void set(std::size_t r, std::size_t c, bool alive);
  [[nodiscard]] std::size_t population() const;

  /// Live neighbors of (r, c) under the edge rule.
  [[nodiscard]] int neighbors(std::size_t r, std::size_t c, EdgeRule rule) const;

  /// Render as the lab's console output ('@' alive, '.'/' ' dead).
  [[nodiscard]] std::string to_text() const;

  friend bool operator==(const Grid&, const Grid&) = default;

 private:
  std::size_t rows_, cols_;
  std::vector<std::uint8_t> cells_;
};

/// Lab 6: the sequential engine.
class SerialLife {
 public:
  explicit SerialLife(Grid initial, EdgeRule rule = EdgeRule::Torus);

  /// Advance one generation.
  void step();

  /// Advance `n` generations.
  void run(std::size_t n);

  [[nodiscard]] const Grid& grid() const { return current_; }
  [[nodiscard]] std::size_t generation() const { return generation_; }

 private:
  Grid current_;
  Grid next_;
  EdgeRule rule_;
  std::size_t generation_ = 0;
};

/// Cross-generation statistics that the parallel engine's threads all
/// update — the shared state Lab 10 protects with a mutex.
struct LifeStats {
  std::uint64_t births = 0;
  std::uint64_t deaths = 0;
  std::uint64_t max_population = 0;
};

/// How finely a traced ParallelLife::run captures grid accesses. Row
/// traces one variable per band line (per row for a horizontal split) —
/// cheap enough for real-thread overhead budgets; Cell traces every
/// cell with the same names the replay path uses ("cur[r,c]"), so the
/// real-thread certificate is directly comparable to
/// life::traced_life_check's.
enum class TraceGranularity { Row, Cell };

/// Tracing options for ParallelLife::run. `ctx == nullptr` runs
/// untraced.
struct LifeTraceOptions {
  trace::TraceContext* ctx = nullptr;
  /// false is the "forgotten barrier" teaching mode: the real barrier
  /// still runs every round (the execution stays well-defined — the
  /// same trick TracedVar plays with its hidden guard), but its
  /// happens-before edge is withheld from the sinks, so the detector
  /// reports — deterministically — the races the program would have if
  /// the student had forgotten the barrier.
  bool report_barrier = true;
  TraceGranularity granularity = TraceGranularity::Row;
};

/// Lab 10: the pthreads engine. Threads own grid bands (horizontal or
/// vertical), synchronize each round on a barrier, and merge per-round
/// statistics under a mutex.
class ParallelLife {
 public:
  /// Throws cs31::Error when threads == 0 or exceeds the band dimension.
  ParallelLife(Grid initial, std::size_t threads,
               parallel::GridSplit split = parallel::GridSplit::Horizontal,
               EdgeRule rule = EdgeRule::Torus);

  /// Run `n` generations with real threads (one team for the whole run,
  /// barrier-synchronized per round, as the lab requires). Thread 0 is
  /// the serial thread that publishes each generation between the two
  /// barrier crossings — a fixed choice, so traced runs are
  /// reproducible run to run.
  void run(std::size_t n);

  /// The same run, captured through a TraceContext: workers record
  /// their halo reads and band writes, thread 0 records the swap's
  /// writes, the per-round barrier records its cycles (and drains the
  /// buffers, bounding capture memory). The per-round statistics mutex
  /// is deliberately *not* traced: the grid certificate then depends
  /// only on the grid access pattern, byte-identical to the replay
  /// path's. Call options.ctx->flush() after run() before reading any
  /// sink's verdict.
  void run(std::size_t n, const LifeTraceOptions& options);

  [[nodiscard]] const Grid& grid() const { return current_; }
  [[nodiscard]] std::size_t generation() const { return generation_; }
  [[nodiscard]] const LifeStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t threads() const { return regions_.size(); }

  /// Which thread owns cell (r, c) — feeds the ParaVis region coloring.
  [[nodiscard]] int owner(std::size_t r, std::size_t c) const;

 private:
  Grid current_;
  Grid next_;
  EdgeRule rule_;
  parallel::GridSplit split_;
  std::vector<parallel::GridRegion> regions_;
  std::size_t generation_ = 0;
  LifeStats stats_;
};

/// One Life generation applied to a region (shared by both engines and
/// unit-testable on its own). Returns (births, deaths) in that region.
struct RegionDelta {
  std::uint64_t births = 0;
  std::uint64_t deaths = 0;
};
RegionDelta step_region(const Grid& current, Grid& next, const parallel::GridRegion& region,
                        EdgeRule rule);

}  // namespace cs31::life
