#include "life/life.hpp"

#include <algorithm>
#include <mutex>
#include <sstream>

#include "common/error.hpp"
#include "parallel/sync.hpp"

namespace cs31::life {

Grid::Grid(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), cells_(rows * cols, 0) {
  require(rows > 0 && cols > 0, "grid must have nonzero dimensions");
}

Grid Grid::parse(const std::string& text) {
  std::istringstream in(text);
  std::size_t rows = 0, cols = 0, pairs = 0;
  require(static_cast<bool>(in >> rows >> cols), "grid file: missing dimensions");
  require(rows > 0 && cols > 0, "grid file: dimensions must be positive");
  require(static_cast<bool>(in >> pairs), "grid file: missing live-cell count");
  Grid grid(rows, cols);
  for (std::size_t i = 0; i < pairs; ++i) {
    std::size_t r = 0, c = 0;
    require(static_cast<bool>(in >> r >> c),
            "grid file: expected " + std::to_string(pairs) + " coordinate pairs");
    require(r < rows && c < cols, "grid file: cell (" + std::to_string(r) + ", " +
                                      std::to_string(c) + ") out of range");
    grid.set(r, c, true);
  }
  return grid;
}

Grid Grid::random(std::size_t rows, std::size_t cols, double fill, std::uint32_t seed) {
  require(fill >= 0.0 && fill <= 1.0, "fill fraction must be in [0, 1]");
  Grid grid(rows, cols);
  std::uint32_t state = seed | 1u;
  const auto threshold = static_cast<std::uint32_t>(fill * 4294967295.0);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      state = state * 1664525u + 1013904223u;
      if (state <= threshold) grid.set(r, c, true);
    }
  }
  return grid;
}

bool Grid::alive(std::size_t r, std::size_t c) const {
  require(r < rows_ && c < cols_, "cell out of range");
  return cells_[r * cols_ + c] != 0;
}

void Grid::set(std::size_t r, std::size_t c, bool alive) {
  require(r < rows_ && c < cols_, "cell out of range");
  cells_[r * cols_ + c] = alive ? 1 : 0;
}

std::size_t Grid::population() const {
  std::size_t n = 0;
  for (const std::uint8_t cell : cells_) n += cell;
  return n;
}

int Grid::neighbors(std::size_t r, std::size_t c, EdgeRule rule) const {
  require(r < rows_ && c < cols_, "cell out of range");
  int count = 0;
  for (int dr = -1; dr <= 1; ++dr) {
    for (int dc = -1; dc <= 1; ++dc) {
      if (dr == 0 && dc == 0) continue;
      std::int64_t nr = static_cast<std::int64_t>(r) + dr;
      std::int64_t nc = static_cast<std::int64_t>(c) + dc;
      if (rule == EdgeRule::Torus) {
        nr = (nr + static_cast<std::int64_t>(rows_)) % static_cast<std::int64_t>(rows_);
        nc = (nc + static_cast<std::int64_t>(cols_)) % static_cast<std::int64_t>(cols_);
      } else if (nr < 0 || nc < 0 || nr >= static_cast<std::int64_t>(rows_) ||
                 nc >= static_cast<std::int64_t>(cols_)) {
        continue;
      }
      count += cells_[static_cast<std::size_t>(nr) * cols_ + static_cast<std::size_t>(nc)];
    }
  }
  return count;
}

std::string Grid::to_text() const {
  std::ostringstream out;
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      out << (alive(r, c) ? '@' : '.');
    }
    out << '\n';
  }
  return out.str();
}

RegionDelta step_region(const Grid& current, Grid& next, const parallel::GridRegion& region,
                        EdgeRule rule) {
  RegionDelta delta;
  for (std::size_t r = region.rows.begin; r < region.rows.end; ++r) {
    for (std::size_t c = region.cols.begin; c < region.cols.end; ++c) {
      const int n = current.neighbors(r, c, rule);
      const bool was = current.alive(r, c);
      const bool now = was ? (n == 2 || n == 3) : (n == 3);
      next.set(r, c, now);
      if (now && !was) ++delta.births;
      if (was && !now) ++delta.deaths;
    }
  }
  return delta;
}

SerialLife::SerialLife(Grid initial, EdgeRule rule)
    : current_(std::move(initial)), next_(current_.rows(), current_.cols()), rule_(rule) {}

void SerialLife::step() {
  const parallel::GridRegion whole{{0, current_.rows()}, {0, current_.cols()}};
  step_region(current_, next_, whole, rule_);
  std::swap(current_, next_);
  ++generation_;
}

void SerialLife::run(std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) step();
}

ParallelLife::ParallelLife(Grid initial, std::size_t threads, parallel::GridSplit split,
                           EdgeRule rule)
    : current_(std::move(initial)),
      next_(current_.rows(), current_.cols()),
      rule_(rule),
      split_(split),
      regions_(parallel::grid_partition(current_.rows(), current_.cols(), threads, split)) {
  require(threads >= 1, "need at least one thread");
  const std::size_t dim =
      split == parallel::GridSplit::Horizontal ? current_.rows() : current_.cols();
  require(threads <= dim, "more threads than grid bands");
}

void ParallelLife::run(std::size_t n) { run(n, LifeTraceOptions{}); }

namespace {

/// Interned ids a traced run fires per access: one id per band line
/// (Row granularity) or per cell (Cell granularity), for each grid,
/// plus the site labels. Names match the replay path in
/// life/traced.cpp exactly, so the two certificates are comparable.
struct LifeTraceIds {
  std::vector<trace::NameId> cur, next;  ///< by line or by r*cols+c
  std::vector<trace::NameId> band_sites;
  trace::NameId swap_site = 0;
};

LifeTraceIds intern_life_ids(trace::TraceContext& ctx, std::size_t rows, std::size_t cols,
                             std::size_t threads, bool cell, bool horizontal) {
  LifeTraceIds ids;
  const auto var = [&](const char* grid, const std::string& suffix) {
    return ctx.intern_var(std::string(grid) + '[' + suffix + ']');
  };
  if (cell) {
    ids.cur.reserve(rows * cols);
    ids.next.reserve(rows * cols);
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t c = 0; c < cols; ++c) {
        const std::string rc = std::to_string(r) + ',' + std::to_string(c);
        ids.cur.push_back(var("cur", rc));
        ids.next.push_back(var("next", rc));
      }
    }
  } else {
    const std::size_t lines = horizontal ? rows : cols;
    ids.cur.reserve(lines);
    ids.next.reserve(lines);
    for (std::size_t l = 0; l < lines; ++l) {
      ids.cur.push_back(var("cur", std::to_string(l)));
      ids.next.push_back(var("next", std::to_string(l)));
    }
  }
  ids.band_sites.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    ids.band_sites.push_back(ctx.intern_site("step_region band " + std::to_string(t)));
  }
  ids.swap_site = ctx.intern_site("swap grids (serial thread)");
  return ids;
}

}  // namespace

void ParallelLife::run(std::size_t n, const LifeTraceOptions& options) {
  if (n == 0) return;
  const std::size_t t = regions_.size();
  trace::TraceContext* ctx = options.ctx;
  parallel::Barrier barrier(t);
  // The lab's shared-statistics mutex. Deliberately untraced even when
  // ctx is set: the grid certificate then depends only on the grid
  // access pattern (and matches the replay path's, which has no stats
  // events); the mutex still really protects the merge.
  std::mutex stats_mutex;

  const std::size_t rows = current_.rows(), cols = current_.cols();
  const bool horizontal = split_ == parallel::GridSplit::Horizontal;
  const bool cell = options.granularity == TraceGranularity::Cell;
  LifeTraceIds ids;
  if (ctx != nullptr) {
    barrier.attach_tracer(*ctx, options.report_barrier);
    ids = intern_life_ids(*ctx, rows, cols, t, cell, horizontal);
  }

  // What a worker reads each round: its band plus a one-line halo on
  // each side in the split dimension (wrapping under Torus), mirroring
  // the real neighbor reads step_region performs. Emitted before the
  // compute so the captured order matches the replay path's.
  const auto emit_compute = [&](std::size_t id) {
    const parallel::GridRegion& region = regions_[id];
    const parallel::Range band = horizontal ? region.rows : region.cols;
    const std::size_t dim = horizontal ? rows : cols;
    const std::size_t span = horizontal ? cols : rows;
    const std::int64_t lo = static_cast<std::int64_t>(band.begin) - 1;
    const std::int64_t hi = static_cast<std::int64_t>(band.end);  // inclusive halo
    for (std::int64_t ll = lo; ll <= hi; ++ll) {
      std::int64_t line = ll;
      if (rule_ == EdgeRule::Torus) {
        line = (ll + static_cast<std::int64_t>(dim)) % static_cast<std::int64_t>(dim);
      } else if (ll < 0 || ll >= static_cast<std::int64_t>(dim)) {
        continue;
      }
      const auto l = static_cast<std::size_t>(line);
      if (cell) {
        for (std::size_t s = 0; s < span; ++s) {
          const std::size_t idx = horizontal ? l * cols + s : s * cols + l;
          ctx->read(ids.cur[idx], ids.band_sites[id]);
        }
      } else {
        ctx->read(ids.cur[l], ids.band_sites[id]);
      }
    }
    for (std::size_t l = band.begin; l < band.end; ++l) {
      if (cell) {
        for (std::size_t s = 0; s < span; ++s) {
          const std::size_t idx = horizontal ? l * cols + s : s * cols + l;
          ctx->write(ids.next[idx], ids.band_sites[id]);
        }
      } else {
        ctx->write(ids.next[l], ids.band_sites[id]);
      }
    }
  };

  // The swap rebinds every cell of both grids: a write to all of them
  // by the serial thread.
  const auto emit_swap = [&] {
    if (cell) {
      for (std::size_t r = 0; r < rows; ++r) {
        for (std::size_t c = 0; c < cols; ++c) {
          ctx->write(ids.cur[r * cols + c], ids.swap_site);
          ctx->write(ids.next[r * cols + c], ids.swap_site);
        }
      }
    } else {
      for (std::size_t l = 0; l < ids.cur.size(); ++l) {
        ctx->write(ids.cur[l], ids.swap_site);
        ctx->write(ids.next[l], ids.swap_site);
      }
    }
  };

  // One thread team for the whole run; rounds are separated by two
  // barrier crossings (compute -> swap -> next round), with thread 0 as
  // the serial thread doing the swap while the others wait — the Lab 10
  // structure, with a fixed (not last-arriver) serial thread so traced
  // runs are reproducible.
  const auto body = [&](std::size_t id) {
    for (std::size_t round = 0; round < n; ++round) {
      if (ctx != nullptr) emit_compute(id);
      const RegionDelta delta = step_region(current_, next_, regions_[id], rule_);
      {
        // The mutex-protected shared statistics of the lab.
        std::scoped_lock lock(stats_mutex);
        stats_.births += delta.births;
        stats_.deaths += delta.deaths;
      }
      barrier.wait();
      if (id == 0) {
        // Serial thread of this cycle: publish the new generation.
        if (ctx != nullptr) emit_swap();
        std::swap(current_, next_);
        ++generation_;
        stats_.max_population = std::max<std::uint64_t>(stats_.max_population,
                                                        current_.population());
      }
      barrier.wait();  // everyone sees the swapped grid before continuing
    }
  };

  if (ctx != nullptr) {
    parallel::ThreadTeam team(t, *ctx, body);
    team.join();
  } else {
    parallel::ThreadTeam team(t, body);
    team.join();
  }
}

int ParallelLife::owner(std::size_t r, std::size_t c) const {
  for (std::size_t t = 0; t < regions_.size(); ++t) {
    const parallel::GridRegion& region = regions_[t];
    if (r >= region.rows.begin && r < region.rows.end && c >= region.cols.begin &&
        c < region.cols.end) {
      return static_cast<int>(t);
    }
  }
  return -1;
}

}  // namespace cs31::life
