// Race-checked Game of Life: replays the access pattern of the Lab 10
// parallel engine — each thread reads its band of the current grid plus
// a one-row halo, writes its band of the next grid, then the serial
// thread swaps the grids — through the cs31::race detector. With the
// barrier edges in place the step is certifiably race-free; with the
// barriers removed, the serial thread's swap races against the other
// threads' band reads and writes, which is exactly the bug students
// write when they forget the per-round barrier.
//
// The replay is sequential and deterministic: happens-before analysis
// only needs the events and their program/synchronization order, not a
// real scheduler, so the verdict never depends on timing. The grid is
// really stepped while tracing, so the result can be checked against
// SerialLife.
//
// Since the TraceContext refactor this replay is just a scripted driver
// of the same capture machinery the real-thread engine uses
// (ParallelLife::run with LifeTraceOptions): both paths intern the same
// names, emit the same events, and feed the same sinks — they differ
// only in who pushes the events.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "life/life.hpp"
#include "race/detector.hpp"
#include "trace/context.hpp"

namespace cs31::life {

struct TracedLifeResult {
  Grid grid;            ///< grid after `rounds` generations (really computed)
  bool race_free = false;
  std::vector<race::RaceReport> races;
  std::uint64_t events = 0;   ///< accesses + sync events replayed
  std::string report;         ///< detector summary
  std::uint64_t sampled_out = 0;  ///< accesses dropped by sampling capture mode
};

/// How to run the replay. The defaults reproduce the classic
/// traced_life_check(…, use_barrier = true) behaviour exactly.
struct TracedLifeOptions {
  bool use_barrier = true;
  EdgeRule rule = EdgeRule::Torus;
  /// Access-event sample rate (TraceContext::Options::sample_access_events).
  double sample_rate = 1.0;
  /// Analyze off the replay thread through this pipeline instead of the
  /// context-owned inline detector (the verdict fields then come from
  /// the pipeline's deterministic merge — byte-identical to inline).
  /// The pipeline must be fresh and outlive the call.
  trace::AnalysisPipeline* pipeline = nullptr;
  /// Sync-event capture design (TraceContext::Options::capture). The
  /// verdict is capture-mode-independent; only the hot-path cost moves.
  trace::CaptureMode capture = trace::CaptureMode::lockfree;
};

/// Replay `rounds` generations of the parallel engine's access pattern
/// over `threads` horizontal bands. `use_barrier` reproduces the
/// correct Lab 10 structure (compute, barrier, serial swap, barrier);
/// false drops both barrier edges — the buggy variant the detector
/// flags. Throws cs31::Error when threads == 0 or exceeds the rows.
///
/// Every cell name and site label is interned once up front and the
/// drain feeds the FastTrack detector through its id fast path, so the
/// per-access cost is a buffer append plus an epoch check, not a string
/// lookup — which is what lets this scale past toy grids
/// (bench_race_overhead has the numbers).
[[nodiscard]] TracedLifeResult traced_life_check(const Grid& initial, std::size_t threads,
                                                 std::size_t rounds, bool use_barrier,
                                                 EdgeRule rule = EdgeRule::Torus);

/// Same replay with the full option set (sampling capture, pipelined
/// off-thread analysis).
[[nodiscard]] TracedLifeResult traced_life_check(const Grid& initial, std::size_t threads,
                                                 std::size_t rounds,
                                                 const TracedLifeOptions& options);

/// Same access pattern, driven through any detector implementation via
/// the generic (string) event interface. This is how bench_race_overhead
/// replays the identical event stream through the PR 1 ReferenceDetector
/// to quantify the compression, and how a differential check can compare
/// verdicts on the real Lab 10 workload. The sink must be fresh.
[[nodiscard]] TracedLifeResult traced_life_check_with(race::EventSink& sink,
                                                      const Grid& initial,
                                                      std::size_t threads, std::size_t rounds,
                                                      bool use_barrier,
                                                      EdgeRule rule = EdgeRule::Torus);

}  // namespace cs31::life
