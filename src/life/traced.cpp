#include "life/traced.hpp"

#include <utility>

#include "common/error.hpp"
#include "parallel/threads.hpp"

namespace cs31::life {
namespace {

std::string cell_name(const char* grid, std::size_t r, std::size_t c) {
  return std::string(grid) + '[' + std::to_string(r) + ',' + std::to_string(c) + ']';
}

}  // namespace

TracedLifeResult traced_life_check(const Grid& initial, std::size_t threads,
                                   std::size_t rounds, bool use_barrier, EdgeRule rule) {
  require(threads >= 1, "need at least one thread");
  require(threads <= initial.rows(), "more threads than grid bands");

  Grid cur = initial;
  Grid next(initial.rows(), initial.cols());
  const std::vector<parallel::GridRegion> regions = parallel::grid_partition(
      initial.rows(), initial.cols(), threads, parallel::GridSplit::Horizontal);

  race::Detector detector;
  // Main (thread 0 of the detector) forks one worker per band, like the
  // ThreadTeam in ParallelLife::run.
  std::vector<race::ThreadId> workers;
  workers.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) workers.push_back(detector.fork(0));

  const std::size_t rows = cur.rows(), cols = cur.cols();
  for (std::size_t round = 0; round < rounds; ++round) {
    const std::string round_tag = "round " + std::to_string(round);

    // Compute phase: thread t reads its band plus a one-row halo from
    // the current grid and writes its band of the next grid.
    for (std::size_t t = 0; t < threads; ++t) {
      const parallel::GridRegion& region = regions[t];
      const std::string where = "step_region " + round_tag + " band " + std::to_string(t);
      const std::int64_t lo = static_cast<std::int64_t>(region.rows.begin) - 1;
      const std::int64_t hi = static_cast<std::int64_t>(region.rows.end);  // inclusive halo
      for (std::int64_t rr = lo; rr <= hi; ++rr) {
        std::int64_t row = rr;
        if (rule == EdgeRule::Torus) {
          row = (rr + static_cast<std::int64_t>(rows)) % static_cast<std::int64_t>(rows);
        } else if (rr < 0 || rr >= static_cast<std::int64_t>(rows)) {
          continue;
        }
        for (std::size_t c = 0; c < cols; ++c) {
          detector.read(workers[t], cell_name("cur", static_cast<std::size_t>(row), c),
                        where);
        }
      }
      for (std::size_t r = region.rows.begin; r < region.rows.end; ++r) {
        for (std::size_t c = 0; c < cols; ++c) {
          detector.write(workers[t], cell_name("next", r, c), where);
        }
      }
      step_region(cur, next, region, rule);
    }

    if (use_barrier) detector.barrier(workers);

    // Serial thread publishes the new generation: the swap rebinds every
    // cell of both grids, so it is a write to all of them.
    const std::string swap_where = "swap grids " + round_tag + " (serial thread)";
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t c = 0; c < cols; ++c) {
        detector.write(workers[0], cell_name("cur", r, c), swap_where);
        detector.write(workers[0], cell_name("next", r, c), swap_where);
      }
    }
    std::swap(cur, next);

    if (use_barrier) detector.barrier(workers);
  }

  for (const race::ThreadId w : workers) detector.join(0, w);

  TracedLifeResult result{.grid = std::move(cur),
                          .race_free = detector.race_free(),
                          .races = detector.races(),
                          .events = detector.events(),
                          .report = detector.summary()};
  return result;
}

}  // namespace cs31::life
