#include "life/traced.hpp"

#include <string>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "parallel/threads.hpp"

namespace cs31::life {
namespace {

std::string cell_name(const char* grid, std::size_t r, std::size_t c) {
  return std::string(grid) + '[' + std::to_string(r) + ',' + std::to_string(c) + ']';
}

// The Lab 10 access pattern, written once and instantiated twice: with
// the FastTrack detector's interned id fast path (the product path) and
// with the generic string interface over any EventSink (the comparison
// path). `Ops` provides fork/join/barrier plus per-cell read/write
// hooks; `finish` harvests the verdict.
//
// Site labels deliberately carry no round number: the race between the
// serial thread's grid swap and band t's halo access is the same bug in
// every round, and the per-(variable, site pair) report dedup then
// keeps it to one report per run instead of one per round (the
// regression test for that is TracedLife.BarrierlessRaceSetStableAcrossRounds).
template <typename Ops>
TracedLifeResult traced_life_run(Ops& ops, const Grid& initial, std::size_t threads,
                                 std::size_t rounds, bool use_barrier, EdgeRule rule) {
  require(threads >= 1, "need at least one thread");
  require(threads <= initial.rows(), "more threads than grid bands");

  Grid cur = initial;
  Grid next(initial.rows(), initial.cols());
  const std::vector<parallel::GridRegion> regions = parallel::grid_partition(
      initial.rows(), initial.cols(), threads, parallel::GridSplit::Horizontal);

  // Main (thread 0 of the detector) forks one worker per band, like the
  // ThreadTeam in ParallelLife::run.
  ops.fork_workers(threads);

  const std::size_t rows = cur.rows(), cols = cur.cols();
  for (std::size_t round = 0; round < rounds; ++round) {
    // Compute phase: thread t reads its band plus a one-row halo from
    // the current grid and writes its band of the next grid.
    for (std::size_t t = 0; t < threads; ++t) {
      const parallel::GridRegion& region = regions[t];
      const std::int64_t lo = static_cast<std::int64_t>(region.rows.begin) - 1;
      const std::int64_t hi = static_cast<std::int64_t>(region.rows.end);  // inclusive halo
      for (std::int64_t rr = lo; rr <= hi; ++rr) {
        std::int64_t row = rr;
        if (rule == EdgeRule::Torus) {
          row = (rr + static_cast<std::int64_t>(rows)) % static_cast<std::int64_t>(rows);
        } else if (rr < 0 || rr >= static_cast<std::int64_t>(rows)) {
          continue;
        }
        for (std::size_t c = 0; c < cols; ++c) {
          ops.read_cur(t, static_cast<std::size_t>(row), c);
        }
      }
      for (std::size_t r = region.rows.begin; r < region.rows.end; ++r) {
        for (std::size_t c = 0; c < cols; ++c) {
          ops.write_next(t, r, c);
        }
      }
      step_region(cur, next, region, rule);
    }

    if (use_barrier) ops.barrier();

    // Serial thread publishes the new generation: the swap rebinds every
    // cell of both grids, so it is a write to all of them.
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t c = 0; c < cols; ++c) {
        ops.swap_write(r, c);
      }
    }
    std::swap(cur, next);

    if (use_barrier) ops.barrier();
  }

  ops.join_workers();
  return ops.finish(std::move(cur));
}

/// The product path: cell names and site labels interned into the
/// FastTrack detector once, per-access events fired by id.
struct FastOps {
  race::Detector detector;
  std::vector<race::ThreadId> workers;
  std::vector<race::NameId> cur_ids;   // row-major cell ids for grid "cur"
  std::vector<race::NameId> next_ids;  // and for grid "next"
  std::vector<race::NameId> band_sites;
  race::NameId swap_site = 0;
  std::size_t cols = 0;

  FastOps(std::size_t rows, std::size_t cols_in) : cols(cols_in) {
    cur_ids.reserve(rows * cols);
    next_ids.reserve(rows * cols);
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t c = 0; c < cols; ++c) {
        cur_ids.push_back(detector.intern_var(cell_name("cur", r, c)));
        next_ids.push_back(detector.intern_var(cell_name("next", r, c)));
      }
    }
    swap_site = detector.intern_site("swap grids (serial thread)");
  }

  void fork_workers(std::size_t threads) {
    workers.reserve(threads);
    band_sites.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) {
      workers.push_back(detector.fork(0));
      band_sites.push_back(detector.intern_site("step_region band " + std::to_string(t)));
    }
  }
  void read_cur(std::size_t t, std::size_t r, std::size_t c) {
    detector.read(workers[t], cur_ids[r * cols + c], band_sites[t]);
  }
  void write_next(std::size_t t, std::size_t r, std::size_t c) {
    detector.write(workers[t], next_ids[r * cols + c], band_sites[t]);
  }
  void swap_write(std::size_t r, std::size_t c) {
    detector.write(workers[0], cur_ids[r * cols + c], swap_site);
    detector.write(workers[0], next_ids[r * cols + c], swap_site);
  }
  void barrier() { detector.barrier(workers); }
  void join_workers() {
    for (const race::ThreadId w : workers) detector.join(0, w);
  }
  TracedLifeResult finish(Grid grid) {
    return TracedLifeResult{std::move(grid), detector.race_free(), detector.races(),
                            detector.events(), detector.summary()};
  }
};

/// The comparison path: the same events through any EventSink via the
/// string interface (names prebuilt once, so the sink's own lookup cost
/// is what gets measured — for the reference detector, a string-keyed
/// map walk per access).
struct SinkOps {
  race::EventSink& sink;
  std::vector<race::ThreadId> workers;
  std::vector<std::string> cur_names;
  std::vector<std::string> next_names;
  std::vector<std::string> band_sites;
  std::string swap_site = "swap grids (serial thread)";
  std::size_t cols = 0;

  SinkOps(race::EventSink& sink_in, std::size_t rows, std::size_t cols_in)
      : sink(sink_in), cols(cols_in) {
    cur_names.reserve(rows * cols);
    next_names.reserve(rows * cols);
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t c = 0; c < cols; ++c) {
        cur_names.push_back(cell_name("cur", r, c));
        next_names.push_back(cell_name("next", r, c));
      }
    }
  }

  void fork_workers(std::size_t threads) {
    workers.reserve(threads);
    band_sites.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) {
      workers.push_back(sink.fork(0));
      band_sites.push_back("step_region band " + std::to_string(t));
    }
  }
  void read_cur(std::size_t t, std::size_t r, std::size_t c) {
    sink.read(workers[t], cur_names[r * cols + c], band_sites[t]);
  }
  void write_next(std::size_t t, std::size_t r, std::size_t c) {
    sink.write(workers[t], next_names[r * cols + c], band_sites[t]);
  }
  void swap_write(std::size_t r, std::size_t c) {
    sink.write(workers[0], cur_names[r * cols + c], swap_site);
    sink.write(workers[0], next_names[r * cols + c], swap_site);
  }
  void barrier() { sink.barrier(workers); }
  void join_workers() {
    for (const race::ThreadId w : workers) sink.join(0, w);
  }
  TracedLifeResult finish(Grid grid) {
    return TracedLifeResult{std::move(grid), sink.race_free(), sink.races(), sink.events(),
                            sink.summary()};
  }
};

}  // namespace

TracedLifeResult traced_life_check(const Grid& initial, std::size_t threads,
                                   std::size_t rounds, bool use_barrier, EdgeRule rule) {
  FastOps ops(initial.rows(), initial.cols());
  return traced_life_run(ops, initial, threads, rounds, use_barrier, rule);
}

TracedLifeResult traced_life_check_with(race::EventSink& sink, const Grid& initial,
                                        std::size_t threads, std::size_t rounds,
                                        bool use_barrier, EdgeRule rule) {
  SinkOps ops(sink, initial.rows(), initial.cols());
  return traced_life_run(ops, initial, threads, rounds, use_barrier, rule);
}

}  // namespace cs31::life
