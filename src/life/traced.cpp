#include "life/traced.hpp"

#include <string>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "parallel/threads.hpp"
#include "trace/context.hpp"
#include "trace/pipeline.hpp"

namespace cs31::life {
namespace {

std::string cell_name(const char* grid, std::size_t r, std::size_t c) {
  return std::string(grid) + '[' + std::to_string(r) + ',' + std::to_string(c) + ']';
}

// The Lab 10 access pattern, replayed through the same trace::
// TraceContext machinery the real-thread engine uses — one OS thread
// plays every role via the scripted (*_as) API, so the verdict never
// depends on timing. Flushing after every band and after the swap keeps
// the dispatch order equal to the emission order, which keeps this
// replay's reports bit-identical run to run (and lets the real-thread
// path be checked against it).
//
// Site labels deliberately carry no round number: the race between the
// serial thread's grid swap and band t's halo access is the same bug in
// every round, and the per-(variable, site pair) report dedup then
// keeps it to one report per run instead of one per round (the
// regression test for that is TracedLife.BarrierlessRaceSetStableAcrossRounds).
struct ReplayOps {
  trace::TraceContext& ctx;
  race::EventSink* verdict;             ///< the sink whose result is harvested, or
  trace::AnalysisPipeline* pipeline;    ///< the pipeline it comes from instead
  std::vector<trace::ThreadId> workers;
  std::vector<trace::NameId> cur_ids;   // row-major cell ids for grid "cur"
  std::vector<trace::NameId> next_ids;  // and for grid "next"
  std::vector<trace::NameId> band_sites;
  trace::NameId swap_site = 0;
  std::size_t cols = 0;

  ReplayOps(trace::TraceContext& ctx_in, race::EventSink* verdict_in,
            trace::AnalysisPipeline* pipeline_in, std::size_t rows, std::size_t cols_in)
      : ctx(ctx_in), verdict(verdict_in), pipeline(pipeline_in), cols(cols_in) {
    cur_ids.reserve(rows * cols);
    next_ids.reserve(rows * cols);
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t c = 0; c < cols; ++c) {
        cur_ids.push_back(ctx.intern_var(cell_name("cur", r, c)));
        next_ids.push_back(ctx.intern_var(cell_name("next", r, c)));
      }
    }
    swap_site = ctx.intern_site("swap grids (serial thread)");
  }

  void fork_workers(std::size_t threads) {
    workers.reserve(threads);
    band_sites.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) {
      workers.push_back(ctx.fork_thread(0));
      band_sites.push_back(ctx.intern_site("step_region band " + std::to_string(t)));
    }
  }
  void read_cur(std::size_t t, std::size_t r, std::size_t c) {
    ctx.read_as(workers[t], cur_ids[r * cols + c], band_sites[t]);
  }
  void write_next(std::size_t t, std::size_t r, std::size_t c) {
    ctx.write_as(workers[t], next_ids[r * cols + c], band_sites[t]);
  }
  void band_done() { ctx.flush(); }
  void swap_write(std::size_t r, std::size_t c) {
    ctx.write_as(workers[0], cur_ids[r * cols + c], swap_site);
    ctx.write_as(workers[0], next_ids[r * cols + c], swap_site);
  }
  void swap_done() { ctx.flush(); }
  void barrier() { ctx.barrier_cycle(workers); }
  void join_workers() {
    for (const trace::ThreadId w : workers) ctx.join_thread(0, w);
  }
  TracedLifeResult finish(Grid grid) {
    ctx.flush();  // with a pipeline attached this also waits for idle
    if (pipeline != nullptr) {
      return TracedLifeResult{std::move(grid),        pipeline->race_free(),
                              pipeline->races(),      pipeline->events(),
                              pipeline->summary(),    ctx.events_sampled_out()};
    }
    return TracedLifeResult{std::move(grid),       verdict->race_free(),
                            verdict->races(),      verdict->events(),
                            verdict->summary(),    ctx.events_sampled_out()};
  }
};

TracedLifeResult traced_life_run(ReplayOps& ops, const Grid& initial, std::size_t threads,
                                 std::size_t rounds, bool use_barrier, EdgeRule rule) {
  require(threads >= 1, "need at least one thread");
  require(threads <= initial.rows(), "more threads than grid bands");

  Grid cur = initial;
  Grid next(initial.rows(), initial.cols());
  const std::vector<parallel::GridRegion> regions = parallel::grid_partition(
      initial.rows(), initial.cols(), threads, parallel::GridSplit::Horizontal);

  // Main (trace thread 0) forks one worker per band, like the
  // ThreadTeam in ParallelLife::run.
  ops.fork_workers(threads);

  const std::size_t rows = cur.rows(), cols = cur.cols();
  for (std::size_t round = 0; round < rounds; ++round) {
    // Compute phase: thread t reads its band plus a one-row halo from
    // the current grid and writes its band of the next grid.
    for (std::size_t t = 0; t < threads; ++t) {
      const parallel::GridRegion& region = regions[t];
      const std::int64_t lo = static_cast<std::int64_t>(region.rows.begin) - 1;
      const std::int64_t hi = static_cast<std::int64_t>(region.rows.end);  // inclusive halo
      for (std::int64_t rr = lo; rr <= hi; ++rr) {
        std::int64_t row = rr;
        if (rule == EdgeRule::Torus) {
          row = (rr + static_cast<std::int64_t>(rows)) % static_cast<std::int64_t>(rows);
        } else if (rr < 0 || rr >= static_cast<std::int64_t>(rows)) {
          continue;
        }
        for (std::size_t c = 0; c < cols; ++c) {
          ops.read_cur(t, static_cast<std::size_t>(row), c);
        }
      }
      for (std::size_t r = region.rows.begin; r < region.rows.end; ++r) {
        for (std::size_t c = 0; c < cols; ++c) {
          ops.write_next(t, r, c);
        }
      }
      step_region(cur, next, region, rule);
      ops.band_done();
    }

    if (use_barrier) ops.barrier();

    // Serial thread publishes the new generation: the swap rebinds every
    // cell of both grids, so it is a write to all of them.
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t c = 0; c < cols; ++c) {
        ops.swap_write(r, c);
      }
    }
    ops.swap_done();
    std::swap(cur, next);

    if (use_barrier) ops.barrier();
  }

  ops.join_workers();
  return ops.finish(std::move(cur));
}

}  // namespace

TracedLifeResult traced_life_check(const Grid& initial, std::size_t threads,
                                   std::size_t rounds, bool use_barrier, EdgeRule rule) {
  return traced_life_check(initial, threads, rounds,
                           TracedLifeOptions{.use_barrier = use_barrier, .rule = rule});
}

TracedLifeResult traced_life_check(const Grid& initial, std::size_t threads,
                                   std::size_t rounds, const TracedLifeOptions& options) {
  trace::TraceContext::Options ctx_options;
  ctx_options.sample_access_events = options.sample_rate;
  ctx_options.own_detector = options.pipeline == nullptr;
  ctx_options.capture = options.capture;
  trace::TraceContext ctx(ctx_options);
  if (options.pipeline != nullptr) ctx.attach_pipeline(*options.pipeline);
  ReplayOps ops(ctx, options.pipeline == nullptr ? &ctx.detector() : nullptr,
                options.pipeline, initial.rows(), initial.cols());
  return traced_life_run(ops, initial, threads, rounds, options.use_barrier, options.rule);
}

TracedLifeResult traced_life_check_with(race::EventSink& sink, const Grid& initial,
                                        std::size_t threads, std::size_t rounds,
                                        bool use_barrier, EdgeRule rule) {
  trace::TraceContext ctx(trace::TraceContext::Options{.own_detector = false});
  ctx.attach_sink(sink);
  ReplayOps ops(ctx, &sink, nullptr, initial.rows(), initial.cols());
  return traced_life_run(ops, initial, threads, rounds, use_barrier, rule);
}

}  // namespace cs31::life
