#include "life/patterns.hpp"

#include "common/error.hpp"

namespace cs31::life {

const std::vector<Pattern>& pattern_catalog() {
  static const std::vector<Pattern> kCatalog = {
      {"block", PatternKind::Still,
       "4 4\n4\n1 1\n1 2\n2 1\n2 2\n", 1, 0, 0},
      {"beehive", PatternKind::Still,
       "5 6\n6\n1 2\n1 3\n2 1\n2 4\n3 2\n3 3\n", 1, 0, 0},
      {"blinker", PatternKind::Oscillator,
       "5 5\n3\n2 1\n2 2\n2 3\n", 2, 0, 0},
      {"toad", PatternKind::Oscillator,
       "6 6\n6\n2 2\n2 3\n2 4\n3 1\n3 2\n3 3\n", 2, 0, 0},
      {"beacon", PatternKind::Oscillator,
       "6 6\n8\n1 1\n1 2\n2 1\n2 2\n3 3\n3 4\n4 3\n4 4\n", 2, 0, 0},
      {"glider", PatternKind::Ship,
       "16 16\n5\n0 1\n1 2\n2 0\n2 1\n2 2\n", 4, 1, 1},
      {"lwss", PatternKind::Ship,
       // Canonical lightweight spaceship, travelling left 2 per 4 gens:
       //  .X..X / X.... / X...X / XXXX.
       "12 20\n9\n"
       "4 6\n4 9\n"
       "5 5\n"
       "6 5\n6 9\n"
       "7 5\n7 6\n7 7\n7 8\n",
       4, 0, -2},
      {"r-pentomino", PatternKind::Methuselah,
       "48 48\n5\n23 24\n23 25\n24 23\n24 24\n25 24\n", 0, 0, 0},
  };
  return kCatalog;
}

const Pattern& pattern(const std::string& name) {
  for (const Pattern& p : pattern_catalog()) {
    if (p.name == name) return p;
  }
  throw Error("unknown Life pattern '" + name + "'");
}

Grid pattern_grid(const Pattern& pattern) { return Grid::parse(pattern.grid_file); }

}  // namespace cs31::life
