#include "analyze/diagnostic.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <sstream>

namespace cs31::analyze {

std::string to_string(Severity severity) {
  switch (severity) {
    case Severity::Note: return "note";
    case Severity::Warning: return "warning";
    case Severity::Error: return "error";
  }
  return "?";
}

namespace {

std::string hex_addr(std::uint32_t addr) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "0x%x", addr);
  return buf;
}

std::string json_quote(const std::string& text) {
  std::string out = "\"";
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

}  // namespace

std::string Diagnostic::to_string() const {
  std::ostringstream out;
  out << analyze::to_string(severity) << '[' << pass << ']';
  if (has_addr) {
    out << ' ' << hex_addr(addr);
  } else if (line > 0) {
    out << " line " << line;
  }
  if (!function.empty()) out << " in '" << function << '\'';
  out << ": " << message;
  for (const std::string& note : notes) out << "\n    note: " << note;
  return out.str();
}

std::string Diagnostic::to_json() const {
  std::ostringstream out;
  out << "{\"severity\":" << json_quote(analyze::to_string(severity))
      << ",\"pass\":" << json_quote(pass);
  if (!function.empty()) out << ",\"function\":" << json_quote(function);
  if (has_addr) {
    out << ",\"addr\":" << json_quote(hex_addr(addr));
  } else {
    out << ",\"line\":" << line;
  }
  out << ",\"message\":" << json_quote(message);
  if (!notes.empty()) {
    out << ",\"notes\":[";
    for (std::size_t i = 0; i < notes.size(); ++i) {
      out << (i ? "," : "") << json_quote(notes[i]);
    }
    out << ']';
  }
  out << '}';
  return out.str();
}

bool diagnostic_less(const Diagnostic& a, const Diagnostic& b) {
  if (a.line != b.line) return a.line < b.line;
  if (a.has_addr != b.has_addr) return !a.has_addr;  // line-located first
  if (a.addr != b.addr) return a.addr < b.addr;
  if (a.pass != b.pass) return a.pass < b.pass;
  if (a.function != b.function) return a.function < b.function;
  return a.message < b.message;
}

void normalize(std::vector<Diagnostic>& diagnostics) {
  std::stable_sort(diagnostics.begin(), diagnostics.end(), diagnostic_less);
  diagnostics.erase(std::unique(diagnostics.begin(), diagnostics.end()),
                    diagnostics.end());
}

std::string render(const std::vector<Diagnostic>& diagnostics) {
  std::string out;
  for (const Diagnostic& d : diagnostics) {
    out += d.to_string();
    out += '\n';
  }
  return out;
}

std::string render_json(const std::vector<Diagnostic>& diagnostics) {
  std::string out = "[";
  for (std::size_t i = 0; i < diagnostics.size(); ++i) {
    out += i ? "," : "";
    out += diagnostics[i].to_json();
  }
  out += ']';
  return out;
}

std::vector<Expectation> parse_expectations(const std::string& source) {
  std::vector<Expectation> out;
  static const std::string kTag = "expect:";
  std::size_t pos = 0;
  while ((pos = source.find(kTag, pos)) != std::string::npos) {
    std::size_t at = pos + kTag.size();
    while (at < source.size() && source[at] == ' ') ++at;
    Expectation e;
    while (at < source.size() &&
           (std::isalnum(static_cast<unsigned char>(source[at])) != 0 ||
            source[at] == '-' || source[at] == '_')) {
      e.pass += source[at++];
    }
    if (at < source.size() && source[at] == '@') {
      ++at;
      int line = 0;
      while (at < source.size() && std::isdigit(static_cast<unsigned char>(source[at])) != 0) {
        line = line * 10 + (source[at++] - '0');
      }
      e.line = line;
    }
    if (!e.pass.empty()) out.push_back(std::move(e));
    pos = at;
  }
  return out;
}

std::vector<std::string> verify_expected(const std::vector<Diagnostic>& diagnostics,
                                         const std::vector<Expectation>& expectations) {
  std::vector<std::string> complaints;
  std::vector<bool> claimed(expectations.size(), false);
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == Severity::Note) continue;
    bool matched = false;
    for (std::size_t i = 0; i < expectations.size(); ++i) {
      const Expectation& e = expectations[i];
      if (e.pass != d.pass) continue;
      if (e.line != 0 && e.line != d.line) continue;
      claimed[i] = true;
      matched = true;
    }
    if (!matched) complaints.push_back("unexpected diagnostic: " + d.to_string());
  }
  for (std::size_t i = 0; i < expectations.size(); ++i) {
    if (claimed[i]) continue;
    std::string where = expectations[i].line != 0
                            ? " on line " + std::to_string(expectations[i].line)
                            : "";
    complaints.push_back("expected a '" + expectations[i].pass + "' diagnostic" + where +
                         ", but the pass stayed quiet");
  }
  return complaints;
}

}  // namespace cs31::analyze
