#include "analyze/checks_isa.hpp"

#include <array>
#include <cstdio>
#include <map>
#include <set>
#include <string>

#include "analyze/cfg.hpp"
#include "analyze/dataflow.hpp"
#include "isa/debugger.hpp"
#include "isa/ia32.hpp"

namespace cs31::analyze {

namespace {

using isa::Instruction;
using isa::Mnemonic;
using isa::Operand;
using isa::Reg;

constexpr std::size_t kRegCount = 8;  // Eax..Edi; Eip never participates

std::size_t ridx(Reg r) { return static_cast<std::size_t>(r); }

bool is_callee_save(Reg r) {
  return r == Reg::Ebx || r == Reg::Esi || r == Reg::Edi || r == Reg::Ebp;
}

// ---------------------------------------------------------------------------
// Per-instruction def/use extraction. The conventions come straight
// from Machine::step: two-operand ALU ops read src+dst and write dst;
// single-operand ops (not/neg/inc/dec/push/pop) live in the dst field.
// ---------------------------------------------------------------------------

struct UseDef {
  std::vector<Reg> uses;   ///< registers whose *value* the instruction needs
  std::vector<Reg> defs;   ///< registers written (memory writes excluded)
  bool is_save_push = false;  ///< `pushl %reg` of a callee-save register
};

void addr_regs(const Operand& o, std::vector<Reg>& out) {
  if (o.kind != Operand::Kind::Mem) return;
  if (o.mem.base) out.push_back(*o.mem.base);
  if (o.mem.index) out.push_back(*o.mem.index);
}

void value_regs(const Operand& o, std::vector<Reg>& out) {
  if (o.kind == Operand::Kind::Reg) out.push_back(o.reg);
  else addr_regs(o, out);  // a memory operand's value needs its address
}

void def_reg(const Operand& o, std::vector<Reg>& out) {
  if (o.kind == Operand::Kind::Reg) out.push_back(o.reg);
}

UseDef use_def(const Instruction& ins) {
  UseDef ud;
  switch (ins.op) {
    case Mnemonic::Mov:
      value_regs(ins.src, ud.uses);
      addr_regs(ins.dst, ud.uses);
      def_reg(ins.dst, ud.defs);
      break;
    case Mnemonic::Lea:
      addr_regs(ins.src, ud.uses);
      def_reg(ins.dst, ud.defs);
      break;
    case Mnemonic::Add:
    case Mnemonic::Sub:
    case Mnemonic::Imul:
    case Mnemonic::And:
    case Mnemonic::Or:
    case Mnemonic::Xor:
    case Mnemonic::Shl:
    case Mnemonic::Shr:
    case Mnemonic::Sar:
      // `xorl %r, %r` and `subl %r, %r` are the classic zeroing idioms:
      // they define the register without caring what it held.
      if ((ins.op == Mnemonic::Xor || ins.op == Mnemonic::Sub) &&
          ins.src.kind == Operand::Kind::Reg && ins.dst.kind == Operand::Kind::Reg &&
          ins.src.reg == ins.dst.reg) {
        ud.defs.push_back(ins.dst.reg);
        break;
      }
      value_regs(ins.src, ud.uses);
      value_regs(ins.dst, ud.uses);
      def_reg(ins.dst, ud.defs);
      break;
    case Mnemonic::Cmp:
    case Mnemonic::Test:
      value_regs(ins.src, ud.uses);
      value_regs(ins.dst, ud.uses);
      break;
    case Mnemonic::Not:
    case Mnemonic::Neg:
    case Mnemonic::Inc:
    case Mnemonic::Dec:
      value_regs(ins.dst, ud.uses);
      def_reg(ins.dst, ud.defs);
      break;
    case Mnemonic::Push:
      value_regs(ins.dst, ud.uses);
      ud.is_save_push =
          ins.dst.kind == Operand::Kind::Reg && is_callee_save(ins.dst.reg);
      break;
    case Mnemonic::Pop:
      addr_regs(ins.dst, ud.uses);
      def_reg(ins.dst, ud.defs);
      break;
    case Mnemonic::Leave:
      ud.uses.push_back(Reg::Ebp);
      ud.defs.push_back(Reg::Esp);
      ud.defs.push_back(Reg::Ebp);
      break;
    case Mnemonic::Call:
    case Mnemonic::Ret:
    case Mnemonic::Jmp:
    case Mnemonic::Je: case Mnemonic::Jne: case Mnemonic::Jg: case Mnemonic::Jge:
    case Mnemonic::Jl: case Mnemonic::Jle: case Mnemonic::Ja: case Mnemonic::Jae:
    case Mnemonic::Jb: case Mnemonic::Jbe: case Mnemonic::Js: case Mnemonic::Jns:
    case Mnemonic::Nop:
    case Mnemonic::Hlt:
      break;
  }
  return ud;
}

std::string hex(std::uint32_t addr) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "0x%x", addr);
  return buf;
}

Diagnostic isa_diag(const std::string& pass, const std::string& function,
                    std::uint32_t addr, std::string message) {
  Diagnostic d;
  d.pass = pass;
  d.function = function;
  d.addr = addr;
  d.has_addr = true;
  d.message = std::move(message);
  return d;
}

// ---------------------------------------------------------------------------
// Callee clobber summaries: which callee-save registers does calling
// `target` destroy? A register counts as saved when the routine both
// pushes and pops it (leave restores %ebp); clobbers of a routine's own
// callees propagate unless it saves around them, so the summaries close
// over the call graph by fixed point.
// ---------------------------------------------------------------------------

using ClobSet = std::array<bool, kRegCount>;

std::map<std::uint32_t, ClobSet> callee_summaries(const IsaCfg& cfg) {
  struct Raw {
    ClobSet writes{};
    ClobSet saved{};
    std::vector<std::uint32_t> callees;
  };
  std::map<std::uint32_t, Raw> raw;
  for (const std::uint32_t target : cfg.call_targets) {
    Raw r;
    ClobSet pushed{}, popped{};
    bool has_leave = false;
    for (const int b : function_blocks(cfg, target)) {
      for (const IsaInstr& ii : cfg.blocks[static_cast<std::size_t>(b)].instrs) {
        const Instruction& ins = ii.ins;
        if (ins.op == Mnemonic::Push && ins.dst.kind == Operand::Kind::Reg) {
          pushed[ridx(ins.dst.reg)] = true;
          continue;
        }
        if (ins.op == Mnemonic::Pop && ins.dst.kind == Operand::Kind::Reg) {
          popped[ridx(ins.dst.reg)] = true;
        }
        if (ins.op == Mnemonic::Leave) has_leave = true;
        if (ins.op == Mnemonic::Call) r.callees.push_back(ins.target);
        for (const Reg d : use_def(ins).defs) r.writes[ridx(d)] = true;
      }
    }
    for (const Reg reg : {Reg::Ebx, Reg::Esi, Reg::Edi, Reg::Ebp}) {
      const std::size_t i = ridx(reg);
      r.saved[i] = pushed[i] && (popped[i] || (reg == Reg::Ebp && has_leave));
    }
    raw.emplace(target, std::move(r));
  }

  std::map<std::uint32_t, ClobSet> summary;
  for (const auto& [target, r] : raw) {
    ClobSet s{};
    for (const Reg reg : {Reg::Ebx, Reg::Esi, Reg::Edi, Reg::Ebp}) {
      s[ridx(reg)] = r.writes[ridx(reg)] && !r.saved[ridx(reg)];
    }
    summary[target] = s;
  }
  for (bool changed = true; changed;) {
    changed = false;
    for (const auto& [target, r] : raw) {
      ClobSet& s = summary[target];
      for (const std::uint32_t callee : r.callees) {
        for (const Reg reg : {Reg::Ebx, Reg::Esi, Reg::Edi, Reg::Ebp}) {
          const std::size_t i = ridx(reg);
          if (summary[callee][i] && !r.saved[i] && !s[i]) {
            s[i] = true;
            changed = true;
          }
        }
      }
    }
  }
  return summary;
}

// ---------------------------------------------------------------------------
// uninit-register + callee-save: one forward pass over each root's
// intraprocedural slice.
// ---------------------------------------------------------------------------

// Per-register cell. Meet is element-wise max: a register is as suspect
// as the worst path reaching the block.
enum RegCell : std::uint8_t {
  kRegTop = 0,      ///< block not reached yet
  kRegDef,          ///< some instruction wrote it
  kRegClobCaller,   ///< %ecx/%edx after a call: caller-saved
  kRegClobCallee,   ///< callee-save register a callee clobbers
  kRegUndef,        ///< never written since the routine's entry
};

struct RegProblem {
  using State = std::array<std::uint8_t, kRegCount>;
  const IsaCfg* cfg;
  const IsaSlice* slice;
  const IsaRoot* root;
  const std::map<std::uint32_t, ClobSet>* summaries;
  std::vector<Diagnostic>* sink = nullptr;

  [[nodiscard]] State top() const {
    State s{};
    return s;
  }

  [[nodiscard]] State boundary() const {
    State s{};
    if (root->is_call_target) {
      // cdecl entry: arguments live on the stack; only %esp means
      // anything. An unwritten %ebp here catches a missing prologue.
      s.fill(kRegUndef);
      s[ridx(Reg::Esp)] = kRegDef;
    } else {
      // Raw entry points and un-jumped labels (maze floors) are entered
      // with whatever the harness staged — assume all registers hold
      // intended values.
      s.fill(kRegDef);
    }
    return s;
  }

  void meet(State& into, const State& from) const {
    for (std::size_t i = 0; i < kRegCount; ++i) {
      into[i] = std::max(into[i], from[i]);
    }
  }

  void report_read(const IsaInstr& ii, Reg reg, std::uint8_t cell) const {
    if (sink == nullptr) return;
    const std::string name = isa::reg_name(reg);
    if (cell == kRegUndef) {
      Diagnostic d = isa_diag("uninit-register", root->name, ii.addr,
                              "read of " + name + ", which no instruction on this path "
                              "from '" + root->name + "' has written");
      d.notes.push_back("a register holds stack garbage until the routine writes it");
      sink->push_back(std::move(d));
    } else if (cell == kRegClobCaller) {
      Diagnostic d = isa_diag("callee-save", root->name, ii.addr,
                              "read of " + name + " after a call: " + name +
                                  " is caller-saved and does not survive the call");
      d.notes.push_back("copy the value to the stack or a saved register before the call");
      sink->push_back(std::move(d));
    } else if (cell == kRegClobCallee) {
      Diagnostic d = isa_diag("callee-save", root->name, ii.addr,
                              "read of " + name + " after a call whose callee writes " +
                                  name + " without saving it");
      d.notes.push_back("the callee must pushl/popl " + name +
                        " around its use, or the caller must not rely on it");
      sink->push_back(std::move(d));
    }
  }

  void sim(State& s, const IsaInstr& ii) const {
    const Instruction& ins = ii.ins;
    if (ins.op == Mnemonic::Call) {
      s[ridx(Reg::Eax)] = kRegDef;  // return value
      for (const Reg r : {Reg::Ecx, Reg::Edx}) {
        s[ridx(r)] = std::max(s[ridx(r)], static_cast<std::uint8_t>(kRegClobCaller));
      }
      const auto it = summaries->find(ins.target);
      if (it != summaries->end()) {
        for (const Reg r : {Reg::Ebx, Reg::Esi, Reg::Edi, Reg::Ebp}) {
          if (it->second[ridx(r)]) {
            s[ridx(r)] = std::max(s[ridx(r)], static_cast<std::uint8_t>(kRegClobCallee));
          }
        }
      }
      return;
    }
    const UseDef ud = use_def(ins);
    if (!ud.is_save_push) {  // saving a register is fine whatever it holds
      for (const Reg r : ud.uses) report_read(ii, r, s[ridx(r)]);
    }
    for (const Reg r : ud.defs) s[ridx(r)] = kRegDef;
  }

  [[nodiscard]] State transfer(int node, const State& in) const {
    State s = in;
    const int global = slice->global[static_cast<std::size_t>(node)];
    for (const IsaInstr& ii : cfg->blocks[static_cast<std::size_t>(global)].instrs) {
      sim(s, ii);
    }
    return s;
  }
};

void check_registers(const IsaCfg& cfg, const IsaSlice& slice, const IsaRoot& root,
                     const std::map<std::uint32_t, ClobSet>& summaries,
                     std::vector<Diagnostic>& out) {
  RegProblem problem{&cfg, &slice, &root, &summaries, nullptr};
  const auto sol = solve(slice.graph, problem);
  problem.sink = &out;
  for (std::size_t n = 0; n < slice.graph.size(); ++n) {
    (void)problem.transfer(static_cast<int>(n), sol.in[n]);
  }
}

// ---------------------------------------------------------------------------
// stack-balance: track the net bytes pushed since the routine's entry.
// ---------------------------------------------------------------------------

struct Depth {
  enum Kind : std::uint8_t { kTop = 0, kKnown, kUnknown, kConflict } kind = kTop;
  std::int32_t value = 0;  ///< meaningful for kKnown only

  static Depth known(std::int32_t v) { return {kKnown, v}; }
  static Depth unknown() { return {kUnknown, 0}; }
  static Depth conflict() { return {kConflict, 0}; }

  friend bool operator==(const Depth&, const Depth&) = default;
};

Depth meet_depth(const Depth& a, const Depth& b) {
  if (a.kind == Depth::kTop) return b;
  if (b.kind == Depth::kTop) return a;
  if (a.kind == Depth::kConflict || b.kind == Depth::kConflict) return Depth::conflict();
  if (a.kind == Depth::kUnknown || b.kind == Depth::kUnknown) return Depth::unknown();
  return a.value == b.value ? a : Depth::conflict();
}

struct StackProblem {
  struct State {
    Depth esp;  ///< bytes pushed since entry (push -> +4)
    Depth ebp;  ///< the esp depth captured by `movl %esp, %ebp`
    friend bool operator==(const State&, const State&) = default;
  };
  const IsaCfg* cfg;
  const IsaSlice* slice;
  const IsaRoot* root;
  std::vector<Diagnostic>* sink = nullptr;

  [[nodiscard]] State top() const { return {}; }
  [[nodiscard]] State boundary() const {
    return {Depth::known(0), Depth::unknown()};
  }
  void meet(State& into, const State& from) const {
    into.esp = meet_depth(into.esp, from.esp);
    into.ebp = meet_depth(into.ebp, from.ebp);
  }

  void sim(State& s, const IsaInstr& ii) const {
    const Instruction& ins = ii.ins;
    const auto bump = [&](std::int32_t delta) {
      if (s.esp.kind == Depth::kKnown) s.esp.value += delta;
    };
    const auto dst_is = [&](Reg r) {
      return ins.dst.kind == Operand::Kind::Reg && ins.dst.reg == r;
    };
    const auto src_is = [&](Reg r) {
      return ins.src.kind == Operand::Kind::Reg && ins.src.reg == r;
    };
    switch (ins.op) {
      case Mnemonic::Push:
        bump(+4);
        return;
      case Mnemonic::Pop:
        bump(-4);
        if (dst_is(Reg::Ebp)) s.ebp = Depth::unknown();
        if (dst_is(Reg::Esp)) s.esp = Depth::unknown();
        return;
      case Mnemonic::Call:
        return;  // the callee pops its own return address (cdecl)
      case Mnemonic::Leave:
        // esp := ebp (frame teardown), then pop %ebp.
        s.esp = s.ebp.kind == Depth::kConflict ? Depth::unknown() : s.ebp;
        bump(-4);
        s.ebp = Depth::unknown();
        return;
      case Mnemonic::Ret:
        if (sink != nullptr && s.esp.kind == Depth::kKnown && s.esp.value != 0) {
          const std::int32_t off = s.esp.value;
          Diagnostic d = isa_diag(
              "stack-balance", root->name, ii.addr,
              off > 0
                  ? "ret with " + std::to_string(off) + " byte(s) still pushed: the "
                    "routine pushes more than it pops, so ret pops a data word as "
                    "the return address"
                  : "ret after popping " + std::to_string(-off) + " byte(s) past the "
                    "frame: the routine pops more than it pushes");
          d.notes.push_back("every pushl needs a matching popl (or addl to %esp) "
                            "before ret");
          sink->push_back(std::move(d));
        }
        return;
      case Mnemonic::Mov:
        if (dst_is(Reg::Ebp)) {
          s.ebp = src_is(Reg::Esp)
                      ? (s.esp.kind == Depth::kConflict ? Depth::unknown() : s.esp)
                      : Depth::unknown();
        } else if (dst_is(Reg::Esp)) {
          s.esp = src_is(Reg::Ebp)
                      ? (s.ebp.kind == Depth::kConflict ? Depth::unknown() : s.ebp)
                      : Depth::unknown();
        }
        return;
      case Mnemonic::Add:
      case Mnemonic::Sub:
        if (dst_is(Reg::Esp)) {
          if (ins.src.kind == Operand::Kind::Imm) {
            bump(ins.op == Mnemonic::Sub ? ins.src.imm : -ins.src.imm);
          } else {
            s.esp = Depth::unknown();
          }
        } else if (dst_is(Reg::Ebp)) {
          s.ebp = Depth::unknown();
        }
        return;
      default:
        for (const Reg r : use_def(ins).defs) {
          if (r == Reg::Esp) s.esp = Depth::unknown();
          if (r == Reg::Ebp) s.ebp = Depth::unknown();
        }
        return;
    }
  }

  [[nodiscard]] State transfer(int node, const State& in) const {
    State s = in;
    const int global = slice->global[static_cast<std::size_t>(node)];
    for (const IsaInstr& ii : cfg->blocks[static_cast<std::size_t>(global)].instrs) {
      sim(s, ii);
    }
    return s;
  }
};

void check_stack(const IsaCfg& cfg, const IsaSlice& slice, const IsaRoot& root,
                 std::vector<Diagnostic>& out) {
  StackProblem problem{&cfg, &slice, &root, nullptr};
  const auto sol = solve(slice.graph, problem);
  problem.sink = &out;
  for (std::size_t n = 0; n < slice.graph.size(); ++n) {
    // A conflict born at this merge (no predecessor already carried one)
    // means the paths arriving here disagree about the stack depth.
    if (sol.in[n].esp.kind == Depth::kConflict) {
      bool inherited = false;
      std::set<std::int32_t> depths;
      for (const int p : slice.graph.preds[n]) {
        const Depth& pd = sol.out[static_cast<std::size_t>(p)].esp;
        if (pd.kind == Depth::kConflict) inherited = true;
        if (pd.kind == Depth::kKnown) depths.insert(pd.value);
      }
      if (!inherited) {
        const int global = slice.global[n];
        const IsaBlock& block = cfg.blocks[static_cast<std::size_t>(global)];
        std::string list;
        for (const std::int32_t d : depths) {
          if (!list.empty()) list += ", ";
          list += std::to_string(d);
        }
        Diagnostic d = isa_diag("stack-balance", root.name, block.start,
                                "paths reach " + hex(block.start) +
                                    " with different stack depths (" + list +
                                    " bytes pushed)");
        d.notes.push_back("a push or pop on one branch has no counterpart on the other");
        out.push_back(std::move(d));
      }
    }
    (void)problem.transfer(static_cast<int>(n), sol.in[n]);
  }
}

// ---------------------------------------------------------------------------
// unreachable-block: code no root can reach, grouped into runs.
// ---------------------------------------------------------------------------

void check_unreachable_blocks(const IsaCfg& cfg, const std::set<int>& covered,
                              std::vector<Diagnostic>& out) {
  for (std::size_t i = 0; i < cfg.blocks.size();) {
    if (covered.contains(static_cast<int>(i))) {
      ++i;
      continue;
    }
    // Extend the run over address-adjacent uncovered blocks.
    std::size_t j = i;
    std::size_t instrs = 0;
    while (j < cfg.blocks.size() && !covered.contains(static_cast<int>(j))) {
      const IsaBlock& b = cfg.blocks[j];
      if (j > i) {
        const IsaBlock& prev = cfg.blocks[j - 1];
        const std::uint32_t prev_end =
            prev.instrs.back().addr + isa::kInstrBytes;
        if (b.start != prev_end) break;
      }
      instrs += b.instrs.size();
      ++j;
    }
    const std::uint32_t start = cfg.blocks[i].start;
    Diagnostic d = isa_diag("unreachable-block", cfg.label_for(start), start,
                            std::to_string(instrs) + " instruction(s) starting at " +
                                hex(start) + " are unreachable from every entry "
                                "point, call target, and label");
    out.push_back(std::move(d));
    i = j;
  }
}

}  // namespace

std::vector<Diagnostic> lint_image(const isa::Image& image) {
  const IsaCfg cfg = build_cfg(image);
  const auto summaries = callee_summaries(cfg);
  std::vector<Diagnostic> out;
  std::set<int> covered;
  for (const IsaRoot& root : cfg.roots) {
    const IsaSlice slice = flow_graph(cfg, root.addr);
    for (const int b : slice.global) covered.insert(b);
    check_registers(cfg, slice, root, summaries, out);
    check_stack(cfg, slice, root, out);
  }
  check_unreachable_blocks(cfg, covered, out);
  normalize(out);
  return out;
}

void attach_lint(isa::Debugger& debugger, const isa::Image& image) {
  debugger.register_command("lint", [&image] {
    const std::vector<Diagnostic> diags = lint_image(image);
    if (diags.empty()) return std::string("lint: no findings\n");
    return render(diags);
  });
}

}  // namespace cs31::analyze
