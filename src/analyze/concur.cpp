#include "analyze/concur.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "common/error.hpp"

namespace cs31::analyze {

namespace {

/// Parse one untagged op ("write z", "barrier"). Mirrors the replay
/// grammar checks exactly so the static and dynamic tiers accept the
/// same scripts.
ScriptOp parse_op(const std::string& text, const std::string& tag) {
  std::istringstream in(text);
  std::string verb, arg;
  in >> verb >> arg;
  require(!verb.empty(), "concur op '" + text + "' is missing a verb");
  ScriptOp op;
  op.text = tag + ' ' + text;
  if (verb == "read" || verb == "write") {
    require(!arg.empty(), "concur op '" + text + "' needs a variable");
    op.verb = verb == "read" ? ScriptVerb::Read : ScriptVerb::Write;
  } else if (verb == "lock" || verb == "unlock") {
    require(!arg.empty(), "concur op '" + text + "' needs a mutex");
    op.verb = verb == "lock" ? ScriptVerb::Lock : ScriptVerb::Unlock;
  } else if (verb == "send" || verb == "recv") {
    require(!arg.empty(), "concur op '" + text + "' needs a channel");
    op.verb = verb == "send" ? ScriptVerb::Send : ScriptVerb::Recv;
  } else if (verb == "barrier") {
    op.verb = ScriptVerb::Barrier;
  } else {
    throw Error("concur op '" + text + "': unknown verb '" + verb + "'");
  }
  op.object = arg;
  return op;
}

void add_edge(std::vector<OrderEdge>& edges, std::string from, std::string to,
              const ScriptOp* witness) {
  OrderEdge edge{std::move(from), std::move(to), witness};
  if (std::find(edges.begin(), edges.end(), edge) == edges.end()) {
    edges.push_back(std::move(edge));
  }
}

void sort_edges(std::vector<OrderEdge>& edges) {
  std::sort(edges.begin(), edges.end(), [](const OrderEdge& a, const OrderEdge& b) {
    return a.from != b.from ? a.from < b.from : a.to < b.to;
  });
}

}  // namespace

std::string to_string(ScriptVerb verb) {
  switch (verb) {
    case ScriptVerb::Read: return "read";
    case ScriptVerb::Write: return "write";
    case ScriptVerb::Lock: return "lock";
    case ScriptVerb::Unlock: return "unlock";
    case ScriptVerb::Send: return "send";
    case ScriptVerb::Recv: return "recv";
    case ScriptVerb::Barrier: return "barrier";
  }
  throw Error("unknown script verb");
}

std::string mutex_resource(const std::string& name) { return "mutex " + name; }
std::string channel_resource(const std::string& name) { return "channel " + name; }
std::string barrier_resource() { return "barrier"; }

std::string ScriptOp::waits_on() const {
  switch (verb) {
    case ScriptVerb::Lock: return mutex_resource(object);
    case ScriptVerb::Recv: return channel_resource(object);
    default: return "";
  }
}

std::size_t ScriptModel::total_ops() const {
  std::size_t n = 0;
  for (const ThreadScript& t : threads) n += t.ops.size();
  return n;
}

std::vector<const ScriptOp*> ScriptModel::accesses() const {
  std::vector<const ScriptOp*> out;
  for (const ThreadScript& t : threads) {
    for (const ScriptOp& op : t.ops) {
      if (op.verb == ScriptVerb::Read || op.verb == ScriptVerb::Write) {
        out.push_back(&op);
      }
    }
  }
  return out;
}

bool ScriptModel::barrier_ordered(const ScriptOp& a, const ScriptOp& b) const {
  const ScriptOp& early = a.epoch <= b.epoch ? a : b;
  const ScriptOp& late = a.epoch <= b.epoch ? b : a;
  // `early` precedes its thread's (epoch+1)-th arrival; `late` follows
  // its thread's epoch-th. When cycle early.epoch+1 can complete (every
  // thread arrives that often), every schedule that executes `late`
  // orders `early` before it through the barrier's all-waiters edge.
  return early.epoch < late.epoch && early.epoch + 1 <= min_arrivals;
}

ScriptModel build_script_model(const std::vector<std::vector<std::string>>& scripts) {
  ScriptModel model;
  model.threads.resize(scripts.size());

  for (std::size_t t = 0; t < scripts.size(); ++t) {
    ThreadScript& thread = model.threads[t];
    thread.tag = "t" + std::to_string(t);
    thread.ops.reserve(scripts[t].size());

    std::vector<std::string> held;  // acquisition order
    std::size_t arrivals = 0;
    for (std::size_t i = 0; i < scripts[t].size(); ++i) {
      ScriptOp op = parse_op(scripts[t][i], thread.tag);
      op.thread = t;
      op.index = i;
      op.epoch = arrivals;
      op.must_locks = held;
      std::sort(op.must_locks.begin(), op.must_locks.end());

      switch (op.verb) {
        case ScriptVerb::Lock:
          if (std::find(held.begin(), held.end(), op.object) != held.end()) {
            thread.self_relocks.push_back(i);
            // The walk stays lenient: past this point the thread is
            // statically stuck, but later ops still get the lockset
            // they would see if it somehow proceeded.
          } else {
            held.push_back(op.object);
          }
          break;
        case ScriptVerb::Unlock: {
          const auto it = std::find(held.begin(), held.end(), op.object);
          if (it == held.end()) {
            thread.unmatched_unlocks.push_back(i);
          } else {
            held.erase(it);
          }
          break;
        }
        case ScriptVerb::Send: model.sends[op.object] += 1; break;
        case ScriptVerb::Recv: model.recvs[op.object] += 1; break;
        case ScriptVerb::Barrier:
          ++arrivals;
          break;
        case ScriptVerb::Read:
        case ScriptVerb::Write: {
          auto& owners = model.var_threads[op.object];
          if (owners.empty() || owners.back() != t) owners.push_back(t);
          break;
        }
      }
      thread.ops.push_back(std::move(op));
    }
    thread.barrier_arrivals = arrivals;
  }

  // Barrier arithmetic is over threads that appear in the schedule at
  // all — an empty script contributes no ops and no waiter (matching
  // replay()'s waiter set, which is derived from the interleaving).
  bool any = false;
  for (const ThreadScript& t : model.threads) {
    if (t.ops.empty()) continue;
    if (!any) {
      model.min_arrivals = model.max_arrivals = t.barrier_arrivals;
      any = true;
    } else {
      model.min_arrivals = std::min(model.min_arrivals, t.barrier_arrivals);
      model.max_arrivals = std::max(model.max_arrivals, t.barrier_arrivals);
    }
  }

  // The two order graphs. Lock-order: lock b while holding a. Wait-
  // order: the same edges, plus "resource behind a blocking op" edges
  // for channels (a send that cannot happen until an earlier lock /
  // recv / barrier completes) and the barrier (an arrival behind a
  // blocking op), plus "held across a blocking op" edges for locks
  // (the lock cannot be released until the blocking op completes).
  for (const ThreadScript& thread : model.threads) {
    std::vector<std::string> blocking_before;  // resources, program order
    for (const ScriptOp& op : thread.ops) {
      const bool parked_possible = op.epoch > 0;  // waited at a barrier before this op
      switch (op.verb) {
        case ScriptVerb::Lock:
          for (const std::string& h : op.must_locks) {
            add_edge(model.lock_order, mutex_resource(h), mutex_resource(op.object), &op);
            add_edge(model.wait_order, mutex_resource(h), mutex_resource(op.object), &op);
          }
          // A self-relock is a self-edge: the mutex waits on itself.
          if (std::find(thread.self_relocks.begin(), thread.self_relocks.end(),
                        op.index) != thread.self_relocks.end()) {
            add_edge(model.lock_order, mutex_resource(op.object),
                     mutex_resource(op.object), &op);
            add_edge(model.wait_order, mutex_resource(op.object),
                     mutex_resource(op.object), &op);
          }
          break;
        case ScriptVerb::Recv:
          for (const std::string& h : op.must_locks) {
            add_edge(model.wait_order, mutex_resource(h), channel_resource(op.object),
                     &op);
          }
          break;
        case ScriptVerb::Send:
          for (const std::string& r : blocking_before) {
            add_edge(model.wait_order, channel_resource(op.object), r, &op);
          }
          if (parked_possible) {
            add_edge(model.wait_order, channel_resource(op.object), barrier_resource(),
                     &op);
          }
          break;
        case ScriptVerb::Barrier:
          for (const std::string& h : op.must_locks) {
            add_edge(model.wait_order, mutex_resource(h), barrier_resource(), &op);
          }
          for (const std::string& r : blocking_before) {
            // Skip the barrier self-edge two arrivals in one thread
            // would create: a deadlock involving ONLY the barrier is
            // exactly an arrival-count mismatch, which the dedicated
            // barrier-starvation check covers — the self-loop would
            // flag every multi-barrier program as a wait cycle.
            if (r == barrier_resource()) continue;
            add_edge(model.wait_order, barrier_resource(), r, &op);
          }
          break;
        case ScriptVerb::Read:
        case ScriptVerb::Write:
          break;
        case ScriptVerb::Unlock:
          break;
      }
      if (op.blocks()) blocking_before.push_back(op.waits_on());
      if (op.verb == ScriptVerb::Barrier) blocking_before.push_back(barrier_resource());
    }
  }
  sort_edges(model.lock_order);
  sort_edges(model.wait_order);
  return model;
}

// ---------------------------------------------------------------------
// Cycle detection: Tarjan SCCs over the (tiny) resource graph.
// ---------------------------------------------------------------------

namespace {

struct Tarjan {
  const std::vector<std::string>& nodes;
  const std::vector<std::vector<std::size_t>>& adj;
  std::vector<int> index, low;
  std::vector<bool> on_stack;
  std::vector<std::size_t> stack;
  int next = 0;
  std::vector<std::vector<std::size_t>> components;

  Tarjan(const std::vector<std::string>& n, const std::vector<std::vector<std::size_t>>& a)
      : nodes(n), adj(a), index(n.size(), -1), low(n.size(), 0), on_stack(n.size(), false) {
    for (std::size_t v = 0; v < nodes.size(); ++v) {
      if (index[v] < 0) visit(v);
    }
  }

  void visit(std::size_t v) {
    index[v] = low[v] = next++;
    stack.push_back(v);
    on_stack[v] = true;
    for (const std::size_t w : adj[v]) {
      if (index[w] < 0) {
        visit(w);
        low[v] = std::min(low[v], low[w]);
      } else if (on_stack[w]) {
        low[v] = std::min(low[v], index[w]);
      }
    }
    if (low[v] == index[v]) {
      std::vector<std::size_t> comp;
      for (;;) {
        const std::size_t w = stack.back();
        stack.pop_back();
        on_stack[w] = false;
        comp.push_back(w);
        if (w == v) break;
      }
      components.push_back(std::move(comp));
    }
  }
};

}  // namespace

std::vector<std::vector<std::string>> cycle_components(
    const std::vector<OrderEdge>& edges) {
  std::vector<std::string> nodes;
  for (const OrderEdge& e : edges) {
    nodes.push_back(e.from);
    nodes.push_back(e.to);
  }
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());

  const auto id = [&nodes](const std::string& name) {
    return static_cast<std::size_t>(
        std::lower_bound(nodes.begin(), nodes.end(), name) - nodes.begin());
  };
  std::vector<std::vector<std::size_t>> adj(nodes.size());
  std::set<std::size_t> self_loops;
  for (const OrderEdge& e : edges) {
    adj[id(e.from)].push_back(id(e.to));
    if (e.from == e.to) self_loops.insert(id(e.from));
  }

  const Tarjan tarjan(nodes, adj);
  std::vector<std::vector<std::string>> out;
  for (const auto& comp : tarjan.components) {
    if (comp.size() < 2 && self_loops.count(comp.front()) == 0) continue;
    std::vector<std::string> names;
    names.reserve(comp.size());
    for (const std::size_t v : comp) names.push_back(nodes[v]);
    std::sort(names.begin(), names.end());
    out.push_back(std::move(names));
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace cs31::analyze
