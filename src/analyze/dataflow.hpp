// The generic iterative dataflow engine every check is built on.
//
// A check adapts its CFG to a FlowGraph (plain successor/predecessor
// lists plus the boundary nodes facts flow in from), defines a Problem
// (a state type with equality, a top element, a meet, and a per-node
// transfer function), and calls solve(). The engine runs the classic
// worklist algorithm to a fixed point — meet over predecessors, then
// transfer — and hands back the in/out state of every node, which the
// check then replays once to attach diagnostics to lines or addresses.
//
// Direction is handled by construction rather than by flag: a backward
// problem (liveness) solves over reverse(graph) with the exits as
// boundary nodes, and writes its transfer to scan the block backwards.
// That keeps the engine ~60 lines and every pass close to the textbook
// presentation a CS 31 staff member would recognise.
#pragma once

#include <vector>

#include "analyze/cfg.hpp"

namespace cs31::analyze {

/// A CFG reduced to what the solver needs. Node indices are dense
/// [0, size()); `entries` are the nodes seeded with the problem's
/// boundary state (facts still meet in from predecessors, so a loop
/// edge back to an entry behaves correctly).
struct FlowGraph {
  std::vector<std::vector<int>> succs;
  std::vector<std::vector<int>> preds;
  std::vector<int> entries;

  [[nodiscard]] std::size_t size() const { return succs.size(); }
};

/// Flip every edge; the boundary moves to `new_entries` (typically the
/// original exits). This is how backward problems reuse the solver.
[[nodiscard]] inline FlowGraph reverse(const FlowGraph& g, std::vector<int> new_entries) {
  FlowGraph r;
  r.succs = g.preds;
  r.preds = g.succs;
  r.entries = std::move(new_entries);
  return r;
}

/// Adapt a mini-C function CFG. Entry = block 0 (build_cfg's entry).
[[nodiscard]] FlowGraph flow_graph(const CFuncCfg& cfg);

/// Adapt the intraprocedural slice of an image CFG rooted at `root`.
/// Local node i corresponds to global block `global[i]`; node 0 is the
/// root's block. Edges leaving the slice are dropped.
struct IsaSlice {
  FlowGraph graph;
  std::vector<int> global;
};
[[nodiscard]] IsaSlice flow_graph(const IsaCfg& cfg, std::uint32_t root);

/// Nodes reachable from the graph's entries (used directly by the
/// unreachable checks, and by reporting walks that must ignore states
/// the solver never propagated into).
[[nodiscard]] std::vector<bool> reachable(const FlowGraph& g);

/// Fixed-point solution: the state flowing into and out of every node,
/// in the graph's own orientation (for a reversed graph, `in` holds the
/// facts at the original block *end*).
template <typename State>
struct Solution {
  std::vector<State> in;
  std::vector<State> out;
};

/// Iterate `problem` over `g` to a fixed point.
///
/// Problem requirements:
///   using State = ...;                     // with operator==
///   State top() const;                     // identity of meet; initial guess
///   State boundary() const;                // state injected at g.entries
///   void meet(State& into, const State& from) const;
///   State transfer(int node, const State& in) const;
///
/// transfer receives the node in *graph* indices (use IsaSlice::global
/// to get back to image blocks). Monotone transfer + finite-height
/// lattice terminate, as usual.
template <typename Problem>
Solution<typename Problem::State> solve(const FlowGraph& g, const Problem& problem) {
  using State = typename Problem::State;
  const std::size_t n = g.size();
  Solution<State> sol;
  sol.in.assign(n, problem.top());
  sol.out.assign(n, problem.top());

  std::vector<bool> is_entry(n, false);
  for (const int e : g.entries) is_entry[static_cast<std::size_t>(e)] = true;

  std::vector<int> worklist;
  std::vector<bool> queued(n, true);
  for (std::size_t i = 0; i < n; ++i) worklist.push_back(static_cast<int>(i));

  while (!worklist.empty()) {
    const int node = worklist.back();
    worklist.pop_back();
    queued[static_cast<std::size_t>(node)] = false;

    State in = is_entry[static_cast<std::size_t>(node)] ? problem.boundary()
                                                        : problem.top();
    for (const int p : g.preds[static_cast<std::size_t>(node)]) {
      problem.meet(in, sol.out[static_cast<std::size_t>(p)]);
    }
    State out = problem.transfer(node, in);
    sol.in[static_cast<std::size_t>(node)] = std::move(in);
    if (out == sol.out[static_cast<std::size_t>(node)]) continue;
    sol.out[static_cast<std::size_t>(node)] = std::move(out);
    for (const int s : g.succs[static_cast<std::size_t>(node)]) {
      if (!queued[static_cast<std::size_t>(s)]) {
        queued[static_cast<std::size_t>(s)] = true;
        worklist.push_back(s);
      }
    }
  }
  return sol;
}

}  // namespace cs31::analyze
