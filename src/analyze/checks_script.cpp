#include "analyze/checks_script.hpp"

#include <algorithm>
#include <set>
#include <sstream>

namespace cs31::analyze {

namespace {

std::string json_quote(const std::string& text) {
  std::string out = "\"";
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  out += '"';
  return out;
}

std::string lockset_text(const std::vector<std::string>& locks) {
  std::string out = "{";
  for (std::size_t i = 0; i < locks.size(); ++i) {
    if (i) out += ", ";
    out += locks[i];
  }
  out += '}';
  return out;
}

std::string join(const std::vector<std::string>& parts, const char* sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

bool disjoint(const std::vector<std::string>& a, const std::vector<std::string>& b) {
  // Both sorted (ScriptOp::must_locks contract).
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia == *ib) return false;
    if (*ia < *ib) {
      ++ia;
    } else {
      ++ib;
    }
  }
  return true;
}

Diagnostic at(const ScriptOp& op, Severity severity, std::string pass,
              std::string message) {
  Diagnostic d;
  d.severity = severity;
  d.pass = std::move(pass);
  d.function = "t" + std::to_string(op.thread);
  d.line = static_cast<int>(op.index) + 1;
  d.message = std::move(message);
  return d;
}

/// First edge (in the deduplicated, sorted edge order) that lies inside
/// the component — the op diagnostics point at. Tarjan guarantees an
/// internal edge for every component it reports as cyclic.
const ScriptOp* cycle_witness(const std::vector<OrderEdge>& edges,
                              const std::vector<std::string>& component) {
  const std::set<std::string> in(component.begin(), component.end());
  for (const OrderEdge& e : edges) {
    if (in.count(e.from) != 0 && in.count(e.to) != 0) return e.witness;
  }
  return nullptr;
}

bool all_mutexes(const std::vector<std::string>& component) {
  return std::all_of(component.begin(), component.end(), [](const std::string& r) {
    return r.rfind("mutex ", 0) == 0;
  });
}

}  // namespace

std::string StaticRace::to_string() const {
  return "race candidate on '" + variable + "': '" + first + "' vs '" + second + "'";
}

std::string StaticDeadlock::to_string() const {
  std::string out = "deadlock candidate [" + kind + "]: " + join(resources, ", ");
  if (!witness.empty()) out += " (at '" + witness + "')";
  return out;
}

bool ConcurSummary::covers_race(const std::string& variable, const std::string& site_a,
                                const std::string& site_b) const {
  for (const StaticRace& r : races) {
    if (r.variable != variable) continue;
    if ((r.first == site_a && r.second == site_b) ||
        (r.first == site_b && r.second == site_a)) {
      return true;
    }
  }
  return false;
}

std::string ConcurSummary::to_json() const {
  std::ostringstream out;
  out << "{\"threads\":" << threads << ",\"ops\":" << ops;
  out << ",\"race_candidates\":[";
  for (std::size_t i = 0; i < races.size(); ++i) {
    const StaticRace& r = races[i];
    if (i) out << ',';
    out << "{\"variable\":" << json_quote(r.variable)
        << ",\"first\":" << json_quote(r.first)
        << ",\"second\":" << json_quote(r.second) << '}';
  }
  out << "],\"deadlock_candidates\":[";
  for (std::size_t i = 0; i < deadlocks.size(); ++i) {
    const StaticDeadlock& d = deadlocks[i];
    if (i) out << ',';
    out << "{\"kind\":" << json_quote(d.kind) << ",\"resources\":[";
    for (std::size_t j = 0; j < d.resources.size(); ++j) {
      if (j) out << ',';
      out << json_quote(d.resources[j]);
    }
    out << "],\"guaranteed\":" << (d.guaranteed ? "true" : "false");
    if (!d.witness.empty()) out << ",\"witness\":" << json_quote(d.witness);
    out << '}';
  }
  out << "],\"thread_local\":[";
  for (std::size_t i = 0; i < thread_local_vars.size(); ++i) {
    if (i) out << ',';
    out << json_quote(thread_local_vars[i]);
  }
  out << "],\"guarded\":{";
  bool first = true;
  for (const auto& [var, lock] : guarded_vars) {
    if (!first) out << ',';
    first = false;
    out << json_quote(var) << ':' << json_quote(lock);
  }
  out << "},\"pure_guards\":[";
  for (std::size_t i = 0; i < independent_mutexes.size(); ++i) {
    if (i) out << ',';
    out << json_quote(independent_mutexes[i]);
  }
  out << "],\"diagnostics\":" << render_json(diagnostics) << '}';
  return out.str();
}

ConcurSummary analyze_scripts(const std::vector<std::vector<std::string>>& scripts) {
  const ScriptModel model = build_script_model(scripts);
  ConcurSummary summary;
  summary.threads = model.threads.size();
  summary.ops = model.total_ops();

  // --- static race candidates -------------------------------------
  const std::vector<const ScriptOp*> accesses = model.accesses();
  std::set<std::string> race_seen;
  for (std::size_t i = 0; i < accesses.size(); ++i) {
    for (std::size_t j = i + 1; j < accesses.size(); ++j) {
      const ScriptOp& a = *accesses[i];
      const ScriptOp& b = *accesses[j];
      if (a.thread == b.thread || a.object != b.object) continue;
      if (a.verb != ScriptVerb::Write && b.verb != ScriptVerb::Write) continue;
      if (!disjoint(a.must_locks, b.must_locks)) continue;
      if (model.barrier_ordered(a, b)) continue;

      const std::string key = a.object + '\x1f' + std::min(a.text, b.text) + '\x1f' +
                              std::max(a.text, b.text);
      if (!race_seen.insert(key).second) continue;

      StaticRace race;
      race.variable = a.object;
      race.first = a.text;
      race.second = b.text;
      race.first_thread = a.thread;
      race.second_thread = b.thread;
      race.first_is_write = a.verb == ScriptVerb::Write;
      race.second_is_write = b.verb == ScriptVerb::Write;
      race.explanation = "locksets " + lockset_text(a.must_locks) + " vs " +
                         lockset_text(b.must_locks) +
                         " share no lock and no barrier orders the pair";

      Diagnostic d = at(a, Severity::Warning, "static-race",
                        "'" + a.object + "' may race: '" + a.text + "' and '" + b.text +
                            "' can run unordered; " + race.explanation);
      d.notes.push_back("second access: '" + b.text + "' (t" +
                        std::to_string(b.thread) + " op " + std::to_string(b.index + 1) +
                        ")");
      summary.diagnostics.push_back(std::move(d));
      summary.races.push_back(std::move(race));
    }
  }

  // --- deadlock candidates: cycles ---------------------------------
  // Self-loops in the lock-order graph come from self-relocks, which
  // the dedicated check below reports with a sharper message — only
  // multi-node lock cycles are the ABBA shape.
  for (const auto& component : cycle_components(model.lock_order)) {
    if (component.size() < 2) continue;
    const ScriptOp* witness = cycle_witness(model.lock_order, component);
    summary.deadlocks.push_back(
        {"lock-order-cycle", component, witness ? witness->text : "", false});
    if (witness != nullptr) {
      summary.diagnostics.push_back(
          at(*witness, Severity::Warning, "lock-order-cycle",
             "lock-order cycle through " + join(component, ", ") +
                 ": threads acquire these in conflicting orders, so some schedule "
                 "deadlocks"));
    }
  }
  // Wait-order cycles that are not pure lock cycles are communication
  // deadlocks (a channel or the barrier participates).
  for (const auto& component : cycle_components(model.wait_order)) {
    if (all_mutexes(component)) continue;  // reported above / self-deadlock
    const ScriptOp* witness = cycle_witness(model.wait_order, component);
    summary.deadlocks.push_back(
        {"channel-wait-cycle", component, witness ? witness->text : "", false});
    if (witness != nullptr) {
      summary.diagnostics.push_back(
          at(*witness, Severity::Warning, "channel-wait-cycle",
             "wait-order cycle through " + join(component, ", ") +
                 ": progress on each resource requires the others, so some schedule "
                 "deadlocks"));
    }
  }

  // --- per-thread discipline ---------------------------------------
  for (const ThreadScript& thread : model.threads) {
    for (const std::size_t idx : thread.self_relocks) {
      const ScriptOp& op = thread.ops[idx];
      summary.deadlocks.push_back(
          {"self-deadlock", {mutex_resource(op.object)}, op.text, true});
      summary.diagnostics.push_back(
          at(op, Severity::Error, "self-deadlock",
             "re-lock of held mutex '" + op.object +
                 "': this thread blocks on itself in every schedule that reaches this "
                 "op"));
    }
    for (const std::size_t idx : thread.unmatched_unlocks) {
      const ScriptOp& op = thread.ops[idx];
      summary.diagnostics.push_back(
          at(op, Severity::Error, "unlock-without-lock",
             "unlock of '" + op.object +
                 "' without a matching program-order lock (the dynamic tier rejects "
                 "this script)"));
    }
  }

  // --- channel accounting -------------------------------------------
  for (const auto& [channel, recv_count] : model.recvs) {
    const auto sent = model.sends.find(channel);
    const std::size_t send_count = sent == model.sends.end() ? 0 : sent->second;
    if (recv_count <= send_count) continue;
    // Attribute to the first recv of the channel in (thread, op) order.
    const ScriptOp* witness = nullptr;
    for (const ThreadScript& thread : model.threads) {
      for (const ScriptOp& op : thread.ops) {
        if (op.verb == ScriptVerb::Recv && op.object == channel) {
          witness = &op;
          break;
        }
      }
      if (witness != nullptr) break;
    }
    summary.deadlocks.push_back({"recv-no-send",
                                 {channel_resource(channel)},
                                 witness ? witness->text : "",
                                 true});
    if (witness != nullptr) {
      summary.diagnostics.push_back(
          at(*witness, Severity::Error, "recv-no-send",
             "channel '" + channel + "' receives " + std::to_string(recv_count) +
                 " time(s) but is sent only " + std::to_string(send_count) +
                 " time(s): a recv waits forever in every complete schedule"));
    }
  }

  // --- barrier accounting --------------------------------------------
  if (model.max_arrivals > model.min_arrivals) {
    std::vector<std::string> lagging;
    const ScriptOp* witness = nullptr;
    for (const ThreadScript& thread : model.threads) {
      if (thread.ops.empty()) continue;
      if (thread.barrier_arrivals == model.min_arrivals) {
        lagging.push_back(thread.tag);
      } else if (witness == nullptr) {
        // The (min+1)-th arrival of the first eager thread: the op
        // that can never complete.
        std::size_t arrivals = 0;
        for (const ScriptOp& op : thread.ops) {
          if (op.verb != ScriptVerb::Barrier) continue;
          if (++arrivals == model.min_arrivals + 1) {
            witness = &op;
            break;
          }
        }
      }
    }
    summary.deadlocks.push_back({"barrier-starvation",
                                 {barrier_resource()},
                                 witness ? witness->text : "",
                                 true});
    if (witness != nullptr) {
      summary.diagnostics.push_back(
          at(*witness, Severity::Error, "barrier-starvation",
             "barrier arrival " + std::to_string(model.min_arrivals + 1) +
                 " can never complete: " + join(lagging, ", ") + " arrive(s) only " +
                 std::to_string(model.min_arrivals) + " time(s)"));
    }
  }

  // --- independence facts --------------------------------------------
  for (const auto& [var, owners] : model.var_threads) {
    if (owners.size() == 1) {
      summary.thread_local_vars.push_back(var);
      continue;
    }
    // Intersect the must-locksets of every access of var.
    std::vector<std::string> common;
    bool first = true;
    for (const ThreadScript& thread : model.threads) {
      for (const ScriptOp& op : thread.ops) {
        if (op.object != var ||
            (op.verb != ScriptVerb::Read && op.verb != ScriptVerb::Write)) {
          continue;
        }
        if (first) {
          common = op.must_locks;
          first = false;
        } else {
          std::vector<std::string> next;
          std::set_intersection(common.begin(), common.end(), op.must_locks.begin(),
                                op.must_locks.end(), std::back_inserter(next));
          common = std::move(next);
        }
        if (common.empty()) break;
      }
      if (!first && common.empty()) break;
    }
    if (!common.empty()) {
      summary.guarded_vars[var] = common.front();
      Diagnostic d;
      d.severity = Severity::Note;
      d.pass = "guarded-by";
      d.message = "'" + var + "' is consistently guarded by '" + common.front() +
                  "' (never a race candidate under blocking semantics)";
      summary.diagnostics.push_back(std::move(d));
    }
  }

  // --- pure-guard mutexes --------------------------------------------
  // A mutex is a pure guard when every critical section on it closes in
  // program order and holds only read/write ops on variables guarded by
  // that same mutex (or thread-local). Any other op inside a section —
  // another lock (can block), send/recv/barrier (can block or order), a
  // section left open at thread end (waiters starve), an access to a
  // variable with other unguarded sites (the section's release/acquire
  // edges could mask that race in one acquisition order) — disqualifies
  // it. Survivors' critical sections commute as atomic blocks.
  std::set<std::string> impure;
  std::set<std::string> seen_mutexes;
  const auto thread_local_var = [&summary](const std::string& var) {
    return std::binary_search(summary.thread_local_vars.begin(),
                              summary.thread_local_vars.end(), var);
  };
  for (const ThreadScript& thread : model.threads) {
    std::vector<std::string> held;  // acquisition order
    for (const ScriptOp& op : thread.ops) {
      switch (op.verb) {
        case ScriptVerb::Lock:
          seen_mutexes.insert(op.object);
          for (const std::string& h : held) impure.insert(h);
          held.push_back(op.object);
          break;
        case ScriptVerb::Unlock: {
          const auto it = std::find(held.rbegin(), held.rend(), op.object);
          if (it != held.rend()) {
            held.erase(std::next(it).base());
          } else {
            impure.insert(op.object);  // unlock-without-lock
          }
          break;
        }
        case ScriptVerb::Read:
        case ScriptVerb::Write:
          for (const std::string& h : held) {
            const auto guard = summary.guarded_vars.find(op.object);
            const bool guarded_by_h =
                guard != summary.guarded_vars.end() && guard->second == h;
            if (!guarded_by_h && !thread_local_var(op.object)) impure.insert(h);
          }
          break;
        case ScriptVerb::Send:
        case ScriptVerb::Recv:
        case ScriptVerb::Barrier:
          for (const std::string& h : held) impure.insert(h);
          break;
      }
    }
    for (const std::string& h : held) impure.insert(h);  // never released
  }
  for (const std::string& m : seen_mutexes) {
    if (impure.count(m) == 0) summary.independent_mutexes.push_back(m);
  }

  normalize(summary.diagnostics);
  return summary;
}

race::ExploreOptions seed_explore_options(const ConcurSummary& summary,
                                          race::ExploreOptions base) {
  race::ExploreOptions options = std::move(base);
  // The independence facts assume lock/recv actually block; the
  // Explorer enforces the pairing, we just make it the default here.
  options.model_blocking = true;
  for (const StaticRace& r : summary.races) {
    race::RaceReport hint;
    hint.variable = r.variable;
    hint.first.thread = static_cast<race::ThreadId>(r.first_thread);
    hint.first.kind = r.first_is_write ? race::AccessKind::Write : race::AccessKind::Read;
    hint.first.where = r.first;
    hint.second.thread = static_cast<race::ThreadId>(r.second_thread);
    hint.second.kind =
        r.second_is_write ? race::AccessKind::Write : race::AccessKind::Read;
    hint.second.where = r.second;
    hint.explanation = r.explanation;
    options.hints.push_back(std::move(hint));
  }
  std::vector<std::string> independent = summary.thread_local_vars;
  for (const auto& [var, lock] : summary.guarded_vars) {
    (void)lock;
    independent.push_back(var);
  }
  std::sort(independent.begin(), independent.end());
  independent.erase(std::unique(independent.begin(), independent.end()),
                    independent.end());
  for (std::string& var : independent) {
    options.independent_vars.push_back(std::move(var));
  }
  for (const std::string& m : summary.independent_mutexes) {
    options.independent_mutexes.push_back(m);
  }
  return options;
}

}  // namespace cs31::analyze
