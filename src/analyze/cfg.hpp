// Control-flow graphs over both program representations the kit owns.
//
// Mini-C side: one CFG per function over the parsed AST. Straight-line
// statements (declarations, expression statements) accumulate into
// blocks; If/While terminate blocks, and their conditions lower into
// *short-circuit chains* — `if (a && b)` becomes two condition blocks
// with the same edges the code generator emits, so a dataflow pass sees
// an assignment buried in `b` only on the paths that actually evaluate
// it. Block 0 is the entry, block 1 the synthetic exit; a Return edge
// and a fall-off-the-end edge into the exit are distinguishable, which
// is exactly what the missing-return check needs.
//
// ISA side: one CFG per loaded Image over the decoded instruction
// stream. Leaders are the image entry, every jump target, and every
// instruction after a control transfer; call instructions fall through
// (the callee is a separate function) and their targets are collected
// as the call graph. Roots — the places analysis may assume control
// arrives from outside — are the image entry, every call target, and
// every label no jump targets (exported routines like the Lab 4
// samples, or maze floors entered by pointing EIP at them).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "ccomp/ast.hpp"
#include "isa/assembler.hpp"

namespace cs31::analyze {

// ---------------------------------------------------------------------------
// Mini-C
// ---------------------------------------------------------------------------

/// One basic block of a mini-C function.
struct CBlock {
  /// Straight-line statements, in order (Decl / ExprStmt only; control
  /// statements live in the terminator).
  std::vector<const cc::Stmt*> stmts;

  enum class Term {
    Jump,    ///< unconditional edge to `next`
    Cond,    ///< evaluate `cond`; true -> on_true, false -> on_false
    Return,  ///< `owner` is the Return stmt; edge to the exit block
    Exit,    ///< the synthetic exit block (no out-edges)
  };
  Term term = Term::Jump;

  /// The If/While/Return statement that produced this terminator
  /// (nullptr for plain jumps and the exit block). Several blocks of
  /// one short-circuit chain share the same owner.
  const cc::Stmt* owner = nullptr;

  /// Short-circuit leaf condition evaluated by a Cond terminator: never
  /// a LogicalAnd/LogicalOr (those were lowered into the chain).
  const cc::Expr* cond = nullptr;

  int next = -1;
  int on_true = -1;
  int on_false = -1;

  std::vector<int> preds;  ///< filled in by build_cfg

  /// All successors, in a stable order.
  [[nodiscard]] std::vector<int> succs() const;
};

/// CFG of one mini-C function. blocks[0] = entry, blocks[1] = exit.
struct CFuncCfg {
  const cc::Function* fn = nullptr;
  std::vector<CBlock> blocks;

  /// Every statement's home block: straight-line statements map to the
  /// block holding them; If/While/Return map to the (first) block whose
  /// terminator they own. Block containers are not statements here —
  /// their children are. This is the partition the structural tests
  /// verify.
  std::map<const cc::Stmt*, int> home;
};

[[nodiscard]] CFuncCfg build_cfg(const cc::Function& fn);

/// The statement universe the CFG must partition: every non-Block node
/// of the function's statement tree, in source order.
[[nodiscard]] std::vector<const cc::Stmt*> all_statements(const cc::Function& fn);

// ---------------------------------------------------------------------------
// Teaching ISA
// ---------------------------------------------------------------------------

/// One decoded instruction plus its code address.
struct IsaInstr {
  std::uint32_t addr = 0;
  isa::Instruction ins;
};

/// One basic block of an image.
struct IsaBlock {
  std::uint32_t start = 0;
  std::vector<IsaInstr> instrs;
  std::vector<int> succs;
  std::vector<int> preds;
};

/// A root: an address where control may arrive from outside the image's
/// own jumps (entry point, call target, un-jumped label).
struct IsaRoot {
  std::string name;  ///< best label for reports ("_start", "array_sum", ...)
  std::uint32_t addr = 0;
  bool is_call_target = false;  ///< some `call` in the image targets it
};

/// CFG of a whole image.
struct IsaCfg {
  const isa::Image* image = nullptr;
  std::vector<IsaBlock> blocks;           ///< sorted by start address
  std::map<std::uint32_t, int> block_at;  ///< start address -> block index
  std::vector<IsaRoot> roots;             ///< sorted by address
  std::vector<std::uint32_t> call_targets;  ///< deduplicated, sorted

  /// Entry address the Machine would start at (prefers _start, then
  /// main, then the load base).
  std::uint32_t entry = 0;

  /// Index of the block containing `addr` (which need not be a block
  /// start). Returns -1 when the address is outside the image.
  [[nodiscard]] int block_containing(std::uint32_t addr) const;

  /// Best label for an address: the nearest symbol at or before it
  /// (the debugger's backtrace convention), or a hex rendering.
  [[nodiscard]] std::string label_for(std::uint32_t addr) const;
};

/// Decode the image and build its CFG. Throws cs31::Error when the
/// image contains bytes that do not decode (the teaching encoding has
/// no data sections, so an undecodable image is malformed input).
[[nodiscard]] IsaCfg build_cfg(const isa::Image& image);

/// Blocks reachable from `root` following jump and fallthrough edges
/// only (call edges stay in the call graph): the intraprocedural view
/// the per-function ISA checks run on. Indices in discovery (BFS)
/// order, starting with the root's block.
[[nodiscard]] std::vector<int> function_blocks(const IsaCfg& cfg, std::uint32_t root);

/// Does any path from `root` (intraprocedural, as function_blocks)
/// reach a `ret`? Distinguishes callable routines from raw entry
/// fragments that end in hlt — the latter are exempt from the cdecl
/// contract checks.
[[nodiscard]] bool function_returns(const IsaCfg& cfg, std::uint32_t root);

}  // namespace cs31::analyze
