// The diagnostic model every static-analysis pass reports through: one
// Diagnostic per finding, carrying the pass name, the severity, and a
// location in whichever program representation the pass examined — a
// mini-C source line or a teaching-ISA code address. Diagnostics have a
// stable total order (location, pass, message), duplicate findings
// collapse, and the set renders both as compiler-style text ("mini_c:7:
// warning: ...") and as one machine-readable JSON line per finding, so
// drivers, tests, and graders all consume the same stream.
//
// Expected-finding annotations close the loop for corpora that are
// *supposed* to trip a pass: a fixture marks each seeded bug with an
// "expect:" comment, and verify_expected() reports both unexpected
// diagnostics and expectations that no pass satisfied. The self-lint
// smoke test runs every bundled sample and fixture through this.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace cs31::analyze {

enum class Severity { Note, Warning, Error };

[[nodiscard]] std::string to_string(Severity severity);

/// One finding from one pass.
struct Diagnostic {
  Severity severity = Severity::Warning;
  std::string pass;      ///< stable pass slug, e.g. "use-before-init"
  std::string function;  ///< enclosing function / root label ("" = whole unit)
  int line = 0;          ///< mini-C source line (0 when the finding is ISA-side)
  std::uint32_t addr = 0;    ///< ISA code address (valid when has_addr)
  bool has_addr = false;
  std::string message;
  std::vector<std::string> notes;  ///< secondary lines (related locations, hints)

  /// "warning[dead-store] line 4 in 'main': ..." or
  /// "warning[stack-balance] 0x1040 in 'array_sum': ...".
  [[nodiscard]] std::string to_string() const;

  /// One JSON object: {"pass":...,"severity":...,"line":...,...}.
  [[nodiscard]] std::string to_json() const;

  friend bool operator==(const Diagnostic&, const Diagnostic&) = default;
};

/// Stable order: location (line, then addr), pass, function, message.
/// Severity does not participate — a finding's place in the listing
/// should not move when a driver upgrades warnings to errors.
[[nodiscard]] bool diagnostic_less(const Diagnostic& a, const Diagnostic& b);

/// Sort into the stable order and drop exact duplicates in place.
void normalize(std::vector<Diagnostic>& diagnostics);

/// Multi-line text rendering of a whole run; "" when clean.
[[nodiscard]] std::string render(const std::vector<Diagnostic>& diagnostics);

/// JSON array of the findings (machine-readable rendering).
[[nodiscard]] std::string render_json(const std::vector<Diagnostic>& diagnostics);

/// An annotated expectation: this pass should fire here. Line 0 matches
/// any line (used by assembly fixtures, where findings carry addresses
/// the source text cannot name).
struct Expectation {
  std::string pass;
  int line = 0;

  friend bool operator==(const Expectation&, const Expectation&) = default;
};

/// Scan source text for expectation annotations. The syntax is the same
/// for mini-C and assembly (both comment styles pass through):
///   // expect: use-before-init@7      (pass must fire on line 7)
///   # expect: callee-save             (pass must fire anywhere)
/// Multiple annotations per file (and per line) are fine.
[[nodiscard]] std::vector<Expectation> parse_expectations(const std::string& source);

/// Match findings against expectations. Every diagnostic must be
/// claimed by some expectation (pass equal, line equal or wildcard) and
/// every expectation must claim at least one diagnostic; returns a
/// human-readable complaint per violation ("" … empty vector = all
/// good). Notes never need an expectation.
[[nodiscard]] std::vector<std::string> verify_expected(
    const std::vector<Diagnostic>& diagnostics,
    const std::vector<Expectation>& expectations);

}  // namespace cs31::analyze
