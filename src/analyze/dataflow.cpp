#include "analyze/dataflow.hpp"

#include <set>

namespace cs31::analyze {

FlowGraph flow_graph(const CFuncCfg& cfg) {
  FlowGraph g;
  g.succs.resize(cfg.blocks.size());
  g.preds.resize(cfg.blocks.size());
  for (std::size_t i = 0; i < cfg.blocks.size(); ++i) {
    g.succs[i] = cfg.blocks[i].succs();
    g.preds[i] = cfg.blocks[i].preds;
  }
  g.entries = {0};
  return g;
}

IsaSlice flow_graph(const IsaCfg& cfg, std::uint32_t root) {
  IsaSlice slice;
  slice.global = function_blocks(cfg, root);
  std::vector<int> local(cfg.blocks.size(), -1);
  for (std::size_t i = 0; i < slice.global.size(); ++i) {
    local[static_cast<std::size_t>(slice.global[i])] = static_cast<int>(i);
  }
  slice.graph.succs.resize(slice.global.size());
  slice.graph.preds.resize(slice.global.size());
  for (std::size_t i = 0; i < slice.global.size(); ++i) {
    for (const int s : cfg.blocks[static_cast<std::size_t>(slice.global[i])].succs) {
      const int ls = local[static_cast<std::size_t>(s)];
      if (ls < 0) continue;  // edge leaves the slice
      slice.graph.succs[i].push_back(ls);
      slice.graph.preds[static_cast<std::size_t>(ls)].push_back(static_cast<int>(i));
    }
  }
  if (!slice.global.empty()) slice.graph.entries = {0};
  return slice;
}

std::vector<bool> reachable(const FlowGraph& g) {
  std::vector<bool> seen(g.size(), false);
  std::vector<int> stack;
  for (const int e : g.entries) {
    if (!seen[static_cast<std::size_t>(e)]) {
      seen[static_cast<std::size_t>(e)] = true;
      stack.push_back(e);
    }
  }
  while (!stack.empty()) {
    const int n = stack.back();
    stack.pop_back();
    for (const int s : g.succs[static_cast<std::size_t>(n)]) {
      if (!seen[static_cast<std::size_t>(s)]) {
        seen[static_cast<std::size_t>(s)] = true;
        stack.push_back(s);
      }
    }
  }
  return seen;
}

}  // namespace cs31::analyze
