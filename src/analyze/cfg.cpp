#include "analyze/cfg.hpp"

#include <algorithm>
#include <cstdio>
#include <set>

#include "common/error.hpp"

namespace cs31::analyze {

// ---------------------------------------------------------------------------
// Mini-C
// ---------------------------------------------------------------------------

std::vector<int> CBlock::succs() const {
  switch (term) {
    case Term::Jump: return next >= 0 ? std::vector<int>{next} : std::vector<int>{};
    case Term::Cond:
      if (on_true == on_false) return {on_true};
      return {on_true, on_false};
    case Term::Return: return next >= 0 ? std::vector<int>{next} : std::vector<int>{};
    case Term::Exit: return {};
  }
  return {};
}

namespace {

/// Builder for one function's CFG. Lowering mirrors the code
/// generator's shapes (ccomp/codegen.cpp): If and While conditions
/// become branch chains, && and || short-circuit, ! swaps the targets.
class CBuilder {
 public:
  explicit CBuilder(const cc::Function& fn) { cfg_.fn = &fn; }

  CFuncCfg build() {
    const cc::Function& fn = *cfg_.fn;
    new_block();  // 0: entry
    new_block();  // 1: exit
    cfg_.blocks[1].term = CBlock::Term::Exit;

    int cur = 0;
    for (const cc::StmtPtr& s : fn.body) cur = lower_stmt(*s, cur);
    // Falling off the end: a plain Jump edge into the exit — the
    // missing-return check keys on exactly this edge shape.
    seal_jump(cur, 1);

    link_preds();
    return std::move(cfg_);
  }

 private:
  int new_block() {
    cfg_.blocks.emplace_back();
    return static_cast<int>(cfg_.blocks.size()) - 1;
  }

  void seal_jump(int block, int target) {
    CBlock& b = cfg_.blocks[static_cast<std::size_t>(block)];
    b.term = CBlock::Term::Jump;
    b.next = target;
  }

  /// Record the home block of a control statement once (the first block
  /// of its condition chain).
  void claim(const cc::Stmt* stmt, int block) {
    cfg_.home.emplace(stmt, block);  // emplace: first claim wins
  }

  /// Lower one statement starting in `cur`; returns the block where
  /// control continues afterwards.
  int lower_stmt(const cc::Stmt& stmt, int cur) {
    switch (stmt.kind) {
      case cc::Stmt::Kind::ExprStmt:
      case cc::Stmt::Kind::Decl:
        cfg_.blocks[static_cast<std::size_t>(cur)].stmts.push_back(&stmt);
        cfg_.home.emplace(&stmt, cur);
        return cur;
      case cc::Stmt::Kind::Block: {
        int b = cur;
        for (const cc::StmtPtr& s : stmt.body) b = lower_stmt(*s, b);
        return b;
      }
      case cc::Stmt::Kind::Return: {
        CBlock& b = cfg_.blocks[static_cast<std::size_t>(cur)];
        b.term = CBlock::Term::Return;
        b.owner = &stmt;
        b.next = 1;  // exit
        claim(&stmt, cur);
        // Statements after a return land in a fresh block with no
        // in-edges — the unreachable check finds it.
        return new_block();
      }
      case cc::Stmt::Kind::If: {
        const int then_blk = new_block();
        const int join = new_block();
        int else_blk = join;
        if (stmt.else_branch) else_blk = new_block();
        lower_cond(*stmt.expr, &stmt, cur, then_blk, else_blk);
        claim(&stmt, cur);
        const int then_end = lower_stmt(*stmt.then_branch, then_blk);
        seal_jump(then_end, join);
        if (stmt.else_branch) {
          const int else_end = lower_stmt(*stmt.else_branch, else_blk);
          seal_jump(else_end, join);
        }
        return join;
      }
      case cc::Stmt::Kind::While: {
        const int header = new_block();
        const int body = new_block();
        const int after = new_block();
        seal_jump(cur, header);
        lower_cond(*stmt.expr, &stmt, header, body, after);
        claim(&stmt, header);
        const int body_end = lower_stmt(*stmt.loop_body, body);
        seal_jump(body_end, header);  // back edge
        return after;
      }
    }
    return cur;
  }

  /// Lower a condition into `cur`, branching to `on_true`/`on_false`
  /// with the short-circuit structure made explicit as edges.
  void lower_cond(const cc::Expr& e, const cc::Stmt* owner, int cur, int on_true,
                  int on_false) {
    if (e.kind == cc::Expr::Kind::Binary &&
        (e.bin_op == cc::BinOp::LogicalAnd || e.bin_op == cc::BinOp::LogicalOr)) {
      const int rhs_blk = new_block();
      if (e.bin_op == cc::BinOp::LogicalAnd) {
        lower_cond(*e.lhs, owner, cur, rhs_blk, on_false);
      } else {
        lower_cond(*e.lhs, owner, cur, on_true, rhs_blk);
      }
      lower_cond(*e.rhs, owner, rhs_blk, on_true, on_false);
      return;
    }
    if (e.kind == cc::Expr::Kind::Unary && e.un_op == cc::UnOp::LogicalNot) {
      lower_cond(*e.lhs, owner, cur, on_false, on_true);
      return;
    }
    CBlock& b = cfg_.blocks[static_cast<std::size_t>(cur)];
    b.term = CBlock::Term::Cond;
    b.owner = owner;
    b.cond = &e;
    b.on_true = on_true;
    b.on_false = on_false;
  }

  void link_preds() {
    for (int i = 0; i < static_cast<int>(cfg_.blocks.size()); ++i) {
      for (const int s : cfg_.blocks[static_cast<std::size_t>(i)].succs()) {
        cfg_.blocks[static_cast<std::size_t>(s)].preds.push_back(i);
      }
    }
  }

  CFuncCfg cfg_;
};

void collect_statements(const cc::Stmt& stmt, std::vector<const cc::Stmt*>& out) {
  if (stmt.kind == cc::Stmt::Kind::Block) {
    for (const cc::StmtPtr& s : stmt.body) collect_statements(*s, out);
    return;
  }
  out.push_back(&stmt);
  if (stmt.kind == cc::Stmt::Kind::If) {
    collect_statements(*stmt.then_branch, out);
    if (stmt.else_branch) collect_statements(*stmt.else_branch, out);
  } else if (stmt.kind == cc::Stmt::Kind::While) {
    collect_statements(*stmt.loop_body, out);
  }
}

}  // namespace

CFuncCfg build_cfg(const cc::Function& fn) { return CBuilder(fn).build(); }

std::vector<const cc::Stmt*> all_statements(const cc::Function& fn) {
  std::vector<const cc::Stmt*> out;
  for (const cc::StmtPtr& s : fn.body) collect_statements(*s, out);
  return out;
}

// ---------------------------------------------------------------------------
// Teaching ISA
// ---------------------------------------------------------------------------

namespace {

using isa::Mnemonic;

bool is_cond_jump(Mnemonic m) {
  switch (m) {
    case Mnemonic::Je: case Mnemonic::Jne: case Mnemonic::Jg: case Mnemonic::Jge:
    case Mnemonic::Jl: case Mnemonic::Jle: case Mnemonic::Ja: case Mnemonic::Jae:
    case Mnemonic::Jb: case Mnemonic::Jbe: case Mnemonic::Js: case Mnemonic::Jns:
      return true;
    default:
      return false;
  }
}

bool ends_block(Mnemonic m) {
  return m == Mnemonic::Jmp || m == Mnemonic::Ret || m == Mnemonic::Hlt ||
         is_cond_jump(m);
}

}  // namespace

int IsaCfg::block_containing(std::uint32_t addr) const {
  for (int i = 0; i < static_cast<int>(blocks.size()); ++i) {
    const IsaBlock& b = blocks[static_cast<std::size_t>(i)];
    if (b.instrs.empty()) continue;
    const std::uint32_t end = b.instrs.back().addr + isa::kInstrBytes;
    if (addr >= b.start && addr < end) return i;
  }
  return -1;
}

std::string IsaCfg::label_for(std::uint32_t addr) const {
  // Prefer real routine names over compiler-local ".L" labels — a
  // finding inside main's loop should say "main", not ".Lcond0".
  std::string best;
  std::uint32_t best_addr = 0;
  bool best_local = false;
  for (const auto& [name, sym_addr] : image->symbols) {
    if (sym_addr > addr) continue;
    const bool local = !name.empty() && name.front() == '.';
    const bool better = best.empty() || (best_local && !local) ||
                        (best_local == local && sym_addr >= best_addr);
    if (better) {
      best = name;
      best_addr = sym_addr;
      best_local = local;
    }
  }
  if (!best.empty()) return best;
  char buf[16];
  std::snprintf(buf, sizeof buf, "0x%x", addr);
  return buf;
}

IsaCfg build_cfg(const isa::Image& image) {
  IsaCfg cfg;
  cfg.image = &image;
  const std::uint32_t base = image.base;
  const std::size_t count = image.instruction_count();
  require(image.bytes.size() == count * isa::kInstrBytes,
          "image size is not a whole number of instructions");

  std::vector<isa::Instruction> code;
  code.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    code.push_back(isa::decode(image.bytes.data() + i * isa::kInstrBytes));
  }

  const auto in_image = [&](std::uint32_t addr) {
    return addr >= base && addr < base + count * isa::kInstrBytes &&
           (addr - base) % isa::kInstrBytes == 0;
  };

  // Entry: the Machine::load heuristic.
  cfg.entry = base;
  if (image.symbols.contains("_start")) cfg.entry = image.symbols.at("_start");
  else if (image.symbols.contains("main")) cfg.entry = image.symbols.at("main");

  // Leaders: entry, every jump/call target, every symbol, and the
  // instruction after any control transfer.
  std::set<std::uint32_t> leaders = {cfg.entry};
  std::set<std::uint32_t> jump_targets;
  std::set<std::uint32_t> call_targets;
  for (const auto& [name, addr] : image.symbols) {
    if (in_image(addr)) leaders.insert(addr);
  }
  for (std::size_t i = 0; i < count; ++i) {
    const isa::Instruction& ins = code[i];
    const std::uint32_t addr = base + static_cast<std::uint32_t>(i * isa::kInstrBytes);
    const std::uint32_t next = addr + isa::kInstrBytes;
    if (ins.op == Mnemonic::Jmp || is_cond_jump(ins.op)) {
      require(in_image(ins.target),
              "jump target outside the image at " + std::to_string(addr));
      leaders.insert(ins.target);
      jump_targets.insert(ins.target);
      if (in_image(next)) leaders.insert(next);
    } else if (ins.op == Mnemonic::Call) {
      require(in_image(ins.target),
              "call target outside the image at " + std::to_string(addr));
      leaders.insert(ins.target);
      call_targets.insert(ins.target);
      if (in_image(next)) leaders.insert(next);
    } else if (ins.op == Mnemonic::Ret || ins.op == Mnemonic::Hlt) {
      if (in_image(next)) leaders.insert(next);
    }
  }

  // Carve blocks.
  for (const std::uint32_t leader : leaders) {
    if (!in_image(leader)) continue;
    IsaBlock block;
    block.start = leader;
    for (std::uint32_t addr = leader; in_image(addr); addr += isa::kInstrBytes) {
      if (addr != leader && leaders.contains(addr)) break;
      const isa::Instruction& ins = code[(addr - base) / isa::kInstrBytes];
      block.instrs.push_back({addr, ins});
      if (ends_block(ins.op)) break;
    }
    cfg.block_at[leader] = static_cast<int>(cfg.blocks.size());
    cfg.blocks.push_back(std::move(block));
  }

  // Edges.
  for (int i = 0; i < static_cast<int>(cfg.blocks.size()); ++i) {
    IsaBlock& b = cfg.blocks[static_cast<std::size_t>(i)];
    const IsaInstr& last = b.instrs.back();
    const std::uint32_t next = last.addr + isa::kInstrBytes;
    const auto add_edge = [&](std::uint32_t target) {
      const auto it = cfg.block_at.find(target);
      if (it == cfg.block_at.end()) return;
      b.succs.push_back(it->second);
      cfg.blocks[static_cast<std::size_t>(it->second)].preds.push_back(i);
    };
    if (last.ins.op == Mnemonic::Jmp) {
      add_edge(last.ins.target);
    } else if (is_cond_jump(last.ins.op)) {
      add_edge(last.ins.target);
      if (in_image(next)) add_edge(next);
    } else if (last.ins.op == Mnemonic::Ret || last.ins.op == Mnemonic::Hlt) {
      // no successors
    } else {
      // Plain fallthrough (including call: the callee returns here).
      if (in_image(next)) add_edge(next);
    }
  }

  cfg.call_targets.assign(call_targets.begin(), call_targets.end());

  // Roots: entry, call targets, and labels nothing jumps to. Labels
  // starting with '.' are compiler-local (the generator's ".Lend"/".Lret"
  // family); control never arrives at them from outside, so they are
  // not roots even when an optimization left them un-jumped.
  std::set<std::uint32_t> root_addrs = {cfg.entry};
  for (const std::uint32_t t : call_targets) root_addrs.insert(t);
  for (const auto& [name, addr] : image.symbols) {
    if (!name.empty() && name.front() == '.') continue;
    if (in_image(addr) && !jump_targets.contains(addr)) root_addrs.insert(addr);
  }
  for (const std::uint32_t addr : root_addrs) {
    IsaRoot root;
    root.addr = addr;
    root.is_call_target = call_targets.contains(addr);
    root.name = cfg.label_for(addr);
    cfg.roots.push_back(std::move(root));
  }
  return cfg;
}

std::vector<int> function_blocks(const IsaCfg& cfg, std::uint32_t root) {
  std::vector<int> order;
  const auto it = cfg.block_at.find(root);
  if (it == cfg.block_at.end()) return order;
  std::set<int> seen = {it->second};
  order.push_back(it->second);
  for (std::size_t head = 0; head < order.size(); ++head) {
    for (const int s : cfg.blocks[static_cast<std::size_t>(order[head])].succs) {
      if (seen.insert(s).second) order.push_back(s);
    }
  }
  return order;
}

bool function_returns(const IsaCfg& cfg, std::uint32_t root) {
  for (const int b : function_blocks(cfg, root)) {
    const IsaBlock& block = cfg.blocks[static_cast<std::size_t>(b)];
    if (!block.instrs.empty() && block.instrs.back().ins.op == Mnemonic::Ret) return true;
  }
  return false;
}

}  // namespace cs31::analyze
