// The teaching-ISA static checks, run over a loaded Image's CFG:
//
//   stack-balance      forward  — tracks the net bytes pushed since
//                                 function entry; a `ret` reached with a
//                                 nonzero delta (or a merge point whose
//                                 incoming paths disagree) breaks the
//                                 cdecl contract Lab 4 drills.
//   uninit-register    forward  — a read of a register no instruction
//                                 on any path from the routine's entry
//                                 has written. Call-target roots start
//                                 with only %esp defined (arguments
//                                 arrive on the stack); raw entry points
//                                 and un-jumped labels (the maze floors,
//                                 entered by pointing EIP at them) start
//                                 fully defined.
//   callee-save        forward  — a read, after a `call`, of a register
//                                 the call destroyed: %ecx/%edx always
//                                 (caller-saved), %ebx/%esi/%edi/%ebp
//                                 when the callee's own code writes them
//                                 without the push/pop save idiom. The
//                                 check sits with the *caller* — the Lab
//                                 4 samples deliberately clobber scratch
//                                 registers, which is fine until some
//                                 caller relies on them surviving.
//   unreachable-block  —          code no root (entry, call target,
//                                 un-jumped label) can reach.
//
// All addresses in diagnostics are real code addresses; `function` is
// the root label the finding was discovered under.
#pragma once

#include <vector>

#include "analyze/diagnostic.hpp"
#include "isa/assembler.hpp"

namespace cs31::isa {
class Debugger;
}

namespace cs31::analyze {

/// Run every ISA check over the image; sorted + deduplicated.
[[nodiscard]] std::vector<Diagnostic> lint_image(const isa::Image& image);

/// Register a `lint` command on a debugger: it runs lint_image over
/// `image` (which must outlive the debugger) and prints the findings,
/// so a student can ask "is this binary suspicious?" before stepping.
void attach_lint(isa::Debugger& debugger, const isa::Image& image);

}  // namespace cs31::analyze
