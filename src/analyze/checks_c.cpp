#include "analyze/checks_c.hpp"

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "analyze/cfg.hpp"
#include "analyze/dataflow.hpp"

namespace cs31::analyze {

namespace {

using cc::BinOp;
using cc::Expr;
using cc::Function;
using cc::Stmt;
using cc::UnOp;

// ---------------------------------------------------------------------------
// Shared per-function context: the variable universe (params + every
// declaration; mini-C locals are function-scoped, as the code
// generator's frame layout is) and the CFG adapters.
// ---------------------------------------------------------------------------

struct FnContext {
  const Function* fn = nullptr;
  CFuncCfg cfg;
  FlowGraph graph;
  std::vector<bool> reach;
  std::map<std::string, int> var_index;  ///< name -> dense index
  std::vector<std::string> var_names;    ///< index -> name
  std::size_t param_count = 0;

  [[nodiscard]] int index_of(const std::string& name) const {
    const auto it = var_index.find(name);
    return it == var_index.end() ? -1 : it->second;
  }
};

void collect_decls(const Stmt& stmt, FnContext& ctx) {
  if (stmt.kind == Stmt::Kind::Decl && !ctx.var_index.contains(stmt.name)) {
    ctx.var_index[stmt.name] = static_cast<int>(ctx.var_names.size());
    ctx.var_names.push_back(stmt.name);
  }
  for (const cc::StmtPtr& s : stmt.body) collect_decls(*s, ctx);
  if (stmt.then_branch) collect_decls(*stmt.then_branch, ctx);
  if (stmt.else_branch) collect_decls(*stmt.else_branch, ctx);
  if (stmt.loop_body) collect_decls(*stmt.loop_body, ctx);
}

FnContext make_context(const Function& fn) {
  FnContext ctx;
  ctx.fn = &fn;
  ctx.cfg = build_cfg(fn);
  ctx.graph = flow_graph(ctx.cfg);
  ctx.reach = reachable(ctx.graph);
  for (const std::string& p : fn.params) {
    if (!ctx.var_index.contains(p)) {
      ctx.var_index[p] = static_cast<int>(ctx.var_names.size());
      ctx.var_names.push_back(p);
    }
  }
  ctx.param_count = ctx.var_names.size();
  for (const cc::StmtPtr& s : fn.body) collect_decls(*s, ctx);
  return ctx;
}

Diagnostic make_diag(const FnContext& ctx, const std::string& pass, int line,
                     std::string message) {
  Diagnostic d;
  d.pass = pass;
  d.function = ctx.fn->name;
  d.line = line;
  d.message = std::move(message);
  return d;
}

// ---------------------------------------------------------------------------
// use-before-init: forward, one lattice cell per variable.
// ---------------------------------------------------------------------------

// Cell values. Top is the meet identity (path never reached); Init and
// Uninit meet to Maybe.
enum InitCell : std::uint8_t { kTop = 0, kInit, kUninit, kMaybe };

InitCell meet_cell(InitCell a, InitCell b) {
  if (a == kTop) return b;
  if (b == kTop) return a;
  return a == b ? a : kMaybe;
}

struct InitProblem {
  using State = std::vector<std::uint8_t>;
  const FnContext* ctx;
  std::vector<Diagnostic>* sink = nullptr;  ///< set only on the reporting walk

  [[nodiscard]] State top() const { return State(ctx->var_names.size(), kTop); }

  [[nodiscard]] State boundary() const {
    State s(ctx->var_names.size(), kUninit);
    for (std::size_t i = 0; i < ctx->param_count; ++i) s[i] = kInit;
    return s;
  }

  void meet(State& into, const State& from) const {
    for (std::size_t i = 0; i < into.size(); ++i) {
      into[i] = meet_cell(static_cast<InitCell>(into[i]), static_cast<InitCell>(from[i]));
    }
  }

  void sim_read(State& s, const Expr& e) const {
    const int idx = ctx->index_of(e.name);
    if (idx < 0) return;  // undeclared: codegen reports that as an error
    if (sink == nullptr) return;
    const auto cell = static_cast<InitCell>(s[static_cast<std::size_t>(idx)]);
    if (cell == kUninit) {
      sink->push_back(make_diag(*ctx, "use-before-init", e.line,
                                "'" + e.name + "' is read before anything is assigned to it"));
    } else if (cell == kMaybe) {
      Diagnostic d = make_diag(*ctx, "use-before-init", e.line,
                               "'" + e.name + "' may be read uninitialized (no assignment "
                               "reaches this use on at least one path)");
      d.notes.push_back("initialize '" + e.name + "' at its declaration to close every path");
      sink->push_back(std::move(d));
    }
  }

  void sim_expr(State& s, const Expr& e) const {
    switch (e.kind) {
      case Expr::Kind::IntLit:
        return;
      case Expr::Kind::Var:
        sim_read(s, e);
        return;
      case Expr::Kind::Unary:
        sim_expr(s, *e.lhs);
        return;
      case Expr::Kind::Binary:
        if (e.bin_op == BinOp::LogicalAnd || e.bin_op == BinOp::LogicalOr) {
          // The right operand runs on only one of the two out-paths.
          sim_expr(s, *e.lhs);
          State taken = s;
          sim_expr(taken, *e.rhs);
          meet(s, taken);
          return;
        }
        sim_expr(s, *e.lhs);
        sim_expr(s, *e.rhs);
        return;
      case Expr::Kind::Assign: {
        sim_expr(s, *e.rhs);
        const int idx = ctx->index_of(e.name);
        if (idx >= 0) s[static_cast<std::size_t>(idx)] = kInit;
        return;
      }
      case Expr::Kind::Call:
        // cdecl evaluation order: rightmost argument first, as the code
        // generator pushes them.
        for (auto it = e.args.rbegin(); it != e.args.rend(); ++it) sim_expr(s, **it);
        return;
    }
  }

  void sim_stmt(State& s, const Stmt& stmt) const {
    switch (stmt.kind) {
      case Stmt::Kind::ExprStmt:
        sim_expr(s, *stmt.expr);
        return;
      case Stmt::Kind::Decl: {
        const int idx = ctx->index_of(stmt.name);
        if (stmt.expr) {
          sim_expr(s, *stmt.expr);
          if (idx >= 0) s[static_cast<std::size_t>(idx)] = kInit;
        } else if (idx >= 0) {
          // Re-executing a declaration (a loop body) makes the slot
          // fresh again, exactly as a new C scope would.
          s[static_cast<std::size_t>(idx)] = kUninit;
        }
        return;
      }
      default:
        return;  // control statements live in terminators
    }
  }

  [[nodiscard]] State transfer(int node, const State& in) const {
    State s = in;
    const CBlock& b = ctx->cfg.blocks[static_cast<std::size_t>(node)];
    for (const Stmt* stmt : b.stmts) sim_stmt(s, *stmt);
    if (b.term == CBlock::Term::Cond && b.cond != nullptr) sim_expr(s, *b.cond);
    if (b.term == CBlock::Term::Return && b.owner != nullptr && b.owner->expr) {
      sim_expr(s, *b.owner->expr);
    }
    return s;
  }
};

void check_use_before_init(const FnContext& ctx, std::vector<Diagnostic>& out) {
  InitProblem problem{&ctx, nullptr};
  const auto sol = solve(ctx.graph, problem);
  problem.sink = &out;
  for (std::size_t b = 0; b < ctx.graph.size(); ++b) {
    if (!ctx.reach[b]) continue;  // never-propagated states carry no facts
    (void)problem.transfer(static_cast<int>(b), sol.in[b]);
  }
}

// ---------------------------------------------------------------------------
// dead-store: backward liveness, one bit per variable.
// ---------------------------------------------------------------------------

struct LiveProblem {
  using State = std::vector<std::uint8_t>;  // 1 = may be read later
  const FnContext* ctx;
  std::vector<Diagnostic>* sink = nullptr;

  [[nodiscard]] State top() const { return State(ctx->var_names.size(), 0); }
  [[nodiscard]] State boundary() const { return top(); }  // locals die at exit

  void meet(State& into, const State& from) const {
    for (std::size_t i = 0; i < into.size(); ++i) {
      into[i] = static_cast<std::uint8_t>(into[i] | from[i]);
    }
  }

  void store(State& s, const std::string& name, int line, const char* what) const {
    const int idx = ctx->index_of(name);
    if (idx < 0) return;
    if (sink != nullptr && s[static_cast<std::size_t>(idx)] == 0) {
      sink->push_back(make_diag(*ctx, "dead-store", line,
                                std::string(what) + " '" + name + "' is never read"));
    }
    s[static_cast<std::size_t>(idx)] = 0;
  }

  /// Walk an expression in *reverse* evaluation order: kills before the
  /// gens that feed them, so `x = x + 1` leaves x live-in.
  void back_expr(State& s, const Expr& e) const {
    switch (e.kind) {
      case Expr::Kind::IntLit:
        return;
      case Expr::Kind::Var: {
        const int idx = ctx->index_of(e.name);
        if (idx >= 0) s[static_cast<std::size_t>(idx)] = 1;
        return;
      }
      case Expr::Kind::Unary:
        back_expr(s, *e.lhs);
        return;
      case Expr::Kind::Binary:
        if (e.bin_op == BinOp::LogicalAnd || e.bin_op == BinOp::LogicalOr) {
          // The right operand may not run: its kills are conditional
          // (union the two paths), its gens still count.
          State taken = s;
          back_expr(taken, *e.rhs);
          meet(s, taken);
          back_expr(s, *e.lhs);
          return;
        }
        back_expr(s, *e.rhs);
        back_expr(s, *e.lhs);
        return;
      case Expr::Kind::Assign:
        store(s, e.name, e.line, "the value stored to");
        back_expr(s, *e.rhs);
        return;
      case Expr::Kind::Call:
        // Reverse of the right-to-left evaluation: leftmost arg first.
        for (const cc::ExprPtr& arg : e.args) back_expr(s, *arg);
        return;
    }
  }

  void back_stmt(State& s, const Stmt& stmt) const {
    switch (stmt.kind) {
      case Stmt::Kind::ExprStmt:
        back_expr(s, *stmt.expr);
        return;
      case Stmt::Kind::Decl:
        if (stmt.expr) {
          store(s, stmt.name, stmt.line, "the initial value of");
          back_expr(s, *stmt.expr);
        }
        return;
      default:
        return;
    }
  }

  [[nodiscard]] State transfer(int node, const State& in) const {
    // `in` is the live-out of the block (the graph is reversed).
    State s = in;
    const CBlock& b = ctx->cfg.blocks[static_cast<std::size_t>(node)];
    if (b.term == CBlock::Term::Cond && b.cond != nullptr) back_expr(s, *b.cond);
    if (b.term == CBlock::Term::Return && b.owner != nullptr && b.owner->expr) {
      back_expr(s, *b.owner->expr);
    }
    for (auto it = b.stmts.rbegin(); it != b.stmts.rend(); ++it) back_stmt(s, **it);
    return s;
  }
};

void check_dead_store(const FnContext& ctx, std::vector<Diagnostic>& out) {
  LiveProblem problem{&ctx, nullptr};
  const FlowGraph backward = reverse(ctx.graph, {1});
  const auto sol = solve(backward, problem);
  problem.sink = &out;
  for (std::size_t b = 0; b < ctx.graph.size(); ++b) {
    if (!ctx.reach[b]) continue;  // unreachable code gets its own pass
    (void)problem.transfer(static_cast<int>(b), sol.in[b]);
  }
}

// ---------------------------------------------------------------------------
// unreachable: report the first statement of every unreachable region.
// ---------------------------------------------------------------------------

void check_unreachable(const FnContext& ctx, std::vector<Diagnostic>& out) {
  bool prev_unreachable = false;
  for (const Stmt* stmt : all_statements(*ctx.fn)) {
    const auto it = ctx.cfg.home.find(stmt);
    const bool unreachable =
        it != ctx.cfg.home.end() && !ctx.reach[static_cast<std::size_t>(it->second)];
    if (unreachable && !prev_unreachable) {
      out.push_back(make_diag(ctx, "unreachable", stmt->line,
                              "statement can never execute (no path from the function "
                              "entry reaches it)"));
    }
    prev_unreachable = unreachable;
  }
}

// ---------------------------------------------------------------------------
// constant-condition: fold each short-circuit leaf the CFG branches on.
// ---------------------------------------------------------------------------

std::optional<std::int32_t> fold(const Expr& e) {
  const auto wrap = [](std::int64_t v) {
    return static_cast<std::int32_t>(static_cast<std::uint32_t>(v));
  };
  switch (e.kind) {
    case Expr::Kind::IntLit:
      return e.value;
    case Expr::Kind::Unary: {
      const auto v = fold(*e.lhs);
      if (!v) return std::nullopt;
      switch (e.un_op) {
        case UnOp::Neg: return wrap(-static_cast<std::int64_t>(*v));
        case UnOp::BitNot: return ~*v;
        case UnOp::LogicalNot: return *v == 0 ? 1 : 0;
      }
      return std::nullopt;
    }
    case Expr::Kind::Binary: {
      const auto a = fold(*e.lhs);
      const auto b = fold(*e.rhs);
      if (!a || !b) return std::nullopt;
      const std::int64_t x = *a, y = *b;
      switch (e.bin_op) {
        case BinOp::Add: return wrap(x + y);
        case BinOp::Sub: return wrap(x - y);
        case BinOp::Mul: return wrap(x * y);
        case BinOp::BitAnd: return *a & *b;
        case BinOp::BitOr: return *a | *b;
        case BinOp::BitXor: return *a ^ *b;
        case BinOp::Shl:
          if (y < 0 || y > 31) return std::nullopt;
          return wrap(static_cast<std::int64_t>(static_cast<std::uint32_t>(*a)) << y);
        case BinOp::Shr:  // arithmetic, matching the generated sarl
          if (y < 0 || y > 31) return std::nullopt;
          return static_cast<std::int32_t>(*a >> y);
        case BinOp::Lt: return x < y ? 1 : 0;
        case BinOp::Gt: return x > y ? 1 : 0;
        case BinOp::Le: return x <= y ? 1 : 0;
        case BinOp::Ge: return x >= y ? 1 : 0;
        case BinOp::Eq: return x == y ? 1 : 0;
        case BinOp::Ne: return x != y ? 1 : 0;
        case BinOp::LogicalAnd: return (*a != 0 && *b != 0) ? 1 : 0;
        case BinOp::LogicalOr: return (*a != 0 || *b != 0) ? 1 : 0;
      }
      return std::nullopt;
    }
    default:
      return std::nullopt;  // Var / Assign / Call depend on state
  }
}

void check_constant_condition(const FnContext& ctx, std::vector<Diagnostic>& out) {
  for (std::size_t b = 0; b < ctx.cfg.blocks.size(); ++b) {
    const CBlock& block = ctx.cfg.blocks[b];
    if (block.term != CBlock::Term::Cond || block.cond == nullptr) continue;
    if (!ctx.reach[b]) continue;
    const auto v = fold(*block.cond);
    if (!v) continue;
    const bool is_while = block.owner != nullptr && block.owner->kind == Stmt::Kind::While;
    Diagnostic d = make_diag(ctx, "constant-condition", block.cond->line,
                             std::string("condition is always ") +
                                 (*v != 0 ? "true" : "false"));
    if (is_while && *v != 0) {
      d.notes.push_back("the loop can only exit through a return inside its body");
    }
    out.push_back(std::move(d));
  }
}

// ---------------------------------------------------------------------------
// missing-return: a reachable fall-off-the-end edge in a non-void fn.
// ---------------------------------------------------------------------------

void check_missing_return(const FnContext& ctx, std::vector<Diagnostic>& out) {
  if (ctx.fn->returns_void) return;
  for (std::size_t b = 0; b < ctx.cfg.blocks.size(); ++b) {
    const CBlock& block = ctx.cfg.blocks[b];
    if (!ctx.reach[b]) continue;
    if (block.term == CBlock::Term::Jump && block.next == 1) {
      Diagnostic d = make_diag(ctx, "missing-return", ctx.fn->line,
                               "control can reach the end of '" + ctx.fn->name +
                                   "' without returning a value");
      d.notes.push_back("the generated code returns 0 on that path, silently");
      out.push_back(std::move(d));
      return;  // one report per function, whatever the path count
    }
  }
}

}  // namespace

std::vector<Diagnostic> analyze_function(const Function& fn) {
  const FnContext ctx = make_context(fn);
  std::vector<Diagnostic> out;
  check_use_before_init(ctx, out);
  check_dead_store(ctx, out);
  check_unreachable(ctx, out);
  check_constant_condition(ctx, out);
  check_missing_return(ctx, out);
  return out;
}

std::vector<Diagnostic> analyze_program(const cc::ProgramAst& program) {
  std::vector<Diagnostic> out;
  for (const Function& fn : program.functions) {
    auto fn_diags = analyze_function(fn);
    out.insert(out.end(), std::make_move_iterator(fn_diags.begin()),
               std::make_move_iterator(fn_diags.end()));
  }
  normalize(out);
  return out;
}

}  // namespace cs31::analyze
