// The static concurrency checks over the script model (concur.hpp) —
// the "predict before you run" tier of the race/deadlock story.
//
// Everything reports through the analyze::Diagnostic model the mini-C
// and ISA passes already use: the pass slug names the check, the
// `function` field carries the thread tag ("t0"), and `line` is the
// 1-based op index inside that thread's script. The checks:
//
//   static-race          cross-thread (write, access) pair on one
//                        variable with DISJOINT must-hold locksets and
//                        no barrier ordering between their epochs.
//                        Send/recv edges are deliberately ignored for
//                        ordering: a recv only orders after the send
//                        that fed it in the schedules where it does,
//                        and some schedule always reorders them — so
//                        channel segments never remove a candidate.
//   lock-order-cycle     cycle in the lock-order graph (lock b while
//                        holding a): the classic ABBA deadlock shape.
//   channel-wait-cycle   cycle in the generalized wait-order graph
//                        that involves a channel or the barrier — a
//                        communication deadlock (recv while holding
//                        the lock the sender needs, send behind a
//                        barrier nobody else reaches, ...).
//   self-deadlock        a thread re-locks a mutex it already holds:
//                        guaranteed to wedge under blocking semantics.
//   unlock-without-lock  an unlock with no program-order lock — the
//                        dynamic tier throws on these; statically it
//                        is a diagnostic (not a deadlock: nothing
//                        blocks, the op is simply invalid).
//   recv-no-send         a channel whose total recv count exceeds its
//                        total send count: in EVERY complete schedule
//                        some recv waits forever.
//   barrier-starvation   threads disagree on barrier arrival counts:
//                        the extra arrivals of the eager threads can
//                        never complete a cycle.
//
// The candidates are over-approximations with a precise relationship
// to the dynamic tier (asserted by the tier-1 differential smoke):
// under blocking-aware exploration (ExploreOptions::model_blocking),
// every race race::Explorer reports is a static-race candidate, and
// every deadlock state race::find_deadlocks reaches is explained by a
// wait-order cycle, a recv imbalance, or barrier starvation.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "analyze/concur.hpp"
#include "analyze/diagnostic.hpp"
#include "race/explore.hpp"

namespace cs31::analyze {

/// One static race candidate. Sites are the tagged op texts — the same
/// strings replay uses as AccessSite.where, so a dynamic RaceReport
/// maps onto a candidate by (variable, unordered site-text pair).
struct StaticRace {
  std::string variable;
  std::string first;   ///< tagged op text, e.g. "t0 write z0"
  std::string second;  ///< tagged op text of the other access
  std::size_t first_thread = 0;
  std::size_t second_thread = 0;
  bool first_is_write = false;
  bool second_is_write = false;
  std::string explanation;

  [[nodiscard]] std::string to_string() const;
};

/// One static deadlock candidate. `kind` is the pass slug of the check
/// that produced it; `resources` the cycle / starved resource names in
/// the shared spelling ("mutex a", "channel q0", "barrier").
struct StaticDeadlock {
  std::string kind;
  std::vector<std::string> resources;
  std::string witness;  ///< tagged op text that anchors the finding

  /// True when EVERY complete schedule wedges (self-deadlock,
  /// recv-no-send, barrier-starvation); false for cycle candidates,
  /// which only deadlock in the schedules that interleave into them.
  bool guaranteed = false;

  [[nodiscard]] std::string to_string() const;
};

/// Machine-readable result of analyze_scripts: the diagnostics plus the
/// structured candidates and the independence facts the dynamic tier
/// consumes (seed_explore_options).
struct ConcurSummary {
  std::size_t threads = 0;
  std::size_t ops = 0;

  std::vector<Diagnostic> diagnostics;  ///< normalized (sorted, deduped)
  std::vector<StaticRace> races;
  std::vector<StaticDeadlock> deadlocks;

  /// Variables accessed by exactly one thread (sorted).
  std::vector<std::string> thread_local_vars;

  /// Variables accessed by >= 2 threads where every access holds a
  /// common lock -> the (lexicographically first) guarding lock. Under
  /// blocking semantics these cannot race and their accesses are never
  /// co-enabled, so DPOR may treat them as independent.
  std::map<std::string, std::string> guarded_vars;

  /// PURE-GUARD mutexes (sorted): every critical section on them, in
  /// every thread, closes in program order and contains only read/write
  /// ops on variables the mutex itself consistently guards (or that are
  /// thread-local). Two such sections commute as atomic blocks — no
  /// detector verdict and no stuck state depends on which thread
  /// entered first — so DPOR may treat the mutex's own lock/unlock
  /// pairs as independent (ExploreOptions::independent_mutexes), which
  /// is where the big schedule reductions on lock-disciplined scripts
  /// come from.
  std::vector<std::string> independent_mutexes;

  [[nodiscard]] bool may_race() const { return !races.empty(); }
  [[nodiscard]] bool may_deadlock() const { return !deadlocks.empty(); }

  /// Does some candidate cover the dynamic race (variable, site pair)?
  /// Site strings are replay's AccessSite.where labels (tagged op
  /// texts); order of the pair does not matter.
  [[nodiscard]] bool covers_race(const std::string& variable, const std::string& site_a,
                                 const std::string& site_b) const;

  /// One JSON object with every field above (diagnostics as the same
  /// objects Diagnostic::to_json emits).
  [[nodiscard]] std::string to_json() const;
};

/// Run every check over untagged per-thread scripts (the Explorer /
/// replay_all_interleavings input shape). Throws cs31::Error only on a
/// malformed op; discipline violations come back as diagnostics.
[[nodiscard]] ConcurSummary analyze_scripts(
    const std::vector<std::vector<std::string>>& scripts);

/// Convert a summary into explorer guidance: static race candidates
/// become priority hints (the same mechanism PR 9 uses for prior
/// RaceReports), thread-local and consistently-guarded variables become
/// ExploreOptions::independent_vars, pure-guard mutexes become
/// ExploreOptions::independent_mutexes, and model_blocking is switched
/// on — the independence facts are only sound when lock/recv actually
/// block, and Explorer refuses the combination otherwise.
[[nodiscard]] race::ExploreOptions seed_explore_options(const ConcurSummary& summary,
                                                        race::ExploreOptions base = {});

}  // namespace cs31::analyze
