// The mini-C static checks, all built on the CFG (cfg.hpp) and the
// generic dataflow engine (dataflow.hpp):
//
//   use-before-init    forward  — read of a local on a path where no
//                                 assignment has reached it yet; the
//                                 short-circuit CFG edges make `if (c &&
//                                 (x = f()))` precise.
//   dead-store         backward — an assignment (or initializer) whose
//                                 value no later read can observe.
//   unreachable        —          statements whose home block no path
//                                 from the function entry reaches
//                                 (code after a return, mostly).
//   constant-condition —          an If/While condition leaf that folds
//                                 to a compile-time constant, so one arm
//                                 can never run.
//   missing-return     —          a non-void function with a reachable
//                                 fall-off-the-end edge into the exit
//                                 block.
//
// These are the CS 31 "invisible until it runs" bugs: the generated
// code assembles and executes fine (an uninitialized slot reads as
// whatever the stack held), which is exactly why the course needs a
// static tier in front of the tracer.
#pragma once

#include <vector>

#include "analyze/diagnostic.hpp"
#include "ccomp/ast.hpp"

namespace cs31::analyze {

/// All mini-C passes over one function. Diagnostics are not yet
/// normalized (analyze_program does that once, over the whole unit).
[[nodiscard]] std::vector<Diagnostic> analyze_function(const cc::Function& fn);

/// All passes over every function of the unit; sorted + deduplicated.
[[nodiscard]] std::vector<Diagnostic> analyze_program(const cc::ProgramAst& program);

}  // namespace cs31::analyze
