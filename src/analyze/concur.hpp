// Static model of the concurrent-script grammar (race/replay.hpp):
// the representation every `analyze::concur` check works on.
//
// The per-thread scripts the replay engine and the DPOR explorer
// consume are straight-line programs, so "abstract interpretation" of
// one thread is exact: walking the ops in program order yields, at
// every op, the set of locks the thread MUST hold when that op
// executes, the number of barrier arrivals that precede it (its
// barrier epoch), and the channel send/recv totals. What stays
// abstract is the cross-thread part — which schedule runs — and that
// is exactly where the checks over-approximate: a pair of accesses is
// a race CANDIDATE unless every schedule orders it (a shared
// must-hold lock under blocking semantics, or a completed barrier
// cycle between their epochs), and a resource cycle is a deadlock
// CANDIDATE whether or not a schedule actually reaches it.
//
// The model also builds the two relations the checks read off:
//
//   lock-order graph   edge a -> b when some thread locks b while
//                      holding a (the McKenney lock-hierarchy
//                      discipline, violated = cycle);
//   wait-order graph   the lock-order graph generalized to every
//                      blocking resource: an edge r1 -> r2 means
//                      "progress on r1 can require prior progress on
//                      r2" — a lock held across a blocking op, a send
//                      that sits program-order behind a blocking op
//                      (the channel cannot fill until that op
//                      completes), a barrier arrival behind a blocking
//                      op. A cycle is a deadlock candidate; the pure-
//                      lock cycles are the classic lock-order bugs,
//                      the rest are communication deadlocks.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace cs31::analyze {

enum class ScriptVerb : std::uint8_t { Read, Write, Lock, Unlock, Send, Recv, Barrier };

[[nodiscard]] std::string to_string(ScriptVerb verb);

/// One parsed op of one thread's script, with the per-thread abstract
/// state attached: the must-hold lockset and the barrier epoch at the
/// point this op executes.
struct ScriptOp {
  ScriptVerb verb = ScriptVerb::Read;
  std::string object;  ///< variable / mutex / channel name ("" for barrier)
  std::string text;    ///< tagged text, e.g. "t0 write z" — report attribution
  std::size_t thread = 0;  ///< owning thread index
  std::size_t index = 0;   ///< 0-based position in the thread's script

  /// Locks the thread must hold when this op executes (sorted,
  /// program-order exact because scripts are straight-line).
  std::vector<std::string> must_locks;

  /// Barrier arrivals of this thread before this op (its epoch).
  std::size_t epoch = 0;

  /// True for ops that can block under real semantics: lock, recv,
  /// and any op whose thread is parked at an incomplete barrier.
  [[nodiscard]] bool blocks() const {
    return verb == ScriptVerb::Lock || verb == ScriptVerb::Recv;
  }

  /// The resource a blocking op waits on, in the shared naming scheme
  /// ("mutex m0", "channel q0", "barrier"); "" for non-blocking ops.
  [[nodiscard]] std::string waits_on() const;
};

/// One edge of the lock-order / wait-order graphs, with the op that
/// witnessed it (diagnostics point at real script positions).
struct OrderEdge {
  std::string from;  ///< resource name ("mutex a", "channel q0", "barrier")
  std::string to;
  const ScriptOp* witness = nullptr;  ///< op that created the edge

  friend bool operator==(const OrderEdge& a, const OrderEdge& b) {
    return a.from == b.from && a.to == b.to;
  }
};

/// Shared resource-name builders (the checks and the dynamic
/// confirmation paths must agree on these spellings).
[[nodiscard]] std::string mutex_resource(const std::string& name);
[[nodiscard]] std::string channel_resource(const std::string& name);
[[nodiscard]] std::string barrier_resource();

struct ThreadScript {
  std::string tag;  ///< "t0", "t1", ... (tag_threads order)
  std::vector<ScriptOp> ops;
  std::size_t barrier_arrivals = 0;

  /// Ops flagged by the lenient walk: an unlock with no program-order
  /// lock (the dynamic detector would throw) and a re-lock of a mutex
  /// already held (guaranteed self-deadlock under blocking semantics).
  std::vector<std::size_t> unmatched_unlocks;  ///< op indices
  std::vector<std::size_t> self_relocks;       ///< op indices
};

/// The whole-program static model.
struct ScriptModel {
  std::vector<ThreadScript> threads;

  /// min/max barrier arrivals over threads with any ops at all: cycle
  /// c completes in SOME schedule iff c <= min_arrivals, and a gap
  /// between the two is barrier starvation.
  std::size_t min_arrivals = 0;
  std::size_t max_arrivals = 0;

  /// Per-channel totals across all threads.
  std::map<std::string, std::size_t> sends;
  std::map<std::string, std::size_t> recvs;

  /// Variables and which threads access them (thread index set,
  /// sorted), for the thread-local / consistently-locked
  /// classification.
  std::map<std::string, std::vector<std::size_t>> var_threads;

  /// edge a -> b: some thread locks b while holding a. Deduplicated,
  /// deterministic order (by from, to).
  std::vector<OrderEdge> lock_order;

  /// The generalized wait-order graph (see file comment).
  /// Deduplicated, deterministic order.
  std::vector<OrderEdge> wait_order;

  [[nodiscard]] std::size_t total_ops() const;

  /// Every var access (read/write) in (thread, index) order — the
  /// iteration the race-candidate check walks.
  [[nodiscard]] std::vector<const ScriptOp*> accesses() const;

  /// Is `a` ordered before `b` (or vice versa) in EVERY schedule by a
  /// completed barrier cycle between their epochs? Requires the cycle
  /// separating them to be completable (<= min_arrivals).
  [[nodiscard]] bool barrier_ordered(const ScriptOp& a, const ScriptOp& b) const;
};

/// Build the model from untagged per-thread scripts (the same input
/// shape race::Explorer and race::replay_all_interleavings take; tags
/// are derived as "t<k>"). Throws cs31::Error on a malformed op — an
/// unknown verb or a missing operand — exactly like the replay
/// parser; discipline violations (unlock-without-lock, re-lock) are
/// recorded in the model for the checks, not thrown.
[[nodiscard]] ScriptModel build_script_model(
    const std::vector<std::vector<std::string>>& scripts);

/// Strongly-connected components of an edge list with >= 2 nodes, plus
/// single nodes with a self-edge — i.e. every node set that lies on a
/// cycle. Deterministic order (each component sorted by name,
/// components sorted by first name). Exposed for tests.
[[nodiscard]] std::vector<std::vector<std::string>> cycle_components(
    const std::vector<OrderEdge>& edges);

}  // namespace cs31::analyze
