#include "bits/ctypes.hpp"

#include <sstream>

#include "common/error.hpp"

namespace cs31::bits {

const std::vector<CTypeInfo>& all_ctypes() {
  static const std::vector<CTypeInfo> kTypes = {
      {CType::Char, "char", 1, true, true},
      {CType::UnsignedChar, "unsigned char", 1, true, false},
      {CType::Short, "short", 2, true, true},
      {CType::UnsignedShort, "unsigned short", 2, true, false},
      {CType::Int, "int", 4, true, true},
      {CType::UnsignedInt, "unsigned int", 4, true, false},
      {CType::Long, "long", 8, true, true},
      {CType::UnsignedLong, "unsigned long", 8, true, false},
      {CType::Float, "float", 4, false, true},
      {CType::Double, "double", 8, false, true},
      {CType::Pointer, "void*", 8, false, false},
  };
  return kTypes;
}

const CTypeInfo& ctype_info(CType t) {
  for (const CTypeInfo& info : all_ctypes()) {
    if (info.type == t) return info;
  }
  throw Error("unknown CType");
}

namespace {
const CTypeInfo& integer_info(CType t) {
  const CTypeInfo& info = ctype_info(t);
  require(info.is_integer, info.name + " is not an integer type");
  return info;
}
}  // namespace

std::int64_t ctype_min(CType t) {
  const CTypeInfo& info = integer_info(t);
  return info.is_signed ? min_signed(info.size_bytes * 8) : 0;
}

std::uint64_t ctype_max(CType t) {
  const CTypeInfo& info = integer_info(t);
  if (info.is_signed) {
    return static_cast<std::uint64_t>(max_signed(info.size_bytes * 8));
  }
  return max_unsigned(info.size_bytes * 8);
}

Word ctype_increment(CType t, const Word& value) {
  const CTypeInfo& info = integer_info(t);
  const int w = info.size_bytes * 8;
  require(value.width() == w, "value width does not match " + info.name);
  return Word(add(value, Word(1, w)).pattern, w);
}

std::string ctype_table() {
  std::ostringstream out;
  out << "type            bytes  kind\n";
  for (const CTypeInfo& info : all_ctypes()) {
    out << info.name;
    for (std::size_t i = info.name.size(); i < 16; ++i) out << ' ';
    out << info.size_bytes << "      "
        << (info.is_integer ? (info.is_signed ? "signed integer" : "unsigned integer")
                            : "non-integer")
        << '\n';
  }
  return out.str();
}

}  // namespace cs31::bits
