#include "bits/float32.hpp"

#include <bit>
#include <cmath>
#include <limits>

#include "bits/convert.hpp"
#include "common/error.hpp"

namespace cs31::bits {

namespace {
constexpr std::uint32_t kFracMask = (1u << 23) - 1;
constexpr std::uint32_t kExpMask = 0xFFu;
constexpr int kBias = 127;
}  // namespace

int Float32Fields::unbiased_exponent() const {
  if (cls == FloatClass::Denormal || cls == FloatClass::Zero) return 1 - kBias;
  return static_cast<int>(exponent) - kBias;
}

double Float32Fields::significand() const {
  const double frac = static_cast<double>(fraction) / static_cast<double>(1u << 23);
  return cls == FloatClass::Normal ? 1.0 + frac : frac;
}

Float32Fields decompose(std::uint32_t pattern) {
  Float32Fields f;
  f.sign = (pattern >> 31) & 1u;
  f.exponent = (pattern >> 23) & kExpMask;
  f.fraction = pattern & kFracMask;
  if (f.exponent == kExpMask) {
    f.cls = f.fraction == 0 ? FloatClass::Infinity : FloatClass::NaN;
  } else if (f.exponent == 0) {
    f.cls = f.fraction == 0 ? FloatClass::Zero : FloatClass::Denormal;
  } else {
    f.cls = FloatClass::Normal;
  }
  return f;
}

Float32Fields decompose(float value) {
  return decompose(std::bit_cast<std::uint32_t>(value));
}

std::uint32_t compose(bool sign, std::uint32_t exponent, std::uint32_t fraction) {
  require(exponent <= kExpMask, "exponent field wider than 8 bits");
  require(fraction <= kFracMask, "fraction field wider than 23 bits");
  return (static_cast<std::uint32_t>(sign) << 31) | (exponent << 23) | fraction;
}

double value_of(const Float32Fields& f) {
  const double s = f.sign ? -1.0 : 1.0;
  switch (f.cls) {
    case FloatClass::Zero:
      return s * 0.0;
    case FloatClass::Infinity:
      return s * std::numeric_limits<double>::infinity();
    case FloatClass::NaN:
      return std::numeric_limits<double>::quiet_NaN();
    case FloatClass::Denormal:
    case FloatClass::Normal:
      return s * f.significand() * std::exp2(static_cast<double>(f.unbiased_exponent()));
  }
  return 0.0;  // unreachable
}

std::string describe(const Float32Fields& f) {
  std::string cls;
  switch (f.cls) {
    case FloatClass::Zero: cls = "zero"; break;
    case FloatClass::Denormal: cls = "denormal"; break;
    case FloatClass::Normal: cls = "normal"; break;
    case FloatClass::Infinity: cls = "infinity"; break;
    case FloatClass::NaN: cls = "nan"; break;
  }
  return "sign=" + std::string(f.sign ? "1" : "0") +
         " exp=" + to_binary(f.exponent, 8) +
         " frac=" + to_binary(f.fraction, 23) + " (" + cls + ")";
}

}  // namespace cs31::bits
