// Fixed-width two's-complement integer arithmetic (CS 31 "Binary
// Representation" module, Lab 1, homework "Binary and arithmetic").
//
// Models values as raw bit patterns of a chosen width (1..64 bits) and
// exposes exactly the semantics the course teaches: unsigned and signed
// (two's complement) interpretation, addition/subtraction with carry-out
// and signed-overflow detection, negation, truncation, and sign/zero
// extension.
#pragma once

#include <cstdint>
#include <string>

namespace cs31::bits {

/// Condition flags produced by width-limited arithmetic, mirroring the
/// ALU status flags the course builds in Lab 3 (zero, sign, carry,
/// signed overflow).
struct Flags {
  bool zero = false;      ///< result bit pattern is all zeros
  bool sign = false;      ///< most-significant (sign) bit of the result
  bool carry = false;     ///< unsigned carry/borrow out of the top bit
  bool overflow = false;  ///< signed (two's complement) overflow

  friend bool operator==(const Flags&, const Flags&) = default;
};

/// Result of a width-limited operation: the truncated bit pattern plus
/// the flags describing what happened at that width.
struct ArithResult {
  std::uint64_t pattern = 0;  ///< low `width` bits of the result
  Flags flags;
};

/// A bit pattern with an explicit width. The same pattern can be read as
/// unsigned or as two's-complement signed, which is the central point of
/// the course's data-representation unit.
class Word {
 public:
  /// Construct from a raw pattern; bits above `width` must be zero.
  /// Throws cs31::Error if width is outside [1, 64] or pattern has bits
  /// set beyond the width.
  Word(std::uint64_t pattern, int width);

  /// Encode a signed value in two's complement at `width` bits.
  /// Throws cs31::Error when the value is not representable.
  static Word from_signed(std::int64_t value, int width);

  /// Encode an unsigned value. Throws cs31::Error when not representable.
  static Word from_unsigned(std::uint64_t value, int width);

  [[nodiscard]] std::uint64_t pattern() const { return pattern_; }
  [[nodiscard]] int width() const { return width_; }

  /// Read the pattern as an unsigned integer.
  [[nodiscard]] std::uint64_t as_unsigned() const { return pattern_; }

  /// Read the pattern as a two's-complement signed integer.
  [[nodiscard]] std::int64_t as_signed() const;

  /// Most-significant bit (the sign bit in the signed reading).
  [[nodiscard]] bool msb() const;

  /// Bit `i` (0 = least significant). Throws on out-of-range.
  [[nodiscard]] bool bit(int i) const;

  /// Two's-complement negation at this width (note: negating the minimum
  /// value yields itself with overflow, exactly as on hardware).
  [[nodiscard]] ArithResult negate() const;

  /// Truncate to a narrower width (C narrowing-cast semantics).
  [[nodiscard]] Word truncate(int new_width) const;

  /// Sign-extend to a wider width (signed C widening-cast semantics).
  [[nodiscard]] Word sign_extend(int new_width) const;

  /// Zero-extend to a wider width (unsigned C widening-cast semantics).
  [[nodiscard]] Word zero_extend(int new_width) const;

  friend bool operator==(const Word&, const Word&) = default;

 private:
  std::uint64_t pattern_;
  int width_;
};

/// Smallest signed value representable at `width` bits.
[[nodiscard]] std::int64_t min_signed(int width);
/// Largest signed value representable at `width` bits.
[[nodiscard]] std::int64_t max_signed(int width);
/// Largest unsigned value representable at `width` bits.
[[nodiscard]] std::uint64_t max_unsigned(int width);

/// Add two same-width words, reporting carry-out and signed overflow.
/// Throws cs31::Error when widths differ.
[[nodiscard]] ArithResult add(const Word& a, const Word& b);

/// Subtract b from a (a + ~b + 1, as the course's ALU implements it);
/// `carry` reports *no borrow* exactly like x86's CF inverted convention
/// is NOT used here — carry=true means a borrow occurred.
[[nodiscard]] ArithResult sub(const Word& a, const Word& b);

/// Mask with the low `width` bits set; the fundamental helper the course
/// uses when discussing truncation.
[[nodiscard]] std::uint64_t low_mask(int width);

}  // namespace cs31::bits
