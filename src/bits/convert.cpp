#include "bits/convert.hpp"

#include <cctype>

#include "common/error.hpp"

namespace cs31::bits {

std::string to_binary(std::uint64_t pattern, int width) {
  require(width >= 1 && width <= 64, "width must be in [1, 64]");
  std::string out(static_cast<std::size_t>(width), '0');
  for (int i = 0; i < width; ++i) {
    if ((pattern >> i) & 1u) out[static_cast<std::size_t>(width - 1 - i)] = '1';
  }
  return out;
}

std::string to_binary_grouped(std::uint64_t pattern, int width) {
  const std::string raw = to_binary(pattern, width);
  std::string out;
  // Group from the least-significant end so partial groups land on the left.
  const int lead = width % 4;
  for (int i = 0; i < width; ++i) {
    if (i != 0 && (i - lead) % 4 == 0) out.push_back(' ');
    out.push_back(raw[static_cast<std::size_t>(i)]);
  }
  return out;
}

std::string to_hex(std::uint64_t pattern, int width) {
  require(width >= 1 && width <= 64, "width must be in [1, 64]");
  const int nibbles = (width + 3) / 4;
  static const char digits[] = "0123456789abcdef";
  std::string out = "0x";
  for (int i = nibbles - 1; i >= 0; --i) {
    out.push_back(digits[(pattern >> (4 * i)) & 0xF]);
  }
  return out;
}

namespace {

std::string strip(const std::string& text, const char* prefix) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (!std::isspace(static_cast<unsigned char>(c))) out.push_back(c);
  }
  if (out.rfind(prefix, 0) == 0) out.erase(0, 2);
  return out;
}

}  // namespace

std::uint64_t parse_binary(const std::string& text) {
  const std::string s = strip(text, "0b");
  require(!s.empty(), "empty binary literal");
  require(s.size() <= 64, "binary literal longer than 64 bits");
  std::uint64_t v = 0;
  for (char c : s) {
    require(c == '0' || c == '1', std::string("bad binary digit '") + c + "'");
    v = (v << 1) | static_cast<std::uint64_t>(c - '0');
  }
  return v;
}

std::uint64_t parse_hex(const std::string& text) {
  const std::string s = strip(text, "0x");
  require(!s.empty(), "empty hex literal");
  require(s.size() <= 16, "hex literal longer than 64 bits");
  std::uint64_t v = 0;
  for (char c : s) {
    int d;
    if (c >= '0' && c <= '9') d = c - '0';
    else if (c >= 'a' && c <= 'f') d = 10 + (c - 'a');
    else if (c >= 'A' && c <= 'F') d = 10 + (c - 'A');
    else throw Error(std::string("bad hex digit '") + c + "'");
    v = (v << 4) | static_cast<std::uint64_t>(d);
  }
  return v;
}

Word parse_decimal(const std::string& text, int width) {
  require(!text.empty(), "empty decimal literal");
  std::size_t i = 0;
  bool neg = false;
  if (text[0] == '-') { neg = true; i = 1; }
  require(i < text.size(), "decimal literal with no digits");
  std::uint64_t mag = 0;
  for (; i < text.size(); ++i) {
    const char c = text[i];
    require(c >= '0' && c <= '9', std::string("bad decimal digit '") + c + "'");
    const std::uint64_t d = static_cast<std::uint64_t>(c - '0');
    require(mag <= (~std::uint64_t{0} - d) / 10, "decimal literal overflows 64 bits");
    mag = mag * 10 + d;
  }
  if (neg) {
    // Magnitude may be |min| = max_signed + 1, which has no positive signed
    // encoding, so build the two's-complement pattern directly.
    require(mag <= static_cast<std::uint64_t>(max_signed(width)) + 1,
            "negative value out of signed range at width " + std::to_string(width));
    return Word((~mag + 1) & low_mask(width), width);
  }
  return Word::from_unsigned(mag, width);
}

ConversionRow conversion_row(const Word& w) {
  return ConversionRow{
      .binary = to_binary_grouped(w.pattern(), w.width()),
      .hex = to_hex(w.pattern(), w.width()),
      .as_unsigned = w.as_unsigned(),
      .as_signed = w.as_signed(),
  };
}

}  // namespace cs31::bits
