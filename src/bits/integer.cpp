#include "bits/integer.hpp"

#include <limits>

#include "common/error.hpp"

namespace cs31::bits {

namespace {

void check_width(int width) {
  require(width >= 1 && width <= 64, "bit width must be in [1, 64], got " +
                                         std::to_string(width));
}

Flags flags_for(std::uint64_t pattern, int width, bool carry, bool overflow) {
  Flags f;
  f.zero = pattern == 0;
  f.sign = (pattern >> (width - 1)) & 1u;
  f.carry = carry;
  f.overflow = overflow;
  return f;
}

}  // namespace

std::uint64_t low_mask(int width) {
  check_width(width);
  return width == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << width) - 1;
}

Word::Word(std::uint64_t pattern, int width) : pattern_(pattern), width_(width) {
  check_width(width);
  require((pattern & ~low_mask(width)) == 0,
          "pattern has bits set beyond width " + std::to_string(width));
}

Word Word::from_signed(std::int64_t value, int width) {
  check_width(width);
  require(value >= min_signed(width) && value <= max_signed(width),
          std::to_string(value) + " not representable as signed " +
              std::to_string(width) + "-bit");
  return Word(static_cast<std::uint64_t>(value) & low_mask(width), width);
}

Word Word::from_unsigned(std::uint64_t value, int width) {
  check_width(width);
  require(value <= max_unsigned(width),
          std::to_string(value) + " not representable as unsigned " +
              std::to_string(width) + "-bit");
  return Word(value, width);
}

std::int64_t Word::as_signed() const {
  if (!msb()) return static_cast<std::int64_t>(pattern_);
  // Set all bits above the width: the two's-complement negative reading.
  return static_cast<std::int64_t>(pattern_ | ~low_mask(width_));
}

bool Word::msb() const { return (pattern_ >> (width_ - 1)) & 1u; }

bool Word::bit(int i) const {
  require(i >= 0 && i < width_, "bit index " + std::to_string(i) +
                                    " out of range for width " +
                                    std::to_string(width_));
  return (pattern_ >> i) & 1u;
}

ArithResult Word::negate() const {
  Word zero(0, width_);
  return sub(zero, *this);
}

Word Word::truncate(int new_width) const {
  check_width(new_width);
  require(new_width <= width_, "truncate cannot widen");
  return Word(pattern_ & low_mask(new_width), new_width);
}

Word Word::sign_extend(int new_width) const {
  check_width(new_width);
  require(new_width >= width_, "sign_extend cannot narrow");
  std::uint64_t p = pattern_;
  if (msb()) p |= low_mask(new_width) & ~low_mask(width_);
  return Word(p, new_width);
}

Word Word::zero_extend(int new_width) const {
  check_width(new_width);
  require(new_width >= width_, "zero_extend cannot narrow");
  return Word(pattern_, new_width);
}

std::int64_t min_signed(int width) {
  check_width(width);
  return width == 64 ? std::numeric_limits<std::int64_t>::min()
                     : -(std::int64_t{1} << (width - 1));
}

std::int64_t max_signed(int width) {
  check_width(width);
  return width == 64 ? std::numeric_limits<std::int64_t>::max()
                     : (std::int64_t{1} << (width - 1)) - 1;
}

std::uint64_t max_unsigned(int width) { return low_mask(width); }

ArithResult add(const Word& a, const Word& b) {
  require(a.width() == b.width(), "add requires equal widths");
  const int w = a.width();
  const std::uint64_t mask = low_mask(w);
  const std::uint64_t full = a.pattern() + b.pattern();  // cannot wrap: w<=64
  // For width 64 the sum can wrap the host integer; detect carry directly.
  bool carry;
  std::uint64_t pattern;
  if (w == 64) {
    pattern = full;
    carry = full < a.pattern();  // wrapped iff sum smaller than an operand
  } else {
    pattern = full & mask;
    carry = (full >> w) & 1u;
  }
  // Signed overflow: operands share a sign and the result's sign differs.
  const bool sa = a.msb(), sb = b.msb();
  const bool sr = (pattern >> (w - 1)) & 1u;
  const bool overflow = (sa == sb) && (sr != sa);
  return {pattern, flags_for(pattern, w, carry, overflow)};
}

ArithResult sub(const Word& a, const Word& b) {
  require(a.width() == b.width(), "sub requires equal widths");
  const int w = a.width();
  // a - b == a + ~b + 1 at width w, the way the Lab 3 ALU computes it.
  const Word nb(~b.pattern() & low_mask(w), w);
  ArithResult r = add(a, nb);
  // Fold in the +1; combine carries from the two additions.
  const Word one(1, w);
  ArithResult r2 = add(Word(r.pattern, w), one);
  const bool carry_out = r.flags.carry || r2.flags.carry;
  // Borrow occurred iff there was NO carry out of the two's-complement add.
  const bool borrow = !carry_out;
  // Signed overflow for subtraction: signs differ and result sign != a's.
  const bool overflow = (a.msb() != b.msb()) && (((r2.pattern >> (w - 1)) & 1u) != a.msb());
  return {r2.pattern, flags_for(r2.pattern, w, borrow, overflow)};
}

}  // namespace cs31::bits
