// Number-base conversion utilities (CS 31 Lab 1 and the "Binary and
// arithmetic" homework): decimal <-> binary <-> hexadecimal, with the
// digit-grouping conventions used in the course materials.
#pragma once

#include <cstdint>
#include <string>

#include "bits/integer.hpp"

namespace cs31::bits {

/// Render the low `width` bits of a pattern as a binary string, most
/// significant bit first, e.g. (0b1010, 4) -> "1010".
[[nodiscard]] std::string to_binary(std::uint64_t pattern, int width);

/// Render as binary with a space every 4 bits (course notation),
/// e.g. (0xAB, 8) -> "1010 1011".
[[nodiscard]] std::string to_binary_grouped(std::uint64_t pattern, int width);

/// Render the low `width` bits as lowercase hex with a "0x" prefix.
/// Width is rounded up to a whole number of nibbles for display.
[[nodiscard]] std::string to_hex(std::uint64_t pattern, int width);

/// Parse a binary string ("1010", optionally with spaces or a "0b"
/// prefix). Throws cs31::Error on malformed input or > 64 digits.
[[nodiscard]] std::uint64_t parse_binary(const std::string& text);

/// Parse a hex string ("0xdeadBEEF" or "deadbeef", spaces allowed).
/// Throws cs31::Error on malformed input or overflow past 64 bits.
[[nodiscard]] std::uint64_t parse_hex(const std::string& text);

/// Parse a decimal string with optional leading '-'; returns the
/// two's-complement encoding at `width` bits. Throws when the value does
/// not fit (signed range for negative inputs, unsigned range otherwise).
[[nodiscard]] Word parse_decimal(const std::string& text, int width);

/// One row of the course's conversion-practice table: the same pattern
/// shown in every base and both signednesses.
struct ConversionRow {
  std::string binary;
  std::string hex;
  std::uint64_t as_unsigned = 0;
  std::int64_t as_signed = 0;
};

/// Produce the full conversion row for a word, as students fill in on
/// Homework 2.
[[nodiscard]] ConversionRow conversion_row(const Word& w);

}  // namespace cs31::bits
