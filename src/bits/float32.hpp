// IEEE-754 single-precision decomposition (CS 31 "briefly discuss
// floating point representation"): split a 32-bit pattern into sign /
// exponent / fraction fields, classify it, and reconstruct the value.
#pragma once

#include <cstdint>
#include <string>

namespace cs31::bits {

/// What kind of IEEE-754 number a pattern encodes.
enum class FloatClass { Zero, Denormal, Normal, Infinity, NaN };

/// The three fields of a single-precision float, plus derived views.
struct Float32Fields {
  bool sign = false;           ///< true for negative
  std::uint32_t exponent = 0;  ///< raw 8-bit biased exponent
  std::uint32_t fraction = 0;  ///< raw 23-bit fraction field
  FloatClass cls = FloatClass::Zero;

  /// Unbiased exponent (exponent - 127 for normals, -126 for denormals);
  /// meaningless for Infinity/NaN.
  [[nodiscard]] int unbiased_exponent() const;

  /// Significand including the implicit leading bit for normals
  /// (value in [1,2) for normals, [0,1) for denormals).
  [[nodiscard]] double significand() const;
};

/// Decompose a raw 32-bit pattern.
[[nodiscard]] Float32Fields decompose(std::uint32_t pattern);

/// Decompose a float value (bit-identical round trip).
[[nodiscard]] Float32Fields decompose(float value);

/// Reassemble a pattern from fields (raw field values, no checking
/// beyond field-width limits; throws cs31::Error when a field overflows
/// its width).
[[nodiscard]] std::uint32_t compose(bool sign, std::uint32_t exponent,
                                    std::uint32_t fraction);

/// Numeric value of a pattern, computed from the fields by the textbook
/// formula rather than by bit-casting (so tests can cross-check both).
[[nodiscard]] double value_of(const Float32Fields& f);

/// Course-notation rendering, e.g. "sign=1 exp=10000001 frac=0100...".
[[nodiscard]] std::string describe(const Float32Fields& f);

}  // namespace cs31::bits
