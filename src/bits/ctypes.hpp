// Model of C integer types as CS 31 teaches them ("the typical number of
// bytes in different C types"): per-type size, signedness, and value
// range, plus the overflow demonstrations from Lab 1 ("the maximum value
// that can be stored in an int variable").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bits/integer.hpp"

namespace cs31::bits {

/// The C types the course discusses, on a typical 64-bit Linux machine
/// (the department lab machines).
enum class CType {
  Char, UnsignedChar, Short, UnsignedShort, Int, UnsignedInt,
  Long, UnsignedLong, Float, Double, Pointer,
};

/// Static properties of one C type.
struct CTypeInfo {
  CType type;
  std::string name;    ///< C spelling, e.g. "unsigned short"
  int size_bytes;      ///< sizeof on the course's lab machines
  bool is_integer;     ///< float/double/pointer are not
  bool is_signed;      ///< meaningful only for integer types
};

/// Properties for one type. Covers every CType enumerator.
[[nodiscard]] const CTypeInfo& ctype_info(CType t);

/// All types in course-presentation order.
[[nodiscard]] const std::vector<CTypeInfo>& all_ctypes();

/// Value range of an integer C type. Throws for non-integer types.
[[nodiscard]] std::int64_t ctype_min(CType t);
[[nodiscard]] std::uint64_t ctype_max(CType t);

/// Lab 1's experiment: what pattern does `value + 1` produce when stored
/// in type `t`? Demonstrates wraparound at the type's width.
/// Throws for non-integer types.
[[nodiscard]] Word ctype_increment(CType t, const Word& value);

/// Render the "sizes of C types" table from the course notes.
[[nodiscard]] std::string ctype_table();

}  // namespace cs31::bits
