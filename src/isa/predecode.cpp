// Handler specialization and block predecoding for the fast core.
//
// Every handler below mirrors one case of the switch interpreter in
// machine.cpp *exactly* — same evaluation order (destination before
// source for arithmetic, source before destination for shifts), same
// flag recipes, same fault messages, same state left behind when a
// fault throws mid-instruction. The operand-kind dispatch the
// interpreter does per step (read_operand / write_operand switches)
// happens here once, at predecode time, by instantiating exec_op over
// (mnemonic, dst kind, src kind) and selecting the instantiation that
// matches the decoded instruction. The differential fuzz harness
// (tests/isa_diff_fuzz_test.cpp) and the golden traces are the proof
// that the mirror is faithful; any drift fails those tier-1 tests.
#include "isa/predecode.hpp"

#include <algorithm>
#include <string>

#include "common/error.hpp"

namespace cs31::isa::predecode {

namespace {

enum class K : std::uint8_t { None = 0, Imm = 1, Reg = 2, Mem = 3 };

// ---------------------------------------------------------------------------
// Memory access — the switch interpreter's load32/store32 with the same
// bounds checks and messages, plus the code-range check that keeps the
// block cache honest under self-modifying stores.
// ---------------------------------------------------------------------------

inline std::uint32_t ea(const ExecState& st, const MemSpec& m) {
  std::uint32_t addr = static_cast<std::uint32_t>(m.disp);
  if (m.has_base) addr += st.regs[m.base];
  if (m.has_index) addr += st.regs[m.index] << m.scale_shift;
  return addr;
}

inline std::uint32_t fast_load32(const ExecState& st, std::uint32_t addr) {
  if (!(addr + 4 <= st.mem_size && addr + 4 > addr)) {
    throw Error("segmentation violation: read of 4 bytes at 0x" + std::to_string(addr));
  }
  // Byte assembly, not memcpy: identical to the interpreter on any
  // endianness; compilers fold this into one load on little-endian.
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(st.mem[addr + i]) << (8 * i);
  return v;
}

inline void fast_store32(ExecState& st, std::uint32_t addr, std::uint32_t value) {
  if (!(addr + 4 <= st.mem_size && addr + 4 > addr)) {
    throw Error("segmentation violation: write of 4 bytes at 0x" + std::to_string(addr));
  }
  for (int i = 0; i < 4; ++i) st.mem[addr + i] = static_cast<std::uint8_t>(value >> (8 * i));
  if (addr < st.code_end && addr + 4 > st.code_base) {
    // The store touched loaded code: finish this instruction, then the
    // runner flushes the cache and re-decodes from fresh bytes — the
    // switch interpreter's per-step decode, recovered on demand.
    st.code_dirty = true;
    st.stop = true;
  }
}

inline void fast_push(ExecState& st, std::uint32_t value) {
  const std::uint32_t esp = st.regs[static_cast<std::size_t>(Reg::Esp)] - 4;
  fast_store32(st, esp, value);  // faults leave ESP unchanged, like Machine::push
  st.regs[static_cast<std::size_t>(Reg::Esp)] = esp;
}

inline std::uint32_t fast_pop(ExecState& st) {
  const std::uint32_t esp = st.regs[static_cast<std::size_t>(Reg::Esp)];
  const std::uint32_t v = fast_load32(st, esp);
  st.regs[static_cast<std::size_t>(Reg::Esp)] = esp + 4;
  return v;
}

// ---------------------------------------------------------------------------
// Flag recipes — byte-for-byte the private helpers in machine.cpp.
// ---------------------------------------------------------------------------

inline void set_logic_flags(Eflags& f, std::uint32_t result) {
  f.cf = false;
  f.of = false;
  f.zf = result == 0;
  f.sf = (result >> 31) & 1u;
}

inline void set_add_flags(Eflags& f, std::uint32_t a, std::uint32_t b, std::uint64_t wide) {
  const std::uint32_t r = static_cast<std::uint32_t>(wide);
  f.cf = (wide >> 32) != 0;
  f.zf = r == 0;
  f.sf = (r >> 31) & 1u;
  const bool sa = (a >> 31) & 1u, sb = (b >> 31) & 1u, sr = (r >> 31) & 1u;
  f.of = (sa == sb) && (sr != sa);
}

inline void set_sub_flags(Eflags& f, std::uint32_t a, std::uint32_t b) {
  const std::uint32_t r = a - b;
  f.cf = a < b;  // borrow
  f.zf = r == 0;
  f.sf = (r >> 31) & 1u;
  const bool sa = (a >> 31) & 1u, sb = (b >> 31) & 1u, sr = (r >> 31) & 1u;
  f.of = (sa != sb) && (sr != sa);
}

// ---------------------------------------------------------------------------
// Kind-specialized operand accessors. The None/Imm error paths throw at
// execution time with the interpreter's read_operand/write_operand
// messages — predecoding must not reject shapes early, or the two cores
// would fault at different instructions.
// ---------------------------------------------------------------------------

template <K SK>
inline std::uint32_t read_src(ExecState& st, const DecodedOp& op) {
  if constexpr (SK == K::Imm) {
    return op.src_imm;
  } else if constexpr (SK == K::Reg) {
    return st.regs[op.src_reg];
  } else if constexpr (SK == K::Mem) {
    return fast_load32(st, ea(st, op.src_mem));
  } else {
    throw Error("instruction read a missing operand");
  }
}

template <K DK>
inline std::uint32_t read_dst(ExecState& st, const DecodedOp& op) {
  if constexpr (DK == K::Imm) {
    return op.dst_imm;  // read_operand returns the immediate; the write faults later
  } else if constexpr (DK == K::Reg) {
    return st.regs[op.dst_reg];
  } else if constexpr (DK == K::Mem) {
    return fast_load32(st, ea(st, op.dst_mem));
  } else {
    throw Error("instruction read a missing operand");
  }
}

template <K DK>
inline void write_dst(ExecState& st, const DecodedOp& op, std::uint32_t value) {
  if constexpr (DK == K::Reg) {
    st.regs[op.dst_reg] = value;
  } else if constexpr (DK == K::Mem) {
    fast_store32(st, ea(st, op.dst_mem), value);
  } else if constexpr (DK == K::Imm) {
    throw Error("destination operand cannot be an immediate");
  } else {
    throw Error("instruction wrote a missing operand");
  }
}

// ---------------------------------------------------------------------------
// The handlers. Straight-line handlers leave st.eip alone (the runner
// maintains it); control handlers set st.eip and st.control and always
// st.stop. jump() mirrors the `next = ins.target` pattern.
// ---------------------------------------------------------------------------

inline void jump(ExecState& st, const DecodedOp& op, bool taken) {
  st.eip = taken ? op.target : op.addr + kInstrBytes;
  st.control = true;
  st.stop = true;
}

template <Mnemonic M, K DK, K SK>
void exec_op(ExecState& st, const DecodedOp& op) {
  Eflags& f = *st.flags;
  if constexpr (M == Mnemonic::Mov) {
    write_dst<DK>(st, op, read_src<SK>(st, op));
  } else if constexpr (M == Mnemonic::Lea) {
    if constexpr (SK != K::Mem) {
      throw Error("lea source must be a memory operand");
    } else {
      write_dst<DK>(st, op, ea(st, op.src_mem));
    }
  } else if constexpr (M == Mnemonic::Add) {
    const std::uint32_t a = read_dst<DK>(st, op), b = read_src<SK>(st, op);
    const std::uint64_t wide = static_cast<std::uint64_t>(a) + b;
    set_add_flags(f, a, b, wide);
    write_dst<DK>(st, op, static_cast<std::uint32_t>(wide));
  } else if constexpr (M == Mnemonic::Sub) {
    const std::uint32_t a = read_dst<DK>(st, op), b = read_src<SK>(st, op);
    set_sub_flags(f, a, b);
    write_dst<DK>(st, op, a - b);
  } else if constexpr (M == Mnemonic::Imul) {
    const std::int64_t a = static_cast<std::int32_t>(read_dst<DK>(st, op));
    const std::int64_t b = static_cast<std::int32_t>(read_src<SK>(st, op));
    const std::int64_t wide = a * b;
    const std::uint32_t r = static_cast<std::uint32_t>(wide);
    f.cf = f.of = wide != static_cast<std::int32_t>(r);
    f.zf = r == 0;
    f.sf = (r >> 31) & 1u;
    write_dst<DK>(st, op, r);
  } else if constexpr (M == Mnemonic::And) {
    const std::uint32_t r = read_dst<DK>(st, op) & read_src<SK>(st, op);
    set_logic_flags(f, r);
    write_dst<DK>(st, op, r);
  } else if constexpr (M == Mnemonic::Or) {
    const std::uint32_t r = read_dst<DK>(st, op) | read_src<SK>(st, op);
    set_logic_flags(f, r);
    write_dst<DK>(st, op, r);
  } else if constexpr (M == Mnemonic::Xor) {
    const std::uint32_t r = read_dst<DK>(st, op) ^ read_src<SK>(st, op);
    set_logic_flags(f, r);
    write_dst<DK>(st, op, r);
  } else if constexpr (M == Mnemonic::Shl) {
    const std::uint32_t count = read_src<SK>(st, op) & 31u;
    std::uint32_t v = read_dst<DK>(st, op);
    if (count != 0) {
      f.cf = (v >> (32 - count)) & 1u;
      v <<= count;
      f.zf = v == 0;
      f.sf = (v >> 31) & 1u;
    }
    write_dst<DK>(st, op, v);
  } else if constexpr (M == Mnemonic::Shr) {
    const std::uint32_t count = read_src<SK>(st, op) & 31u;
    std::uint32_t v = read_dst<DK>(st, op);
    if (count != 0) {
      f.cf = (v >> (count - 1)) & 1u;
      v >>= count;
      f.zf = v == 0;
      f.sf = false;
    }
    write_dst<DK>(st, op, v);
  } else if constexpr (M == Mnemonic::Sar) {
    const std::uint32_t count = read_src<SK>(st, op) & 31u;
    std::int32_t v = static_cast<std::int32_t>(read_dst<DK>(st, op));
    if (count != 0) {
      f.cf = (static_cast<std::uint32_t>(v) >> (count - 1)) & 1u;
      v >>= count;
      f.zf = v == 0;
      f.sf = v < 0;
    }
    write_dst<DK>(st, op, static_cast<std::uint32_t>(v));
  } else if constexpr (M == Mnemonic::Cmp) {
    const std::uint32_t a = read_dst<DK>(st, op), b = read_src<SK>(st, op);
    set_sub_flags(f, a, b);
  } else if constexpr (M == Mnemonic::Test) {
    const std::uint32_t a = read_dst<DK>(st, op), b = read_src<SK>(st, op);
    set_logic_flags(f, a & b);
  } else if constexpr (M == Mnemonic::Not) {
    // x86 NOT does not touch the flags.
    write_dst<DK>(st, op, ~read_dst<DK>(st, op));
  } else if constexpr (M == Mnemonic::Neg) {
    const std::uint32_t a = read_dst<DK>(st, op);
    set_sub_flags(f, 0, a);
    write_dst<DK>(st, op, 0u - a);
  } else if constexpr (M == Mnemonic::Inc) {
    const std::uint32_t a = read_dst<DK>(st, op);
    const bool cf = f.cf;  // INC preserves CF
    const std::uint64_t wide = static_cast<std::uint64_t>(a) + 1;
    set_add_flags(f, a, 1, wide);
    f.cf = cf;
    write_dst<DK>(st, op, static_cast<std::uint32_t>(wide));
  } else if constexpr (M == Mnemonic::Dec) {
    const std::uint32_t a = read_dst<DK>(st, op);
    const bool cf = f.cf;  // DEC preserves CF
    set_sub_flags(f, a, 1);
    f.cf = cf;
    write_dst<DK>(st, op, a - 1);
  } else if constexpr (M == Mnemonic::Push) {
    fast_push(st, read_dst<DK>(st, op));
  } else if constexpr (M == Mnemonic::Pop) {
    write_dst<DK>(st, op, fast_pop(st));
  } else {
    static_assert(M == Mnemonic::Mov, "mnemonic needs a dedicated handler");
  }
}

void exec_call(ExecState& st, const DecodedOp& op) {
  fast_push(st, op.addr + kInstrBytes);
  ++st.call_depth;
  st.eip = op.target;
  st.control = true;
  st.stop = true;
}

void exec_ret(ExecState& st, const DecodedOp& op) {
  (void)op;
  if (st.call_depth == 0) {
    // Returning from the outermost frame halts, eip stays on the ret.
    st.halted = true;
    st.control = true;
    st.stop = true;
    return;
  }
  --st.call_depth;
  st.eip = fast_pop(st);
  st.control = true;
  st.stop = true;
}

void exec_leave(ExecState& st, const DecodedOp& op) {
  (void)op;
  st.regs[static_cast<std::size_t>(Reg::Esp)] = st.regs[static_cast<std::size_t>(Reg::Ebp)];
  st.regs[static_cast<std::size_t>(Reg::Ebp)] = fast_pop(st);
}

void exec_nop(ExecState& st, const DecodedOp& op) {
  (void)st;
  (void)op;
}

void exec_hlt(ExecState& st, const DecodedOp& op) {
  (void)op;
  st.halted = true;
  st.control = true;  // eip stays on the hlt, as the interpreter leaves it
  st.stop = true;
}

void exec_jmp(ExecState& st, const DecodedOp& op) { jump(st, op, true); }
void exec_je(ExecState& st, const DecodedOp& op) { jump(st, op, st.flags->zf); }
void exec_jne(ExecState& st, const DecodedOp& op) { jump(st, op, !st.flags->zf); }
void exec_jg(ExecState& st, const DecodedOp& op) {
  jump(st, op, !st.flags->zf && st.flags->sf == st.flags->of);
}
void exec_jge(ExecState& st, const DecodedOp& op) { jump(st, op, st.flags->sf == st.flags->of); }
void exec_jl(ExecState& st, const DecodedOp& op) { jump(st, op, st.flags->sf != st.flags->of); }
void exec_jle(ExecState& st, const DecodedOp& op) {
  jump(st, op, st.flags->zf || st.flags->sf != st.flags->of);
}
void exec_ja(ExecState& st, const DecodedOp& op) { jump(st, op, !st.flags->cf && !st.flags->zf); }
void exec_jae(ExecState& st, const DecodedOp& op) { jump(st, op, !st.flags->cf); }
void exec_jb(ExecState& st, const DecodedOp& op) { jump(st, op, st.flags->cf); }
void exec_jbe(ExecState& st, const DecodedOp& op) { jump(st, op, st.flags->cf || st.flags->zf); }
void exec_js(ExecState& st, const DecodedOp& op) { jump(st, op, st.flags->sf); }
void exec_jns(ExecState& st, const DecodedOp& op) { jump(st, op, !st.flags->sf); }

// ---------------------------------------------------------------------------
// Handler selection: collapse the decoded operand kinds into template
// arguments. Two nested runtime switches here, zero at execution time.
// ---------------------------------------------------------------------------

template <Mnemonic M, K DK>
ExecFn pick_src(Operand::Kind sk) {
  switch (sk) {
    case Operand::Kind::None: return &exec_op<M, DK, K::None>;
    case Operand::Kind::Imm: return &exec_op<M, DK, K::Imm>;
    case Operand::Kind::Reg: return &exec_op<M, DK, K::Reg>;
    case Operand::Kind::Mem: return &exec_op<M, DK, K::Mem>;
  }
  throw Error("bad operand kind");
}

template <Mnemonic M>
ExecFn pick(Operand::Kind dk, Operand::Kind sk) {
  switch (dk) {
    case Operand::Kind::None: return pick_src<M, K::None>(sk);
    case Operand::Kind::Imm: return pick_src<M, K::Imm>(sk);
    case Operand::Kind::Reg: return pick_src<M, K::Reg>(sk);
    case Operand::Kind::Mem: return pick_src<M, K::Mem>(sk);
  }
  throw Error("bad operand kind");
}

ExecFn select_handler(const Instruction& ins) {
  const Operand::Kind dk = ins.dst.kind;
  const Operand::Kind sk = ins.src.kind;
  switch (ins.op) {
    case Mnemonic::Mov: return pick<Mnemonic::Mov>(dk, sk);
    case Mnemonic::Lea: return pick<Mnemonic::Lea>(dk, sk);
    case Mnemonic::Add: return pick<Mnemonic::Add>(dk, sk);
    case Mnemonic::Sub: return pick<Mnemonic::Sub>(dk, sk);
    case Mnemonic::Imul: return pick<Mnemonic::Imul>(dk, sk);
    case Mnemonic::And: return pick<Mnemonic::And>(dk, sk);
    case Mnemonic::Or: return pick<Mnemonic::Or>(dk, sk);
    case Mnemonic::Xor: return pick<Mnemonic::Xor>(dk, sk);
    case Mnemonic::Shl: return pick<Mnemonic::Shl>(dk, sk);
    case Mnemonic::Shr: return pick<Mnemonic::Shr>(dk, sk);
    case Mnemonic::Sar: return pick<Mnemonic::Sar>(dk, sk);
    case Mnemonic::Cmp: return pick<Mnemonic::Cmp>(dk, sk);
    case Mnemonic::Test: return pick<Mnemonic::Test>(dk, sk);
    // Unary stack/ALU ops only touch the destination operand; the
    // source kind never matters, so one instantiation per dst kind.
    case Mnemonic::Not: return pick<Mnemonic::Not>(dk, Operand::Kind::None);
    case Mnemonic::Neg: return pick<Mnemonic::Neg>(dk, Operand::Kind::None);
    case Mnemonic::Inc: return pick<Mnemonic::Inc>(dk, Operand::Kind::None);
    case Mnemonic::Dec: return pick<Mnemonic::Dec>(dk, Operand::Kind::None);
    case Mnemonic::Push: return pick<Mnemonic::Push>(dk, Operand::Kind::None);
    case Mnemonic::Pop: return pick<Mnemonic::Pop>(dk, Operand::Kind::None);
    case Mnemonic::Call: return &exec_call;
    case Mnemonic::Ret: return &exec_ret;
    case Mnemonic::Leave: return &exec_leave;
    case Mnemonic::Jmp: return &exec_jmp;
    case Mnemonic::Je: return &exec_je;
    case Mnemonic::Jne: return &exec_jne;
    case Mnemonic::Jg: return &exec_jg;
    case Mnemonic::Jge: return &exec_jge;
    case Mnemonic::Jl: return &exec_jl;
    case Mnemonic::Jle: return &exec_jle;
    case Mnemonic::Ja: return &exec_ja;
    case Mnemonic::Jae: return &exec_jae;
    case Mnemonic::Jb: return &exec_jb;
    case Mnemonic::Jbe: return &exec_jbe;
    case Mnemonic::Js: return &exec_js;
    case Mnemonic::Jns: return &exec_jns;
    case Mnemonic::Nop: return &exec_nop;
    case Mnemonic::Hlt: return &exec_hlt;
  }
  throw Error("bad opcode " + std::to_string(static_cast<int>(ins.op)));
}

MemSpec resolve_mem(const MemRef& m) {
  MemSpec spec;
  spec.disp = m.disp;
  if (m.base) {
    spec.has_base = true;
    spec.base = static_cast<std::uint8_t>(*m.base);
  }
  if (m.index) {
    spec.has_index = true;
    spec.index = static_cast<std::uint8_t>(*m.index);
  }
  switch (m.scale) {
    case 1: spec.scale_shift = 0; break;
    case 2: spec.scale_shift = 1; break;
    case 4: spec.scale_shift = 2; break;
    case 8: spec.scale_shift = 3; break;
    default: spec.scale_shift = 0; break;  // decode never produces others
  }
  return spec;
}

bool is_control(Mnemonic m) {
  return (m >= Mnemonic::Jmp && m <= Mnemonic::Jns) || m == Mnemonic::Call ||
         m == Mnemonic::Ret || m == Mnemonic::Hlt;
}

}  // namespace

DecodedOp predecode_one(const Instruction& ins, std::uint32_t addr) {
  DecodedOp op;
  op.fn = select_handler(ins);
  op.addr = addr;
  op.target = ins.target;
  op.src_imm = static_cast<std::uint32_t>(ins.src.imm);
  op.dst_imm = static_cast<std::uint32_t>(ins.dst.imm);
  op.src_reg = static_cast<std::uint8_t>(ins.src.reg);
  op.dst_reg = static_cast<std::uint8_t>(ins.dst.reg);
  if (ins.src.kind == Operand::Kind::Mem) op.src_mem = resolve_mem(ins.src.mem);
  if (ins.dst.kind == Operand::Kind::Mem) op.dst_mem = resolve_mem(ins.dst.mem);
  return op;
}

void BlockCache::reset(std::uint32_t image_base, std::uint32_t image_size) {
  base_ = image_base;
  size_ = image_size;
  slot_.assign(image_size / kInstrBytes, -1);
  blocks_.clear();
  stats_ = CacheStats{};
}

void BlockCache::invalidate() {
  std::fill(slot_.begin(), slot_.end(), -1);
  blocks_.clear();
  ++stats_.invalidations;
  stats_.blocks = 0;
}

const PredecodedBlock& BlockCache::obtain(std::uint32_t eip, const std::uint8_t* mem) {
  // The switch interpreter's per-step fetch checks (including the
  // decimal rendering after "0x", which its message has always had).
  // This is the fast core's hottest edge — every block transition lands
  // here — so the failure message is only built when it will be thrown.
  if (eip < base_ || eip + kInstrBytes > base_ + size_) {
    throw Error("EIP 0x" + std::to_string(eip) + " outside the loaded program");
  }
  if ((eip - base_) % kInstrBytes != 0) throw Error("EIP misaligned");
  ++stats_.lookups;
  const std::size_t slot = (eip - base_) / kInstrBytes;
  if (slot_[slot] >= 0) {
    const PredecodedBlock& hit = blocks_[static_cast<std::size_t>(slot_[slot])];
    if (hit.ops.empty()) {
      // Cached decode fault at the block's first instruction: re-run
      // decode so the throw carries the interpreter's exact error.
      (void)decode(mem + eip);
      throw Error("cached decode fault vanished");  // memory changed only via invalidation
    }
    return hit;
  }

  PredecodedBlock block;
  block.start = eip;
  std::uint32_t addr = eip;
  while (addr >= base_ && addr + kInstrBytes <= base_ + size_) {
    Instruction ins;
    try {
      ins = decode(mem + addr);
    } catch (const Error&) {
      // Stop *before* the undecodable instruction: earlier ops in the
      // block must execute before the fault, exactly as the switch
      // interpreter would reach it step by step.
      block.decode_fault = true;
      break;
    }
    block.ops.push_back(predecode_one(ins, addr));
    if (is_control(ins.op)) {
      block.ends_in_control = true;
      break;
    }
    addr += kInstrBytes;
  }

  if (block.ops.empty()) {
    // First instruction of the block does not decode. Cache the empty
    // block (so repeated entry stays O(1)) but throw now.
    slot_[slot] = static_cast<std::int32_t>(blocks_.size());
    blocks_.push_back(std::move(block));
    ++stats_.predecodes;
    stats_.blocks = blocks_.size();
    (void)decode(mem + eip);  // throws the genuine decode error
    throw Error("decode fault vanished");
  }

  slot_[slot] = static_cast<std::int32_t>(blocks_.size());
  blocks_.push_back(std::move(block));
  ++stats_.predecodes;
  stats_.blocks = blocks_.size();
  return blocks_.back();
}

}  // namespace cs31::isa::predecode
