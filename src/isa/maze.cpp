#include "isa/maze.hpp"

#include <sstream>

#include "common/error.hpp"

namespace cs31::isa {

namespace {

/// Deterministic secret stream (numerical-recipes LCG).
class Lcg {
 public:
  explicit Lcg(std::uint32_t seed) : state_(seed) {}
  std::uint32_t next() {
    state_ = state_ * 1664525u + 1013904223u;
    return state_;
  }

 private:
  std::uint32_t state_;
};

}  // namespace

Maze::Maze(unsigned floors, std::uint32_t seed) {
  require(floors >= 1 && floors <= 16, "maze supports 1..16 floors");
  Lcg lcg(seed);
  std::ostringstream src;

  for (unsigned k = 0; k < floors; ++k) {
    const unsigned archetype = k % 5;
    std::uint32_t secret = lcg.next() & 0xFFFFu;
    const std::uint32_t mask = (lcg.next() & 0xFFFFu) | 0x10000u;
    if (archetype == 3) secret = 3 + secret % 38;  // loop floor: small count
    secrets_.push_back(secret);

    src << "floor_" << k << ":\n";
    switch (archetype) {
      case 0:  // direct compare
        src << "    cmpl $" << secret << ", %eax\n"
            << "    jne maze_explode\n"
            << "    jmp maze_pass\n";
        break;
      case 1:  // arithmetic chain: 3*x + 7
        src << "    movl %eax, %ebx\n"
            << "    addl %eax, %ebx\n"
            << "    addl %eax, %ebx\n"
            << "    addl $7, %ebx\n"
            << "    cmpl $" << (3 * secret + 7) << ", %ebx\n"
            << "    jne maze_explode\n"
            << "    jmp maze_pass\n";
        break;
      case 2:  // XOR mask
        src << "    xorl $" << mask << ", %eax\n"
            << "    cmpl $" << (secret ^ mask) << ", %eax\n"
            << "    jne maze_explode\n"
            << "    jmp maze_pass\n";
        break;
      case 3: {  // counting loop: sum 1..x must hit the triangular target
        const std::uint32_t target = secret * (secret + 1) / 2;
        src << "    cmpl $64, %eax\n"
            << "    ja maze_explode\n"
            << "    movl $0, %ebx\n"
            << "    movl $0, %ecx\n"
            << "floor_" << k << "_loop:\n"
            << "    cmpl %eax, %ecx\n"
            << "    je floor_" << k << "_done\n"
            << "    incl %ecx\n"
            << "    addl %ecx, %ebx\n"
            << "    jmp floor_" << k << "_loop\n"
            << "floor_" << k << "_done:\n"
            << "    cmpl $" << target << ", %ebx\n"
            << "    jne maze_explode\n"
            << "    jmp maze_pass\n";
        break;
      }
      case 4: {  // stack discipline: 4 * (x + c)
        const std::uint32_t c = mask & 0xFFu;
        src << "    pushl %eax\n"
            << "    pushl $" << c << "\n"
            << "    popl %ebx\n"
            << "    popl %ecx\n"
            << "    addl %ecx, %ebx\n"
            << "    shll $2, %ebx\n"
            << "    cmpl $" << (4 * (secret + c)) << ", %ebx\n"
            << "    jne maze_explode\n"
            << "    jmp maze_pass\n";
        break;
      }
    }
  }

  src << "maze_pass:\n"
      << "    movl $1, %edi\n"
      << "    hlt\n"
      << "maze_explode:\n"
      << "    movl $0, %edi\n"
      << "    hlt\n";

  source_ = src.str();
  image_ = assemble(source_);
}

AttemptResult Maze::attempt(unsigned floor, std::uint32_t guess) const {
  require(floor < floors(), "no such floor");
  Machine machine;
  machine.load(image_);
  machine.set_reg(Reg::Eip, image_.symbol("floor_" + std::to_string(floor)));
  machine.set_reg(Reg::Eax, guess);
  AttemptResult result;
  result.instructions = machine.run(1u << 20);
  const std::uint32_t eip = machine.reg(Reg::Eip);
  result.passed = eip >= image_.symbol("maze_pass") && eip < image_.symbol("maze_explode");
  result.exploded = eip >= image_.symbol("maze_explode");
  return result;
}

std::uint32_t Maze::solution(unsigned floor) const {
  require(floor < floors(), "no such floor");
  return secrets_[floor];
}

unsigned Maze::play(const std::vector<std::uint32_t>& guesses) const {
  unsigned passed = 0;
  for (unsigned k = 0; k < floors() && k < guesses.size(); ++k) {
    if (!attempt(k, guesses[k]).passed) break;
    ++passed;
  }
  return passed;
}

}  // namespace cs31::isa
