#include "isa/machine.hpp"

#include <chrono>

#include "common/error.hpp"
#include "isa/exec_fast.hpp"

namespace cs31::isa {

Machine::Machine(std::uint32_t mem_bytes) : memory_(mem_bytes, 0) {
  require(mem_bytes >= 4096, "machine needs at least 4 KiB of memory");
}

void Machine::load(const Image& image) {
  require(image.base + image.bytes.size() <= memory_.size(), "image does not fit in memory");
  // Reloading the program already in memory (the maze-attempt and
  // grader-regrade pattern: fresh run, same image) keeps the predecoded
  // block cache warm. The cache is always consistent with the code
  // bytes currently in memory — self-modifying stores invalidate it on
  // the spot — so if those bytes equal the incoming image's, every
  // cached block is still exact.
  const bool code_unchanged =
      image_.base == image.base && image_.bytes.size() == image.bytes.size() &&
      !image_.bytes.empty() &&
      std::equal(image.bytes.begin(), image.bytes.end(), memory_.begin() + image.base);
  if (!(code_unchanged && image_.symbols == image.symbols)) image_ = image;
  if (!code_unchanged) {
    for (std::size_t i = 0; i < image.bytes.size(); ++i) {
      memory_[image_.base + i] = image_.bytes[i];
    }
  }
  regs_.fill(0);
  flags_ = Eflags{};
  eip_ = image.base;
  if (image.symbols.contains("_start")) eip_ = image.symbols.at("_start");
  else if (image.symbols.contains("main")) eip_ = image.symbols.at("main");
  // Stack top, 16-byte aligned, one slot of headroom.
  const std::uint32_t top = (static_cast<std::uint32_t>(memory_.size()) - 16) & ~0xFu;
  regs_[static_cast<std::size_t>(Reg::Esp)] = top;
  regs_[static_cast<std::size_t>(Reg::Ebp)] = top;
  halted_ = false;
  executed_ = 0;
  call_depth_ = 0;
  if (!code_unchanged) {
    code_cache_.reset(image_.base, static_cast<std::uint32_t>(image_.bytes.size()));
  }
}

std::uint32_t Machine::reg(Reg r) const {
  if (r == Reg::Eip) return eip_;
  return regs_[static_cast<std::size_t>(r)];
}

void Machine::set_reg(Reg r, std::uint32_t value) {
  if (r == Reg::Eip) { eip_ = value; return; }
  regs_[static_cast<std::size_t>(r)] = value;
}

std::uint32_t Machine::load32(std::uint32_t addr) const {
  require(addr + 4 <= memory_.size() && addr + 4 > addr,
          "segmentation violation: read of 4 bytes at 0x" + std::to_string(addr));
  if (trace_memory_) mem_trace_.push_back(MemAccess{addr, false});
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(memory_[addr + i]) << (8 * i);
  return v;
}

void Machine::store32(std::uint32_t addr, std::uint32_t value) {
  require(addr + 4 <= memory_.size() && addr + 4 > addr,
          "segmentation violation: write of 4 bytes at 0x" + std::to_string(addr));
  if (trace_memory_) mem_trace_.push_back(MemAccess{addr, true});
  for (int i = 0; i < 4; ++i) memory_[addr + i] = static_cast<std::uint8_t>(value >> (8 * i));
  // External pokes into loaded code (the debugger's `set`, test
  // fixtures staging data over an image) must drop predecoded blocks.
  if (addr < image_.base + image_.bytes.size() && addr + 4 > image_.base) {
    code_cache_.invalidate();
  }
}

std::uint8_t Machine::load8(std::uint32_t addr) const {
  require(addr < memory_.size(), "segmentation violation: read at 0x" + std::to_string(addr));
  return memory_[addr];
}

void Machine::store8(std::uint32_t addr, std::uint8_t value) {
  require(addr < memory_.size(), "segmentation violation: write at 0x" + std::to_string(addr));
  memory_[addr] = value;
  if (addr >= image_.base && addr < image_.base + image_.bytes.size()) {
    code_cache_.invalidate();
  }
}

std::uint32_t Machine::effective_address(const MemRef& m) const {
  std::uint32_t addr = static_cast<std::uint32_t>(m.disp);
  if (m.base) addr += reg(*m.base);
  if (m.index) addr += reg(*m.index) * m.scale;
  return addr;
}

std::uint32_t Machine::read_operand(const Operand& o) const {
  switch (o.kind) {
    case Operand::Kind::Imm: return static_cast<std::uint32_t>(o.imm);
    case Operand::Kind::Reg: return reg(o.reg);
    case Operand::Kind::Mem: return load32(effective_address(o.mem));
    case Operand::Kind::None: break;
  }
  throw Error("instruction read a missing operand");
}

void Machine::write_operand(const Operand& o, std::uint32_t value) {
  switch (o.kind) {
    case Operand::Kind::Reg: set_reg(o.reg, value); return;
    case Operand::Kind::Mem: store32(effective_address(o.mem), value); return;
    case Operand::Kind::Imm:
      throw Error("destination operand cannot be an immediate");
    case Operand::Kind::None:
      throw Error("instruction wrote a missing operand");
  }
}

void Machine::push(std::uint32_t value) {
  const std::uint32_t esp = reg(Reg::Esp) - 4;
  store32(esp, value);
  set_reg(Reg::Esp, esp);
}

std::uint32_t Machine::pop() {
  const std::uint32_t esp = reg(Reg::Esp);
  const std::uint32_t v = load32(esp);
  set_reg(Reg::Esp, esp + 4);
  return v;
}

void Machine::set_logic_flags(std::uint32_t result) {
  flags_.cf = false;
  flags_.of = false;
  flags_.zf = result == 0;
  flags_.sf = (result >> 31) & 1u;
}

void Machine::set_add_flags(std::uint32_t a, std::uint32_t b, std::uint64_t wide) {
  const std::uint32_t r = static_cast<std::uint32_t>(wide);
  flags_.cf = (wide >> 32) != 0;
  flags_.zf = r == 0;
  flags_.sf = (r >> 31) & 1u;
  const bool sa = (a >> 31) & 1u, sb = (b >> 31) & 1u, sr = (r >> 31) & 1u;
  flags_.of = (sa == sb) && (sr != sa);
}

void Machine::set_sub_flags(std::uint32_t a, std::uint32_t b) {
  const std::uint32_t r = a - b;
  flags_.cf = a < b;  // borrow
  flags_.zf = r == 0;
  flags_.sf = (r >> 31) & 1u;
  const bool sa = (a >> 31) & 1u, sb = (b >> 31) & 1u, sr = (r >> 31) & 1u;
  flags_.of = (sa != sb) && (sr != sa);
}

bool Machine::step() {
  if (halted_) return false;
  require(eip_ >= image_.base &&
              eip_ + kInstrBytes <= image_.base + image_.bytes.size(),
          "EIP 0x" + std::to_string(eip_) + " outside the loaded program");
  require((eip_ - image_.base) % kInstrBytes == 0, "EIP misaligned");
  const Instruction ins = decode(memory_.data() + eip_);
  std::uint32_t next = eip_ + kInstrBytes;
  ++executed_;

  switch (ins.op) {
    case Mnemonic::Mov:
      write_operand(ins.dst, read_operand(ins.src));
      break;
    case Mnemonic::Lea:
      require(ins.src.kind == Operand::Kind::Mem, "lea source must be a memory operand");
      write_operand(ins.dst, effective_address(ins.src.mem));
      break;
    case Mnemonic::Add: {
      const std::uint32_t a = read_operand(ins.dst), b = read_operand(ins.src);
      const std::uint64_t wide = static_cast<std::uint64_t>(a) + b;
      set_add_flags(a, b, wide);
      write_operand(ins.dst, static_cast<std::uint32_t>(wide));
      break;
    }
    case Mnemonic::Sub: {
      const std::uint32_t a = read_operand(ins.dst), b = read_operand(ins.src);
      set_sub_flags(a, b);
      write_operand(ins.dst, a - b);
      break;
    }
    case Mnemonic::Imul: {
      const std::int64_t a = static_cast<std::int32_t>(read_operand(ins.dst));
      const std::int64_t b = static_cast<std::int32_t>(read_operand(ins.src));
      const std::int64_t wide = a * b;
      const std::uint32_t r = static_cast<std::uint32_t>(wide);
      flags_.cf = flags_.of = wide != static_cast<std::int32_t>(r);
      flags_.zf = r == 0;
      flags_.sf = (r >> 31) & 1u;
      write_operand(ins.dst, r);
      break;
    }
    case Mnemonic::And: {
      const std::uint32_t r = read_operand(ins.dst) & read_operand(ins.src);
      set_logic_flags(r);
      write_operand(ins.dst, r);
      break;
    }
    case Mnemonic::Or: {
      const std::uint32_t r = read_operand(ins.dst) | read_operand(ins.src);
      set_logic_flags(r);
      write_operand(ins.dst, r);
      break;
    }
    case Mnemonic::Xor: {
      const std::uint32_t r = read_operand(ins.dst) ^ read_operand(ins.src);
      set_logic_flags(r);
      write_operand(ins.dst, r);
      break;
    }
    case Mnemonic::Not:
      // x86 NOT does not touch the flags.
      write_operand(ins.dst, ~read_operand(ins.dst));
      break;
    case Mnemonic::Neg: {
      const std::uint32_t a = read_operand(ins.dst);
      set_sub_flags(0, a);
      write_operand(ins.dst, 0u - a);
      break;
    }
    case Mnemonic::Inc: {
      const std::uint32_t a = read_operand(ins.dst);
      const bool cf = flags_.cf;  // INC preserves CF
      const std::uint64_t wide = static_cast<std::uint64_t>(a) + 1;
      set_add_flags(a, 1, wide);
      flags_.cf = cf;
      write_operand(ins.dst, static_cast<std::uint32_t>(wide));
      break;
    }
    case Mnemonic::Dec: {
      const std::uint32_t a = read_operand(ins.dst);
      const bool cf = flags_.cf;  // DEC preserves CF
      set_sub_flags(a, 1);
      flags_.cf = cf;
      write_operand(ins.dst, a - 1);
      break;
    }
    case Mnemonic::Shl: {
      const std::uint32_t count = read_operand(ins.src) & 31u;
      std::uint32_t v = read_operand(ins.dst);
      if (count != 0) {
        flags_.cf = (v >> (32 - count)) & 1u;
        v <<= count;
        flags_.zf = v == 0;
        flags_.sf = (v >> 31) & 1u;
      }
      write_operand(ins.dst, v);
      break;
    }
    case Mnemonic::Shr: {
      const std::uint32_t count = read_operand(ins.src) & 31u;
      std::uint32_t v = read_operand(ins.dst);
      if (count != 0) {
        flags_.cf = (v >> (count - 1)) & 1u;
        v >>= count;
        flags_.zf = v == 0;
        flags_.sf = false;
      }
      write_operand(ins.dst, v);
      break;
    }
    case Mnemonic::Sar: {
      const std::uint32_t count = read_operand(ins.src) & 31u;
      std::int32_t v = static_cast<std::int32_t>(read_operand(ins.dst));
      if (count != 0) {
        flags_.cf = (static_cast<std::uint32_t>(v) >> (count - 1)) & 1u;
        v >>= count;  // arithmetic: implementation-defined pre-C++20, defined now
        flags_.zf = v == 0;
        flags_.sf = v < 0;
      }
      write_operand(ins.dst, static_cast<std::uint32_t>(v));
      break;
    }
    case Mnemonic::Cmp:
      set_sub_flags(read_operand(ins.dst), read_operand(ins.src));
      break;
    case Mnemonic::Test:
      set_logic_flags(read_operand(ins.dst) & read_operand(ins.src));
      break;
    case Mnemonic::Push:
      push(read_operand(ins.dst));
      break;
    case Mnemonic::Pop:
      write_operand(ins.dst, pop());
      break;
    case Mnemonic::Call:
      push(next);
      ++call_depth_;
      next = ins.target;
      break;
    case Mnemonic::Ret:
      if (call_depth_ == 0) {
        // Returning from the outermost frame ends the program, the way
        // main returning to the C runtime does.
        halted_ = true;
        return false;
      }
      --call_depth_;
      next = pop();
      break;
    case Mnemonic::Leave:
      set_reg(Reg::Esp, reg(Reg::Ebp));
      set_reg(Reg::Ebp, pop());
      break;
    case Mnemonic::Jmp: next = ins.target; break;
    case Mnemonic::Je: if (flags_.zf) next = ins.target; break;
    case Mnemonic::Jne: if (!flags_.zf) next = ins.target; break;
    case Mnemonic::Jg: if (!flags_.zf && flags_.sf == flags_.of) next = ins.target; break;
    case Mnemonic::Jge: if (flags_.sf == flags_.of) next = ins.target; break;
    case Mnemonic::Jl: if (flags_.sf != flags_.of) next = ins.target; break;
    case Mnemonic::Jle: if (flags_.zf || flags_.sf != flags_.of) next = ins.target; break;
    case Mnemonic::Ja: if (!flags_.cf && !flags_.zf) next = ins.target; break;
    case Mnemonic::Jae: if (!flags_.cf) next = ins.target; break;
    case Mnemonic::Jb: if (flags_.cf) next = ins.target; break;
    case Mnemonic::Jbe: if (flags_.cf || flags_.zf) next = ins.target; break;
    case Mnemonic::Js: if (flags_.sf) next = ins.target; break;
    case Mnemonic::Jns: if (!flags_.sf) next = ins.target; break;
    case Mnemonic::Nop: break;
    case Mnemonic::Hlt:
      halted_ = true;
      return false;
  }

  eip_ = next;
  return true;
}

std::size_t Machine::run(std::size_t max_steps) {
  if (use_fast_core()) return FastCore::run(*this, max_steps);
  std::size_t steps = 0;
  while (!halted_) {
    require(steps < max_steps, "instruction limit exceeded (runaway program?)");
    step();
    ++steps;
  }
  return steps;
}

Machine::RunOutcome Machine::run_limited(const RunLimits& limits) {
  require(limits.max_instructions > 0 || limits.max_seconds > 0.0,
          "run_limited needs at least one limit (an unlimited runaway never returns)");
  if (use_fast_core()) return FastCore::run_limited(*this, limits);
  // Stride between wall-clock reads: a steady_clock::now() per
  // instruction would dominate the interpreter, so the deadline is
  // polled every kStride instructions (and on every stop decision).
  constexpr std::size_t kStride = 4096;
  const bool timed = limits.max_seconds > 0.0;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timed ? limits.max_seconds : 0.0));
  RunOutcome outcome;
  while (!halted_) {
    if (limits.max_instructions > 0 && outcome.instructions >= limits.max_instructions) {
      outcome.reason = StopReason::InstructionLimit;
      return outcome;
    }
    if (timed && outcome.instructions % kStride == 0 &&
        std::chrono::steady_clock::now() >= deadline) {
      outcome.reason = StopReason::TimeLimit;
      return outcome;
    }
    step();
    ++outcome.instructions;
  }
  outcome.reason = StopReason::Halted;
  return outcome;
}

}  // namespace cs31::isa
