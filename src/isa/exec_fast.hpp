// The predecoded threaded-dispatch execution core.
//
// FastCore drives a Machine through whole predecoded basic blocks —
// one function-pointer call per instruction, no per-step decode, no
// per-step bounds-message construction — while keeping every piece of
// architectural state (registers, flags, memory, instruction counts,
// call depth, fault points) bit-identical to the switch interpreter in
// machine.cpp. Machine::run and Machine::run_limited route here by
// default; Machine::step stays on the switch interpreter, so the
// debugger's teaching view is untouched. The identity contract is
// enforced by tests/isa_diff_fuzz_test.cpp (differential fuzzing) and
// the golden-trace regression suite.
#pragma once

#include <chrono>
#include <cstddef>

#include "isa/machine.hpp"

namespace cs31::isa {

class FastCore {
 public:
  /// Machine::run on the fast core: run to halt, throw the
  /// interpreter's runaway error when max_steps is exhausted first.
  /// Returns the number of instructions executed by this call.
  static std::size_t run(Machine& m, std::size_t max_steps);

  /// Machine::run_limited on the fast core: limits are outcomes, not
  /// exceptions. Instruction budgets stop at exactly the same point
  /// (same eip, same counts) the switch interpreter stops at; the
  /// wall-clock deadline is polled at block boundaries on the same
  /// ~4096-instruction stride, so max_seconds stays the soft ceiling
  /// it always was.
  static Machine::RunOutcome run_limited(Machine& m, const Machine::RunLimits& limits);

 private:
  /// The block-walk loop both entry points share. Executes up to
  /// `budget` instructions (SIZE_MAX = unbounded), polling `deadline`
  /// at block boundaries every ~kStride instructions when `timed`.
  /// Returns how many instructions ran; `time_up` reports a deadline
  /// stop. Syncs all architectural state back into the Machine on
  /// every exit, including exceptional ones.
  static std::size_t drive(Machine& m, std::size_t budget, bool timed,
                           std::chrono::steady_clock::time_point deadline, bool& time_up);
};

}  // namespace cs31::isa
