#include "isa/ia32.hpp"

#include <array>
#include <sstream>

#include "common/error.hpp"

namespace cs31::isa {

namespace {
constexpr std::array<const char*, 9> kRegNames = {
    "%eax", "%ecx", "%edx", "%ebx", "%esp", "%ebp", "%esi", "%edi", "%eip"};

constexpr std::array<const char*, 36> kMnemonicNames = {
    "movl", "addl", "subl", "imull", "andl", "orl", "xorl", "notl", "negl",
    "incl", "decl", "shll", "shrl", "sarl", "leal", "cmpl", "testl",
    "pushl", "popl", "call", "ret", "leave",
    "jmp", "je", "jne", "jg", "jge", "jl", "jle", "ja", "jae", "jb", "jbe",
    "js", "jns", "nop"};
}  // namespace

std::string reg_name(Reg r) {
  const auto i = static_cast<std::size_t>(r);
  require(i < kRegNames.size(), "bad register");
  return kRegNames[i];
}

Reg parse_reg(const std::string& name) {
  std::string n = name;
  if (!n.empty() && n[0] == '%') n.erase(0, 1);
  for (std::size_t i = 0; i < kRegNames.size(); ++i) {
    if (n == kRegNames[i] + 1) return static_cast<Reg>(i);
  }
  throw Error("unknown register '" + name + "'");
}

std::string mnemonic_name(Mnemonic m) {
  const auto i = static_cast<std::size_t>(m);
  if (m == Mnemonic::Hlt) return "hlt";
  require(i < kMnemonicNames.size(), "bad mnemonic");
  return kMnemonicNames[i];
}

namespace {

bool is_jump(Mnemonic m) {
  return m >= Mnemonic::Jmp && m <= Mnemonic::Jns;
}

std::string operand_string(const Operand& o) {
  std::ostringstream out;
  switch (o.kind) {
    case Operand::Kind::None:
      break;
    case Operand::Kind::Imm:
      out << '$' << o.imm;
      break;
    case Operand::Kind::Reg:
      out << reg_name(o.reg);
      break;
    case Operand::Kind::Mem: {
      if (o.mem.disp != 0 || (!o.mem.base && !o.mem.index)) out << o.mem.disp;
      if (o.mem.base || o.mem.index) {
        out << '(';
        if (o.mem.base) out << reg_name(*o.mem.base);
        if (o.mem.index) {
          out << ',' << reg_name(*o.mem.index) << ',' << static_cast<int>(o.mem.scale);
        }
        out << ')';
      }
      break;
    }
  }
  return out.str();
}

}  // namespace

std::string to_string(const Instruction& ins) {
  std::ostringstream out;
  out << mnemonic_name(ins.op);
  if (is_jump(ins.op) || ins.op == Mnemonic::Call) {
    out << " 0x" << std::hex << ins.target;
    return out.str();
  }
  const std::string s = operand_string(ins.src);
  const std::string d = operand_string(ins.dst);
  if (!s.empty()) out << ' ' << s;
  if (!d.empty()) out << (s.empty() ? " " : ", ") << d;
  return out.str();
}

namespace {

std::uint8_t scale_code(std::uint8_t scale) {
  switch (scale) {
    case 1: return 0;
    case 2: return 1;
    case 4: return 2;
    case 8: return 3;
  }
  throw Error("scale must be 1, 2, 4, or 8");
}

void encode_operand(const Operand& o, std::vector<std::uint8_t>& out) {
  // desc A: kind(2) | scale code(2) | has_base(1) | has_index(1)
  std::uint8_t a = static_cast<std::uint8_t>(o.kind);
  a |= static_cast<std::uint8_t>(scale_code(o.mem.scale) << 2);
  if (o.mem.base) a |= 1u << 4;
  if (o.mem.index) a |= 1u << 5;
  // desc B: reg(4) | base-or-index packing: low nibble = reg/base, high = index
  std::uint8_t b = 0;
  if (o.kind == Operand::Kind::Reg) b = static_cast<std::uint8_t>(o.reg);
  if (o.mem.base) b = static_cast<std::uint8_t>(*o.mem.base);
  if (o.mem.index) b |= static_cast<std::uint8_t>(static_cast<std::uint8_t>(*o.mem.index) << 4);
  const std::uint32_t imm =
      static_cast<std::uint32_t>(o.kind == Operand::Kind::Mem ? o.mem.disp : o.imm);
  out.push_back(a);
  out.push_back(b);
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(imm >> (8 * i)));
}

Operand decode_operand(const std::uint8_t* p) {
  const std::uint8_t a = p[0];
  const std::uint8_t b = p[1];
  std::uint32_t raw = 0;
  for (int i = 0; i < 4; ++i) raw |= static_cast<std::uint32_t>(p[2 + i]) << (8 * i);
  const auto kind = static_cast<Operand::Kind>(a & 0x3u);
  Operand o;
  o.kind = kind;
  static constexpr std::uint8_t kScales[] = {1, 2, 4, 8};
  switch (kind) {
    case Operand::Kind::None:
      break;
    case Operand::Kind::Imm:
      o.imm = static_cast<std::int32_t>(raw);
      break;
    case Operand::Kind::Reg:
      require((b & 0xF) < 8, "bad register in encoded operand");
      o.reg = static_cast<Reg>(b & 0xF);
      break;
    case Operand::Kind::Mem:
      o.mem.disp = static_cast<std::int32_t>(raw);
      o.mem.scale = kScales[(a >> 2) & 0x3u];
      if (a & (1u << 4)) {
        require((b & 0xF) < 8, "bad base register");
        o.mem.base = static_cast<Reg>(b & 0xF);
      }
      if (a & (1u << 5)) {
        require((b >> 4) < 8, "bad index register");
        o.mem.index = static_cast<Reg>(b >> 4);
      }
      break;
  }
  return o;
}

}  // namespace

std::vector<std::uint8_t> encode(const Instruction& ins) {
  std::vector<std::uint8_t> out;
  out.reserve(kInstrBytes);
  out.push_back(static_cast<std::uint8_t>(ins.op));
  encode_operand(ins.src, out);
  Operand dst = ins.dst;
  if (is_jump(ins.op) || ins.op == Mnemonic::Call) {
    dst = Operand::immediate(static_cast<std::int32_t>(ins.target));
  }
  encode_operand(dst, out);
  while (out.size() < kInstrBytes) out.push_back(0);
  return out;
}

Instruction decode(const std::uint8_t* bytes) {
  require(bytes != nullptr, "decode requires bytes");
  require(bytes[0] <= static_cast<std::uint8_t>(Mnemonic::Hlt),
          "bad opcode " + std::to_string(bytes[0]));
  Instruction ins;
  ins.op = static_cast<Mnemonic>(bytes[0]);
  ins.src = decode_operand(bytes + 1);
  ins.dst = decode_operand(bytes + 7);
  if (is_jump(ins.op) || ins.op == Mnemonic::Call) {
    ins.target = static_cast<std::uint32_t>(ins.dst.imm);
    ins.dst = Operand::none();
  }
  return ins;
}

}  // namespace cs31::isa
