// The Binary Maze of CS 31 Lab 5 (inspired by CMU's binary bomb lab):
// a generated assembly program whose "floors" each demand a specific
// input discovered by reading the disassembly and tracing with the
// debugger. Secrets are derived deterministically from a seed, so every
// student (and every test) gets a reproducible maze.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "isa/assembler.hpp"
#include "isa/machine.hpp"

namespace cs31::isa {

/// Outcome of one attempt at a floor.
struct AttemptResult {
  bool passed = false;
  bool exploded = false;  ///< reached the maze_explode handler
  std::size_t instructions = 0;
};

/// A maze with `floors` challenges of increasing complexity. The five
/// floor archetypes cycle: direct compare, arithmetic chain, XOR mask,
/// counting loop, and a stack-discipline puzzle.
class Maze {
 public:
  /// Throws cs31::Error when floors is not in [1, 16].
  explicit Maze(unsigned floors, std::uint32_t seed = 0xC531);

  [[nodiscard]] unsigned floors() const { return static_cast<unsigned>(secrets_.size()); }

  /// The maze's full assembly source — what students disassemble.
  [[nodiscard]] const std::string& source() const { return source_; }

  /// The assembled image (shared by all attempts).
  [[nodiscard]] const Image& image() const { return image_; }

  /// Run floor `k` (0-based) with the guess in %eax. Throws on a bad
  /// floor number.
  [[nodiscard]] AttemptResult attempt(unsigned floor, std::uint32_t guess) const;

  /// The correct input for floor `k` — the answer a student derives by
  /// tracing. Exposed so tests and graders can verify mazes end-to-end.
  [[nodiscard]] std::uint32_t solution(unsigned floor) const;

  /// Attempt every floor in order with the given guesses; returns the
  /// number of consecutive floors passed before the first explosion.
  [[nodiscard]] unsigned play(const std::vector<std::uint32_t>& guesses) const;

 private:
  std::vector<std::uint32_t> secrets_;
  std::string source_;
  Image image_;
};

}  // namespace cs31::isa
