// GDB-style debugger for the IA-32 subset machine (CS 31 Labs 4-5: "use
// GDB assembly code tracing to discover the correct program input").
// Provides both a programmatic API (breakpoints, stepping, inspection)
// and a small command interpreter that accepts the GDB spellings the
// course drills: break / run / continue / stepi / info registers /
// print / x / disas.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "isa/machine.hpp"

namespace cs31::isa {

/// Why control returned to the user.
enum class StopReason { Breakpoint, Step, Halted, NotRunning };

class Debugger {
 public:
  /// Attach to a machine (not owned; must outlive the debugger).
  explicit Debugger(Machine& machine);

  /// Set a breakpoint at an address or label. Throws on unknown labels
  /// or addresses outside the loaded image.
  void break_at(std::uint32_t address);
  void break_at(const std::string& label);
  void delete_breakpoint(std::uint32_t address);
  [[nodiscard]] const std::set<std::uint32_t>& breakpoints() const { return breakpoints_; }

  /// Resume until a breakpoint, halt, or `max_steps`.
  StopReason cont(std::size_t max_steps = 1000000);

  /// Execute exactly `n` instructions (stepi).
  StopReason stepi(std::size_t n = 1);

  /// "info registers": all registers plus flags, formatted as GDB does.
  [[nodiscard]] std::string info_registers() const;

  /// "x/Nw addr": N 32-bit words of memory.
  [[nodiscard]] std::vector<std::uint32_t> examine(std::uint32_t addr, std::size_t count) const;

  /// "disas": instruction listing around the current EIP (`before` and
  /// `after` are instruction counts), with a "=>" marker like GDB's.
  [[nodiscard]] std::string disas(int before = 2, int after = 4) const;

  /// One stack frame of a backtrace.
  struct Frame {
    std::uint32_t pc = 0;        ///< return address / current EIP
    std::uint32_t ebp = 0;       ///< frame pointer of this frame
    std::string function;        ///< nearest symbol at or before pc
  };

  /// "backtrace": walk the saved-EBP chain (the prologue discipline the
  /// course teaches: pushl %ebp / movl %esp, %ebp), resolving each
  /// return address to its containing function label. Stops at
  /// `max_frames` or when the chain leaves valid memory.
  [[nodiscard]] std::vector<Frame> backtrace(std::size_t max_frames = 32) const;

  /// One GDB-flavored command line; returns its printed output.
  /// Supported: break <label|0xaddr>, delete <0xaddr>, continue | c,
  /// stepi [n] | si [n], info registers, print $reg | p $reg,
  /// x/<n>w <0xaddr|$reg>, disas, backtrace | bt, plus any commands
  /// added via register_command. Throws cs31::Error for anything else.
  std::string execute(const std::string& command);

  /// Extend the interpreter with a custom zero-argument command (the
  /// static-analysis tier registers "lint" this way, so higher layers
  /// can plug in without this class depending on them). A re-registered
  /// name replaces the earlier handler; built-in names stay reserved.
  void register_command(const std::string& name, std::function<std::string()> handler);

 private:
  Machine& machine_;
  std::set<std::uint32_t> breakpoints_;
  std::map<std::string, std::function<std::string()>> extra_commands_;
};

}  // namespace cs31::isa
