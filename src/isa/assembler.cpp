#include "isa/assembler.hpp"

#include <cctype>
#include <sstream>

#include "common/error.hpp"

namespace cs31::isa {

namespace {

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool is_label_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.';
}

std::int32_t parse_int(const std::string& text) {
  require(!text.empty(), "empty integer");
  std::size_t i = 0;
  bool neg = false;
  if (text[0] == '-') { neg = true; i = 1; }
  require(i < text.size(), "integer with no digits");
  std::int64_t v = 0;
  if (text.compare(i, 2, "0x") == 0 || text.compare(i, 2, "0X") == 0) {
    i += 2;
    require(i < text.size(), "hex integer with no digits");
    for (; i < text.size(); ++i) {
      const char c = static_cast<char>(std::tolower(static_cast<unsigned char>(text[i])));
      int d;
      if (c >= '0' && c <= '9') d = c - '0';
      else if (c >= 'a' && c <= 'f') d = 10 + c - 'a';
      else throw Error("bad hex digit in '" + text + "'");
      v = v * 16 + d;
      require(v <= 0xFFFFFFFFll, "integer out of 32-bit range");
    }
  } else {
    for (; i < text.size(); ++i) {
      require(std::isdigit(static_cast<unsigned char>(text[i])),
              "bad digit in '" + text + "'");
      v = v * 10 + (text[i] - '0');
      require(v <= 0xFFFFFFFFll, "integer out of 32-bit range");
    }
  }
  return static_cast<std::int32_t>(neg ? -v : v);
}

// Split "a, b" at the top-level comma (commas inside parens belong to
// the (base,index,scale) operand form).
std::vector<std::string> split_operands(const std::string& text) {
  std::vector<std::string> parts;
  int depth = 0;
  std::string cur;
  for (char c : text) {
    if (c == '(') ++depth;
    if (c == ')') --depth;
    if (c == ',' && depth == 0) {
      parts.push_back(trim(cur));
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  const std::string last = trim(cur);
  if (!last.empty()) parts.push_back(last);
  return parts;
}

struct MnemonicTableEntry {
  const char* name;
  Mnemonic op;
  int operands;  // expected operand count
};

const MnemonicTableEntry kTable[] = {
    {"movl", Mnemonic::Mov, 2},   {"addl", Mnemonic::Add, 2},
    {"subl", Mnemonic::Sub, 2},   {"imull", Mnemonic::Imul, 2},
    {"andl", Mnemonic::And, 2},   {"orl", Mnemonic::Or, 2},
    {"xorl", Mnemonic::Xor, 2},   {"notl", Mnemonic::Not, 1},
    {"negl", Mnemonic::Neg, 1},   {"incl", Mnemonic::Inc, 1},
    {"decl", Mnemonic::Dec, 1},   {"shll", Mnemonic::Shl, 2},
    {"shrl", Mnemonic::Shr, 2},   {"sarl", Mnemonic::Sar, 2},
    {"leal", Mnemonic::Lea, 2},   {"cmpl", Mnemonic::Cmp, 2},
    {"testl", Mnemonic::Test, 2}, {"pushl", Mnemonic::Push, 1},
    {"popl", Mnemonic::Pop, 1},   {"call", Mnemonic::Call, 1},
    {"ret", Mnemonic::Ret, 0},    {"leave", Mnemonic::Leave, 0},
    {"jmp", Mnemonic::Jmp, 1},    {"je", Mnemonic::Je, 1},
    {"jne", Mnemonic::Jne, 1},    {"jg", Mnemonic::Jg, 1},
    {"jge", Mnemonic::Jge, 1},    {"jl", Mnemonic::Jl, 1},
    {"jle", Mnemonic::Jle, 1},    {"ja", Mnemonic::Ja, 1},
    {"jae", Mnemonic::Jae, 1},    {"jb", Mnemonic::Jb, 1},
    {"jbe", Mnemonic::Jbe, 1},    {"js", Mnemonic::Js, 1},
    {"jns", Mnemonic::Jns, 1},    {"nop", Mnemonic::Nop, 0},
    {"hlt", Mnemonic::Hlt, 0},
};

bool is_jump_or_call(Mnemonic m) {
  return (m >= Mnemonic::Jmp && m <= Mnemonic::Jns) || m == Mnemonic::Call;
}

}  // namespace

Operand parse_operand(const std::string& raw) {
  const std::string text = trim(raw);
  require(!text.empty(), "empty operand");
  if (text[0] == '$') return Operand::immediate(parse_int(text.substr(1)));
  if (text[0] == '%') return Operand::of_reg(parse_reg(text));
  // Memory: disp(base,index,scale) with every part optional except that
  // at least one must appear.
  const std::size_t open = text.find('(');
  MemRef m;
  if (open == std::string::npos) {
    m.disp = parse_int(text);  // absolute address
    return Operand::memory(m);
  }
  const std::string disp = trim(text.substr(0, open));
  if (!disp.empty()) m.disp = parse_int(disp);
  require(text.back() == ')', "missing ')' in memory operand '" + text + "'");
  const std::string inner = text.substr(open + 1, text.size() - open - 2);
  std::vector<std::string> parts;
  {
    std::string cur;
    for (char c : inner) {
      if (c == ',') { parts.push_back(trim(cur)); cur.clear(); }
      else cur.push_back(c);
    }
    parts.push_back(trim(cur));
  }
  require(parts.size() <= 3, "too many parts in memory operand '" + text + "'");
  if (!parts.empty() && !parts[0].empty()) m.base = parse_reg(parts[0]);
  if (parts.size() >= 2 && !parts[1].empty()) m.index = parse_reg(parts[1]);
  if (parts.size() == 3 && !parts[2].empty()) {
    const std::int32_t s = parse_int(parts[2]);
    require(s == 1 || s == 2 || s == 4 || s == 8, "scale must be 1, 2, 4, or 8");
    m.scale = static_cast<std::uint8_t>(s);
  }
  require(m.base || m.index, "memory operand '" + text + "' names no register");
  return Operand::memory(m);
}

std::uint32_t Image::symbol(const std::string& name) const {
  const auto it = symbols.find(name);
  require(it != symbols.end(), "undefined symbol '" + name + "'");
  return it->second;
}

Image assemble(const std::string& source, std::uint32_t base) {
  struct Line {
    int number;
    std::string mnemonic;
    std::string rest;
  };
  Image image;
  image.base = base;
  std::vector<Line> lines;

  // Pass 1: strip comments, collect labels, count instructions.
  std::istringstream in(source);
  std::string raw;
  int number = 0;
  std::uint32_t addr = base;
  while (std::getline(in, raw)) {
    ++number;
    const std::size_t hash = raw.find('#');
    if (hash != std::string::npos) raw.erase(hash);
    std::string line = trim(raw);
    // Possibly several labels then one instruction on a line.
    for (;;) {
      const std::size_t colon = line.find(':');
      if (colon == std::string::npos) break;
      const std::string label = trim(line.substr(0, colon));
      require(!label.empty(), "line " + std::to_string(number) + ": empty label");
      for (char c : label) {
        require(is_label_char(c),
                "line " + std::to_string(number) + ": bad label '" + label + "'");
      }
      require(!image.symbols.contains(label),
              "line " + std::to_string(number) + ": duplicate label '" + label + "'");
      image.symbols[label] = addr;
      line = trim(line.substr(colon + 1));
    }
    if (line.empty()) continue;
    const std::size_t sp = line.find_first_of(" \t");
    Line entry;
    entry.number = number;
    entry.mnemonic = sp == std::string::npos ? line : line.substr(0, sp);
    entry.rest = sp == std::string::npos ? "" : trim(line.substr(sp + 1));
    lines.push_back(entry);
    addr += kInstrBytes;
  }

  // Pass 2: encode with labels resolved.
  addr = base;
  for (const Line& line : lines) {
    const MnemonicTableEntry* entry = nullptr;
    for (const MnemonicTableEntry& e : kTable) {
      if (line.mnemonic == e.name) { entry = &e; break; }
    }
    require(entry != nullptr, "line " + std::to_string(line.number) +
                                  ": unknown mnemonic '" + line.mnemonic + "'");
    Instruction ins;
    ins.op = entry->op;
    try {
      if (is_jump_or_call(entry->op)) {
        const std::string target = trim(line.rest);
        require(!target.empty(), "jump needs a target");
        if (target[0] == '%' || target[0] == '$' || std::isdigit(static_cast<unsigned char>(target[0]))) {
          throw Error("jump target must be a label in this subset");
        }
        ins.target = image.symbol(target);
      } else {
        const std::vector<std::string> ops = split_operands(line.rest);
        require(static_cast<int>(ops.size()) == entry->operands,
                std::string(entry->name) + " expects " +
                    std::to_string(entry->operands) + " operand(s), got " +
                    std::to_string(ops.size()));
        if (entry->operands == 1) {
          ins.dst = parse_operand(ops[0]);
        } else if (entry->operands == 2) {
          ins.src = parse_operand(ops[0]);
          ins.dst = parse_operand(ops[1]);
        }
      }
    } catch (const Error& e) {
      throw Error("line " + std::to_string(line.number) + ": " + e.what());
    }
    const std::vector<std::uint8_t> bytes = encode(ins);
    image.bytes.insert(image.bytes.end(), bytes.begin(), bytes.end());
    addr += kInstrBytes;
  }
  return image;
}

std::vector<DisasmLine> disassemble(const Image& image) {
  // Reverse symbol table for labeling.
  std::map<std::uint32_t, std::string> by_addr;
  for (const auto& [name, a] : image.symbols) by_addr[a] = name;

  std::vector<DisasmLine> out;
  for (std::size_t off = 0; off + kInstrBytes <= image.bytes.size(); off += kInstrBytes) {
    DisasmLine line;
    line.address = image.base + static_cast<std::uint32_t>(off);
    const Instruction ins = decode(image.bytes.data() + off);
    line.text = to_string(ins);
    // Swap hex targets for label names when known.
    if (const auto it = by_addr.find(ins.target);
        it != by_addr.end() &&
        ((ins.op >= Mnemonic::Jmp && ins.op <= Mnemonic::Jns) || ins.op == Mnemonic::Call)) {
      line.text = mnemonic_name(ins.op) + " " + it->second;
    }
    if (const auto it = by_addr.find(line.address); it != by_addr.end()) {
      line.label = it->second;
    }
    out.push_back(line);
  }
  return out;
}

}  // namespace cs31::isa
