// The fast core's block-walk runner.
//
// drive() is the whole execution loop: look up (or lazily predecode)
// the block at eip, fire its handlers back to back, fix eip up at the
// walk's end, repeat. The identity contract with the switch
// interpreter hangs on three details here:
//
//  - st.eip is set to the op's own address *before* its handler runs,
//    and st.executed is incremented first, so a handler that throws
//    leaves exactly the state Machine::step() leaves when the same
//    instruction faults (count incremented, eip on the fault).
//  - An instruction budget can cut a block anywhere; the fixup then
//    parks eip on the first unexecuted instruction, which is where the
//    switch interpreter's per-step loop would stop.
//  - A store into the code range finishes its own instruction, then
//    stops the walk and flushes the block cache, so the next block is
//    predecoded from the freshly written bytes — per-step decode
//    semantics, recovered exactly when they matter.
#include "isa/exec_fast.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"
#include "isa/predecode.hpp"

namespace cs31::isa {

namespace {
// Same wall-clock polling stride as the switch interpreter's
// run_limited: a steady_clock read per instruction would dominate.
constexpr std::size_t kStride = 4096;
}  // namespace

std::size_t FastCore::drive(Machine& m, std::size_t budget, bool timed,
                            std::chrono::steady_clock::time_point deadline, bool& time_up) {
  predecode::ExecState st;
  st.regs = m.regs_.data();
  st.mem = m.memory_.data();
  st.mem_size = static_cast<std::uint32_t>(m.memory_.size());
  st.flags = &m.flags_;
  st.code_base = m.image_.base;
  st.code_end = m.image_.base + static_cast<std::uint32_t>(m.image_.bytes.size());
  st.eip = m.eip_;
  st.executed = m.executed_;
  st.call_depth = m.call_depth_;
  st.halted = m.halted_;

  std::size_t done = 0;
  std::size_t next_poll = 0;  // poll the deadline when done >= next_poll
  try {
    while (!st.halted && done < budget) {
      if (timed && done >= next_poll) {
        if (std::chrono::steady_clock::now() >= deadline) {
          time_up = true;
          break;
        }
        next_poll = done + kStride;
      }
      const predecode::PredecodedBlock& b = m.code_cache_.obtain(st.eip, m.memory_.data());
      const std::size_t n = std::min(b.ops.size(), budget - done);
      st.stop = false;
      st.control = false;
      st.code_dirty = false;
      std::size_t ran = 0;
      bool stopped = false;
      for (std::size_t i = 0; i < n; ++i) {
        const predecode::DecodedOp& op = b.ops[i];
        st.eip = op.addr;
        ++st.executed;
        ++ran;
        op.fn(st, op);
        if (st.stop) {
          stopped = true;
          // Control handlers set eip themselves (and hlt / outermost
          // ret leave it on the instruction); a straight-line stop
          // (self-modifying store) resumes at the next instruction.
          if (!st.control) st.eip = op.addr + kInstrBytes;
          break;
        }
      }
      if (!stopped) {
        // Fell off the block's end (budget cut, image end, or a block
        // capped before an undecodable instruction): resume at the
        // first unexecuted address.
        st.eip = b.start + static_cast<std::uint32_t>(ran) * kInstrBytes;
      }
      done += ran;
      if (st.code_dirty) m.code_cache_.invalidate();
    }
  } catch (...) {
    m.eip_ = st.eip;
    m.executed_ = st.executed;
    m.call_depth_ = st.call_depth;
    m.halted_ = st.halted;
    throw;
  }
  m.eip_ = st.eip;
  m.executed_ = st.executed;
  m.call_depth_ = st.call_depth;
  m.halted_ = st.halted;
  return done;
}

std::size_t FastCore::run(Machine& m, std::size_t max_steps) {
  bool time_up = false;
  const std::size_t done = drive(m, max_steps, /*timed=*/false, {}, time_up);
  // Mirrors the interpreter's loop, which throws only when it would
  // need step max_steps+1 — a program halting on exactly the last
  // budgeted instruction returns normally.
  require(m.halted_, "instruction limit exceeded (runaway program?)");
  return done;
}

Machine::RunOutcome FastCore::run_limited(Machine& m, const Machine::RunLimits& limits) {
  const bool timed = limits.max_seconds > 0.0;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timed ? limits.max_seconds : 0.0));
  const std::size_t budget = limits.max_instructions > 0
                                 ? limits.max_instructions
                                 : std::numeric_limits<std::size_t>::max();
  bool time_up = false;
  Machine::RunOutcome outcome;
  outcome.instructions = drive(m, budget, timed, deadline, time_up);
  // Same precedence as the interpreter's loop: a program that halts on
  // its last budgeted instruction is Halted, and an instruction stop is
  // reported even if the clock also ran out between polls.
  if (m.halted()) {
    outcome.reason = Machine::StopReason::Halted;
  } else if (time_up) {
    outcome.reason = Machine::StopReason::TimeLimit;
  } else {
    outcome.reason = Machine::StopReason::InstructionLimit;
  }
  return outcome;
}

}  // namespace cs31::isa
