// Seeded synthetic-program generator for differential testing of the
// two execution cores. A GeneratedProgram is structurally valid
// assembly for the kit's IA-32 subset — straight ALU runs, scratch-
// region memory traffic, counted loops, branch diamonds, cdecl calls
// through an acyclic helper-function ladder, balanced push/pop play —
// produced deterministically from a 64-bit seed (its own splitmix64
// PRNG, the same one race::trace_gen uses; no std distributions, whose
// output is implementation-defined). "Structurally valid" means the
// program always terminates at _start's final hlt and never faults:
// every memory operand lands in the scratch region, every jump target
// is a label, every call ladder is acyclic, every frame is balanced.
//
// The same program run on the switch interpreter and the predecoded
// core must leave byte-identical architectural state at every step.
// Every divergence the fuzz harness finds is a one-line repro: re-run
// with the printed seed (and config) to regenerate the exact source;
// GeneratedProgram::to_string() prints it with a "# seed=" header.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace cs31::isa {

/// Knobs for the generator. The defaults make small programs (a few
/// hundred instructions executed) dense in core-divergence hazards:
/// flag-dependent branches, loops whose counters cross block budgets,
/// calls that split blocks at every boundary.
struct ProgramGenConfig {
  std::size_t segments = 10;      ///< top-level segments in _start
  std::size_t functions = 3;      ///< helper functions f0..f{n-1} (0 = no calls)
  std::size_t ops_per_block = 5;  ///< straight-line ops per segment body
  std::uint32_t max_trip = 9;     ///< loop trip counts drawn from [1, max_trip]
  std::uint32_t mem_words = 64;   ///< scratch region size in 4-byte words
  std::uint32_t data_base = 0x8000;  ///< scratch region base (clear of image + stack)
};

struct GeneratedProgram {
  std::uint64_t seed = 0;
  ProgramGenConfig config;
  std::string source;  ///< assembles with isa::assemble at the default base

  /// The source preceded by a "# seed=<n>" header — paste into a bug
  /// report, or regenerate from the seed alone.
  [[nodiscard]] std::string to_string() const;
};

/// Deterministically generate a structurally valid program from `seed`.
[[nodiscard]] GeneratedProgram generate_program(std::uint64_t seed, ProgramGenConfig config = {});

}  // namespace cs31::isa
