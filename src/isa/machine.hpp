// Execution engine for the IA-32 subset: registers, EFLAGS condition
// codes, byte-addressed little-endian memory, and the x86 stack
// discipline (push/pop/call/ret/leave) that CS 31 spends a full week on.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "isa/assembler.hpp"
#include "isa/ia32.hpp"
#include "isa/predecode.hpp"

namespace cs31::isa {

class FastCore;

// Eflags lives in ia32.hpp (shared by both execution cores); machine.hpp
// re-exports it through that include for existing users.

/// A running machine: load an Image, then step or run. Memory size is
/// configurable; the stack starts at the top and grows down, exactly the
/// picture in the course's memory-regions diagrams.
class Machine {
 public:
  /// Create a machine with `mem_bytes` of memory (default 1 MiB).
  /// Throws cs31::Error for sizes below 4 KiB.
  explicit Machine(std::uint32_t mem_bytes = 1u << 20);

  /// Copy an image into memory and point EIP at its base (or at the
  /// `_start`/`main` symbol when present, preferring `_start`). Resets
  /// ESP/EBP to the top of memory. Throws when the image does not fit.
  void load(const Image& image);

  /// Execute one instruction. Returns false if halted (hlt, or ret with
  /// an empty call stack). Throws cs31::Error on memory faults
  /// ("segmentation violations"), bad operand shapes, or division of the
  /// instruction stream (EIP outside the loaded image). Always executes
  /// on the switch interpreter: single-stepping is the debugger's
  /// teaching view, and the reference semantics.
  bool step();

  /// Which execution core run()/run_limited() use. Both cores are
  /// bit-identical on all architectural state (the differential fuzz
  /// harness proves it); Predecoded is the default because it is ~an
  /// order of magnitude faster. Switch is the reference interpreter —
  /// tests pin the fast core against it, and memory-trace capture
  /// always uses it (the trace is defined by the reference's access
  /// order).
  enum class Core {
    Predecoded,  ///< predecoded blocks, function-pointer threaded dispatch
    Switch,      ///< per-step decode + switch (the teaching interpreter)
  };

  void set_core(Core core) { core_ = core; }
  [[nodiscard]] Core core() const { return core_; }

  /// Run until halt or `max_steps` (throws when exceeded).
  std::size_t run(std::size_t max_steps = 1000000);

  /// Why a limited run stopped.
  enum class StopReason {
    Halted,            ///< the program finished on its own
    InstructionLimit,  ///< max_instructions executed without halting
    TimeLimit,         ///< wall clock ran out first
  };

  /// Resource budget for run_limited. Zero means "unlimited" for either
  /// knob (but at least one must be set — an unlimited run of a runaway
  /// program would never return).
  struct RunLimits {
    std::size_t max_instructions = 1'000'000;  ///< 0 = unlimited
    double max_seconds = 0.0;                  ///< wall clock; 0 = unlimited
  };

  struct RunOutcome {
    StopReason reason = StopReason::Halted;
    std::size_t instructions = 0;  ///< executed by this run
  };

  /// Run until halt or a resource limit. Unlike run(), hitting a limit
  /// is an outcome, not an exception — a grading service reports a
  /// poison submission's infinite loop as `timeout`, it does not treat
  /// it as a caller mistake. The wall clock is checked every few
  /// thousand instructions, so max_seconds is a soft ceiling with
  /// microsecond-scale overshoot. Throws cs31::Error only for machine
  /// faults (bad memory, EIP off the image) and when both limits are 0.
  RunOutcome run_limited(const RunLimits& limits);

  [[nodiscard]] bool halted() const { return halted_; }

  // Register/flag/memory access (the debugger's "info registers" etc.).
  [[nodiscard]] std::uint32_t reg(Reg r) const;
  void set_reg(Reg r, std::uint32_t value);
  [[nodiscard]] Eflags flags() const { return flags_; }

  [[nodiscard]] std::uint32_t load32(std::uint32_t addr) const;
  void store32(std::uint32_t addr, std::uint32_t value);
  [[nodiscard]] std::uint8_t load8(std::uint32_t addr) const;
  void store8(std::uint32_t addr, std::uint8_t value);

  /// Effective address of a memory operand given current registers —
  /// the "address computation" homework drills.
  [[nodiscard]] std::uint32_t effective_address(const MemRef& m) const;

  /// Count of instructions executed since load().
  [[nodiscard]] std::size_t instructions_executed() const { return executed_; }

  /// One recorded data-memory access (stack traffic and explicit memory
  /// operands; instruction fetches are not data accesses).
  struct MemAccess {
    std::uint32_t address = 0;
    bool is_write = false;
  };

  /// Enable/disable recording of data accesses (off by default; the
  /// record feeds the cache simulator in cross-layer experiments).
  void set_trace_memory(bool enabled) { trace_memory_ = enabled; }
  [[nodiscard]] const std::vector<MemAccess>& memory_trace() const { return mem_trace_; }
  void clear_memory_trace() { mem_trace_.clear(); }

  [[nodiscard]] std::uint32_t memory_size() const {
    return static_cast<std::uint32_t>(memory_.size());
  }

  /// The image currently loaded (for disassembly in the debugger).
  [[nodiscard]] const Image& image() const { return image_; }

  /// Block-cache counters of the predecoded core (tests use these to
  /// observe invalidation on self-modifying stores and block reuse on
  /// mid-block jump entry).
  [[nodiscard]] const predecode::CacheStats& code_cache_stats() const {
    return code_cache_.stats();
  }

 private:
  friend class FastCore;

  [[nodiscard]] bool use_fast_core() const {
    // Memory-trace capture stays on the reference interpreter: the
    // trace's access order is defined by its exact read/write sequence.
    return core_ == Core::Predecoded && !trace_memory_;
  }
  [[nodiscard]] std::uint32_t read_operand(const Operand& o) const;
  void write_operand(const Operand& o, std::uint32_t value);
  void push(std::uint32_t value);
  [[nodiscard]] std::uint32_t pop();
  void set_logic_flags(std::uint32_t result);
  void set_add_flags(std::uint32_t a, std::uint32_t b, std::uint64_t wide);
  void set_sub_flags(std::uint32_t a, std::uint32_t b);

  std::vector<std::uint8_t> memory_;
  std::array<std::uint32_t, 8> regs_{};
  std::uint32_t eip_ = 0;
  Eflags flags_;
  bool halted_ = true;
  std::size_t executed_ = 0;
  Image image_;
  std::size_t call_depth_ = 0;
  Core core_ = Core::Predecoded;
  predecode::BlockCache code_cache_;
  bool trace_memory_ = false;
  // mutable so the const read path can record; tracing is observability,
  // not machine state.
  mutable std::vector<MemAccess> mem_trace_;
};

}  // namespace cs31::isa
