// Core types for the kit's IA-32 subset (CS 31 "Assembly Programming",
// Labs 4-5). The subset is exactly the instruction vocabulary the course
// teaches: data movement, arithmetic/logic, comparisons, condition-coded
// jumps, and the call/return + stack-frame instructions.
//
// Note on encoding: instructions assemble to a fixed 8-byte teaching
// encoding rather than genuine variable-length x86 machine code. The
// course's learning target is the *assembly language and its execution
// semantics* (registers, flags, addressing modes, the stack discipline),
// which this preserves; real byte-level encoding is out of scope and is
// recorded as a substitution in DESIGN.md.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace cs31::isa {

/// The eight general-purpose IA-32 registers plus EIP.
enum class Reg : std::uint8_t {
  Eax = 0, Ecx = 1, Edx = 2, Ebx = 3, Esp = 4, Ebp = 5, Esi = 6, Edi = 7, Eip = 8,
};

/// AT&T register name ("%eax"), as the course's GDB sessions show.
[[nodiscard]] std::string reg_name(Reg r);

/// The four condition codes the course teaches. Lives here (not in
/// machine.hpp) so both execution cores — the teaching switch
/// interpreter and the predecoded fast core — share one definition.
struct Eflags {
  bool cf = false;  ///< carry
  bool zf = false;  ///< zero
  bool sf = false;  ///< sign
  bool of = false;  ///< signed overflow

  friend bool operator==(const Eflags&, const Eflags&) = default;
};

/// Parse "%eax" (or "eax"). Throws cs31::Error on an unknown name.
[[nodiscard]] Reg parse_reg(const std::string& name);

/// An effective-address expression disp(base, index, scale); any of the
/// three parts may be absent (scale defaults to 1).
struct MemRef {
  std::int32_t disp = 0;
  std::optional<Reg> base;
  std::optional<Reg> index;
  std::uint8_t scale = 1;  ///< 1, 2, 4, or 8

  friend bool operator==(const MemRef&, const MemRef&) = default;
};

/// One instruction operand: immediate, register, or memory reference.
struct Operand {
  enum class Kind { None, Imm, Reg, Mem } kind = Kind::None;
  std::int32_t imm = 0;
  Reg reg = Reg::Eax;
  MemRef mem;

  static Operand none() { return {}; }
  static Operand immediate(std::int32_t v) {
    Operand o; o.kind = Kind::Imm; o.imm = v; return o;
  }
  static Operand of_reg(Reg r) {
    Operand o; o.kind = Kind::Reg; o.reg = r; return o;
  }
  static Operand memory(MemRef m) {
    Operand o; o.kind = Kind::Mem; o.mem = m; return o;
  }

  friend bool operator==(const Operand&, const Operand&) = default;
};

/// Mnemonics of the subset. Jump targets are code addresses resolved by
/// the assembler from labels.
enum class Mnemonic : std::uint8_t {
  Mov, Add, Sub, Imul, And, Or, Xor, Not, Neg, Inc, Dec,
  Shl, Shr, Sar, Lea, Cmp, Test,
  Push, Pop, Call, Ret, Leave,
  Jmp, Je, Jne, Jg, Jge, Jl, Jle, Ja, Jae, Jb, Jbe, Js, Jns,
  Nop, Hlt,
};

/// Text of a mnemonic with the course's "l" operand-size suffix where
/// x86 convention uses one (movl, addl, ... but jmp/call/ret bare).
[[nodiscard]] std::string mnemonic_name(Mnemonic m);

/// One decoded instruction. AT&T operand order: src first, dst second.
struct Instruction {
  Mnemonic op = Mnemonic::Nop;
  Operand src;   ///< first written operand (source in AT&T)
  Operand dst;   ///< second written operand (destination in AT&T)
  std::uint32_t target = 0;  ///< jump/call target address

  friend bool operator==(const Instruction&, const Instruction&) = default;
};

/// Render one instruction in AT&T syntax; jump targets print as hex
/// addresses (the disassembler view students see in GDB).
[[nodiscard]] std::string to_string(const Instruction& ins);

/// Fixed size of every encoded instruction in the teaching encoding:
/// opcode byte, two 6-byte operand fields, padding. Jump/call targets
/// live in the (otherwise unused) destination immediate field.
inline constexpr std::uint32_t kInstrBytes = 16;

/// Encode to the 16-byte teaching format.
[[nodiscard]] std::vector<std::uint8_t> encode(const Instruction& ins);

/// Decode 16 bytes back into an Instruction. Throws cs31::Error on a
/// malformed pattern (bad opcode/operand kind).
[[nodiscard]] Instruction decode(const std::uint8_t* bytes);

}  // namespace cs31::isa
