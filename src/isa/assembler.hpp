// Two-pass assembler for the kit's IA-32 subset, accepting the AT&T
// syntax students read in GDB and write in CS 31 Lab 4: `movl $5, %eax`,
// `movl 8(%ebp), %eax`, `leal (%eax,%ebx,4), %ecx`, labels, and `#`
// comments. Produces a loadable image plus its symbol table, and the
// matching disassembler view (Lab 5's `disas`).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "isa/ia32.hpp"

namespace cs31::isa {

/// An assembled program: teaching-encoded bytes to load at `base`, plus
/// the label -> address symbol table.
struct Image {
  std::uint32_t base = 0;
  std::vector<std::uint8_t> bytes;
  std::map<std::string, std::uint32_t> symbols;

  /// Number of instructions in the image.
  [[nodiscard]] std::size_t instruction_count() const {
    return bytes.size() / kInstrBytes;
  }

  /// Address of a label. Throws cs31::Error when undefined.
  [[nodiscard]] std::uint32_t symbol(const std::string& name) const;
};

/// Assemble AT&T-syntax source. Throws cs31::Error with a line number on
/// any syntax error, duplicate label, or undefined jump target.
[[nodiscard]] Image assemble(const std::string& source, std::uint32_t base = 0x1000);

/// Parse a single operand ("$5", "%eax", "8(%ebp)", "(%eax,%ebx,4)").
/// Exposed for tests and the debugger's expression reader.
[[nodiscard]] Operand parse_operand(const std::string& text);

/// One line of disassembly: address, instruction text, and the label
/// that starts here (empty if none).
struct DisasmLine {
  std::uint32_t address = 0;
  std::string label;
  std::string text;
};

/// Disassemble an image, resolving jump/call targets back to label names
/// where the symbol table knows them.
[[nodiscard]] std::vector<DisasmLine> disassemble(const Image& image);

}  // namespace cs31::isa
