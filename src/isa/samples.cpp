#include "isa/samples.hpp"

#include <sstream>

#include "common/error.hpp"

namespace cs31::isa {

const std::vector<AsmSample>& lab4_samples() {
  static const std::vector<AsmSample> kSamples = {
      {"swap_mem",
       "swap the two ints whose addresses are passed as arguments",
       R"(swap_mem:
    pushl %ebp
    movl %esp, %ebp
    movl 8(%ebp), %eax      # first pointer
    movl 12(%ebp), %ebx     # second pointer
    movl (%eax), %ecx
    movl (%ebx), %edx
    movl %edx, (%eax)
    movl %ecx, (%ebx)
    movl $0, %eax
    leave
    ret
)"},
      {"array_sum",
       "sum all values in the int array (base, count)",
       R"(array_sum:
    pushl %ebp
    movl %esp, %ebp
    movl 8(%ebp), %ebx      # base
    movl 12(%ebp), %ecx     # count
    movl $0, %eax
    movl $0, %edx           # i
array_sum_loop:
    cmpl %ecx, %edx
    jge array_sum_done
    addl (%ebx,%edx,4), %eax
    incl %edx
    jmp array_sum_loop
array_sum_done:
    leave
    ret
)"},
      {"array_max",
       "largest (signed) value in the nonempty int array (base, count)",
       R"(array_max:
    pushl %ebp
    movl %esp, %ebp
    movl 8(%ebp), %ebx
    movl 12(%ebp), %ecx
    movl (%ebx), %eax       # best = a[0]
    movl $1, %edx
array_max_loop:
    cmpl %ecx, %edx
    jge array_max_done
    movl (%ebx,%edx,4), %esi
    cmpl %eax, %esi
    jle array_max_skip
    movl %esi, %eax
array_max_skip:
    incl %edx
    jmp array_max_loop
array_max_done:
    leave
    ret
)"},
      {"abs_value",
       "absolute value of the argument, without branches beyond one jump",
       R"(abs_value:
    pushl %ebp
    movl %esp, %ebp
    movl 8(%ebp), %eax
    cmpl $0, %eax
    jge abs_done
    negl %eax
abs_done:
    leave
    ret
)"},
      {"count_matching",
       "how many elements of (base, count) equal the third argument",
       R"(count_matching:
    pushl %ebp
    movl %esp, %ebp
    movl 8(%ebp), %ebx      # base
    movl 12(%ebp), %ecx     # count
    movl 16(%ebp), %esi     # needle
    movl $0, %eax
    movl $0, %edx
count_loop:
    cmpl %ecx, %edx
    jge count_done
    cmpl %esi, (%ebx,%edx,4)
    jne count_skip
    incl %eax
count_skip:
    incl %edx
    jmp count_loop
count_done:
    leave
    ret
)"},
      {"find_index",
       "index of the first element equal to the needle, or -1",
       R"(find_index:
    pushl %ebp
    movl %esp, %ebp
    movl 8(%ebp), %ebx
    movl 12(%ebp), %ecx
    movl 16(%ebp), %esi
    movl $0, %edx
find_loop:
    cmpl %ecx, %edx
    jge find_missing
    cmpl %esi, (%ebx,%edx,4)
    je find_hit
    incl %edx
    jmp find_loop
find_hit:
    movl %edx, %eax
    leave
    ret
find_missing:
    movl $-1, %eax
    leave
    ret
)"},
  };
  return kSamples;
}

const AsmSample& sample(const std::string& name) {
  for (const AsmSample& s : lab4_samples()) {
    if (s.name == name) return s;
  }
  throw Error("unknown assembly sample '" + name + "'");
}

std::uint32_t call_sample(const AsmSample& sample, const std::vector<std::uint32_t>& args,
                          const std::vector<std::uint32_t>& data,
                          std::uint32_t data_base) {
  std::ostringstream src;
  src << "_start:\n";
  for (auto it = args.rbegin(); it != args.rend(); ++it) {
    src << "    pushl $" << static_cast<std::int32_t>(*it) << "\n";
  }
  src << "    call " << sample.name << "\n    hlt\n" << sample.source;

  Machine machine;
  machine.load(assemble(src.str()));
  for (std::size_t i = 0; i < data.size(); ++i) {
    machine.store32(data_base + static_cast<std::uint32_t>(4 * i), data[i]);
  }
  machine.run(1u << 20);
  return machine.reg(Reg::Eax);
}

}  // namespace cs31::isa
