// The Lab 4 assembly exercise set, solved: the short routines students
// write by hand ("swap two variables, or sum all values in an array"),
// shipped as callable assembly with a cdecl harness. Each sample is a
// self-contained function the grader (and the tests) invoke with stack
// arguments on a fresh Machine.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "isa/machine.hpp"

namespace cs31::isa {

/// One named sample routine.
struct AsmSample {
  std::string name;         ///< function label, e.g. "array_sum"
  std::string description;  ///< the lab's prompt for it
  std::string source;       ///< the routine's assembly (AT&T subset)
};

/// The lab's routine set: swap_mem, array_sum, array_max, abs_value,
/// count_matching, strlen_asm.
[[nodiscard]] const std::vector<AsmSample>& lab4_samples();

/// Look one up by name. Throws cs31::Error when unknown.
[[nodiscard]] const AsmSample& sample(const std::string& name);

/// Call a sample function with cdecl integer arguments on a fresh
/// machine whose memory may be staged first via `setup` words written
/// at `data_base`. Returns %eax. Throws on assembly or runtime faults.
[[nodiscard]] std::uint32_t call_sample(const AsmSample& sample,
                                        const std::vector<std::uint32_t>& args,
                                        const std::vector<std::uint32_t>& data = {},
                                        std::uint32_t data_base = 0x8000);

}  // namespace cs31::isa
