#include "isa/program_gen.hpp"

#include <array>
#include <string>

#include "common/error.hpp"
#include "isa/ia32.hpp"

namespace cs31::isa {
namespace {

/// splitmix64 (Steele, Lea & Flood) — tiny, well-mixed, and identical
/// on every platform, which std's distributions are not.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, bound); 0 when bound == 0.
  std::uint32_t below(std::uint32_t bound) {
    return bound == 0 ? 0 : static_cast<std::uint32_t>(next() % bound);
  }

 private:
  std::uint64_t state_;
};

// The ALU-play register pool. %ecx is reserved for loop counters,
// %esp/%ebp for the stack discipline; everything else is fair game —
// the generator never needs a value to survive, only to be the same
// value on both cores.
constexpr std::array<const char*, 5> kFreeRegs = {"%eax", "%ebx", "%edx", "%esi", "%edi"};

// Immediates mix small arithmetic values with the operand boundaries
// the flag recipes care about (sign bit, carry out, full shift counts).
constexpr std::array<std::uint32_t, 8> kEdgeImms = {0u,   1u,     31u,        32u,
                                                    255u, 65535u, 0x7fffffffu, 65521u};

/// Emits assembly lines and counts emitted instructions, so the
/// generator can assert the image stays clear of the scratch region.
class Emitter {
 public:
  void label(const std::string& name) { out_ += name + ":\n"; }

  void ins(const std::string& text) {
    out_ += "    " + text + "\n";
    ++count_;
  }

  [[nodiscard]] const std::string& text() const { return out_; }
  [[nodiscard]] std::size_t instructions() const { return count_; }

 private:
  std::string out_;
  std::size_t count_ = 0;
};

class Generator {
 public:
  Generator(std::uint64_t seed, const ProgramGenConfig& config) : rng_(seed), config_(config) {}

  std::string generate() {
    require(config_.mem_words > 0, "program generator needs a nonempty scratch region");
    // _start first so the loader picks it as the entry point; helper
    // functions follow the final hlt and are only reachable by call.
    emit_.label("_start");
    for (std::size_t s = 0; s < config_.segments; ++s) emit_segment();
    emit_.ins("hlt");
    for (std::size_t f = 0; f < config_.functions; ++f) emit_function(f);

    // The program must not overwrite itself: a store into the image
    // range is *valid* execution (the cores handle it identically) but
    // would turn later code into undecodable bytes, breaking the
    // "never faults" contract. 0x1000 is assemble()'s default base.
    require(0x1000 + emit_.instructions() * kInstrBytes <= config_.data_base,
            "generated program image would overlap the scratch data region");
    return emit_.text();
  }

 private:
  const char* reg() {
    return kFreeRegs[rng_.below(static_cast<std::uint32_t>(kFreeRegs.size()))];
  }

  std::string imm() {
    // Mostly small values (loop-ish arithmetic), sometimes a boundary.
    if (rng_.below(4) == 0) {
      return std::to_string(kEdgeImms[rng_.below(static_cast<std::uint32_t>(kEdgeImms.size()))]);
    }
    return std::to_string(rng_.below(100000));
  }

  std::string fresh_label(const char* stem) {
    return std::string("gen_") + stem + "_" + std::to_string(label_counter_++);
  }

  /// One straight-line ALU instruction over the free registers.
  void emit_alu() {
    const char* d = reg();
    switch (rng_.below(12)) {
      case 0: emit_.ins(std::string("movl $") + imm() + ", " + d); break;
      case 1: emit_.ins(std::string("movl ") + reg() + ", " + d); break;
      case 2: emit_.ins(std::string("addl $") + imm() + ", " + d); break;
      case 3: emit_.ins(std::string("addl ") + reg() + ", " + d); break;
      case 4: emit_.ins(std::string("subl ") + reg() + ", " + d); break;
      case 5: emit_.ins(std::string("imull $") + imm() + ", " + d); break;
      case 6: {
        const char* logic = (rng_.below(3) == 0) ? "andl" : (rng_.below(2) == 0 ? "orl" : "xorl");
        emit_.ins(std::string(logic) + " " + reg() + ", " + d);
        break;
      }
      case 7: {
        const char* shift = (rng_.below(3) == 0) ? "shll" : (rng_.below(2) == 0 ? "shrl" : "sarl");
        emit_.ins(std::string(shift) + " $" + std::to_string(rng_.below(34)) + ", " + d);
        break;
      }
      case 8: emit_.ins(std::string("notl ") + d); break;
      case 9: emit_.ins(std::string("negl ") + d); break;
      case 10: emit_.ins(std::string(rng_.below(2) ? "incl " : "decl ") + d); break;
      default:
        emit_.ins(std::string(rng_.below(2) ? "cmpl " : "testl ") + reg() + ", " + d);
        break;
    }
  }

  /// One scratch-region memory access. The address register is loaded
  /// immediately before use, so the access is in bounds no matter what
  /// earlier ALU play left in the registers.
  void emit_mem() {
    const std::uint32_t word = rng_.below(config_.mem_words);
    const std::uint32_t addr = config_.data_base + 4 * word;
    const char* v = reg();
    switch (rng_.below(4)) {
      case 0:  // register-indirect load / store
        emit_.ins("movl $" + std::to_string(addr) + ", %esi");
        emit_.ins(rng_.below(2) ? std::string("movl (%esi), ") + v
                                : std::string("movl ") + v + ", (%esi)");
        break;
      case 1:  // displacement form off the region base
        emit_.ins("movl $" + std::to_string(config_.data_base) + ", %esi");
        emit_.ins("movl " + std::to_string(4 * word) + "(%esi), " + v);
        break;
      case 2:  // base + index*4, the array-walk shape
        emit_.ins("movl $" + std::to_string(config_.data_base) + ", %esi");
        emit_.ins("movl $" + std::to_string(word) + ", %edi");
        emit_.ins(std::string("addl (%esi,%edi,4), ") + v);
        break;
      default:  // read-modify-write against memory
        emit_.ins("movl $" + std::to_string(addr) + ", %esi");
        emit_.ins(std::string(rng_.below(2) ? "addl " : "xorl ") + v + ", (%esi)");
        break;
    }
  }

  void emit_body_op() {
    if (rng_.below(3) == 0) {
      emit_mem();
    } else {
      emit_alu();
    }
  }

  /// movl $trip, %ecx / body / decl %ecx / jne — the canonical counted
  /// loop. The body never touches %ecx, and decl is the last flag
  /// writer before the jne, so the loop always terminates.
  void emit_loop() {
    const std::uint32_t trip = 1 + rng_.below(config_.max_trip);
    const std::string top = fresh_label("loop");
    emit_.ins("movl $" + std::to_string(trip) + ", %ecx");
    emit_.label(top);
    const std::size_t body = 1 + rng_.below(static_cast<std::uint32_t>(config_.ops_per_block));
    for (std::size_t i = 0; i < body; ++i) emit_body_op();
    emit_.ins("decl %ecx");
    emit_.ins("jne " + top);
  }

  /// cmp + jcc diamond: whichever arm the seeded data picks, both
  /// cores must pick the same one.
  void emit_diamond() {
    static constexpr std::array<const char*, 12> kJcc = {"je",  "jne", "jg", "jge", "jl",  "jle",
                                                         "ja",  "jae", "jb", "jbe", "js",  "jns"};
    const std::string then_label = fresh_label("then");
    const std::string join_label = fresh_label("join");
    emit_.ins(std::string("cmpl $") + imm() + ", " + reg());
    emit_.ins(std::string(kJcc[rng_.below(static_cast<std::uint32_t>(kJcc.size()))]) + " " +
              then_label);
    const std::uint32_t else_ops = 1 + rng_.below(3);
    for (std::uint32_t i = 0; i < else_ops; ++i) emit_alu();
    emit_.ins("jmp " + join_label);
    emit_.label(then_label);
    const std::uint32_t then_ops = 1 + rng_.below(3);
    for (std::uint32_t i = 0; i < then_ops; ++i) emit_alu();
    emit_.label(join_label);
  }

  /// Balanced push/pop play: n pushes (registers and immediates),
  /// then exactly n pops back into free registers.
  void emit_stack_play() {
    const std::uint32_t depth = 1 + rng_.below(4);
    for (std::uint32_t i = 0; i < depth; ++i) {
      emit_.ins(rng_.below(2) ? std::string("pushl ") + reg() : "pushl $" + imm());
    }
    for (std::uint32_t i = 0; i < depth; ++i) emit_.ins(std::string("popl ") + reg());
  }

  /// cdecl call into the helper ladder: push the argument, call,
  /// caller pops the argument.
  void emit_call() {
    const std::size_t callee = rng_.below(static_cast<std::uint32_t>(config_.functions));
    emit_.ins(rng_.below(2) ? std::string("pushl ") + reg() : "pushl $" + imm());
    emit_.ins("call f" + std::to_string(callee));
    emit_.ins("addl $4, %esp");
  }

  void emit_segment() {
    switch (rng_.below(config_.functions > 0 ? 6u : 5u)) {
      case 0:
        for (std::size_t i = 0; i < config_.ops_per_block; ++i) emit_alu();
        break;
      case 1:
        for (std::size_t i = 0; i < 1 + config_.ops_per_block / 2; ++i) emit_mem();
        break;
      case 2: emit_loop(); break;
      case 3: emit_diamond(); break;
      case 4: emit_stack_play(); break;
      default: emit_call(); break;
    }
  }

  /// Helper function f<index> with a full cdecl frame. f_i may only
  /// call f_j with j < i, so the call graph is acyclic and every
  /// execution terminates.
  void emit_function(std::size_t index) {
    emit_.label("f" + std::to_string(index));
    emit_.ins("pushl %ebp");
    emit_.ins("movl %esp, %ebp");
    emit_.ins("movl 8(%ebp), %eax");
    const std::size_t body = 1 + rng_.below(static_cast<std::uint32_t>(config_.ops_per_block));
    for (std::size_t i = 0; i < body; ++i) emit_body_op();
    if (index > 0 && rng_.below(2) == 0) {
      emit_.ins("pushl %eax");
      emit_.ins("call f" + std::to_string(rng_.below(static_cast<std::uint32_t>(index))));
      emit_.ins("addl $4, %esp");
    }
    emit_.ins("leave");
    emit_.ins("ret");
  }

  SplitMix64 rng_;
  ProgramGenConfig config_;
  Emitter emit_;
  std::size_t label_counter_ = 0;
};

}  // namespace

std::string GeneratedProgram::to_string() const {
  return "# seed=" + std::to_string(seed) + "\n" + source;
}

GeneratedProgram generate_program(std::uint64_t seed, ProgramGenConfig config) {
  GeneratedProgram program;
  program.seed = seed;
  program.config = config;
  program.source = Generator(seed, config).generate();
  return program;
}

}  // namespace cs31::isa
