// Predecoded instruction streams for the fast execution core.
//
// The teaching interpreter in machine.cpp re-decodes 16 bytes and walks
// two operand-kind switches on every step — perfect for the debugger's
// one-instruction-at-a-time view, and exactly the cost every downstream
// workload (mazes, graded runs, compiled corpora) pays per instruction.
// This layer hoists all of that to decode time: each instruction is
// resolved once into a DecodedOp whose handler function is *specialized
// for its (mnemonic, dst kind, src kind) shape*, so execution is one
// indirect call per instruction with direct register-index / resolved
// effective-address accessors and no per-step string building.
//
// Blocks, not single instructions, are the predecode unit: a
// PredecodedBlock runs from its entry address to the first control
// transfer (jmp/jcc/call/ret/hlt), the same leader rule cs31::analyze
// uses for its ISA CFGs (the fast core discovers blocks lazily from
// jump targets rather than from a whole-image CFG pass, because the
// cs31_analyze library sits *above* cs31_isa in the link order; a test
// pins the two discoveries against each other). The BlockCache maps
// code addresses to predecoded blocks with a direct-mapped index —
// addresses are dense multiples of kInstrBytes — and is invalidated
// whenever a store lands in the code range, which is what keeps
// self-modifying programs bit-identical to the switch interpreter.
//
// Everything here is a value type with no pointers into any Machine:
// DecodedOps hold register *indices* and displacement fields, so a
// copied Machine's cache stays valid for the copied memory.
#pragma once

#include <cstdint>
#include <vector>

#include "isa/ia32.hpp"

namespace cs31::isa::predecode {

/// Resolved memory operand: optional<Reg> flattened to index + flag,
/// scale to a shift, so the effective-address computation is two
/// predictable branches and no optional unwrapping.
struct MemSpec {
  std::int32_t disp = 0;
  std::uint8_t base = 0;
  std::uint8_t index = 0;
  std::uint8_t scale_shift = 0;  ///< scale 1/2/4/8 -> shift 0/1/2/3
  bool has_base = false;
  bool has_index = false;
};

struct DecodedOp;

/// Mutable machine-state view the handlers execute against. Built by
/// the fast core from a Machine at run entry and synced back at every
/// exit (including exceptional ones), so faults leave the Machine in
/// exactly the state the switch interpreter would.
struct ExecState {
  std::uint32_t* regs = nullptr;  ///< the 8 GPRs (never Eip; decode rejects it)
  std::uint8_t* mem = nullptr;
  std::uint32_t mem_size = 0;
  Eflags* flags = nullptr;
  std::uint32_t code_base = 0;  ///< loaded image range, for invalidation
  std::uint32_t code_end = 0;
  std::uint32_t eip = 0;
  std::size_t executed = 0;
  std::size_t call_depth = 0;
  bool halted = false;
  // Per-block-walk signals (reset by the runner each block).
  bool stop = false;        ///< end this block walk after the current op
  bool control = false;     ///< the handler set eip itself
  bool code_dirty = false;  ///< a store landed in [code_base, code_end)
};

using ExecFn = void (*)(ExecState&, const DecodedOp&);

/// One predecoded instruction: the specialized handler plus every
/// operand field it can need, resolved from the 16-byte encoding once.
struct DecodedOp {
  ExecFn fn = nullptr;
  std::uint32_t addr = 0;     ///< code address (restores eip on faults)
  std::uint32_t target = 0;   ///< jump/call target
  std::uint32_t src_imm = 0;  ///< immediate source value
  std::uint32_t dst_imm = 0;  ///< immediate destination value (pushl $5; cmpl reads it)
  std::uint8_t src_reg = 0;   ///< register index when src is a register
  std::uint8_t dst_reg = 0;
  MemSpec src_mem;
  MemSpec dst_mem;
};

/// Predecode one already-decoded instruction at `addr`: resolve operand
/// fields and select the specialized handler. Never throws for shapes
/// the switch interpreter would reject at *execution* time (missing or
/// immediate destinations, non-memory lea sources): those select a
/// handler that throws the interpreter's exact error when executed, so
/// the two cores fault at the same instruction with the same message.
[[nodiscard]] DecodedOp predecode_one(const Instruction& ins, std::uint32_t addr);

/// A straight-line run of predecoded instructions starting at `start`.
/// Ends at the first control transfer (ends_in_control), at the image
/// end, or just before an instruction whose bytes do not decode
/// (decode_fault) — execution re-runs decode() there so the fault
/// throws exactly where and what the switch interpreter would.
struct PredecodedBlock {
  std::uint32_t start = 0;
  std::vector<DecodedOp> ops;
  bool ends_in_control = false;
  bool decode_fault = false;
};

/// Decode statistics, exposed through Machine for tests of the block
/// cache's invalidation and reuse paths.
struct CacheStats {
  std::size_t blocks = 0;         ///< blocks currently cached
  std::size_t predecodes = 0;     ///< blocks predecoded since load
  std::size_t lookups = 0;        ///< block transitions served
  std::size_t invalidations = 0;  ///< cache flushes from code-range stores
};

/// Direct-mapped block cache over one loaded image. Key is the block's
/// entry eip; a jump into the middle of a cached block simply predecodes
/// a new (overlapping) block from that address, which is how mid-block
/// entry stays exact without any block-splitting machinery.
class BlockCache {
 public:
  /// Bind to a freshly loaded image (drops all cached blocks).
  void reset(std::uint32_t image_base, std::uint32_t image_size);

  /// Drop every cached block (self-modifying store or external poke).
  void invalidate();

  /// The block starting at `eip`, predecoding it on a miss. Validates
  /// range and alignment with the switch interpreter's exact errors.
  /// `mem` is the machine memory the image bytes live in.
  const PredecodedBlock& obtain(std::uint32_t eip, const std::uint8_t* mem);

  [[nodiscard]] const CacheStats& stats() const { return stats_; }

 private:
  std::uint32_t base_ = 0;
  std::uint32_t size_ = 0;
  std::vector<std::int32_t> slot_;  ///< (eip - base)/kInstrBytes -> block index, -1 = empty
  std::vector<PredecodedBlock> blocks_;
  CacheStats stats_;
};

}  // namespace cs31::isa::predecode
