#include "isa/debugger.hpp"

#include <iomanip>
#include <sstream>

#include "common/error.hpp"

namespace cs31::isa {

Debugger::Debugger(Machine& machine) : machine_(machine) {}

void Debugger::break_at(std::uint32_t address) {
  const Image& img = machine_.image();
  require(address >= img.base && address < img.base + img.bytes.size(),
          "breakpoint outside the loaded program");
  require((address - img.base) % kInstrBytes == 0, "breakpoint not on an instruction");
  breakpoints_.insert(address);
}

void Debugger::break_at(const std::string& label) {
  break_at(machine_.image().symbol(label));
}

void Debugger::delete_breakpoint(std::uint32_t address) {
  breakpoints_.erase(address);
}

StopReason Debugger::cont(std::size_t max_steps) {
  if (machine_.halted()) return StopReason::NotRunning;
  for (std::size_t i = 0; i < max_steps; ++i) {
    if (!machine_.step()) return StopReason::Halted;
    if (breakpoints_.contains(machine_.reg(Reg::Eip))) return StopReason::Breakpoint;
  }
  throw Error("continue exceeded the step limit (runaway program?)");
}

StopReason Debugger::stepi(std::size_t n) {
  if (machine_.halted()) return StopReason::NotRunning;
  for (std::size_t i = 0; i < n; ++i) {
    if (!machine_.step()) return StopReason::Halted;
  }
  return breakpoints_.contains(machine_.reg(Reg::Eip)) ? StopReason::Breakpoint
                                                       : StopReason::Step;
}

std::string Debugger::info_registers() const {
  std::ostringstream out;
  static constexpr Reg kOrder[] = {Reg::Eax, Reg::Ecx, Reg::Edx, Reg::Ebx,
                                   Reg::Esp, Reg::Ebp, Reg::Esi, Reg::Edi, Reg::Eip};
  for (Reg r : kOrder) {
    const std::uint32_t v = machine_.reg(r);
    out << std::left << std::setw(6) << reg_name(r).substr(1) << "0x" << std::hex << v
        << std::dec << "\t" << static_cast<std::int32_t>(v) << '\n';
  }
  const Eflags f = machine_.flags();
  out << "eflags [";
  if (f.cf) out << " CF";
  if (f.zf) out << " ZF";
  if (f.sf) out << " SF";
  if (f.of) out << " OF";
  out << " ]\n";
  return out.str();
}

std::vector<std::uint32_t> Debugger::examine(std::uint32_t addr, std::size_t count) const {
  std::vector<std::uint32_t> words;
  words.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    words.push_back(machine_.load32(addr + static_cast<std::uint32_t>(4 * i)));
  }
  return words;
}

std::string Debugger::disas(int before, int after) const {
  require(before >= 0 && after >= 0, "disas window must be nonnegative");
  const Image& img = machine_.image();
  const std::uint32_t eip = machine_.reg(Reg::Eip);
  const std::vector<DisasmLine> all = disassemble(img);
  std::ostringstream out;
  for (const DisasmLine& line : all) {
    const std::int64_t delta =
        (static_cast<std::int64_t>(line.address) - static_cast<std::int64_t>(eip)) /
        static_cast<std::int64_t>(kInstrBytes);
    if (delta < -before || delta > after) continue;
    if (!line.label.empty()) out << line.label << ":\n";
    out << (line.address == eip ? "=> " : "   ") << "0x" << std::hex << line.address
        << std::dec << ":\t" << line.text << '\n';
  }
  return out.str();
}

std::vector<Debugger::Frame> Debugger::backtrace(std::size_t max_frames) const {
  std::vector<Frame> frames;
  const Image& img = machine_.image();

  auto function_of = [&](std::uint32_t pc) -> std::string {
    std::string best;
    std::uint32_t best_addr = 0;
    for (const auto& [name, addr] : img.symbols) {
      // Skip local labels (".L...") — they are not functions.
      if (!name.empty() && name[0] == '.') continue;
      if (addr <= pc && addr >= best_addr) {
        best = name;
        best_addr = addr;
      }
    }
    return best.empty() ? "??" : best;
  };

  std::uint32_t pc = machine_.reg(Reg::Eip);
  std::uint32_t ebp = machine_.reg(Reg::Ebp);
  for (std::size_t i = 0; i < max_frames; ++i) {
    frames.push_back(Frame{pc, ebp, function_of(pc)});
    // Next frame: saved EBP at [ebp], return address at [ebp+4].
    if (ebp == 0 || ebp + 8 > machine_.memory_size()) break;
    const std::uint32_t saved_ebp = machine_.load32(ebp);
    const std::uint32_t ret = machine_.load32(ebp + 4);
    // The chain ends when the return address leaves the program or the
    // saved EBP stops growing (we initialized EBP = stack top).
    if (ret < img.base || ret >= img.base + img.bytes.size()) break;
    if (saved_ebp <= ebp) break;
    pc = ret;
    ebp = saved_ebp;
  }
  return frames;
}

namespace {

std::vector<std::string> tokenize(const std::string& command) {
  std::istringstream in(command);
  std::vector<std::string> tokens;
  std::string t;
  while (in >> t) tokens.push_back(t);
  return tokens;
}

}  // namespace

std::string Debugger::execute(const std::string& command) {
  const std::vector<std::string> tok = tokenize(command);
  require(!tok.empty(), "empty command");
  const std::string& cmd = tok[0];

  if (const auto it = extra_commands_.find(cmd); it != extra_commands_.end()) {
    require(tok.size() == 1, "usage: " + cmd);
    return it->second();
  }

  auto parse_addr_or_reg = [&](const std::string& text) -> std::uint32_t {
    if (!text.empty() && text[0] == '$') return machine_.reg(parse_reg("%" + text.substr(1)));
    if (text.rfind("0x", 0) == 0) {
      return static_cast<std::uint32_t>(std::stoul(text.substr(2), nullptr, 16));
    }
    // Fall back to a label.
    return machine_.image().symbol(text);
  };

  auto stop_text = [](StopReason r) -> std::string {
    switch (r) {
      case StopReason::Breakpoint: return "Breakpoint hit.\n";
      case StopReason::Step: return "";
      case StopReason::Halted: return "Program exited.\n";
      case StopReason::NotRunning: return "The program is not running.\n";
    }
    return "";
  };

  if (cmd == "break" || cmd == "b") {
    require(tok.size() == 2, "usage: break <label|0xaddr>");
    const std::uint32_t addr = parse_addr_or_reg(tok[1]);
    break_at(addr);
    std::ostringstream out;
    out << "Breakpoint at 0x" << std::hex << addr << '\n';
    return out.str();
  }
  if (cmd == "delete") {
    require(tok.size() == 2, "usage: delete <0xaddr>");
    delete_breakpoint(parse_addr_or_reg(tok[1]));
    return "";
  }
  if (cmd == "continue" || cmd == "c") {
    return stop_text(cont());
  }
  if (cmd == "stepi" || cmd == "si") {
    std::size_t n = 1;
    if (tok.size() == 2) n = std::stoul(tok[1]);
    const StopReason r = stepi(n);
    return stop_text(r) + disas(0, 0);
  }
  if (cmd == "info" && tok.size() == 2 && tok[1] == "registers") {
    return info_registers();
  }
  if (cmd == "print" || cmd == "p") {
    require(tok.size() == 2 && tok[1].size() > 1 && tok[1][0] == '$',
            "usage: print $reg");
    const std::uint32_t v = machine_.reg(parse_reg("%" + tok[1].substr(1)));
    std::ostringstream out;
    out << "$ = " << static_cast<std::int32_t>(v) << " (0x" << std::hex << v << ")\n";
    return out.str();
  }
  if (cmd.rfind("x/", 0) == 0) {
    require(tok.size() == 2, "usage: x/<n>w <addr>");
    const std::string spec = cmd.substr(2);
    require(!spec.empty() && spec.back() == 'w', "only word (w) examine is supported");
    const std::size_t n = std::stoul(spec.substr(0, spec.size() - 1));
    const std::uint32_t addr = parse_addr_or_reg(tok[1]);
    const std::vector<std::uint32_t> words = examine(addr, n);
    std::ostringstream out;
    for (std::size_t i = 0; i < words.size(); ++i) {
      if (i % 4 == 0) {
        if (i != 0) out << '\n';
        out << "0x" << std::hex << (addr + 4 * i) << ":";
      }
      out << "\t0x" << std::hex << words[i];
    }
    out << '\n';
    return out.str();
  }
  if (cmd == "disas" || cmd == "disassemble") {
    return disas();
  }
  if (cmd == "backtrace" || cmd == "bt") {
    std::ostringstream out;
    const std::vector<Frame> frames = backtrace();
    for (std::size_t i = 0; i < frames.size(); ++i) {
      out << "#" << i << "  0x" << std::hex << frames[i].pc << std::dec << " in "
          << frames[i].function << " (ebp=0x" << std::hex << frames[i].ebp << std::dec
          << ")\n";
    }
    return out.str();
  }
  throw Error("unknown debugger command '" + cmd + "'");
}

void Debugger::register_command(const std::string& name,
                                std::function<std::string()> handler) {
  static const std::set<std::string> kReserved = {
      "break", "b", "delete", "continue", "c",     "stepi", "si",
      "info",  "print", "p",  "x",        "disas", "disassemble",
      "backtrace", "bt"};
  require(!kReserved.contains(name), "'" + name + "' is a built-in debugger command");
  extra_commands_[name] = std::move(handler);
}

}  // namespace cs31::isa
