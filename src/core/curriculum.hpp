// The curriculum model — the paper's primary artifact as data. Encodes
// CS 31's module sequence, lab assignments, written homeworks, and the
// NSF/IEEE-TCPP topic tagging of Table I, with per-topic emphasis
// weights ("topics that CS 31 emphasizes heavily"). Downstream code uses
// it to regenerate Table I (experiment E1), to drive the Figure 1 survey
// simulation (E2), and to map every course component onto the kit module
// that implements it.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace cs31::core {

/// The four TCPP curriculum areas of Table I.
enum class TcppCategory { Pervasive, Architecture, Programming, Algorithms };

[[nodiscard]] std::string category_name(TcppCategory c);

/// How hard the course leans on a topic (drives Figure 1's rating gaps).
/// Mention < Cover < Emphasize.
enum class Emphasis : int { Mention = 1, Cover = 2, Emphasize = 3 };

/// One TCPP topic as the course tags it.
struct TcppTopic {
  std::string name;
  TcppCategory category;
  Emphasis emphasis = Emphasis::Cover;
};

/// One course module (a multi-week instructional unit).
struct CourseModule {
  std::string name;
  std::string kit_module;             ///< src/ directory implementing it
  std::vector<std::string> topics;    ///< TCPP topic names it covers
};

/// One lab assignment (Lab 0 .. Lab 10).
struct LabAssignment {
  int number;
  std::string title;
  std::string kit_component;          ///< class/function realizing it
  std::vector<std::string> topics;
};

/// One weekly written homework.
struct Homework {
  std::string title;
  std::vector<std::string> topics;
};

/// One semester week: which module is in play and what's due.
struct Week {
  int number;                ///< 1-based week of the semester
  std::string module;        ///< CourseModule::name active that week
  int lab_due = -1;          ///< lab number due, or -1
  std::string homework;      ///< homework title assigned, or ""
};

/// The whole course.
class Curriculum {
 public:
  /// The CS 31 curriculum exactly as the paper describes it.
  static const Curriculum& cs31();

  /// The 14-week schedule following the paper's §III ordering: binary
  /// representation -> C -> architecture & assembly -> memory hierarchy
  /// -> OS -> shared-memory parallelism.
  [[nodiscard]] const std::vector<Week>& schedule() const { return schedule_; }

  [[nodiscard]] const std::vector<TcppTopic>& topics() const { return topics_; }
  [[nodiscard]] const std::vector<CourseModule>& modules() const { return modules_; }
  [[nodiscard]] const std::vector<LabAssignment>& labs() const { return labs_; }
  [[nodiscard]] const std::vector<Homework>& homeworks() const { return homeworks_; }

  /// Topic names per category — the rows of Table I.
  [[nodiscard]] std::vector<std::string> topics_in(TcppCategory category) const;

  /// Look up one topic. Throws cs31::Error when unknown.
  [[nodiscard]] const TcppTopic& topic(const std::string& name) const;

  /// Modules/labs covering a topic (empty = coverage gap).
  [[nodiscard]] std::vector<std::string> covering_modules(const std::string& topic) const;
  [[nodiscard]] std::vector<int> covering_labs(const std::string& topic) const;

  /// Topics no module covers — must be empty for the shipped curriculum
  /// (asserted by tests; the paper's Table I claims full coverage).
  [[nodiscard]] std::vector<std::string> uncovered_topics() const;

  /// Render Table I: category -> comma-separated topic list.
  [[nodiscard]] std::string render_table1() const;

 private:
  static Curriculum build_cs31();

  std::vector<TcppTopic> topics_;
  std::vector<CourseModule> modules_;
  std::vector<LabAssignment> labs_;
  std::vector<Homework> homeworks_;
  std::vector<Week> schedule_;
};

}  // namespace cs31::core
