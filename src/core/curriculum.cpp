#include "core/curriculum.hpp"

#include <sstream>

#include "common/error.hpp"

namespace cs31::core {

std::string category_name(TcppCategory c) {
  switch (c) {
    case TcppCategory::Pervasive: return "Pervasive";
    case TcppCategory::Architecture: return "Architecture";
    case TcppCategory::Programming: return "Programming";
    case TcppCategory::Algorithms: return "Algorithms";
  }
  return "?";
}

const Curriculum& Curriculum::cs31() {
  static const Curriculum kCourse = build_cs31();
  return kCourse;
}

std::vector<std::string> Curriculum::topics_in(TcppCategory category) const {
  std::vector<std::string> names;
  for (const TcppTopic& t : topics_) {
    if (t.category == category) names.push_back(t.name);
  }
  return names;
}

const TcppTopic& Curriculum::topic(const std::string& name) const {
  for (const TcppTopic& t : topics_) {
    if (t.name == name) return t;
  }
  throw Error("unknown TCPP topic '" + name + "'");
}

std::vector<std::string> Curriculum::covering_modules(const std::string& topic) const {
  std::vector<std::string> out;
  for (const CourseModule& m : modules_) {
    for (const std::string& t : m.topics) {
      if (t == topic) {
        out.push_back(m.name);
        break;
      }
    }
  }
  return out;
}

std::vector<int> Curriculum::covering_labs(const std::string& topic) const {
  std::vector<int> out;
  for (const LabAssignment& lab : labs_) {
    for (const std::string& t : lab.topics) {
      if (t == topic) {
        out.push_back(lab.number);
        break;
      }
    }
  }
  return out;
}

std::vector<std::string> Curriculum::uncovered_topics() const {
  std::vector<std::string> out;
  for (const TcppTopic& t : topics_) {
    if (covering_modules(t.name).empty()) out.push_back(t.name);
  }
  return out;
}

std::string Curriculum::render_table1() const {
  std::ostringstream out;
  out << "Table I: Main TCPP topics covered in CS 31\n";
  out << "------------------------------------------\n";
  for (const TcppCategory c : {TcppCategory::Pervasive, TcppCategory::Architecture,
                               TcppCategory::Programming, TcppCategory::Algorithms}) {
    out << category_name(c) << ": ";
    bool first = true;
    for (const std::string& name : topics_in(c)) {
      if (!first) out << ", ";
      out << name;
      first = false;
    }
    out << '\n';
  }
  return out.str();
}

Curriculum Curriculum::build_cs31() {
  Curriculum course;

  struct Raw {
    const char* name;
    TcppCategory cat;
    Emphasis emph;
  };
  // Table I of the paper, with emphasis weights taken from the paper's
  // narrative (e.g. "memory hierarchy, C programming, and some of the
  // fundamentals of shared memory programming including race conditions,
  // synchronization, and pthread programming" are emphasized heavily).
  const Raw raw_topics[] = {
      // Pervasive
      {"concurrency", TcppCategory::Pervasive, Emphasis::Emphasize},
      {"asynchrony", TcppCategory::Pervasive, Emphasis::Cover},
      {"locality", TcppCategory::Pervasive, Emphasis::Emphasize},
      {"performance", TcppCategory::Pervasive, Emphasis::Emphasize},
      // Architecture
      {"multicore", TcppCategory::Architecture, Emphasis::Cover},
      {"caching", TcppCategory::Architecture, Emphasis::Emphasize},
      {"latency", TcppCategory::Architecture, Emphasis::Cover},
      {"bandwidth", TcppCategory::Architecture, Emphasis::Mention},
      {"atomicity", TcppCategory::Architecture, Emphasis::Cover},
      {"consistency", TcppCategory::Architecture, Emphasis::Mention},
      {"coherency", TcppCategory::Architecture, Emphasis::Mention},
      {"pipelining", TcppCategory::Architecture, Emphasis::Cover},
      {"instruction execution", TcppCategory::Architecture, Emphasis::Emphasize},
      {"memory hierarchy", TcppCategory::Architecture, Emphasis::Emphasize},
      {"multithreading", TcppCategory::Architecture, Emphasis::Emphasize},
      {"buses", TcppCategory::Architecture, Emphasis::Mention},
      {"process ID", TcppCategory::Architecture, Emphasis::Cover},
      {"interrupts", TcppCategory::Architecture, Emphasis::Cover},
      // Programming
      {"shared memory parallelization", TcppCategory::Programming, Emphasis::Emphasize},
      {"pthreads", TcppCategory::Programming, Emphasis::Emphasize},
      {"critical sections", TcppCategory::Programming, Emphasis::Emphasize},
      {"producer-consumer", TcppCategory::Programming, Emphasis::Cover},
      {"performance improvement", TcppCategory::Programming, Emphasis::Cover},
      {"synchronization", TcppCategory::Programming, Emphasis::Emphasize},
      {"deadlock", TcppCategory::Programming, Emphasis::Cover},
      {"race conditions", TcppCategory::Programming, Emphasis::Emphasize},
      {"memory data layout", TcppCategory::Programming, Emphasis::Emphasize},
      {"spatial and temporal locality", TcppCategory::Programming, Emphasis::Emphasize},
      {"signals", TcppCategory::Programming, Emphasis::Cover},
      // Algorithms
      {"dependencies", TcppCategory::Algorithms, Emphasis::Cover},
      {"space/memory", TcppCategory::Algorithms, Emphasis::Cover},
      {"speedup", TcppCategory::Algorithms, Emphasis::Emphasize},
      {"Amdahl's Law", TcppCategory::Algorithms, Emphasis::Mention},
      {"synchronization algorithms", TcppCategory::Algorithms, Emphasis::Cover},
      {"efficiency", TcppCategory::Algorithms, Emphasis::Cover},
  };
  for (const Raw& r : raw_topics) {
    course.topics_.push_back(TcppTopic{r.name, r.cat, r.emph});
  }

  course.modules_ = {
      {"Binary Representation", "bits",
       {"memory data layout", "performance"}},
      {"C Programming", "cstr",
       {"memory data layout", "space/memory"}},
      {"Architecture & Circuits", "logic",
       {"instruction execution", "multicore", "pipelining", "buses", "latency",
        "bandwidth", "performance"}},
      {"Assembly Programming", "isa",
       {"instruction execution", "memory data layout", "dependencies"}},
      {"Memory Hierarchy & Caching", "memhier",
       {"memory hierarchy", "caching", "locality", "spatial and temporal locality",
        "latency", "bandwidth", "consistency", "coherency", "performance"}},
      {"Operating Systems", "os",
       {"concurrency", "asynchrony", "process ID", "interrupts", "signals",
        "space/memory"}},
      {"Virtual Memory", "vm",
       {"memory hierarchy", "locality", "space/memory", "latency"}},
      {"Shared Memory Parallelism", "parallel",
       {"concurrency", "multithreading", "multicore", "shared memory parallelization",
        "pthreads", "critical sections", "producer-consumer", "synchronization",
        "synchronization algorithms", "deadlock", "race conditions", "atomicity",
        "speedup", "Amdahl's Law", "efficiency", "performance improvement",
        "dependencies"}},
  };

  course.labs_ = {
      {0, "Tools for CS 31", "shell::Shell", {}},
      {1, "Data Representation and Arithmetic", "bits::Word", {"memory data layout"}},
      {2, "C Programming Warm-up", "labs::bubble_sort", {"space/memory"}},
      {3, "Building an ALU Circuit", "logic::build_alu", {"instruction execution"}},
      {4, "C Pointers and Assembly Code", "isa::assemble / labs::compute_stats",
       {"instruction execution", "memory data layout"}},
      {5, "Binary Maze", "isa::Maze", {"instruction execution"}},
      {6, "Game of Life", "life::SerialLife", {"space/memory", "memory data layout"}},
      {7, "C String Library", "cstr", {"memory data layout"}},
      {8, "Command Parser Library", "shell::parse_command", {}},
      {9, "Unix Shell", "shell::Shell",
       {"process ID", "concurrency", "signals", "asynchrony"}},
      {10, "Parallel Game of Life", "life::ParallelLife",
       {"pthreads", "shared memory parallelization", "synchronization",
        "critical sections", "race conditions", "speedup", "multithreading",
        "concurrency", "dependencies", "efficiency"}},
  };

  course.homeworks_ = {
      {"C programming", {"memory data layout"}},
      {"Binary and arithmetic", {"memory data layout"}},
      {"Circuits", {"instruction execution"}},
      {"C pointers", {"memory data layout", "space/memory"}},
      {"Simple assembly", {"instruction execution"}},
      {"Advanced assembly", {"instruction execution", "memory data layout"}},
      {"Direct mapped caching", {"caching", "memory hierarchy", "locality"}},
      {"Set associative caching", {"caching", "spatial and temporal locality"}},
      {"Processes", {"process ID", "concurrency", "asynchrony"}},
      {"Virtual memory 1", {"memory hierarchy", "space/memory"}},
      {"Virtual memory 2", {"memory hierarchy", "concurrency"}},
      {"Threads", {"pthreads", "producer-consumer", "synchronization",
                   "critical sections"}},
  };

  // "In a typical course schedule, CS 31 starts with binary data
  // representation and then introduces C programming. Next, we introduce
  // computer architecture and assembly. We then provide an overview of
  // the memory hierarchy and the operating system. Finally, we cover
  // shared memory parallelism, pthreads, and synchronization."
  course.schedule_ = {
      {1, "Binary Representation", 0, ""},
      {2, "Binary Representation", 1, "Binary and arithmetic"},
      {3, "C Programming", 2, "C programming"},
      {4, "Architecture & Circuits", -1, "Circuits"},
      {5, "Architecture & Circuits", 3, "C pointers"},
      {6, "Assembly Programming", 4, "Simple assembly"},
      {7, "Assembly Programming", 5, "Advanced assembly"},
      {8, "Memory Hierarchy & Caching", 6, "Direct mapped caching"},
      {9, "Memory Hierarchy & Caching", 7, "Set associative caching"},
      {10, "Operating Systems", 8, "Processes"},
      {11, "Virtual Memory", 9, "Virtual memory 1"},
      {12, "Virtual Memory", -1, "Virtual memory 2"},
      {13, "Shared Memory Parallelism", -1, "Threads"},
      {14, "Shared Memory Parallelism", 10, ""},
  };

  return course;
}

}  // namespace cs31::core
