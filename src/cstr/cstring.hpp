// From-scratch reimplementation of the C string library (CS 31 Lab 7,
// "C String Library"): the pointer-walking implementations of strlen,
// strcpy, strcat, strcmp, strchr, strstr, strspn, strtok_r and friends
// that students write and test. Buffer-management contracts match the
// C library exactly (NUL termination, caller-provided storage), with
// cs31::Error thrown only for null pointers — the case C leaves as
// undefined behaviour and the course leaves as a crash.
#pragma once

#include <cstddef>
#include <memory>

namespace cs31::cstr {

/// strlen: characters before the terminating NUL.
[[nodiscard]] std::size_t str_length(const char* s);

/// strcpy: copy src (including NUL) into dst; returns dst. dst must
/// have room — the classic C contract the course discusses at length.
char* str_copy(char* dst, const char* src);

/// strncpy: copy at most n chars; pads with NULs to length n when src
/// is shorter (the real, surprising strncpy semantics); NOT
/// NUL-terminated when src is longer than n.
char* str_ncopy(char* dst, const char* src, std::size_t n);

/// strcat / strncat. strncat always NUL-terminates (appending at most
/// n chars), unlike strncpy — a favorite exam question.
char* str_concat(char* dst, const char* src);
char* str_nconcat(char* dst, const char* src, std::size_t n);

/// strcmp / strncmp: <0, 0, >0 with unsigned char comparison.
[[nodiscard]] int str_compare(const char* a, const char* b);
[[nodiscard]] int str_ncompare(const char* a, const char* b, std::size_t n);

/// strchr / strrchr: first/last occurrence of c (which may be '\0').
[[nodiscard]] const char* str_find_char(const char* s, char c);
[[nodiscard]] const char* str_rfind_char(const char* s, char c);

/// strstr: first occurrence of needle in haystack ("" matches at start).
[[nodiscard]] const char* str_find(const char* haystack, const char* needle);

/// strspn / strcspn: length of the initial run of characters that are
/// (resp. are not) in `accept`/`reject`.
[[nodiscard]] std::size_t str_span(const char* s, const char* accept);
[[nodiscard]] std::size_t str_cspan(const char* s, const char* reject);

/// strtok_r: destructive tokenization with caller-held state. First
/// call passes the string; later calls pass nullptr. Returns nullptr
/// when no tokens remain.
char* str_token(char* s, const char* delims, char** save_ptr);

/// strdup, returned as owning storage (the kit's RAII stand-in for
/// malloc'd memory).
[[nodiscard]] std::unique_ptr<char[]> str_duplicate(const char* s);

}  // namespace cs31::cstr
