#include "cstr/cstring.hpp"

#include "common/error.hpp"

namespace cs31::cstr {

namespace {
void check(const void* p, const char* what) {
  require(p != nullptr, std::string(what) + " received a null pointer");
}
}  // namespace

std::size_t str_length(const char* s) {
  check(s, "str_length");
  const char* p = s;
  while (*p != '\0') ++p;
  return static_cast<std::size_t>(p - s);
}

char* str_copy(char* dst, const char* src) {
  check(dst, "str_copy"); check(src, "str_copy");
  char* out = dst;
  while ((*dst++ = *src++) != '\0') {
  }
  return out;
}

char* str_ncopy(char* dst, const char* src, std::size_t n) {
  check(dst, "str_ncopy"); check(src, "str_ncopy");
  char* out = dst;
  std::size_t i = 0;
  for (; i < n && src[i] != '\0'; ++i) dst[i] = src[i];
  for (; i < n; ++i) dst[i] = '\0';  // the strncpy padding rule
  return out;
}

char* str_concat(char* dst, const char* src) {
  check(dst, "str_concat"); check(src, "str_concat");
  str_copy(dst + str_length(dst), src);
  return dst;
}

char* str_nconcat(char* dst, const char* src, std::size_t n) {
  check(dst, "str_nconcat"); check(src, "str_nconcat");
  char* p = dst + str_length(dst);
  std::size_t i = 0;
  for (; i < n && src[i] != '\0'; ++i) p[i] = src[i];
  p[i] = '\0';  // strncat always terminates
  return dst;
}

int str_compare(const char* a, const char* b) {
  check(a, "str_compare"); check(b, "str_compare");
  while (*a != '\0' && *a == *b) { ++a; ++b; }
  return static_cast<unsigned char>(*a) - static_cast<unsigned char>(*b);
}

int str_ncompare(const char* a, const char* b, std::size_t n) {
  check(a, "str_ncompare"); check(b, "str_ncompare");
  for (std::size_t i = 0; i < n; ++i) {
    const unsigned char ca = static_cast<unsigned char>(a[i]);
    const unsigned char cb = static_cast<unsigned char>(b[i]);
    if (ca != cb) return ca - cb;
    if (ca == '\0') return 0;
  }
  return 0;
}

const char* str_find_char(const char* s, char c) {
  check(s, "str_find_char");
  for (;; ++s) {
    if (*s == c) return s;
    if (*s == '\0') return nullptr;
  }
}

const char* str_rfind_char(const char* s, char c) {
  check(s, "str_rfind_char");
  const char* found = nullptr;
  for (;; ++s) {
    if (*s == c) found = s;
    if (*s == '\0') return found;
  }
}

const char* str_find(const char* haystack, const char* needle) {
  check(haystack, "str_find"); check(needle, "str_find");
  if (*needle == '\0') return haystack;
  for (; *haystack != '\0'; ++haystack) {
    const char* h = haystack;
    const char* n = needle;
    while (*h != '\0' && *n != '\0' && *h == *n) { ++h; ++n; }
    if (*n == '\0') return haystack;
  }
  return nullptr;
}

namespace {
bool in_set(char c, const char* set) {
  for (; *set != '\0'; ++set) {
    if (*set == c) return true;
  }
  return false;
}
}  // namespace

std::size_t str_span(const char* s, const char* accept) {
  check(s, "str_span"); check(accept, "str_span");
  std::size_t n = 0;
  while (s[n] != '\0' && in_set(s[n], accept)) ++n;
  return n;
}

std::size_t str_cspan(const char* s, const char* reject) {
  check(s, "str_cspan"); check(reject, "str_cspan");
  std::size_t n = 0;
  while (s[n] != '\0' && !in_set(s[n], reject)) ++n;
  return n;
}

char* str_token(char* s, const char* delims, char** save_ptr) {
  check(delims, "str_token");
  check(save_ptr, "str_token");
  char* start = s != nullptr ? s : *save_ptr;
  if (start == nullptr) return nullptr;
  start += str_span(start, delims);  // skip leading delimiters
  if (*start == '\0') {
    *save_ptr = nullptr;
    return nullptr;
  }
  char* end = start + str_cspan(start, delims);
  if (*end == '\0') {
    *save_ptr = nullptr;
  } else {
    *end = '\0';
    *save_ptr = end + 1;
  }
  return start;
}

std::unique_ptr<char[]> str_duplicate(const char* s) {
  check(s, "str_duplicate");
  const std::size_t n = str_length(s) + 1;
  auto out = std::make_unique<char[]>(n);
  str_copy(out.get(), s);
  return out;
}

}  // namespace cs31::cstr
