#include "labs/sorting.hpp"

#include <algorithm>
#include <vector>

#include "common/error.hpp"
#include "parallel/threads.hpp"

namespace cs31::labs {

void bubble_sort(std::span<int> data) {
  if (data.size() < 2) return;
  for (std::size_t pass = data.size() - 1; pass > 0; --pass) {
    bool swapped = false;
    for (std::size_t i = 0; i < pass; ++i) {
      if (data[i] > data[i + 1]) {
        std::swap(data[i], data[i + 1]);
        swapped = true;
      }
    }
    if (!swapped) return;
  }
}

void insertion_sort(std::span<int> data) {
  for (std::size_t i = 1; i < data.size(); ++i) {
    const int key = data[i];
    std::size_t j = i;
    while (j > 0 && data[j - 1] > key) {
      data[j] = data[j - 1];
      --j;
    }
    data[j] = key;
  }
}

void selection_sort(std::span<int> data) {
  if (data.empty()) return;
  for (std::size_t i = 0; i + 1 < data.size(); ++i) {
    std::size_t min = i;
    for (std::size_t j = i + 1; j < data.size(); ++j) {
      if (data[j] < data[min]) min = j;
    }
    std::swap(data[i], data[min]);
  }
}

bool is_sorted(std::span<const int> data) {
  for (std::size_t i = 1; i < data.size(); ++i) {
    if (data[i - 1] > data[i]) return false;
  }
  return true;
}

namespace {

void merge_halves(std::span<int> data, std::size_t mid, std::vector<int>& scratch) {
  scratch.assign(data.begin(), data.end());
  std::size_t a = 0, b = mid, out = 0;
  while (a < mid && b < data.size()) {
    data[out++] = scratch[a] <= scratch[b] ? scratch[a++] : scratch[b++];
  }
  while (a < mid) data[out++] = scratch[a++];
  while (b < data.size()) data[out++] = scratch[b++];
}

void serial_merge_sort(std::span<int> data, std::size_t cutoff, std::vector<int>& scratch) {
  if (data.size() <= cutoff) {
    insertion_sort(data);
    return;
  }
  const std::size_t mid = data.size() / 2;
  serial_merge_sort(data.first(mid), cutoff, scratch);
  serial_merge_sort(data.subspan(mid), cutoff, scratch);
  merge_halves(data, mid, scratch);
}

}  // namespace

void parallel_merge_sort(std::span<int> data, unsigned threads, std::size_t cutoff) {
  require(threads >= 1, "need at least one thread");
  if (cutoff < 1) cutoff = 1;
  if (threads == 1 || data.size() <= cutoff) {
    std::vector<int> scratch;
    serial_merge_sort(data, cutoff, scratch);
    return;
  }

  // Phase 1: each thread sorts its block.
  const std::vector<parallel::Range> blocks = parallel::block_partition(data.size(), threads);
  parallel::parallel_for(data.size(), threads, [&](parallel::Range r, std::size_t) {
    std::vector<int> scratch;
    serial_merge_sort(data.subspan(r.begin, r.size()), cutoff, scratch);
  });

  // Phase 2: merge the sorted blocks pairwise (serial tree merge; the
  // lab's point is the parallel phase-1 scan).
  std::vector<parallel::Range> runs = blocks;
  std::vector<int> scratch;
  while (runs.size() > 1) {
    std::vector<parallel::Range> next;
    for (std::size_t i = 0; i + 1 < runs.size(); i += 2) {
      const parallel::Range merged{runs[i].begin, runs[i + 1].end};
      merge_halves(data.subspan(merged.begin, merged.size()),
                   runs[i].end - runs[i].begin, scratch);
      next.push_back(merged);
    }
    if (runs.size() % 2 == 1) next.push_back(runs.back());
    runs = std::move(next);
  }
}

void fill_random(std::span<int> data, std::uint32_t seed) {
  std::uint32_t state = seed | 1u;
  for (int& v : data) {
    state = state * 1664525u + 1013904223u;
    v = static_cast<int>(state >> 4) % 100000;
  }
}

}  // namespace cs31::labs
