// Lab 2, "C Programming Warm-up": the O(N^2) sorting algorithms students
// bring from CS1, implemented over std::span the way the lab's C code
// works over int arrays — plus a parallel merge sort used by the
// extension benches to contrast algorithmic and parallel speedup.
#pragma once

#include <cstdint>
#include <span>

namespace cs31::labs {

/// In-place bubble sort with the early-exit optimization.
void bubble_sort(std::span<int> data);

/// In-place insertion sort.
void insertion_sort(std::span<int> data);

/// In-place selection sort.
void selection_sort(std::span<int> data);

/// Is the span nondecreasing?
[[nodiscard]] bool is_sorted(std::span<const int> data);

/// Fork-join parallel merge sort over `threads` real threads (block
/// partition, local insertion sort below `cutoff`, pairwise merges).
/// Throws cs31::Error when threads == 0.
void parallel_merge_sort(std::span<int> data, unsigned threads, std::size_t cutoff = 32);

/// Deterministic test data.
void fill_random(std::span<int> data, std::uint32_t seed);

}  // namespace cs31::labs
