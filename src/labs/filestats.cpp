#include "labs/filestats.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"

namespace cs31::labs {

Stats compute_stats(const std::vector<double>& values) {
  require(!values.empty(), "statistics need at least one value");
  Stats s;
  s.count = values.size();
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  s.min = sorted.front();
  s.max = sorted.back();
  double sum = 0;
  for (const double v : sorted) sum += v;
  s.mean = sum / static_cast<double>(sorted.size());
  const std::size_t mid = sorted.size() / 2;
  s.median = sorted.size() % 2 == 1 ? sorted[mid] : (sorted[mid - 1] + sorted[mid]) / 2.0;
  return s;
}

std::vector<double> parse_values(const std::string& text) {
  std::istringstream in(text);
  std::size_t count = 0;
  require(static_cast<bool>(in >> count), "stats file: missing count");
  std::vector<double> values;
  values.reserve(count);
  double v = 0;
  while (in >> v) values.push_back(v);
  require(values.size() == count,
          "stats file: expected " + std::to_string(count) + " values, found " +
              std::to_string(values.size()));
  return values;
}

Stats stats_from_text(const std::string& text) { return compute_stats(parse_values(text)); }

}  // namespace cs31::labs
