// Lab 4 part 1, "C Pointers": compute basic statistics (mean, median,
// max, min) over input files holding arrays of unknown length — the
// exercise that forces dynamic allocation and pointer passing. The file
// format matches the lab: a count line followed by whitespace-separated
// values.
#pragma once

#include <string>
#include <vector>

namespace cs31::labs {

struct Stats {
  std::size_t count = 0;
  double mean = 0;
  double median = 0;
  double min = 0;
  double max = 0;
};

/// Statistics over an in-memory series. Throws cs31::Error when empty.
[[nodiscard]] Stats compute_stats(const std::vector<double>& values);

/// Parse the lab's file format ("N\nv1 v2 ... vN"). Throws cs31::Error
/// on malformed input or a count mismatch.
[[nodiscard]] std::vector<double> parse_values(const std::string& text);

/// Convenience: parse then compute.
[[nodiscard]] Stats stats_from_text(const std::string& text);

}  // namespace cs31::labs
