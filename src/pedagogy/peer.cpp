#include "pedagogy/peer.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace cs31::pedagogy {

double PollResult::normalized_gain() const {
  const double pre = first_rate();
  const double post = second_rate();
  if (pre >= 1.0) return 0.0;
  return (post - pre) / (1.0 - pre);
}

std::vector<ClickerQuestion> question_bank(const core::Curriculum& course,
                                           unsigned per_topic) {
  require(per_topic >= 1, "need at least one question per topic");
  std::vector<ClickerQuestion> bank;
  for (const core::TcppTopic& topic : course.topics()) {
    for (unsigned k = 0; k < per_topic; ++k) {
      ClickerQuestion q;
      q.topic = topic.name;
      q.emphasis = topic.emphasis;
      q.prompt = "Concept check #" + std::to_string(k + 1) + " on " + topic.name;
      bank.push_back(std::move(q));
    }
  }
  require(!bank.empty(), "curriculum has no topics");
  return bank;
}

namespace {

struct Rng {
  std::uint32_t state;
  double uniform() {
    state = state * 1664525u + 1013904223u;
    return static_cast<double>(state >> 8) / 16777216.0;
  }
};

}  // namespace

std::vector<PollResult> run_session(const std::vector<ClickerQuestion>& bank,
                                    const SessionConfig& config) {
  require(!bank.empty(), "empty question bank");
  require(config.students >= 1, "need at least one student");
  require(config.group_size >= 1, "need a nonzero group size");
  require(config.discussion_gain >= 0.0 && config.discussion_gain <= 1.0,
          "discussion gain must be in [0, 1]");

  Rng rng{config.seed | 1u};

  // Per-student ability in [0,1), fixed for the session.
  std::vector<double> ability(config.students);
  for (double& a : ability) a = rng.uniform();

  std::vector<PollResult> results;
  results.reserve(bank.size());

  for (const ClickerQuestion& q : bank) {
    // First-vote correctness: ability scaled by how hard the course
    // leans on the topic; a guessing floor of 1/options.
    const double emphasis_boost = 0.2 * static_cast<double>(static_cast<int>(q.emphasis));
    const double guess_floor = 1.0 / static_cast<double>(q.options);

    PollResult poll;
    poll.topic = q.topic;
    poll.students = config.students;
    std::vector<bool> correct(config.students);
    for (unsigned s = 0; s < config.students; ++s) {
      const double p = std::clamp(0.15 + emphasis_boost * (0.5 + ability[s]),
                                  guess_floor, 0.98);
      correct[s] = rng.uniform() < p;
      if (correct[s]) ++poll.first_correct;
    }

    // Small-group discussion: a wrong student flips with probability
    // discussion_gain if at least one group-mate voted correctly —
    // the mechanism behind peer instruction's reliable second-round
    // improvement (correct students essentially never flip to wrong).
    for (unsigned g = 0; g * config.group_size < config.students; ++g) {
      const unsigned begin = g * config.group_size;
      const unsigned end = std::min<unsigned>(begin + config.group_size, config.students);
      bool someone_right = false;
      for (unsigned s = begin; s < end; ++s) someone_right = someone_right || correct[s];
      for (unsigned s = begin; s < end; ++s) {
        if (correct[s]) {
          ++poll.second_correct;
        } else if (someone_right && rng.uniform() < config.discussion_gain) {
          ++poll.second_correct;
        }
      }
    }
    results.push_back(poll);
  }
  return results;
}

SessionSummary summarize(const std::vector<PollResult>& results) {
  require(!results.empty(), "no polls to summarize");
  SessionSummary s;
  for (const PollResult& r : results) {
    s.mean_first_rate += r.first_rate();
    s.mean_second_rate += r.second_rate();
    s.mean_normalized_gain += r.normalized_gain();
  }
  const double n = static_cast<double>(results.size());
  s.mean_first_rate /= n;
  s.mean_second_rate /= n;
  s.mean_normalized_gain /= n;
  return s;
}

}  // namespace cs31::pedagogy
