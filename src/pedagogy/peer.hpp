// Peer-instruction model (paper §II "Course Structure": "We adopt the
// peer instruction teaching model and use student clicker devices to
// poll the class" — individual vote, small-group discussion, second
// vote, whole-class discussion). This module models that two-round
// protocol quantitatively: a question bank tied to the curriculum's
// TCPP topics, a cohort of students with per-topic mastery, and the
// standard peer-instruction improvement dynamic where discussion lifts
// second-vote correctness in proportion to how many peers already know
// the answer.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/curriculum.hpp"

namespace cs31::pedagogy {

/// One clicker question.
struct ClickerQuestion {
  std::string topic;       ///< TCPP topic it drills
  std::string prompt;
  unsigned options = 4;    ///< answer choices (1 correct)
  core::Emphasis emphasis = core::Emphasis::Cover;
};

/// Build a question bank covering every topic the given modules teach.
/// Throws cs31::Error when the curriculum has no matching topics.
[[nodiscard]] std::vector<ClickerQuestion> question_bank(const core::Curriculum& course,
                                                         unsigned per_topic = 1);

/// Outcome of one question's two-round poll.
struct PollResult {
  std::string topic;
  unsigned students = 0;
  unsigned first_correct = 0;   ///< individual votes
  unsigned second_correct = 0;  ///< after small-group discussion

  [[nodiscard]] double first_rate() const {
    return students == 0 ? 0.0 : static_cast<double>(first_correct) / students;
  }
  [[nodiscard]] double second_rate() const {
    return students == 0 ? 0.0 : static_cast<double>(second_correct) / students;
  }
  /// Hake-style normalized gain: (post - pre) / (1 - pre), 0 when pre=1.
  [[nodiscard]] double normalized_gain() const;
};

/// Session configuration.
struct SessionConfig {
  unsigned students = 60;       ///< the paper's class size
  unsigned group_size = 3;      ///< "discuss the question in small groups"
  double discussion_gain = 0.8; ///< chance a wrong student flips when a
                                ///  group-mate has the right answer
  std::uint32_t seed = 31;
};

/// Simulate a class session over the question bank. Deterministic per
/// seed. Throws cs31::Error on an empty bank, zero students, or a group
/// size of zero.
[[nodiscard]] std::vector<PollResult> run_session(const std::vector<ClickerQuestion>& bank,
                                                  const SessionConfig& config = {});

/// Aggregate view of a session.
struct SessionSummary {
  double mean_first_rate = 0;
  double mean_second_rate = 0;
  double mean_normalized_gain = 0;
};
[[nodiscard]] SessionSummary summarize(const std::vector<PollResult>& results);

}  // namespace cs31::pedagogy
