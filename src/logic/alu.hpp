// The Lab 3 ALU: an eight-operation, five-status-flag arithmetic/logic
// unit assembled entirely from Circuit gates via the component library —
// the capstone of CS 31's circuits module and the execution core reused
// by the mini-CPU.
#pragma once

#include <cstdint>

#include "logic/circuit.hpp"

namespace cs31::logic {

/// The eight ALU operations, encoded in the 3-bit opcode bus.
enum class AluOp : unsigned {
  Add = 0,   ///< a + b
  Sub = 1,   ///< a - b (a + ~b + 1)
  And = 2,   ///< a & b
  Or = 3,    ///< a | b
  Xor = 4,   ///< a ^ b
  Not = 5,   ///< ~a
  Shl = 6,   ///< a << 1 (bit shifted out feeds the carry flag)
  Sra = 7,   ///< a >> 1 arithmetic (sign bit replicated)
};

/// A constructed ALU: external input buses and output nets inside a
/// caller-owned Circuit.
struct Alu {
  Bus a;       ///< external operand inputs
  Bus b;       ///< external operand inputs
  Bus op;      ///< external 3-bit opcode inputs
  Bus result;  ///< result bus, same width as operands

  // The five status flags of the Lab 3 assignment.
  Wire zero;      ///< result is all zeros
  Wire negative;  ///< sign bit of the result
  Wire carry;     ///< adder carry-out / borrow / shifted-out bit
  Wire overflow;  ///< signed overflow of add/sub (0 for other ops)
  Wire parity;    ///< even parity: 1 when the result has an even 1-count
};

/// Build a `width`-bit ALU into `c`. Throws cs31::Error for widths
/// outside [2, 64].
[[nodiscard]] Alu build_alu(Circuit& c, int width);

/// Drive the ALU inputs, evaluate, and read back the result and flags —
/// the harness students use to test their Lab 3 circuit.
struct AluReading {
  std::uint64_t result = 0;
  bool zero = false, negative = false, carry = false, overflow = false, parity = false;
};
[[nodiscard]] AluReading run_alu(Circuit& c, const Alu& alu, AluOp op, std::uint64_t a,
                                 std::uint64_t b);

}  // namespace cs31::logic
