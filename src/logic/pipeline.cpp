#include "logic/pipeline.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace cs31::logic {

double StageLatencies::max_stage() const {
  return std::max({fetch_ps, decode_ps, execute_ps, memory_ps, writeback_ps});
}

TimingResult time_sequential(const std::vector<ExecRecord>& trace,
                             const StageLatencies& stages) {
  TimingResult r;
  r.instructions = trace.size();
  r.cycles = trace.size();  // one long cycle per instruction
  r.cycle_time_ps = stages.total();
  return r;
}

TimingResult time_pipelined(const std::vector<ExecRecord>& trace,
                            const PipelineConfig& config) {
  require(config.branch_penalty >= 0, "branch penalty cannot be negative");
  TimingResult r;
  r.instructions = trace.size();
  r.cycle_time_ps = config.stages.max_stage();
  if (trace.empty()) return r;

  // Cycle in which each instruction's EX stage runs; results are
  // available at end of EX (ALU ops, forwarded) or end of MEM (loads).
  // Without forwarding, results are only readable after writeback.
  std::size_t cycle = 0;  // cycle when instruction i enters EX if no hazard
  std::size_t total_stalls = 0;
  std::size_t total_flushes = 0;

  // ready_at[reg] = first cycle in which a dependent's EX may run.
  std::vector<std::size_t> ready_at(MiniCpu::kNumRegs, 0);

  for (std::size_t i = 0; i < trace.size(); ++i) {
    const ExecRecord& rec = trace[i];
    // Earliest EX cycle respecting source operands.
    std::size_t ex = cycle;
    for (unsigned src : rec.sources) {
      ex = std::max(ex, ready_at[src]);
    }
    const std::size_t stall = ex - cycle;
    total_stalls += stall;

    if (rec.wrote_reg) {
      std::size_t avail;
      if (config.forwarding) {
        // ALU results forward from EX/MEM; loads forward from MEM/WB
        // (the classic one-bubble load-use delay).
        avail = rec.is_load ? ex + 2 : ex + 1;
      } else {
        // Reader must wait for writeback + register read (2 stages after
        // MEM), the textbook three-bubble worst case.
        avail = ex + 3;
      }
      ready_at[rec.dest] = avail;
    }

    cycle = ex + 1;  // next instruction's default EX slot

    if (rec.is_branch && rec.taken) {
      cycle += static_cast<std::size_t>(config.branch_penalty);
      total_flushes += static_cast<std::size_t>(config.branch_penalty);
    }
  }

  // Total cycles: last EX slot + drain of MEM and WB + initial fill of
  // IF and ID (2 cycles before the first EX).
  r.cycles = cycle + 2 + 2;
  r.stall_cycles = total_stalls;
  r.flush_cycles = total_flushes;
  return r;
}

}  // namespace cs31::logic
