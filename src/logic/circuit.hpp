// Gate-level digital circuit simulator — the kit's stand-in for Logisim
// (CS 31 Lab 3, "Building an ALU Circuit", and the "Circuits" homework).
//
// A Circuit is a netlist of nodes: external inputs, constants, and gates.
// Evaluation relaxes node values to a fixed point, which supports the
// feedback loops in R-S and D latches exactly the way Logisim's
// propagation does. Buses are just ordered collections of wires, letting
// students compose multi-bit components (adders, MUXes, the ALU) from
// single-bit pieces — the abstraction-stacking the course stresses.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace cs31::logic {

/// A wire is the output net of one node, identified by index.
struct Wire {
  std::size_t id = 0;
  friend bool operator==(const Wire&, const Wire&) = default;
};

/// A bus is an ordered set of wires, least-significant bit first.
using Bus = std::vector<Wire>;

/// Primitive gate kinds available to circuit builders.
enum class GateKind { And, Or, Not, Nand, Nor, Xor, Xnor };

/// A mutable netlist plus its current simulation state.
class Circuit {
 public:
  /// Add an external input pin (initial value false). `name` is used in
  /// diagnostics and must be unique among inputs; pass "" for anonymous.
  Wire input(const std::string& name = "");

  /// Add a constant-valued node.
  Wire constant(bool value);

  /// Add a two-input gate. Throws cs31::Error for GateKind::Not.
  Wire gate(GateKind kind, Wire a, Wire b);

  /// Add a NOT gate.
  Wire gate_not(Wire a);

  /// Declare a wire whose driver will be connected later with bind().
  /// This is how feedback loops (latches) are expressed: create the
  /// forward wire, use it as a gate operand, then bind it to the gate
  /// output that closes the loop.
  Wire forward();

  /// Connect a forward wire to its driver. Throws cs31::Error if `fwd`
  /// is not a forward wire or was already bound.
  void bind(Wire fwd, Wire driver);

  // Convenience spellings used heavily by the component builders.
  Wire and_(Wire a, Wire b) { return gate(GateKind::And, a, b); }
  Wire or_(Wire a, Wire b) { return gate(GateKind::Or, a, b); }
  Wire xor_(Wire a, Wire b) { return gate(GateKind::Xor, a, b); }
  Wire nand_(Wire a, Wire b) { return gate(GateKind::Nand, a, b); }
  Wire nor_(Wire a, Wire b) { return gate(GateKind::Nor, a, b); }
  Wire xnor_(Wire a, Wire b) { return gate(GateKind::Xnor, a, b); }
  Wire not_(Wire a) { return gate_not(a); }

  /// Set an external input's value (takes effect on the next evaluate()).
  void set(Wire input, bool value);

  /// Set each wire of a bus from the low bits of `value`.
  void set_bus(const Bus& bus, unsigned long long value);

  /// Propagate values to a fixed point. Throws cs31::Error if the
  /// circuit oscillates (e.g. a NOT gate feeding itself) instead of
  /// settling, mirroring Logisim's oscillation error.
  void evaluate();

  /// Value of a wire as of the last evaluate().
  [[nodiscard]] bool value(Wire w) const;

  /// Read a bus as an unsigned integer (bit 0 = bus[0]).
  [[nodiscard]] unsigned long long bus_value(const Bus& bus) const;

  /// Number of nodes of every kind (inputs + constants + gates).
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }

  /// Number of gate nodes only — the "cost" of a student's design.
  [[nodiscard]] std::size_t gate_count() const { return gate_count_; }

 private:
  enum class Kind { Input, Constant, Gate1, Gate2, Forward };
  struct Node {
    Kind kind;
    GateKind gate{};
    std::size_t a = 0, b = 0;  // operand node ids
    bool value = false;
    bool bound = false;  // Forward nodes: driver connected yet?
  };

  void check(Wire w) const;

  std::vector<Node> nodes_;
  std::size_t gate_count_ = 0;
};

/// Build an n-bit bus of fresh named inputs ("name0", "name1", ...).
[[nodiscard]] Bus input_bus(Circuit& c, int width, const std::string& name = "");

/// Truth-table helper for homework problems: evaluate `out` for every
/// combination of the given inputs; row i's input bits are the binary
/// digits of i (inputs[0] = least significant). Returns 2^n output bits.
[[nodiscard]] std::vector<bool> truth_table(Circuit& c, const std::vector<Wire>& inputs,
                                            Wire out);

}  // namespace cs31::logic
