// The "complete simple CPU" of CS 31 Lab 3 and the architecture lectures:
// a 16-bit von Neumann machine with eight registers, a program counter,
// an instruction register, and control logic that sequences the fetch /
// decode / execute / store cycle. Arithmetic runs through the gate-level
// Lab 3 ALU, so every ADD a student traces really flows through gates.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "logic/alu.hpp"
#include "logic/circuit.hpp"

namespace cs31::logic {

/// MiniCpu opcodes. Register format: op(4) rd(3) rs(3) rt(3) pad(3).
/// Immediate format: op(4) rd(3) imm(9, two's complement).
/// Branch format: op(4) rs(3) addr(9). Jump format: op(4) addr(12).
enum class Op : unsigned {
  Halt = 0,
  Add = 1, Sub = 2, And = 3, Or = 4, Xor = 5,
  Not = 6, Shl = 7, Sra = 8,
  LoadI = 9,   ///< rd = sign-extended imm9
  Load = 10,   ///< rd = mem[R[rs]]
  Store = 11,  ///< mem[R[rd]] = R[rs]
  Jmp = 12,    ///< pc = addr12
  Beqz = 13,   ///< if R[rs] == 0 then pc = addr9
  Mov = 14,    ///< rd = R[rs]
};

/// One decoded instruction, as the control unit sees it after the
/// decode stage.
struct Decoded {
  Op op = Op::Halt;
  unsigned rd = 0, rs = 0, rt = 0;
  std::int32_t imm = 0;     ///< sign-extended imm9
  unsigned addr = 0;        ///< jump/branch target
};

/// Encode helpers (the course's hand-assembly exercises).
[[nodiscard]] std::uint16_t encode_reg(Op op, unsigned rd, unsigned rs, unsigned rt);
[[nodiscard]] std::uint16_t encode_imm(Op op, unsigned rd, std::int32_t imm9);
[[nodiscard]] std::uint16_t encode_branch(Op op, unsigned rs, unsigned addr9);
[[nodiscard]] std::uint16_t encode_jump(unsigned addr12);

/// Decode one instruction word. Throws cs31::Error on an unknown opcode.
[[nodiscard]] Decoded decode(std::uint16_t word);

/// Render a decoded instruction in the course's assembly notation.
[[nodiscard]] std::string to_string(const Decoded& d);

/// What one executed instruction read and wrote — consumed by the
/// pipeline timing model (experiment E5) and by trace-reading homework.
struct ExecRecord {
  unsigned pc = 0;
  Decoded instr;
  bool wrote_reg = false;
  unsigned dest = 0;
  std::vector<unsigned> sources;
  bool is_load = false;
  bool is_branch = false;  ///< Jmp or Beqz
  bool taken = false;
};

/// The simple CPU. Word size 16 bits, 4096-word memory, registers R0..R7
/// (R0 is writable, unlike MIPS — the course's machine is simpler).
class MiniCpu {
 public:
  MiniCpu();

  /// Load a program at address 0 and reset pc/halt state (registers and
  /// the rest of memory keep their contents so experiments can stage
  /// data first). Throws if the program exceeds memory.
  void load_program(const std::vector<std::uint16_t>& program);

  /// Run one full fetch/decode/execute/store cycle. Returns false once
  /// halted. Throws cs31::Error on pc/memory out of range.
  bool step();

  /// Run until Halt or `max_steps` instructions; returns instructions
  /// executed. Throws cs31::Error when the limit is hit (runaway loop).
  std::size_t run(std::size_t max_steps = 100000);

  [[nodiscard]] bool halted() const { return halted_; }
  [[nodiscard]] unsigned pc() const { return pc_; }
  [[nodiscard]] std::uint16_t reg(unsigned r) const;
  void set_reg(unsigned r, std::uint16_t value);
  [[nodiscard]] std::uint16_t mem(unsigned addr) const;
  void set_mem(unsigned addr, std::uint16_t value);

  /// Flags latched from the last ALU operation (the condition codes).
  [[nodiscard]] AluReading last_alu() const { return last_alu_; }

  /// Trace of every instruction executed since load_program.
  [[nodiscard]] const std::vector<ExecRecord>& trace() const { return trace_; }

  static constexpr unsigned kMemWords = 4096;
  static constexpr unsigned kNumRegs = 8;

 private:
  Circuit circuit_;
  Alu alu_;
  std::vector<std::uint16_t> memory_;
  std::vector<std::uint16_t> regs_;
  unsigned pc_ = 0;
  bool halted_ = true;
  AluReading last_alu_;
  std::vector<ExecRecord> trace_;
};

/// A tiny structured assembler for MiniCpu programs, enough for the
/// examples and tests: each element is already an encoded word; this
/// helper assembles a "sum the array at `base`, length in R1" routine
/// used by several experiments.
[[nodiscard]] std::vector<std::uint16_t> sample_sum_program(unsigned base, unsigned count);

}  // namespace cs31::logic
