#include "logic/cpu.hpp"

#include <sstream>

#include "common/error.hpp"

namespace cs31::logic {

namespace {
void check_reg(unsigned r) { require(r < MiniCpu::kNumRegs, "register number out of range"); }
}  // namespace

std::uint16_t encode_reg(Op op, unsigned rd, unsigned rs, unsigned rt) {
  check_reg(rd); check_reg(rs); check_reg(rt);
  return static_cast<std::uint16_t>((static_cast<unsigned>(op) << 12) | (rd << 9) |
                                    (rs << 6) | (rt << 3));
}

std::uint16_t encode_imm(Op op, unsigned rd, std::int32_t imm9) {
  check_reg(rd);
  require(imm9 >= -256 && imm9 <= 255, "immediate out of 9-bit signed range");
  return static_cast<std::uint16_t>((static_cast<unsigned>(op) << 12) | (rd << 9) |
                                    (static_cast<unsigned>(imm9) & 0x1FFu));
}

std::uint16_t encode_branch(Op op, unsigned rs, unsigned addr9) {
  check_reg(rs);
  require(addr9 < 512, "branch target out of 9-bit range");
  return static_cast<std::uint16_t>((static_cast<unsigned>(op) << 12) | (rs << 9) | addr9);
}

std::uint16_t encode_jump(unsigned addr12) {
  require(addr12 < 4096, "jump target out of 12-bit range");
  return static_cast<std::uint16_t>((static_cast<unsigned>(Op::Jmp) << 12) | addr12);
}

Decoded decode(std::uint16_t word) {
  Decoded d;
  const unsigned opcode = word >> 12;
  require(opcode <= static_cast<unsigned>(Op::Mov), "unknown opcode " + std::to_string(opcode));
  d.op = static_cast<Op>(opcode);
  d.rd = (word >> 9) & 0x7u;
  d.rs = (word >> 6) & 0x7u;
  d.rt = (word >> 3) & 0x7u;
  const unsigned imm9 = word & 0x1FFu;
  d.imm = imm9 & 0x100u ? static_cast<std::int32_t>(imm9) - 512 : static_cast<std::int32_t>(imm9);
  d.addr = d.op == Op::Jmp ? (word & 0xFFFu) : imm9;
  return d;
}

std::string to_string(const Decoded& d) {
  std::ostringstream out;
  auto r = [](unsigned n) { return "R" + std::to_string(n); };
  switch (d.op) {
    case Op::Halt: out << "halt"; break;
    case Op::Add: out << "add " << r(d.rd) << ", " << r(d.rs) << ", " << r(d.rt); break;
    case Op::Sub: out << "sub " << r(d.rd) << ", " << r(d.rs) << ", " << r(d.rt); break;
    case Op::And: out << "and " << r(d.rd) << ", " << r(d.rs) << ", " << r(d.rt); break;
    case Op::Or: out << "or " << r(d.rd) << ", " << r(d.rs) << ", " << r(d.rt); break;
    case Op::Xor: out << "xor " << r(d.rd) << ", " << r(d.rs) << ", " << r(d.rt); break;
    case Op::Not: out << "not " << r(d.rd) << ", " << r(d.rs); break;
    case Op::Shl: out << "shl " << r(d.rd) << ", " << r(d.rs); break;
    case Op::Sra: out << "sra " << r(d.rd) << ", " << r(d.rs); break;
    case Op::LoadI: out << "loadi " << r(d.rd) << ", " << d.imm; break;
    case Op::Load: out << "load " << r(d.rd) << ", (" << r(d.rs) << ")"; break;
    case Op::Store: out << "store (" << r(d.rd) << "), " << r(d.rs); break;
    case Op::Jmp: out << "jmp " << d.addr; break;
    case Op::Beqz: out << "beqz " << r((d.rd)) << ", " << d.addr; break;
    case Op::Mov: out << "mov " << r(d.rd) << ", " << r(d.rs); break;
  }
  return out.str();
}

MiniCpu::MiniCpu()
    : alu_(build_alu(circuit_, 16)),
      memory_(kMemWords, 0),
      regs_(kNumRegs, 0) {}

void MiniCpu::load_program(const std::vector<std::uint16_t>& program) {
  require(program.size() <= kMemWords, "program larger than memory");
  for (std::size_t i = 0; i < program.size(); ++i) {
    memory_[i] = program[i];
  }
  pc_ = 0;
  halted_ = false;
  trace_.clear();
}

std::uint16_t MiniCpu::reg(unsigned r) const {
  check_reg(r);
  return regs_[r];
}

void MiniCpu::set_reg(unsigned r, std::uint16_t value) {
  check_reg(r);
  regs_[r] = value;
}

std::uint16_t MiniCpu::mem(unsigned addr) const {
  require(addr < kMemWords, "memory address out of range");
  return memory_[addr];
}

void MiniCpu::set_mem(unsigned addr, std::uint16_t value) {
  require(addr < kMemWords, "memory address out of range");
  memory_[addr] = value;
}

bool MiniCpu::step() {
  if (halted_) return false;
  require(pc_ < kMemWords, "pc out of range");

  // Fetch + decode.
  const std::uint16_t word = memory_[pc_];
  const Decoded d = decode(word);
  ExecRecord rec;
  rec.pc = pc_;
  rec.instr = d;
  unsigned next_pc = pc_ + 1;

  // Execute + store. Arithmetic goes through the gate-level ALU so the
  // latched condition flags are exactly the circuit's flag outputs.
  auto alu2 = [&](AluOp op, unsigned rd, unsigned rs, unsigned rt) {
    last_alu_ = run_alu(circuit_, alu_, op, regs_[rs], regs_[rt]);
    regs_[rd] = static_cast<std::uint16_t>(last_alu_.result);
    rec.wrote_reg = true;
    rec.dest = rd;
    rec.sources = {rs, rt};
  };
  auto alu1 = [&](AluOp op, unsigned rd, unsigned rs) {
    last_alu_ = run_alu(circuit_, alu_, op, regs_[rs], 0);
    regs_[rd] = static_cast<std::uint16_t>(last_alu_.result);
    rec.wrote_reg = true;
    rec.dest = rd;
    rec.sources = {rs};
  };

  switch (d.op) {
    case Op::Halt:
      halted_ = true;
      trace_.push_back(rec);
      return false;
    case Op::Add: alu2(AluOp::Add, d.rd, d.rs, d.rt); break;
    case Op::Sub: alu2(AluOp::Sub, d.rd, d.rs, d.rt); break;
    case Op::And: alu2(AluOp::And, d.rd, d.rs, d.rt); break;
    case Op::Or: alu2(AluOp::Or, d.rd, d.rs, d.rt); break;
    case Op::Xor: alu2(AluOp::Xor, d.rd, d.rs, d.rt); break;
    case Op::Not: alu1(AluOp::Not, d.rd, d.rs); break;
    case Op::Shl: alu1(AluOp::Shl, d.rd, d.rs); break;
    case Op::Sra: alu1(AluOp::Sra, d.rd, d.rs); break;
    case Op::LoadI:
      regs_[d.rd] = static_cast<std::uint16_t>(d.imm & 0xFFFF);
      rec.wrote_reg = true;
      rec.dest = d.rd;
      break;
    case Op::Load:
      require(regs_[d.rs] < kMemWords, "load address out of range");
      regs_[d.rd] = memory_[regs_[d.rs]];
      rec.wrote_reg = true;
      rec.dest = d.rd;
      rec.sources = {d.rs};
      rec.is_load = true;
      break;
    case Op::Store:
      require(regs_[d.rd] < kMemWords, "store address out of range");
      memory_[regs_[d.rd]] = regs_[d.rs];
      rec.sources = {d.rd, d.rs};
      break;
    case Op::Jmp:
      next_pc = d.addr;
      rec.is_branch = true;
      rec.taken = true;
      break;
    case Op::Beqz: {
      // The branch condition runs through the ALU: OR(rs, rs) sets the
      // zero flag exactly when the register is zero.
      last_alu_ = run_alu(circuit_, alu_, AluOp::Or, regs_[d.rd], regs_[d.rd]);
      rec.is_branch = true;
      rec.sources = {d.rd};
      if (last_alu_.zero) {
        next_pc = d.addr;
        rec.taken = true;
      }
      break;
    }
    case Op::Mov:
      regs_[d.rd] = regs_[d.rs];
      rec.wrote_reg = true;
      rec.dest = d.rd;
      rec.sources = {d.rs};
      break;
  }

  pc_ = next_pc;
  trace_.push_back(rec);
  return true;
}

std::size_t MiniCpu::run(std::size_t max_steps) {
  std::size_t steps = 0;
  while (!halted_) {
    require(steps < max_steps, "instruction limit exceeded (runaway program?)");
    step();
    ++steps;
  }
  return steps;
}

std::vector<std::uint16_t> sample_sum_program(unsigned base, unsigned count) {
  require(base + count <= MiniCpu::kMemWords, "array does not fit in memory");
  require(count < 256, "sample program supports < 256 elements");
  // R1 = base pointer, R2 = remaining count, R3 = running sum,
  // R4 = current element, R5 = constant 1.
  std::vector<std::uint16_t> p;
  p.push_back(encode_imm(Op::LoadI, 1, static_cast<std::int32_t>(base) & 0xFF));
  // Bases above 255 need a shift-and-or sequence; keep the sample simple.
  require(base <= 255, "sample program supports base <= 255");
  p.push_back(encode_imm(Op::LoadI, 2, static_cast<std::int32_t>(count)));
  p.push_back(encode_imm(Op::LoadI, 3, 0));
  p.push_back(encode_imm(Op::LoadI, 5, 1));
  const unsigned loop = static_cast<unsigned>(p.size());
  p.push_back(encode_branch(Op::Beqz, 2, loop + 6));  // while (R2 != 0)
  p.push_back(encode_reg(Op::Load, 4, 1, 0));         //   R4 = mem[R1]
  p.push_back(encode_reg(Op::Add, 3, 3, 4));          //   R3 += R4
  p.push_back(encode_reg(Op::Add, 1, 1, 5));          //   R1 += 1
  p.push_back(encode_reg(Op::Sub, 2, 2, 5));          //   R2 -= 1
  p.push_back(encode_jump(loop));
  p.push_back(encode_reg(Op::Halt, 0, 0, 0));
  return p;
}

}  // namespace cs31::logic
