// Instruction-pipeline timing model (CS 31's "pipelining makes efficient
// use of CPU circuitry resulting in an improved instructions per cycle
// rate", experiment E5).
//
// Compares a sequential CPU — one instruction occupies the whole datapath
// for all five stages — against a classic five-stage pipeline with
// optional forwarding, load-use interlocks, and control-hazard flushes.
// Works over the ExecRecord traces that MiniCpu emits, so the IPC numbers
// come from real executed programs.
#pragma once

#include <cstddef>
#include <vector>

#include "logic/cpu.hpp"

namespace cs31::logic {

/// Per-stage latencies in picoseconds. The sequential machine's cycle
/// time is their sum; the pipelined machine's is their maximum.
struct StageLatencies {
  double fetch_ps = 200;
  double decode_ps = 150;
  double execute_ps = 250;
  double memory_ps = 300;
  double writeback_ps = 100;

  [[nodiscard]] double total() const {
    return fetch_ps + decode_ps + execute_ps + memory_ps + writeback_ps;
  }
  [[nodiscard]] double max_stage() const;
};

/// Knobs for the pipelined machine.
struct PipelineConfig {
  StageLatencies stages;
  bool forwarding = true;     ///< EX/MEM -> EX bypass paths present
  int branch_penalty = 2;     ///< bubbles squashed after a taken branch
};

/// Timing result for one machine over one trace.
struct TimingResult {
  std::size_t instructions = 0;
  std::size_t cycles = 0;
  std::size_t stall_cycles = 0;  ///< data-hazard bubbles
  std::size_t flush_cycles = 0;  ///< control-hazard bubbles
  double cycle_time_ps = 0;
  [[nodiscard]] double time_ps() const { return static_cast<double>(cycles) * cycle_time_ps; }
  [[nodiscard]] double ipc() const {
    return cycles == 0 ? 0.0 : static_cast<double>(instructions) / static_cast<double>(cycles);
  }
};

/// Sequential (multicycle, non-overlapped) execution: 5 cycles per
/// instruction at the sum-of-stages cycle time... deliberately modeled
/// as the course presents it: each instruction takes one *long* cycle.
[[nodiscard]] TimingResult time_sequential(const std::vector<ExecRecord>& trace,
                                           const StageLatencies& stages);

/// Five-stage pipelined execution with hazards:
///  - RAW hazards stall until the producer's result is available
///    (1-cycle load-use bubble with forwarding; up to 2 bubbles without).
///  - Taken branches flush `branch_penalty` younger instructions.
[[nodiscard]] TimingResult time_pipelined(const std::vector<ExecRecord>& trace,
                                          const PipelineConfig& config);

}  // namespace cs31::logic
