// Standard combinational and storage components, each built structurally
// from Circuit gates — the exact progression of CS 31 Lab 3: small
// standalone circuits (sign extender, one-bit adder), then composition
// into larger units (ripple-carry adder, MUX, latches, registers).
#pragma once

#include "logic/circuit.hpp"

namespace cs31::logic {

/// Sum and carry-out of a 1-bit adder.
struct AdderBit {
  Wire sum;
  Wire carry;
};

/// Half adder: sum = a XOR b, carry = a AND b.
[[nodiscard]] AdderBit half_adder(Circuit& c, Wire a, Wire b);

/// Full adder built from two half adders plus an OR (the Lab 3 design).
[[nodiscard]] AdderBit full_adder(Circuit& c, Wire a, Wire b, Wire carry_in);

/// Result buses of a multi-bit ripple-carry adder.
struct RippleAdder {
  Bus sum;        ///< same width as the operands
  Wire carry_out; ///< carry out of the top bit
  Wire carry_into_msb;  ///< carry into the top bit (for overflow: cout XOR cin_msb)
};

/// Chain full adders into a ripple-carry adder. Operand buses must have
/// equal, nonzero width. Throws cs31::Error otherwise.
[[nodiscard]] RippleAdder ripple_carry_adder(Circuit& c, const Bus& a, const Bus& b,
                                             Wire carry_in);

/// Sign extender: replicate the top bit of `in` to produce `out_width`
/// wires (Lab 3's first standalone circuit). Throws when out_width is
/// smaller than the input width.
[[nodiscard]] Bus sign_extender(Circuit& c, const Bus& in, int out_width);

/// 2-to-1 multiplexer for one bit: out = sel ? b : a.
[[nodiscard]] Wire mux2(Circuit& c, Wire sel, Wire a, Wire b);

/// 2-to-1 multiplexer across equal-width buses.
[[nodiscard]] Bus mux2_bus(Circuit& c, Wire sel, const Bus& a, const Bus& b);

/// N-to-1 single-bit multiplexer from a binary select bus
/// (choices.size() must equal 1 << sel.size()).
[[nodiscard]] Wire mux_n(Circuit& c, const Bus& sel, const std::vector<Wire>& choices);

/// k-to-2^k decoder: exactly one output is high.
[[nodiscard]] std::vector<Wire> decoder(Circuit& c, const Bus& sel);

/// Cross-coupled NOR R-S latch. `q` holds state across evaluate() calls;
/// setting both set and reset simultaneously is the classic illegal input.
struct RsLatch {
  Wire set;    ///< external input: drive high to set Q
  Wire reset;  ///< external input: drive high to clear Q
  Wire q;
  Wire q_bar;
};
[[nodiscard]] RsLatch rs_latch(Circuit& c);

/// Gated D latch built around the R-S latch: when `enable` is high, Q
/// follows D; when low, Q holds.
struct DLatch {
  Wire d;       ///< external data input
  Wire enable;  ///< external gate input
  Wire q;
};
[[nodiscard]] DLatch d_latch(Circuit& c);

/// A multi-bit register: `width` D latches sharing one write-enable —
/// one entry of the Lab 3 register file.
struct Register {
  Bus d;        ///< external data inputs
  Wire enable;  ///< external shared write enable
  Bus q;
};
[[nodiscard]] Register register_n(Circuit& c, int width);

/// Register file: 2^(sel width) registers with one shared write port and
/// a read mux, completing the storage half of the Lab 3 CPU datapath.
struct RegisterFile {
  Bus write_data;   ///< external inputs
  Bus write_sel;    ///< external register-number inputs for writing
  Wire write_enable;
  Bus read_sel;     ///< external register-number inputs for reading
  Bus read_data;    ///< outputs
};
[[nodiscard]] RegisterFile register_file(Circuit& c, int width, int sel_bits);

}  // namespace cs31::logic
