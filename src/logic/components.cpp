#include "logic/components.hpp"

#include "common/error.hpp"

namespace cs31::logic {

AdderBit half_adder(Circuit& c, Wire a, Wire b) {
  return {c.xor_(a, b), c.and_(a, b)};
}

AdderBit full_adder(Circuit& c, Wire a, Wire b, Wire carry_in) {
  const AdderBit first = half_adder(c, a, b);
  const AdderBit second = half_adder(c, first.sum, carry_in);
  return {second.sum, c.or_(first.carry, second.carry)};
}

RippleAdder ripple_carry_adder(Circuit& c, const Bus& a, const Bus& b, Wire carry_in) {
  require(!a.empty() && a.size() == b.size(), "adder operands must be equal nonzero width");
  RippleAdder out;
  out.sum.reserve(a.size());
  Wire carry = carry_in;
  out.carry_into_msb = carry_in;  // correct when width == 1
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (i + 1 == a.size()) out.carry_into_msb = carry;
    const AdderBit bit = full_adder(c, a[i], b[i], carry);
    out.sum.push_back(bit.sum);
    carry = bit.carry;
  }
  out.carry_out = carry;
  return out;
}

Bus sign_extender(Circuit& c, const Bus& in, int out_width) {
  require(!in.empty(), "sign_extender requires a nonempty input");
  require(out_width >= static_cast<int>(in.size()), "sign_extender cannot narrow");
  Bus out = in;
  // Buffer the top bit through a pair of inverters so the output is a
  // distinct net, as a real extender component would present.
  const Wire top = c.not_(c.not_(in.back()));
  while (static_cast<int>(out.size()) < out_width) out.push_back(top);
  return out;
}

Wire mux2(Circuit& c, Wire sel, Wire a, Wire b) {
  const Wire nsel = c.not_(sel);
  return c.or_(c.and_(nsel, a), c.and_(sel, b));
}

Bus mux2_bus(Circuit& c, Wire sel, const Bus& a, const Bus& b) {
  require(a.size() == b.size(), "mux2_bus requires equal widths");
  Bus out;
  out.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out.push_back(mux2(c, sel, a[i], b[i]));
  return out;
}

Wire mux_n(Circuit& c, const Bus& sel, const std::vector<Wire>& choices) {
  require(choices.size() == (std::size_t{1} << sel.size()),
          "mux_n requires 2^sel choices");
  // Recursive halving: select within each half, then between halves.
  if (sel.size() == 1) return mux2(c, sel[0], choices[0], choices[1]);
  const Bus low_sel(sel.begin(), sel.end() - 1);
  const std::size_t half = choices.size() / 2;
  const Wire a = mux_n(c, low_sel, {choices.begin(), choices.begin() + static_cast<long>(half)});
  const Wire b = mux_n(c, low_sel, {choices.begin() + static_cast<long>(half), choices.end()});
  return mux2(c, sel.back(), a, b);
}

std::vector<Wire> decoder(Circuit& c, const Bus& sel) {
  require(!sel.empty() && sel.size() <= 8, "decoder select must be 1..8 bits");
  std::vector<Wire> outs;
  const std::size_t n = std::size_t{1} << sel.size();
  outs.reserve(n);
  for (std::size_t v = 0; v < n; ++v) {
    Wire acc = ((v >> 0) & 1u) ? sel[0] : c.not_(sel[0]);
    for (std::size_t i = 1; i < sel.size(); ++i) {
      const Wire lit = ((v >> i) & 1u) ? sel[i] : c.not_(sel[i]);
      acc = c.and_(acc, lit);
    }
    outs.push_back(acc);
  }
  return outs;
}

namespace {

// Cross-coupled NOR pair with the feedback closed through a forward
// wire. Built so the power-on state settles to Q = 0 when neither input
// is asserted. Returns Q; *q_bar_out (optional) receives Q-bar.
Wire nor_loop(Circuit& c, Wire set, Wire reset, Wire* q_bar_out = nullptr) {
  const Wire q_fwd = c.forward();
  const Wire q_bar = c.nor_(set, q_fwd);
  const Wire q = c.nor_(reset, q_bar);
  c.bind(q_fwd, q);
  if (q_bar_out != nullptr) *q_bar_out = q_bar;
  return q;
}

}  // namespace

RsLatch rs_latch(Circuit& c) {
  RsLatch latch;
  latch.set = c.input("S");
  latch.reset = c.input("R");
  latch.q = nor_loop(c, latch.set, latch.reset, &latch.q_bar);
  return latch;
}

DLatch d_latch(Circuit& c) {
  DLatch latch;
  latch.d = c.input("D");
  latch.enable = c.input("EN");
  // Gate D into R-S form: set = D AND EN, reset = NOT(D) AND EN, feeding
  // the cross-coupled NOR pair; Q follows D while EN is high and holds
  // when EN drops.
  const Wire set = c.and_(latch.d, latch.enable);
  const Wire reset = c.and_(c.not_(latch.d), latch.enable);
  latch.q = nor_loop(c, set, reset);
  return latch;
}

Register register_n(Circuit& c, int width) {
  require(width >= 1 && width <= 64, "register width must be in [1, 64]");
  Register reg;
  reg.enable = c.input("WE");
  for (int i = 0; i < width; ++i) {
    const Wire d = c.input("D" + std::to_string(i));
    const Wire set = c.and_(d, reg.enable);
    const Wire reset = c.and_(c.not_(d), reg.enable);
    reg.d.push_back(d);
    reg.q.push_back(nor_loop(c, set, reset));
  }
  return reg;
}

RegisterFile register_file(Circuit& c, int width, int sel_bits) {
  require(sel_bits >= 1 && sel_bits <= 4, "register file select must be 1..4 bits");
  RegisterFile rf;
  rf.write_data = input_bus(c, width, "wd");
  rf.write_sel = input_bus(c, sel_bits, "ws");
  rf.write_enable = c.input("we");
  rf.read_sel = input_bus(c, sel_bits, "rs");
  const std::vector<Wire> write_lines = decoder(c, rf.write_sel);
  const std::size_t count = write_lines.size();
  // Per-register storage: D latches gated by (write_enable AND decoded line).
  std::vector<Bus> regs(count);
  for (std::size_t r = 0; r < count; ++r) {
    const Wire en = c.and_(rf.write_enable, write_lines[r]);
    for (int b = 0; b < width; ++b) {
      const Wire set = c.and_(rf.write_data[static_cast<std::size_t>(b)], en);
      const Wire reset = c.and_(c.not_(rf.write_data[static_cast<std::size_t>(b)]), en);
      regs[r].push_back(nor_loop(c, set, reset));
    }
  }
  // Read port: per-bit mux across registers.
  for (int b = 0; b < width; ++b) {
    std::vector<Wire> choices;
    choices.reserve(count);
    for (std::size_t r = 0; r < count; ++r) choices.push_back(regs[r][static_cast<std::size_t>(b)]);
    rf.read_data.push_back(mux_n(c, rf.read_sel, choices));
  }
  return rf;
}

}  // namespace cs31::logic
