#include "logic/circuit.hpp"

#include "common/error.hpp"

namespace cs31::logic {

Wire Circuit::input(const std::string& name) {
  (void)name;  // names are only for future diagnostics; uniqueness unenforced
  nodes_.push_back(Node{.kind = Kind::Input});
  return Wire{nodes_.size() - 1};
}

Wire Circuit::constant(bool value) {
  nodes_.push_back(Node{.kind = Kind::Constant, .value = value});
  return Wire{nodes_.size() - 1};
}

Wire Circuit::gate(GateKind kind, Wire a, Wire b) {
  require(kind != GateKind::Not, "NOT takes one input; use gate_not");
  check(a);
  check(b);
  nodes_.push_back(Node{.kind = Kind::Gate2, .gate = kind, .a = a.id, .b = b.id});
  ++gate_count_;
  return Wire{nodes_.size() - 1};
}

Wire Circuit::gate_not(Wire a) {
  check(a);
  nodes_.push_back(Node{.kind = Kind::Gate1, .gate = GateKind::Not, .a = a.id});
  ++gate_count_;
  return Wire{nodes_.size() - 1};
}

Wire Circuit::forward() {
  nodes_.push_back(Node{.kind = Kind::Forward});
  return Wire{nodes_.size() - 1};
}

void Circuit::bind(Wire fwd, Wire driver) {
  check(fwd);
  check(driver);
  Node& n = nodes_[fwd.id];
  require(n.kind == Kind::Forward, "bind() requires a forward wire");
  require(!n.bound, "forward wire already bound");
  n.a = driver.id;
  n.bound = true;
}

void Circuit::set(Wire w, bool value) {
  check(w);
  require(nodes_[w.id].kind == Kind::Input, "set() requires an input wire");
  nodes_[w.id].value = value;
}

void Circuit::set_bus(const Bus& bus, unsigned long long value) {
  for (std::size_t i = 0; i < bus.size(); ++i) {
    set(bus[i], (value >> i) & 1u);
  }
}

namespace {
bool apply(GateKind g, bool a, bool b) {
  switch (g) {
    case GateKind::And: return a && b;
    case GateKind::Or: return a || b;
    case GateKind::Not: return !a;
    case GateKind::Nand: return !(a && b);
    case GateKind::Nor: return !(a || b);
    case GateKind::Xor: return a != b;
    case GateKind::Xnor: return a == b;
  }
  return false;  // unreachable
}
}  // namespace

void Circuit::evaluate() {
  // Relax to a fixed point. A DAG settles in at most `depth` sweeps since
  // nodes are stored in creation order (operands usually precede uses);
  // feedback (latches) needs a few extra sweeps. Oscillators never settle.
  const std::size_t max_sweeps = nodes_.size() + 8;
  for (std::size_t sweep = 0; sweep < max_sweeps; ++sweep) {
    bool changed = false;
    for (Node& n : nodes_) {
      if (n.kind == Kind::Input || n.kind == Kind::Constant) continue;
      if (n.kind == Kind::Forward) {
        require(n.bound, "evaluate() reached an unbound forward wire");
        if (nodes_[n.a].value != n.value) {
          n.value = nodes_[n.a].value;
          changed = true;
        }
        continue;
      }
      const bool a = nodes_[n.a].value;
      const bool b = n.kind == Kind::Gate2 ? nodes_[n.b].value : false;
      const bool v = apply(n.gate, a, b);
      if (v != n.value) {
        n.value = v;
        changed = true;
      }
    }
    if (!changed) return;
  }
  throw Error("circuit failed to settle (oscillating feedback loop)");
}

bool Circuit::value(Wire w) const {
  check(w);
  return nodes_[w.id].value;
}

unsigned long long Circuit::bus_value(const Bus& bus) const {
  require(bus.size() <= 64, "bus wider than 64 bits");
  unsigned long long v = 0;
  for (std::size_t i = 0; i < bus.size(); ++i) {
    if (value(bus[i])) v |= 1ull << i;
  }
  return v;
}

void Circuit::check(Wire w) const {
  require(w.id < nodes_.size(), "wire refers to a node that does not exist");
}

Bus input_bus(Circuit& c, int width, const std::string& name) {
  require(width >= 1 && width <= 64, "bus width must be in [1, 64]");
  Bus bus;
  bus.reserve(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) {
    bus.push_back(c.input(name.empty() ? "" : name + std::to_string(i)));
  }
  return bus;
}

std::vector<bool> truth_table(Circuit& c, const std::vector<Wire>& inputs, Wire out) {
  require(inputs.size() <= 20, "truth table limited to 20 inputs");
  const std::size_t rows = std::size_t{1} << inputs.size();
  std::vector<bool> result(rows);
  for (std::size_t row = 0; row < rows; ++row) {
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      c.set(inputs[i], (row >> i) & 1u);
    }
    c.evaluate();
    result[row] = c.value(out);
  }
  return result;
}

}  // namespace cs31::logic
