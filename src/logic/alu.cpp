#include "logic/alu.hpp"

#include "common/error.hpp"
#include "logic/components.hpp"

namespace cs31::logic {

Alu build_alu(Circuit& c, int width) {
  require(width >= 2 && width <= 64, "ALU width must be in [2, 64]");
  Alu alu;
  alu.a = input_bus(c, width, "a");
  alu.b = input_bus(c, width, "b");
  alu.op = input_bus(c, 3, "op");
  const Wire zero_w = c.constant(false);
  const Wire one_w = c.constant(true);

  // Adder shared by ADD and SUB: SUB inverts b and injects carry-in 1.
  const Wire is_sub = c.and_(c.not_(alu.op[2]), c.and_(c.not_(alu.op[1]), alu.op[0]));
  Bus b_maybe_inverted;
  for (const Wire& wb : alu.b) b_maybe_inverted.push_back(c.xor_(wb, is_sub));
  const RippleAdder adder = ripple_carry_adder(c, alu.a, b_maybe_inverted, is_sub);

  // Bitwise candidates.
  Bus and_bus, or_bus, xor_bus, not_bus, shl_bus, sra_bus;
  for (std::size_t i = 0; i < alu.a.size(); ++i) {
    and_bus.push_back(c.and_(alu.a[i], alu.b[i]));
    or_bus.push_back(c.or_(alu.a[i], alu.b[i]));
    xor_bus.push_back(c.xor_(alu.a[i], alu.b[i]));
    not_bus.push_back(c.not_(alu.a[i]));
  }
  // Shifts are pure rewiring (plus buffers to create distinct nets).
  shl_bus.push_back(zero_w);
  for (std::size_t i = 0; i + 1 < alu.a.size(); ++i) {
    shl_bus.push_back(c.not_(c.not_(alu.a[i])));
  }
  for (std::size_t i = 1; i < alu.a.size(); ++i) {
    sra_bus.push_back(c.not_(c.not_(alu.a[i])));
  }
  sra_bus.push_back(c.not_(c.not_(alu.a.back())));  // replicate sign bit

  // Select among the eight candidates per bit (opcode order = AluOp).
  for (std::size_t i = 0; i < alu.a.size(); ++i) {
    const std::vector<Wire> choices = {
        adder.sum[i], adder.sum[i], and_bus[i], or_bus[i],
        xor_bus[i],   not_bus[i],   shl_bus[i], sra_bus[i],
    };
    alu.result.push_back(mux_n(c, alu.op, choices));
  }

  // Flags.
  Wire any = alu.result[0];
  for (std::size_t i = 1; i < alu.result.size(); ++i) any = c.or_(any, alu.result[i]);
  alu.zero = c.not_(any);
  alu.negative = c.not_(c.not_(alu.result.back()));

  // Carry: adder carry-out for ADD; NOT carry-out (borrow) for SUB;
  // the shifted-out bit for SHL/SRA; 0 for the bitwise ops.
  const Wire borrow = c.not_(adder.carry_out);
  const std::vector<Wire> carry_choices = {
      adder.carry_out, borrow, zero_w, zero_w,
      zero_w,          zero_w, alu.a.back(), alu.a[0],
  };
  alu.carry = mux_n(c, alu.op, carry_choices);

  // Overflow: carry into MSB XOR carry out of MSB, for ADD/SUB only.
  const Wire ovf = c.xor_(adder.carry_out, adder.carry_into_msb);
  const std::vector<Wire> ovf_choices = {
      ovf, ovf, zero_w, zero_w, zero_w, zero_w, zero_w, zero_w,
  };
  alu.overflow = mux_n(c, alu.op, ovf_choices);

  // Even parity: XOR-reduce counts 1-bits mod 2; invert for even parity.
  Wire ones_odd = alu.result[0];
  for (std::size_t i = 1; i < alu.result.size(); ++i) {
    ones_odd = c.xor_(ones_odd, alu.result[i]);
  }
  alu.parity = c.xnor_(ones_odd, c.not_(one_w));
  return alu;
}

AluReading run_alu(Circuit& c, const Alu& alu, AluOp op, std::uint64_t a, std::uint64_t b) {
  const std::uint64_t mask =
      alu.a.size() == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << alu.a.size()) - 1;
  require((a & ~mask) == 0 && (b & ~mask) == 0, "operand wider than the ALU");
  c.set_bus(alu.a, a);
  c.set_bus(alu.b, b);
  c.set_bus(alu.op, static_cast<unsigned>(op));
  c.evaluate();
  return AluReading{
      .result = c.bus_value(alu.result),
      .zero = c.value(alu.zero),
      .negative = c.value(alu.negative),
      .carry = c.value(alu.carry),
      .overflow = c.value(alu.overflow),
      .parity = c.value(alu.parity),
  };
}

}  // namespace cs31::logic
