// Concurrency-outcome enumeration for the "identify possible outputs
// from concurrent processes" homework: given the per-process output
// sequences after a fork, enumerate every interleaving that respects
// program order, and check whether a claimed output is possible.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace cs31::os {

/// Stream every interleaving of the given sequences (each sequence's
/// internal order preserved) to `visit`, one at a time, without ever
/// materializing the full set — the race explorer and the replay engine
/// walk million-interleaving spaces through this. Visit order is the
/// depth-first position-choice order (always advance the lowest-indexed
/// sequence first), which is deterministic but NOT sorted.
///
/// Duplicates: enumeration is over position choices (the multinomial
/// space), so when two *different* sequences share equal items the same
/// output vector can be visited once per choice path. Callers that need
/// distinct outputs dedup themselves (`all_interleavings` does);
/// thread-tagged replay scripts never collide because the tag makes
/// every sequence's items unique to it.
///
/// `visit` returns false to stop early. `limit` (0 = unbounded) caps
/// the number of visits. Returns true iff enumeration ran to
/// completion — false means `visit` said stop or the limit bound.
[[nodiscard]] bool for_each_interleaving(
    const std::vector<std::vector<std::string>>& sequences,
    const std::function<bool(const std::vector<std::string>&)>& visit,
    std::uint64_t limit = 0);

/// All distinct interleavings, materialized and sorted — a thin
/// collecting wrapper over for_each_interleaving. Throws cs31::Error
/// when the number of *distinct* interleavings would exceed `limit`
/// (multinomial blow-up guard).
[[nodiscard]] std::vector<std::vector<std::string>> all_interleavings(
    const std::vector<std::vector<std::string>>& sequences, std::size_t limit = 100000);

/// Is `claimed` one of the possible interleavings? Runs in
/// O(product of positions) via memoized search, so it works even when
/// enumerating everything would not.
[[nodiscard]] bool is_possible_output(const std::vector<std::vector<std::string>>& sequences,
                                      const std::vector<std::string>& claimed);

/// Number of distinct interleavings (counting duplicates produced by
/// equal items once each position choice is made — i.e. the multinomial
/// count over positions, not deduplicated content). Saturates at
/// UINT64_MAX instead of silently wrapping; `saturated` reports when it
/// did, so callers can print ">1.8e19" honestly instead of a garbage
/// exact-looking number.
[[nodiscard]] std::uint64_t interleaving_count(
    const std::vector<std::vector<std::string>>& sequences, bool& saturated);

/// Convenience overload when the caller does not care about saturation
/// (the value is still saturating, never wrapped).
[[nodiscard]] std::uint64_t interleaving_count(
    const std::vector<std::vector<std::string>>& sequences);

}  // namespace cs31::os
