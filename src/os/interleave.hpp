// Concurrency-outcome enumeration for the "identify possible outputs
// from concurrent processes" homework: given the per-process output
// sequences after a fork, enumerate every interleaving that respects
// program order, and check whether a claimed output is possible.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace cs31::os {

/// All distinct interleavings of the given sequences (each sequence's
/// internal order preserved). Throws cs31::Error when the total number
/// of interleavings would exceed `limit` (multinomial blow-up guard).
[[nodiscard]] std::vector<std::vector<std::string>> all_interleavings(
    const std::vector<std::vector<std::string>>& sequences, std::size_t limit = 100000);

/// Is `claimed` one of the possible interleavings? Runs in
/// O(product of positions) via memoized search, so it works even when
/// enumerating everything would not.
[[nodiscard]] bool is_possible_output(const std::vector<std::vector<std::string>>& sequences,
                                      const std::vector<std::string>& claimed);

/// Number of distinct interleavings (counting duplicates produced by
/// equal items once each position choice is made — i.e. the multinomial
/// count over positions, not deduplicated content).
[[nodiscard]] std::uint64_t interleaving_count(
    const std::vector<std::vector<std::string>>& sequences);

}  // namespace cs31::os
