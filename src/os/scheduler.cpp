#include "os/scheduler.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "common/error.hpp"

namespace cs31::os {

std::string policy_name(SchedPolicy policy) {
  switch (policy) {
    case SchedPolicy::Fifo: return "FIFO";
    case SchedPolicy::RoundRobin: return "RR";
    case SchedPolicy::Sjf: return "SJF";
    case SchedPolicy::Srtf: return "SRTF";
    case SchedPolicy::Priority: return "PRIO";
  }
  return "?";
}

double Schedule::avg_turnaround() const {
  double s = 0;
  for (const JobMetrics& j : jobs) s += static_cast<double>(j.turnaround);
  return jobs.empty() ? 0.0 : s / static_cast<double>(jobs.size());
}

double Schedule::avg_response() const {
  double s = 0;
  for (const JobMetrics& j : jobs) s += static_cast<double>(j.response);
  return jobs.empty() ? 0.0 : s / static_cast<double>(jobs.size());
}

double Schedule::avg_waiting() const {
  double s = 0;
  for (const JobMetrics& j : jobs) s += static_cast<double>(j.waiting);
  return jobs.empty() ? 0.0 : s / static_cast<double>(jobs.size());
}

namespace {

struct Running {
  std::size_t index;            // into the input job vector
  std::uint64_t remaining;
  bool started = false;
  std::uint64_t first_run = 0;
  std::uint64_t queued_at = 0;  // for FIFO tie-breaks in the ready set
};

}  // namespace

Schedule schedule(const std::vector<Job>& jobs, SchedPolicy policy, std::uint64_t quantum) {
  require(!jobs.empty(), "no jobs to schedule");
  if (policy == SchedPolicy::RoundRobin) {
    require(quantum >= 1, "round robin needs a nonzero quantum");
  }
  std::set<std::string> names;
  for (const Job& j : jobs) {
    require(j.burst >= 1, "job '" + j.name + "' has a zero burst");
    require(names.insert(j.name).second, "duplicate job name '" + j.name + "'");
  }

  std::vector<Running> state(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    state[i] = Running{i, jobs[i].burst, false, 0, 0};
  }

  Schedule result;
  result.jobs.resize(jobs.size());
  std::vector<std::size_t> ready;  // indexes into state, FIFO order
  std::size_t next_arrival = 0;
  std::vector<std::size_t> arrival_order(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) arrival_order[i] = i;
  std::stable_sort(arrival_order.begin(), arrival_order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return jobs[a].arrival < jobs[b].arrival;
                   });

  std::uint64_t now = 0;
  std::uint64_t done = 0;
  std::uint64_t slice_used = 0;
  std::size_t current = SIZE_MAX;
  std::string last_on_cpu;

  auto admit_arrivals = [&] {
    while (next_arrival < arrival_order.size() &&
           jobs[arrival_order[next_arrival]].arrival <= now) {
      ready.push_back(arrival_order[next_arrival]);
      ++next_arrival;
    }
  };

  auto pick = [&]() -> std::size_t {
    // Returns the ready index to run next and removes it from `ready`.
    std::size_t chosen = 0;
    switch (policy) {
      case SchedPolicy::Fifo:
      case SchedPolicy::RoundRobin:
        chosen = 0;
        break;
      case SchedPolicy::Sjf:
      case SchedPolicy::Srtf:
        for (std::size_t i = 1; i < ready.size(); ++i) {
          if (state[ready[i]].remaining < state[ready[chosen]].remaining) chosen = i;
        }
        break;
      case SchedPolicy::Priority:
        for (std::size_t i = 1; i < ready.size(); ++i) {
          if (jobs[ready[i]].priority < jobs[ready[chosen]].priority) chosen = i;
        }
        break;
    }
    const std::size_t index = ready[chosen];
    ready.erase(ready.begin() + static_cast<long>(chosen));
    return index;
  };

  auto record_tick = [&](std::size_t index) {
    const std::string& name = jobs[index].name;
    if (!result.timeline.empty() && result.timeline.back().job == name &&
        result.timeline.back().end == now) {
      result.timeline.back().end = now + 1;
    } else {
      result.timeline.push_back(Slice{name, now, now + 1});
    }
    if (!last_on_cpu.empty() && last_on_cpu != name) ++result.context_switches;
    last_on_cpu = name;
  };

  while (done < jobs.size()) {
    admit_arrivals();
    if (current == SIZE_MAX) {
      if (ready.empty()) {
        // Idle until the next arrival.
        require(next_arrival < arrival_order.size(), "scheduler stuck with no work");
        now = jobs[arrival_order[next_arrival]].arrival;
        admit_arrivals();
      }
      current = pick();
      slice_used = 0;
      if (!state[current].started) {
        state[current].started = true;
        state[current].first_run = now;
      }
    }

    // Run one tick.
    record_tick(current);
    ++now;
    --state[current].remaining;
    ++slice_used;
    admit_arrivals();

    if (state[current].remaining == 0) {
      const Job& job = jobs[current];
      JobMetrics m;
      m.name = job.name;
      m.completion = now;
      m.turnaround = now - job.arrival;
      m.response = state[current].first_run - job.arrival;
      m.waiting = m.turnaround - job.burst;
      result.jobs[current] = m;
      ++done;
      current = SIZE_MAX;
      continue;
    }

    // Preemption rules.
    bool preempt = false;
    if (policy == SchedPolicy::RoundRobin && slice_used >= quantum && !ready.empty()) {
      preempt = true;
    }
    if (policy == SchedPolicy::Srtf) {
      for (const std::size_t r : ready) {
        if (state[r].remaining < state[current].remaining) preempt = true;
      }
    }
    if (policy == SchedPolicy::Priority) {
      for (const std::size_t r : ready) {
        if (jobs[r].priority < jobs[current].priority) preempt = true;
      }
    }
    if (preempt) {
      ready.push_back(current);
      current = SIZE_MAX;
    }
  }

  result.makespan = now;
  return result;
}

std::string render_gantt(const Schedule& schedule) {
  std::ostringstream out;
  for (const Slice& s : schedule.timeline) {
    out << s.start << "-" << s.end << ": " << s.job << '\n';
  }
  out << "makespan " << schedule.makespan << ", " << schedule.context_switches
      << " context switches\n";
  return out.str();
}

}  // namespace cs31::os
