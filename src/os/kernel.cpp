#include "os/kernel.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"

namespace cs31::os {

std::string signal_name(Signal s) {
  switch (s) {
    case Signal::Chld: return "SIGCHLD";
    case Signal::Int: return "SIGINT";
    case Signal::Usr1: return "SIGUSR1";
    case Signal::Kill: return "SIGKILL";
  }
  return "?";
}

std::string state_name(ProcState s) {
  switch (s) {
    case ProcState::Ready: return "ready";
    case ProcState::Running: return "running";
    case ProcState::Blocked: return "blocked";
    case ProcState::Zombie: return "zombie";
    case ProcState::Reaped: return "reaped";
  }
  return "?";
}

ProgramBuilder& ProgramBuilder::print(std::string text) {
  Instr i; i.op = Instr::Op::Print; i.text = std::move(text);
  program_.push_back(std::move(i));
  return *this;
}
ProgramBuilder& ProgramBuilder::compute(int ticks) {
  Instr i; i.op = Instr::Op::Compute; i.value = ticks;
  program_.push_back(std::move(i));
  return *this;
}
ProgramBuilder& ProgramBuilder::fork(Program child) {
  Instr i; i.op = Instr::Op::Fork; i.body = std::move(child);
  program_.push_back(std::move(i));
  return *this;
}
ProgramBuilder& ProgramBuilder::fork_both() {
  Instr i; i.op = Instr::Op::ForkBoth;
  program_.push_back(std::move(i));
  return *this;
}
ProgramBuilder& ProgramBuilder::exec(Program replacement) {
  Instr i; i.op = Instr::Op::Exec; i.body = std::move(replacement);
  program_.push_back(std::move(i));
  return *this;
}
ProgramBuilder& ProgramBuilder::wait() {
  Instr i; i.op = Instr::Op::Wait;
  program_.push_back(std::move(i));
  return *this;
}
ProgramBuilder& ProgramBuilder::exit(int status) {
  Instr i; i.op = Instr::Op::Exit; i.value = status;
  program_.push_back(std::move(i));
  return *this;
}
ProgramBuilder& ProgramBuilder::kill(Target target, Signal sig) {
  Instr i; i.op = Instr::Op::Kill; i.target = target; i.sig = sig;
  program_.push_back(std::move(i));
  return *this;
}
ProgramBuilder& ProgramBuilder::handler(Signal sig, Program body) {
  Instr i; i.op = Instr::Op::Handler; i.sig = sig; i.body = std::move(body);
  program_.push_back(std::move(i));
  return *this;
}

Kernel::Kernel(const KernelConfig& config) : config_(config) {
  require(config.time_slice >= 1, "time slice must be at least 1");
  // Synthetic init: adopts orphans, never runs.
  Pcb init;
  init.pid = kInitPid;
  init.ppid = 0;
  init.state = ProcState::Blocked;  // init just waits forever
  procs_[kInitPid] = std::move(init);
}

std::uint32_t Kernel::spawn(Program program) {
  Pcb p;
  p.pid = next_pid_++;
  p.ppid = kInitPid;
  p.program = std::move(program);
  procs_[kInitPid].children.push_back(p.pid);
  const std::uint32_t pid = p.pid;
  procs_[pid] = std::move(p);
  ready_queue_.push_back(pid);
  log(pid, "spawn");
  return pid;
}

Kernel::Pcb& Kernel::pcb(std::uint32_t pid) {
  const auto it = procs_.find(pid);
  require(it != procs_.end(), "no such pid " + std::to_string(pid));
  return it->second;
}

const Kernel::Pcb& Kernel::pcb(std::uint32_t pid) const {
  const auto it = procs_.find(pid);
  require(it != procs_.end(), "no such pid " + std::to_string(pid));
  return it->second;
}

void Kernel::log(std::uint32_t pid, std::string what) {
  events_.push_back(Event{time_, pid, std::move(what)});
}

void Kernel::terminate(Pcb& p, int status) {
  p.state = ProcState::Zombie;
  p.exit_status = status;
  log(p.pid, "exit:" + std::to_string(status));
  ready_queue_.erase(std::remove(ready_queue_.begin(), ready_queue_.end(), p.pid),
                     ready_queue_.end());
  if (running_ == p.pid) running_.reset();

  // Reparent orphans to init (which reaps them immediately, as real
  // init does).
  for (const std::uint32_t child_pid : p.children) {
    Pcb& child = pcb(child_pid);
    child.ppid = kInitPid;
    procs_[kInitPid].children.push_back(child_pid);
    if (child.state == ProcState::Zombie) {
      reap(procs_[kInitPid], child);
    }
  }
  p.children.clear();

  // Notify the parent.
  Pcb& parent = pcb(p.ppid);
  if (parent.pid == kInitPid) {
    reap(parent, p);
    return;
  }
  parent.pending.push_back(Signal::Chld);
  log(parent.pid, "signal:SIGCHLD");
  if (parent.state == ProcState::Blocked) {
    // Wake a blocked wait().
    parent.state = ProcState::Ready;
    ready_queue_.push_back(parent.pid);
  }
}

void Kernel::reap(Pcb& parent, Pcb& child) {
  child.state = ProcState::Reaped;
  parent.children.erase(
      std::remove(parent.children.begin(), parent.children.end(), child.pid),
      parent.children.end());
  log(parent.pid, "reap:" + std::to_string(child.pid));
}

bool Kernel::try_wait(Pcb& p) {
  for (const std::uint32_t child_pid : p.children) {
    Pcb& child = pcb(child_pid);
    if (child.state == ProcState::Zombie) {
      reap(p, child);
      return true;
    }
  }
  return false;
}

void Kernel::dispatch_signals(Pcb& p) {
  while (!p.pending.empty()) {
    const Signal sig = p.pending.front();
    p.pending.erase(p.pending.begin());
    if (sig == Signal::Kill) {
      terminate(p, -static_cast<int>(sig));
      return;
    }
    const auto it = p.handlers.find(sig);
    if (it != p.handlers.end()) {
      // Run the handler inline by splicing its body before the current
      // pc — the "interrupt, run handler, resume" picture from class.
      log(p.pid, "handler:" + signal_name(sig));
      p.program.insert(p.program.begin() + static_cast<std::ptrdiff_t>(p.pc),
                       it->second.begin(), it->second.end());
      continue;
    }
    // Default dispositions: SIGCHLD ignored, SIGINT terminates.
    if (sig == Signal::Int) {
      terminate(p, -2);
      return;
    }
  }
}

void Kernel::execute_instruction(Pcb& p) {
  if (p.compute_left > 0) {
    --p.compute_left;
    return;
  }
  if (p.pc >= p.program.size()) {
    terminate(p, 0);  // fell off the end, like returning from main
    return;
  }
  const Instr ins = p.program[p.pc];
  ++p.pc;
  switch (ins.op) {
    case Instr::Op::Print:
      output_.push_back(ins.text);
      log(p.pid, "print:" + ins.text);
      break;
    case Instr::Op::Compute:
      p.compute_left = ins.value > 0 ? ins.value - 1 : 0;
      break;
    case Instr::Op::Fork:
    case Instr::Op::ForkBoth: {
      Pcb child;
      child.pid = next_pid_++;
      child.ppid = p.pid;
      if (ins.op == Instr::Op::Fork) {
        child.program = ins.body;
      } else {
        child.program = p.program;  // both continue after the fork
        child.pc = p.pc;
      }
      p.children.push_back(child.pid);
      p.last_child = child.pid;
      const std::uint32_t cpid = child.pid;
      log(p.pid, "fork:" + std::to_string(cpid));
      procs_[cpid] = std::move(child);
      ready_queue_.push_back(cpid);
      break;
    }
    case Instr::Op::Exec:
      log(p.pid, "exec");
      p.program = ins.body;
      p.pc = 0;
      break;
    case Instr::Op::Wait:
      if (try_wait(p)) break;
      if (p.children.empty()) {
        log(p.pid, "wait:nochild");
        break;  // wait() returns -1 immediately
      }
      // Block and retry this wait when woken.
      --p.pc;
      p.state = ProcState::Blocked;
      log(p.pid, "block:wait");
      break;
    case Instr::Op::Exit:
      terminate(p, ins.value);
      break;
    case Instr::Op::Kill: {
      std::uint32_t target = p.pid;
      if (ins.target == Target::Parent) target = p.ppid;
      if (ins.target == Target::LastChild) {
        require(p.last_child != 0, "kill(LastChild) before any fork");
        target = p.last_child;
      }
      deliver(target, ins.sig);
      break;
    }
    case Instr::Op::Handler:
      p.handlers[ins.sig] = ins.body;
      log(p.pid, "sigaction:" + signal_name(ins.sig));
      break;
  }
}

void Kernel::deliver(std::uint32_t pid, Signal sig) {
  Pcb& p = pcb(pid);
  if (p.state == ProcState::Zombie || p.state == ProcState::Reaped) return;
  log(pid, "deliver:" + signal_name(sig));
  p.pending.push_back(sig);
  if (sig == Signal::Kill && p.state == ProcState::Blocked) {
    p.state = ProcState::Ready;
    ready_queue_.push_back(pid);
  }
}

std::optional<std::uint32_t> Kernel::pick_next() {
  while (!ready_queue_.empty()) {
    const std::uint32_t pid = ready_queue_.front();
    ready_queue_.erase(ready_queue_.begin());
    if (pcb(pid).state == ProcState::Ready) return pid;
  }
  return std::nullopt;
}

bool Kernel::tick() {
  ++time_;
  // Ensure someone is running.
  if (!running_ || pcb(*running_).state != ProcState::Running) {
    const std::optional<std::uint32_t> next = pick_next();
    if (!next) return false;
    if (running_ != next) ++context_switches_;
    running_ = next;
    pcb(*next).state = ProcState::Running;
    slice_left_ = config_.time_slice;
  }

  Pcb& p = pcb(*running_);
  dispatch_signals(p);
  if (p.state != ProcState::Running) {
    // A signal terminated or blocked it; pick someone else next tick.
    return !ready_queue_.empty() || (running_ && pcb(*running_).state == ProcState::Running);
  }

  execute_instruction(p);

  // The instruction may have blocked or terminated the process.
  if (running_ && pcb(*running_).state == ProcState::Running) {
    if (--slice_left_ == 0) {
      // Quantum expired: back of the queue.
      Pcb& cur = pcb(*running_);
      cur.state = ProcState::Ready;
      ready_queue_.push_back(cur.pid);
      running_.reset();
    }
  } else {
    running_.reset();
  }
  return true;
}

std::uint64_t Kernel::run(std::uint64_t max_ticks) {
  std::uint64_t ticks = 0;
  while (!idle()) {
    require(ticks < max_ticks, "kernel tick limit exceeded (runaway program?)");
    if (!tick()) break;
    ++ticks;
  }
  return ticks;
}

bool Kernel::idle() const {
  for (const auto& [pid, p] : procs_) {
    if (pid == kInitPid) continue;
    if (p.state == ProcState::Ready || p.state == ProcState::Running) return false;
  }
  return true;
}

ProcessInfo Kernel::info(std::uint32_t pid) const {
  const Pcb& p = pcb(pid);
  return ProcessInfo{p.pid, p.ppid, p.state, p.exit_status, p.children};
}

std::vector<ProcessInfo> Kernel::all_processes() const {
  std::vector<ProcessInfo> out;
  out.reserve(procs_.size());
  for (const auto& [pid, p] : procs_) {
    out.push_back(ProcessInfo{p.pid, p.ppid, p.state, p.exit_status, p.children});
  }
  return out;
}

std::string Kernel::hierarchy() const {
  std::ostringstream out;
  // Depth-first from init.
  std::vector<std::pair<std::uint32_t, int>> stack = {{kInitPid, 0}};
  while (!stack.empty()) {
    const auto [pid, depth] = stack.back();
    stack.pop_back();
    const Pcb& p = pcb(pid);
    for (int i = 0; i < depth; ++i) out << "  ";
    out << "pid " << pid << " [" << state_name(p.state) << "]\n";
    // Push children in reverse so they print in creation order.
    for (auto it = p.children.rbegin(); it != p.children.rend(); ++it) {
      stack.push_back({*it, depth + 1});
    }
  }
  return out.str();
}

}  // namespace cs31::os
