// Comparative CPU scheduling simulator (CS 31's second theme: "the OS's
// role in scheduling for efficiency"). Simulates a job set under FIFO,
// round-robin, shortest-job-first, preemptive shortest-remaining-time,
// and static priority, reporting the turnaround/response metrics the
// course uses to compare policies. Deterministic and single-CPU.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace cs31::os {

/// One job to schedule.
struct Job {
  std::string name;
  std::uint64_t arrival = 0;   ///< time the job enters the ready queue
  std::uint64_t burst = 1;     ///< total CPU time required
  int priority = 0;            ///< smaller value = more important (Priority policy)
};

enum class SchedPolicy { Fifo, RoundRobin, Sjf, Srtf, Priority };

[[nodiscard]] std::string policy_name(SchedPolicy policy);

/// Per-job outcome.
struct JobMetrics {
  std::string name;
  std::uint64_t completion = 0;
  std::uint64_t turnaround = 0;  ///< completion - arrival
  std::uint64_t response = 0;    ///< first run - arrival
  std::uint64_t waiting = 0;     ///< turnaround - burst
};

/// One contiguous run of a job on the CPU (a Gantt-chart segment).
struct Slice {
  std::string job;
  std::uint64_t start = 0;
  std::uint64_t end = 0;
};

/// Full schedule result.
struct Schedule {
  std::vector<JobMetrics> jobs;     ///< in input order
  std::vector<Slice> timeline;      ///< coalesced Gantt segments
  std::uint64_t makespan = 0;
  std::uint64_t context_switches = 0;

  [[nodiscard]] double avg_turnaround() const;
  [[nodiscard]] double avg_response() const;
  [[nodiscard]] double avg_waiting() const;
};

/// Simulate the job set under a policy. `quantum` applies to RoundRobin
/// only. Throws cs31::Error on an empty job set, zero bursts, duplicate
/// names, or a zero quantum with RoundRobin.
[[nodiscard]] Schedule schedule(const std::vector<Job>& jobs, SchedPolicy policy,
                                std::uint64_t quantum = 2);

/// Render the timeline as an ASCII Gantt chart.
[[nodiscard]] std::string render_gantt(const Schedule& schedule);

}  // namespace cs31::os
