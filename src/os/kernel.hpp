// Simulated kernel for CS 31's operating-systems unit: the process
// abstraction (PCBs, the process hierarchy), fork / exec / exit / wait
// semantics with zombies and orphan reparenting, asynchronous signals
// with user handlers (SIGCHLD and friends), and a round-robin
// time-sliced scheduler demonstrating multiprogramming and context
// switches.
//
// Processes run "programs" written in a small instruction language that
// mirrors the course's C examples: print, compute, fork (with an
// explicit child branch, like `if (fork() == 0) { ... }`), exec, wait,
// exit, kill, and handler installation. Execution is fully deterministic
// given the scheduler configuration, which makes every homework
// exercise ("trace this fork program", "draw the hierarchy") checkable.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace cs31::os {

/// Signals the course discusses.
enum class Signal { Chld, Int, Usr1, Kill };

[[nodiscard]] std::string signal_name(Signal s);

struct Instr;
using Program = std::vector<Instr>;

/// Relative process designators for kill targets (programs are static,
/// pids are dynamic).
enum class Target { Self, Parent, LastChild };

/// One program instruction.
struct Instr {
  enum class Op {
    Print,    ///< append text to the output log
    Compute,  ///< burn `value` scheduler ticks (CPU-bound work)
    Fork,     ///< child runs `body` then exits 0; parent continues
    ForkBoth, ///< both parent and child continue with the next instruction
    Exec,     ///< replace the remaining program with `body`
    Wait,     ///< block until a child terminates; reaps it
    Exit,     ///< terminate with status `value`
    Kill,     ///< send signal `sig` to `target`
    Handler,  ///< install `body` as the handler for `sig`
  };
  Op op = Op::Print;
  std::string text;
  int value = 0;
  Signal sig = Signal::Usr1;
  Target target = Target::Self;
  Program body;
};

/// Fluent program construction for tests and examples.
class ProgramBuilder {
 public:
  ProgramBuilder& print(std::string text);
  ProgramBuilder& compute(int ticks);
  ProgramBuilder& fork(Program child);
  ProgramBuilder& fork_both();
  ProgramBuilder& exec(Program replacement);
  ProgramBuilder& wait();
  ProgramBuilder& exit(int status);
  ProgramBuilder& kill(Target target, Signal sig);
  ProgramBuilder& handler(Signal sig, Program body);
  [[nodiscard]] Program build() const { return program_; }

 private:
  Program program_;
};

/// Process lifecycle states (the course's state diagram).
enum class ProcState { Ready, Running, Blocked, Zombie, Reaped };

[[nodiscard]] std::string state_name(ProcState s);

/// The public view of a PCB.
struct ProcessInfo {
  std::uint32_t pid = 0;
  std::uint32_t ppid = 0;
  ProcState state = ProcState::Ready;
  int exit_status = 0;
  std::vector<std::uint32_t> children;
};

/// One entry of the kernel's event log.
struct Event {
  std::uint64_t time = 0;
  std::uint32_t pid = 0;
  std::string what;  ///< "print:hello", "fork:5", "exit:0", "signal:SIGCHLD", ...
};

/// Scheduler/kernel configuration.
struct KernelConfig {
  std::uint32_t time_slice = 2;  ///< instructions per quantum
};

class Kernel {
 public:
  explicit Kernel(const KernelConfig& config = {});

  /// Create a top-level process (parented to the synthetic init, pid 1).
  std::uint32_t spawn(Program program);

  /// Execute one scheduler tick (one instruction of the running
  /// process, or a context switch when the quantum expires / the
  /// process blocks). Returns false when no runnable process remains.
  bool tick();

  /// Run until every process has terminated or `max_ticks` elapses
  /// (throws cs31::Error when exceeded — runaway program).
  std::uint64_t run(std::uint64_t max_ticks = 100000);

  /// Send a signal from outside (e.g. the shell's kill command).
  void deliver(std::uint32_t pid, Signal sig);

  [[nodiscard]] const std::vector<std::string>& output() const { return output_; }
  [[nodiscard]] const std::vector<Event>& events() const { return events_; }
  [[nodiscard]] std::uint64_t context_switches() const { return context_switches_; }
  [[nodiscard]] std::uint64_t now() const { return time_; }

  /// Info for one pid (throws on unknown pid) and for all processes.
  [[nodiscard]] ProcessInfo info(std::uint32_t pid) const;
  [[nodiscard]] std::vector<ProcessInfo> all_processes() const;

  /// Render the process hierarchy as an indented tree rooted at init —
  /// the "draw the process hierarchy" homework.
  [[nodiscard]] std::string hierarchy() const;

  /// True when no process can make further progress.
  [[nodiscard]] bool idle() const;

  static constexpr std::uint32_t kInitPid = 1;

 private:
  struct Pcb {
    std::uint32_t pid = 0;
    std::uint32_t ppid = 0;
    ProcState state = ProcState::Ready;
    Program program;
    std::size_t pc = 0;
    int exit_status = 0;
    int compute_left = 0;
    std::uint32_t last_child = 0;
    std::vector<std::uint32_t> children;
    std::map<Signal, Program> handlers;
    std::vector<Signal> pending;
  };

  Pcb& pcb(std::uint32_t pid);
  [[nodiscard]] const Pcb& pcb(std::uint32_t pid) const;
  void terminate(Pcb& p, int status);
  void reap(Pcb& parent, Pcb& child);
  bool try_wait(Pcb& p);
  void execute_instruction(Pcb& p);
  void dispatch_signals(Pcb& p);
  std::optional<std::uint32_t> pick_next();
  void log(std::uint32_t pid, std::string what);

  KernelConfig config_;
  std::map<std::uint32_t, Pcb> procs_;
  std::vector<std::uint32_t> ready_queue_;
  std::optional<std::uint32_t> running_;
  std::uint32_t slice_left_ = 0;
  std::uint32_t next_pid_ = 2;  // init is 1
  std::uint64_t time_ = 0;
  std::uint64_t context_switches_ = 0;
  std::vector<std::string> output_;
  std::vector<Event> events_;
};

}  // namespace cs31::os
