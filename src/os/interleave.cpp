#include "os/interleave.hpp"

#include <cstdint>
#include <map>
#include <set>

#include "common/error.hpp"

namespace cs31::os {

namespace {

void enumerate(const std::vector<std::vector<std::string>>& seqs,
               std::vector<std::size_t>& pos, std::vector<std::string>& current,
               std::set<std::vector<std::string>>& out, std::size_t limit) {
  bool done = true;
  for (std::size_t i = 0; i < seqs.size(); ++i) {
    if (pos[i] < seqs[i].size()) {
      done = false;
      current.push_back(seqs[i][pos[i]]);
      ++pos[i];
      enumerate(seqs, pos, current, out, limit);
      --pos[i];
      current.pop_back();
    }
  }
  if (done) {
    out.insert(current);
    require(out.size() <= limit, "interleaving enumeration exceeds the limit");
  }
}

}  // namespace

std::vector<std::vector<std::string>> all_interleavings(
    const std::vector<std::vector<std::string>>& sequences, std::size_t limit) {
  std::vector<std::size_t> pos(sequences.size(), 0);
  std::vector<std::string> current;
  std::set<std::vector<std::string>> out;
  enumerate(sequences, pos, current, out, limit);
  return {out.begin(), out.end()};
}

bool is_possible_output(const std::vector<std::vector<std::string>>& sequences,
                        const std::vector<std::string>& claimed) {
  // Memoized DFS over position vectors.
  std::map<std::vector<std::size_t>, bool> memo;
  std::size_t total = 0;
  for (const auto& s : sequences) total += s.size();
  if (claimed.size() != total) return false;

  std::vector<std::size_t> pos(sequences.size(), 0);

  // Recursive lambda via explicit stack-free helper.
  struct Solver {
    const std::vector<std::vector<std::string>>& seqs;
    const std::vector<std::string>& claimed;
    std::map<std::vector<std::size_t>, bool>& memo;

    bool solve(std::vector<std::size_t>& pos, std::size_t k) {
      if (k == claimed.size()) return true;
      const auto it = memo.find(pos);
      if (it != memo.end()) return it->second;
      bool ok = false;
      for (std::size_t i = 0; i < seqs.size() && !ok; ++i) {
        if (pos[i] < seqs[i].size() && seqs[i][pos[i]] == claimed[k]) {
          ++pos[i];
          ok = solve(pos, k + 1);
          --pos[i];
        }
      }
      memo[pos] = ok;
      return ok;
    }
  };
  Solver solver{sequences, claimed, memo};
  return solver.solve(pos, 0);
}

std::uint64_t interleaving_count(const std::vector<std::vector<std::string>>& sequences) {
  // Multinomial coefficient: (sum n_i)! / prod(n_i!) computed
  // incrementally to dodge overflow for course-sized inputs.
  std::uint64_t result = 1;
  std::uint64_t placed = 0;
  for (const auto& seq : sequences) {
    for (std::uint64_t k = 1; k <= seq.size(); ++k) {
      ++placed;
      // result *= placed / k, keeping exactness: result * placed is
      // always divisible by k at this point.
      result = result * placed / k;
    }
  }
  return result;
}

}  // namespace cs31::os
