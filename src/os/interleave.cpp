#include "os/interleave.hpp"

#include <cstdint>
#include <map>
#include <set>

#include "common/error.hpp"

namespace cs31::os {

namespace {

/// Depth-first walk over the position-choice space; streams each
/// complete interleaving to the callback instead of accumulating.
struct Streamer {
  const std::vector<std::vector<std::string>>& seqs;
  const std::function<bool(const std::vector<std::string>&)>& visit;
  std::uint64_t limit = 0;  // 0 = unbounded
  std::uint64_t visited = 0;
  std::vector<std::size_t> pos;
  std::vector<std::string> current;

  /// False propagates a stop request (visit said no, or limit hit).
  bool walk() {
    bool leaf = true;
    for (std::size_t i = 0; i < seqs.size(); ++i) {
      if (pos[i] < seqs[i].size()) {
        leaf = false;
        current.push_back(seqs[i][pos[i]]);
        ++pos[i];
        const bool keep_going = walk();
        --pos[i];
        current.pop_back();
        if (!keep_going) return false;
      }
    }
    if (leaf) {
      if (limit != 0 && visited >= limit) return false;
      ++visited;
      if (!visit(current)) return false;
    }
    return true;
  }
};

}  // namespace

bool for_each_interleaving(
    const std::vector<std::vector<std::string>>& sequences,
    const std::function<bool(const std::vector<std::string>&)>& visit,
    std::uint64_t limit) {
  Streamer streamer{sequences, visit, limit, 0, {}, {}};
  streamer.pos.assign(sequences.size(), 0);
  return streamer.walk();
}

std::vector<std::vector<std::string>> all_interleavings(
    const std::vector<std::vector<std::string>>& sequences, std::size_t limit) {
  std::set<std::vector<std::string>> out;
  (void)for_each_interleaving(sequences, [&](const std::vector<std::string>& order) {
    out.insert(order);
    require(out.size() <= limit, "interleaving enumeration exceeds the limit");
    return true;
  });
  return {out.begin(), out.end()};
}

bool is_possible_output(const std::vector<std::vector<std::string>>& sequences,
                        const std::vector<std::string>& claimed) {
  // Memoized DFS over position vectors.
  std::map<std::vector<std::size_t>, bool> memo;
  std::size_t total = 0;
  for (const auto& s : sequences) total += s.size();
  if (claimed.size() != total) return false;

  std::vector<std::size_t> pos(sequences.size(), 0);

  // Recursive lambda via explicit stack-free helper.
  struct Solver {
    const std::vector<std::vector<std::string>>& seqs;
    const std::vector<std::string>& claimed;
    std::map<std::vector<std::size_t>, bool>& memo;

    bool solve(std::vector<std::size_t>& pos, std::size_t k) {
      if (k == claimed.size()) return true;
      const auto it = memo.find(pos);
      if (it != memo.end()) return it->second;
      bool ok = false;
      for (std::size_t i = 0; i < seqs.size() && !ok; ++i) {
        if (pos[i] < seqs[i].size() && seqs[i][pos[i]] == claimed[k]) {
          ++pos[i];
          ok = solve(pos, k + 1);
          --pos[i];
        }
      }
      memo[pos] = ok;
      return ok;
    }
  };
  Solver solver{sequences, claimed, memo};
  return solver.solve(pos, 0);
}

std::uint64_t interleaving_count(const std::vector<std::vector<std::string>>& sequences,
                                 bool& saturated) {
  // Multinomial coefficient: (sum n_i)! / prod(n_i!) computed
  // incrementally; the running value is always an exact binomial, so
  // result * placed is divisible by k. Checked multiplication: once the
  // intermediate product would overflow uint64, latch UINT64_MAX (the
  // true count only grows from there — every remaining factor
  // placed/k is >= 1).
  saturated = false;
  std::uint64_t result = 1;
  std::uint64_t placed = 0;
  for (const auto& seq : sequences) {
    for (std::uint64_t k = 1; k <= seq.size(); ++k) {
      ++placed;
      std::uint64_t scaled = 0;
      if (saturated || __builtin_mul_overflow(result, placed, &scaled)) {
        saturated = true;
        result = UINT64_MAX;
      } else {
        result = scaled / k;
      }
    }
  }
  return result;
}

std::uint64_t interleaving_count(const std::vector<std::vector<std::string>>& sequences) {
  bool saturated = false;
  return interleaving_count(sequences, saturated);
}

}  // namespace cs31::os
