#include "grader/service.hpp"

#include <utility>

#include "common/error.hpp"

namespace cs31::grader {

GraderService::GraderService(Options options) : options_(options) {
  require(options_.workers >= 1, "grader needs at least one worker");
  require(options_.queue_capacity >= 1, "grader queue capacity must be >= 1");
  ingest_.capacity = options_.queue_capacity;
  workers_.reserve(options_.workers);
  for (std::size_t w = 0; w < options_.workers; ++w) {
    workers_.push_back(std::make_unique<Worker>(options_.queue_capacity));
  }
  for (auto& worker : workers_) {
    Worker* w = worker.get();
    worker->thread = std::thread([this, w] { worker_main(*w); });
  }
  router_ = std::thread([this] { router_main(); });
}

GraderService::~GraderService() {
  // Graceful drain, mirroring AnalysisPipeline: closed queues still
  // deliver what they hold, so everything submitted is graded.
  ingest_.close();
  if (router_.joinable()) router_.join();
  for (auto& worker : workers_) {
    worker->queue.close();
    if (worker->thread.joinable()) worker->thread.join();
  }
}

void GraderService::submit(Submission submission) {
  Job job;
  job.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  job.hash = content_hash(submission);
  job.submission = std::move(submission);
  {
    // Reserve the report slot up front so workers only ever write into
    // existing slots (no resize race between out-of-order finishers).
    std::scoped_lock lock(reports_mutex_);
    if (job.seq >= reports_.size()) reports_.resize(job.seq + 1);
  }
  ingest_.push(std::move(job));
}

void GraderService::submit_all(std::vector<Submission> submissions) {
  for (Submission& s : submissions) submit(std::move(s));
}

void GraderService::router_main() {
  Job job;
  while (ingest_.pop(job)) {
    workers_[job.hash % workers_.size()]->queue.push(std::move(job));
    job = Job{};
    ingest_.done();
  }
}

void GraderService::worker_main(Worker& worker) {
  Job job;
  while (worker.queue.pop(job)) {
    Verdict verdict;
    try {
      const auto grade = [this, &job] {
        toolchain_runs_.fetch_add(1, std::memory_order_relaxed);
        return run_toolchain(job.submission, options_.limits);
      };
      verdict = options_.use_cache ? cache_.get_or_compute(job.hash, grade) : grade();
    } catch (const std::exception& e) {
      // Last-resort pool protection (the cache already converts compute
      // exceptions; this guards the uncached path and the cache's own
      // plumbing): the submission gets a report, the worker lives on.
      verdict = Verdict{};
      verdict.status = "grader_error";
      verdict.score = 0;
      verdict.notes = {e.what()};
    }
    finish(job, verdict);
    ++worker.graded;
    job = Job{};
    worker.queue.done();
  }
}

void GraderService::finish(const Job& job, const Verdict& verdict) {
  // Envelope first (who/what/which bytes), then the verdict's own
  // fields spliced in — one line, stable key order.
  std::string line = "{\"id\":" + json_quote(job.submission.id);
  line += ",\"kind\":" + json_quote(to_string(job.submission.kind));
  line += ",\"hash\":" + json_quote(hash_hex(job.hash));
  line += ",";
  line += verdict.to_json().substr(1);  // drop the verdict's '{'
  std::scoped_lock lock(reports_mutex_);
  reports_[job.seq] = std::move(line);
  ++graded_;
}

void GraderService::wait_idle() {
  // Stage order matters (same proof shape as the pipeline): once the
  // ingest queue is drained the router has routed every job, so
  // draining each worker queue afterwards proves every submission has
  // its report written.
  ingest_.wait_drained();
  for (auto& worker : workers_) worker->queue.wait_drained();
}

std::string GraderService::report_stream() const {
  std::scoped_lock lock(reports_mutex_);
  std::string out;
  for (const std::string& line : reports_) {
    out += line;
    out += '\n';
  }
  return out;
}

std::vector<std::string> GraderService::report_lines() const {
  std::scoped_lock lock(reports_mutex_);
  return reports_;
}

GraderService::Stats GraderService::stats() const {
  Stats stats;
  stats.submitted = next_seq_.load(std::memory_order_relaxed);
  stats.toolchain_runs = toolchain_runs_.load(std::memory_order_relaxed);
  stats.cache = cache_.stats();
  {
    std::scoped_lock lock(reports_mutex_);
    stats.graded = graded_;
  }
  {
    std::scoped_lock lock(ingest_.mutex);
    stats.publish_waits = ingest_.waits;
  }
  for (const auto& worker : workers_) {
    std::scoped_lock lock(worker->queue.mutex);
    stats.publish_waits += worker->queue.waits;
    stats.graded_per_worker.push_back(worker->graded);
  }
  return stats;
}

}  // namespace cs31::grader
