#include "grader/loadgen.hpp"

#include <cstdio>

#include "common/error.hpp"

namespace cs31::grader {

namespace {

/// The kit's standard deterministic PRNG (same xorshift32 the sampling
/// capture and the fuzz harness use).
struct Rng {
  std::uint32_t state;
  explicit Rng(std::uint32_t seed) : state(seed == 0 ? 1 : seed) {}
  std::uint32_t next() {
    state ^= state << 13;
    state ^= state >> 17;
    state ^= state << 5;
    return state;
  }
  std::uint32_t below(std::uint32_t n) { return next() % n; }
};

std::string zero_padded(std::size_t n) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%05llu", static_cast<unsigned long long>(n));
  return buf;
}

/// The steady mix: cycle kinds so every third submission exercises a
/// different toolchain path; one Life scenario in six drops the
/// barrier, so race_found verdicts appear at a steady background rate.
Submission steady_submission(std::size_t i, std::uint32_t seed) {
  const std::uint32_t variant = static_cast<std::uint32_t>(i) + seed * 7919u;
  Submission s;
  switch (i % 3) {
    case 0:
      s.kind = SubmissionKind::MiniC;
      s.body = mini_c_body(variant);
      break;
    case 1:
      s.kind = SubmissionKind::Assembly;
      s.body = assembly_body(variant);
      break;
    default:
      s.kind = SubmissionKind::LifeTrace;
      s.body = life_body(variant, /*with_barrier=*/i % 6 != 5);
      break;
  }
  s.id = to_string(s.kind) + "/" + zero_padded(i);
  return s;
}

}  // namespace

std::string mini_c_body(std::uint32_t variant) {
  // Every variant is a distinct body (the raw variant number appears as
  // a literal), lint-clean, and loop-bounded: ~a dozen iterations of a
  // helper call, so a cold grade really costs a compile + execute.
  const std::uint32_t base = variant % 90000;
  const std::uint32_t iters = 8 + variant % 5;
  const std::uint32_t step = 1 + variant % 9;
  std::string src;
  src += "int helper(int a, int b) { return a * 3 + b; }\n";
  src += "int main() {\n";
  src += "  int acc = " + std::to_string(base) + ";\n";
  src += "  int i = 0;\n";
  src += "  while (i < " + std::to_string(iters) + ") {\n";
  src += "    acc = acc + helper(i, " + std::to_string(step) + ");\n";
  src += "    i = i + 1;\n";
  src += "  }\n";
  src += "  return acc;\n";
  src += "}\n";
  return src;
}

std::string assembly_body(std::uint32_t variant) {
  const std::uint32_t base = variant % 90000;
  const std::uint32_t iters = 3 + variant % 6;
  std::string src;
  src += "_start:\n";
  src += "    movl $" + std::to_string(base) + ", %eax\n";
  src += "    movl $" + std::to_string(iters) + ", %ecx\n";
  src += "again:\n";
  src += "    addl %ecx, %eax\n";
  src += "    decl %ecx\n";
  src += "    cmpl $0, %ecx\n";
  src += "    jne again\n";
  src += "    hlt\n";
  return src;
}

std::string life_body(std::uint32_t variant, bool with_barrier) {
  // An 8x8 soup with ~14 live cells placed by the variant-seeded PRNG;
  // 2 or 4 bands, 2 rounds. Enough cells that the barrier-less variant
  // reliably races on the band boundaries.
  Rng rng(variant * 2654435761u + 1);
  const std::size_t rows = 8, cols = 8;
  std::string body;
  body += "threads=" + std::to_string(variant % 2 == 0 ? 2 : 4) + "\n";
  body += "rounds=2\n";
  body += std::string("barrier=") + (with_barrier ? "1" : "0") + "\n";
  body += "rule=torus\n";
  body += std::to_string(rows) + " " + std::to_string(cols) + "\n";
  const std::size_t cells = 14;
  body += std::to_string(cells) + "\n";
  for (std::size_t i = 0; i < cells; ++i) {
    body += std::to_string(rng.below(rows)) + " " + std::to_string(rng.below(cols)) + "\n";
  }
  return body;
}

std::string poison_spin_assembly() {
  return "_start:\n    jmp _start\n";
}

std::string poison_spin_mini_c() {
  // Not a constant condition (the analyzer would flag that); the loop
  // body just never makes progress.
  return "int main() {\n  int i = 0;\n  while (i < 2) {\n    i = i * 1;\n  }\n  return i;\n}\n";
}

std::string poison_bad_life() {
  return "threads=two\nrounds=1\n8 8\n0\n";
}

std::string poison_bad_mini_c() {
  return "int main() {\n  return 1 +;\n}\n";
}

std::string script_body_clean(std::uint32_t variant) {
  // The variant lands in the counter's name, so every body is distinct
  // (distinct content hashes) while the shape — and the verdict — stays
  // fixed: one consistent guard, race_free, full marks.
  const std::string c = "c" + std::to_string(variant % 90000);
  std::string body;
  body += "lock m; read " + c + "; write " + c + "; unlock m\n";
  body += "lock m; read " + c + "; write " + c + "; unlock m\n";
  return body;
}

std::string script_body_racy(std::uint32_t variant) {
  // Thread 1 forgets the lock on its write — the classic lost-update
  // homework bug. The static pass flags the candidate and exploration
  // confirms it (verdict "race_found").
  const std::string c = "c" + std::to_string(variant % 90000);
  std::string body;
  body += "lock m; read " + c + "; write " + c + "; unlock m\n";
  body += "write " + c + "\n";
  return body;
}

std::string script_body_deadlock(std::uint32_t variant) {
  // ABBA: opposite nesting orders on the same two mutexes. The static
  // pass reports the lock-order cycle; blocking-aware exploration
  // reaches the stuck state (verdict "deadlock_found").
  const std::string d = "d" + std::to_string(variant % 90000);
  std::string body;
  body += "lock a; lock b; write " + d + "; unlock b; unlock a\n";
  body += "lock b; lock a; read " + d + "; unlock a; unlock b\n";
  return body;
}

std::string poison_bad_script() {
  return "lock m; spin c; unlock m\n";
}

const std::vector<std::string>& scenario_names() {
  static const std::vector<std::string> kNames = {"steady", "bursty", "duplicate_storm",
                                                  "poison", "script_review"};
  return kNames;
}

LoadPlan make_scenario(const std::string& name, std::size_t count, std::uint32_t seed) {
  require(count > 0, "load scenario needs at least one submission");
  LoadPlan plan;
  plan.submissions.reserve(count);
  Rng rng(seed * 69069u + 12345u);

  if (name == "steady") {
    for (std::size_t i = 0; i < count; ++i) {
      plan.submissions.push_back(steady_submission(i, seed));
    }
    plan.bursts.push_back(count);
    return plan;
  }

  if (name == "bursty") {
    for (std::size_t i = 0; i < count; ++i) {
      plan.submissions.push_back(steady_submission(i, seed));
    }
    // Deadline spikes: bursts between 1 and ~count/4 submissions, so a
    // driver alternates queue-saturating waves with near-idle gaps.
    std::size_t remaining = count;
    const std::uint32_t max_burst =
        static_cast<std::uint32_t>(count / 4 > 1 ? count / 4 : 1);
    while (remaining > 0) {
      const std::size_t burst = 1 + rng.below(max_burst);
      const std::size_t take = burst < remaining ? burst : remaining;
      plan.bursts.push_back(take);
      remaining -= take;
    }
    return plan;
  }

  if (name == "duplicate_storm") {
    // A handful of distinct bodies — everyone submits the starter code.
    const std::size_t distinct = count / 32 > 0 ? count / 32 : 1;
    std::vector<Submission> bodies;
    bodies.reserve(distinct);
    for (std::size_t i = 0; i < distinct; ++i) {
      bodies.push_back(steady_submission(i, seed));
    }
    for (std::size_t i = 0; i < count; ++i) {
      Submission s = bodies[rng.below(static_cast<std::uint32_t>(distinct))];
      s.id = "storm/" + zero_padded(i);
      plan.submissions.push_back(std::move(s));
    }
    plan.bursts.push_back(count);
    return plan;
  }

  if (name == "poison") {
    for (std::size_t i = 0; i < count; ++i) {
      if (i % 8 == 7) {
        Submission s;
        switch ((i / 8) % 4) {
          case 0:
            s.kind = SubmissionKind::Assembly;
            s.body = poison_spin_assembly();
            break;
          case 1:
            s.kind = SubmissionKind::MiniC;
            s.body = poison_spin_mini_c();
            break;
          case 2:
            s.kind = SubmissionKind::LifeTrace;
            s.body = poison_bad_life();
            break;
          default:
            s.kind = SubmissionKind::MiniC;
            s.body = poison_bad_mini_c();
            break;
        }
        s.id = "poison/" + zero_padded(i);
        plan.submissions.push_back(std::move(s));
        continue;
      }
      plan.submissions.push_back(steady_submission(i, seed));
    }
    plan.bursts.push_back(count);
    return plan;
  }

  if (name == "script_review") {
    // The concurrency homework batch: clean / racy / deadlocking shapes
    // in rotation, with a grammar-rejected script every eighth slot so
    // the pool proves it reports `invalid` without stalling the batch.
    for (std::size_t i = 0; i < count; ++i) {
      Submission s;
      s.kind = SubmissionKind::Script;
      const std::uint32_t variant = static_cast<std::uint32_t>(i) + seed * 7919u;
      if (i % 8 == 7) {
        s.body = poison_bad_script();
      } else {
        switch (i % 3) {
          case 0: s.body = script_body_clean(variant); break;
          case 1: s.body = script_body_racy(variant); break;
          default: s.body = script_body_deadlock(variant); break;
        }
      }
      s.id = "script/" + zero_padded(i);
      plan.submissions.push_back(std::move(s));
    }
    plan.bursts.push_back(count);
    return plan;
  }

  throw Error("unknown load scenario '" + name + "' (see scenario_names())");
}

}  // namespace cs31::grader
