#include "grader/cache.hpp"

namespace cs31::grader {

Verdict VerdictCache::get_or_compute(ContentHash hash,
                                     const std::function<Verdict()>& compute) {
  std::shared_ptr<Entry> entry;
  {
    std::unique_lock lock(mutex_);
    auto [it, inserted] = entries_.try_emplace(hash);
    if (inserted) {
      it->second = std::make_shared<Entry>();
      entry = it->second;
      // Fall through to compute below, outside the lock (counted
      // outside it, too).
    } else {
      entry = it->second;
      if (entry->ready) {
        // A ready entry never changes again, so the verdict can be
        // read (and the hit counted) after dropping the map lock.
        lock.unlock();
        hits_.add();
        return entry->verdict;
      }
      collapsed_.add();
      ready_cv_.wait(lock, [&] { return entry->ready; });
      return entry->verdict;
    }
  }
  misses_.add();

  Verdict verdict;
  try {
    verdict = compute();
  } catch (const std::exception& e) {
    verdict.status = "grader_error";
    verdict.score = 0;
    verdict.notes = {e.what()};
  } catch (...) {
    verdict.status = "grader_error";
    verdict.score = 0;
    verdict.notes = {"unknown exception in toolchain"};
  }

  {
    std::scoped_lock lock(mutex_);
    entry->verdict = std::move(verdict);
    entry->ready = true;
  }
  ready_cv_.notify_all();
  return entry->verdict;
}

VerdictCache::Stats VerdictCache::stats() const {
  Stats stats{hits_.value(), misses_.value(), collapsed_.value(), 0};
  std::scoped_lock lock(mutex_);
  stats.entries = entries_.size();
  return stats;
}

}  // namespace cs31::grader
