#include "grader/cache.hpp"

namespace cs31::grader {

Verdict VerdictCache::get_or_compute(ContentHash hash,
                                     const std::function<Verdict()>& compute) {
  std::shared_ptr<Entry> entry;
  {
    std::unique_lock lock(mutex_);
    auto [it, inserted] = entries_.try_emplace(hash);
    if (inserted) {
      it->second = std::make_shared<Entry>();
      entry = it->second;
      ++misses_;
      // Fall through to compute below, outside the lock.
    } else {
      entry = it->second;
      if (entry->ready) {
        ++hits_;
        return entry->verdict;
      }
      ++collapsed_;
      ready_cv_.wait(lock, [&] { return entry->ready; });
      return entry->verdict;
    }
  }

  Verdict verdict;
  try {
    verdict = compute();
  } catch (const std::exception& e) {
    verdict.status = "grader_error";
    verdict.score = 0;
    verdict.notes = {e.what()};
  } catch (...) {
    verdict.status = "grader_error";
    verdict.score = 0;
    verdict.notes = {"unknown exception in toolchain"};
  }

  {
    std::scoped_lock lock(mutex_);
    entry->verdict = std::move(verdict);
    entry->ready = true;
  }
  ready_cv_.notify_all();
  return entry->verdict;
}

VerdictCache::Stats VerdictCache::stats() const {
  std::scoped_lock lock(mutex_);
  return Stats{hits_, misses_, collapsed_, entries_.size()};
}

}  // namespace cs31::grader
