#include "grader/toolchain.hpp"

#include <cstdio>
#include <sstream>

#include "analyze/checks_isa.hpp"
#include "analyze/checks_script.hpp"
#include "ccomp/codegen.hpp"
#include "ccomp/driver.hpp"
#include "common/error.hpp"
#include "isa/machine.hpp"
#include "life/traced.hpp"
#include "race/explore.hpp"

namespace cs31::grader {

namespace {

/// Deterministic rubric: full marks for a clean run, a small deduction
/// per lint finding (floored — lint never fails a working program), and
/// fixed scores for the failure buckets so reports are comparable
/// across batches.
int clean_score(std::size_t findings) {
  const int deducted = 100 - static_cast<int>(findings) * 5;
  return deducted < 60 ? 60 : deducted;
}

/// `// args: 1 2 3` (first match wins) supplies main's cdecl arguments.
std::vector<std::int32_t> parse_args_directive(const std::string& body) {
  std::istringstream lines(body);
  std::string line;
  while (std::getline(lines, line)) {
    const auto at = line.find("// args:");
    if (at == std::string::npos) continue;
    std::istringstream rest(line.substr(at + 8));
    std::vector<std::int32_t> args;
    std::int32_t v = 0;
    while (rest >> v) args.push_back(v);
    return args;
  }
  return {};
}

/// Run a loaded machine under the budget and fill the execution half of
/// the verdict. `findings` is the lint count already in `notes`.
void execute(isa::Machine& machine, const ToolchainLimits& limits, std::size_t findings,
             Verdict& verdict) {
  try {
    const auto outcome =
        machine.run_limited({limits.max_instructions, limits.max_seconds});
    verdict.instructions = outcome.instructions;
    if (outcome.reason == isa::Machine::StopReason::Halted) {
      verdict.result = static_cast<std::int32_t>(machine.reg(isa::Reg::Eax));
      verdict.status = findings == 0 ? "ok" : "ok_with_findings";
      verdict.score = clean_score(findings);
    } else {
      verdict.status = "timeout";
      verdict.score = 5;
      verdict.notes.push_back(outcome.reason == isa::Machine::StopReason::InstructionLimit
                                  ? "instruction budget exhausted (runaway loop?)"
                                  : "wall-clock budget exhausted");
    }
  } catch (const Error& e) {
    verdict.instructions = machine.instructions_executed();
    verdict.status = "runtime_error";
    verdict.score = 10;
    verdict.notes.push_back(e.what());
  }
}

Verdict grade_mini_c(const std::string& body, const ToolchainLimits& limits) {
  Verdict verdict;
  std::vector<std::int32_t> args = parse_args_directive(body);
  isa::Image image;
  try {
    // The pipeline's analyze stage produces the lint findings; the
    // entry-stub compile makes the image runnable (push args, call
    // main). Both parse the same body, so diagnostics always describe
    // exactly what runs.
    cc::PipelineResult compiled = cc::compile_pipeline(body);
    for (const analyze::Diagnostic& d : compiled.diagnostics) {
      verdict.notes.push_back(d.to_string());
    }
    image = cc::compile_with_entry(body, args);
  } catch (const Error& e) {
    verdict.status = "compile_error";
    verdict.score = 0;
    verdict.notes.push_back(e.what());
    return verdict;
  }
  const std::size_t findings = verdict.notes.size();
  isa::Machine machine;
  machine.load(image);
  execute(machine, limits, findings, verdict);
  return verdict;
}

Verdict grade_assembly(const std::string& body, const ToolchainLimits& limits) {
  Verdict verdict;
  isa::Image image;
  try {
    image = isa::assemble(body);
    for (const analyze::Diagnostic& d : analyze::lint_image(image)) {
      verdict.notes.push_back(d.to_string());
    }
  } catch (const Error& e) {
    verdict.status = "compile_error";
    verdict.score = 0;
    verdict.notes.push_back(e.what());
    return verdict;
  }
  const std::size_t findings = verdict.notes.size();
  isa::Machine machine;
  machine.load(image);
  execute(machine, limits, findings, verdict);
  return verdict;
}

/// Scenario config: `key=value` header lines (threads, rounds, barrier,
/// rule), then the lab's grid file format (life::Grid::parse).
struct LifeScenario {
  std::size_t threads = 2;
  std::size_t rounds = 1;
  bool barrier = true;
  life::EdgeRule rule = life::EdgeRule::Torus;
  life::Grid grid{1, 1};
};

LifeScenario parse_life_scenario(const std::string& body) {
  LifeScenario scenario;
  std::istringstream lines(body);
  std::string line, grid_text;
  bool in_grid = false;
  while (std::getline(lines, line)) {
    if (!in_grid) {
      if (line.empty()) continue;
      const auto eq = line.find('=');
      if (eq != std::string::npos) {
        const std::string key = line.substr(0, eq);
        const std::string value = line.substr(eq + 1);
        if (key == "threads") {
          scenario.threads = static_cast<std::size_t>(std::stoul(value));
        } else if (key == "rounds") {
          scenario.rounds = static_cast<std::size_t>(std::stoul(value));
        } else if (key == "barrier") {
          require(value == "0" || value == "1", "life scenario: barrier must be 0 or 1");
          scenario.barrier = value == "1";
        } else if (key == "rule") {
          require(value == "torus" || value == "bounded",
                  "life scenario: rule must be torus or bounded");
          scenario.rule =
              value == "torus" ? life::EdgeRule::Torus : life::EdgeRule::Bounded;
        } else {
          throw Error("life scenario: unknown key '" + key + "'");
        }
        continue;
      }
      in_grid = true;  // first non-header line starts the grid block
    }
    grid_text += line;
    grid_text += '\n';
  }
  require(!grid_text.empty(), "life scenario: missing grid");
  scenario.grid = life::Grid::parse(grid_text);
  return scenario;
}

Verdict grade_life_trace(const std::string& body) {
  Verdict verdict;
  try {
    const LifeScenario scenario = parse_life_scenario(body);
    const life::TracedLifeResult result = life::traced_life_check(
        scenario.grid, scenario.threads, scenario.rounds, scenario.barrier, scenario.rule);
    verdict.result = static_cast<std::int32_t>(result.grid.population());
    verdict.events = result.events;
    verdict.races = result.races.size();
    if (result.race_free) {
      verdict.status = "race_free";
      verdict.score = 100;
    } else {
      verdict.status = "race_found";
      verdict.score = 30;
      // One deterministic line per race (capped — a barrier-less run
      // names every band boundary; four localize the bug).
      const std::size_t cap = verdict.races < 4 ? verdict.races : 4;
      for (std::size_t i = 0; i < cap; ++i) {
        const race::RaceReport& race = result.races[i];
        verdict.notes.push_back("race on " + race.variable + ": " + race.first.where +
                                " vs " + race.second.where);
      }
    }
  } catch (const std::exception& e) {
    // std::exception, not just cs31::Error: std::stoul in the header
    // parser throws std:: exceptions on garbage numbers, and a
    // malformed config is an `invalid` verdict either way.
    verdict.status = "invalid";
    verdict.score = 0;
    verdict.notes.push_back(e.what());
  }
  return verdict;
}

/// One thread per non-empty line; ops on a line separated by ';'.
std::vector<std::vector<std::string>> parse_script_threads(const std::string& body) {
  std::vector<std::vector<std::string>> scripts;
  std::istringstream lines(body);
  std::string line;
  while (std::getline(lines, line)) {
    std::vector<std::string> ops;
    std::istringstream parts(line);
    std::string op;
    while (std::getline(parts, op, ';')) {
      const auto begin = op.find_first_not_of(" \t");
      if (begin == std::string::npos) continue;
      ops.push_back(op.substr(begin, op.find_last_not_of(" \t") - begin + 1));
    }
    if (!ops.empty()) scripts.push_back(std::move(ops));
  }
  require(!scripts.empty(), "script submission: no threads");
  return scripts;
}

Verdict grade_script(const std::string& body, const ToolchainLimits& limits) {
  Verdict verdict;
  try {
    const auto scripts = parse_script_threads(body);

    // Static first: every diagnostic becomes a report note, and the
    // summary seeds the exploration (priority hints, independence
    // pruning, blocking semantics).
    const analyze::ConcurSummary summary = analyze::analyze_scripts(scripts);
    std::size_t findings = 0;
    for (const analyze::Diagnostic& d : summary.diagnostics) {
      if (d.severity != analyze::Severity::Note) ++findings;
      verdict.notes.push_back(d.to_string());
    }

    race::ExploreOptions options = analyze::seed_explore_options(summary);
    options.max_schedules = 4096;
    options.max_events = limits.max_instructions;
    const race::ExploreResult explored = race::explore_races(scripts, options);
    verdict.result = static_cast<std::int32_t>(explored.schedules_replayed);
    verdict.events = explored.events_replayed;
    verdict.races = explored.races.size();

    const std::size_t deadlock_cap =
        explored.deadlocks.size() < 4 ? explored.deadlocks.size() : 4;
    for (std::size_t i = 0; i < deadlock_cap; ++i) {
      verdict.notes.push_back(explored.deadlocks[i].to_string());
    }
    const std::size_t race_cap = explored.races.size() < 4 ? explored.races.size() : 4;
    for (std::size_t i = 0; i < race_cap; ++i) {
      const race::RaceReport& race = explored.races[i];
      verdict.notes.push_back("race on " + race.variable + ": " + race.first.where +
                              " vs " + race.second.where);
    }

    if (!explored.deadlocks.empty()) {
      verdict.status = "deadlock_found";
      verdict.score = 20;
    } else if (!explored.races.empty()) {
      verdict.status = "race_found";
      verdict.score = 30;
    } else if (!explored.complete) {
      // No race surfaced, but the schedule/event budget stopped the
      // sweep short of certification — the same honesty rule as a
      // runaway program.
      verdict.status = "timeout";
      verdict.score = 5;
      verdict.notes.push_back("exploration budget exhausted before full coverage");
    } else {
      verdict.status = "race_free";
      verdict.score = clean_score(findings);
    }
  } catch (const std::exception& e) {
    // Malformed ops (analyze) and unlock-without-lock (the Explorer's
    // eager validation) are both submission defects.
    verdict.status = "invalid";
    verdict.score = 0;
    verdict.notes.push_back(e.what());
  }
  return verdict;
}

}  // namespace

Verdict run_toolchain(const Submission& submission, const ToolchainLimits& limits) {
  switch (submission.kind) {
    case SubmissionKind::MiniC: return grade_mini_c(submission.body, limits);
    case SubmissionKind::Assembly: return grade_assembly(submission.body, limits);
    case SubmissionKind::LifeTrace: return grade_life_trace(submission.body);
    case SubmissionKind::Script: return grade_script(submission.body, limits);
  }
  throw Error("unknown submission kind");
}

std::string json_quote(const std::string& text) {
  std::string out = "\"";
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

std::string Verdict::to_json() const {
  std::string out = "{\"status\":" + json_quote(status);
  out += ",\"score\":" + std::to_string(score);
  out += ",\"result\":" + std::to_string(result);
  out += ",\"instructions\":" + std::to_string(instructions);
  out += ",\"events\":" + std::to_string(events);
  out += ",\"races\":" + std::to_string(races);
  out += ",\"notes\":[";
  for (std::size_t i = 0; i < notes.size(); ++i) {
    if (i > 0) out += ',';
    out += json_quote(notes[i]);
  }
  out += "]}";
  return out;
}

}  // namespace cs31::grader
