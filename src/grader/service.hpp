// The batch grading service: the course toolchain as a high-throughput
// backend. Topology (the same bounded-MPSC/router/shard architecture
// as trace::AnalysisPipeline, on the shared common::BoundedQueue):
//
//   submit  — stamps each submission with an arrival sequence number
//             and its content hash, then pushes it onto one bounded
//             ingest queue (MPSC: any number of front-end threads).
//             A full queue BLOCKS the submitter — backpressure, so a
//             burst can never balloon memory.
//   route   — one router thread pops arrivals FIFO and routes each to
//             worker `hash % workers`. Routing by content hash (not
//             round-robin) means identical bodies always land on the
//             same worker, so a duplicate storm serializes behind one
//             toolchain run on one worker while every other worker
//             keeps grading distinct work.
//   grade   — N workers, each popping its own bounded queue, grading
//             through the shared VerdictCache (one toolchain run per
//             distinct hash, service-wide), and writing the finished
//             report line into its arrival-numbered slot. A worker
//             never dies: toolchain verdicts absorb submission defects,
//             the cache absorbs toolchain exceptions, and a last-resort
//             catch turns anything else into a "grader_error" report.
//   merge   — report_stream() reads the slots in arrival order. Because
//             a verdict is a pure function of (kind, body) and the
//             envelope (id, kind, hash) rides with the submission, the
//             stream is BYTE-IDENTICAL for any worker count, any queue
//             capacity, and cache on or off — only wall-clock changes.
//
// Lifecycle: submit from any threads, wait_idle(), then read reports
// and stats (the same flush-then-read rule as the analysis pipeline).
// The destructor drains gracefully: everything submitted is graded.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/bounded_queue.hpp"
#include "grader/cache.hpp"
#include "grader/submission.hpp"
#include "grader/toolchain.hpp"

namespace cs31::grader {

class GraderService {
 public:
  struct Options {
    std::size_t workers = 2;          ///< grading workers (>= 1)
    std::size_t queue_capacity = 64;  ///< ingest + per-worker queue bound (>= 1)
    bool use_cache = true;            ///< content-hash verdict cache
    ToolchainLimits limits;           ///< per-execution resource budget
  };

  struct Stats {
    std::uint64_t submitted = 0;
    std::uint64_t graded = 0;
    std::uint64_t toolchain_runs = 0;  ///< actual compiles/executions (≤ graded when caching)
    VerdictCache::Stats cache;
    std::uint64_t publish_waits = 0;   ///< blocks on full ingest/worker queues
    std::vector<std::uint64_t> graded_per_worker;
  };

  GraderService() : GraderService(Options{}) {}
  explicit GraderService(Options options);
  ~GraderService();

  GraderService(const GraderService&) = delete;
  GraderService& operator=(const GraderService&) = delete;

  /// Enqueue one submission. Blocks while the ingest queue is full.
  void submit(Submission submission);

  /// Convenience: submit a whole batch in order.
  void submit_all(std::vector<Submission> submissions);

  /// Block until every submitted report is finished.
  void wait_idle();

  // --- results (valid while idle) --------------------------------------

  /// One JSON report line per submission, in arrival order — the
  /// deterministic merge (see file comment).
  [[nodiscard]] std::string report_stream() const;

  /// The same lines, unjoined (tests index into them).
  [[nodiscard]] std::vector<std::string> report_lines() const;

  [[nodiscard]] Stats stats() const;

 private:
  struct Job {
    std::uint64_t seq = 0;  ///< arrival number; indexes the report slot
    ContentHash hash = 0;
    Submission submission;
  };

  struct Worker {
    explicit Worker(std::size_t cap) : queue(cap) {}
    common::BoundedQueue<Job> queue;
    std::thread thread;
    std::uint64_t graded = 0;  ///< worker-thread private until idle
  };

  void router_main();
  void worker_main(Worker& worker);
  void finish(const Job& job, const Verdict& verdict);

  const Options options_;
  VerdictCache cache_;
  common::BoundedQueue<Job> ingest_;
  std::thread router_;
  std::vector<std::unique_ptr<Worker>> workers_;

  std::atomic<std::uint64_t> next_seq_{0};
  std::atomic<std::uint64_t> toolchain_runs_{0};

  mutable std::mutex reports_mutex_;
  std::vector<std::string> reports_;  ///< indexed by seq
  std::uint64_t graded_ = 0;
};

}  // namespace cs31::grader
