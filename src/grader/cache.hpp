// The content-hash verdict cache: hash → Verdict, with in-flight
// collapse. A grading service's best workload is its most redundant
// one — a deadline-hour "duplicate storm" where thousands of students
// submit the starter code, the posted solution, or their own unchanged
// file — and a sound cache turns all of it into one toolchain run.
//
// Soundness rests on the toolchain contract (toolchain.hpp): a verdict
// is a pure deterministic function of (kind, body), so a cached verdict
// is indistinguishable from recomputing.
//
// In-flight collapse: the first thread to miss on a hash inserts a
// pending entry and computes OUTSIDE the cache lock (compute is the
// whole toolchain — seconds, potentially); later arrivals for the same
// hash find the pending entry and wait on it instead of computing
// again. N concurrent identical submissions cost exactly one toolchain
// run, not min(N, workers). Distinct hashes never wait on each other.
//
// Accounting distinguishes the three outcomes a lookup can have:
//   miss       this call ran the toolchain
//   hit        a ready verdict was served immediately
//   collapsed  waited for another thread's in-flight compute
//
// The outcome counters are common::ShardedCounter instances bumped
// *outside* the map mutex: under a duplicate storm every worker hits
// the same hash, and hammering three shared integers inside the one
// lock that serializes lookups was measurable contention for what is
// only statistics. The map lock now does map work only.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "common/sharded_counter.hpp"
#include "grader/submission.hpp"
#include "grader/toolchain.hpp"

namespace cs31::grader {

class VerdictCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t collapsed = 0;  ///< waited on an in-flight compute
    std::size_t entries = 0;      ///< distinct hashes resident
  };

  /// Return the verdict for `hash`, running `compute` exactly once per
  /// distinct hash across all concurrent callers. If compute throws,
  /// the exception is converted into a (cached) "grader_error" verdict
  /// so waiters never deadlock on an entry that will never fill — a
  /// grader bug poisons one hash's verdict, not the service.
  Verdict get_or_compute(ContentHash hash, const std::function<Verdict()>& compute);

  [[nodiscard]] Stats stats() const;

 private:
  struct Entry {
    bool ready = false;
    Verdict verdict;
  };

  mutable std::mutex mutex_;  ///< guards entries_ only
  std::condition_variable ready_cv_;
  std::unordered_map<ContentHash, std::shared_ptr<Entry>> entries_;
  common::ShardedCounter hits_, misses_, collapsed_;
};

}  // namespace cs31::grader
