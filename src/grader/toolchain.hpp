// One submission through the course toolchain, to a verdict:
//
//   mini_c      parse → analyze (lint) → codegen → assemble → execute
//               on an isa::Machine under resource limits
//   assembly    assemble → analyze::lint_image → execute under limits
//   life_trace  parse scenario config → life::traced_life_check →
//               FastTrack race verdict
//   script      per-thread op scripts (one thread per line, ops
//               separated by ';') → analyze::analyze_scripts static
//               findings → blocking-aware DPOR exploration seeded from
//               the summary, under a schedule/event budget
//
// The verdict is a PURE, DETERMINISTIC function of (kind, body): no
// timestamps, no hostnames, no wall-clock measurements leak into it.
// That property is what makes the content-hash cache sound (a cached
// verdict is indistinguishable from a fresh one) and what lets the
// service promise byte-identical report streams for any worker count.
// The one caveat is the wall-clock execution limit: a poison submission
// that loops forever is stopped by whichever budget runs out first, so
// the service keeps the (deterministic) instruction budget far below
// the wall-clock budget and the wall clock only fires on a machine so
// loaded the instruction budget could not be consumed in time.
//
// Every failure mode of the *submission* — syntax errors, lint
// findings, segfaults, runaway loops, malformed scenario configs — is
// an ordinary verdict, not an exception; run_toolchain only lets a
// defect of the grader itself escape (and the worker pool catches even
// those, reporting status "grader_error" rather than dying).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "grader/submission.hpp"

namespace cs31::grader {

/// Execution budget per graded program (both kinds of limit; see the
/// file comment for why the instruction budget should stay the binding
/// one).
struct ToolchainLimits {
  std::size_t max_instructions = 2'000'000;
  double max_seconds = 5.0;
};

/// What grading one submission produced. `status` is one of:
///   ok               compiled/assembled clean and ran to completion
///   ok_with_findings ran to completion, but lint found something
///   compile_error    the toolchain rejected the body
///   runtime_error    the program faulted (segmentation violation, ...)
///   timeout          a resource limit stopped it (poison submission)
///   race_free        life_trace/script: certified free of data races
///                    (script: every feasible schedule explored)
///   race_found       life_trace/script: the detector reported races
///   deadlock_found   script: exploration reached a real stuck state
///   invalid          life_trace/script: malformed config or op
struct Verdict {
  std::string status = "invalid";
  int score = 0;                  ///< 0..100, deterministic rubric
  std::int32_t result = 0;        ///< program return value (%eax) / final population
  std::uint64_t instructions = 0; ///< executed (mini_c / assembly)
  std::uint64_t events = 0;       ///< trace events analyzed (life_trace)
  std::uint64_t races = 0;        ///< distinct races reported (life_trace)
  std::vector<std::string> notes; ///< lint findings, fault text, race sites

  /// One deterministic JSON object (fixed key order, sorted content).
  [[nodiscard]] std::string to_json() const;

  friend bool operator==(const Verdict&, const Verdict&) = default;
};

/// Grade one submission. Deterministic; never throws for submission
/// defects (see file comment).
[[nodiscard]] Verdict run_toolchain(const Submission& submission,
                                    const ToolchainLimits& limits = {});

/// JSON-string escape shared by the report paths (quotes + control
/// characters, matching bench_json's encoding).
[[nodiscard]] std::string json_quote(const std::string& text);

}  // namespace cs31::grader
