// Deterministic load generation for the grading service: named
// scenarios that manufacture realistic submission batches without any
// corpus on disk. Every scenario is a pure function of (count, seed),
// so benches and tests replay byte-identical workloads.
//
//   steady           an even mix of distinct, well-formed submissions —
//                    mini-C programs, assembly routines, traced-Life
//                    scenarios — the baseline throughput workload.
//   bursty           the same mix, but arrivals come in bursts (the
//                    plan's burst sizes alternate deadline spikes with
//                    lulls); drivers submit burst-by-burst.
//   duplicate_storm  a handful of distinct bodies duplicated across the
//                    whole batch in shuffled order — deadline hour,
//                    everyone submitting the starter code. The cache's
//                    showcase: N submissions, a handful of toolchain runs.
//   poison           the steady mix with hostile submissions woven in:
//                    infinite loops (assembly and mini-C), a malformed
//                    scenario config, a syntax error. The pool must
//                    report every one of them and keep grading.
//   script_review    the concurrency homework batch: per-thread op
//                    scripts cycling clean (lock-disciplined counter),
//                    racy (unguarded write), and deadlocking (ABBA)
//                    shapes, with a malformed script every eighth
//                    submission. Exercises the static-analyze-then-
//                    explore toolchain path end to end.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "grader/submission.hpp"

namespace cs31::grader {

/// A generated workload: the submissions in arrival order, plus the
/// burst structure (consecutive group sizes summing to
/// submissions.size(); a single burst for non-bursty scenarios).
struct LoadPlan {
  std::vector<Submission> submissions;
  std::vector<std::size_t> bursts;
};

/// The scenario registry, in presentation order.
[[nodiscard]] const std::vector<std::string>& scenario_names();

/// Generate `count` submissions for the named scenario. Throws
/// cs31::Error for unknown names. Deterministic in (name, count, seed).
[[nodiscard]] LoadPlan make_scenario(const std::string& name, std::size_t count,
                                     std::uint32_t seed = 1);

// --- individual body generators (tests use these directly) -------------

/// A distinct, lint-clean mini-C program (loop + helper call) whose
/// return value varies with `variant`.
[[nodiscard]] std::string mini_c_body(std::uint32_t variant);

/// A distinct, lint-clean assembly program (counted loop) halting with
/// a variant-dependent %eax.
[[nodiscard]] std::string assembly_body(std::uint32_t variant);

/// A traced-Life scenario config over a deterministic soup.
/// `with_barrier=false` reproduces the forgotten-barrier bug the
/// detector flags (verdict "race_found").
[[nodiscard]] std::string life_body(std::uint32_t variant, bool with_barrier);

/// An assembly program that never halts (reported as `timeout`).
[[nodiscard]] std::string poison_spin_assembly();

/// A mini-C program that never halts (reported as `timeout`).
[[nodiscard]] std::string poison_spin_mini_c();

/// A scenario config the parser rejects (reported as `invalid`).
[[nodiscard]] std::string poison_bad_life();

/// A mini-C body the compiler rejects (reported as `compile_error`).
[[nodiscard]] std::string poison_bad_mini_c();

/// A lock-disciplined two-thread counter script — every shared access
/// under one consistent mutex (verdict "race_free", full marks).
[[nodiscard]] std::string script_body_clean(std::uint32_t variant);

/// The same counter with one thread forgetting the lock on its write
/// (verdict "race_found").
[[nodiscard]] std::string script_body_racy(std::uint32_t variant);

/// The classic ABBA two-lock nest (verdict "deadlock_found").
[[nodiscard]] std::string script_body_deadlock(std::uint32_t variant);

/// A script with an op the grammar rejects (reported as `invalid`).
[[nodiscard]] std::string poison_bad_script();

}  // namespace cs31::grader
