// What the grading service ingests: one student submission — a mini-C
// source, a teaching-ISA assembly program, or a traced-Life scenario
// config — plus the content hash that keys the verdict cache.
//
// The hash covers the submission *kind* and *body* and nothing else:
// two students handing in byte-identical solutions (or one student
// resubmitting unchanged) collapse to one toolchain run, while the
// same bytes submitted as mini-C and as assembly stay distinct. The
// submission id (who/when) deliberately does not participate — it
// belongs to the report envelope, never to the graded verdict.
#pragma once

#include <cstdint>
#include <string>

namespace cs31::grader {

enum class SubmissionKind {
  MiniC,      ///< mini-C source; compiled, linted, and executed
  Assembly,   ///< AT&T-subset assembly; assembled, linted, and executed
  LifeTrace,  ///< traced-Life scenario config; race-checked
  Script,     ///< per-thread op scripts; statically analyzed, then explored
};

[[nodiscard]] std::string to_string(SubmissionKind kind);

/// One submission. `id` is the envelope label ("alice/hw4/try2");
/// `body` is the graded content.
struct Submission {
  std::string id;
  SubmissionKind kind = SubmissionKind::MiniC;
  std::string body;
};

/// 64-bit content hash (FNV-1a over the kind tag and the body bytes).
/// Collision odds at course scale (even millions of distinct bodies)
/// are negligible, and the cache only ever trades a collision for a
/// wrong-but-deterministic verdict, never for corruption.
using ContentHash = std::uint64_t;

[[nodiscard]] ContentHash content_hash(SubmissionKind kind, const std::string& body);
[[nodiscard]] inline ContentHash content_hash(const Submission& s) {
  return content_hash(s.kind, s.body);
}

/// Fixed-width lowercase hex ("0x" + 16 digits) for reports.
[[nodiscard]] std::string hash_hex(ContentHash hash);

}  // namespace cs31::grader
