#include "grader/submission.hpp"

#include <cstdio>

#include "common/error.hpp"

namespace cs31::grader {

std::string to_string(SubmissionKind kind) {
  switch (kind) {
    case SubmissionKind::MiniC: return "mini_c";
    case SubmissionKind::Assembly: return "assembly";
    case SubmissionKind::LifeTrace: return "life_trace";
    case SubmissionKind::Script: return "script";
  }
  throw Error("unknown submission kind");
}

ContentHash content_hash(SubmissionKind kind, const std::string& body) {
  // FNV-1a, 64-bit. The kind tag is folded in first so identical bytes
  // under different toolchains never share a cache line.
  std::uint64_t h = 14695981039346656037ull;
  const auto mix = [&h](std::uint8_t byte) {
    h ^= byte;
    h *= 1099511628211ull;
  };
  mix(static_cast<std::uint8_t>(kind));
  for (const char c : body) mix(static_cast<std::uint8_t>(c));
  return h;
}

std::string hash_hex(ContentHash hash) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "0x%016llx", static_cast<unsigned long long>(hash));
  return buf;
}

}  // namespace cs31::grader
