// The full mini-C pipeline with the static-analysis stage wired in:
//
//   parse  ->  analyze  ->  [optimize]  ->  generate  ->  assemble
//
// Analysis runs over the *unoptimized* AST — the diagnostics must point
// at what the student wrote, not at what constant folding left behind.
// By default findings ride along in the result as warnings; strict mode
// (`werror`) turns any warning-or-worse finding into a compile error,
// the way the course's build flags treat -Wall.
#pragma once

#include <string>
#include <vector>

#include "analyze/diagnostic.hpp"
#include "ccomp/ast.hpp"
#include "isa/assembler.hpp"

namespace cs31::cc {

struct PipelineOptions {
  bool optimize = false;  ///< run optimizer passes before codegen
  bool analyze = true;    ///< run the static-analysis stage
  bool werror = false;    ///< throw cs31::Error when analysis finds anything
};

struct PipelineResult {
  std::string assembly;                          ///< generated AT&T text
  isa::Image image;                              ///< assembled image
  std::vector<analyze::Diagnostic> diagnostics;  ///< normalized findings
};

/// Run the whole pipeline. Throws cs31::Error on lex/parse/codegen
/// errors always, and on analysis findings of Warning severity or
/// above when `options.werror` is set (the rendered findings become
/// the error text).
[[nodiscard]] PipelineResult compile_pipeline(const std::string& source,
                                              const PipelineOptions& options = {});

}  // namespace cs31::cc
