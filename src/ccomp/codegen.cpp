#include "ccomp/codegen.hpp"

#include <map>
#include <sstream>

#include "ccomp/optimizer.hpp"
#include "ccomp/parser.hpp"
#include "common/error.hpp"
#include "isa/machine.hpp"

namespace cs31::cc {

namespace {

struct Signature {
  std::size_t arity = 0;
};

class Generator {
 public:
  explicit Generator(const ProgramAst& program) : program_(program) {
    for (const Function& fn : program.functions) {
      signatures_[fn.name] = Signature{fn.params.size()};
    }
  }

  std::string run() {
    // main first so the Machine's entry-point heuristic lands on it.
    for (const Function& fn : program_.functions) {
      if (fn.name == "main") emit_function(fn);
    }
    for (const Function& fn : program_.functions) {
      if (fn.name != "main") emit_function(fn);
    }
    return out_.str();
  }

 private:
  [[noreturn]] void fail(int line, const std::string& what) const {
    throw Error("line " + std::to_string(line) + ": " + what);
  }

  std::string fresh_label(const std::string& stem) {
    return ".L" + stem + std::to_string(label_counter_++);
  }

  void emit(const std::string& text) { out_ << "    " << text << '\n'; }
  void emit_label(const std::string& label) { out_ << label << ":\n"; }

  // ---- frame layout ----

  void collect_locals(const Stmt& stmt, std::vector<std::string>& locals) const {
    switch (stmt.kind) {
      case Stmt::Kind::Decl:
        locals.push_back(stmt.name);
        break;
      case Stmt::Kind::Block:
        for (const StmtPtr& s : stmt.body) collect_locals(*s, locals);
        break;
      case Stmt::Kind::If:
        if (stmt.then_branch) collect_locals(*stmt.then_branch, locals);
        if (stmt.else_branch) collect_locals(*stmt.else_branch, locals);
        break;
      case Stmt::Kind::While:
        if (stmt.loop_body) collect_locals(*stmt.loop_body, locals);
        break;
      default:
        break;
    }
  }

  std::string slot(const std::string& name, int line) const {
    const auto it = offsets_.find(name);
    if (it == offsets_.end()) fail(line, "use of undeclared variable '" + name + "'");
    return std::to_string(it->second) + "(%ebp)";
  }

  // ---- expressions (result in %eax) ----

  void emit_bool_from_flags(const char* jcc) {
    const std::string yes = fresh_label("true");
    const std::string end = fresh_label("end");
    emit(std::string(jcc) + " " + yes);
    emit("movl $0, %eax");
    emit("jmp " + end);
    emit_label(yes);
    emit("movl $1, %eax");
    emit_label(end);
  }

  void emit_expr(const Expr& e) {
    switch (e.kind) {
      case Expr::Kind::IntLit:
        emit("movl $" + std::to_string(e.value) + ", %eax");
        return;
      case Expr::Kind::Var:
        emit("movl " + slot(e.name, e.line) + ", %eax");
        return;
      case Expr::Kind::Assign:
        emit_expr(*e.rhs);
        emit("movl %eax, " + slot(e.name, e.line));
        return;
      case Expr::Kind::Unary:
        emit_expr(*e.lhs);
        switch (e.un_op) {
          case UnOp::Neg: emit("negl %eax"); return;
          case UnOp::BitNot: emit("notl %eax"); return;
          case UnOp::LogicalNot:
            emit("cmpl $0, %eax");
            emit_bool_from_flags("je");
            return;
        }
        return;
      case Expr::Kind::Binary:
        emit_binary(e);
        return;
      case Expr::Kind::Call: {
        const auto it = signatures_.find(e.name);
        if (it == signatures_.end()) fail(e.line, "call to unknown function '" + e.name + "'");
        if (it->second.arity != e.args.size()) {
          fail(e.line, "'" + e.name + "' expects " + std::to_string(it->second.arity) +
                           " argument(s), got " + std::to_string(e.args.size()));
        }
        // cdecl: push right-to-left, caller cleans up.
        for (auto arg = e.args.rbegin(); arg != e.args.rend(); ++arg) {
          emit_expr(**arg);
          emit("pushl %eax");
        }
        emit("call " + e.name);
        if (!e.args.empty()) {
          emit("addl $" + std::to_string(4 * e.args.size()) + ", %esp");
        }
        return;
      }
    }
  }

  void emit_binary(const Expr& e) {
    // Short-circuit forms first: they must not evaluate rhs eagerly.
    if (e.bin_op == BinOp::LogicalAnd || e.bin_op == BinOp::LogicalOr) {
      const bool is_and = e.bin_op == BinOp::LogicalAnd;
      const std::string shortcut = fresh_label(is_and ? "false" : "trueor");
      const std::string end = fresh_label("end");
      emit_expr(*e.lhs);
      emit("cmpl $0, %eax");
      emit(std::string(is_and ? "je " : "jne ") + shortcut);
      emit_expr(*e.rhs);
      emit("cmpl $0, %eax");
      emit(std::string(is_and ? "je " : "jne ") + shortcut);
      emit(std::string("movl $") + (is_and ? "1" : "0") + ", %eax");
      emit("jmp " + end);
      emit_label(shortcut);
      emit(std::string("movl $") + (is_and ? "0" : "1") + ", %eax");
      emit_label(end);
      return;
    }

    // lhs -> stack, rhs -> %ebx, lhs back -> %eax.
    emit_expr(*e.lhs);
    emit("pushl %eax");
    emit_expr(*e.rhs);
    emit("movl %eax, %ebx");
    emit("popl %eax");
    switch (e.bin_op) {
      case BinOp::Add: emit("addl %ebx, %eax"); return;
      case BinOp::Sub: emit("subl %ebx, %eax"); return;
      case BinOp::Mul: emit("imull %ebx, %eax"); return;
      case BinOp::BitAnd: emit("andl %ebx, %eax"); return;
      case BinOp::BitOr: emit("orl %ebx, %eax"); return;
      case BinOp::BitXor: emit("xorl %ebx, %eax"); return;
      case BinOp::Shl: emit("shll %ebx, %eax"); return;
      case BinOp::Shr: emit("sarl %ebx, %eax"); return;  // arithmetic, as C ints
      case BinOp::Lt: emit("cmpl %ebx, %eax"); emit_bool_from_flags("jl"); return;
      case BinOp::Gt: emit("cmpl %ebx, %eax"); emit_bool_from_flags("jg"); return;
      case BinOp::Le: emit("cmpl %ebx, %eax"); emit_bool_from_flags("jle"); return;
      case BinOp::Ge: emit("cmpl %ebx, %eax"); emit_bool_from_flags("jge"); return;
      case BinOp::Eq: emit("cmpl %ebx, %eax"); emit_bool_from_flags("je"); return;
      case BinOp::Ne: emit("cmpl %ebx, %eax"); emit_bool_from_flags("jne"); return;
      case BinOp::LogicalAnd:
      case BinOp::LogicalOr:
        return;  // handled above
    }
  }

  // ---- statements ----

  /// Does this statement return on every path through it? Used to elide
  /// jumps and fall-off padding that could never execute, so compiled
  /// images come out clean under the unreachable-block lint.
  static bool stmt_returns(const Stmt& stmt) {
    switch (stmt.kind) {
      case Stmt::Kind::Return:
        return true;
      case Stmt::Kind::Block:
        for (const StmtPtr& s : stmt.body) {
          if (stmt_returns(*s)) return true;
        }
        return false;
      case Stmt::Kind::If:
        return stmt.else_branch != nullptr && stmt_returns(*stmt.then_branch) &&
               stmt_returns(*stmt.else_branch);
      default:
        return false;  // a While's condition may be false on entry
    }
  }

  void emit_stmt(const Stmt& stmt) {
    switch (stmt.kind) {
      case Stmt::Kind::ExprStmt:
        emit_expr(*stmt.expr);
        return;
      case Stmt::Kind::Decl:
        if (stmt.expr) {
          emit_expr(*stmt.expr);
          emit("movl %eax, " + slot(stmt.name, stmt.line));
        }
        return;
      case Stmt::Kind::Return:
        if (stmt.expr) {
          emit_expr(*stmt.expr);
        } else {
          emit("movl $0, %eax");
        }
        emit("jmp " + return_label_);
        return;
      case Stmt::Kind::If: {
        const std::string else_label = fresh_label("else");
        const std::string end = fresh_label("end");
        emit_expr(*stmt.expr);
        emit("cmpl $0, %eax");
        emit("je " + else_label);
        emit_stmt(*stmt.then_branch);
        // No jump over the else arm when the then arm already returned.
        if (!stmt_returns(*stmt.then_branch)) emit("jmp " + end);
        emit_label(else_label);
        if (stmt.else_branch) emit_stmt(*stmt.else_branch);
        emit_label(end);
        return;
      }
      case Stmt::Kind::While: {
        const std::string cond = fresh_label("cond");
        const std::string end = fresh_label("end");
        emit_label(cond);
        emit_expr(*stmt.expr);
        emit("cmpl $0, %eax");
        emit("je " + end);
        emit_stmt(*stmt.loop_body);
        // A body that returns on every path never takes the back edge.
        if (!stmt_returns(*stmt.loop_body)) emit("jmp " + cond);
        emit_label(end);
        return;
      }
      case Stmt::Kind::Block:
        for (const StmtPtr& s : stmt.body) {
          emit_stmt(*s);
          if (stmt_returns(*s)) return;  // the rest can never execute
        }
        return;
    }
  }

  void emit_function(const Function& fn) {
    // Frame layout: params at 8(%ebp), 12(%ebp), ...; locals at
    // -4(%ebp), -8(%ebp), ... (function-scope, classic C89 style).
    offsets_.clear();
    for (std::size_t i = 0; i < fn.params.size(); ++i) {
      require(!offsets_.contains(fn.params[i]),
              "line " + std::to_string(fn.line) + ": duplicate parameter '" +
                  fn.params[i] + "'");
      offsets_[fn.params[i]] = 8 + 4 * static_cast<int>(i);
    }
    std::vector<std::string> locals;
    for (const StmtPtr& s : fn.body) collect_locals(*s, locals);
    for (std::size_t i = 0; i < locals.size(); ++i) {
      require(!offsets_.contains(locals[i]),
              "in '" + fn.name + "': duplicate variable '" + locals[i] + "'");
      offsets_[locals[i]] = -4 * static_cast<int>(i + 1);
    }

    return_label_ = ".Lret_" + fn.name;
    emit_label(fn.name);
    emit("pushl %ebp");
    emit("movl %esp, %ebp");
    if (!locals.empty()) {
      emit("subl $" + std::to_string(4 * locals.size()) + ", %esp");
    }
    bool falls_off = true;
    for (const StmtPtr& s : fn.body) {
      emit_stmt(*s);
      if (stmt_returns(*s)) {
        falls_off = false;
        break;
      }
    }
    if (falls_off) {
      emit("movl $0, %eax");  // implicit return 0 when falling off the end
    }
    emit_label(return_label_);
    emit("leave");
    emit("ret");
  }

  const ProgramAst& program_;
  std::map<std::string, Signature> signatures_;
  std::map<std::string, int> offsets_;
  std::string return_label_;
  std::ostringstream out_;
  int label_counter_ = 0;
};

}  // namespace

std::string generate(const ProgramAst& program) { return Generator(program).run(); }

std::string compile_to_assembly(const std::string& source, bool optimize_first) {
  ProgramAst program = parse(source);
  if (optimize_first) optimize(program);
  return generate(program);
}

isa::Image compile(const std::string& source) {
  return isa::assemble(compile_to_assembly(source));
}

namespace {

isa::Image compile_with_entry_impl(const std::string& source,
                                   const std::vector<std::int32_t>& args,
                                   bool optimize_first) {
  ProgramAst program = parse(source);
  if (optimize_first) optimize(program);
  const Function* main_fn = nullptr;
  for (const Function& fn : program.functions) {
    if (fn.name == "main") main_fn = &fn;
  }
  require(main_fn != nullptr, "program has no main()");
  require(main_fn->params.size() == args.size(),
          "main() expects " + std::to_string(main_fn->params.size()) +
              " argument(s), got " + std::to_string(args.size()));

  // A _start stub pushes the arguments and calls main, so main's frame
  // looks exactly like any other callee's.
  std::ostringstream stub;
  stub << "_start:\n";
  for (auto it = args.rbegin(); it != args.rend(); ++it) {
    stub << "    pushl $" << *it << "\n";
  }
  stub << "    call main\n    hlt\n";
  return isa::assemble(generate(program) + stub.str());
}

}  // namespace

isa::Image compile_with_entry(const std::string& source,
                              const std::vector<std::int32_t>& args) {
  return compile_with_entry_impl(source, args, false);
}

std::int32_t run_mini_c(const std::string& source, const std::vector<std::int32_t>& args,
                        bool optimize_first) {
  isa::Machine machine;
  machine.load(compile_with_entry_impl(source, args, optimize_first));
  machine.run(5'000'000);
  return static_cast<std::int32_t>(machine.reg(isa::Reg::Eax));
}

}  // namespace cs31::cc
