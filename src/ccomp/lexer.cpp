#include "ccomp/lexer.hpp"

#include <cctype>

#include "common/error.hpp"

namespace cs31::cc {

std::string token_name(TokKind kind) {
  switch (kind) {
    case TokKind::End: return "end of input";
    case TokKind::IntLit: return "integer literal";
    case TokKind::Ident: return "identifier";
    case TokKind::KwInt: return "'int'";
    case TokKind::KwIf: return "'if'";
    case TokKind::KwElse: return "'else'";
    case TokKind::KwWhile: return "'while'";
    case TokKind::KwFor: return "'for'";
    case TokKind::KwReturn: return "'return'";
    case TokKind::KwVoid: return "'void'";
    case TokKind::Plus: return "'+'";
    case TokKind::Minus: return "'-'";
    case TokKind::Star: return "'*'";
    case TokKind::Percent: return "'%'";
    case TokKind::Slash: return "'/'";
    case TokKind::Amp: return "'&'";
    case TokKind::Pipe: return "'|'";
    case TokKind::Caret: return "'^'";
    case TokKind::Tilde: return "'~'";
    case TokKind::Bang: return "'!'";
    case TokKind::Less: return "'<'";
    case TokKind::Greater: return "'>'";
    case TokKind::LessEq: return "'<='";
    case TokKind::GreaterEq: return "'>='";
    case TokKind::EqEq: return "'=='";
    case TokKind::BangEq: return "'!='";
    case TokKind::AmpAmp: return "'&&'";
    case TokKind::PipePipe: return "'||'";
    case TokKind::Assign: return "'='";
    case TokKind::LParen: return "'('";
    case TokKind::RParen: return "')'";
    case TokKind::LBrace: return "'{'";
    case TokKind::RBrace: return "'}'";
    case TokKind::Semi: return "';'";
    case TokKind::Comma: return "','";
    case TokKind::Shl: return "'<<'";
    case TokKind::Shr: return "'>>'";
  }
  return "?";
}

std::vector<Token> lex(const std::string& source) {
  std::vector<Token> tokens;
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = source.size();

  auto push = [&](TokKind kind) {
    Token t;
    t.kind = kind;
    t.line = line;
    tokens.push_back(t);
  };

  while (i < n) {
    const char c = source[i];
    if (c == '\n') { ++line; ++i; continue; }
    if (std::isspace(static_cast<unsigned char>(c))) { ++i; continue; }
    if (c == '/' && i + 1 < n && source[i + 1] == '/') {
      while (i < n && source[i] != '\n') ++i;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::int64_t v = 0;
      while (i < n && std::isdigit(static_cast<unsigned char>(source[i]))) {
        v = v * 10 + (source[i] - '0');
        require(v <= 2147483647,
                "line " + std::to_string(line) + ": integer literal overflows int");
        ++i;
      }
      Token t;
      t.kind = TokKind::IntLit;
      t.value = static_cast<std::int32_t>(v);
      t.line = line;
      tokens.push_back(t);
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string word;
      while (i < n && (std::isalnum(static_cast<unsigned char>(source[i])) ||
                       source[i] == '_')) {
        word.push_back(source[i++]);
      }
      Token t;
      t.line = line;
      if (word == "int") t.kind = TokKind::KwInt;
      else if (word == "if") t.kind = TokKind::KwIf;
      else if (word == "else") t.kind = TokKind::KwElse;
      else if (word == "while") t.kind = TokKind::KwWhile;
      else if (word == "for") t.kind = TokKind::KwFor;
      else if (word == "return") t.kind = TokKind::KwReturn;
      else if (word == "void") t.kind = TokKind::KwVoid;
      else {
        t.kind = TokKind::Ident;
        t.text = word;
      }
      tokens.push_back(t);
      continue;
    }

    auto two = [&](char next) { return i + 1 < n && source[i + 1] == next; };
    switch (c) {
      case '+': push(TokKind::Plus); ++i; break;
      case '-': push(TokKind::Minus); ++i; break;
      case '*': push(TokKind::Star); ++i; break;
      case '%': push(TokKind::Percent); ++i; break;
      case '/': push(TokKind::Slash); ++i; break;
      case '~': push(TokKind::Tilde); ++i; break;
      case '^': push(TokKind::Caret); ++i; break;
      case '(': push(TokKind::LParen); ++i; break;
      case ')': push(TokKind::RParen); ++i; break;
      case '{': push(TokKind::LBrace); ++i; break;
      case '}': push(TokKind::RBrace); ++i; break;
      case ';': push(TokKind::Semi); ++i; break;
      case ',': push(TokKind::Comma); ++i; break;
      case '&':
        if (two('&')) { push(TokKind::AmpAmp); i += 2; }
        else { push(TokKind::Amp); ++i; }
        break;
      case '|':
        if (two('|')) { push(TokKind::PipePipe); i += 2; }
        else { push(TokKind::Pipe); ++i; }
        break;
      case '<':
        if (two('=')) { push(TokKind::LessEq); i += 2; }
        else if (two('<')) { push(TokKind::Shl); i += 2; }
        else { push(TokKind::Less); ++i; }
        break;
      case '>':
        if (two('=')) { push(TokKind::GreaterEq); i += 2; }
        else if (two('>')) { push(TokKind::Shr); i += 2; }
        else { push(TokKind::Greater); ++i; }
        break;
      case '=':
        if (two('=')) { push(TokKind::EqEq); i += 2; }
        else { push(TokKind::Assign); ++i; }
        break;
      case '!':
        if (two('=')) { push(TokKind::BangEq); i += 2; }
        else { push(TokKind::Bang); ++i; }
        break;
      default:
        throw Error("line " + std::to_string(line) + ": stray character '" +
                    std::string(1, c) + "'");
    }
  }
  push(TokKind::End);
  return tokens;
}

}  // namespace cs31::cc
