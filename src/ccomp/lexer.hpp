// Lexer for the kit's mini-C language (CS 31's "role of the compiler in
// translating a C program to the binary form" and the Lab 4 / homework
// drills translating C to IA-32). The language is the integer subset
// the course's examples use: int variables, arithmetic, comparisons,
// logical and bitwise operators, if/else, while, functions, recursion.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace cs31::cc {

enum class TokKind {
  End, IntLit, Ident,
  KwInt, KwIf, KwElse, KwWhile, KwFor, KwReturn, KwVoid,
  Plus, Minus, Star, Percent, Slash,
  Amp, Pipe, Caret, Tilde, Bang,
  Less, Greater, LessEq, GreaterEq, EqEq, BangEq,
  AmpAmp, PipePipe,
  Assign, LParen, RParen, LBrace, RBrace, Semi, Comma,
  Shl, Shr,
};

struct Token {
  TokKind kind = TokKind::End;
  std::string text;       ///< identifier spelling
  std::int32_t value = 0; ///< integer literal value
  int line = 0;
};

/// Tokenize mini-C source ( //-comments supported). Throws cs31::Error
/// with a line number on stray characters or overflowing literals.
[[nodiscard]] std::vector<Token> lex(const std::string& source);

/// Token spelling for diagnostics.
[[nodiscard]] std::string token_name(TokKind kind);

}  // namespace cs31::cc
