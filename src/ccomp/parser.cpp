#include "ccomp/parser.hpp"

#include <set>

#include "common/error.hpp"

namespace cs31::cc {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  ProgramAst parse_program() {
    ProgramAst program;
    std::set<std::string> names;
    while (peek().kind != TokKind::End) {
      Function fn = parse_function();
      require(!names.contains(fn.name),
              "line " + std::to_string(fn.line) + ": duplicate function '" +
                  fn.name + "'");
      names.insert(fn.name);
      program.functions.push_back(std::move(fn));
    }
    require(!program.functions.empty(), "program has no functions");
    return program;
  }

 private:
  const Token& peek(int ahead = 0) const {
    const std::size_t i = pos_ + static_cast<std::size_t>(ahead);
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }

  Token eat(TokKind kind) {
    const Token& t = peek();
    require(t.kind == kind, "line " + std::to_string(t.line) + ": expected " +
                                token_name(kind) + ", found " + token_name(t.kind));
    ++pos_;
    return t;
  }

  bool eat_if(TokKind kind) {
    if (peek().kind != kind) return false;
    ++pos_;
    return true;
  }

  [[noreturn]] void fail(const std::string& what) const {
    throw Error("line " + std::to_string(peek().line) + ": " + what);
  }

  Function parse_function() {
    Function fn;
    fn.line = peek().line;
    if (!eat_if(TokKind::KwInt)) {
      eat(TokKind::KwVoid);
      fn.returns_void = true;
    }
    fn.name = eat(TokKind::Ident).text;
    eat(TokKind::LParen);
    if (!eat_if(TokKind::RParen)) {
      if (peek().kind == TokKind::KwVoid && peek(1).kind == TokKind::RParen) {
        eat(TokKind::KwVoid);
      } else {
        do {
          eat(TokKind::KwInt);
          fn.params.push_back(eat(TokKind::Ident).text);
        } while (eat_if(TokKind::Comma));
      }
      eat(TokKind::RParen);
    }
    eat(TokKind::LBrace);
    while (!eat_if(TokKind::RBrace)) {
      fn.body.push_back(parse_statement());
    }
    return fn;
  }

  StmtPtr parse_statement() {
    auto stmt = std::make_unique<Stmt>();
    stmt->line = peek().line;
    switch (peek().kind) {
      case TokKind::KwInt: {
        eat(TokKind::KwInt);
        stmt->kind = Stmt::Kind::Decl;
        stmt->name = eat(TokKind::Ident).text;
        if (eat_if(TokKind::Assign)) stmt->expr = parse_expression();
        eat(TokKind::Semi);
        return stmt;
      }
      case TokKind::KwIf: {
        eat(TokKind::KwIf);
        stmt->kind = Stmt::Kind::If;
        eat(TokKind::LParen);
        stmt->expr = parse_expression();
        eat(TokKind::RParen);
        stmt->then_branch = parse_statement();
        if (eat_if(TokKind::KwElse)) stmt->else_branch = parse_statement();
        return stmt;
      }
      case TokKind::KwWhile: {
        eat(TokKind::KwWhile);
        stmt->kind = Stmt::Kind::While;
        eat(TokKind::LParen);
        stmt->expr = parse_expression();
        eat(TokKind::RParen);
        stmt->loop_body = parse_statement();
        return stmt;
      }
      case TokKind::KwFor: {
        // Desugar: for (init; cond; step) body
        //   => { init; while (cond) { body; step; } }
        eat(TokKind::KwFor);
        eat(TokKind::LParen);
        StmtPtr init;
        if (!eat_if(TokKind::Semi)) {
          init = std::make_unique<Stmt>();
          init->line = peek().line;
          if (eat_if(TokKind::KwInt)) {
            init->kind = Stmt::Kind::Decl;
            init->name = eat(TokKind::Ident).text;
            if (eat_if(TokKind::Assign)) init->expr = parse_expression();
          } else {
            init->kind = Stmt::Kind::ExprStmt;
            init->expr = parse_expression();
          }
          eat(TokKind::Semi);
        }
        ExprPtr cond;
        if (peek().kind == TokKind::Semi) {
          cond = std::make_unique<Expr>();
          cond->kind = Expr::Kind::IntLit;
          cond->value = 1;
        } else {
          cond = parse_expression();
        }
        eat(TokKind::Semi);
        ExprPtr step;
        if (peek().kind != TokKind::RParen) step = parse_expression();
        eat(TokKind::RParen);
        StmtPtr body = parse_statement();

        auto loop_body = std::make_unique<Stmt>();
        loop_body->kind = Stmt::Kind::Block;
        loop_body->line = stmt->line;
        loop_body->body.push_back(std::move(body));
        if (step) {
          auto step_stmt = std::make_unique<Stmt>();
          step_stmt->kind = Stmt::Kind::ExprStmt;
          step_stmt->line = stmt->line;
          step_stmt->expr = std::move(step);
          loop_body->body.push_back(std::move(step_stmt));
        }
        auto loop = std::make_unique<Stmt>();
        loop->kind = Stmt::Kind::While;
        loop->line = stmt->line;
        loop->expr = std::move(cond);
        loop->loop_body = std::move(loop_body);

        stmt->kind = Stmt::Kind::Block;
        if (init) stmt->body.push_back(std::move(init));
        stmt->body.push_back(std::move(loop));
        return stmt;
      }
      case TokKind::KwReturn: {
        eat(TokKind::KwReturn);
        stmt->kind = Stmt::Kind::Return;
        if (peek().kind != TokKind::Semi) stmt->expr = parse_expression();
        eat(TokKind::Semi);
        return stmt;
      }
      case TokKind::LBrace: {
        eat(TokKind::LBrace);
        stmt->kind = Stmt::Kind::Block;
        while (!eat_if(TokKind::RBrace)) stmt->body.push_back(parse_statement());
        return stmt;
      }
      default: {
        stmt->kind = Stmt::Kind::ExprStmt;
        stmt->expr = parse_expression();
        eat(TokKind::Semi);
        return stmt;
      }
    }
  }

  // Precedence climbing: assignment (right-assoc) > || > && > bitor >
  // bitxor > bitand > equality > relational > shift > additive >
  // multiplicative > unary > primary.
  ExprPtr parse_expression() { return parse_assignment(); }

  ExprPtr parse_assignment() {
    // Lookahead: Ident '=' starts an assignment (no lvalue expressions
    // beyond plain variables in mini-C).
    if (peek().kind == TokKind::Ident && peek(1).kind == TokKind::Assign) {
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::Assign;
      e->line = peek().line;
      e->name = eat(TokKind::Ident).text;
      eat(TokKind::Assign);
      e->rhs = parse_assignment();
      return e;
    }
    return parse_binary(0);
  }

  struct Level {
    TokKind tok;
    BinOp op;
    int prec;
  };

  static const Level* level_for(TokKind kind) {
    static const Level kLevels[] = {
        {TokKind::PipePipe, BinOp::LogicalOr, 1},
        {TokKind::AmpAmp, BinOp::LogicalAnd, 2},
        {TokKind::Pipe, BinOp::BitOr, 3},
        {TokKind::Caret, BinOp::BitXor, 4},
        {TokKind::Amp, BinOp::BitAnd, 5},
        {TokKind::EqEq, BinOp::Eq, 6},
        {TokKind::BangEq, BinOp::Ne, 6},
        {TokKind::Less, BinOp::Lt, 7},
        {TokKind::Greater, BinOp::Gt, 7},
        {TokKind::LessEq, BinOp::Le, 7},
        {TokKind::GreaterEq, BinOp::Ge, 7},
        {TokKind::Shl, BinOp::Shl, 8},
        {TokKind::Shr, BinOp::Shr, 8},
        {TokKind::Plus, BinOp::Add, 9},
        {TokKind::Minus, BinOp::Sub, 9},
        {TokKind::Star, BinOp::Mul, 10},
    };
    for (const Level& l : kLevels) {
      if (l.tok == kind) return &l;
    }
    return nullptr;
  }

  ExprPtr parse_binary(int min_prec) {
    ExprPtr lhs = parse_unary();
    for (;;) {
      if (peek().kind == TokKind::Slash || peek().kind == TokKind::Percent) {
        fail("'/' and '%' are not supported: the teaching ISA has no idiv "
             "(see DESIGN.md)");
      }
      const Level* level = level_for(peek().kind);
      if (level == nullptr || level->prec < min_prec) return lhs;
      const int line = peek().line;
      ++pos_;
      ExprPtr rhs = parse_binary(level->prec + 1);
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::Binary;
      e->bin_op = level->op;
      e->lhs = std::move(lhs);
      e->rhs = std::move(rhs);
      e->line = line;
      lhs = std::move(e);
    }
  }

  ExprPtr parse_unary() {
    const Token& t = peek();
    if (t.kind == TokKind::Minus || t.kind == TokKind::Tilde ||
        t.kind == TokKind::Bang) {
      ++pos_;
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::Unary;
      e->line = t.line;
      e->un_op = t.kind == TokKind::Minus  ? UnOp::Neg
                 : t.kind == TokKind::Tilde ? UnOp::BitNot
                                            : UnOp::LogicalNot;
      e->lhs = parse_unary();
      return e;
    }
    return parse_primary();
  }

  ExprPtr parse_primary() {
    const Token& t = peek();
    auto e = std::make_unique<Expr>();
    e->line = t.line;
    switch (t.kind) {
      case TokKind::IntLit:
        ++pos_;
        e->kind = Expr::Kind::IntLit;
        e->value = t.value;
        return e;
      case TokKind::Ident: {
        ++pos_;
        if (eat_if(TokKind::LParen)) {
          e->kind = Expr::Kind::Call;
          e->name = t.text;
          if (!eat_if(TokKind::RParen)) {
            do {
              e->args.push_back(parse_expression());
            } while (eat_if(TokKind::Comma));
            eat(TokKind::RParen);
          }
          return e;
        }
        e->kind = Expr::Kind::Var;
        e->name = t.text;
        return e;
      }
      case TokKind::LParen: {
        ++pos_;
        ExprPtr inner = parse_expression();
        eat(TokKind::RParen);
        return inner;
      }
      default:
        fail("expected an expression, found " + token_name(t.kind));
    }
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

ProgramAst parse(const std::string& source) {
  return Parser(lex(source)).parse_program();
}

}  // namespace cs31::cc
