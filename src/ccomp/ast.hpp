// AST for mini-C. Deliberately flat and value-oriented: expressions and
// statements are small tagged structs owned through unique_ptr, mirroring
// the one-pass structure a course compiler would have.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace cs31::cc {

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// Binary and unary operators the code generator understands. Division
/// and modulo are intentionally absent: the teaching ISA has no idiv,
/// exactly as the course's assembly unit skips it.
enum class BinOp {
  Add, Sub, Mul, BitAnd, BitOr, BitXor, Shl, Shr,
  Lt, Gt, Le, Ge, Eq, Ne, LogicalAnd, LogicalOr,
};
enum class UnOp { Neg, BitNot, LogicalNot };

struct Expr {
  enum class Kind { IntLit, Var, Unary, Binary, Assign, Call } kind = Kind::IntLit;
  std::int32_t value = 0;          // IntLit
  std::string name;                // Var, Assign (target), Call (callee)
  UnOp un_op = UnOp::Neg;          // Unary
  BinOp bin_op = BinOp::Add;       // Binary
  ExprPtr lhs, rhs;                // Unary uses lhs; Assign uses rhs
  std::vector<ExprPtr> args;       // Call
  int line = 0;
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct Stmt {
  enum class Kind { ExprStmt, Decl, If, While, Return, Block } kind = Kind::ExprStmt;
  ExprPtr expr;                 // ExprStmt / condition / return value / initializer
  std::string name;             // Decl
  std::vector<StmtPtr> body;    // Block; If-then is body[0], else is body[1]
  StmtPtr then_branch, else_branch, loop_body;
  int line = 0;
};

/// One function definition: int name(int a, int b) { ... }
struct Function {
  std::string name;
  std::vector<std::string> params;
  std::vector<StmtPtr> body;
  bool returns_void = false;  ///< declared `void` (exempt from missing-return)
  int line = 0;
};

/// A whole translation unit.
struct ProgramAst {
  std::vector<Function> functions;
};

}  // namespace cs31::cc
