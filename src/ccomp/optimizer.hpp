// Optimization passes for mini-C (the course's "efficiency issues in
// the context of different equivalent assembly sequences"): constant
// folding, algebraic identities, strength reduction of multiplications
// by powers of two into shifts, and dead-branch elimination. Every
// rewrite is semantics-preserving under C's int rules — guaranteed by
// the differential fuzz suite, which runs each random program both
// unoptimized and optimized.
#pragma once

#include <cstddef>

#include "ccomp/ast.hpp"

namespace cs31::cc {

/// Does evaluating this expression have an observable effect (an
/// assignment or a call anywhere inside)? Rewrites that would delete a
/// subexpression are applied only when this is false.
[[nodiscard]] bool has_side_effects(const Expr& e);

/// Run the optimizer over a whole program in place. Returns the number
/// of rewrites performed (0 = nothing to do; idempotent afterwards).
std::size_t optimize(ProgramAst& program);

}  // namespace cs31::cc
