// Recursive-descent parser for mini-C with standard C precedence.
#pragma once

#include <string>

#include "ccomp/ast.hpp"
#include "ccomp/lexer.hpp"

namespace cs31::cc {

/// Parse a translation unit. Throws cs31::Error with line numbers on
/// syntax errors, duplicate function names, or use of the unsupported
/// '/' and '%' operators (no idiv in the teaching ISA).
[[nodiscard]] ProgramAst parse(const std::string& source);

}  // namespace cs31::cc
