#include "ccomp/optimizer.hpp"

#include <cstdint>

namespace cs31::cc {

namespace {

bool is_lit(const ExprPtr& e, std::int32_t value) {
  return e && e->kind == Expr::Kind::IntLit && e->value == value;
}

bool is_any_lit(const ExprPtr& e) {
  return e && e->kind == Expr::Kind::IntLit;
}

/// Power-of-two check returning the exponent, or -1.
int log2_exact(std::int32_t v) {
  if (v <= 0) return -1;
  const std::uint32_t u = static_cast<std::uint32_t>(v);
  if ((u & (u - 1)) != 0) return -1;
  int k = 0;
  while ((u >> k) != 1u) ++k;
  return k;
}

ExprPtr make_lit(std::int32_t value, int line) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::IntLit;
  e->value = value;
  e->line = line;
  return e;
}

/// Evaluate a binary op over two literals with C int semantics
/// (wraparound via uint32; shifts masked like the target machine).
std::int32_t eval_bin(BinOp op, std::int32_t a, std::int32_t b) {
  const std::uint32_t ua = static_cast<std::uint32_t>(a);
  const std::uint32_t ub = static_cast<std::uint32_t>(b);
  switch (op) {
    case BinOp::Add: return static_cast<std::int32_t>(ua + ub);
    case BinOp::Sub: return static_cast<std::int32_t>(ua - ub);
    case BinOp::Mul: return static_cast<std::int32_t>(ua * ub);
    case BinOp::BitAnd: return static_cast<std::int32_t>(ua & ub);
    case BinOp::BitOr: return static_cast<std::int32_t>(ua | ub);
    case BinOp::BitXor: return static_cast<std::int32_t>(ua ^ ub);
    case BinOp::Shl: return static_cast<std::int32_t>(ua << (ub & 31u));
    case BinOp::Shr: return a >> (ub & 31u);
    case BinOp::Lt: return a < b;
    case BinOp::Gt: return a > b;
    case BinOp::Le: return a <= b;
    case BinOp::Ge: return a >= b;
    case BinOp::Eq: return a == b;
    case BinOp::Ne: return a != b;
    case BinOp::LogicalAnd: return (a != 0 && b != 0) ? 1 : 0;
    case BinOp::LogicalOr: return (a != 0 || b != 0) ? 1 : 0;
  }
  return 0;
}

class Optimizer {
 public:
  std::size_t rewrites = 0;

  void visit(ExprPtr& e) {
    if (!e) return;
    visit(e->lhs);
    visit(e->rhs);
    for (ExprPtr& arg : e->args) visit(arg);

    switch (e->kind) {
      case Expr::Kind::Unary:
        if (is_any_lit(e->lhs)) {
          const std::int32_t v = e->lhs->value;
          std::int32_t folded = 0;
          switch (e->un_op) {
            case UnOp::Neg:
              folded = static_cast<std::int32_t>(0u - static_cast<std::uint32_t>(v));
              break;
            case UnOp::BitNot:
              folded = static_cast<std::int32_t>(~static_cast<std::uint32_t>(v));
              break;
            case UnOp::LogicalNot:
              folded = v == 0 ? 1 : 0;
              break;
          }
          replace_with_lit(e, folded);
        }
        break;
      case Expr::Kind::Binary:
        rewrite_binary(e);
        break;
      default:
        break;
    }
  }

  void visit(StmtPtr& s) {
    if (!s) return;
    visit(s->expr);
    visit(s->then_branch);
    visit(s->else_branch);
    visit(s->loop_body);
    for (StmtPtr& inner : s->body) visit(inner);

    // Dead-branch elimination: if/while with literal conditions.
    if (s->kind == Stmt::Kind::If && is_any_lit(s->expr)) {
      const bool taken = s->expr->value != 0;
      StmtPtr keep = taken ? std::move(s->then_branch) : std::move(s->else_branch);
      ++rewrites;
      if (keep) {
        s = std::move(keep);
      } else {
        s->kind = Stmt::Kind::Block;  // empty block
        s->expr.reset();
        s->then_branch.reset();
        s->else_branch.reset();
        s->body.clear();
      }
      return;
    }
    if (s->kind == Stmt::Kind::While && is_lit(s->expr, 0)) {
      ++rewrites;
      s->kind = Stmt::Kind::Block;
      s->expr.reset();
      s->loop_body.reset();
      s->body.clear();
    }
  }

 private:
  void replace_with_lit(ExprPtr& e, std::int32_t value) {
    e = make_lit(value, e->line);
    ++rewrites;
  }

  void promote(ExprPtr& e, ExprPtr& child) {
    ExprPtr kept = std::move(child);
    e = std::move(kept);
    ++rewrites;
  }

  void rewrite_binary(ExprPtr& e) {
    // Full fold when both sides are literals.
    if (is_any_lit(e->lhs) && is_any_lit(e->rhs)) {
      replace_with_lit(e, eval_bin(e->bin_op, e->lhs->value, e->rhs->value));
      return;
    }

    switch (e->bin_op) {
      case BinOp::Add:
        if (is_lit(e->rhs, 0)) { promote(e, e->lhs); return; }
        if (is_lit(e->lhs, 0)) { promote(e, e->rhs); return; }
        break;
      case BinOp::Sub:
        if (is_lit(e->rhs, 0)) { promote(e, e->lhs); return; }
        break;
      case BinOp::Mul: {
        if (is_lit(e->rhs, 1)) { promote(e, e->lhs); return; }
        if (is_lit(e->lhs, 1)) { promote(e, e->rhs); return; }
        if ((is_lit(e->rhs, 0) && !has_side_effects(*e->lhs)) ||
            (is_lit(e->lhs, 0) && !has_side_effects(*e->rhs))) {
          replace_with_lit(e, 0);
          return;
        }
        // Strength reduction: x * 2^k -> x << k (multiplication is
        // commutative, so either side's literal qualifies).
        ExprPtr* variable = nullptr;
        int k = -1;
        if (is_any_lit(e->rhs)) { k = log2_exact(e->rhs->value); variable = &e->lhs; }
        else if (is_any_lit(e->lhs)) { k = log2_exact(e->lhs->value); variable = &e->rhs; }
        if (k > 0 && variable != nullptr) {
          ExprPtr var = std::move(*variable);
          e->bin_op = BinOp::Shl;
          e->lhs = std::move(var);
          e->rhs = make_lit(k, e->line);
          ++rewrites;
          return;
        }
        break;
      }
      case BinOp::LogicalAnd:
        // 0 && e -> 0 (e never evaluates anyway: short circuit).
        if (is_lit(e->lhs, 0)) { replace_with_lit(e, 0); return; }
        break;
      case BinOp::LogicalOr:
        if (is_any_lit(e->lhs) && e->lhs->value != 0) { replace_with_lit(e, 1); return; }
        break;
      case BinOp::Shl:
      case BinOp::Shr:
        if (is_lit(e->rhs, 0)) { promote(e, e->lhs); return; }
        break;
      default:
        break;
    }
  }
};

}  // namespace

bool has_side_effects(const Expr& e) {
  if (e.kind == Expr::Kind::Assign || e.kind == Expr::Kind::Call) return true;
  if (e.lhs && has_side_effects(*e.lhs)) return true;
  if (e.rhs && has_side_effects(*e.rhs)) return true;
  for (const ExprPtr& arg : e.args) {
    if (arg && has_side_effects(*arg)) return true;
  }
  return false;
}

std::size_t optimize(ProgramAst& program) {
  Optimizer opt;
  // Iterate to a fixed point: folds can expose further folds.
  std::size_t total = 0;
  for (int round = 0; round < 8; ++round) {
    opt.rewrites = 0;
    for (Function& fn : program.functions) {
      for (StmtPtr& s : fn.body) opt.visit(s);
    }
    total += opt.rewrites;
    if (opt.rewrites == 0) break;
  }
  return total;
}

}  // namespace cs31::cc
