#include "ccomp/driver.hpp"

#include "analyze/checks_c.hpp"
#include "ccomp/codegen.hpp"
#include "ccomp/optimizer.hpp"
#include "ccomp/parser.hpp"
#include "common/error.hpp"

namespace cs31::cc {

PipelineResult compile_pipeline(const std::string& source, const PipelineOptions& options) {
  ProgramAst ast = parse(source);

  PipelineResult result;
  if (options.analyze) {
    result.diagnostics = analyze::analyze_program(ast);
    if (options.werror) {
      bool fatal = false;
      for (const analyze::Diagnostic& d : result.diagnostics) {
        if (d.severity >= analyze::Severity::Warning) fatal = true;
      }
      if (fatal) {
        throw Error("analysis failed (strict mode):\n" +
                    analyze::render(result.diagnostics));
      }
    }
  }

  if (options.optimize) optimize(ast);
  result.assembly = generate(ast);
  result.image = isa::assemble(result.assembly);
  return result;
}

}  // namespace cs31::cc
