// Code generation from mini-C to the kit's IA-32 subset (AT&T text that
// isa::assemble accepts) — the full vertical slice of CS 31: students
// write C, the compiler lowers it to the stack-frame discipline they
// traced by hand (pushl %ebp / movl %esp, %ebp / locals at negative
// %ebp offsets / cdecl argument passing), and the Machine executes it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ccomp/ast.hpp"
#include "isa/assembler.hpp"

namespace cs31::cc {

/// Lower a parsed program to assembly text. Throws cs31::Error on
/// semantic errors: undeclared/duplicate variables, unknown functions,
/// arity mismatches.
[[nodiscard]] std::string generate(const ProgramAst& program);

/// Parse + lower in one step; `optimize_first` runs the optimizer
/// passes (ccomp/optimizer.hpp) before code generation.
[[nodiscard]] std::string compile_to_assembly(const std::string& source,
                                              bool optimize_first = false);

/// Compile and assemble to a loadable image.
[[nodiscard]] isa::Image compile(const std::string& source);

/// Compile with a generated `_start` stub that pushes `args` and calls
/// main — load this into any Machine to run the program under a
/// debugger or with memory tracing. Throws when main is missing or the
/// argument count mismatches.
[[nodiscard]] isa::Image compile_with_entry(const std::string& source,
                                            const std::vector<std::int32_t>& args);

/// Compile, load, call main(args...), and return its result — the
/// "compile and run" loop of Lab 4. Throws cs31::Error when main is
/// missing or the argument count mismatches main's parameters.
[[nodiscard]] std::int32_t run_mini_c(const std::string& source,
                                      const std::vector<std::int32_t>& args = {},
                                      bool optimize_first = false);

}  // namespace cs31::cc
