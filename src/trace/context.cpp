#include "trace/context.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <utility>

#include "common/error.hpp"
#include "trace/pipeline.hpp"

namespace cs31::trace {

namespace {

/// Thread-local fast path: the calling thread's binding into one
/// context, validated by (context address, generation) so a context
/// reallocated at the same address can never hit a stale cache.
struct TlsBinding {
  const void* ctx = nullptr;
  std::uint64_t generation = 0;
  ThreadId tid = 0;
  void* buffer = nullptr;
  /// True when the thread may be parked (park_self, or a rebuilt cache
  /// that cannot know) — the next capture takes the unpark slow path,
  /// which is a no-op if the floor turns out not to be parked.
  bool parked = false;
};

thread_local TlsBinding tls_binding;

std::uint64_t next_generation() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

/// Keep-threshold on the 32-bit xorshift output for a sample rate.
std::uint32_t sample_threshold_for(double rate) {
  require(rate >= 0.0 && rate <= 1.0 && !std::isnan(rate),
          "sample_access_events must be in [0, 1]");
  if (rate >= 1.0) return ~std::uint32_t{0};
  return static_cast<std::uint32_t>(rate * 4294967296.0);
}

/// Per-thread sampling seed: any fixed nonzero function of the context
/// tid keeps the decision stream deterministic per thread.
std::uint32_t sample_seed(ThreadId t) {
  const std::uint32_t seed = (static_cast<std::uint32_t>(t) + 1u) * 2654435761u;
  return seed == 0 ? 1u : seed;
}

}  // namespace

// --- SyncSeqTable --------------------------------------------------------

TraceContext::SyncSeqTable::~SyncSeqTable() {
  for (auto& slot : chunks_) delete slot.load(std::memory_order_relaxed);
}

void TraceContext::SyncSeqTable::ensure(std::size_t count) {
  const std::size_t chunks = (count + kChunkSize - 1) / kChunkSize;
  require(chunks <= kMaxChunks, "trace context: per-object sync counter table is full");
  for (std::size_t i = 0; i < chunks; ++i) {
    if (chunks_[i].load(std::memory_order_relaxed) == nullptr) {
      // Publish a whole zeroed chunk; it never moves afterwards, so the
      // capture path's acquire load below sees fully constructed slots.
      chunks_[i].store(new Chunk{}, std::memory_order_release);
    }
  }
}

std::atomic<std::uint64_t>& TraceContext::SyncSeqTable::counter(NameId id) const {
  Chunk* chunk = chunks_[id / kChunkSize].load(std::memory_order_acquire);
  if (chunk == nullptr) {
    throw Error("sync on lock/channel id " + std::to_string(id) +
                " that was never interned through this context");
  }
  return chunk->slots[id % kChunkSize];
}

// --- construction --------------------------------------------------------

TraceContext::TraceContext(Options options)
    : generation_(next_generation()),
      sample_threshold_(sample_threshold_for(options.sample_access_events)),
      sampling_(options.sample_access_events < 1.0),
      lockfree_(options.capture == CaptureMode::lockfree) {
  if (options.own_detector) {
    owned_detector_ = std::make_unique<race::Detector>();
    detector_ = owned_detector_.get();
    attach_sink(*detector_);
  }
  // Site id 0 is the empty label, so `site = 0` means "no label" on
  // every path without a special case.
  (void)site_names_.id("");
  // The constructing thread is context thread 0.
  auto main = std::make_unique<ThreadBuffer>();
  main->rng = sample_seed(0);
  {
    std::scoped_lock lock(registry_mutex_);
    bindings_[std::this_thread::get_id()] = 0;
    buffers_.push_back(std::move(main));
  }
  tls_binding = TlsBinding{this, generation_, 0, buffers_.front().get()};
}

TraceContext::~TraceContext() {
  if (tls_binding.ctx == this) tls_binding = TlsBinding{};
}

void TraceContext::attach_sink(race::EventSink& sink) {
  std::scoped_lock lock(stream_mutex_);
  require(pipeline_ == nullptr,
          "a pipelined trace context runs no inline sinks — attach them to the "
          "pipeline side instead");
  SinkBinding binding;
  binding.sink = &sink;
  binding.fast = dynamic_cast<race::Detector*>(&sink);
  binding.tid_map.push_back(0);  // context thread 0 is sink thread 0
  sinks_.push_back(std::move(binding));
}

void TraceContext::attach_pipeline(AnalysisPipeline& pipeline) {
  std::scoped_lock lock(stream_mutex_);
  require(pipeline_ == nullptr, "trace context already has an analysis pipeline");
  require(detector_ == nullptr && sinks_.empty(),
          "attach_pipeline needs a context without inline sinks (own_detector = false, "
          "nothing attached)");
  require(sync_clock_.load(std::memory_order_relaxed) == 0 && drains_ == 0,
          "attach the pipeline before the first event");
  pipeline_ = &pipeline;
}

race::Detector& TraceContext::detector() {
  require(detector_ != nullptr, "trace context was built without its own detector");
  return *detector_;
}

const race::Detector& TraceContext::detector() const {
  require(detector_ != nullptr, "trace context was built without its own detector");
  return *detector_;
}

NameId TraceContext::intern_var(std::string_view name) {
  std::scoped_lock lock(intern_mutex_);
  return var_names_.id(name);
}

NameId TraceContext::intern_lock(std::string_view name) {
  std::scoped_lock lock(intern_mutex_);
  const NameId id = lock_names_.id(name);
  lock_seqs_.ensure(lock_names_.size());
  return id;
}

NameId TraceContext::intern_channel(std::string_view name) {
  std::scoped_lock lock(intern_mutex_);
  const NameId id = channel_names_.id(name);
  channel_seqs_.ensure(channel_names_.size());
  return id;
}

NameId TraceContext::intern_site(std::string_view label) {
  std::scoped_lock lock(intern_mutex_);
  return site_names_.id(label);
}

ThreadId TraceContext::self() const {
  if (tls_binding.ctx == this && tls_binding.generation == generation_) {
    return tls_binding.tid;
  }
  std::scoped_lock lock(registry_mutex_);
  const auto it = bindings_.find(std::this_thread::get_id());
  require(it != bindings_.end(),
          "calling thread is not bound to the trace context (spawn it through the "
          "on_thread_create/bind_self hooks or a traced ThreadTeam)");
  return it->second;
}

TraceContext::ThreadBuffer& TraceContext::buffer_of_self() {
  if (tls_binding.ctx == this && tls_binding.generation == generation_) {
    return *static_cast<ThreadBuffer*>(tls_binding.buffer);
  }
  const ThreadId tid = self();  // throws when unbound
  ThreadBuffer& buf = buffer_of(tid);
  // A rebuilt cache cannot know whether the thread parked itself, so
  // the first capture re-checks (and clears the flag either way).
  tls_binding = TlsBinding{this, generation_, tid, &buf, /*parked=*/true};
  return buf;
}

TraceContext::ThreadBuffer& TraceContext::buffer_of(ThreadId t) {
  std::scoped_lock lock(registry_mutex_);
  if (t >= buffers_.size()) {
    throw Error("unknown trace thread id " + std::to_string(t));
  }
  if (buffers_[t] == nullptr) {
    throw Error("trace thread id " + std::to_string(t) +
                " was joined and its buffer retired");
  }
  return *buffers_[t];
}

void TraceContext::bind_self(ThreadId tid) {
  ThreadBuffer* buf = nullptr;
  {
    std::scoped_lock lock(registry_mutex_);
    require(tid < buffers_.size() && buffers_[tid] != nullptr,
            "bind_self: thread id was never forked (or already retired)");
    bindings_[std::this_thread::get_id()] = tid;
    buf = buffers_[tid].get();
  }
  tls_binding = TlsBinding{this, generation_, tid, buf};
}

ThreadId TraceContext::fork_locked(ThreadId parent) {
  // Caller holds stream_mutex_.
  const std::uint64_t stamp = sync_clock_.fetch_add(1, std::memory_order_relaxed) + 1;
  ThreadId child = 0;
  {
    std::scoped_lock lock(registry_mutex_);
    require(parent < buffers_.size() && buffers_[parent] != nullptr,
            "fork from unknown or retired thread id");
    child = static_cast<ThreadId>(buffers_.size());
    auto buf = std::make_unique<ThreadBuffer>();
    buf->epoch = stamp;  // the child's first epoch is the fork's
    buf->floor = stamp;  // and it cannot capture anything older
    buf->rng = sample_seed(child);
    buf->qepoch.store(reclaim_epoch_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    buffers_.push_back(std::move(buf));
    buffers_[parent]->epoch = stamp;  // the parent's next epoch too
  }
  sync_stream_.push_back(Event{EventKind::Fork, parent, child, 0, stamp, 0});
  ++structural_syncs_;
  return child;
}

ThreadId TraceContext::fork_thread(ThreadId parent) {
  std::scoped_lock lock(stream_mutex_);
  const ThreadId child = fork_locked(parent);
  // Drain the parent's buffer so pre-fork accesses are dispatched
  // before any partial (barrier) drain of the children — keeps every
  // drain a consistent prefix of the execution.
  drain_locked({parent}, /*all=*/false);
  return child;
}

ThreadId TraceContext::on_thread_create() { return fork_thread(self()); }

void TraceContext::retire_buffer_locked(ThreadId child) {
  // Caller holds stream_mutex_; the child is joined (its OS thread is
  // gone) and its buffer was just drained.
  std::scoped_lock lock(registry_mutex_);
  std::unique_ptr<ThreadBuffer>& slot = buffers_[child];
  if (slot == nullptr) return;  // already retired
  const ThreadBuffer& buf = *slot;
  retired_stats_[child] = BufferStats{
      child, buf.captured, std::max<std::uint64_t>(buf.high_water, buf.events.size()),
      buf.sampled_out};
  // Drop the dead OS thread's binding so a later std::thread reusing
  // the same native id cannot resolve to the retired tid.
  for (auto it = bindings_.begin(); it != bindings_.end();) {
    it = (it->second == child) ? bindings_.erase(it) : std::next(it);
  }
  // The grace period starts here: only when every live unparked thread
  // has been seen quiescent at (or after) this epoch may the buffer be
  // freed — see advance_and_reclaim_locked.
  const std::uint64_t epoch = reclaim_epoch_.fetch_add(1, std::memory_order_relaxed) + 1;
  retired_.push_back(RetiredBuffer{std::move(slot), epoch});
}

void TraceContext::join_thread(ThreadId parent, ThreadId child) {
  std::scoped_lock lock(stream_mutex_);
  (void)buffer_of(child);  // validate ids before recording
  (void)buffer_of(parent);
  const std::uint64_t stamp = sync_clock_.fetch_add(1, std::memory_order_relaxed) + 1;
  buffer_of(parent).epoch = stamp;
  sync_stream_.push_back(Event{EventKind::Join, parent, child, 0, stamp, 0});
  ++structural_syncs_;
  // The child is finished: its buffer (and the stream, so the Join edge
  // itself lands) drains now; then the buffer retires — parked forever
  // (it must not hold back later drains) and queued for reclamation
  // after its grace period.
  drain_locked({child, parent}, /*all=*/false);
  buffer_of(child).floor = kParkedFloor;
  retire_buffer_locked(child);
}

void TraceContext::on_thread_join(ThreadId child) { join_thread(self(), child); }

void TraceContext::append_access(ThreadBuffer& buf, ThreadId t, EventKind kind, NameId id,
                                 NameId site) {
  buf.events.push_back(Event{kind, t, id, site, buf.epoch, buf.seq++});
  ++buf.captured;
}

void TraceContext::append_sync_lockfree(ThreadBuffer& buf, ThreadId t, EventKind kind,
                                        NameId id, const SyncSeqTable& seqs) {
  // The lock-free hot path: two relaxed fetch_adds and an append to the
  // capturing thread's own buffer. Relaxed suffices for the ordering
  // contract because the caller holds the traced primitive: successive
  // critical sections on one object are ordered by the object's real
  // mutex, and RMWs on a single atomic take increasing values along
  // happens-before — so per object, seq order == stamp order == the
  // real synchronization order (the drain asserts it).
  const std::uint64_t oseq = seqs.counter(id).fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t stamp = sync_clock_.fetch_add(1, std::memory_order_relaxed) + 1;
  buf.events.push_back(Event{kind, t, id, static_cast<NameId>(oseq), stamp, 0});
  buf.epoch = stamp;
  ++buf.captured;
}

void TraceContext::record_sync_stream(ThreadId t, EventKind kind, NameId id,
                                      const SyncSeqTable& seqs) {
  // Reference mode: one global mutex-ordered stream. The per-object seq
  // is drawn under the same lock, so the same execution produces records
  // matching the lock-free mode's byte for byte.
  std::scoped_lock lock(stream_mutex_);
  const std::uint64_t oseq = seqs.counter(id).fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t stamp = sync_clock_.fetch_add(1, std::memory_order_relaxed) + 1;
  sync_stream_.push_back(Event{kind, t, id, static_cast<NameId>(oseq), stamp, 0});
  ThreadBuffer& buf = buffer_of(t);
  buf.epoch = stamp;
  ++buf.captured;
}

void TraceContext::sync_bound(EventKind kind, NameId id, const SyncSeqTable& seqs) {
  if (lockfree_) {
    ThreadBuffer& buf = buffer_of_self();
    // A sync record must not hide in a buffer whose parked floor says
    // "nothing here" — un-park first, exactly like an access.
    if (tls_binding.parked) unpark(buf);
    append_sync_lockfree(buf, tls_binding.tid, kind, id, seqs);
    return;
  }
  record_sync_stream(self(), kind, id, seqs);
}

void TraceContext::sync_as(ThreadId t, EventKind kind, NameId id,
                           const SyncSeqTable& seqs) {
  if (lockfree_) {
    append_sync_lockfree(buffer_of(t), t, kind, id, seqs);
    return;
  }
  record_sync_stream(t, kind, id, seqs);
}

// --- bound-thread capture ----------------------------------------------

void TraceContext::read(NameId var, NameId site) {
  ThreadBuffer& buf = buffer_of_self();
  if (sampling_ && !sample_keep(buf)) return;
  if (tls_binding.parked) unpark(buf);
  append_access(buf, tls_binding.tid, EventKind::Read, var, site);
}

void TraceContext::write(NameId var, NameId site) {
  ThreadBuffer& buf = buffer_of_self();
  if (sampling_ && !sample_keep(buf)) return;
  if (tls_binding.parked) unpark(buf);
  append_access(buf, tls_binding.tid, EventKind::Write, var, site);
}

bool TraceContext::sample_keep(ThreadBuffer& buf) {
  std::uint32_t x = buf.rng;
  x ^= x << 13;
  x ^= x >> 17;
  x ^= x << 5;
  buf.rng = x;
  if (x < sample_threshold_) return true;
  ++buf.sampled_out;
  return false;
}

void TraceContext::unpark(ThreadBuffer& buf) {
  std::scoped_lock lock(stream_mutex_);
  // The buffer is empty while parked, so re-opening the floor at the
  // current epoch covers everything this thread can capture from here.
  if (buf.floor == kParkedFloor) buf.floor = buf.epoch;
  // Returning to activity is a quiescent point: the thread holds no
  // references to any retired buffer here.
  buf.qepoch.store(reclaim_epoch_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  tls_binding.parked = false;
}

void TraceContext::park_self() {
  const ThreadId tid = self();
  std::scoped_lock lock(stream_mutex_);
  drain_locked({tid}, /*all=*/false);  // empty the buffer before going dormant
  buffer_of(tid).floor = kParkedFloor;
  if (tls_binding.ctx == this && tls_binding.generation == generation_) {
    tls_binding.parked = true;
  }
}

void TraceContext::acquire(NameId lock) {
  sync_bound(EventKind::Acquire, lock, lock_seqs_);
}

void TraceContext::release(NameId lock) {
  sync_bound(EventKind::Release, lock, lock_seqs_);
}

void TraceContext::send(NameId channel) {
  sync_bound(EventKind::ChannelSend, channel, channel_seqs_);
}

void TraceContext::recv(NameId channel) {
  sync_bound(EventKind::ChannelRecv, channel, channel_seqs_);
}

void TraceContext::read(const std::string& var, const std::string& where) {
  read(intern_var(var), intern_site(where));
}

void TraceContext::write(const std::string& var, const std::string& where) {
  write(intern_var(var), intern_site(where));
}

void TraceContext::acquire(const std::string& lock) { acquire(intern_lock(lock)); }

void TraceContext::release(const std::string& lock) { release(intern_lock(lock)); }

void TraceContext::send(const std::string& channel) { send(intern_channel(channel)); }

void TraceContext::recv(const std::string& channel) { recv(intern_channel(channel)); }

// --- scripted capture ---------------------------------------------------

void TraceContext::read_as(ThreadId t, NameId var, NameId site) {
  ThreadBuffer& buf = buffer_of(t);
  if (sampling_ && !sample_keep(buf)) return;
  append_access(buf, t, EventKind::Read, var, site);
}

void TraceContext::write_as(ThreadId t, NameId var, NameId site) {
  ThreadBuffer& buf = buffer_of(t);
  if (sampling_ && !sample_keep(buf)) return;
  append_access(buf, t, EventKind::Write, var, site);
}

void TraceContext::acquire_as(ThreadId t, NameId lock) {
  sync_as(t, EventKind::Acquire, lock, lock_seqs_);
}

void TraceContext::release_as(ThreadId t, NameId lock) {
  sync_as(t, EventKind::Release, lock, lock_seqs_);
}

void TraceContext::send_as(ThreadId t, NameId channel) {
  sync_as(t, EventKind::ChannelSend, channel, channel_seqs_);
}

void TraceContext::recv_as(ThreadId t, NameId channel) {
  sync_as(t, EventKind::ChannelRecv, channel, channel_seqs_);
}

// --- barrier / drain -----------------------------------------------------

void TraceContext::barrier_cycle(std::vector<ThreadId> waiters, bool report) {
  require(!waiters.empty(), "barrier cycle needs at least one waiter");
  // A fixed waiter order keeps the recorded stream — and therefore the
  // certificate — independent of arrival order.
  std::sort(waiters.begin(), waiters.end());
  std::scoped_lock lock(stream_mutex_);
  if (report) {
    const std::uint64_t stamp = sync_clock_.fetch_add(1, std::memory_order_relaxed) + 1;
    const auto set_index = static_cast<NameId>(waiter_sets_.size());
    for (const ThreadId w : waiters) buffer_of(w).epoch = stamp;
    sync_stream_.push_back(
        Event{EventKind::BarrierCycle, waiters.front(), set_index, 0, stamp, 0});
    ++structural_syncs_;
    waiter_sets_.push_back(waiters);
  }
  drain_locked(waiters, /*all=*/false);
}

void TraceContext::flush() {
  {
    std::scoped_lock lock(stream_mutex_);
    drain_locked({}, /*all=*/true);
  }
  // "Flush, then read the verdict" must keep holding with a pipeline:
  // wait (outside the stream mutex — the pipeline never needs it) until
  // every published event has been analyzed.
  if (pipeline_ != nullptr) pipeline_->wait_idle();
}

void TraceContext::drain_locked(const std::vector<ThreadId>& subset, bool all) {
  // Caller holds stream_mutex_; every covered buffer's owner is
  // quiescent (see the header's contract), so reading and clearing
  // their vectors is safe. Buffers outside the drain are only consulted
  // for their floor (stream_mutex_-guarded) — never their events.
  //
  // Every source is already drain_order-sorted — pending_ by
  // construction, the sync stream by stamp, and each per-thread buffer
  // because one thread's stamps are nondecreasing in program order with
  // seq breaking ties (and a sync precedes the accesses that run in its
  // epoch) — so the merge is a cascade of sorted-run merges, not a
  // sort: O(n · runs) with mostly-sequential access, and a run that
  // lands entirely past the current tail is a plain append.
  std::vector<Event> merged = std::move(pending_);
  pending_.clear();
  const auto less = [](const Event& a, const Event& b) { return drain_order(a, b); };
  const auto merge_run = [&merged, &less](std::vector<Event>& run) {
    if (run.empty()) return;
    const std::size_t mid = merged.size();
    merged.insert(merged.end(), run.begin(), run.end());
    run.clear();
    if (mid == 0 || !less(merged[mid], merged[mid - 1])) return;  // pure append
    std::inplace_merge(merged.begin(),
                       merged.begin() + static_cast<std::ptrdiff_t>(mid), merged.end(),
                       less);
  };
  merge_run(sync_stream_);

  // The dispatch horizon: an undrained buffer may still hold — or, if
  // its thread is running, still capture — events down to its floor, so
  // nothing at or past the lowest such floor may be dispatched yet
  // (except the floor stamp's own sync event, which drain_order places
  // before every access that executed in it). Held-back events wait in
  // pending_, already sorted; the dispatched sequence is therefore a
  // prefix of the one globally ordered stream regardless of how the
  // drains were batched.
  std::uint64_t horizon = kParkedFloor;
  {
    std::scoped_lock lock(registry_mutex_);
    for (const ThreadId t : subset) {
      if (t >= buffers_.size() || buffers_[t] == nullptr) {
        throw Error("drain of unknown or retired trace thread id " + std::to_string(t));
      }
    }
    covered_scratch_.assign(buffers_.size(), all ? 1 : 0);
    for (const ThreadId t : subset) covered_scratch_[t] = 1;
    for (ThreadId t = 0; t < buffers_.size(); ++t) {
      if (buffers_[t] == nullptr) continue;  // retired: no events, no constraint
      ThreadBuffer& buf = *buffers_[t];
      if (covered_scratch_[t]) {
        buf.high_water = std::max<std::uint64_t>(buf.high_water, buf.events.size());
        merge_run(buf.events);
        if (buf.floor != kParkedFloor) buf.floor = buf.epoch;
      } else {
        horizon = std::min(horizon, buf.floor);
      }
    }
    advance_and_reclaim_locked(covered_scratch_);
  }
  if (merged.empty()) return;
  std::size_t safe = 0;
  while (safe < merged.size() &&
         (merged[safe].stamp < horizon ||
          (merged[safe].stamp == horizon && is_sync(merged[safe].kind)))) {
    ++safe;
  }
  if (safe == 0) {
    pending_ = std::move(merged);
    return;
  }
  ++drains_;
  check_object_seqs(merged, safe);
  if (pipeline_ != nullptr) {
    if (safe < merged.size()) {
      pending_.assign(merged.begin() + static_cast<std::ptrdiff_t>(safe), merged.end());
      merged.resize(safe);
    }
    publish_locked(std::move(merged));
  } else {
    for (std::size_t i = 0; i < safe; ++i) dispatch(merged[i]);
    pending_.assign(merged.begin() + static_cast<std::ptrdiff_t>(safe), merged.end());
  }
}

void TraceContext::advance_and_reclaim_locked(const std::vector<char>& covered) {
  // Caller holds stream_mutex_ and registry_mutex_. A drain is every
  // covered thread's buffer-publish point: its owner is blocked in the
  // barrier/join/flush that triggered the drain, holding no reference
  // into any buffer — so its quiescence epoch advances to the current
  // reclamation epoch on its behalf.
  const std::uint64_t now = reclaim_epoch_.load(std::memory_order_relaxed);
  for (ThreadId t = 0; t < buffers_.size(); ++t) {
    if (buffers_[t] != nullptr && covered[t]) {
      buffers_[t]->qepoch.store(now, std::memory_order_relaxed);
    }
  }
  if (retired_.empty()) return;
  // Grace period: a retired buffer may be freed only once every live
  // unparked buffer has been quiescent at (or after) its retirement
  // epoch. Parked buffers promised no further captures, so they cannot
  // hold references and do not gate the grace period.
  std::uint64_t min_q = now;
  for (const auto& buf : buffers_) {
    if (buf == nullptr || buf->floor == kParkedFloor) continue;
    min_q = std::min(min_q, buf->qepoch.load(std::memory_order_relaxed));
  }
  const auto reclaimable = std::remove_if(
      retired_.begin(), retired_.end(),
      [min_q](const RetiredBuffer& r) { return r.retire_epoch <= min_q; });
  buffers_reclaimed_ += static_cast<std::uint64_t>(retired_.end() - reclaimable);
  retired_.erase(reclaimable, retired_.end());  // frees the ThreadBuffers
}

void TraceContext::check_object_seqs(const std::vector<Event>& events, std::size_t count) {
  // The merge-integrity witness (see the header's ordering argument):
  // restricted to one lock or channel, dispatch order must walk that
  // object's per-object sequence numbers 0,1,2,… — anything else means
  // a sync record was lost, duplicated, or reordered across capture
  // modes, and a silent pass here is what makes "byte-identical to the
  // mutex-ordered stream" a checked property rather than a hope.
  for (std::size_t i = 0; i < count; ++i) {
    const Event& e = events[i];
    if (!is_object_sync(e.kind)) continue;
    const bool is_lock = e.kind == EventKind::Acquire || e.kind == EventKind::Release;
    std::vector<std::uint64_t>& next = is_lock ? next_lock_seq_ : next_channel_seq_;
    if (e.id >= next.size()) next.resize(e.id + 1, 0);
    const std::uint64_t expected = next[e.id]++;
    if (e.site != static_cast<NameId>(expected)) {
      throw Error("trace capture lost or reordered a sync record on " +
                  std::string(is_lock ? "lock" : "channel") + " id " +
                  std::to_string(e.id) + ": expected per-object seq " +
                  std::to_string(expected) + ", got " + std::to_string(e.site));
    }
  }
}

void TraceContext::publish_locked(std::vector<Event>&& events) {
  EventBatch batch;
  batch.events = std::move(events);
  {
    // Snapshot the name tails interned since the last publish: every id
    // an event carries was interned before the event was captured, so
    // the batch is self-contained — pipeline threads never call back
    // into the context.
    std::scoped_lock lock(intern_mutex_);
    for (; published_vars_ < var_names_.size(); ++published_vars_) {
      batch.new_vars.push_back(var_names_.name(static_cast<NameId>(published_vars_)));
    }
    for (; published_locks_ < lock_names_.size(); ++published_locks_) {
      batch.new_locks.push_back(lock_names_.name(static_cast<NameId>(published_locks_)));
    }
    for (; published_channels_ < channel_names_.size(); ++published_channels_) {
      batch.new_channels.push_back(
          channel_names_.name(static_cast<NameId>(published_channels_)));
    }
    for (; published_sites_ < site_names_.size(); ++published_sites_) {
      batch.new_sites.push_back(site_names_.name(static_cast<NameId>(published_sites_)));
    }
  }
  for (; published_waiters_ < waiter_sets_.size(); ++published_waiters_) {
    batch.new_waiter_sets.push_back(waiter_sets_[published_waiters_]);
  }
  // May block on backpressure (holding stream_mutex_): capture threads
  // trying to record sync events then wait too, which is exactly the
  // memory cap the bounded queue promises. The pipeline's consumers
  // never take stream_mutex_, so this cannot deadlock.
  pipeline_->publish(std::move(batch));
}

void TraceContext::dispatch(const Event& event) {
  for (SinkBinding& binding : sinks_) dispatch_to(binding, event);
}

namespace {

/// Sink-side id for a context id, translating through `map` and
/// interning into the sink on first sight.
template <typename Intern>
NameId translate(std::vector<NameId>& map, NameId id, Intern&& intern) {
  constexpr NameId kUnset = static_cast<NameId>(-1);
  if (id >= map.size()) map.resize(id + 1, kUnset);
  if (map[id] == kUnset) map[id] = intern();
  return map[id];
}

}  // namespace

void TraceContext::dispatch_to(SinkBinding& binding, const Event& event) {
  race::EventSink& sink = *binding.sink;
  race::Detector* fast = binding.fast;
  const ThreadId t = binding.tid_map[event.thread];

  const auto name_of = [this](const race::Interner& names, NameId id) {
    std::scoped_lock lock(intern_mutex_);
    return names.name(id);  // returns a reference; copy before unlock
  };

  switch (event.kind) {
    case EventKind::Read:
    case EventKind::Write: {
      if (fast != nullptr) {
        const NameId var = translate(binding.var_map, event.id, [&] {
          return fast->intern_var(name_of(var_names_, event.id));
        });
        const NameId site = translate(binding.site_map, event.site, [&] {
          return fast->intern_site(name_of(site_names_, event.site));
        });
        if (event.kind == EventKind::Read) {
          fast->read(t, var, site);
        } else {
          fast->write(t, var, site);
        }
      } else {
        const std::string var = name_of(var_names_, event.id);
        const std::string site = name_of(site_names_, event.site);
        if (event.kind == EventKind::Read) {
          sink.read(t, var, site);
        } else {
          sink.write(t, var, site);
        }
      }
      return;
    }
    case EventKind::Acquire:
    case EventKind::Release: {
      if (fast != nullptr) {
        const NameId lock = translate(binding.lock_map, event.id, [&] {
          return fast->intern_lock(name_of(lock_names_, event.id));
        });
        if (event.kind == EventKind::Acquire) {
          fast->acquire(t, lock);
        } else {
          fast->release(t, lock);
        }
      } else {
        const std::string lock = name_of(lock_names_, event.id);
        if (event.kind == EventKind::Acquire) {
          sink.acquire(t, lock);
        } else {
          sink.release(t, lock);
        }
      }
      return;
    }
    case EventKind::ChannelSend:
    case EventKind::ChannelRecv: {
      if (fast != nullptr) {
        const NameId channel = translate(binding.channel_map, event.id, [&] {
          return fast->intern_channel(name_of(channel_names_, event.id));
        });
        if (event.kind == EventKind::ChannelSend) {
          fast->channel_send(t, channel);
        } else {
          fast->channel_recv(t, channel);
        }
      } else {
        const std::string channel = name_of(channel_names_, event.id);
        if (event.kind == EventKind::ChannelSend) {
          sink.channel_send(t, channel);
        } else {
          sink.channel_recv(t, channel);
        }
      }
      return;
    }
    case EventKind::Fork: {
      const ThreadId child = sink.fork(t);
      if (event.id >= binding.tid_map.size()) binding.tid_map.resize(event.id + 1, 0);
      binding.tid_map[event.id] = child;
      return;
    }
    case EventKind::Join:
      sink.join(t, binding.tid_map[event.id]);
      return;
    case EventKind::BarrierCycle: {
      const std::vector<ThreadId>& waiters = waiter_sets_[event.id];
      std::vector<ThreadId> mapped;
      mapped.reserve(waiters.size());
      for (const ThreadId w : waiters) mapped.push_back(binding.tid_map[w]);
      sink.barrier(mapped);
      return;
    }
  }
}

std::vector<BufferStats> TraceContext::buffer_stats() const {
  std::scoped_lock lock(registry_mutex_);
  std::vector<BufferStats> stats;
  stats.reserve(buffers_.size());
  for (ThreadId t = 0; t < buffers_.size(); ++t) {
    if (buffers_[t] == nullptr) {
      stats.push_back(retired_stats_.at(t));  // final snapshot of a retired buffer
      continue;
    }
    const ThreadBuffer& buf = *buffers_[t];
    stats.push_back(BufferStats{
        t, buf.captured, std::max<std::uint64_t>(buf.high_water, buf.events.size()),
        buf.sampled_out});
  }
  return stats;
}

std::uint64_t TraceContext::events_sampled_out() const {
  std::scoped_lock lock(registry_mutex_);
  std::uint64_t total = 0;
  for (const auto& buf : buffers_) {
    if (buf != nullptr) total += buf->sampled_out;
  }
  for (const auto& [tid, stats] : retired_stats_) total += stats.sampled_out;
  return total;
}

std::uint64_t TraceContext::drains() const {
  std::scoped_lock lock(stream_mutex_);
  return drains_;
}

std::uint64_t TraceContext::buffers_reclaimed() const {
  std::scoped_lock lock(registry_mutex_);
  return buffers_reclaimed_;
}

std::uint64_t TraceContext::events_captured() const {
  std::uint64_t total = 0;
  {
    std::scoped_lock lock(registry_mutex_);
    for (const auto& buf : buffers_) {
      if (buf != nullptr) total += buf->captured;
    }
    for (const auto& [tid, stats] : retired_stats_) total += stats.captured;
  }
  std::scoped_lock lock(stream_mutex_);
  // Object syncs are counted in their thread's `captured` (both modes);
  // only the structural fork/join/barrier edges live outside buffers.
  return total + structural_syncs_;
}

}  // namespace cs31::trace
