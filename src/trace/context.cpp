#include "trace/context.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <utility>

#include "common/error.hpp"
#include "trace/pipeline.hpp"

namespace cs31::trace {

namespace {

/// Thread-local fast path: the calling thread's binding into one
/// context, validated by (context address, generation) so a context
/// reallocated at the same address can never hit a stale cache.
struct TlsBinding {
  const void* ctx = nullptr;
  std::uint64_t generation = 0;
  ThreadId tid = 0;
  void* buffer = nullptr;
  /// True when the thread may be parked (park_self, or a rebuilt cache
  /// that cannot know) — the next capture takes the unpark slow path,
  /// which is a no-op if the floor turns out not to be parked.
  bool parked = false;
};

thread_local TlsBinding tls_binding;

std::uint64_t next_generation() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

/// Keep-threshold on the 32-bit xorshift output for a sample rate.
std::uint32_t sample_threshold_for(double rate) {
  require(rate >= 0.0 && rate <= 1.0 && !std::isnan(rate),
          "sample_access_events must be in [0, 1]");
  if (rate >= 1.0) return ~std::uint32_t{0};
  return static_cast<std::uint32_t>(rate * 4294967296.0);
}

/// Per-thread sampling seed: any fixed nonzero function of the context
/// tid keeps the decision stream deterministic per thread.
std::uint32_t sample_seed(ThreadId t) {
  const std::uint32_t seed = (static_cast<std::uint32_t>(t) + 1u) * 2654435761u;
  return seed == 0 ? 1u : seed;
}

}  // namespace

TraceContext::TraceContext(Options options)
    : generation_(next_generation()),
      sample_threshold_(sample_threshold_for(options.sample_access_events)),
      sampling_(options.sample_access_events < 1.0) {
  if (options.own_detector) {
    owned_detector_ = std::make_unique<race::Detector>();
    detector_ = owned_detector_.get();
    attach_sink(*detector_);
  }
  // Site id 0 is the empty label, so `site = 0` means "no label" on
  // every path without a special case.
  (void)site_names_.id("");
  // The constructing thread is context thread 0.
  auto main = std::make_unique<ThreadBuffer>();
  main->rng = sample_seed(0);
  {
    std::scoped_lock lock(registry_mutex_);
    bindings_[std::this_thread::get_id()] = 0;
    buffers_.push_back(std::move(main));
  }
  tls_binding = TlsBinding{this, generation_, 0, buffers_.front().get()};
}

TraceContext::~TraceContext() {
  if (tls_binding.ctx == this) tls_binding = TlsBinding{};
}

void TraceContext::attach_sink(race::EventSink& sink) {
  std::scoped_lock lock(stream_mutex_);
  require(pipeline_ == nullptr,
          "a pipelined trace context runs no inline sinks — attach them to the "
          "pipeline side instead");
  SinkBinding binding;
  binding.sink = &sink;
  binding.fast = dynamic_cast<race::Detector*>(&sink);
  binding.tid_map.push_back(0);  // context thread 0 is sink thread 0
  sinks_.push_back(std::move(binding));
}

void TraceContext::attach_pipeline(AnalysisPipeline& pipeline) {
  std::scoped_lock lock(stream_mutex_);
  require(pipeline_ == nullptr, "trace context already has an analysis pipeline");
  require(detector_ == nullptr && sinks_.empty(),
          "attach_pipeline needs a context without inline sinks (own_detector = false, "
          "nothing attached)");
  require(next_stamp_ == 0 && drains_ == 0, "attach the pipeline before the first event");
  pipeline_ = &pipeline;
}

race::Detector& TraceContext::detector() {
  require(detector_ != nullptr, "trace context was built without its own detector");
  return *detector_;
}

const race::Detector& TraceContext::detector() const {
  require(detector_ != nullptr, "trace context was built without its own detector");
  return *detector_;
}

NameId TraceContext::intern_var(std::string_view name) {
  std::scoped_lock lock(intern_mutex_);
  return var_names_.id(name);
}

NameId TraceContext::intern_lock(std::string_view name) {
  std::scoped_lock lock(intern_mutex_);
  return lock_names_.id(name);
}

NameId TraceContext::intern_channel(std::string_view name) {
  std::scoped_lock lock(intern_mutex_);
  return channel_names_.id(name);
}

NameId TraceContext::intern_site(std::string_view label) {
  std::scoped_lock lock(intern_mutex_);
  return site_names_.id(label);
}

ThreadId TraceContext::self() const {
  if (tls_binding.ctx == this && tls_binding.generation == generation_) {
    return tls_binding.tid;
  }
  std::scoped_lock lock(registry_mutex_);
  const auto it = bindings_.find(std::this_thread::get_id());
  require(it != bindings_.end(),
          "calling thread is not bound to the trace context (spawn it through the "
          "on_thread_create/bind_self hooks or a traced ThreadTeam)");
  return it->second;
}

TraceContext::ThreadBuffer& TraceContext::buffer_of_self() {
  if (tls_binding.ctx == this && tls_binding.generation == generation_) {
    return *static_cast<ThreadBuffer*>(tls_binding.buffer);
  }
  const ThreadId tid = self();  // throws when unbound
  ThreadBuffer& buf = buffer_of(tid);
  // A rebuilt cache cannot know whether the thread parked itself, so
  // the first capture re-checks (and clears the flag either way).
  tls_binding = TlsBinding{this, generation_, tid, &buf, /*parked=*/true};
  return buf;
}

TraceContext::ThreadBuffer& TraceContext::buffer_of(ThreadId t) {
  std::scoped_lock lock(registry_mutex_);
  if (t >= buffers_.size()) {
    throw Error("unknown trace thread id " + std::to_string(t));
  }
  return *buffers_[t];
}

void TraceContext::bind_self(ThreadId tid) {
  ThreadBuffer* buf = nullptr;
  {
    std::scoped_lock lock(registry_mutex_);
    require(tid < buffers_.size(), "bind_self: thread id was never forked");
    bindings_[std::this_thread::get_id()] = tid;
    buf = buffers_[tid].get();
  }
  tls_binding = TlsBinding{this, generation_, tid, buf};
}

ThreadId TraceContext::fork_locked(ThreadId parent) {
  // Caller holds stream_mutex_.
  const std::uint64_t stamp = ++next_stamp_;
  ThreadId child = 0;
  {
    std::scoped_lock lock(registry_mutex_);
    require(parent < buffers_.size(), "fork from unknown thread id");
    child = static_cast<ThreadId>(buffers_.size());
    auto buf = std::make_unique<ThreadBuffer>();
    buf->epoch = stamp;  // the child's first epoch is the fork's
    buf->floor = stamp;  // and it cannot capture anything older
    buf->rng = sample_seed(child);
    buffers_.push_back(std::move(buf));
    buffers_[parent]->epoch = stamp;  // the parent's next epoch too
  }
  sync_stream_.push_back(Event{EventKind::Fork, parent, child, 0, stamp, 0});
  return child;
}

ThreadId TraceContext::fork_thread(ThreadId parent) {
  std::scoped_lock lock(stream_mutex_);
  const ThreadId child = fork_locked(parent);
  // Drain the parent's buffer so pre-fork accesses are dispatched
  // before any partial (barrier) drain of the children — keeps every
  // drain a consistent prefix of the execution.
  drain_locked({parent}, /*all=*/false);
  return child;
}

ThreadId TraceContext::on_thread_create() { return fork_thread(self()); }

void TraceContext::join_thread(ThreadId parent, ThreadId child) {
  std::scoped_lock lock(stream_mutex_);
  (void)buffer_of(child);  // validate ids before recording
  (void)buffer_of(parent);
  const std::uint64_t stamp = ++next_stamp_;
  buffer_of(parent).epoch = stamp;
  sync_stream_.push_back(Event{EventKind::Join, parent, child, 0, stamp, 0});
  // The child is finished: its buffer (and the stream, so the Join edge
  // itself lands) drains now, and the child parks permanently — it will
  // never capture again, so it must not hold back later drains.
  drain_locked({child, parent}, /*all=*/false);
  buffer_of(child).floor = kParkedFloor;
}

void TraceContext::on_thread_join(ThreadId child) { join_thread(self(), child); }

void TraceContext::append_access(ThreadBuffer& buf, ThreadId t, EventKind kind, NameId id,
                                 NameId site) {
  buf.events.push_back(Event{kind, t, id, site, buf.epoch, buf.seq++});
  ++buf.captured;
}

std::uint64_t TraceContext::record_sync(ThreadId t, EventKind kind, NameId id,
                                        NameId site) {
  std::scoped_lock lock(stream_mutex_);
  const std::uint64_t stamp = ++next_stamp_;
  sync_stream_.push_back(Event{kind, t, id, site, stamp, 0});
  buffer_of(t).epoch = stamp;
  return stamp;
}

// --- bound-thread capture ----------------------------------------------

void TraceContext::read(NameId var, NameId site) {
  ThreadBuffer& buf = buffer_of_self();
  if (sampling_ && !sample_keep(buf)) return;
  if (tls_binding.parked) unpark(buf);
  append_access(buf, tls_binding.tid, EventKind::Read, var, site);
}

void TraceContext::write(NameId var, NameId site) {
  ThreadBuffer& buf = buffer_of_self();
  if (sampling_ && !sample_keep(buf)) return;
  if (tls_binding.parked) unpark(buf);
  append_access(buf, tls_binding.tid, EventKind::Write, var, site);
}

bool TraceContext::sample_keep(ThreadBuffer& buf) {
  std::uint32_t x = buf.rng;
  x ^= x << 13;
  x ^= x >> 17;
  x ^= x << 5;
  buf.rng = x;
  if (x < sample_threshold_) return true;
  ++buf.sampled_out;
  return false;
}

void TraceContext::unpark(ThreadBuffer& buf) {
  std::scoped_lock lock(stream_mutex_);
  // The buffer is empty while parked, so re-opening the floor at the
  // current epoch covers everything this thread can capture from here.
  if (buf.floor == kParkedFloor) buf.floor = buf.epoch;
  tls_binding.parked = false;
}

void TraceContext::park_self() {
  const ThreadId tid = self();
  std::scoped_lock lock(stream_mutex_);
  drain_locked({tid}, /*all=*/false);  // empty the buffer before going dormant
  buffer_of(tid).floor = kParkedFloor;
  if (tls_binding.ctx == this && tls_binding.generation == generation_) {
    tls_binding.parked = true;
  }
}

void TraceContext::acquire(NameId lock) { (void)record_sync(self(), EventKind::Acquire, lock); }

void TraceContext::release(NameId lock) { (void)record_sync(self(), EventKind::Release, lock); }

void TraceContext::send(NameId channel) {
  (void)record_sync(self(), EventKind::ChannelSend, channel);
}

void TraceContext::recv(NameId channel) {
  (void)record_sync(self(), EventKind::ChannelRecv, channel);
}

void TraceContext::read(const std::string& var, const std::string& where) {
  read(intern_var(var), intern_site(where));
}

void TraceContext::write(const std::string& var, const std::string& where) {
  write(intern_var(var), intern_site(where));
}

void TraceContext::acquire(const std::string& lock) { acquire(intern_lock(lock)); }

void TraceContext::release(const std::string& lock) { release(intern_lock(lock)); }

void TraceContext::send(const std::string& channel) { send(intern_channel(channel)); }

void TraceContext::recv(const std::string& channel) { recv(intern_channel(channel)); }

// --- scripted capture ---------------------------------------------------

void TraceContext::read_as(ThreadId t, NameId var, NameId site) {
  ThreadBuffer& buf = buffer_of(t);
  if (sampling_ && !sample_keep(buf)) return;
  append_access(buf, t, EventKind::Read, var, site);
}

void TraceContext::write_as(ThreadId t, NameId var, NameId site) {
  ThreadBuffer& buf = buffer_of(t);
  if (sampling_ && !sample_keep(buf)) return;
  append_access(buf, t, EventKind::Write, var, site);
}

void TraceContext::acquire_as(ThreadId t, NameId lock) {
  (void)record_sync(t, EventKind::Acquire, lock);
}

void TraceContext::release_as(ThreadId t, NameId lock) {
  (void)record_sync(t, EventKind::Release, lock);
}

void TraceContext::send_as(ThreadId t, NameId channel) {
  (void)record_sync(t, EventKind::ChannelSend, channel);
}

void TraceContext::recv_as(ThreadId t, NameId channel) {
  (void)record_sync(t, EventKind::ChannelRecv, channel);
}

// --- barrier / drain -----------------------------------------------------

void TraceContext::barrier_cycle(std::vector<ThreadId> waiters, bool report) {
  require(!waiters.empty(), "barrier cycle needs at least one waiter");
  // A fixed waiter order keeps the recorded stream — and therefore the
  // certificate — independent of arrival order.
  std::sort(waiters.begin(), waiters.end());
  std::scoped_lock lock(stream_mutex_);
  if (report) {
    const std::uint64_t stamp = ++next_stamp_;
    const auto set_index = static_cast<NameId>(waiter_sets_.size());
    for (const ThreadId w : waiters) buffer_of(w).epoch = stamp;
    sync_stream_.push_back(
        Event{EventKind::BarrierCycle, waiters.front(), set_index, 0, stamp, 0});
    waiter_sets_.push_back(waiters);
  }
  drain_locked(waiters, /*all=*/false);
}

void TraceContext::flush() {
  {
    std::scoped_lock lock(stream_mutex_);
    drain_locked({}, /*all=*/true);
  }
  // "Flush, then read the verdict" must keep holding with a pipeline:
  // wait (outside the stream mutex — the pipeline never needs it) until
  // every published event has been analyzed.
  if (pipeline_ != nullptr) pipeline_->wait_idle();
}

void TraceContext::drain_locked(const std::vector<ThreadId>& subset, bool all) {
  // Caller holds stream_mutex_; every covered buffer's owner is
  // quiescent (see the header's contract), so reading and clearing
  // their vectors is safe. Buffers outside the drain are only consulted
  // for their floor (stream_mutex_-guarded) — never their events.
  std::vector<Event> merged;
  merged.swap(pending_);
  merged.insert(merged.end(), sync_stream_.begin(), sync_stream_.end());
  sync_stream_.clear();

  // The dispatch horizon: an undrained buffer may still hold — or, if
  // its thread is running, still capture — events down to its floor, so
  // nothing at or past the lowest such floor may be dispatched yet
  // (except the floor stamp's own sync event, which drain_order places
  // before every access that executed in it). Held-back events wait in
  // pending_, already sorted; the dispatched sequence is therefore a
  // prefix of the one globally ordered stream regardless of how the
  // drains were batched.
  std::uint64_t horizon = kParkedFloor;
  {
    std::scoped_lock lock(registry_mutex_);
    for (const ThreadId t : subset) {
      if (t >= buffers_.size()) {
        throw Error("drain of unknown trace thread id " + std::to_string(t));
      }
    }
    std::vector<char> covered(buffers_.size(), all ? 1 : 0);
    for (const ThreadId t : subset) covered[t] = 1;
    for (ThreadId t = 0; t < buffers_.size(); ++t) {
      ThreadBuffer& buf = *buffers_[t];
      if (covered[t]) {
        buf.high_water = std::max<std::uint64_t>(buf.high_water, buf.events.size());
        merged.insert(merged.end(), buf.events.begin(), buf.events.end());
        buf.events.clear();
        if (buf.floor != kParkedFloor) buf.floor = buf.epoch;
      } else {
        horizon = std::min(horizon, buf.floor);
      }
    }
  }
  if (merged.empty()) return;
  std::sort(merged.begin(), merged.end(), [](const Event& a, const Event& b) {
    return drain_order(a, b);
  });
  std::size_t safe = 0;
  while (safe < merged.size() &&
         (merged[safe].stamp < horizon ||
          (merged[safe].stamp == horizon && is_sync(merged[safe].kind)))) {
    ++safe;
  }
  if (safe == 0) {
    pending_ = std::move(merged);
    return;
  }
  ++drains_;
  if (pipeline_ != nullptr) {
    publish_locked(merged, safe);
  } else {
    for (std::size_t i = 0; i < safe; ++i) dispatch(merged[i]);
  }
  pending_.assign(merged.begin() + safe, merged.end());
}

void TraceContext::publish_locked(const std::vector<Event>& events, std::size_t count) {
  EventBatch batch;
  batch.events.assign(events.begin(), events.begin() + count);
  {
    // Snapshot the name tails interned since the last publish: every id
    // an event carries was interned before the event was captured, so
    // the batch is self-contained — pipeline threads never call back
    // into the context.
    std::scoped_lock lock(intern_mutex_);
    for (; published_vars_ < var_names_.size(); ++published_vars_) {
      batch.new_vars.push_back(var_names_.name(static_cast<NameId>(published_vars_)));
    }
    for (; published_locks_ < lock_names_.size(); ++published_locks_) {
      batch.new_locks.push_back(lock_names_.name(static_cast<NameId>(published_locks_)));
    }
    for (; published_channels_ < channel_names_.size(); ++published_channels_) {
      batch.new_channels.push_back(
          channel_names_.name(static_cast<NameId>(published_channels_)));
    }
    for (; published_sites_ < site_names_.size(); ++published_sites_) {
      batch.new_sites.push_back(site_names_.name(static_cast<NameId>(published_sites_)));
    }
  }
  for (; published_waiters_ < waiter_sets_.size(); ++published_waiters_) {
    batch.new_waiter_sets.push_back(waiter_sets_[published_waiters_]);
  }
  // May block on backpressure (holding stream_mutex_): capture threads
  // trying to record sync events then wait too, which is exactly the
  // memory cap the bounded queue promises. The pipeline's consumers
  // never take stream_mutex_, so this cannot deadlock.
  pipeline_->publish(std::move(batch));
}

void TraceContext::dispatch(const Event& event) {
  for (SinkBinding& binding : sinks_) dispatch_to(binding, event);
}

namespace {

/// Sink-side id for a context id, translating through `map` and
/// interning into the sink on first sight.
template <typename Intern>
NameId translate(std::vector<NameId>& map, NameId id, Intern&& intern) {
  constexpr NameId kUnset = static_cast<NameId>(-1);
  if (id >= map.size()) map.resize(id + 1, kUnset);
  if (map[id] == kUnset) map[id] = intern();
  return map[id];
}

}  // namespace

void TraceContext::dispatch_to(SinkBinding& binding, const Event& event) {
  race::EventSink& sink = *binding.sink;
  race::Detector* fast = binding.fast;
  const ThreadId t = binding.tid_map[event.thread];

  const auto name_of = [this](const race::Interner& names, NameId id) {
    std::scoped_lock lock(intern_mutex_);
    return names.name(id);  // returns a reference; copy before unlock
  };

  switch (event.kind) {
    case EventKind::Read:
    case EventKind::Write: {
      if (fast != nullptr) {
        const NameId var = translate(binding.var_map, event.id, [&] {
          return fast->intern_var(name_of(var_names_, event.id));
        });
        const NameId site = translate(binding.site_map, event.site, [&] {
          return fast->intern_site(name_of(site_names_, event.site));
        });
        if (event.kind == EventKind::Read) {
          fast->read(t, var, site);
        } else {
          fast->write(t, var, site);
        }
      } else {
        const std::string var = name_of(var_names_, event.id);
        const std::string site = name_of(site_names_, event.site);
        if (event.kind == EventKind::Read) {
          sink.read(t, var, site);
        } else {
          sink.write(t, var, site);
        }
      }
      return;
    }
    case EventKind::Acquire:
    case EventKind::Release: {
      if (fast != nullptr) {
        const NameId lock = translate(binding.lock_map, event.id, [&] {
          return fast->intern_lock(name_of(lock_names_, event.id));
        });
        if (event.kind == EventKind::Acquire) {
          fast->acquire(t, lock);
        } else {
          fast->release(t, lock);
        }
      } else {
        const std::string lock = name_of(lock_names_, event.id);
        if (event.kind == EventKind::Acquire) {
          sink.acquire(t, lock);
        } else {
          sink.release(t, lock);
        }
      }
      return;
    }
    case EventKind::ChannelSend:
    case EventKind::ChannelRecv: {
      if (fast != nullptr) {
        const NameId channel = translate(binding.channel_map, event.id, [&] {
          return fast->intern_channel(name_of(channel_names_, event.id));
        });
        if (event.kind == EventKind::ChannelSend) {
          fast->channel_send(t, channel);
        } else {
          fast->channel_recv(t, channel);
        }
      } else {
        const std::string channel = name_of(channel_names_, event.id);
        if (event.kind == EventKind::ChannelSend) {
          sink.channel_send(t, channel);
        } else {
          sink.channel_recv(t, channel);
        }
      }
      return;
    }
    case EventKind::Fork: {
      const ThreadId child = sink.fork(t);
      if (event.id >= binding.tid_map.size()) binding.tid_map.resize(event.id + 1, 0);
      binding.tid_map[event.id] = child;
      return;
    }
    case EventKind::Join:
      sink.join(t, binding.tid_map[event.id]);
      return;
    case EventKind::BarrierCycle: {
      const std::vector<ThreadId>& waiters = waiter_sets_[event.id];
      std::vector<ThreadId> mapped;
      mapped.reserve(waiters.size());
      for (const ThreadId w : waiters) mapped.push_back(binding.tid_map[w]);
      sink.barrier(mapped);
      return;
    }
  }
}

std::vector<BufferStats> TraceContext::buffer_stats() const {
  std::scoped_lock lock(registry_mutex_);
  std::vector<BufferStats> stats;
  stats.reserve(buffers_.size());
  for (ThreadId t = 0; t < buffers_.size(); ++t) {
    const ThreadBuffer& buf = *buffers_[t];
    stats.push_back(BufferStats{
        t, buf.captured, std::max<std::uint64_t>(buf.high_water, buf.events.size()),
        buf.sampled_out});
  }
  return stats;
}

std::uint64_t TraceContext::events_sampled_out() const {
  std::scoped_lock lock(registry_mutex_);
  std::uint64_t total = 0;
  for (const auto& buf : buffers_) total += buf->sampled_out;
  return total;
}

std::uint64_t TraceContext::drains() const {
  std::scoped_lock lock(stream_mutex_);
  return drains_;
}

std::uint64_t TraceContext::events_captured() const {
  std::uint64_t total = 0;
  {
    std::scoped_lock lock(registry_mutex_);
    for (const auto& buf : buffers_) total += buf->captured;
  }
  std::scoped_lock lock(stream_mutex_);
  // Sync events live in the stream, not the per-thread buffers; count
  // what has been stamped so far.
  return total + next_stamp_;
}

}  // namespace cs31::trace
