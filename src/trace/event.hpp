// The capture layer's wire format: one POD event per runtime action,
// everything interned to dense uint32 ids so a real thread can record
// an access with a single vector push_back — no strings, no locks, no
// detector work on the instrumented thread's hot path. Detection cost
// moves to the drain points (barrier cycles, joins, explicit flush),
// where the buffers are merged into one deterministic stream and fed to
// every attached sink (see context.hpp).
#pragma once

#include <cstdint>

#include "race/interner.hpp"
#include "race/vector_clock.hpp"

namespace cs31::trace {

using race::NameId;
using race::ThreadId;

/// What happened. Read/Write/Acquire/Release/Send/Recv mirror the
/// race::EventSink vocabulary; Fork/Join/BarrierCycle are the
/// structural edges the runtime primitives emit.
enum class EventKind : std::uint8_t {
  Read,
  Write,
  Acquire,
  Release,
  ChannelSend,
  ChannelRecv,
  Fork,          ///< id = child thread; recorded by the parent
  Join,          ///< id = child thread; recorded by the parent
  BarrierCycle,  ///< id = index into the context's waiter-set table
};

[[nodiscard]] constexpr bool is_sync(EventKind kind) {
  return kind >= EventKind::Acquire;
}

/// Sync events that name a runtime *object* (a lock or a channel) and
/// therefore carry that object's per-object sequence number — as
/// opposed to the structural edges (Fork/Join/BarrierCycle), which
/// stay on the context's locked slow path.
[[nodiscard]] constexpr bool is_object_sync(EventKind kind) {
  return kind >= EventKind::Acquire && kind <= EventKind::ChannelRecv;
}

/// One captured event. `stamp` orders the merged stream: a sync event
/// owns a fresh globally-unique stamp (taken while the corresponding
/// runtime object is held, so stamps respect the real synchronization
/// order); an access event carries the stamp of its thread's last
/// observed sync event, i.e. the epoch it executed in. Within an
/// epoch a thread's events keep program order via `seq`.
///
/// Field reuse keeps the POD at 32 bytes: access events use `site` for
/// their access-site label; object-sync events (is_object_sync) have no
/// site, so `site` carries the low 32 bits of the object's per-object
/// sequence number instead — the k-th sync operation ever performed on
/// that lock/channel, numbered by a fetch_add taken while the object is
/// held. The drain's merge asserts these run 0,1,2,… per object in
/// stamp order, which is the witness that the merged order reproduces
/// each object's real synchronization order (context.hpp has the
/// argument).
struct Event {
  EventKind kind = EventKind::Read;
  ThreadId thread = 0;
  NameId id = 0;    ///< variable / lock / channel; Fork/Join: child tid
  NameId site = 0;  ///< access: site label (0 = empty); object sync: per-object seq
  std::uint64_t stamp = 0;
  std::uint64_t seq = 0;  ///< per-thread sequence number
};

/// Deterministic merge order of the drained stream:
///   1. stamp (the epoch an event executed in);
///   2. the sync event that *created* a stamp precedes the accesses
///      executing in it (there is exactly one such sync event);
///   3. thread id (concurrent threads in one epoch are serialized
///      low-to-high — any fixed choice yields the same verdicts, a
///      fixed one also yields byte-identical certificates);
///   4. per-thread sequence (program order).
[[nodiscard]] constexpr bool drain_order(const Event& a, const Event& b) {
  if (a.stamp != b.stamp) return a.stamp < b.stamp;
  if (is_sync(a.kind) != is_sync(b.kind)) return is_sync(a.kind);
  if (a.thread != b.thread) return a.thread < b.thread;
  return a.seq < b.seq;
}

}  // namespace cs31::trace
