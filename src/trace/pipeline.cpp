#include "trace/pipeline.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/error.hpp"

namespace cs31::trace {

// The backpressure primitive lives in common/bounded_queue.hpp now
// (grader's ingest/worker queues share it); the pipeline only wires
// the topology: one batch queue into the router, one chunk queue per
// shard.

AnalysisPipeline::AnalysisPipeline(Options options) : options_(options) {
  require(options_.shards >= 1, "analysis pipeline needs at least one shard");
  require(options_.queue_capacity >= 1, "analysis pipeline queue capacity must be >= 1");
  batches_.capacity = options_.queue_capacity;
  shards_.reserve(options_.shards);
  for (std::size_t s = 0; s < options_.shards; ++s) {
    shards_.push_back(std::make_unique<Shard>(options_.queue_capacity));
    shards_.back()->stats.shard = s;
  }
  for (auto& shard : shards_) {
    Shard* s = shard.get();
    shard->worker = std::thread([this, s] { shard_main(*s); });
  }
  router_ = std::thread([this] { router_main(); });
}

AnalysisPipeline::~AnalysisPipeline() {
  // Graceful drain: closed queues still deliver what they hold, so
  // everything published before destruction is analyzed.
  batches_.close();
  if (router_.joinable()) router_.join();
  for (auto& shard : shards_) {
    shard->queue.close();
    if (shard->worker.joinable()) shard->worker.join();
  }
}

void AnalysisPipeline::attach_metrics(MetricsSink& sink) {
  std::scoped_lock lock(merge_mutex_);
  require(metrics_sink_ == nullptr, "analysis pipeline already has a metrics sink");
  metrics_sink_ = &sink;
}

void AnalysisPipeline::publish(EventBatch batch) { batches_.push(std::move(batch)); }

void AnalysisPipeline::router_main() {
  EventBatch batch;
  std::vector<ShardChunk> staging(shards_.size());
  while (batches_.pop(batch)) {
    // Table deltas go to every shard (each keeps private copies) and to
    // the router's own metrics tables.
    lock_names_.insert(lock_names_.end(), batch.new_locks.begin(), batch.new_locks.end());
    waiter_sets_.insert(waiter_sets_.end(), batch.new_waiter_sets.begin(),
                        batch.new_waiter_sets.end());
    for (ShardChunk& chunk : staging) {
      chunk.new_vars = batch.new_vars;
      chunk.new_locks = batch.new_locks;
      chunk.new_channels = batch.new_channels;
      chunk.new_sites = batch.new_sites;
      chunk.new_waiter_sets = batch.new_waiter_sets;
    }
    for (const Event& event : batch.events) {
      const std::uint64_t index = ++next_index_;
      if (!is_sync(event.kind)) {
        // Access event: exactly one shard owns this variable's shadow
        // state. (Shard metrics count it, so nothing is counted twice.)
        staging[event.id % shards_.size()].events.push_back(StampedEvent{event, index});
        continue;
      }
      // Sync event: broadcast — every shard advances the same
      // happens-before state an inline detector would hold.
      for (ShardChunk& chunk : staging) chunk.events.push_back(StampedEvent{event, index});
      ++router_metrics_.events;
      switch (event.kind) {
        case EventKind::Acquire:
          // count_acquire bumps events itself; undo the generic bump.
          --router_metrics_.events;
          router_metrics_.count_acquire(event.thread, event.id);
          break;
        case EventKind::Release:
          ++router_metrics_.of(event.thread).releases;
          break;
        case EventKind::ChannelSend:
          ++router_metrics_.of(event.thread).sends;
          break;
        case EventKind::ChannelRecv:
          ++router_metrics_.of(event.thread).recvs;
          break;
        case EventKind::Fork:
          (void)router_metrics_.of(event.id);  // the child gets a row
          break;
        case EventKind::Join:
          break;
        case EventKind::BarrierCycle:
          for (const ThreadId w : waiter_sets_[event.id]) ++router_metrics_.of(w).barriers;
          ++router_metrics_.barrier_cycles;
          break;
        default:
          break;
      }
    }
    for (std::size_t s = 0; s < staging.size(); ++s) {
      ShardChunk& chunk = staging[s];
      const bool has_deltas = !chunk.new_vars.empty() || !chunk.new_locks.empty() ||
                              !chunk.new_channels.empty() || !chunk.new_sites.empty() ||
                              !chunk.new_waiter_sets.empty();
      if (chunk.events.empty() && !has_deltas) continue;
      shards_[s]->queue.push(std::move(chunk));
      staging[s] = ShardChunk{};
    }
    batch = EventBatch{};
    batches_.done();
  }
}

namespace {

/// Sink-side id for a context id, translating through `map` and
/// interning into the shard's detector on first sight (the same scheme
/// the inline SinkBinding uses).
template <typename Intern>
NameId translate(std::vector<NameId>& map, NameId id, Intern&& intern) {
  constexpr NameId kUnset = static_cast<NameId>(-1);
  if (id >= map.size()) map.resize(id + 1, kUnset);
  if (map[id] == kUnset) map[id] = intern();
  return map[id];
}

}  // namespace

void AnalysisPipeline::shard_main(Shard& shard) {
  ShardChunk chunk;
  while (shard.queue.pop(chunk)) {
    const auto begin = std::chrono::steady_clock::now();
    shard.vars.insert(shard.vars.end(), chunk.new_vars.begin(), chunk.new_vars.end());
    shard.locks.insert(shard.locks.end(), chunk.new_locks.begin(), chunk.new_locks.end());
    shard.channels.insert(shard.channels.end(), chunk.new_channels.begin(),
                          chunk.new_channels.end());
    shard.sites.insert(shard.sites.end(), chunk.new_sites.begin(), chunk.new_sites.end());
    shard.waiter_sets.insert(shard.waiter_sets.end(), chunk.new_waiter_sets.begin(),
                             chunk.new_waiter_sets.end());
    for (const StampedEvent& stamped : chunk.events) apply(shard, stamped);
    ++shard.stats.chunks;
    shard.stats.busy_seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - begin).count();
    chunk = ShardChunk{};
    shard.queue.done();
  }
}

void AnalysisPipeline::apply(Shard& shard, const StampedEvent& stamped) {
  const Event& event = stamped.event;
  race::Detector& detector = shard.detector;
  // Pin the detector's event clock to the router's global numbering, so
  // this shard's AccessSite.event values — and therefore its reports —
  // match what an inline detector seeing the whole stream would record.
  detector.set_event_clock(stamped.index - 1);
  const ThreadId t = shard.tid_map[event.thread];
  switch (event.kind) {
    case EventKind::Read:
    case EventKind::Write: {
      const NameId var = translate(shard.var_map, event.id,
                                   [&] { return detector.intern_var(shard.vars[event.id]); });
      const NameId site = translate(shard.site_map, event.site, [&] {
        return detector.intern_site(shard.sites[event.site]);
      });
      if (event.kind == EventKind::Read) {
        detector.read(t, var, site);
        ++shard.metrics.of(event.thread).reads;
      } else {
        detector.write(t, var, site);
        ++shard.metrics.of(event.thread).writes;
      }
      ++shard.metrics.events;
      ++shard.stats.access_events;
      return;
    }
    case EventKind::Acquire:
    case EventKind::Release: {
      const NameId lock = translate(shard.lock_map, event.id, [&] {
        return detector.intern_lock(shard.locks[event.id]);
      });
      if (event.kind == EventKind::Acquire) {
        detector.acquire(t, lock);
      } else {
        detector.release(t, lock);
      }
      break;
    }
    case EventKind::ChannelSend:
    case EventKind::ChannelRecv: {
      const NameId channel = translate(shard.channel_map, event.id, [&] {
        return detector.intern_channel(shard.channels[event.id]);
      });
      if (event.kind == EventKind::ChannelSend) {
        detector.channel_send(t, channel);
      } else {
        detector.channel_recv(t, channel);
      }
      break;
    }
    case EventKind::Fork: {
      const ThreadId child = detector.fork(t);
      if (event.id >= shard.tid_map.size()) shard.tid_map.resize(event.id + 1, 0);
      shard.tid_map[event.id] = child;
      break;
    }
    case EventKind::Join:
      detector.join(t, shard.tid_map[event.id]);
      break;
    case EventKind::BarrierCycle: {
      const std::vector<ThreadId>& waiters = shard.waiter_sets[event.id];
      std::vector<ThreadId> mapped;
      mapped.reserve(waiters.size());
      for (const ThreadId w : waiters) mapped.push_back(shard.tid_map[w]);
      detector.barrier(mapped);
      break;
    }
  }
  ++shard.stats.sync_events;
}

void AnalysisPipeline::wait_idle() {
  // Stage order matters: once the batch queue is drained the router has
  // pushed every chunk, so draining each shard queue afterwards proves
  // every published event was analyzed.
  batches_.wait_drained();
  for (auto& shard : shards_) shard->queue.wait_drained();
  std::scoped_lock lock(merge_mutex_);
  merge_metrics_locked();
}

void AnalysisPipeline::merge_metrics_locked() {
  if (metrics_sink_ == nullptr) return;
  // The workers are idle (wait_idle just proved it), so their deltas
  // are stable; merging clears them so the next idle point only adds
  // what is new.
  if (!router_metrics_.empty()) {
    metrics_sink_->merge(router_metrics_, lock_names_);
    router_metrics_ = MetricsDelta{};
  }
  static const std::vector<std::string> kNoLocks;
  for (auto& shard : shards_) {
    if (shard->metrics.empty()) continue;
    metrics_sink_->merge(shard->metrics, kNoLocks);
    shard->metrics = MetricsDelta{};
  }
}

std::vector<race::RaceReport> AnalysisPipeline::races() const {
  std::vector<std::vector<race::RaceReport>> per_shard;
  per_shard.reserve(shards_.size());
  for (const auto& shard : shards_) per_shard.push_back(shard->detector.races());
  return race::merge_shard_reports(std::move(per_shard));
}

bool AnalysisPipeline::race_free() const {
  for (const auto& shard : shards_) {
    if (!shard->detector.race_free()) return false;
  }
  return true;
}

std::uint64_t AnalysisPipeline::race_count() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->detector.race_count();
  return total;
}

std::uint64_t AnalysisPipeline::events() const { return next_index_; }

std::string AnalysisPipeline::summary() const {
  return race::summarize_races(races(), race_count(), events(),
                               shards_.front()->detector.threads());
}

std::vector<ShardStats> AnalysisPipeline::shard_stats() const {
  std::vector<ShardStats> stats;
  stats.reserve(shards_.size());
  for (const auto& shard : shards_) stats.push_back(shard->stats);
  return stats;
}

std::uint64_t AnalysisPipeline::publish_waits() const {
  std::uint64_t total = 0;
  {
    std::scoped_lock lock(batches_.mutex);
    total += batches_.waits;
  }
  for (const auto& shard : shards_) {
    std::scoped_lock lock(shard->queue.mutex);
    total += shard->queue.waits;
  }
  return total;
}

std::uint64_t AnalysisPipeline::batch_high_water() const {
  std::scoped_lock lock(batches_.mutex);
  return batches_.high_water;
}

}  // namespace cs31::trace
