// The parallel runtime's single instrumentation seam. A TraceContext is
// three layers glued together:
//
//   capture   — per-thread append-only event buffers (event.hpp): a
//               bound thread records an access as one vector push_back
//               of a 32-byte POD, no locks, no strings, no detector
//               work. In the default lock-free mode, acquire/release/
//               send/recv land in the *same* per-thread buffers: the
//               capturing thread takes one global stamp (an atomic
//               fetch_add performed while the traced primitive is
//               held, so stamps respect the real synchronization
//               order) plus the object's own sequence number (a second
//               fetch_add on the primitive's counter), and appends —
//               no mutex anywhere on the sync hot path. Only the rare
//               structural edges (fork/join/barrier cycles) take the
//               serialized slow path, which they need anyway to mutate
//               the thread registry. CaptureMode::mutex_stream keeps
//               the original design — every sync event stamped and
//               appended to one global stream under stream_mutex_ — as
//               the reference implementation the differential harness
//               compares against.
//   drain     — at a barrier cycle, a join, or an explicit flush(), the
//               quiescent threads' buffers (and, in mutex_stream mode,
//               the sync stream) merge into one deterministically
//               ordered stream (Event::drain_order: stamp, sync-first,
//               thread id, program order). Each source is already
//               drain-ordered, so the merge is a cascade of sorted-run
//               merges, not a sort. Drains bound buffer memory and make
//               repeated race-free runs produce byte-identical
//               certificates — in either capture mode: see "Ordering"
//               below for why the lock-free merge reproduces the
//               mutex-ordered stream exactly.
//   sinks     — every attached race::EventSink consumes the identical
//               drained stream: the built-in FastTrack race::Detector
//               (fed through its interned-id fast path), the
//               ReferenceDetector, the Eraser-style LocksetDetector,
//               a MetricsSink, anything else honouring the interface.
//
// Ordering (why lock-free capture drains byte-identically):
//   1. Stamps are fetch_adds on one atomic, so they are unique and
//      totally ordered; drain_order is the same function either mode.
//   2. A sync's stamp is taken while its object is held. Two syncs on
//      the same object are ordered by the object's own mutex, and that
//      happens-before edge orders their two fetch_adds on *both*
//      atomics (RMWs on one atomic take increasing values along
//      happens-before) — so per object, stamp order == per-object seq
//      order == the real synchronization order. The drain asserts the
//      (object id, seq) pairs run 0,1,2,… per object as it dispatches;
//      a violated assertion would mean a lost or reordered record.
//      mutex_stream takes both counters under stream_mutex_, so the
//      same records carry the same numbers — Event streams, not just
//      verdicts, are comparable byte-for-byte across modes.
//   3. The dispatch-horizon machinery below is mode-independent: an
//      undrained buffer's events all carry stamps >= that buffer's
//      floor, and any *future* capture (access or sync) gets a stamp >=
//      the floor too (accesses reuse the thread's epoch, new syncs draw
//      a fresh stamp above every floor). So dispatching strictly below
//      the minimum uncovered floor — plus the floor stamp's own sync
//      event, which drain_order places before the accesses executing in
//      it — can never be contradicted by a later capture, and every
//      drain dispatches a prefix of the one global drain_order stream,
//      whatever the drain batching was.
//
// The same context serves two execution styles with one code path:
// real threads bind themselves (bind_self / a traced ThreadTeam) and
// use the calling-thread API, while deterministic replays emit events
// for scripted thread ids from a single OS thread (the *_as API) —
// life::traced_life_check and ParallelLife::run(traced) differ only in
// who pushes the events.
//
// Quiescence contract (checked by usage, not locks): a drain may only
// cover buffers whose owning threads are blocked or finished — barrier
// drains run while every waiter sits in the barrier (the caller holds
// the barrier mutex), join drains run after pthread_join, flush() runs
// when the caller knows all bound threads are done. Threads outside a
// partial drain must be idle between their last drain and the next one
// (the fork/join-structured teams in this kit satisfy that: the parent
// drains its own buffer when it forks, then blocks in join()).
//
// Buffer reclamation: a joined thread's buffer is *retired*, not freed
// — epoch-based reclamation (perfbook ch. 9) frees it only after a
// grace period. Retirement bumps a global reclamation epoch; each live
// buffer carries the last epoch its thread was observed quiescent at
// (drains advance it for every covered buffer — the buffer-publish
// point — and unpark advances it on the capture side); a retired
// buffer is freed once every live, unparked buffer has been quiescent
// at or after its retirement epoch. Within this kit's structured
// fork/join model the locks already exclude drain-vs-drain races, so
// the grace period is defense in depth — but it is exactly the
// discipline a capture path without those locks needs, it keeps drains
// scanning O(live threads) instead of O(threads ever forked), and it
// bounds memory for long-lived contexts with thread churn. The asan
// tier runs the churn path to prove no use-after-reclaim.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "race/detector.hpp"
#include "trace/event.hpp"

namespace cs31::trace {

class AnalysisPipeline;

/// How sync events are captured. Access events are lock-free per-thread
/// appends in both modes; the modes differ only in how acquire/release/
/// send/recv are stamped and stored. Drained streams are byte-identical
/// across modes (see the file comment's ordering argument, and
/// tests/trace_capture_diff_test.cpp for the proof-by-harness).
enum class CaptureMode : std::uint8_t {
  /// Sync events go into the capturing thread's own buffer, stamped by
  /// two atomic fetch_adds (global stamp + per-object seq) taken while
  /// the traced primitive is held. The default.
  lockfree,
  /// The original design: every sync event is stamped and appended to
  /// one global stream under stream_mutex_. Kept as the reference
  /// implementation for differential testing and the mutex-vs-lock-free
  /// teaching contrast (examples/race_detective).
  mutex_stream,
};

/// Capture-side statistics for one thread's buffer — the numbers
/// bench_race_overhead reports as per-thread high-water marks. Retired
/// (reclaimed) buffers keep reporting their final snapshot.
struct BufferStats {
  ThreadId thread = 0;
  std::uint64_t captured = 0;     ///< lifetime events recorded
  std::uint64_t high_water = 0;   ///< max buffered events seen at a drain
  std::uint64_t sampled_out = 0;  ///< access events dropped by sampling
};

class TraceContext {
 public:
  struct Options {
    /// Construct and attach the built-in FastTrack race::Detector. Turn
    /// off to drive only externally attached sinks (e.g. timing the
    /// ReferenceDetector alone) or an AnalysisPipeline.
    bool own_detector = true;

    /// Sampling capture mode: keep each *access* event with this
    /// probability (sync events are always kept — dropping one would
    /// invent false races by erasing a real happens-before edge). The
    /// per-thread decision stream is a counter-free xorshift seeded by
    /// the thread's context id, so a given rate drops the *same*
    /// accesses run after run: sampled verdicts are reproducible, and
    /// rate 1.0 is bit-for-bit the unsampled capture path.
    /// bench_race_overhead quantifies the detection-probability /
    /// overhead trade-off (EXPERIMENTS.md has the curve).
    double sample_access_events = 1.0;

    /// Sync-event capture design; see CaptureMode. Verdicts, reports,
    /// certificates, and drained streams do not depend on the choice —
    /// only the capture hot path's cost does.
    CaptureMode capture = CaptureMode::lockfree;
  };

  TraceContext() : TraceContext(Options{}) {}
  explicit TraceContext(Options options);
  ~TraceContext();

  TraceContext(const TraceContext&) = delete;
  TraceContext& operator=(const TraceContext&) = delete;

  [[nodiscard]] CaptureMode capture_mode() const {
    return lockfree_ ? CaptureMode::lockfree : CaptureMode::mutex_stream;
  }

  // --- sinks -----------------------------------------------------------

  /// Attach an additional sink. Every sink sees the identical drained
  /// stream. Attach before the first event; the sink must outlive the
  /// context's last drain.
  void attach_sink(race::EventSink& sink);

  /// The built-in detector. Throws cs31::Error when constructed with
  /// own_detector = false. Read verdicts only after flush().
  [[nodiscard]] race::Detector& detector();
  [[nodiscard]] const race::Detector& detector() const;
  [[nodiscard]] bool has_detector() const { return detector_ != nullptr; }

  /// Route drains through `pipeline` instead of inline sinks: a drain
  /// publishes its dispatched prefix as one self-contained batch and
  /// returns — analysis happens on the pipeline's threads, off the
  /// parallel hot path (see pipeline.hpp). Requires a context with no
  /// inline sinks (own_detector = false, nothing attached) and no
  /// events yet; flush() then additionally waits for the pipeline to go
  /// idle, so "flush, then read the verdict" keeps working. The
  /// pipeline must outlive the context.
  void attach_pipeline(AnalysisPipeline& pipeline);
  [[nodiscard]] bool has_pipeline() const { return pipeline_ != nullptr; }

  // --- interning -------------------------------------------------------
  // Ids are context-owned; the drain translates them per sink. Safe
  // from any thread, any time. Interning a lock or channel also grows
  // its per-object sequence counter (the lock-free capture path reads
  // the counter table without locks; growth happens only here).
  [[nodiscard]] NameId intern_var(std::string_view name);
  [[nodiscard]] NameId intern_lock(std::string_view name);
  [[nodiscard]] NameId intern_channel(std::string_view name);
  [[nodiscard]] NameId intern_site(std::string_view label);

  // --- thread lifecycle ------------------------------------------------

  /// The context id bound to the calling OS thread. Throws cs31::Error
  /// when the thread was never bound.
  [[nodiscard]] ThreadId self() const;

  /// Fork hook, bound-thread form: called by the *parent* before
  /// spawning. Records the Fork edge, drains the parent's buffer, and
  /// returns the child's id for bind_self.
  [[nodiscard]] ThreadId on_thread_create();

  /// Bind the calling OS thread to `tid` — the first statement a
  /// spawned thread runs.
  void bind_self(ThreadId tid);

  /// Join hook, bound-thread form: called by the parent after joining
  /// `child`. Records the Join edge, drains the child's buffer, and
  /// retires it (freed after a grace period; see the file comment).
  void on_thread_join(ThreadId child);

  /// Scripted forms of the same edges, for replay-style emission where
  /// one OS thread plays every role (no binding involved).
  [[nodiscard]] ThreadId fork_thread(ThreadId parent);
  void join_thread(ThreadId parent, ThreadId child);

  // --- capture: bound-thread API --------------------------------------
  void read(NameId var, NameId site = 0);
  void write(NameId var, NameId site = 0);
  void acquire(NameId lock);
  void release(NameId lock);
  void send(NameId channel);
  void recv(NameId channel);

  /// String conveniences (intern per call — casual use only).
  void read(const std::string& var, const std::string& where = "");
  void write(const std::string& var, const std::string& where = "");
  void acquire(const std::string& lock);
  void release(const std::string& lock);
  void send(const std::string& channel);
  void recv(const std::string& channel);

  // --- capture: scripted (explicit-tid) API ---------------------------
  // The caller guarantees thread `t` is not concurrently bound and
  // running (single-threaded replay, or emission on behalf of a thread
  // the caller controls).
  void read_as(ThreadId t, NameId var, NameId site = 0);
  void write_as(ThreadId t, NameId var, NameId site = 0);
  void acquire_as(ThreadId t, NameId lock);
  void release_as(ThreadId t, NameId lock);
  void send_as(ThreadId t, NameId channel);
  void recv_as(ThreadId t, NameId channel);

  // --- barrier / drain -------------------------------------------------

  /// A completed barrier cycle over `waiters`: records the cycle edge
  /// (unless `report` is false — the "forgotten barrier" model: the
  /// real barrier still ran, the detector is not told), advances every
  /// waiter's epoch, and drains the waiters' buffers plus the sync
  /// stream. All waiters must be blocked in the barrier (or scripted).
  /// Throws cs31::Error on an empty waiter set.
  void barrier_cycle(std::vector<ThreadId> waiters, bool report = true);

  /// Drain every buffer and the sync stream. All bound threads must be
  /// quiescent. Call before reading any sink's verdict.
  void flush();

  /// Declare the calling thread dormant: drain its buffer and stop it
  /// constraining the dispatch horizon (see drain_locked) until its
  /// next capture, which un-parks it automatically. A traced ThreadTeam
  /// parks the parent after spawning — the parent then sits in join()
  /// while the workers' barrier drains dispatch every cycle instead of
  /// pooling behind the idle parent's watermark. Bound threads only;
  /// do not mix with scripted (_as) emission for the same id.
  void park_self();

  // --- metrics ---------------------------------------------------------
  [[nodiscard]] std::vector<BufferStats> buffer_stats() const;
  [[nodiscard]] std::uint64_t drains() const;
  [[nodiscard]] std::uint64_t events_captured() const;
  /// Access events dropped by the sampling capture mode (0 at rate 1.0).
  [[nodiscard]] std::uint64_t events_sampled_out() const;
  /// Joined threads' buffers freed so far (each was retired at its
  /// join and reclaimed at a later drain, after the grace period).
  [[nodiscard]] std::uint64_t buffers_reclaimed() const;

 private:
  /// A parked thread's floor: it promises no further captures until it
  /// un-parks, so it never holds back a drain.
  static constexpr std::uint64_t kParkedFloor = ~std::uint64_t{0};

  struct ThreadBuffer {
    std::vector<Event> events;
    std::uint64_t seq = 0;         ///< next per-thread sequence number
    std::uint64_t epoch = 0;       ///< last observed sync stamp
    std::uint32_t rng = 1;         ///< sampling decision stream (per-thread, seeded by tid)
    std::uint64_t sampled_out = 0; ///< access events dropped by sampling
    /// Smallest stamp this thread could still capture or hold
    /// undrained (guarded by stream_mutex_): its epoch as of its last
    /// drain, kParkedFloor when parked or joined. A drain may dispatch
    /// only events below every *undrained* buffer's floor — later
    /// events wait in pending_ so dispatch order always equals the
    /// global drain_order, whatever the drain batching was.
    std::uint64_t floor = 0;
    std::uint64_t captured = 0;    ///< lifetime events
    std::uint64_t high_water = 0;  ///< max events.size() at a drain
    /// Reclamation: the last global reclamation epoch this thread was
    /// observed quiescent at (advanced by drains covering the buffer
    /// and by unpark). Retired buffers are freed only once every live
    /// unparked buffer's qepoch has reached their retirement epoch.
    std::atomic<std::uint64_t> qepoch{0};
  };

  /// Lock-free lookup table of per-object sync sequence counters, one
  /// per interned lock/channel id. Readers (the capture hot path) do
  /// two dependent loads and no locks; growth happens only under
  /// intern_mutex_, at intern time, by publishing whole chunks — a
  /// published chunk never moves, so a reader can never see a counter
  /// relocate mid-fetch_add.
  class SyncSeqTable {
   public:
    static constexpr std::size_t kChunkSize = 256;
    static constexpr std::size_t kMaxChunks = 1024;  ///< 256Ki objects

    SyncSeqTable() = default;
    SyncSeqTable(const SyncSeqTable&) = delete;
    SyncSeqTable& operator=(const SyncSeqTable&) = delete;
    ~SyncSeqTable();

    /// Make ids [0, count) addressable. Caller holds intern_mutex_.
    void ensure(std::size_t count);
    /// The counter for `id`. Throws cs31::Error when `id` was never
    /// interned through this context.
    [[nodiscard]] std::atomic<std::uint64_t>& counter(NameId id) const;

   private:
    struct Chunk {
      std::array<std::atomic<std::uint64_t>, kChunkSize> slots{};
    };
    std::array<std::atomic<Chunk*>, kMaxChunks> chunks_{};
  };

  /// Per-sink dispatch state: id translations are built lazily from the
  /// context's interners, `fast` short-circuits to the detector's
  /// interned-id path when the sink is a race::Detector.
  struct SinkBinding {
    race::EventSink* sink = nullptr;
    race::Detector* fast = nullptr;
    std::vector<ThreadId> tid_map;  ///< context tid -> sink tid
    std::vector<NameId> var_map, lock_map, channel_map, site_map;
  };

  /// A joined thread's buffer awaiting its grace period.
  struct RetiredBuffer {
    std::unique_ptr<ThreadBuffer> buffer;
    std::uint64_t retire_epoch = 0;
  };

  [[nodiscard]] ThreadBuffer& buffer_of_self();
  [[nodiscard]] ThreadBuffer& buffer_of(ThreadId t);
  void append_access(ThreadBuffer& buf, ThreadId t, EventKind kind, NameId id,
                     NameId site);
  /// Advance `buf`'s sampling stream one step; false means drop the
  /// access (and count it). Only called when sampling is enabled.
  [[nodiscard]] bool sample_keep(ThreadBuffer& buf);
  /// Slow path of the first capture after park_self().
  void unpark(ThreadBuffer& buf);
  // Object-sync capture (acquire/release/send/recv; the caller holds
  // the traced primitive — see the ordering argument up top). `seqs` is
  // the object category's counter table. sync_bound resolves the
  // calling thread's buffer through the TLS fast path; sync_as uses the
  // scripted registry lookup. In lock-free mode both land the record in
  // the thread's own buffer via append_sync_lockfree (stamp + per-
  // object seq, two relaxed fetch_adds, no mutex); mutex_stream mode
  // stamps under stream_mutex_ into the global stream.
  void sync_bound(EventKind kind, NameId id, const SyncSeqTable& seqs);
  void sync_as(ThreadId t, EventKind kind, NameId id, const SyncSeqTable& seqs);
  void append_sync_lockfree(ThreadBuffer& buf, ThreadId t, EventKind kind, NameId id,
                            const SyncSeqTable& seqs);
  void record_sync_stream(ThreadId t, EventKind kind, NameId id,
                          const SyncSeqTable& seqs);
  ThreadId fork_locked(ThreadId parent);
  /// Retire `child`'s buffer (caller holds stream_mutex_): snapshot its
  /// stats, unregister it, and queue it for reclamation after a grace
  /// period.
  void retire_buffer_locked(ThreadId child);

  /// Merge + dispatch the given buffers and the sync stream.
  /// `all` drains every buffer (flush/join); otherwise only `subset`.
  void drain_locked(const std::vector<ThreadId>& subset, bool all);
  /// Grace-period bookkeeping, called inside drain_locked's registry
  /// section: advance covered buffers' quiescence epochs, then free
  /// every retired buffer whose retirement epoch all live unparked
  /// buffers have since been quiescent at.
  void advance_and_reclaim_locked(const std::vector<char>& covered);
  /// Per-object continuity check on a dispatched prefix: object-sync
  /// events on each lock/channel must carry seq 0,1,2,… in dispatch
  /// order — the witness that the merge reproduced the real per-object
  /// sync order. Caller holds stream_mutex_.
  void check_object_seqs(const std::vector<Event>& events, std::size_t count);
  void dispatch(const Event& event);
  void dispatch_to(SinkBinding& binding, const Event& event);
  /// Publish `events` (consumed) plus the name/waiter-set deltas
  /// interned since the last publish to the attached pipeline (may
  /// block on backpressure). Caller holds stream_mutex_.
  void publish_locked(std::vector<Event>&& events);

  const std::uint64_t generation_;  ///< thread-local cache validation
  /// Sampling threshold on the xorshift output: keep while below. ~0
  /// disables the sampling branch entirely (rate 1.0).
  const std::uint32_t sample_threshold_;
  const bool sampling_;
  const bool lockfree_;  ///< CaptureMode::lockfree
  std::unique_ptr<race::Detector> owned_detector_;
  race::Detector* detector_ = nullptr;  ///< == owned_detector_ when owned
  AnalysisPipeline* pipeline_ = nullptr;  ///< set once, before the first event

  /// The one stamp source, both modes. Lock-free capture fetch_adds it
  /// directly (while holding the traced primitive); mutex_stream and
  /// the structural edges fetch_add it under stream_mutex_.
  std::atomic<std::uint64_t> sync_clock_{0};

  /// Per-object sequence counters (locks and channels are separate id
  /// spaces). Grown at intern time; read lock-free on the capture path.
  SyncSeqTable lock_seqs_, channel_seqs_;

  /// Global reclamation epoch: bumped by each buffer retirement.
  std::atomic<std::uint64_t> reclaim_epoch_{0};

  /// Serializes drains and the structural sync edges (and, in
  /// mutex_stream mode, every sync capture — that serialization *is*
  /// that mode's design).
  mutable std::mutex stream_mutex_;
  std::vector<Event> sync_stream_;  ///< mutex_stream mode only
  std::vector<Event> pending_;  ///< sorted, beyond a past drain's horizon
  std::uint64_t structural_syncs_ = 0;  ///< fork/join/barrier edges recorded
  std::vector<std::vector<ThreadId>> waiter_sets_;  ///< BarrierCycle payloads
  std::vector<SinkBinding> sinks_;
  std::uint64_t drains_ = 0;
  /// Dispatch-side per-object continuity state (next expected seq per
  /// lock/channel id), and the scratch covered[] map drains reuse.
  std::vector<std::uint64_t> next_lock_seq_, next_channel_seq_;
  std::vector<char> covered_scratch_;
  /// Table prefixes already shipped to the pipeline (guarded by
  /// stream_mutex_; the interners themselves by intern_mutex_).
  std::size_t published_vars_ = 0, published_locks_ = 0, published_channels_ = 0,
              published_sites_ = 0, published_waiters_ = 0;

  mutable std::mutex registry_mutex_;
  std::map<std::thread::id, ThreadId> bindings_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;  ///< by context tid; null = retired
  std::vector<RetiredBuffer> retired_;  ///< awaiting their grace period
  std::map<ThreadId, BufferStats> retired_stats_;  ///< final snapshots
  std::uint64_t buffers_reclaimed_ = 0;

  mutable std::mutex intern_mutex_;
  race::Interner var_names_, lock_names_, channel_names_, site_names_;
};

}  // namespace cs31::trace
