// The parallel runtime's single instrumentation seam. A TraceContext is
// three layers glued together:
//
//   capture   — per-thread append-only event buffers (event.hpp): a
//               bound thread records an access as one vector push_back
//               of a 32-byte POD, no locks, no strings, no detector
//               work. Synchronization events (fork/join/acquire/
//               release/channel/barrier) are rare and go through one
//               mutex-serialized stream whose monotonically increasing
//               stamps mirror the *real* order the runtime objects
//               imposed (each stamp is taken while the corresponding
//               mutex/barrier/buffer lock is held).
//   drain     — at a barrier cycle, a join, or an explicit flush(), the
//               quiescent threads' buffers and the sync stream merge
//               into one deterministically ordered stream (Event::
//               drain_order: stamp, sync-first, thread id, program
//               order), which bounds buffer memory and makes repeated
//               race-free runs produce byte-identical certificates.
//   sinks     — every attached race::EventSink consumes the identical
//               drained stream: the built-in FastTrack race::Detector
//               (fed through its interned-id fast path), the
//               ReferenceDetector, the Eraser-style LocksetDetector,
//               a MetricsSink, anything else honouring the interface.
//
// The same context serves two execution styles with one code path:
// real threads bind themselves (bind_self / a traced ThreadTeam) and
// use the calling-thread API, while deterministic replays emit events
// for scripted thread ids from a single OS thread (the *_as API) —
// life::traced_life_check and ParallelLife::run(traced) differ only in
// who pushes the events.
//
// Quiescence contract (checked by usage, not locks): a drain may only
// cover buffers whose owning threads are blocked or finished — barrier
// drains run while every waiter sits in the barrier (the caller holds
// the barrier mutex), join drains run after pthread_join, flush() runs
// when the caller knows all bound threads are done. Threads outside a
// partial drain must be idle between their last drain and the next one
// (the fork/join-structured teams in this kit satisfy that: the parent
// drains its own buffer when it forks, then blocks in join()).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "race/detector.hpp"
#include "trace/event.hpp"

namespace cs31::trace {

class AnalysisPipeline;

/// Capture-side statistics for one thread's buffer — the numbers
/// bench_race_overhead reports as per-thread high-water marks.
struct BufferStats {
  ThreadId thread = 0;
  std::uint64_t captured = 0;     ///< lifetime events recorded
  std::uint64_t high_water = 0;   ///< max buffered events seen at a drain
  std::uint64_t sampled_out = 0;  ///< access events dropped by sampling
};

class TraceContext {
 public:
  struct Options {
    /// Construct and attach the built-in FastTrack race::Detector. Turn
    /// off to drive only externally attached sinks (e.g. timing the
    /// ReferenceDetector alone) or an AnalysisPipeline.
    bool own_detector = true;

    /// Sampling capture mode: keep each *access* event with this
    /// probability (sync events are always kept — dropping one would
    /// invent false races by erasing a real happens-before edge). The
    /// per-thread decision stream is a counter-free xorshift seeded by
    /// the thread's context id, so a given rate drops the *same*
    /// accesses run after run: sampled verdicts are reproducible, and
    /// rate 1.0 is bit-for-bit the unsampled capture path.
    /// bench_race_overhead quantifies the detection-probability /
    /// overhead trade-off (EXPERIMENTS.md has the curve).
    double sample_access_events = 1.0;
  };

  TraceContext() : TraceContext(Options{}) {}
  explicit TraceContext(Options options);
  ~TraceContext();

  TraceContext(const TraceContext&) = delete;
  TraceContext& operator=(const TraceContext&) = delete;

  // --- sinks -----------------------------------------------------------

  /// Attach an additional sink. Every sink sees the identical drained
  /// stream. Attach before the first event; the sink must outlive the
  /// context's last drain.
  void attach_sink(race::EventSink& sink);

  /// The built-in detector. Throws cs31::Error when constructed with
  /// own_detector = false. Read verdicts only after flush().
  [[nodiscard]] race::Detector& detector();
  [[nodiscard]] const race::Detector& detector() const;
  [[nodiscard]] bool has_detector() const { return detector_ != nullptr; }

  /// Route drains through `pipeline` instead of inline sinks: a drain
  /// publishes its dispatched prefix as one self-contained batch and
  /// returns — analysis happens on the pipeline's threads, off the
  /// parallel hot path (see pipeline.hpp). Requires a context with no
  /// inline sinks (own_detector = false, nothing attached) and no
  /// events yet; flush() then additionally waits for the pipeline to go
  /// idle, so "flush, then read the verdict" keeps working. The
  /// pipeline must outlive the context.
  void attach_pipeline(AnalysisPipeline& pipeline);
  [[nodiscard]] bool has_pipeline() const { return pipeline_ != nullptr; }

  // --- interning -------------------------------------------------------
  // Ids are context-owned; the drain translates them per sink. Safe
  // from any thread, any time.
  [[nodiscard]] NameId intern_var(std::string_view name);
  [[nodiscard]] NameId intern_lock(std::string_view name);
  [[nodiscard]] NameId intern_channel(std::string_view name);
  [[nodiscard]] NameId intern_site(std::string_view label);

  // --- thread lifecycle ------------------------------------------------

  /// The context id bound to the calling OS thread. Throws cs31::Error
  /// when the thread was never bound.
  [[nodiscard]] ThreadId self() const;

  /// Fork hook, bound-thread form: called by the *parent* before
  /// spawning. Records the Fork edge, drains the parent's buffer, and
  /// returns the child's id for bind_self.
  [[nodiscard]] ThreadId on_thread_create();

  /// Bind the calling OS thread to `tid` — the first statement a
  /// spawned thread runs.
  void bind_self(ThreadId tid);

  /// Join hook, bound-thread form: called by the parent after joining
  /// `child`. Records the Join edge and drains the child's buffer.
  void on_thread_join(ThreadId child);

  /// Scripted forms of the same edges, for replay-style emission where
  /// one OS thread plays every role (no binding involved).
  [[nodiscard]] ThreadId fork_thread(ThreadId parent);
  void join_thread(ThreadId parent, ThreadId child);

  // --- capture: bound-thread API --------------------------------------
  void read(NameId var, NameId site = 0);
  void write(NameId var, NameId site = 0);
  void acquire(NameId lock);
  void release(NameId lock);
  void send(NameId channel);
  void recv(NameId channel);

  /// String conveniences (intern per call — casual use only).
  void read(const std::string& var, const std::string& where = "");
  void write(const std::string& var, const std::string& where = "");
  void acquire(const std::string& lock);
  void release(const std::string& lock);
  void send(const std::string& channel);
  void recv(const std::string& channel);

  // --- capture: scripted (explicit-tid) API ---------------------------
  // The caller guarantees thread `t` is not concurrently bound and
  // running (single-threaded replay, or emission on behalf of a thread
  // the caller controls).
  void read_as(ThreadId t, NameId var, NameId site = 0);
  void write_as(ThreadId t, NameId var, NameId site = 0);
  void acquire_as(ThreadId t, NameId lock);
  void release_as(ThreadId t, NameId lock);
  void send_as(ThreadId t, NameId channel);
  void recv_as(ThreadId t, NameId channel);

  // --- barrier / drain -------------------------------------------------

  /// A completed barrier cycle over `waiters`: records the cycle edge
  /// (unless `report` is false — the "forgotten barrier" model: the
  /// real barrier still ran, the detector is not told), advances every
  /// waiter's epoch, and drains the waiters' buffers plus the sync
  /// stream. All waiters must be blocked in the barrier (or scripted).
  /// Throws cs31::Error on an empty waiter set.
  void barrier_cycle(std::vector<ThreadId> waiters, bool report = true);

  /// Drain every buffer and the sync stream. All bound threads must be
  /// quiescent. Call before reading any sink's verdict.
  void flush();

  /// Declare the calling thread dormant: drain its buffer and stop it
  /// constraining the dispatch horizon (see drain_locked) until its
  /// next capture, which un-parks it automatically. A traced ThreadTeam
  /// parks the parent after spawning — the parent then sits in join()
  /// while the workers' barrier drains dispatch every cycle instead of
  /// pooling behind the idle parent's watermark. Bound threads only;
  /// do not mix with scripted (_as) emission for the same id.
  void park_self();

  // --- metrics ---------------------------------------------------------
  [[nodiscard]] std::vector<BufferStats> buffer_stats() const;
  [[nodiscard]] std::uint64_t drains() const;
  [[nodiscard]] std::uint64_t events_captured() const;
  /// Access events dropped by the sampling capture mode (0 at rate 1.0).
  [[nodiscard]] std::uint64_t events_sampled_out() const;

 private:
  /// A parked thread's floor: it promises no further captures until it
  /// un-parks, so it never holds back a drain.
  static constexpr std::uint64_t kParkedFloor = ~std::uint64_t{0};

  struct ThreadBuffer {
    std::vector<Event> events;
    std::uint64_t seq = 0;         ///< next per-thread sequence number
    std::uint64_t epoch = 0;       ///< last observed sync stamp
    std::uint32_t rng = 1;         ///< sampling decision stream (per-thread, seeded by tid)
    std::uint64_t sampled_out = 0; ///< access events dropped by sampling
    /// Smallest stamp this thread could still capture or hold
    /// undrained (guarded by stream_mutex_): its epoch as of its last
    /// drain, kParkedFloor when parked or joined. A drain may dispatch
    /// only events below every *undrained* buffer's floor — later
    /// events wait in pending_ so dispatch order always equals the
    /// global drain_order, whatever the drain batching was.
    std::uint64_t floor = 0;
    std::uint64_t captured = 0;    ///< lifetime events
    std::uint64_t high_water = 0;  ///< max events.size() at a drain
  };

  /// Per-sink dispatch state: id translations are built lazily from the
  /// context's interners, `fast` short-circuits to the detector's
  /// interned-id path when the sink is a race::Detector.
  struct SinkBinding {
    race::EventSink* sink = nullptr;
    race::Detector* fast = nullptr;
    std::vector<ThreadId> tid_map;  ///< context tid -> sink tid
    std::vector<NameId> var_map, lock_map, channel_map, site_map;
  };

  [[nodiscard]] ThreadBuffer& buffer_of_self();
  [[nodiscard]] ThreadBuffer& buffer_of(ThreadId t);
  void append_access(ThreadBuffer& buf, ThreadId t, EventKind kind, NameId id,
                     NameId site);
  /// Advance `buf`'s sampling stream one step; false means drop the
  /// access (and count it). Only called when sampling is enabled.
  [[nodiscard]] bool sample_keep(ThreadBuffer& buf);
  /// Slow path of the first capture after park_self().
  void unpark(ThreadBuffer& buf);
  /// Record a sync event: assigns the next stamp under stream_mutex_,
  /// appends to the stream, and advances `t`'s epoch. Returns the stamp.
  std::uint64_t record_sync(ThreadId t, EventKind kind, NameId id, NameId site = 0);
  ThreadId fork_locked(ThreadId parent);

  /// Merge + sort + dispatch the given buffers and the sync stream.
  /// `all` drains every buffer (flush/join); otherwise only `subset`.
  void drain_locked(const std::vector<ThreadId>& subset, bool all);
  void dispatch(const Event& event);
  void dispatch_to(SinkBinding& binding, const Event& event);
  /// Publish `events[0..count)` plus the name/waiter-set deltas interned
  /// since the last publish to the attached pipeline (may block on
  /// backpressure). Caller holds stream_mutex_.
  void publish_locked(const std::vector<Event>& events, std::size_t count);

  const std::uint64_t generation_;  ///< thread-local cache validation
  /// Sampling threshold on the xorshift output: keep while below. ~0
  /// disables the sampling branch entirely (rate 1.0).
  const std::uint32_t sample_threshold_;
  const bool sampling_;
  std::unique_ptr<race::Detector> owned_detector_;
  race::Detector* detector_ = nullptr;  ///< == owned_detector_ when owned
  AnalysisPipeline* pipeline_ = nullptr;  ///< set once, before the first event

  /// Serializes sync-event capture and drains (stamps are assigned
  /// under it, so stream order == stamp order == real sync order).
  mutable std::mutex stream_mutex_;
  std::vector<Event> sync_stream_;
  std::vector<Event> pending_;  ///< sorted, beyond a past drain's horizon
  std::uint64_t next_stamp_ = 0;
  std::vector<std::vector<ThreadId>> waiter_sets_;  ///< BarrierCycle payloads
  std::vector<SinkBinding> sinks_;
  std::uint64_t drains_ = 0;
  /// Table prefixes already shipped to the pipeline (guarded by
  /// stream_mutex_; the interners themselves by intern_mutex_).
  std::size_t published_vars_ = 0, published_locks_ = 0, published_channels_ = 0,
              published_sites_ = 0, published_waiters_ = 0;

  mutable std::mutex registry_mutex_;
  std::map<std::thread::id, ThreadId> bindings_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;  ///< by context tid

  mutable std::mutex intern_mutex_;
  race::Interner var_names_, lock_names_, channel_names_, site_names_;
};

}  // namespace cs31::trace
