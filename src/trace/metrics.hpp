// A perf/metrics EventSink: consumes the same drained stream as the
// race detectors but counts instead of checking — per-thread event
// mix (reads/writes/sync operations) and per-lock acquire counts as a
// contention proxy. Attach it next to a Detector on one TraceContext
// and a single traced run yields both a race certificate and a
// contention profile.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "race/detector.hpp"
#include "race/interner.hpp"

namespace cs31::trace {

/// Event mix of one traced thread.
struct ThreadMetrics {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t acquires = 0;
  std::uint64_t releases = 0;
  std::uint64_t sends = 0;
  std::uint64_t recvs = 0;
  std::uint64_t barriers = 0;  ///< barrier cycles this thread waited in

  [[nodiscard]] std::uint64_t total() const {
    return reads + writes + acquires + releases + sends + recvs + barriers;
  }
};

class MetricsSink final : public race::EventSink {
 public:
  MetricsSink();

  MetricsSink(const MetricsSink&) = delete;
  MetricsSink& operator=(const MetricsSink&) = delete;

  // --- EventSink ---
  [[nodiscard]] race::ThreadId register_thread() override;
  [[nodiscard]] race::ThreadId fork(race::ThreadId parent) override;
  void join(race::ThreadId parent, race::ThreadId child) override;
  void acquire(race::ThreadId t, const std::string& lock) override;
  void release(race::ThreadId t, const std::string& lock) override;
  void barrier(const std::vector<race::ThreadId>& waiters) override;
  void channel_send(race::ThreadId t, const std::string& channel) override;
  void channel_recv(race::ThreadId t, const std::string& channel) override;
  void read(race::ThreadId t, const std::string& var, const std::string& where) override;
  void write(race::ThreadId t, const std::string& var, const std::string& where) override;

  /// A metrics sink never reports races.
  [[nodiscard]] const std::vector<race::RaceReport>& races() const override;
  [[nodiscard]] bool race_free() const override { return true; }
  [[nodiscard]] std::uint64_t race_count() const override { return 0; }
  [[nodiscard]] std::uint64_t events() const override;
  [[nodiscard]] std::size_t threads() const override;
  [[nodiscard]] std::size_t shadow_bytes() const override;
  [[nodiscard]] std::string summary() const override;

  // --- metrics ---
  [[nodiscard]] std::vector<ThreadMetrics> per_thread() const;
  /// (lock name, acquire count), by first-acquire order — the hotter a
  /// lock, the more serialization it imposes.
  [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>> lock_acquires() const;
  [[nodiscard]] std::uint64_t barrier_cycles() const;

 private:
  ThreadMetrics& of(race::ThreadId t);

  mutable std::mutex mutex_;
  std::vector<ThreadMetrics> threads_;
  race::Interner lock_names_;
  std::vector<std::uint64_t> lock_acquires_;  // by lock id
  std::uint64_t barrier_cycles_ = 0;
  std::uint64_t events_ = 0;
};

}  // namespace cs31::trace
