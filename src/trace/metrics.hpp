// A perf/metrics EventSink: consumes the same drained stream as the
// race detectors but counts instead of checking — per-thread event
// mix (reads/writes/sync operations) and per-lock acquire counts as a
// contention proxy. Attach it next to a Detector on one TraceContext
// and a single traced run yields both a race certificate and a
// contention profile.
//
// Counting is lock-free on the per-event path: each thread's metrics
// row is a cache-line-aligned block of relaxed atomics living in
// chunked stable storage (rows never move once published), and the
// event total is a common::ShardedCounter. The sink's one mutex guards
// only structure — registering/forking threads, the lock-name map an
// acquire must consult, barrier-cycle bookkeeping, and readers — so a
// read/write/release/send/recv costs two uncontended fetch_adds, not a
// mutex round-trip per event. (The sink used to take its mutex on
// every event; with several pipeline shards merging or an inline drain
// racing a metrics poll, that lock was pure serialization for what is
// statistically-mergeable counting — exactly the per-CPU-counter case
// from McKenney ch. 5.)
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/sharded_counter.hpp"
#include "race/detector.hpp"
#include "race/interner.hpp"

namespace cs31::trace {

/// Event mix of one traced thread.
struct ThreadMetrics {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t acquires = 0;
  std::uint64_t releases = 0;
  std::uint64_t sends = 0;
  std::uint64_t recvs = 0;
  std::uint64_t barriers = 0;  ///< barrier cycles this thread waited in

  [[nodiscard]] std::uint64_t total() const {
    return reads + writes + acquires + releases + sends + recvs + barriers;
  }
};

/// Lock-free per-worker accumulator for pipelined analysis: a shard
/// worker (or the router, for sync events) counts into its own delta —
/// plain integers, no shared atomics on the hot path — and the deltas
/// are merged into the MetricsSink when the pipeline goes idle. Thread
/// ids and lock ids are the *context's* ids; lock names are resolved at
/// merge time via the name table the merger passes in.
struct MetricsDelta {
  std::vector<ThreadMetrics> threads;          ///< by context thread id
  std::vector<std::uint64_t> lock_acquires;    ///< by context lock id
  std::uint64_t barrier_cycles = 0;
  std::uint64_t events = 0;

  [[nodiscard]] ThreadMetrics& of(race::ThreadId t) {
    if (t >= threads.size()) threads.resize(t + 1);
    return threads[t];
  }
  void count_acquire(race::ThreadId t, race::NameId lock) {
    ++of(t).acquires;
    if (lock >= lock_acquires.size()) lock_acquires.resize(lock + 1, 0);
    ++lock_acquires[lock];
    ++events;
  }
  [[nodiscard]] bool empty() const {
    return threads.empty() && lock_acquires.empty() && barrier_cycles == 0 && events == 0;
  }
};

class MetricsSink final : public race::EventSink {
 public:
  MetricsSink();
  ~MetricsSink() override;

  MetricsSink(const MetricsSink&) = delete;
  MetricsSink& operator=(const MetricsSink&) = delete;

  // --- EventSink ---
  [[nodiscard]] race::ThreadId register_thread() override;
  [[nodiscard]] race::ThreadId fork(race::ThreadId parent) override;
  void join(race::ThreadId parent, race::ThreadId child) override;
  void acquire(race::ThreadId t, const std::string& lock) override;
  void release(race::ThreadId t, const std::string& lock) override;
  void barrier(const std::vector<race::ThreadId>& waiters) override;
  void channel_send(race::ThreadId t, const std::string& channel) override;
  void channel_recv(race::ThreadId t, const std::string& channel) override;
  void read(race::ThreadId t, const std::string& var, const std::string& where) override;
  void write(race::ThreadId t, const std::string& var, const std::string& where) override;

  /// A metrics sink never reports races.
  [[nodiscard]] const std::vector<race::RaceReport>& races() const override;
  [[nodiscard]] bool race_free() const override { return true; }
  [[nodiscard]] std::uint64_t race_count() const override { return 0; }
  [[nodiscard]] std::uint64_t events() const override;
  [[nodiscard]] std::size_t threads() const override;
  [[nodiscard]] std::size_t shadow_bytes() const override;
  [[nodiscard]] std::string summary() const override;

  // --- metrics ---
  // Readers sum the atomics: exact once writers are quiescent (after a
  // flush / wait_idle); a read racing live counting may miss in-flight
  // increments but never double-counts — the ShardedCounter contract.
  [[nodiscard]] std::vector<ThreadMetrics> per_thread() const;
  /// (lock name, acquire count), by first-acquire order — the hotter a
  /// lock, the more serialization it imposes.
  [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>> lock_acquires() const;
  [[nodiscard]] std::uint64_t barrier_cycles() const;

  /// Fold one worker's delta into the totals (one lock acquisition per
  /// *flush*, not per event). `lock_names[id]` names the delta's lock
  /// ids; a merged run's totals equal the inline sink's exactly.
  void merge(const MetricsDelta& delta, const std::vector<std::string>& lock_names);

 private:
  /// One thread's counters. Same layout cost as ThreadMetrics, but each
  /// field is independently updatable with a relaxed fetch_add, and the
  /// row is line-aligned so two threads' rows never share a cache line.
  struct alignas(64) AtomicThreadMetrics {
    std::atomic<std::uint64_t> reads{0}, writes{0}, acquires{0}, releases{0},
        sends{0}, recvs{0}, barriers{0};
  };
  static constexpr std::size_t kRowsPerChunk = 64;
  static constexpr std::size_t kMaxChunks = 1024;  ///< 64Ki threads
  struct Chunk {
    std::array<AtomicThreadMetrics, kRowsPerChunk> rows{};
  };

  /// The row for `t`; throws cs31::Error on an unregistered id. Safe
  /// without the mutex: a row is published (release) before the thread
  /// count that makes it addressable, and published chunks never move.
  [[nodiscard]] AtomicThreadMetrics& row(race::ThreadId t) const;
  [[nodiscard]] ThreadMetrics snapshot_row(race::ThreadId t) const;
  /// Ensure rows [0, count) exist and publish the new count. Caller
  /// holds mutex_.
  void grow_locked(std::size_t count);

  /// Guards structure only: thread registration, the lock-name map,
  /// barrier bookkeeping, merges, and multi-value readers. Never taken
  /// by read/write/release/send/recv.
  mutable std::mutex mutex_;
  std::atomic<std::size_t> thread_count_{0};
  std::array<std::atomic<Chunk*>, kMaxChunks> chunks_{};
  common::ShardedCounter events_;
  race::Interner lock_names_;
  std::vector<std::uint64_t> lock_acquires_;  // by lock id; guarded by mutex_
  std::uint64_t barrier_cycles_ = 0;          // guarded by mutex_
};

}  // namespace cs31::trace
