// Off-critical-path race analysis. Inline sinks run on the *draining*
// thread — every Life worker sits blocked in the barrier while one
// thread replays the whole drained stream through every detector, so
// analysis cost lands squarely on the parallel hot path. An
// AnalysisPipeline moves that work off the path: a drain publishes its
// dispatched prefix as one EventBatch to a bounded MPSC queue and
// returns, shrinking the barrier stall to queue-publish cost. Behind
// the queue:
//
//   route  — a router thread pops batches in order, assigns each event
//            its global index (the position it would have had in the
//            inline dispatch sequence), BROADCASTS sync events to every
//            shard and ROUTES access events by interned variable id
//            (var % shards) to exactly one shard.
//   shard  — N workers, each owning a private race::Detector — a
//            disjoint slice of FastTrack shadow state. Per-variable
//            VarState makes the split exact; thread/lock/channel
//            vector clocks evolve only on the broadcast sync stream, so
//            every shard holds the same happens-before state an inline
//            detector would, and the shards never share a mutable byte.
//   merge  — per-shard reports carry the router's global event numbers
//            (Detector::set_event_clock), so race::merge_shard_reports
//            reconstructs inline detection order exactly: reports,
//            race_count, events, and summary() are byte-identical to
//            inline mode for ANY shard count and ANY queue capacity.
//
// Backpressure: both the batch queue and the per-shard chunk queues are
// bounded; a publisher that finds its queue full BLOCKS until the
// consumer catches up, so buffer memory stays capped no matter how far
// analysis falls behind (publish_waits() counts how often that bit).
//
// Determinism contract: batches arrive in drain order (the publisher
// holds the context's stream mutex), the router consumes them FIFO, and
// each shard consumes its chunks FIFO — so every shard sees its slice
// of the one globally ordered stream in order, and the merge is a pure
// function of that stream. Queue capacities and thread scheduling can
// change *when* analysis happens, never its result.
//
// Lifetime: construct the pipeline BEFORE the TraceContext that feeds
// it (destruction then stops the workers after the context's last
// drain). Batches are self-contained — events plus the name-table and
// waiter-set deltas interned since the previous publish — so pipeline
// threads never call back into the context.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/bounded_queue.hpp"
#include "race/detector.hpp"
#include "trace/event.hpp"
#include "trace/metrics.hpp"

namespace cs31::trace {

/// One drain's dispatched prefix, in drain order, plus everything the
/// events reference that the pipeline has not seen yet (names and
/// barrier waiter sets are append-only tables; the delta is the tail
/// grown since the last publish).
struct EventBatch {
  std::vector<Event> events;
  std::vector<std::string> new_vars, new_locks, new_channels, new_sites;
  std::vector<std::vector<ThreadId>> new_waiter_sets;
};

/// Per-shard throughput accounting, for the shard-scaling measurement
/// in bench_race_overhead: `busy_seconds` is time spent analyzing (not
/// blocked on the queue), so total events / max busy_seconds is the
/// pipeline's analysis capacity with this shard count.
struct ShardStats {
  std::size_t shard = 0;
  std::uint64_t access_events = 0;  ///< routed here exclusively
  std::uint64_t sync_events = 0;    ///< broadcast to every shard
  std::uint64_t chunks = 0;
  double busy_seconds = 0.0;
};

class AnalysisPipeline {
 public:
  struct Options {
    std::size_t shards = 2;         ///< analysis workers (>= 1)
    std::size_t queue_capacity = 8; ///< max pending batches/chunks per queue (>= 1)
  };

  AnalysisPipeline() : AnalysisPipeline(Options{}) {}
  explicit AnalysisPipeline(Options options);
  ~AnalysisPipeline();

  AnalysisPipeline(const AnalysisPipeline&) = delete;
  AnalysisPipeline& operator=(const AnalysisPipeline&) = delete;

  /// Also maintain event-mix metrics: the router and each shard count
  /// into private MetricsDeltas (no shared state on the hot path),
  /// merged into `sink` each time the pipeline goes idle. Attach before
  /// the first publish; the sink must outlive the pipeline.
  void attach_metrics(MetricsSink& sink);

  // --- producer side (called by TraceContext) --------------------------

  /// Enqueue one drained batch. Blocks while the queue is full — the
  /// backpressure that caps memory. Order across publishers is the
  /// caller's job (TraceContext publishes under its stream mutex).
  void publish(EventBatch batch);

  /// Block until every published event has been routed and analyzed
  /// (and metrics deltas merged). TraceContext::flush calls this, so
  /// the read-the-verdict rule is unchanged: flush, then read.
  void wait_idle();

  // --- results (valid while idle) --------------------------------------

  /// Merged reports in inline detection order (see file comment).
  [[nodiscard]] std::vector<race::RaceReport> races() const;
  [[nodiscard]] bool race_free() const;
  [[nodiscard]] std::uint64_t race_count() const;
  /// Total events routed — equals the inline detector's events().
  [[nodiscard]] std::uint64_t events() const;
  /// Byte-identical to the inline Detector::summary() for the same run.
  [[nodiscard]] std::string summary() const;
  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  [[nodiscard]] std::vector<ShardStats> shard_stats() const;
  /// How often a publisher blocked on a full queue (batch + chunk).
  [[nodiscard]] std::uint64_t publish_waits() const;
  [[nodiscard]] std::uint64_t batch_high_water() const;

 private:
  struct StampedEvent {
    Event event;
    std::uint64_t index = 0;  ///< 1-based global event number
  };

  /// What the router hands a shard: its slice of one batch, plus the
  /// table deltas (each shard keeps private copies — duplication buys
  /// zero sharing between analysis threads).
  struct ShardChunk {
    std::vector<StampedEvent> events;
    std::vector<std::string> new_vars, new_locks, new_channels, new_sites;
    std::vector<std::vector<ThreadId>> new_waiter_sets;
  };

  struct Shard {
    explicit Shard(std::size_t cap) { queue.capacity = cap; }
    common::BoundedQueue<ShardChunk> queue;
    std::thread worker;
    race::Detector detector;
    // Context-id translation state, mirroring the inline SinkBinding.
    std::vector<ThreadId> tid_map{0};  ///< context tid -> detector tid
    std::vector<NameId> var_map, lock_map, channel_map, site_map;
    std::vector<std::string> vars, locks, channels, sites;  ///< by context id
    std::vector<std::vector<ThreadId>> waiter_sets;
    MetricsDelta metrics;
    ShardStats stats;
  };

  void router_main();
  void shard_main(Shard& shard);
  void apply(Shard& shard, const StampedEvent& stamped);
  void merge_metrics_locked();

  const Options options_;
  common::BoundedQueue<EventBatch> batches_;
  std::thread router_;
  std::vector<std::unique_ptr<Shard>> shards_;

  // Router-owned (no lock needed: only the router thread touches them
  // while running; readers wait for idle first).
  std::uint64_t next_index_ = 0;
  std::vector<std::string> lock_names_;  ///< for the metrics merge
  std::vector<std::vector<ThreadId>> waiter_sets_;  ///< for barrier metrics
  MetricsDelta router_metrics_;

  /// Serializes only the idle-point delta merge (two concurrent
  /// wait_idle callers must not fold the same delta twice) and sink
  /// attachment. No per-event or per-batch path takes it: workers count
  /// into their private deltas, and MetricsSink itself counts through
  /// per-shard atomics — the metrics totals are per-shard counters
  /// merged on read, never a hot-path lock.
  std::mutex merge_mutex_;
  MetricsSink* metrics_sink_ = nullptr;  ///< set once, before first publish
};

}  // namespace cs31::trace
