// TracedCondVar: a std::condition_variable drop-in that reports the
// happens-before edge a condition variable actually provides — from the
// signaller to the waiter it wakes.
//
// The edge rides the trace's channel primitive: notify_one/notify_all
// `send` on the condvar's channel *before* signalling (while the sender
// still holds the state it published), and a waiter `recv`s right after
// its predicate-satisfying wakeup, while it holds the mutex. Send joins
// the signaller's clock into the channel; recv joins the channel into
// the waiter — exactly the edge the memory model gives a real condvar
// (signal happens-before the wakeup it caused).
//
// The deliberate teaching contrast: a "buggy" pairing that shares state
// through a flag *without* wait/notify (spin + sleep) has no edge, and
// cs31::race reports the flag and payload accesses as unordered — the
// missed-wakeup bug class from the course's producer/consumer unit.
//
// Waiting uses std::condition_variable_any over TracedMutex, so the
// mutex's own acquire/release edges keep being reported while the wait
// releases and reacquires it.
//
// Stamping contract under lock-free capture: both the send (mutex held
// by the signaller) and the recv (mutex held by the awakened waiter)
// draw their global stamp and the channel's per-object seq inside the
// associated mutex's critical section, so stamp order on the channel
// equals the real signal/wakeup order and the drained stream matches
// the mutex-serialized design byte for byte (DESIGN §7).
#pragma once

#include <condition_variable>
#include <mutex>
#include <string>

#include "trace/instrumented.hpp"

namespace cs31::trace {

class TracedCondVar {
 public:
  TracedCondVar(std::string name, TraceContext& ctx)
      : name_(std::move(name)), ctx_(ctx), channel_(ctx.intern_channel(name_)) {}

  TracedCondVar(const TracedCondVar&) = delete;
  TracedCondVar& operator=(const TracedCondVar&) = delete;

  /// Record the signal edge, then wake. Call with the associated mutex
  /// held (as the course teaches: publish state, then notify) so the
  /// send's stamp is ordered with the protected writes it covers.
  void notify_one() {
    ctx_.send(channel_);
    cv_.notify_one();
  }
  void notify_all() {
    ctx_.send(channel_);
    cv_.notify_all();
  }

  /// Wait until `pred()` holds. On return the calling thread has
  /// received the signaller's clock: everything that happened before
  /// the notify happens-before everything after this wait.
  template <typename Predicate>
  void wait(std::unique_lock<TracedMutex>& lock, Predicate pred) {
    cv_.wait(lock, std::move(pred));
    // Recorded while the mutex is held, as the awakened waiter.
    ctx_.recv(channel_);
  }

  /// Bare wait (no predicate): one sleep/wakeup cycle; spurious wakeups
  /// are possible, exactly as with std::condition_variable.
  void wait(std::unique_lock<TracedMutex>& lock) {
    cv_.wait(lock);
    ctx_.recv(channel_);
  }

  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  std::string name_;
  TraceContext& ctx_;
  NameId channel_;
  std::condition_variable_any cv_;
};

}  // namespace cs31::trace
