// Traced drop-ins for the two primitives student code touches
// directly: TracedMutex for std::mutex and TracedVar<T> for a shared
// variable. Both intern their names once at construction and fire
// per-access events by id — no string hashing on the hot path.
//
// TracedVar guards its value with an internal mutex that is *not*
// reported to the trace, so a deliberately "racy" demo is observable
// (logical race reported) without committing real undefined behaviour —
// the same trick ThreadSanitizer's shadow memory plays.
//
// Stamping contract (what "recorded while the mutex is held" buys):
// under lock-free capture a sync record is two relaxed fetch_adds — a
// global stamp plus the object's own sequence number — appended to the
// recording thread's buffer. Because both counters are drawn inside
// the primitive's critical section, stamp order on any one object
// equals the real lock order, and the drain's merge reconstructs the
// same total sync order the old mutex-serialized stream recorded —
// byte-identical certificates, no recorder serialization between
// threads that never share a lock (see DESIGN §7 for the proof
// sketch, and tests/trace_capture_diff_test.cpp for the evidence).
#pragma once

#include <mutex>
#include <string>
#include <utility>

#include "trace/context.hpp"

namespace cs31::trace {

/// std::mutex drop-in that reports acquire/release to the trace — the
/// happens-before edges a lock actually provides. Works with
/// std::scoped_lock / std::unique_lock via lock()/unlock()/try_lock().
class TracedMutex {
 public:
  TracedMutex(std::string name, TraceContext& ctx)
      : name_(std::move(name)), ctx_(ctx), id_(ctx.intern_lock(name_)) {}

  TracedMutex(const TracedMutex&) = delete;
  TracedMutex& operator=(const TracedMutex&) = delete;

  void lock() {
    mutex_.lock();
    // Recorded while the mutex is held, so the acquire's stamp order
    // is the real lock order.
    ctx_.acquire(id_);
  }
  void unlock() {
    ctx_.release(id_);
    mutex_.unlock();
  }
  bool try_lock() {
    if (!mutex_.try_lock()) return false;
    ctx_.acquire(id_);
    return true;
  }

  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  std::string name_;
  TraceContext& ctx_;
  NameId id_;
  std::mutex mutex_;
};

/// A shared variable whose every load/store is captured. The
/// unsynchronized counter demo is
///   const auto v = counter.load("read counter");
///   counter.store(v + 1, "write counter");
/// — a logical read-modify-write race the detector flags
/// deterministically, whatever the scheduler did.
template <typename T>
class TracedVar {
 public:
  TracedVar(std::string name, TraceContext& ctx, T initial = T{})
      : name_(std::move(name)),
        ctx_(ctx),
        value_(std::move(initial)),
        var_(ctx.intern_var(name_)),
        atomic_lock_(ctx.intern_lock("<atomic:" + name_ + ">")),
        load_site_(ctx.intern_site("load " + name_)),
        store_site_(ctx.intern_site("store " + name_)),
        rmw_site_(ctx.intern_site("fetch_add " + name_)) {}

  TracedVar(const TracedVar&) = delete;
  TracedVar& operator=(const TracedVar&) = delete;

  [[nodiscard]] T load(const std::string& where = "") {
    if (where.empty()) {
      ctx_.read(var_, load_site_);  // interned fast path
    } else {
      ctx_.read(var_, ctx_.intern_site(where));
    }
    std::scoped_lock lock(guard_);
    return value_;
  }

  void store(T v, const std::string& where = "") {
    if (where.empty()) {
      ctx_.write(var_, store_site_);  // interned fast path
    } else {
      ctx_.write(var_, ctx_.intern_site(where));
    }
    std::scoped_lock lock(guard_);
    value_ = std::move(v);
  }

  /// Atomic fetch-add analogue: one indivisible read-modify-write that
  /// creates the same happens-before edges a std::atomic RMW would.
  /// The guard must be held across the *captured events* too: the
  /// acquire's stamp is taken inside the guarded section, so two RMWs'
  /// acquire/read/write/release sequences can never interleave in the
  /// drained stream — without that, a second thread's acquire stamp
  /// could land before the first one's release and the detector would
  /// see (and correctly report!) an unordered conflict that the real
  /// operation never allows.
  T fetch_add(T delta, const std::string& where = "") {
    std::scoped_lock lock(guard_);
    ctx_.acquire(atomic_lock_);
    const NameId site = where.empty() ? rmw_site_ : ctx_.intern_site(where);
    ctx_.read(var_, site);
    ctx_.write(var_, site);
    ctx_.release(atomic_lock_);
    const T old = value_;
    value_ = value_ + delta;
    return old;
  }

  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  std::string name_;
  TraceContext& ctx_;
  T value_;
  NameId var_;
  NameId atomic_lock_;
  NameId load_site_;
  NameId store_site_;
  NameId rmw_site_;
  std::mutex guard_;  // protects the value only; invisible to the trace
};

}  // namespace cs31::trace
