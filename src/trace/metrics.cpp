#include "trace/metrics.hpp"

#include <sstream>

#include "common/error.hpp"

namespace cs31::trace {

using race::ThreadId;

MetricsSink::MetricsSink() {
  std::scoped_lock lock(mutex_);
  grow_locked(1);  // the constructing context's thread 0
}

MetricsSink::~MetricsSink() {
  for (auto& slot : chunks_) delete slot.load(std::memory_order_relaxed);
}

void MetricsSink::grow_locked(std::size_t count) {
  const std::size_t chunks = (count + kRowsPerChunk - 1) / kRowsPerChunk;
  require(chunks <= kMaxChunks, "metrics: too many threads");
  for (std::size_t i = 0; i < chunks; ++i) {
    if (chunks_[i].load(std::memory_order_relaxed) == nullptr) {
      chunks_[i].store(new Chunk{}, std::memory_order_release);
    }
  }
  // Publish the count last: any thread that can name id t < count can
  // also see t's (release-published) chunk.
  thread_count_.store(count, std::memory_order_release);
}

MetricsSink::AtomicThreadMetrics& MetricsSink::row(ThreadId t) const {
  require(t < thread_count_.load(std::memory_order_acquire),
          "metrics: unknown thread id");
  Chunk* chunk = chunks_[t / kRowsPerChunk].load(std::memory_order_acquire);
  return chunk->rows[t % kRowsPerChunk];
}

ThreadMetrics MetricsSink::snapshot_row(ThreadId t) const {
  const AtomicThreadMetrics& r = row(t);
  ThreadMetrics m;
  m.reads = r.reads.load(std::memory_order_relaxed);
  m.writes = r.writes.load(std::memory_order_relaxed);
  m.acquires = r.acquires.load(std::memory_order_relaxed);
  m.releases = r.releases.load(std::memory_order_relaxed);
  m.sends = r.sends.load(std::memory_order_relaxed);
  m.recvs = r.recvs.load(std::memory_order_relaxed);
  m.barriers = r.barriers.load(std::memory_order_relaxed);
  return m;
}

ThreadId MetricsSink::register_thread() {
  std::scoped_lock lock(mutex_);
  const std::size_t count = thread_count_.load(std::memory_order_relaxed);
  grow_locked(count + 1);
  return static_cast<ThreadId>(count);
}

ThreadId MetricsSink::fork(ThreadId parent) {
  std::scoped_lock lock(mutex_);
  (void)row(parent);  // validate
  events_.add();
  const std::size_t count = thread_count_.load(std::memory_order_relaxed);
  grow_locked(count + 1);
  return static_cast<ThreadId>(count);
}

void MetricsSink::join(ThreadId parent, ThreadId child) {
  (void)row(parent);  // validate
  (void)row(child);
  events_.add();
}

void MetricsSink::acquire(ThreadId t, const std::string& lock) {
  row(t).acquires.fetch_add(1, std::memory_order_relaxed);
  events_.add();
  // Only the name->count map needs the mutex (the interner is not
  // concurrent); acquires are rare next to accesses, so this is off the
  // contended path by construction.
  std::scoped_lock guard(mutex_);
  const auto id = lock_names_.id(lock);
  if (id >= lock_acquires_.size()) lock_acquires_.resize(id + 1, 0);
  ++lock_acquires_[id];
}

void MetricsSink::release(ThreadId t, const std::string& lock) {
  (void)lock;
  row(t).releases.fetch_add(1, std::memory_order_relaxed);
  events_.add();
}

void MetricsSink::barrier(const std::vector<ThreadId>& waiters) {
  require(!waiters.empty(), "metrics: barrier needs at least one waiter");
  for (const ThreadId w : waiters) {
    row(w).barriers.fetch_add(1, std::memory_order_relaxed);
  }
  events_.add();
  std::scoped_lock guard(mutex_);
  ++barrier_cycles_;
}

void MetricsSink::channel_send(ThreadId t, const std::string& channel) {
  (void)channel;
  row(t).sends.fetch_add(1, std::memory_order_relaxed);
  events_.add();
}

void MetricsSink::channel_recv(ThreadId t, const std::string& channel) {
  (void)channel;
  row(t).recvs.fetch_add(1, std::memory_order_relaxed);
  events_.add();
}

void MetricsSink::read(ThreadId t, const std::string& var, const std::string& where) {
  (void)var;
  (void)where;
  row(t).reads.fetch_add(1, std::memory_order_relaxed);
  events_.add();
}

void MetricsSink::write(ThreadId t, const std::string& var, const std::string& where) {
  (void)var;
  (void)where;
  row(t).writes.fetch_add(1, std::memory_order_relaxed);
  events_.add();
}

const std::vector<race::RaceReport>& MetricsSink::races() const {
  static const std::vector<race::RaceReport> kNone;
  return kNone;
}

std::uint64_t MetricsSink::events() const { return events_.value(); }

std::size_t MetricsSink::threads() const {
  return thread_count_.load(std::memory_order_acquire);
}

std::size_t MetricsSink::shadow_bytes() const {
  std::scoped_lock lock(mutex_);
  return thread_count_.load(std::memory_order_relaxed) * sizeof(AtomicThreadMetrics) +
         lock_acquires_.size() * sizeof(std::uint64_t);
}

std::string MetricsSink::summary() const {
  std::scoped_lock lock(mutex_);
  const std::size_t count = thread_count_.load(std::memory_order_relaxed);
  std::ostringstream out;
  out << "per-thread event mix (" << count << " threads, " << events_.value()
      << " events, " << barrier_cycles_ << " barrier cycles):\n";
  for (std::size_t t = 0; t < count; ++t) {
    const ThreadMetrics m = snapshot_row(static_cast<ThreadId>(t));
    out << "  T" << t << ": " << m.reads << " reads, " << m.writes << " writes, "
        << m.acquires << " acquires, " << m.sends << " sends, " << m.recvs
        << " recvs, " << m.barriers << " barrier waits\n";
  }
  if (lock_acquires_.empty()) {
    out << "  no locks acquired\n";
  } else {
    out << "lock acquire counts (contention proxy):\n";
    for (std::size_t id = 0; id < lock_acquires_.size(); ++id) {
      out << "  " << lock_names_.name(static_cast<race::NameId>(id)) << ": "
          << lock_acquires_[id] << "\n";
    }
  }
  return out.str();
}

std::vector<ThreadMetrics> MetricsSink::per_thread() const {
  const std::size_t count = thread_count_.load(std::memory_order_acquire);
  std::vector<ThreadMetrics> out;
  out.reserve(count);
  for (std::size_t t = 0; t < count; ++t) {
    out.push_back(snapshot_row(static_cast<ThreadId>(t)));
  }
  return out;
}

std::vector<std::pair<std::string, std::uint64_t>> MetricsSink::lock_acquires() const {
  std::scoped_lock lock(mutex_);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(lock_acquires_.size());
  for (std::size_t id = 0; id < lock_acquires_.size(); ++id) {
    out.emplace_back(std::string(lock_names_.name(static_cast<race::NameId>(id))),
                     lock_acquires_[id]);
  }
  return out;
}

std::uint64_t MetricsSink::barrier_cycles() const {
  std::scoped_lock lock(mutex_);
  return barrier_cycles_;
}

void MetricsSink::merge(const MetricsDelta& delta,
                        const std::vector<std::string>& lock_names) {
  std::scoped_lock lock(mutex_);
  if (delta.threads.size() > thread_count_.load(std::memory_order_relaxed)) {
    grow_locked(delta.threads.size());
  }
  for (std::size_t t = 0; t < delta.threads.size(); ++t) {
    const ThreadMetrics& d = delta.threads[t];
    AtomicThreadMetrics& m = row(static_cast<ThreadId>(t));
    m.reads.fetch_add(d.reads, std::memory_order_relaxed);
    m.writes.fetch_add(d.writes, std::memory_order_relaxed);
    m.acquires.fetch_add(d.acquires, std::memory_order_relaxed);
    m.releases.fetch_add(d.releases, std::memory_order_relaxed);
    m.sends.fetch_add(d.sends, std::memory_order_relaxed);
    m.recvs.fetch_add(d.recvs, std::memory_order_relaxed);
    m.barriers.fetch_add(d.barriers, std::memory_order_relaxed);
  }
  for (std::size_t id = 0; id < delta.lock_acquires.size(); ++id) {
    if (delta.lock_acquires[id] == 0) continue;
    require(id < lock_names.size(), "metrics merge: delta lock id has no name");
    const auto own = lock_names_.id(lock_names[id]);
    if (own >= lock_acquires_.size()) lock_acquires_.resize(own + 1, 0);
    lock_acquires_[own] += delta.lock_acquires[id];
  }
  barrier_cycles_ += delta.barrier_cycles;
  events_.add(delta.events);
}

}  // namespace cs31::trace
