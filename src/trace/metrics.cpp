#include "trace/metrics.hpp"

#include <sstream>

#include "common/error.hpp"

namespace cs31::trace {

using race::ThreadId;

MetricsSink::MetricsSink() { threads_.emplace_back(); }

ThreadMetrics& MetricsSink::of(ThreadId t) {
  require(t < threads_.size(), "metrics: unknown thread id");
  return threads_[t];
}

ThreadId MetricsSink::register_thread() {
  std::scoped_lock lock(mutex_);
  threads_.emplace_back();
  return static_cast<ThreadId>(threads_.size() - 1);
}

ThreadId MetricsSink::fork(ThreadId parent) {
  std::scoped_lock lock(mutex_);
  (void)of(parent);
  ++events_;
  threads_.emplace_back();
  return static_cast<ThreadId>(threads_.size() - 1);
}

void MetricsSink::join(ThreadId parent, ThreadId child) {
  std::scoped_lock lock(mutex_);
  (void)of(parent);
  (void)of(child);
  ++events_;
}

void MetricsSink::acquire(ThreadId t, const std::string& lock) {
  std::scoped_lock guard(mutex_);
  ++of(t).acquires;
  const auto id = lock_names_.id(lock);
  if (id >= lock_acquires_.size()) lock_acquires_.resize(id + 1, 0);
  ++lock_acquires_[id];
  ++events_;
}

void MetricsSink::release(ThreadId t, const std::string& lock) {
  std::scoped_lock guard(mutex_);
  (void)lock;
  ++of(t).releases;
  ++events_;
}

void MetricsSink::barrier(const std::vector<ThreadId>& waiters) {
  std::scoped_lock guard(mutex_);
  require(!waiters.empty(), "metrics: barrier needs at least one waiter");
  for (const ThreadId w : waiters) ++of(w).barriers;
  ++barrier_cycles_;
  ++events_;
}

void MetricsSink::channel_send(ThreadId t, const std::string& channel) {
  std::scoped_lock guard(mutex_);
  (void)channel;
  ++of(t).sends;
  ++events_;
}

void MetricsSink::channel_recv(ThreadId t, const std::string& channel) {
  std::scoped_lock guard(mutex_);
  (void)channel;
  ++of(t).recvs;
  ++events_;
}

void MetricsSink::read(ThreadId t, const std::string& var, const std::string& where) {
  std::scoped_lock guard(mutex_);
  (void)var;
  (void)where;
  ++of(t).reads;
  ++events_;
}

void MetricsSink::write(ThreadId t, const std::string& var, const std::string& where) {
  std::scoped_lock guard(mutex_);
  (void)var;
  (void)where;
  ++of(t).writes;
  ++events_;
}

const std::vector<race::RaceReport>& MetricsSink::races() const {
  static const std::vector<race::RaceReport> kNone;
  return kNone;
}

std::uint64_t MetricsSink::events() const {
  std::scoped_lock lock(mutex_);
  return events_;
}

std::size_t MetricsSink::threads() const {
  std::scoped_lock lock(mutex_);
  return threads_.size();
}

std::size_t MetricsSink::shadow_bytes() const {
  std::scoped_lock lock(mutex_);
  return threads_.size() * sizeof(ThreadMetrics) +
         lock_acquires_.size() * sizeof(std::uint64_t);
}

std::string MetricsSink::summary() const {
  std::scoped_lock lock(mutex_);
  std::ostringstream out;
  out << "per-thread event mix (" << threads_.size() << " threads, " << events_
      << " events, " << barrier_cycles_ << " barrier cycles):\n";
  for (std::size_t t = 0; t < threads_.size(); ++t) {
    const ThreadMetrics& m = threads_[t];
    out << "  T" << t << ": " << m.reads << " reads, " << m.writes << " writes, "
        << m.acquires << " acquires, " << m.sends << " sends, " << m.recvs
        << " recvs, " << m.barriers << " barrier waits\n";
  }
  if (lock_acquires_.empty()) {
    out << "  no locks acquired\n";
  } else {
    out << "lock acquire counts (contention proxy):\n";
    for (std::size_t id = 0; id < lock_acquires_.size(); ++id) {
      out << "  " << lock_names_.name(static_cast<race::NameId>(id)) << ": "
          << lock_acquires_[id] << "\n";
    }
  }
  return out.str();
}

std::vector<ThreadMetrics> MetricsSink::per_thread() const {
  std::scoped_lock lock(mutex_);
  return threads_;
}

std::vector<std::pair<std::string, std::uint64_t>> MetricsSink::lock_acquires() const {
  std::scoped_lock lock(mutex_);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(lock_acquires_.size());
  for (std::size_t id = 0; id < lock_acquires_.size(); ++id) {
    out.emplace_back(std::string(lock_names_.name(static_cast<race::NameId>(id))),
                     lock_acquires_[id]);
  }
  return out;
}

std::uint64_t MetricsSink::barrier_cycles() const {
  std::scoped_lock lock(mutex_);
  return barrier_cycles_;
}

void MetricsSink::merge(const MetricsDelta& delta,
                        const std::vector<std::string>& lock_names) {
  std::scoped_lock lock(mutex_);
  if (delta.threads.size() > threads_.size()) threads_.resize(delta.threads.size());
  for (std::size_t t = 0; t < delta.threads.size(); ++t) {
    const ThreadMetrics& d = delta.threads[t];
    ThreadMetrics& m = threads_[t];
    m.reads += d.reads;
    m.writes += d.writes;
    m.acquires += d.acquires;
    m.releases += d.releases;
    m.sends += d.sends;
    m.recvs += d.recvs;
    m.barriers += d.barriers;
  }
  for (std::size_t id = 0; id < delta.lock_acquires.size(); ++id) {
    if (delta.lock_acquires[id] == 0) continue;
    require(id < lock_names.size(), "metrics merge: delta lock id has no name");
    const auto own = lock_names_.id(lock_names[id]);
    if (own >= lock_acquires_.size()) lock_acquires_.resize(own + 1, 0);
    lock_acquires_[own] += delta.lock_acquires[id];
  }
  barrier_cycles_ += delta.barrier_cycles;
  events_ += delta.events;
}

}  // namespace cs31::trace
