// MSI snooping cache-coherence simulator (Table I's "consistency,
// coherency" topics and the multicore unit's "which CPU components are
// duplicated for each core and which are shared"): per-core private
// caches kept coherent over a shared bus with the three-state
// Modified / Shared / Invalid protocol. Trace-driven and deterministic;
// the false-sharing bench (E-ablation) uses the invalidation counts to
// explain why adjacent per-thread counters destroy speedup.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace cs31::memhier {

/// MSI line states.
enum class MsiState { Invalid, Shared, Modified };

[[nodiscard]] std::string msi_name(MsiState state);

/// What one access triggered, protocol-wise.
struct CoherenceResult {
  bool hit = false;               ///< serviced without a bus transaction
  bool invalidated_others = false;///< a write killed other cores' copies
  bool downgraded_other = false;  ///< a read forced M -> S elsewhere
  MsiState new_state = MsiState::Invalid;
};

/// Per-system statistics.
struct CoherenceStats {
  std::uint64_t accesses = 0;
  std::uint64_t hits = 0;
  std::uint64_t bus_reads = 0;        ///< BusRd transactions
  std::uint64_t bus_read_exclusives = 0;  ///< BusRdX (write intent)
  std::uint64_t invalidations = 0;    ///< copies killed in other caches
  std::uint64_t writebacks = 0;       ///< M lines flushed on snoop/evict

  [[nodiscard]] double hit_rate() const {
    return accesses == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(accesses);
  }
};

/// A multicore system of private direct-mapped caches over one bus.
/// Geometry is deliberately simple (the protocol is the lesson): each
/// core has `lines_per_core` direct-mapped lines of `block_bytes`.
class MsiSystem {
 public:
  /// Throws cs31::Error for zero cores, non-power-of-two geometry.
  MsiSystem(unsigned cores, std::uint32_t block_bytes = 64,
            std::uint32_t lines_per_core = 64);

  /// Core `core` reads/writes `address`. Applies the MSI transitions
  /// (including snooping in every other cache). Throws on a bad core.
  CoherenceResult access(unsigned core, std::uint32_t address, bool is_write);

  /// State of `address`'s block in `core`'s cache.
  [[nodiscard]] MsiState state(unsigned core, std::uint32_t address) const;

  [[nodiscard]] const CoherenceStats& stats() const { return stats_; }
  [[nodiscard]] unsigned cores() const { return static_cast<unsigned>(caches_.size()); }

  /// Render each core's lines holding valid state (debug view).
  [[nodiscard]] std::string dump() const;

 private:
  struct Line {
    MsiState state = MsiState::Invalid;
    std::uint32_t tag = 0;
  };

  [[nodiscard]] std::uint32_t index_of(std::uint32_t address) const;
  [[nodiscard]] std::uint32_t tag_of(std::uint32_t address) const;

  std::uint32_t block_bytes_;
  std::uint32_t lines_per_core_;
  std::vector<std::vector<Line>> caches_;  // [core][index]
  CoherenceStats stats_;
};

}  // namespace cs31::memhier
