#include "memhier/hierarchy.hpp"

#include "common/error.hpp"

namespace cs31::memhier {

const std::vector<StorageDevice>& canonical_hierarchy() {
  static const std::vector<StorageDevice> kDevices = {
      {"registers", 0.3, 256, 0, true},
      {"L1 cache", 1.0, 64e3, 0, true},
      {"L2 cache", 4.0, 512e3, 0, true},
      {"L3 cache", 20.0, 16e6, 0, true},
      {"DRAM", 100.0, 16e9, 4.0, true},
      {"SSD", 60e3, 1e12, 0.10, false},
      {"HDD", 8e6, 4e12, 0.02, false},
      {"tape", 60e9, 1e13, 0.005, false},
  };
  return kDevices;
}

double effective_access_ns(double hit_rate, double upper_ns, double lower_ns) {
  require(hit_rate >= 0.0 && hit_rate <= 1.0, "hit rate must be in [0, 1]");
  return upper_ns + (1.0 - hit_rate) * lower_ns;
}

MultiLevelCache::MultiLevelCache(const std::vector<Level>& levels, double memory_latency_ns)
    : memory_latency_ns_(memory_latency_ns) {
  require(!levels.empty(), "hierarchy needs at least one cache level");
  require(memory_latency_ns > 0, "memory latency must be positive");
  for (const Level& level : levels) {
    require(level.latency_ns > 0, "level latency must be positive");
    caches_.emplace_back(level.config);
    latencies_.push_back(level.latency_ns);
  }
}

double MultiLevelCache::access(std::uint32_t address, bool is_write) {
  ++accesses_;
  double latency = 0;
  for (std::size_t i = 0; i < caches_.size(); ++i) {
    latency += latencies_[i];
    if (caches_[i].access(address, is_write).hit) {
      total_latency_ns_ += latency;
      return latency;
    }
  }
  latency += memory_latency_ns_;
  total_latency_ns_ += latency;
  return latency;
}

const CacheStats& MultiLevelCache::level_stats(std::size_t level) const {
  require(level < caches_.size(), "no such cache level");
  return caches_[level].stats();
}

double MultiLevelCache::amat_ns() const {
  return accesses_ == 0 ? 0.0 : total_latency_ns_ / static_cast<double>(accesses_);
}

void MultiLevelCache::clear() {
  for (Cache& c : caches_) c.clear();
  total_latency_ns_ = 0;
  accesses_ = 0;
}

}  // namespace cs31::memhier
