// The memory-hierarchy model from CS 31's "Memory Hierarchy" unit: the
// device pyramid (fast/low-density at the top, slow/high-density at the
// bottom), primary vs secondary classification, and effective-access-
// time analysis across levels — plus a multi-level cache simulator that
// chains Cache instances into an L1/L2/... pipeline.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "memhier/cache.hpp"

namespace cs31::memhier {

/// One storage technology in the pyramid.
struct StorageDevice {
  std::string name;
  double latency_ns = 0;        ///< typical access latency
  double capacity_bytes = 0;    ///< typical capacity
  double dollars_per_gb = 0;    ///< cost density
  bool primary = false;         ///< CPU-addressable (vs via OS calls)
};

/// The course's canonical device table (registers through tape),
/// ordered top (fastest) to bottom.
[[nodiscard]] const std::vector<StorageDevice>& canonical_hierarchy();

/// Effective access time of a two-level pair:
/// hit_rate * upper + (1 - hit_rate) * (upper + lower), the formula the
/// course applies to caches, TLBs, and paging alike.
[[nodiscard]] double effective_access_ns(double hit_rate, double upper_ns, double lower_ns);

/// A multi-level cache hierarchy: access L1; on miss, L2; and so on,
/// finally "memory". Latencies are per-level lookup costs.
class MultiLevelCache {
 public:
  struct Level {
    CacheConfig config;
    double latency_ns = 1.0;
  };

  /// Throws cs31::Error when levels is empty or memory latency <= 0.
  MultiLevelCache(const std::vector<Level>& levels, double memory_latency_ns);

  /// Access an address; returns the total latency in ns (sum of lookup
  /// costs down to the level that hits, inclusive).
  double access(std::uint32_t address, bool is_write);

  /// Per-level statistics.
  [[nodiscard]] const CacheStats& level_stats(std::size_t level) const;
  [[nodiscard]] std::size_t level_count() const { return caches_.size(); }

  /// Average memory access time over all accesses so far.
  [[nodiscard]] double amat_ns() const;

  void clear();

 private:
  std::vector<Cache> caches_;
  std::vector<double> latencies_;
  double memory_latency_ns_;
  double total_latency_ns_ = 0;
  std::uint64_t accesses_ = 0;
};

}  // namespace cs31::memhier
