#include "memhier/coherence.hpp"

#include <bit>
#include <sstream>

#include "common/error.hpp"

namespace cs31::memhier {

std::string msi_name(MsiState state) {
  switch (state) {
    case MsiState::Invalid: return "I";
    case MsiState::Shared: return "S";
    case MsiState::Modified: return "M";
  }
  return "?";
}

MsiSystem::MsiSystem(unsigned cores, std::uint32_t block_bytes,
                     std::uint32_t lines_per_core)
    : block_bytes_(block_bytes), lines_per_core_(lines_per_core) {
  require(cores >= 1 && cores <= 64, "cores must be in [1, 64]");
  require(std::has_single_bit(block_bytes) && block_bytes >= 4,
          "block size must be a power of two >= 4");
  require(std::has_single_bit(lines_per_core), "lines must be a power of two");
  caches_.assign(cores, std::vector<Line>(lines_per_core));
}

std::uint32_t MsiSystem::index_of(std::uint32_t address) const {
  return (address / block_bytes_) % lines_per_core_;
}

std::uint32_t MsiSystem::tag_of(std::uint32_t address) const {
  return (address / block_bytes_) / lines_per_core_;
}

CoherenceResult MsiSystem::access(unsigned core, std::uint32_t address, bool is_write) {
  require(core < caches_.size(), "no such core");
  ++stats_.accesses;
  const std::uint32_t index = index_of(address);
  const std::uint32_t tag = tag_of(address);
  Line& line = caches_[core][index];
  const bool present = line.state != MsiState::Invalid && line.tag == tag;

  CoherenceResult result;

  if (present && (line.state == MsiState::Modified ||
                  (!is_write && line.state == MsiState::Shared))) {
    // M serves everything; S serves reads — no bus traffic.
    ++stats_.hits;
    result.hit = true;
    result.new_state = line.state;
    return result;
  }

  // A bus transaction is needed: BusRdX for writes (and S->M upgrades),
  // BusRd for reads. Every other cache snoops.
  if (is_write) {
    ++stats_.bus_read_exclusives;
  } else {
    ++stats_.bus_reads;
  }
  for (unsigned other = 0; other < caches_.size(); ++other) {
    if (other == core) continue;
    Line& snoop = caches_[other][index];
    if (snoop.tag != tag || snoop.state == MsiState::Invalid) continue;
    if (is_write) {
      // BusRdX invalidates every other copy; M copies flush first.
      if (snoop.state == MsiState::Modified) ++stats_.writebacks;
      snoop.state = MsiState::Invalid;
      ++stats_.invalidations;
      result.invalidated_others = true;
    } else if (snoop.state == MsiState::Modified) {
      // BusRd downgrades M -> S with a flush.
      ++stats_.writebacks;
      snoop.state = MsiState::Shared;
      result.downgraded_other = true;
    }
  }

  // Evicting a modified line of a different block writes it back.
  if (line.state == MsiState::Modified && line.tag != tag) ++stats_.writebacks;
  line.tag = tag;
  line.state = is_write ? MsiState::Modified : MsiState::Shared;
  result.new_state = line.state;
  return result;
}

MsiState MsiSystem::state(unsigned core, std::uint32_t address) const {
  require(core < caches_.size(), "no such core");
  const Line& line = caches_[core][index_of(address)];
  if (line.state == MsiState::Invalid || line.tag != tag_of(address)) {
    return MsiState::Invalid;
  }
  return line.state;
}

std::string MsiSystem::dump() const {
  std::ostringstream out;
  for (unsigned core = 0; core < caches_.size(); ++core) {
    out << "core " << core << ":";
    for (std::uint32_t i = 0; i < lines_per_core_; ++i) {
      const Line& line = caches_[core][i];
      if (line.state != MsiState::Invalid) {
        out << " [" << i << ":" << msi_name(line.state) << " tag=" << line.tag << "]";
      }
    }
    out << '\n';
  }
  return out.str();
}

}  // namespace cs31::memhier
