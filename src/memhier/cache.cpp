#include "memhier/cache.hpp"

#include <bit>
#include <sstream>

#include "common/error.hpp"

namespace cs31::memhier {

Cache::Cache(const CacheConfig& config)
    : config_(config), rng_state_(config.random_seed | 1u) {
  require(std::has_single_bit(config.block_bytes) && config.block_bytes >= 4,
          "block size must be a power of two >= 4");
  require(std::has_single_bit(config.num_lines), "line count must be a power of two");
  require(config.associativity >= 1 && config.associativity <= config.num_lines,
          "associativity must be in [1, num_lines]");
  require(config.num_lines % config.associativity == 0,
          "associativity must divide the line count");
  require(std::has_single_bit(config.num_sets()), "set count must be a power of two");
  lines_.resize(config.num_lines);
}

AddressParts Cache::split(std::uint32_t address) const {
  AddressParts p;
  p.offset_bits = std::countr_zero(config_.block_bytes);
  p.index_bits = std::countr_zero(config_.num_sets());
  p.tag_bits = 32 - p.offset_bits - p.index_bits;
  p.offset = address & (config_.block_bytes - 1);
  p.index = (address >> p.offset_bits) & (config_.num_sets() - 1);
  p.tag = address >> (p.offset_bits + p.index_bits);
  return p;
}

const Cache::Line* Cache::find(std::uint32_t address) const {
  const AddressParts p = split(address);
  const std::size_t base = static_cast<std::size_t>(p.index) * config_.associativity;
  for (std::uint32_t w = 0; w < config_.associativity; ++w) {
    const Line& line = lines_[base + w];
    if (line.valid && line.tag == p.tag) return &line;
  }
  return nullptr;
}

std::uint32_t Cache::pick_victim(std::uint32_t set_index) {
  const std::size_t base = static_cast<std::size_t>(set_index) * config_.associativity;
  // Prefer an invalid way.
  for (std::uint32_t w = 0; w < config_.associativity; ++w) {
    if (!lines_[base + w].valid) return w;
  }
  switch (config_.replacement) {
    case Replacement::Lru: {
      std::uint32_t victim = 0;
      for (std::uint32_t w = 1; w < config_.associativity; ++w) {
        if (lines_[base + w].last_used < lines_[base + victim].last_used) victim = w;
      }
      return victim;
    }
    case Replacement::Fifo: {
      std::uint32_t victim = 0;
      for (std::uint32_t w = 1; w < config_.associativity; ++w) {
        if (lines_[base + w].filled_at < lines_[base + victim].filled_at) victim = w;
      }
      return victim;
    }
    case Replacement::Random:
      rng_state_ = rng_state_ * 1664525u + 1013904223u;
      return (rng_state_ >> 16) % config_.associativity;
  }
  return 0;
}

AccessResult Cache::access(std::uint32_t address, bool is_write) {
  ++clock_;
  ++stats_.accesses;
  const AddressParts p = split(address);
  const std::size_t base = static_cast<std::size_t>(p.index) * config_.associativity;
  AccessResult result;
  result.set_index = p.index;

  // Hit path.
  for (std::uint32_t w = 0; w < config_.associativity; ++w) {
    Line& line = lines_[base + w];
    if (line.valid && line.tag == p.tag) {
      ++stats_.hits;
      line.last_used = clock_;
      if (is_write) {
        if (config_.write_policy == WritePolicy::WriteBack) {
          line.dirty = true;
        } else {
          ++stats_.memory_writes;
        }
      }
      result.hit = true;
      result.way = w;
      return result;
    }
  }

  // Miss path.
  ++stats_.misses;
  if (is_write && !config_.write_allocate) {
    // Write-no-allocate: the write goes straight to memory.
    ++stats_.memory_writes;
    return result;
  }
  const std::uint32_t w = pick_victim(p.index);
  Line& line = lines_[base + w];
  if (line.valid) {
    ++stats_.evictions;
    result.evicted = true;
    if (line.dirty) {
      ++stats_.writebacks;
      result.writeback = true;
    }
  }
  line.valid = true;
  line.tag = p.tag;
  line.last_used = clock_;
  line.filled_at = clock_;
  line.dirty = false;
  if (is_write) {
    if (config_.write_policy == WritePolicy::WriteBack) {
      line.dirty = true;
    } else {
      ++stats_.memory_writes;
    }
  }
  result.way = w;
  return result;
}

bool Cache::contains(std::uint32_t address) const { return find(address) != nullptr; }

bool Cache::dirty(std::uint32_t address) const {
  const Line* line = find(address);
  return line != nullptr && line->dirty;
}

void Cache::clear() {
  for (Line& line : lines_) line = Line{};
  stats_ = CacheStats{};
  clock_ = 0;
}

std::string Cache::dump() const {
  std::ostringstream out;
  out << "set  way  V D tag\n";
  for (std::uint32_t s = 0; s < config_.num_sets(); ++s) {
    for (std::uint32_t w = 0; w < config_.associativity; ++w) {
      const Line& line = lines_[static_cast<std::size_t>(s) * config_.associativity + w];
      out << s << "    " << w << "    " << (line.valid ? 1 : 0) << ' '
          << (line.dirty ? 1 : 0) << " 0x" << std::hex << line.tag << std::dec << '\n';
    }
  }
  return out.str();
}

}  // namespace cs31::memhier
