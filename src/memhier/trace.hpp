// Memory-access trace generators and locality analysis (CS 31's
// "identify temporal and spatial locality" exercises and the nested-loop
// stride experiment, E4). Traces are address sequences that feed the
// cache and VM simulators.
#pragma once

#include <cstdint>
#include <vector>

#include "memhier/cache.hpp"

namespace cs31::memhier {

/// One memory reference.
struct Access {
  std::uint32_t address = 0;
  bool is_write = false;
};

using Trace = std::vector<Access>;

/// The classic pair of nested loops over a rows x cols int array at
/// `base`: row-major order visits consecutive addresses (spatial
/// locality), column-major strides by the row length.
[[nodiscard]] Trace row_major_trace(std::uint32_t base, std::uint32_t rows,
                                    std::uint32_t cols, std::uint32_t elem_bytes = 4);
[[nodiscard]] Trace column_major_trace(std::uint32_t base, std::uint32_t rows,
                                       std::uint32_t cols, std::uint32_t elem_bytes = 4);

/// Fixed-stride sweep: `count` accesses starting at base, `stride_bytes`
/// apart. Throws cs31::Error when stride is zero.
[[nodiscard]] Trace strided_trace(std::uint32_t base, std::uint32_t count,
                                  std::uint32_t stride_bytes);

/// Deterministic pseudo-random accesses within [base, base + span).
[[nodiscard]] Trace random_trace(std::uint32_t base, std::uint32_t span,
                                 std::uint32_t count, std::uint32_t seed = 42);

/// Repeat a working-set sweep `passes` times — the working-set-size
/// experiment behind the hierarchy bench (E10).
[[nodiscard]] Trace working_set_trace(std::uint32_t base, std::uint32_t set_bytes,
                                      std::uint32_t passes, std::uint32_t stride_bytes = 4);

/// Locality metrics over a trace.
struct LocalityReport {
  double temporal_reuse_fraction = 0;  ///< accesses whose exact address repeats earlier
  double spatial_fraction = 0;         ///< accesses landing within `window` bytes of the previous access
  double mean_reuse_distance = 0;      ///< mean distinct-block distance between reuses
};

/// Analyze a trace's locality; `block_bytes` defines spatial closeness
/// and the reuse-distance granularity.
[[nodiscard]] LocalityReport analyze_locality(const Trace& trace,
                                              std::uint32_t block_bytes = 64);

/// Feed every access of a trace to the cache; returns the final stats.
CacheStats replay(Cache& cache, const Trace& trace);

}  // namespace cs31::memhier
