// Configurable single-level cache simulator (CS 31 "Caching": direct-
// mapped and set-associative designs, tag/index/offset address division,
// LRU replacement, write policies, and hit/miss/eviction accounting —
// the machinery behind the course's cache-tracing homeworks).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace cs31::memhier {

/// Replacement policy for set-associative caches.
enum class Replacement { Lru, Fifo, Random };

/// Write-hit policy.
enum class WritePolicy { WriteBack, WriteThrough };

/// Geometry + policy of one cache.
struct CacheConfig {
  std::uint32_t block_bytes = 16;   ///< power of two
  std::uint32_t num_lines = 64;     ///< total lines, power of two
  std::uint32_t associativity = 1;  ///< ways; 1 = direct-mapped; = num_lines -> fully assoc.
  Replacement replacement = Replacement::Lru;
  WritePolicy write_policy = WritePolicy::WriteBack;
  bool write_allocate = true;       ///< allocate on write miss?
  std::uint32_t random_seed = 1;    ///< for Replacement::Random

  [[nodiscard]] std::uint32_t num_sets() const { return num_lines / associativity; }
  [[nodiscard]] std::uint32_t total_bytes() const { return block_bytes * num_lines; }
};

/// The course's tag/index/offset address division.
struct AddressParts {
  std::uint32_t tag = 0;
  std::uint32_t index = 0;
  std::uint32_t offset = 0;
  int tag_bits = 0;
  int index_bits = 0;
  int offset_bits = 0;
};

/// What one access did.
struct AccessResult {
  bool hit = false;
  bool evicted = false;            ///< a valid line was replaced
  bool writeback = false;          ///< the evicted line was dirty
  std::uint32_t set_index = 0;
  std::uint32_t way = 0;           ///< way hit or filled
};

/// Cumulative statistics.
struct CacheStats {
  std::uint64_t accesses = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t writebacks = 0;       ///< dirty lines written on eviction
  std::uint64_t memory_writes = 0;    ///< write-through traffic

  [[nodiscard]] double hit_rate() const {
    return accesses == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(accesses);
  }
  [[nodiscard]] double miss_rate() const { return accesses == 0 ? 0.0 : 1.0 - hit_rate(); }
};

/// Trace-driven cache. Construction validates the geometry (powers of
/// two, associativity divides lines) and throws cs31::Error otherwise.
class Cache {
 public:
  explicit Cache(const CacheConfig& config);

  /// Split an address into tag/index/offset for this geometry — the
  /// homework's "address division" questions.
  [[nodiscard]] AddressParts split(std::uint32_t address) const;

  /// Perform one read (is_write=false) or write access.
  AccessResult access(std::uint32_t address, bool is_write);

  /// Convenience wrappers.
  AccessResult read(std::uint32_t address) { return access(address, false); }
  AccessResult write(std::uint32_t address) { return access(address, true); }

  [[nodiscard]] const CacheStats& stats() const { return stats_; }
  [[nodiscard]] const CacheConfig& config() const { return config_; }

  /// Is the block containing `address` currently cached? (Inspection
  /// for tests and the homework's state-tracing tables.)
  [[nodiscard]] bool contains(std::uint32_t address) const;

  /// Is the cached block containing `address` dirty?
  [[nodiscard]] bool dirty(std::uint32_t address) const;

  /// Reset lines and statistics.
  void clear();

  /// Render the per-set line table (valid/dirty/tag), the view students
  /// fill in while tracing accesses.
  [[nodiscard]] std::string dump() const;

 private:
  struct Line {
    bool valid = false;
    bool dirty = false;
    std::uint32_t tag = 0;
    std::uint64_t last_used = 0;   // LRU clock
    std::uint64_t filled_at = 0;   // FIFO clock
  };

  [[nodiscard]] const Line* find(std::uint32_t address) const;
  std::uint32_t pick_victim(std::uint32_t set_index);

  CacheConfig config_;
  std::vector<Line> lines_;  // set-major: lines_[set * assoc + way]
  CacheStats stats_;
  std::uint64_t clock_ = 0;
  std::uint32_t rng_state_;
};

}  // namespace cs31::memhier
