#include "memhier/trace.hpp"

#include <unordered_map>
#include <unordered_set>

#include "common/error.hpp"

namespace cs31::memhier {

Trace row_major_trace(std::uint32_t base, std::uint32_t rows, std::uint32_t cols,
                      std::uint32_t elem_bytes) {
  require(elem_bytes > 0, "element size must be positive");
  Trace t;
  t.reserve(static_cast<std::size_t>(rows) * cols);
  for (std::uint32_t r = 0; r < rows; ++r) {
    for (std::uint32_t c = 0; c < cols; ++c) {
      t.push_back({base + (r * cols + c) * elem_bytes, false});
    }
  }
  return t;
}

Trace column_major_trace(std::uint32_t base, std::uint32_t rows, std::uint32_t cols,
                         std::uint32_t elem_bytes) {
  require(elem_bytes > 0, "element size must be positive");
  Trace t;
  t.reserve(static_cast<std::size_t>(rows) * cols);
  for (std::uint32_t c = 0; c < cols; ++c) {
    for (std::uint32_t r = 0; r < rows; ++r) {
      t.push_back({base + (r * cols + c) * elem_bytes, false});
    }
  }
  return t;
}

Trace strided_trace(std::uint32_t base, std::uint32_t count, std::uint32_t stride_bytes) {
  require(stride_bytes > 0, "stride must be positive");
  Trace t;
  t.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    t.push_back({base + i * stride_bytes, false});
  }
  return t;
}

Trace random_trace(std::uint32_t base, std::uint32_t span, std::uint32_t count,
                   std::uint32_t seed) {
  require(span > 0, "span must be positive");
  Trace t;
  t.reserve(count);
  std::uint32_t state = seed | 1u;
  for (std::uint32_t i = 0; i < count; ++i) {
    state = state * 1664525u + 1013904223u;
    t.push_back({base + (state >> 8) % span, false});
  }
  return t;
}

Trace working_set_trace(std::uint32_t base, std::uint32_t set_bytes, std::uint32_t passes,
                        std::uint32_t stride_bytes) {
  require(stride_bytes > 0 && set_bytes >= stride_bytes, "bad working set geometry");
  Trace t;
  const std::uint32_t per_pass = set_bytes / stride_bytes;
  t.reserve(static_cast<std::size_t>(per_pass) * passes);
  for (std::uint32_t p = 0; p < passes; ++p) {
    for (std::uint32_t i = 0; i < per_pass; ++i) {
      t.push_back({base + i * stride_bytes, false});
    }
  }
  return t;
}

LocalityReport analyze_locality(const Trace& trace, std::uint32_t block_bytes) {
  require(block_bytes > 0, "block size must be positive");
  LocalityReport report;
  if (trace.empty()) return report;

  std::unordered_set<std::uint32_t> seen_addresses;
  std::unordered_map<std::uint32_t, std::uint64_t> last_block_time;
  std::uint64_t temporal = 0, spatial = 0;
  double reuse_total = 0;
  std::uint64_t reuse_count = 0;

  for (std::size_t i = 0; i < trace.size(); ++i) {
    const std::uint32_t addr = trace[i].address;
    if (seen_addresses.contains(addr)) ++temporal;
    seen_addresses.insert(addr);

    if (i > 0) {
      const std::uint32_t prev = trace[i - 1].address;
      const std::uint32_t delta = addr > prev ? addr - prev : prev - addr;
      if (delta <= block_bytes) ++spatial;
    }

    const std::uint32_t block = addr / block_bytes;
    if (const auto it = last_block_time.find(block); it != last_block_time.end()) {
      reuse_total += static_cast<double>(i - it->second);
      ++reuse_count;
    }
    last_block_time[block] = i;
  }

  const double n = static_cast<double>(trace.size());
  report.temporal_reuse_fraction = static_cast<double>(temporal) / n;
  report.spatial_fraction = trace.size() < 2 ? 0.0
                                             : static_cast<double>(spatial) / (n - 1.0);
  report.mean_reuse_distance =
      reuse_count == 0 ? 0.0 : reuse_total / static_cast<double>(reuse_count);
  return report;
}

CacheStats replay(Cache& cache, const Trace& trace) {
  for (const Access& a : trace) cache.access(a.address, a.is_write);
  return cache.stats();
}

}  // namespace cs31::memhier
