// String interner for the race detector's shadow state. FastTrack-style
// compression only pays off if the per-access bookkeeping stops touching
// strings: the detector interns every variable, lock, channel, and
// access-site label to a dense uint32 id on first sight and keys all of
// its shadow tables by id. Names are resolved back to strings only when
// a RaceReport is materialized (races are rare; accesses are not).
//
// Ids are assigned in first-seen order, so a deterministic event stream
// (a replayed schedule, a seeded fuzz trace) always produces the same
// ids — and therefore byte-identical reports — run after run.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>

namespace cs31::race {

/// Dense id of an interned name (variable, lock, channel, or site label).
using NameId = std::uint32_t;

class Interner {
 public:
  /// Id of `name`, interning it on first sight (ids count up from 0 in
  /// first-seen order).
  NameId id(std::string_view name);

  /// The name behind an id. Throws cs31::Error on an unknown id.
  [[nodiscard]] const std::string& name(NameId id) const;

  /// Number of distinct names interned.
  [[nodiscard]] std::size_t size() const { return names_.size(); }

  /// Approximate heap footprint (table + stored names), for the
  /// shadow-state accounting in bench_race_overhead.
  [[nodiscard]] std::size_t bytes() const;

 private:
  // Each name is stored exactly once, in the deque (stable addresses —
  // a vector's reallocation would dangle the views); the lookup table
  // keys string_views into that storage, so the string API's hot lookup
  // builds no temporary std::string either.
  std::unordered_map<std::string_view, NameId> ids_;
  std::deque<std::string> names_;
};

}  // namespace cs31::race
