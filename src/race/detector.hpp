// FastTrack-style happens-before data-race detector. The detector is an
// event sink: the instrumentation layer (shadow.hpp) or the replay
// engine (replay.hpp) feeds it fork/join/acquire/release/read/write/
// barrier/channel events, and it maintains
//   - one vector clock per thread   (what the thread has observed),
//   - one vector clock per lock     (the last critical section's clock),
//   - one vector clock per channel  (producer/consumer publication),
//   - per traced variable: the last write as a single epoch plus the
//     per-thread read clocks since that write.
// Two conflicting accesses (same variable, at least one a write, from
// different threads) race exactly when neither happens-before the other;
// each race is reported as a structured RaceReport naming both access
// sites, the involved threads, and the locks held at each side (the
// lockset view — pedagogically, a race's locksets never intersect).
//
// Unlike a sampling/statistical demo, detection is deterministic: it
// depends only on the happens-before order of the events, not on how
// the OS timed the threads.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "race/vector_clock.hpp"

namespace cs31::race {

enum class AccessKind { Read, Write };

[[nodiscard]] std::string to_string(AccessKind kind);

/// One side of a race: which thread touched the variable, how, where in
/// the program (a caller-supplied label), and under which locks.
struct AccessSite {
  ThreadId thread = 0;
  AccessKind kind = AccessKind::Read;
  std::string where;                    ///< source label, e.g. "counter += 1"
  std::uint64_t event = 0;              ///< detector-global event number
  std::vector<std::string> locks_held;  ///< names of locks held at the access

  [[nodiscard]] std::string to_string() const;
};

/// A detected data race: two concurrent conflicting accesses to one
/// variable. `first` is the older access (already recorded in the
/// shadow state), `second` the access that completed the race.
struct RaceReport {
  std::string variable;
  AccessSite first;
  AccessSite second;
  std::string explanation;  ///< human-readable why (no HB edge, disjoint locksets)

  [[nodiscard]] std::string to_string() const;
};

/// The detector proper. Thread-safe: every event takes an internal lock,
/// so concurrent instrumented threads feed it a linearized event stream
/// (which is exactly what happens-before analysis needs).
class Detector {
 public:
  Detector();

  Detector(const Detector&) = delete;
  Detector& operator=(const Detector&) = delete;

  /// Register a root thread with no happens-before predecessor.
  /// Thread 0 (the main thread) is pre-registered by the constructor.
  [[nodiscard]] ThreadId register_thread();

  /// pthread_create: child starts having observed everything the parent
  /// has done so far (HB edge parent -> child). Returns the child id.
  [[nodiscard]] ThreadId fork(ThreadId parent);

  /// pthread_join: parent observes everything the child did
  /// (HB edge child -> parent).
  void join(ThreadId parent, ThreadId child);

  /// Mutex acquire: the locker observes the last critical section.
  void acquire(ThreadId t, const std::string& lock);

  /// Mutex release: publish this thread's clock to the lock.
  void release(ThreadId t, const std::string& lock);

  /// A completed barrier cycle is a happens-before edge among ALL
  /// waiters: afterwards every waiter has observed every other waiter's
  /// pre-barrier work. Throws cs31::Error on an empty waiter set.
  void barrier(const std::vector<ThreadId>& waiters);

  /// Producer/consumer publication: send joins the sender's clock into
  /// the channel; recv joins the channel into the receiver. A get that
  /// follows a put is thereby ordered after it (the bounded buffer's
  /// internal mutex provides this in the real runtime).
  void channel_send(ThreadId t, const std::string& channel);
  void channel_recv(ThreadId t, const std::string& channel);

  /// A read/write of a traced variable. `where` labels the access site
  /// in reports.
  void read(ThreadId t, const std::string& var, const std::string& where = "");
  void write(ThreadId t, const std::string& var, const std::string& where = "");

  /// Races found so far, in detection order. At most one report per
  /// (variable, unordered thread pair) so a racy loop does not flood
  /// the report; `race_count()` still counts every racy access.
  /// Returns a reference into the detector: read it only after the
  /// instrumented threads have been joined (the other accessors take
  /// the internal lock and are safe at any time).
  [[nodiscard]] const std::vector<RaceReport>& races() const;
  [[nodiscard]] bool race_free() const;
  [[nodiscard]] std::uint64_t race_count() const;

  /// Total events processed.
  [[nodiscard]] std::uint64_t events() const;

  /// Number of registered threads.
  [[nodiscard]] std::size_t threads() const;

  /// Current clock of a thread (teaching/diagnostic).
  [[nodiscard]] VectorClock clock_of(ThreadId t) const;

  /// Multi-line human-readable summary of all reports.
  [[nodiscard]] std::string summary() const;

 private:
  struct ThreadState {
    VectorClock vc;
    std::vector<std::string> held;  // lock names, acquisition order
  };

  /// Shadow state of one traced variable (FastTrack's read/write
  /// metadata, with full access sites kept for reporting).
  struct VarState {
    bool has_write = false;
    Epoch write_epoch;            // last write as c@t
    AccessSite write_site;
    VectorClock write_vc;         // full clock of the last write (for reports)
    VectorClock read_vc;          // per-thread clock of the last read
    std::map<ThreadId, AccessSite> read_sites;  // last read per thread
  };

  ThreadState& state(ThreadId t);
  void check_and_record(ThreadId t, const std::string& var, AccessKind kind,
                        const std::string& where);
  void report(const std::string& var, const AccessSite& first, const AccessSite& second,
              const std::string& why);
  AccessSite make_site(ThreadId t, AccessKind kind, const std::string& where) const;

  mutable std::mutex mutex_;
  std::vector<ThreadState> threads_;
  std::map<std::string, VectorClock> locks_;
  std::map<std::string, VectorClock> channels_;
  std::map<std::string, VarState> vars_;
  std::vector<RaceReport> races_;
  std::map<std::string, std::uint64_t> reported_pairs_;  // "var|tmin|tmax" -> count
  std::uint64_t race_count_ = 0;
  std::uint64_t events_ = 0;
};

}  // namespace cs31::race
