// Happens-before data-race detection: the event interface and the
// FastTrack-compressed detector.
//
// `EventSink` is the contract every detector implementation honours:
// the instrumentation layer (shadow.hpp), the replay engine
// (replay.hpp), and the fuzz-trace runner (trace_gen.hpp) all speak it,
// so the same event stream can be fed to any implementation — which is
// exactly what the differential harness in tests/race_diff_test.cpp
// does with `Detector` (this file) and `ReferenceDetector`
// (reference.hpp, PR 1's full-vector-clock algorithm, kept as the
// executable specification).
//
// `Detector` is the production implementation, rebuilt around
// FastTrack's observation (Flanagan & Freund, PLDI 2009) that almost
// all accesses are totally ordered, so O(1) shadow state per variable
// almost always suffices:
//   - every variable, lock, channel, and site label is interned to a
//     dense uint32 id; the hot path never hashes or compares strings,
//     and names are resolved back only when a report is materialized;
//   - the last write is a single epoch (c@t) — unchanged from PR 1;
//   - the read state is a single epoch while one thread is reading; it
//     inflates to a read-shared vector clock (plus per-reader sites)
//     when a second thread reads without an intervening write, and
//     deflates back to epoch-nothing on every write.
// One deliberate deviation from the paper: FastTrack's READ EXCLUSIVE
// rule overwrites the read epoch when the new read is *ordered after*
// the old one, even across threads, which forgets the older reader and
// can drop one of two racing (reader, writer) pairs from the reports.
// We inflate on any second reading thread instead — the compressed
// state stays exactly isomorphic to the reference detector's read map
// (singleton map <=> epoch), so the differential harness can demand
// bit-identical reports, not just "a race was found on the same
// variable". Repeated reads by one thread — the actual hot case — are
// still a single epoch overwrite.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "race/interner.hpp"
#include "race/vector_clock.hpp"

namespace cs31::race {

enum class AccessKind { Read, Write };

[[nodiscard]] std::string to_string(AccessKind kind);

/// One side of a race: which thread touched the variable, how, where in
/// the program (a caller-supplied label), and under which locks.
struct AccessSite {
  ThreadId thread = 0;
  AccessKind kind = AccessKind::Read;
  std::string where;                    ///< source label, e.g. "counter += 1"
  std::uint64_t event = 0;              ///< detector-global event number
  std::vector<std::string> locks_held;  ///< names of locks held at the access

  [[nodiscard]] std::string to_string() const;
};

/// A detected data race: two concurrent conflicting accesses to one
/// variable. `first` is the older access (already recorded in the
/// shadow state), `second` the access that completed the race.
struct RaceReport {
  std::string variable;
  AccessSite first;
  AccessSite second;
  std::string explanation;  ///< human-readable why (no HB edge, disjoint locksets)

  [[nodiscard]] std::string to_string() const;
};

/// Dedup key of a race: the variable plus the unordered pair of
/// (thread, site-label) endpoints. Every detector implementation — and
/// the cross-schedule aggregation in replay.cpp — keys reports the same
/// way, so "one report per (variable, site pair) per run" holds
/// everywhere and the differential harness can compare report sets.
[[nodiscard]] std::string race_pair_key(const std::string& variable, const AccessSite& a,
                                        const AccessSite& b);

/// The shared "why" text: names the missing happens-before edge and the
/// lockset view of both sides (disjoint locksets for a true race).
[[nodiscard]] std::string explain_race(const AccessSite& first, const AccessSite& second,
                                       const std::string& why);

/// The one summary format every verdict path prints (Detector::summary
/// and trace::AnalysisPipeline::summary both call it), so a sharded
/// analysis can be compared byte-for-byte against the inline one.
[[nodiscard]] std::string summarize_races(const std::vector<RaceReport>& races,
                                          std::uint64_t race_count, std::uint64_t events,
                                          std::size_t threads);

/// Deterministic merge of per-shard report lists into the order the
/// inline detector would have produced. Because a report is keyed by
/// the *second* access — the one that completed the race — and every
/// detector stamps that access with its detector-global event number
/// (which a sharded run overrides to the router's global numbering via
/// set_event_clock), a stable sort on `second.event` reconstructs
/// detection order exactly: two reports never share a stamp unless they
/// fired on the same event, i.e. in the same shard, where input order
/// already matches. Re-applies the race_pair_key dedup across shards as
/// a safety net for caller-assembled lists (disjoint variable shards
/// never need it).
[[nodiscard]] std::vector<RaceReport> merge_shard_reports(
    std::vector<std::vector<RaceReport>> shards);

/// The event interface every race-detector implementation honours. An
/// implementation is an event sink: feed it fork/join/acquire/release/
/// read/write/barrier/channel events and ask for the verdict. All
/// implementations are thread-safe event sinks (events are internally
/// serialized), but `races()` returns a reference into the sink — read
/// it only once the instrumented threads are quiescent.
class EventSink {
 public:
  virtual ~EventSink() = default;

  /// Register a root thread with no happens-before predecessor.
  /// Thread 0 (the main thread) is pre-registered by the constructor.
  [[nodiscard]] virtual ThreadId register_thread() = 0;

  /// pthread_create: child starts having observed everything the parent
  /// has done so far (HB edge parent -> child). Returns the child id.
  [[nodiscard]] virtual ThreadId fork(ThreadId parent) = 0;

  /// pthread_join: parent observes everything the child did
  /// (HB edge child -> parent).
  virtual void join(ThreadId parent, ThreadId child) = 0;

  /// Mutex acquire: the locker observes the last critical section.
  virtual void acquire(ThreadId t, const std::string& lock) = 0;

  /// Mutex release: publish this thread's clock to the lock. Throws
  /// cs31::Error when the thread does not hold the lock.
  virtual void release(ThreadId t, const std::string& lock) = 0;

  /// A completed barrier cycle is a happens-before edge among ALL
  /// waiters: afterwards every waiter has observed every other waiter's
  /// pre-barrier work. Throws cs31::Error on an empty waiter set.
  virtual void barrier(const std::vector<ThreadId>& waiters) = 0;

  /// Producer/consumer publication: send joins the sender's clock into
  /// the channel; recv joins the channel into the receiver.
  virtual void channel_send(ThreadId t, const std::string& channel) = 0;
  virtual void channel_recv(ThreadId t, const std::string& channel) = 0;

  /// A read/write of a traced variable. `where` labels the access site
  /// in reports.
  virtual void read(ThreadId t, const std::string& var, const std::string& where = "") = 0;
  virtual void write(ThreadId t, const std::string& var, const std::string& where = "") = 0;

  /// Races found so far, in detection order, deduplicated per
  /// (variable, site pair) — see race_pair_key. `race_count()` still
  /// counts every racy access.
  [[nodiscard]] virtual const std::vector<RaceReport>& races() const = 0;
  [[nodiscard]] virtual bool race_free() const = 0;
  [[nodiscard]] virtual std::uint64_t race_count() const = 0;

  /// Total events processed.
  [[nodiscard]] virtual std::uint64_t events() const = 0;

  /// Number of registered threads.
  [[nodiscard]] virtual std::size_t threads() const = 0;

  /// Approximate bytes of shadow state held right now (per-variable
  /// metadata, lock/channel clocks, thread clocks, name storage) — the
  /// number bench_race_overhead compares across implementations.
  [[nodiscard]] virtual std::size_t shadow_bytes() const = 0;

  /// Multi-line human-readable summary of all reports.
  [[nodiscard]] virtual std::string summary() const = 0;
};

/// The FastTrack-compressed detector (see the file comment for the
/// representation). Use the id-based fast path (`intern_*` once, then
/// the NameId overloads per access) from instrumentation that fires
/// many events per name; the string overloads intern on every call and
/// exist for casual use and for interface parity with the reference.
class Detector final : public EventSink {
 public:
  Detector();

  Detector(const Detector&) = delete;
  Detector& operator=(const Detector&) = delete;

  // --- EventSink (string API) ---
  [[nodiscard]] ThreadId register_thread() override;
  [[nodiscard]] ThreadId fork(ThreadId parent) override;
  void join(ThreadId parent, ThreadId child) override;
  void acquire(ThreadId t, const std::string& lock) override;
  void release(ThreadId t, const std::string& lock) override;
  void barrier(const std::vector<ThreadId>& waiters) override;
  void channel_send(ThreadId t, const std::string& channel) override;
  void channel_recv(ThreadId t, const std::string& channel) override;
  void read(ThreadId t, const std::string& var, const std::string& where = "") override;
  void write(ThreadId t, const std::string& var, const std::string& where = "") override;

  [[nodiscard]] const std::vector<RaceReport>& races() const override;
  [[nodiscard]] bool race_free() const override;
  [[nodiscard]] std::uint64_t race_count() const override;
  [[nodiscard]] std::uint64_t events() const override;
  [[nodiscard]] std::size_t threads() const override;
  [[nodiscard]] std::size_t shadow_bytes() const override;
  [[nodiscard]] std::string summary() const override;

  // --- id fast path ---
  // Intern once (any thread; takes the detector lock), then fire events
  // by id: no hashing, no string building, no allocation per access.
  [[nodiscard]] NameId intern_var(std::string_view name);
  [[nodiscard]] NameId intern_lock(std::string_view name);
  [[nodiscard]] NameId intern_channel(std::string_view name);
  [[nodiscard]] NameId intern_site(std::string_view label);

  void read(ThreadId t, NameId var, NameId site);
  void write(ThreadId t, NameId var, NameId site);
  void acquire(ThreadId t, NameId lock);
  void release(ThreadId t, NameId lock);
  void channel_send(ThreadId t, NameId channel);
  void channel_recv(ThreadId t, NameId channel);

  /// Current clock of a thread (teaching/diagnostic).
  [[nodiscard]] VectorClock clock_of(ThreadId t) const;

  /// Pin the event clock so the *next* event is numbered `seen + 1`.
  /// A sharded analysis (trace::AnalysisPipeline) calls this before
  /// every event with the router's global event index: each shard sees
  /// only a slice of the stream, but its AccessSite.event values — and
  /// therefore its reports — come out identical to an inline detector
  /// that saw everything.
  void set_event_clock(std::uint64_t seen);

 private:
  /// Compact access site: everything AccessSite carries, as ids. Only
  /// materialized into an AccessSite (strings) when a race is reported.
  /// The lockset is null in the common lock-free case (no allocation,
  /// 16 bytes inline) and shared on copy otherwise — two sites of one
  /// critical section share one lockset block.
  struct CompactSite {
    ThreadId thread = 0;
    AccessKind kind = AccessKind::Read;
    NameId where = 0;
    std::uint64_t event = 0;
    std::shared_ptr<const std::vector<NameId>> locks;  ///< null when none held
  };

  /// Inflated read state: per-thread read clocks plus the matching
  /// sites, kept sorted by thread id (reports iterate in tid order,
  /// matching the reference detector's std::map walk).
  struct ReadShared {
    VectorClock vc;
    std::vector<std::pair<ThreadId, CompactSite>> sites;
  };

  /// Shadow state of one traced variable. Exactly one of these holds
  /// per variable:
  ///   read_epoch.clock == 0, !shared  -> no reads since the last write
  ///   read_epoch.clock != 0, !shared  -> one reading thread (epoch)
  ///   shared != nullptr               -> read-shared (inflated)
  struct VarState {
    Epoch write_epoch;  ///< last write as c@t; clock 0 = never written
    Epoch read_epoch;   ///< exclusive read as c@t; clock 0 = none
    CompactSite write_site;
    CompactSite read_site;
    std::unique_ptr<ReadShared> shared;
  };

  struct ThreadState {
    VectorClock vc;
    std::vector<NameId> held;  ///< lock ids, acquisition order
  };

  ThreadState& state(ThreadId t);
  void check_lock_id(NameId lock_id) const;
  void check_channel_id(NameId channel_id) const;
  void check_and_record(ThreadId t, NameId var, AccessKind kind, NameId site_label);
  void report(NameId var, const CompactSite& first, const CompactSite& second,
              const char* why);
  [[nodiscard]] CompactSite make_site(ThreadId t, AccessKind kind, NameId where) const;
  [[nodiscard]] AccessSite materialize(const CompactSite& site) const;

  mutable std::mutex mutex_;
  std::vector<ThreadState> threads_;
  std::vector<VectorClock> locks_;     // by lock id
  std::vector<VectorClock> channels_;  // by channel id
  std::vector<VarState> vars_;         // by variable id
  Interner var_names_;
  Interner lock_names_;
  Interner channel_names_;
  Interner site_names_;
  std::vector<RaceReport> races_;
  std::set<std::string> reported_;  // race_pair_key dedup
  std::uint64_t race_count_ = 0;
  std::uint64_t events_ = 0;
};

}  // namespace cs31::race
