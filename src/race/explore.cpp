#include "race/explore.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <thread>
#include <utility>

#include "common/bounded_queue.hpp"
#include "common/error.hpp"
#include "os/interleave.hpp"

namespace cs31::race {
namespace {

// ---------------------------------------------------------------------
// Parsed op model. Mirrors replay.cpp's grammar exactly; parsing happens
// once in the Explorer constructor so the walk and the dependence checks
// never touch strings, and malformed scripts fail before any thread is
// spawned.
// ---------------------------------------------------------------------

enum class Verb : std::uint8_t { Read, Write, Lock, Unlock, Send, Recv, Barrier };
enum class ObjKind : std::uint8_t { Var, Mutex, Channel, Barrier };

struct POp {
  Verb verb = Verb::Read;
  ObjKind okind = ObjKind::Var;
  std::uint32_t obj = 0;  ///< interned per ObjKind
  std::string text;       ///< the tagged op string fed to replay()
  std::string arg;        ///< operand name ("" for barrier) — deadlock reports
};

/// Two ops of different threads are dependent iff reordering them could
/// change the detector's verdict (see the soundness sketch in
/// DESIGN.md §11). Barrier arrivals are dependent with everything: the
/// completing arrival joins every waiter's clock, and which arrival
/// completes is schedule-dependent.
bool dependent(const POp& a, const POp& b) {
  if (a.verb == Verb::Barrier || b.verb == Verb::Barrier) return true;
  if (a.okind != b.okind || a.obj != b.obj) return false;
  if (a.okind == ObjKind::Var) {
    return a.verb == Verb::Write || b.verb == Verb::Write;  // read/read commutes
  }
  return true;  // mutex and channel ops on the same object
}

struct OpInterner {
  std::map<std::string, std::uint32_t> ids;
  std::uint32_t intern(const std::string& name) {
    const auto [it, inserted] = ids.emplace(name, static_cast<std::uint32_t>(ids.size()));
    (void)inserted;
    return it->second;
  }
};

/// Parse one tagged op ("t0 write balance"). Same checks as
/// replay.cpp's parse_op; interning per object kind on top.
POp parse_op(const std::string& text, OpInterner& vars, OpInterner& mutexes,
             OpInterner& channels) {
  std::istringstream in(text);
  std::string tag, verb, arg;
  in >> tag >> verb >> arg;
  require(tag.size() >= 2 && tag[0] == 't',
          "explore op '" + text + "' is missing its thread tag (t<k>)");
  require(!verb.empty(), "explore op '" + text + "' is missing a verb");
  POp op;
  op.text = text;
  if (verb == "read" || verb == "write") {
    require(!arg.empty(), "explore op '" + text + "' needs a variable");
    op.verb = verb == "read" ? Verb::Read : Verb::Write;
    op.okind = ObjKind::Var;
    op.obj = vars.intern(arg);
  } else if (verb == "lock" || verb == "unlock") {
    require(!arg.empty(), "explore op '" + text + "' needs a mutex");
    op.verb = verb == "lock" ? Verb::Lock : Verb::Unlock;
    op.okind = ObjKind::Mutex;
    op.obj = mutexes.intern(arg);
  } else if (verb == "send" || verb == "recv") {
    require(!arg.empty(), "explore op '" + text + "' needs a channel");
    op.verb = verb == "send" ? Verb::Send : Verb::Recv;
    op.okind = ObjKind::Channel;
    op.obj = channels.intern(arg);
  } else if (verb == "barrier") {
    op.verb = Verb::Barrier;
    op.okind = ObjKind::Barrier;
    op.obj = 0;
  } else {
    throw Error("explore op '" + text + "': unknown verb '" + verb + "'");
  }
  op.arg = std::move(arg);
  return op;
}

// ---------------------------------------------------------------------
// Work items between the sequential walk and the replay workers.
// ---------------------------------------------------------------------

struct ScheduleResult {
  std::vector<RaceReport> races;
  std::uint64_t events = 0;
};

struct Batch {
  std::uint64_t first_index = 0;
  std::vector<std::vector<std::string>> schedules;
};

struct BatchResult {
  std::uint64_t first_index = 0;
  std::vector<ScheduleResult> items;
};

// ---------------------------------------------------------------------
// The engine: one run() owns the walk, the worker pool, and the merge.
// ---------------------------------------------------------------------

class Engine {
 public:
  Engine(const std::vector<std::vector<POp>>& ops, const ExploreOptions& options,
         std::uint64_t total, bool total_saturated,
         std::set<std::uint32_t> independent_vars,
         std::set<std::uint32_t> independent_mutexes, std::size_t mutex_count,
         std::size_t channel_count)
      : ops_(ops),
        options_(options),
        independent_vars_(std::move(independent_vars)),
        independent_mutexes_(std::move(independent_mutexes)),
        threads_(ops.size()),
        work_(std::max<std::size_t>(1, options.queue_capacity)),
        // Sized to hold every result the settle window allows in flight
        // at once — counted in SCHEDULES, not batches, because the
        // settle loop can flush partial (down to single-schedule)
        // batches. A worker can therefore never block pushing a result
        // while the walk blocks pushing work, the one cycle that could
        // deadlock this topology.
        results_(options.settle_window + options.queue_capacity +
                 std::max<std::size_t>(1, options.workers) + 4) {
    result_.interleavings_total = total;
    result_.total_saturated = total_saturated;
    pos_.assign(threads_, 0);
    last_event_of_.assign(threads_, -1);
    mutex_holder_.assign(mutex_count, -1);
    channel_fill_.assign(channel_count, 0);
    arrivals_.assign(threads_, 0);
    total_ops_ = 0;
    for (const auto& script : ops_) total_ops_ += script.size();
    for (const RaceReport& hint : options_.hints) {
      add_hint(hint.first.where, hint.second.where);
    }
  }

  ExploreResult run() {
    const std::size_t worker_count = std::max<std::size_t>(1, options_.workers);
    std::vector<std::thread> pool;
    pool.reserve(worker_count);
    for (std::size_t w = 0; w < worker_count; ++w) {
      pool.emplace_back([this] { worker_main(); });
    }

    // Always close + join, even when the walk throws (a worker failure
    // closes the result queue, which surfaces in the walk's merge as an
    // Error) — a dangling std::thread would terminate the process.
    std::exception_ptr walk_error;
    try {
      explore(std::set<std::uint32_t>{});
      flush_batch();
    } catch (...) {
      walk_error = std::current_exception();
    }
    work_.close();
    for (auto& t : pool) t.join();
    {
      std::scoped_lock lock(error_mutex_);
      require(worker_error_.empty(), "explore worker failed: " + worker_error_);
    }
    if (walk_error) std::rethrow_exception(walk_error);
    // Everything is pushed; drain the tail strictly in emission order.
    while (merged_ < emitted_) merge_next();

    result_.schedules_replayed = emitted_;
    result_.complete = !truncated_;
    return std::move(result_);
  }

 private:
  // --- the DPOR walk (sequential, deterministic) ---

  struct Event {
    std::uint32_t tid = 0;
    const POp* op = nullptr;
    int prev_last = -1;               ///< last_event_of_[tid] before this event
    std::vector<std::uint32_t> clock; ///< trace happens-before clock
  };

  struct Frame {
    std::set<std::uint32_t> backtrack;
    std::set<std::uint32_t> sleep;
    std::set<std::uint32_t> explored;
    /// Threads enabled in this state — the DPOR race analysis falls
    /// back to "add everything enabled here" when the thread it wants
    /// to add was disabled (only possible under blocking semantics).
    std::set<std::uint32_t> enabled;
  };

  /// The dependence relation, minus caller-proven-independent variable
  /// pairs (options.independent_vars: thread-local or consistently
  /// locked). A pruned access mutates no blocking state and its pairs
  /// are never co-enabled under blocking, so dropping the edge keeps
  /// both the clock joins and the sleep sets sound.
  ///
  /// Pure-guard mutexes (options.independent_mutexes) drop their
  /// cross-thread lock/unlock edges too: their critical sections hold
  /// only accesses to variables the mutex consistently protects, so
  /// two such sections commute as atomic blocks — neither the detector
  /// verdict nor any reachable stuck state depends on which thread won
  /// the lock. The walk still models the mutex's enabledness (a waiter
  /// parks until the section ends); only the ORDER stops mattering.
  bool dep(const POp& a, const POp& b) const {
    if (a.okind == ObjKind::Var && b.okind == ObjKind::Var && a.obj == b.obj &&
        independent_vars_.count(a.obj) != 0) {
      return false;
    }
    if (a.okind == ObjKind::Mutex && b.okind == ObjKind::Mutex && a.obj == b.obj &&
        independent_mutexes_.count(a.obj) != 0) {
      return false;
    }
    return dependent(a, b);
  }

  /// Barrier cycles completed so far: the slowest participating
  /// (non-empty) thread's arrival count.
  std::size_t completed_cycles() const {
    std::size_t completed = ~std::size_t{0};
    bool any = false;
    for (std::size_t t = 0; t < threads_; ++t) {
      if (ops_[t].empty()) continue;
      completed = any ? std::min(completed, arrivals_[t]) : arrivals_[t];
      any = true;
    }
    return any ? completed : 0;
  }

  bool parked(std::uint32_t t) const { return arrivals_[t] > completed_cycles(); }

  bool enabled(std::uint32_t t) const {
    if (pos_[t] >= ops_[t].size()) return false;
    if (!options_.model_blocking) return true;
    if (parked(t)) return false;
    const POp& op = ops_[t][pos_[t]];
    if (op.verb == Verb::Lock) return mutex_holder_[op.obj] < 0;
    if (op.verb == Verb::Recv) return channel_fill_[op.obj] > 0;
    return true;
  }

  const POp& next_op(std::uint32_t t) const { return ops_[t][pos_[t]]; }

  /// Did executed event i happen-before (program order + dependence,
  /// transitively) some already-executed event of thread p?
  bool happens_before_thread(std::size_t i, std::uint32_t p) const {
    const int lp = last_event_of_[p];
    if (lp < 0) return false;
    const Event& ei = executed_[i];
    return executed_[static_cast<std::size_t>(lp)].clock[ei.tid] >= ei.clock[ei.tid];
  }

  void execute(std::uint32_t p) {
    Event ev;
    ev.tid = p;
    ev.op = &next_op(p);
    ev.prev_last = last_event_of_[p];
    if (ev.prev_last >= 0) {
      ev.clock = executed_[static_cast<std::size_t>(ev.prev_last)].clock;
    } else {
      ev.clock.assign(threads_, 0);
    }
    for (const Event& prior : executed_) {
      if (prior.tid == p || !dep(*prior.op, *ev.op)) continue;
      for (std::size_t k = 0; k < threads_; ++k) {
        ev.clock[k] = std::max(ev.clock[k], prior.clock[k]);
      }
    }
    ev.clock[p] += 1;
    last_event_of_[p] = static_cast<int>(executed_.size());
    if (options_.model_blocking) {
      const POp& op = *executed_.emplace_back(std::move(ev)).op;
      switch (op.verb) {
        case Verb::Lock: mutex_holder_[op.obj] = static_cast<int>(p); break;
        case Verb::Unlock: mutex_holder_[op.obj] = -1; break;
        case Verb::Send: ++channel_fill_[op.obj]; break;
        case Verb::Recv: --channel_fill_[op.obj]; break;
        case Verb::Barrier: ++arrivals_[p]; break;
        default: break;
      }
    } else {
      executed_.push_back(std::move(ev));
    }
    ++pos_[p];
  }

  void undo(std::uint32_t p) {
    --pos_[p];
    if (options_.model_blocking) {
      const POp& op = *executed_.back().op;
      switch (op.verb) {
        case Verb::Lock: mutex_holder_[op.obj] = -1; break;
        case Verb::Unlock: mutex_holder_[op.obj] = static_cast<int>(p); break;
        case Verb::Send: --channel_fill_[op.obj]; break;
        case Verb::Recv: ++channel_fill_[op.obj]; break;
        case Verb::Barrier: --arrivals_[p]; break;
        default: break;
      }
    }
    last_event_of_[p] = executed_.back().prev_last;
    executed_.pop_back();
  }

  /// Guidance score for choosing thread p next. 2: p's next op labels a
  /// hinted site pair whose partner is still pending elsewhere (this
  /// choice orders the pair right now); 1: a hinted op is pending later
  /// in p's script (run p toward it); 0: no hint says anything.
  int score(std::uint32_t p) const {
    if (hint_labels_.empty()) return 0;
    const POp& np = next_op(p);
    if (hint_labels_.count(np.text) != 0) {
      for (const auto& [a, b] : hint_pairs_) {
        const std::string* partner = nullptr;
        if (a == np.text) partner = &b;
        else if (b == np.text) partner = &a;
        if (partner != nullptr && label_pending(*partner, p)) return 2;
      }
      return 1;
    }
    for (std::size_t j = pos_[p] + 1; j < ops_[p].size(); ++j) {
      if (hint_labels_.count(ops_[p][j].text) != 0) return 1;
    }
    return 0;
  }

  /// Is an op labelled `label` still unexecuted in a thread other than
  /// `self`?
  bool label_pending(const std::string& label, std::uint32_t self) const {
    for (std::uint32_t q = 0; q < threads_; ++q) {
      if (q == self) continue;
      for (std::size_t j = pos_[q]; j < ops_[q].size(); ++j) {
        if (ops_[q][j].text == label) return true;
      }
    }
    return false;
  }

  /// Highest-score (then lowest-tid) member of `candidates`.
  std::uint32_t pick(const std::vector<std::uint32_t>& candidates) const {
    std::uint32_t best = candidates.front();
    int best_score = score(best);
    for (std::size_t i = 1; i < candidates.size(); ++i) {
      const int s = score(candidates[i]);
      if (s > best_score) {
        best = candidates[i];
        best_score = s;
      }
    }
    return best;
  }

  void explore(std::set<std::uint32_t> sleep) {
    if (stop_) return;
    ++result_.nodes_visited;
    const std::size_t depth = executed_.size();

    std::vector<std::uint32_t> en;
    for (std::uint32_t p = 0; p < threads_; ++p) {
      if (enabled(p)) en.push_back(p);
    }

    // Race analysis (Flanagan–Godefroid): for every thread p with a
    // pending op, find the most recent executed event that is dependent
    // with next(p) and not already ordered before p, and add p to the
    // backtrack set of the state that event executed from — or, when p
    // was disabled there (blocking mode), every thread that WAS enabled
    // (the conservative fallback; without blocking p is always enabled
    // at ancestors, so the fallback never fires).
    //
    // This must run BEFORE the stuck-leaf return below: a blocked
    // pending op (say a lock on a mutex the other thread won) is
    // exactly the reversal that reaches a DIFFERENT stuck state, and
    // skipping the analysis at stuck leaves loses those states. At a
    // complete leaf no thread has a pending op, so the loop is a no-op
    // there and the non-blocking walk is unchanged.
    for (std::uint32_t p = 0; p < threads_; ++p) {
      if (pos_[p] >= ops_[p].size()) continue;
      const POp& np = next_op(p);
      for (std::size_t i = depth; i-- > 0;) {
        const Event& ev = executed_[i];
        if (ev.tid == p || !dep(*ev.op, np)) continue;
        // An ordered dependent event is not a reversible race — keep
        // scanning for an earlier unordered one (the max of the
        // qualifying set, per the algorithm).
        if (happens_before_thread(i, p)) continue;
        if (frames_[i].enabled.count(p) != 0) {
          if (frames_[i].backtrack.insert(p).second) ++result_.backtrack_points;
        } else {
          for (const std::uint32_t q : frames_[i].enabled) {
            if (frames_[i].backtrack.insert(q).second) ++result_.backtrack_points;
          }
        }
        break;
      }
    }

    if (en.empty()) {
      // Complete schedule, or (blocking mode) a maximal stuck prefix:
      // someone still has ops but nobody can move. Both are emitted —
      // the prefix carries real race evidence too — and the stuck
      // state is recorded once per position vector.
      if (depth == total_ops_) {
        emit();
      } else {
        emit();
        if (!stop_) record_deadlock();
      }
      return;
    }

    frames_.emplace_back();
    frames_.back().sleep = std::move(sleep);
    frames_.back().enabled.insert(en.begin(), en.end());

    // Seed: the best-priority enabled thread not slept here. All
    // enabled threads asleep = this whole subtree re-derives schedules
    // a sibling already covers — prune.
    {
      std::vector<std::uint32_t> awake;
      for (const std::uint32_t p : en) {
        if (frames_[depth].sleep.count(p) == 0) awake.push_back(p);
      }
      if (awake.empty()) {
        ++result_.sleep_pruned;
        frames_.pop_back();
        return;
      }
      frames_[depth].backtrack.insert(pick(awake));
    }

    while (!stop_) {
      // Re-read every iteration: descendants add backtrack points here.
      std::vector<std::uint32_t> todo;
      for (const std::uint32_t p : frames_[depth].backtrack) {
        if (frames_[depth].sleep.count(p) == 0 && frames_[depth].explored.count(p) == 0) {
          todo.push_back(p);
        }
      }
      if (todo.empty()) break;
      const std::uint32_t p = pick(todo);
      const POp& op = next_op(p);

      std::set<std::uint32_t> child_sleep;
      for (const std::uint32_t q : frames_[depth].sleep) {
        if (!dep(next_op(q), op)) child_sleep.insert(q);
      }

      execute(p);
      explore(std::move(child_sleep));
      undo(p);

      frames_[depth].explored.insert(p);
      frames_[depth].sleep.insert(p);
    }
    frames_.pop_back();
  }

  // --- emission, batching, and the deterministic merge ---

  /// Record the current (maximal, stuck) state once per position
  /// vector. Runs in the sequential walk, so discovery order — and the
  /// whole deadlock list — is worker-count independent.
  void record_deadlock() {
    ++result_.deadlocked_schedules;
    std::string key;
    for (const std::size_t p : pos_) {
      key += std::to_string(p);
      key += ',';
    }
    if (!deadlock_seen_.insert(key).second) return;
    DeadlockState state;
    for (std::uint32_t t = 0; t < threads_; ++t) {
      if (pos_[t] >= ops_[t].size()) continue;
      if (parked(t)) {
        state.waiting.push_back(ops_[t][pos_[t] - 1].text);
        state.resources.push_back("barrier");
      } else {
        const POp& op = ops_[t][pos_[t]];
        state.waiting.push_back(op.text);
        state.resources.push_back((op.verb == Verb::Lock ? "mutex " : "channel ") +
                                  op.arg);
      }
    }
    state.witness.reserve(executed_.size());
    for (const Event& ev : executed_) state.witness.push_back(ev.op->text);
    result_.deadlocks.push_back(std::move(state));
  }

  void emit() {
    if (options_.max_schedules != 0 && emitted_ >= options_.max_schedules) {
      truncated_ = true;
      stop_ = true;
      return;
    }
    if (options_.max_events != 0 &&
        events_emitted_ + executed_.size() > options_.max_events) {
      truncated_ = true;
      stop_ = true;
      return;
    }

    // Determinism contract: before emitting schedule k, exactly the
    // results of schedules 0..k-window-1 are merged (never more, never
    // fewer), so the hint set steering every later decision is a pure
    // function of the emission order.
    while (emitted_ - merged_ > options_.settle_window) {
      // Flush the local buffer only when the next merge target sits in
      // it (everything older is already with the workers) — keeps
      // batches full-sized in the steady state.
      if (!batch_.schedules.empty() && merged_ >= batch_.first_index) flush_batch();
      merge_next();
    }

    std::vector<std::string> schedule;
    schedule.reserve(executed_.size());
    for (const Event& ev : executed_) schedule.push_back(ev.op->text);
    if (batch_.schedules.empty()) batch_.first_index = emitted_;
    batch_.schedules.push_back(std::move(schedule));
    ++emitted_;
    events_emitted_ += executed_.size();
    if (batch_.schedules.size() >= std::max<std::size_t>(1, options_.batch)) {
      flush_batch();
    }
  }

  void flush_batch() {
    if (batch_.schedules.empty()) return;
    work_.push(std::move(batch_));
    batch_ = Batch{};
  }

  /// Merge the next emission-ordered result, blocking on the workers if
  /// it has not arrived yet.
  void merge_next() {
    while (reorder_.count(merged_) == 0) {
      BatchResult r;
      const bool ok = results_.pop(r);
      require(ok, "explore: result stream closed before all schedules merged");
      for (std::size_t i = 0; i < r.items.size(); ++i) {
        reorder_.emplace(r.first_index + i, std::move(r.items[i]));
      }
      results_.done();
    }
    const auto it = reorder_.find(merged_);
    ScheduleResult res = std::move(it->second);
    reorder_.erase(it);

    result_.events_replayed += res.events;
    if (!res.races.empty()) {
      ++result_.racy_schedules;
      if (result_.first_race_at == ExploreResult::kNoRace) {
        result_.first_race_at = merged_;
      }
    }
    for (RaceReport& r : res.races) {
      if (seen_.insert(race_pair_key(r.variable, r.first, r.second)).second) {
        if (options_.reprioritize_on_discovery) add_hint(r.first.where, r.second.where);
        result_.races.push_back(std::move(r));
      }
    }
    ++merged_;
  }

  void add_hint(const std::string& a, const std::string& b) {
    if (a.empty() || b.empty()) return;
    hint_labels_.insert(a);
    hint_labels_.insert(b);
    hint_pairs_.emplace_back(a, b);
  }

  // --- the replay workers ---

  void worker_main() {
    Batch batch;
    while (work_.pop(batch)) {
      try {
        BatchResult out;
        out.first_index = batch.first_index;
        out.items.reserve(batch.schedules.size());
        for (const auto& schedule : batch.schedules) {
          ReplayResult rr =
              replay(schedule, ReplayOptions{options_.model_blocking});
          out.items.push_back({std::move(rr.races), rr.events});
        }
        results_.push(std::move(out));
        work_.done();
      } catch (const std::exception& e) {
        // Scripts are prevalidated, so this is a bug, not user error.
        // Record it, close the result stream so the walk's merge stops
        // waiting (its pop then fails a require), and bail.
        {
          std::scoped_lock lock(error_mutex_);
          if (worker_error_.empty()) worker_error_ = e.what();
        }
        results_.close();
        work_.done();
        return;
      }
    }
  }

  const std::vector<std::vector<POp>>& ops_;
  const ExploreOptions& options_;
  std::set<std::uint32_t> independent_vars_;     ///< pruned var ids (dep())
  std::set<std::uint32_t> independent_mutexes_;  ///< pure-guard mutex ids (dep())
  std::size_t threads_;
  std::size_t total_ops_ = 0;

  // Walk state.
  std::vector<std::size_t> pos_;
  std::vector<int> last_event_of_;
  std::vector<Event> executed_;
  std::vector<Frame> frames_;
  bool stop_ = false;
  bool truncated_ = false;

  // Blocking-semantics state (model_blocking only; kept in lockstep by
  // execute/undo).
  std::vector<int> mutex_holder_;           ///< holding thread, -1 = free
  std::vector<std::size_t> channel_fill_;   ///< pending sends per channel
  std::vector<std::size_t> arrivals_;       ///< barrier arrivals per thread
  std::set<std::string> deadlock_seen_;     ///< position-vector keys

  // Guidance state (mutated only at deterministic merge points).
  std::set<std::string> hint_labels_;
  std::vector<std::pair<std::string, std::string>> hint_pairs_;

  // Emission / merge state.
  std::uint64_t emitted_ = 0;
  std::uint64_t events_emitted_ = 0;
  std::uint64_t merged_ = 0;
  Batch batch_;
  std::map<std::uint64_t, ScheduleResult> reorder_;
  std::set<std::string> seen_;

  common::BoundedQueue<Batch> work_;
  common::BoundedQueue<BatchResult> results_;
  std::mutex error_mutex_;
  std::string worker_error_;

  ExploreResult result_;
};

}  // namespace

// ---------------------------------------------------------------------
// Explorer
// ---------------------------------------------------------------------

Explorer::Explorer(std::vector<std::vector<std::string>> scripts, ExploreOptions options)
    : scripts_(std::move(scripts)), options_(std::move(options)) {
  // Dependence pruning is only sound when critical sections actually
  // exclude each other — without blocking, the enumerator happily
  // interleaves two "consistently locked" accesses inside one critical
  // section and the detector (correctly) reports the race the pruned
  // walk would have skipped.
  require((options_.independent_vars.empty() && options_.independent_mutexes.empty()) ||
              options_.model_blocking,
          "explore: independent_vars/independent_mutexes require model_blocking "
          "(lockset-based independence is unsound without real mutual exclusion)");
  // Validate eagerly: parse every op and check per-thread lock
  // discipline (an unlock with no program-order lock would make the
  // detector throw mid-replay inside a worker).
  OpInterner vars, mutexes, channels;
  const auto tagged = tag_threads(scripts_);
  for (const auto& script : tagged) {
    std::multiset<std::uint32_t> held;
    for (const std::string& text : script) {
      const POp op = parse_op(text, vars, mutexes, channels);
      if (op.verb == Verb::Lock) held.insert(op.obj);
      if (op.verb == Verb::Unlock) {
        const auto it = held.find(op.obj);
        require(it != held.end(),
                "explore op '" + text + "' releases a mutex its thread never locked");
        held.erase(it);
      }
    }
  }
}

ExploreResult Explorer::run() {
  const auto tagged = tag_threads(scripts_);
  OpInterner vars, mutexes, channels;
  std::vector<std::vector<POp>> ops(tagged.size());
  for (std::size_t t = 0; t < tagged.size(); ++t) {
    ops[t].reserve(tagged[t].size());
    for (const std::string& text : tagged[t]) {
      ops[t].push_back(parse_op(text, vars, mutexes, channels));
    }
  }
  bool saturated = false;
  const std::uint64_t total = os::interleaving_count(tagged, saturated);
  std::set<std::uint32_t> independent;
  for (const std::string& name : options_.independent_vars) {
    const auto it = vars.ids.find(name);
    if (it != vars.ids.end()) independent.insert(it->second);
  }
  std::set<std::uint32_t> pure_guards;
  for (const std::string& name : options_.independent_mutexes) {
    const auto it = mutexes.ids.find(name);
    if (it != mutexes.ids.end()) pure_guards.insert(it->second);
  }
  Engine engine(ops, options_, total, saturated, std::move(independent),
                std::move(pure_guards), mutexes.ids.size(), channels.ids.size());
  return engine.run();
}

ExploreResult explore_races(const std::vector<std::vector<std::string>>& scripts,
                            ExploreOptions options) {
  return Explorer(scripts, std::move(options)).run();
}

std::string ExploreResult::summary() const {
  std::ostringstream out;
  out << "explored " << schedules_replayed << " of ";
  if (total_saturated) {
    out << ">1.8e19 (count saturated)";
  } else {
    out << interleavings_total;
  }
  out << " interleavings (" << (complete ? "complete" : "budget hit") << "): "
      << racy_schedules << " racy, " << races.size() << " distinct race(s), "
      << events_replayed << " events replayed";
  if (first_race_at != kNoRace) out << "; first race at schedule " << first_race_at;
  if (deadlocked_schedules > 0) {
    out << "; " << deadlocked_schedules << " schedule(s) deadlocked in "
        << deadlocks.size() << " distinct stuck state(s)";
  }
  return out.str();
}

// ---------------------------------------------------------------------
// Seeded script generator (splitmix64, the trace_gen pattern)
// ---------------------------------------------------------------------

namespace {

struct SplitMix64 {
  std::uint64_t state;
  std::uint64_t next() {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
  std::uint64_t below(std::uint64_t bound) { return bound == 0 ? 0 : next() % bound; }
};

}  // namespace

std::vector<std::vector<std::string>> generate_script(std::uint64_t seed,
                                                      ScriptGenConfig config) {
  SplitMix64 rng{seed * 0x9e3779b97f4a7c15ull + 0x2545f4914f6cdd1dull};
  std::vector<std::vector<std::string>> scripts(config.threads);
  for (std::size_t t = 0; t < config.threads; ++t) {
    std::vector<std::uint32_t> held;  // lock ids, acquisition order
    auto& script = scripts[t];

    // Lock-order-cycle shape: a thread-rotated two-lock nest, so any
    // two adjacent-rotation threads that both draw the shape acquire
    // the pair in conflicting orders (the ABBA deadlock).
    if (config.lock_cycles && config.locks >= 2 && rng.below(2) == 0) {
      const auto a = static_cast<std::uint32_t>(t % config.locks);
      const auto b = static_cast<std::uint32_t>((t + 1) % config.locks);
      script.push_back("lock m" + std::to_string(a));
      script.push_back("lock m" + std::to_string(b));
      held.push_back(a);
      held.push_back(b);
    }

    // Emit one shared access, wrapped in its variable's consistent
    // guard in lock-discipline mode (or bare when the guard is already
    // held — the access is still under it either way).
    const auto shared_access = [&](std::uint64_t v, std::string access) {
      if (config.lock_discipline && config.locks > 0) {
        const auto g = static_cast<std::uint32_t>(v % config.locks);
        if (std::find(held.begin(), held.end(), g) == held.end()) {
          script.push_back("lock m" + std::to_string(g));
          script.push_back(std::move(access));
          script.push_back("unlock m" + std::to_string(g));
          return;
        }
      }
      script.push_back(std::move(access));
    };

    while (script.size() < config.ops_per_thread) {
      switch (rng.below(8)) {
        case 0:
        case 1: {  // shared-variable access, the racy surface
          const std::uint64_t v = rng.below(config.shared_vars);
          const std::string var = "z" + std::to_string(v);
          shared_access(v, (rng.below(2) == 0 ? "read " : "write ") + var);
          break;
        }
        case 2: {  // private-variable access (independent with everything)
          if (config.private_vars == 0) break;
          const std::string var = "p" + std::to_string(t) + "_" +
                                  std::to_string(rng.below(config.private_vars));
          script.push_back((rng.below(2) == 0 ? "read " : "write ") + var);
          break;
        }
        case 3:
        case 4: {  // lock or unlock, respecting per-thread discipline
          if (config.locks == 0 || config.lock_discipline) break;
          if (!held.empty() && rng.below(2) == 0) {
            script.push_back("unlock m" + std::to_string(held.back()));
            held.pop_back();
          } else {
            const auto m = static_cast<std::uint32_t>(rng.below(config.locks));
            if (std::find(held.begin(), held.end(), m) != held.end()) break;
            script.push_back("lock m" + std::to_string(m));
            held.push_back(m);
          }
          break;
        }
        case 5:
        case 6: {  // channel send/recv
          if (config.channels == 0) break;
          const std::string ch = "q" + std::to_string(rng.below(config.channels));
          script.push_back((rng.below(2) == 0 ? "send " : "recv ") + ch);
          break;
        }
        default: {  // another shared access; keeps verdicts mixed
          const std::uint64_t v = rng.below(config.shared_vars);
          shared_access(v, "write z" + std::to_string(v));
          break;
        }
      }
    }
    // Channel-misuse shape: an extra recv with no matching send budget,
    // emitted while any nest is still held so recv-under-lock
    // communication deadlocks appear too.
    if (config.channel_misuse && config.channels > 0 && rng.below(2) == 0) {
      script.push_back("recv q" + std::to_string(rng.below(config.channels)));
    }
    while (!held.empty()) {  // balance: release everything still held
      script.push_back("unlock m" + std::to_string(held.back()));
      held.pop_back();
    }
    if (config.barriers) script.push_back("barrier");
  }
  return scripts;
}

}  // namespace cs31::race
