#include "race/interner.hpp"

#include "common/error.hpp"

namespace cs31::race {

NameId Interner::id(std::string_view name) {
  const auto it = ids_.find(name);
  if (it != ids_.end()) return it->second;
  const auto id = static_cast<NameId>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(std::string_view(names_.back()), id);
  return id;
}

const std::string& Interner::name(NameId id) const {
  require(id < names_.size(), "interner: unknown name id " + std::to_string(id));
  return names_[id];
}

std::size_t Interner::bytes() const {
  // Estimate: the stored string (once — the table keys are views into
  // it) plus a hash-table node (view + id + bucket overhead). Strings
  // over the SSO threshold also own a heap block of `capacity + 1`.
  std::size_t total = sizeof(*this);
  constexpr std::size_t kNodeOverhead = 32;  // next ptr + hash + alignment
  for (const std::string& s : names_) {
    const std::size_t heap = s.capacity() >= sizeof(std::string) ? s.capacity() + 1 : 0;
    total += sizeof(std::string) + heap;
    total += kNodeOverhead + sizeof(std::string_view) + sizeof(NameId);
  }
  total += ids_.bucket_count() * sizeof(void*);
  return total;
}

}  // namespace cs31::race
