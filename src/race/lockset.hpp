// Eraser-style lockset race detection (Savage et al., SOSP 1997) as a
// second EventSink implementation: instead of tracking happens-before
// order, it checks the *locking discipline* — every shared variable
// must be consistently protected by at least one common lock.
//
// Per variable the detector keeps a state machine
//   Virgin -> Exclusive(first thread) -> Shared (second thread reads)
//                                     -> Shared-Modified (second thread
//                                        writes, or a write in Shared)
// and, once out of Exclusive, a candidate lockset C(v) — initialized to
// the locks held at the first shared access and intersected with the
// locks held at every later one. An empty C(v) in Shared-Modified is
// reported as a race.
//
// The point of having both detectors on one TraceContext is the
// *disagreement*: lockset ignores fork/join/barrier/channel ordering
// entirely, so it flags barrier-synchronized code (the Life grid) that
// happens-before proves race-free — the classic Eraser false positive —
// while catching inconsistent locking on every schedule, including ones
// where HB got lucky. examples/race_detective.cpp walks the contrast.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "race/detector.hpp"
#include "race/interner.hpp"

namespace cs31::race {

class LocksetDetector final : public EventSink {
 public:
  LocksetDetector();

  LocksetDetector(const LocksetDetector&) = delete;
  LocksetDetector& operator=(const LocksetDetector&) = delete;

  // --- EventSink ---
  [[nodiscard]] ThreadId register_thread() override;
  /// fork/join/barrier/channel carry no lockset information — that
  /// blindness is the algorithm, not an omission. They only maintain
  /// thread ids and the event count.
  [[nodiscard]] ThreadId fork(ThreadId parent) override;
  void join(ThreadId parent, ThreadId child) override;
  void acquire(ThreadId t, const std::string& lock) override;
  void release(ThreadId t, const std::string& lock) override;
  void barrier(const std::vector<ThreadId>& waiters) override;
  void channel_send(ThreadId t, const std::string& channel) override;
  void channel_recv(ThreadId t, const std::string& channel) override;
  void read(ThreadId t, const std::string& var, const std::string& where = "") override;
  void write(ThreadId t, const std::string& var, const std::string& where = "") override;

  [[nodiscard]] const std::vector<RaceReport>& races() const override;
  [[nodiscard]] bool race_free() const override;
  [[nodiscard]] std::uint64_t race_count() const override;
  [[nodiscard]] std::uint64_t events() const override;
  [[nodiscard]] std::size_t threads() const override;
  [[nodiscard]] std::size_t shadow_bytes() const override;
  [[nodiscard]] std::string summary() const override;

  /// The candidate lockset of `var` right now (lock names, sorted).
  /// Empty result + `lockset_defined(var)` distinguishes "refined to
  /// empty" from "still Exclusive/Virgin".
  [[nodiscard]] std::vector<std::string> candidate_lockset(const std::string& var) const;
  [[nodiscard]] bool lockset_defined(const std::string& var) const;

 private:
  enum class State : std::uint8_t { Virgin, Exclusive, Shared, SharedModified };

  /// One recorded access, for the two endpoints of a report.
  struct Access {
    bool valid = false;
    ThreadId thread = 0;
    AccessKind kind = AccessKind::Read;
    NameId where = 0;
    std::uint64_t event = 0;
    std::vector<NameId> locks;  ///< held at the access, acquisition order
  };

  struct VarState {
    State state = State::Virgin;
    ThreadId owner = 0;            ///< the Exclusive thread
    std::vector<NameId> lockset;   ///< candidate lockset, sorted; defined
                                   ///< once state > Exclusive
    Access last;                   ///< most recent access
    Access last_other;             ///< most recent access by a thread != last.thread
  };

  void on_access(ThreadId t, const std::string& var, AccessKind kind,
                 const std::string& where);
  void check_thread(ThreadId t) const;
  [[nodiscard]] Access make_access(ThreadId t, AccessKind kind, NameId where);
  [[nodiscard]] AccessSite materialize(const Access& access) const;
  void report(NameId var, const Access& first, const Access& second);

  mutable std::mutex mutex_;
  std::vector<std::vector<NameId>> held_;  // by thread id, acquisition order
  std::vector<VarState> vars_;             // by variable id
  Interner var_names_;
  Interner lock_names_;
  Interner site_names_;
  std::vector<RaceReport> races_;
  std::set<std::string> reported_;  // race_pair_key dedup
  std::uint64_t race_count_ = 0;
  std::uint64_t events_ = 0;
};

}  // namespace cs31::race
