// Vector clocks — the logical-time backbone of happens-before data-race
// detection (FastTrack-style, after Flanagan & Freund). A vector clock
// maps each thread to the number of "epochs" of that thread's execution
// it has observed; event A happens-before event B exactly when A's clock
// is pointwise <= B's. The detector (detector.hpp) keeps one clock per
// thread, per lock, and per channel, and a compact read/write summary
// per traced variable.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace cs31::race {

/// Small dense thread id assigned by the detector (0, 1, 2, ...).
using ThreadId = std::uint32_t;

/// A thread's logical clock value (starts at 1 so epochs are nonzero).
using Clock = std::uint32_t;

/// One component of a vector clock: "clock c of thread t" — FastTrack's
/// c@t. A variable's last write is summarized by a single epoch, and
/// (since PR 2) so is its read state while only one thread is reading.
/// `clock == 0` doubles as "no such access yet": real thread clocks
/// start at 1, so a zero clock can never name a real access.
struct Epoch {
  ThreadId tid = 0;
  Clock clock = 0;

  /// Does this epoch name a real access (clock >= 1)?
  [[nodiscard]] bool valid() const { return clock != 0; }

  friend bool operator==(const Epoch&, const Epoch&) = default;
};

/// Render as FastTrack's "c@t" notation.
[[nodiscard]] std::string to_string(Epoch e);

/// Growable vector clock. Components default to 0 ("nothing of that
/// thread observed yet"), so clocks over different thread counts
/// compare naturally.
class VectorClock {
 public:
  VectorClock() = default;

  /// Clock component for thread `t` (0 when never set).
  [[nodiscard]] Clock get(ThreadId t) const;

  /// Set thread `t`'s component.
  void set(ThreadId t, Clock c);

  /// Increment thread `t`'s component (advance its epoch).
  void tick(ThreadId t);

  /// Pointwise maximum: observe everything `other` has observed.
  void join(const VectorClock& other);

  /// True when every component of *this is <= the matching component of
  /// `other` — i.e. the event stamped *this happens-before (or equals)
  /// the event stamped `other`.
  [[nodiscard]] bool leq(const VectorClock& other) const;

  /// Has this clock observed epoch `e` (component for e.tid >= e.clock)?
  /// The FastTrack write-check: an access is ordered after a write iff
  /// the accessor's clock contains the write's epoch.
  [[nodiscard]] bool contains(Epoch e) const { return get(e.tid) >= e.clock; }

  /// Number of components stored (threads ever touched).
  [[nodiscard]] std::size_t size() const { return clocks_.size(); }

  /// Render as "<c0, c1, ...>" for reports and teaching output.
  [[nodiscard]] std::string to_string() const;

  /// Pointwise equality with implicit trailing zeros: <1, 0> and <1>
  /// are the same logical time. (A defaulted vector compare would call
  /// them different and make happens_before non-strict — caught by the
  /// VectorClockProperty tests.)
  friend bool operator==(const VectorClock& a, const VectorClock& b) {
    return a.leq(b) && b.leq(a);
  }

 private:
  std::vector<Clock> clocks_;
};

/// The epoch viewed as a full vector clock with one nonzero component.
/// `vc.contains(e)` is exactly `to_clock(e).leq(vc)` — the algebra the
/// property tests pin down, and the reason an epoch comparison can
/// stand in for a full-clock comparison in the detector's hot path.
[[nodiscard]] VectorClock to_clock(Epoch e);

/// Strict happens-before between two events' clocks: a <= b pointwise
/// and a != b. Concurrency (the race condition) is !hb(a,b) && !hb(b,a).
[[nodiscard]] bool happens_before(const VectorClock& a, const VectorClock& b);

/// Neither a happens-before b nor b happens-before a.
[[nodiscard]] bool concurrent(const VectorClock& a, const VectorClock& b);

}  // namespace cs31::race
