#include "race/reference.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"

namespace cs31::race {

ReferenceDetector::ReferenceDetector() {
  // Thread 0 is the main/root thread.
  ThreadState main;
  main.vc.set(0, 1);
  threads_.push_back(std::move(main));
}

ThreadId ReferenceDetector::register_thread() {
  std::scoped_lock lock(mutex_);
  const auto tid = static_cast<ThreadId>(threads_.size());
  ThreadState ts;
  ts.vc.set(tid, 1);
  threads_.push_back(std::move(ts));
  return tid;
}

ThreadId ReferenceDetector::fork(ThreadId parent) {
  std::scoped_lock lock(mutex_);
  ++events_;
  ThreadState& p = state(parent);
  const auto child = static_cast<ThreadId>(threads_.size());
  ThreadState ts;
  ts.vc = p.vc;  // child observes everything the parent did before the fork
  ts.vc.set(child, 1);
  threads_.push_back(std::move(ts));
  threads_[parent].vc.tick(parent);  // parent enters a new epoch
  return child;
}

void ReferenceDetector::join(ThreadId parent, ThreadId child) {
  std::scoped_lock lock(mutex_);
  ++events_;
  ThreadState& c = state(child);
  state(parent).vc.join(c.vc);  // parent observes the child's whole life
  c.vc.tick(child);
}

void ReferenceDetector::acquire(ThreadId t, const std::string& lock_name) {
  std::scoped_lock lock(mutex_);
  ++events_;
  ThreadState& ts = state(t);
  ts.vc.join(locks_[lock_name]);  // observe the previous critical section
  ts.held.push_back(lock_name);
}

void ReferenceDetector::release(ThreadId t, const std::string& lock_name) {
  std::scoped_lock lock(mutex_);
  ++events_;
  ThreadState& ts = state(t);
  const auto it = std::find(ts.held.rbegin(), ts.held.rend(), lock_name);
  require(it != ts.held.rend(), "release of lock '" + lock_name + "' not held by thread " +
                                    std::to_string(t));
  locks_[lock_name] = ts.vc;  // publish this critical section to the lock
  ts.vc.tick(t);
  ts.held.erase(std::next(it).base());
}

void ReferenceDetector::barrier(const std::vector<ThreadId>& waiters) {
  std::scoped_lock lock(mutex_);
  require(!waiters.empty(), "barrier needs at least one waiter");
  ++events_;
  VectorClock all;
  for (const ThreadId w : waiters) all.join(state(w).vc);
  for (const ThreadId w : waiters) {
    ThreadState& ts = state(w);
    ts.vc = all;     // everyone observes everyone's pre-barrier work
    ts.vc.tick(w);   // and starts a fresh epoch on the far side
  }
}

void ReferenceDetector::channel_send(ThreadId t, const std::string& channel) {
  std::scoped_lock lock(mutex_);
  ++events_;
  ThreadState& ts = state(t);
  channels_[channel].join(ts.vc);
  ts.vc.tick(t);
}

void ReferenceDetector::channel_recv(ThreadId t, const std::string& channel) {
  std::scoped_lock lock(mutex_);
  ++events_;
  state(t).vc.join(channels_[channel]);
}

void ReferenceDetector::read(ThreadId t, const std::string& var, const std::string& where) {
  std::scoped_lock lock(mutex_);
  check_and_record(t, var, AccessKind::Read, where);
}

void ReferenceDetector::write(ThreadId t, const std::string& var, const std::string& where) {
  std::scoped_lock lock(mutex_);
  check_and_record(t, var, AccessKind::Write, where);
}

void ReferenceDetector::check_and_record(ThreadId t, const std::string& var, AccessKind kind,
                                         const std::string& where) {
  ++events_;
  ThreadState& ts = state(t);
  VarState& vs = vars_[var];
  const AccessSite site = make_site(t, kind, where);

  // Write-check (both kinds): is the last write ordered before us?
  if (vs.has_write && vs.write_epoch.tid != t && !ts.vc.contains(vs.write_epoch)) {
    report(var, vs.write_site, site,
           kind == AccessKind::Read ? "write-read conflict" : "write-write conflict");
  }

  if (kind == AccessKind::Read) {
    vs.read_vc.set(t, ts.vc.get(t));
    vs.read_sites[t] = site;
    return;
  }

  // Read-check (writes only): every read since the last write must be
  // ordered before this write.
  for (const auto& [reader, read_site] : vs.read_sites) {
    if (reader != t && vs.read_vc.get(reader) > ts.vc.get(reader)) {
      report(var, read_site, site, "read-write conflict");
    }
  }

  vs.has_write = true;
  vs.write_epoch = Epoch{t, ts.vc.get(t)};
  vs.write_site = site;
  vs.write_vc = ts.vc;
  vs.read_vc = VectorClock{};  // reads before an ordered write are subsumed
  vs.read_sites.clear();
}

AccessSite ReferenceDetector::make_site(ThreadId t, AccessKind kind,
                                        const std::string& where) const {
  AccessSite site;
  site.thread = t;
  site.kind = kind;
  site.where = where;
  site.event = events_;
  site.locks_held = threads_[t].held;
  return site;
}

void ReferenceDetector::report(const std::string& var, const AccessSite& first,
                               const AccessSite& second, const std::string& why) {
  ++race_count_;
  if (!reported_.insert(race_pair_key(var, first, second)).second) {
    return;  // one report per (variable, site pair)
  }
  RaceReport r;
  r.variable = var;
  r.first = first;
  r.second = second;
  r.explanation = explain_race(first, second, why);
  races_.push_back(std::move(r));
}

ReferenceDetector::ThreadState& ReferenceDetector::state(ThreadId t) {
  require(t < threads_.size(), "unknown thread id " + std::to_string(t));
  return threads_[t];
}

const std::vector<RaceReport>& ReferenceDetector::races() const { return races_; }

bool ReferenceDetector::race_free() const {
  std::scoped_lock lock(mutex_);
  return races_.empty();
}

std::uint64_t ReferenceDetector::race_count() const {
  std::scoped_lock lock(mutex_);
  return race_count_;
}

std::uint64_t ReferenceDetector::events() const {
  std::scoped_lock lock(mutex_);
  return events_;
}

std::size_t ReferenceDetector::threads() const {
  std::scoped_lock lock(mutex_);
  return threads_.size();
}

namespace {

constexpr std::size_t kMapNodeOverhead = 48;  // rb-tree node: parent/left/right + color

std::size_t clock_bytes(const VectorClock& vc) {
  return sizeof(VectorClock) + vc.size() * sizeof(Clock);
}

std::size_t string_bytes(const std::string& s) {
  const std::size_t heap = s.capacity() >= sizeof(std::string) ? s.capacity() + 1 : 0;
  return sizeof(std::string) + heap;
}

std::size_t site_bytes(const AccessSite& s) {
  std::size_t total = sizeof(AccessSite) - sizeof(std::string) - sizeof(s.locks_held);
  total += string_bytes(s.where);
  total += sizeof(s.locks_held);
  for (const std::string& l : s.locks_held) total += string_bytes(l);
  return total;
}

}  // namespace

std::size_t ReferenceDetector::shadow_bytes() const {
  std::scoped_lock lock(mutex_);
  std::size_t total = 0;
  for (const ThreadState& ts : threads_) {
    total += clock_bytes(ts.vc) + sizeof(ts.held);
    for (const std::string& l : ts.held) total += string_bytes(l);
  }
  for (const auto& [name, vc] : locks_) {
    total += kMapNodeOverhead + string_bytes(name) + clock_bytes(vc);
  }
  for (const auto& [name, vc] : channels_) {
    total += kMapNodeOverhead + string_bytes(name) + clock_bytes(vc);
  }
  for (const auto& [name, vs] : vars_) {
    total += kMapNodeOverhead + string_bytes(name);
    total += sizeof(bool) + sizeof(Epoch);
    total += site_bytes(vs.write_site);
    total += clock_bytes(vs.write_vc) + clock_bytes(vs.read_vc);
    for (const auto& [tid, site] : vs.read_sites) {
      total += kMapNodeOverhead + sizeof(tid) + site_bytes(site);
    }
  }
  return total;
}

VectorClock ReferenceDetector::clock_of(ThreadId t) const {
  std::scoped_lock lock(mutex_);
  require(t < threads_.size(), "unknown thread id " + std::to_string(t));
  return threads_[t].vc;
}

std::string ReferenceDetector::summary() const {
  std::scoped_lock lock(mutex_);
  std::ostringstream out;
  if (races_.empty()) {
    out << "race-free: no data races over " << events_ << " events, "
        << threads_.size() << " threads";
    return out.str();
  }
  out << races_.size() << " distinct race(s), " << race_count_ << " racy access(es), over "
      << events_ << " events:\n";
  for (const RaceReport& r : races_) out << r.to_string() << '\n';
  return out.str();
}

}  // namespace cs31::race
