#include "race/replay.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "common/error.hpp"
#include "os/interleave.hpp"

namespace cs31::race {
namespace {

struct Op {
  std::string tag;   // "t0", "t1", ...
  std::string verb;  // read/write/lock/unlock/send/recv/barrier
  std::string arg;   // variable/lock/channel name (empty for barrier)
};

Op parse_op(const std::string& text) {
  std::istringstream in(text);
  Op op;
  in >> op.tag >> op.verb >> op.arg;
  require(op.tag.size() >= 2 && op.tag[0] == 't', "replay op '" + text +
                                                      "' is missing its thread tag (t<k>)");
  require(!op.verb.empty(), "replay op '" + text + "' is missing a verb");
  const bool needs_arg = op.verb != "barrier";
  require(!needs_arg || !op.arg.empty(),
          "replay op '" + text + "' needs an operand (variable/lock/channel)");
  return op;
}

}  // namespace

std::vector<std::vector<std::string>> tag_threads(
    const std::vector<std::vector<std::string>>& scripts) {
  std::vector<std::vector<std::string>> tagged;
  tagged.reserve(scripts.size());
  for (std::size_t k = 0; k < scripts.size(); ++k) {
    std::string prefix = "t";
    prefix += std::to_string(k);
    prefix += ' ';
    std::vector<std::string> ops;
    ops.reserve(scripts[k].size());
    for (const std::string& op : scripts[k]) {
      ops.push_back(prefix + op);
    }
    tagged.push_back(std::move(ops));
  }
  return tagged;
}

ReplayResult replay(const std::vector<std::string>& interleaving, ReplayOptions options) {
  Detector detector;
  return replay(interleaving, detector, options);
}

ReplayResult replay(const std::vector<std::string>& interleaving, EventSink& sink,
                    ReplayOptions options) {
  // Pre-scan for the set of threads so a barrier knows its waiter count.
  std::set<std::string> tags;
  for (const std::string& text : interleaving) tags.insert(parse_op(text).tag);

  std::map<std::string, ThreadId> tids;
  // Replay threads are concurrent roots: register in tag order for
  // stable ids (the first tag reuses the sink's pre-registered thread 0).
  bool first = true;
  for (const std::string& tag : tags) {
    tids[tag] = first ? 0 : sink.register_thread();
    first = false;
  }

  // Blocking bookkeeping (model_blocking only): who holds each mutex,
  // how many sends each channel has pending. A thread in `at_barrier`
  // is parked until the cycle completes — under blocking, any op it
  // tries to run before that makes the schedule infeasible.
  std::map<std::string, ThreadId> holder;
  std::map<std::string, std::size_t> filled;

  ReplayResult result;
  result.schedule = interleaving;

  std::set<ThreadId> at_barrier;
  for (const std::string& text : interleaving) {
    const Op op = parse_op(text);
    const ThreadId t = tids.at(op.tag);
    if (options.model_blocking) {
      bool blocked = at_barrier.count(t) != 0;
      if (!blocked && op.verb == "lock") blocked = holder.count(op.arg) != 0;
      if (!blocked && op.verb == "recv") blocked = filled[op.arg] == 0;
      if (blocked) {
        result.feasible = false;
        break;
      }
    }
    if (op.verb == "read") {
      sink.read(t, op.arg, text);
    } else if (op.verb == "write") {
      sink.write(t, op.arg, text);
    } else if (op.verb == "lock") {
      sink.acquire(t, op.arg);
      if (options.model_blocking) holder[op.arg] = t;
    } else if (op.verb == "unlock") {
      sink.release(t, op.arg);
      if (options.model_blocking) holder.erase(op.arg);
    } else if (op.verb == "send") {
      sink.channel_send(t, op.arg);
      if (options.model_blocking) ++filled[op.arg];
    } else if (op.verb == "recv") {
      sink.channel_recv(t, op.arg);
      if (options.model_blocking) --filled[op.arg];
    } else if (op.verb == "barrier") {
      at_barrier.insert(t);
      if (at_barrier.size() == tids.size()) {
        sink.barrier(std::vector<ThreadId>(at_barrier.begin(), at_barrier.end()));
        at_barrier.clear();
      }
    } else {
      throw Error("replay op '" + text + "': unknown verb '" + op.verb + "'");
    }
    ++result.executed;
  }

  result.races = sink.races();
  result.events = sink.events();
  return result;
}

std::vector<ReplayResult> replay_all_interleavings(
    const std::vector<std::vector<std::string>>& scripts, std::size_t limit) {
  // Stream schedules straight into the detector instead of
  // materializing the full os::all_interleavings set first — the only
  // retained state is the results the caller asked for. Thread tags
  // make every position-choice path a distinct schedule, so the path
  // count the enumerator caps equals the old distinct count.
  std::vector<ReplayResult> results;
  (void)os::for_each_interleaving(
      tag_threads(scripts), [&](const std::vector<std::string>& schedule) {
        require(results.size() < limit, "interleaving enumeration exceeds the limit");
        results.push_back(replay(schedule));
        return true;
      });
  // The materializing path returned schedules in sorted order; keep
  // that contract so summaries and first-racy-schedule demos are
  // byte-stable across the refactor.
  std::sort(results.begin(), results.end(),
            [](const ReplayResult& a, const ReplayResult& b) {
              return a.schedule < b.schedule;
            });
  return results;
}

ReplayStats summarize(const std::vector<ReplayResult>& results) {
  ReplayStats stats;
  stats.schedules = results.size();
  for (const ReplayResult& r : results) {
    if (!r.race_free()) ++stats.racy;
  }
  stats.distinct = distinct_races(results).size();
  return stats;
}

std::vector<RaceReport> distinct_races(const std::vector<ReplayResult>& results) {
  std::vector<RaceReport> out;
  std::set<std::string> seen;
  for (const ReplayResult& result : results) {
    for (const RaceReport& r : result.races) {
      if (seen.insert(race_pair_key(r.variable, r.first, r.second)).second) {
        out.push_back(r);
      }
    }
  }
  return out;
}

std::string DeadlockState::to_string() const {
  std::string out = "deadlock after " + std::to_string(witness.size()) + " step(s):";
  for (std::size_t i = 0; i < waiting.size(); ++i) {
    out += i == 0 ? " " : "; ";
    out += "'" + waiting[i] + "' waits on " + resources[i];
  }
  return out;
}

namespace {

/// Memoized DFS over position vectors (see find_deadlocks in the
/// header). State mutates in place with execute/undo; `visited` keys on
/// the position vector, which determines the rest of the state exactly
/// because scripts are straight-line.
struct DeadlockSearch {
  const std::vector<std::vector<Op>>& ops;
  std::size_t max_states;

  std::vector<std::size_t> pos;
  std::map<std::string, std::size_t> holder;  // mutex -> thread index
  std::map<std::string, std::size_t> filled;  // channel -> pending sends
  std::vector<std::size_t> arrivals;
  std::vector<std::string> trail;
  std::set<std::vector<std::size_t>> visited;
  DeadlockSearchResult out;

  DeadlockSearch(const std::vector<std::vector<Op>>& o, std::size_t m)
      : ops(o), max_states(m), pos(o.size(), 0), arrivals(o.size(), 0) {}

  /// Cycles completed so far: the slowest participating thread's
  /// arrival count. Threads with empty scripts never arrive and never
  /// count (they are not in the schedule's waiter set).
  [[nodiscard]] std::size_t completed_cycles() const {
    std::size_t completed = ~std::size_t{0};
    bool any = false;
    for (std::size_t t = 0; t < ops.size(); ++t) {
      if (ops[t].empty()) continue;
      completed = any ? std::min(completed, arrivals[t]) : arrivals[t];
      any = true;
    }
    return any ? completed : 0;
  }

  [[nodiscard]] bool parked(std::size_t t) const {
    return arrivals[t] > completed_cycles();
  }

  [[nodiscard]] bool enabled(std::size_t t) const {
    if (pos[t] >= ops[t].size() || parked(t)) return false;
    const Op& op = ops[t][pos[t]];
    if (op.verb == "lock") return holder.count(op.arg) == 0;
    if (op.verb == "recv") {
      const auto it = filled.find(op.arg);
      return it != filled.end() && it->second > 0;
    }
    return true;
  }

  void execute(std::size_t t) {
    const Op& op = ops[t][pos[t]];
    if (op.verb == "lock") {
      holder[op.arg] = t;
    } else if (op.verb == "unlock") {
      holder.erase(op.arg);
    } else if (op.verb == "send") {
      ++filled[op.arg];
    } else if (op.verb == "recv") {
      --filled[op.arg];
    } else if (op.verb == "barrier") {
      ++arrivals[t];
    }
    trail.push_back(op.tag + ' ' + op.verb + (op.arg.empty() ? "" : ' ' + op.arg));
    ++pos[t];
  }

  void undo(std::size_t t) {
    --pos[t];
    trail.pop_back();
    const Op& op = ops[t][pos[t]];
    if (op.verb == "lock") {
      holder.erase(op.arg);
    } else if (op.verb == "unlock") {
      holder[op.arg] = t;
    } else if (op.verb == "send") {
      --filled[op.arg];
    } else if (op.verb == "recv") {
      ++filled[op.arg];
    } else if (op.verb == "barrier") {
      --arrivals[t];
    }
  }

  void record_deadlock() {
    DeadlockState state;
    for (std::size_t t = 0; t < ops.size(); ++t) {
      if (pos[t] >= ops[t].size()) continue;
      if (parked(t)) {
        state.waiting.push_back(ops[t][pos[t] - 1].tag + " barrier");
        state.resources.push_back("barrier");
      } else {
        const Op& op = ops[t][pos[t]];
        state.waiting.push_back(op.tag + ' ' + op.verb + ' ' + op.arg);
        state.resources.push_back((op.verb == "lock" ? "mutex " : "channel ") + op.arg);
      }
    }
    state.witness = trail;
    out.deadlocks.push_back(std::move(state));
  }

  void visit() {
    if (visited.count(pos) != 0) return;
    if (out.states_visited >= max_states) {
      out.complete = false;
      return;
    }
    visited.insert(pos);
    ++out.states_visited;

    bool all_done = true;
    bool any_enabled = false;
    for (std::size_t t = 0; t < ops.size(); ++t) {
      if (pos[t] < ops[t].size()) all_done = false;
      if (enabled(t)) any_enabled = true;
    }
    if (!any_enabled) {
      if (!all_done) record_deadlock();
      return;
    }
    for (std::size_t t = 0; t < ops.size(); ++t) {
      if (!enabled(t)) continue;
      execute(t);
      visit();
      undo(t);
    }
  }
};

}  // namespace

DeadlockSearchResult find_deadlocks(const std::vector<std::vector<std::string>>& scripts,
                                    std::size_t max_states) {
  // Parse + validate up front, Explorer-style: malformed ops and
  // unlock-without-lock throw here, never mid-search.
  std::vector<std::vector<Op>> ops(scripts.size());
  for (std::size_t t = 0; t < scripts.size(); ++t) {
    std::multiset<std::string> held;
    const std::string tag = "t" + std::to_string(t);
    ops[t].reserve(scripts[t].size());
    for (const std::string& text : scripts[t]) {
      Op op = parse_op(tag + ' ' + text);
      const bool known = op.verb == "read" || op.verb == "write" || op.verb == "lock" ||
                         op.verb == "unlock" || op.verb == "send" || op.verb == "recv" ||
                         op.verb == "barrier";
      require(known, "deadlock search op '" + text + "': unknown verb '" + op.verb + "'");
      if (op.verb == "lock") held.insert(op.arg);
      if (op.verb == "unlock") {
        const auto it = held.find(op.arg);
        require(it != held.end(), "deadlock search: '" + tag + ' ' + text +
                                      "' releases a lock with no program-order acquire");
        held.erase(it);
      }
      ops[t].push_back(std::move(op));
    }
  }

  DeadlockSearch search(ops, max_states);
  search.visit();
  return std::move(search.out);
}

}  // namespace cs31::race
