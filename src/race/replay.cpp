#include "race/replay.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "common/error.hpp"
#include "os/interleave.hpp"

namespace cs31::race {
namespace {

struct Op {
  std::string tag;   // "t0", "t1", ...
  std::string verb;  // read/write/lock/unlock/send/recv/barrier
  std::string arg;   // variable/lock/channel name (empty for barrier)
};

Op parse_op(const std::string& text) {
  std::istringstream in(text);
  Op op;
  in >> op.tag >> op.verb >> op.arg;
  require(op.tag.size() >= 2 && op.tag[0] == 't', "replay op '" + text +
                                                      "' is missing its thread tag (t<k>)");
  require(!op.verb.empty(), "replay op '" + text + "' is missing a verb");
  const bool needs_arg = op.verb != "barrier";
  require(!needs_arg || !op.arg.empty(),
          "replay op '" + text + "' needs an operand (variable/lock/channel)");
  return op;
}

}  // namespace

std::vector<std::vector<std::string>> tag_threads(
    const std::vector<std::vector<std::string>>& scripts) {
  std::vector<std::vector<std::string>> tagged;
  tagged.reserve(scripts.size());
  for (std::size_t k = 0; k < scripts.size(); ++k) {
    std::string prefix = "t";
    prefix += std::to_string(k);
    prefix += ' ';
    std::vector<std::string> ops;
    ops.reserve(scripts[k].size());
    for (const std::string& op : scripts[k]) {
      ops.push_back(prefix + op);
    }
    tagged.push_back(std::move(ops));
  }
  return tagged;
}

ReplayResult replay(const std::vector<std::string>& interleaving) {
  Detector detector;
  return replay(interleaving, detector);
}

ReplayResult replay(const std::vector<std::string>& interleaving, EventSink& sink) {
  // Pre-scan for the set of threads so a barrier knows its waiter count.
  std::set<std::string> tags;
  for (const std::string& text : interleaving) tags.insert(parse_op(text).tag);

  std::map<std::string, ThreadId> tids;
  // Replay threads are concurrent roots: register in tag order for
  // stable ids (the first tag reuses the sink's pre-registered thread 0).
  bool first = true;
  for (const std::string& tag : tags) {
    tids[tag] = first ? 0 : sink.register_thread();
    first = false;
  }

  std::set<ThreadId> at_barrier;
  for (const std::string& text : interleaving) {
    const Op op = parse_op(text);
    const ThreadId t = tids.at(op.tag);
    if (op.verb == "read") {
      sink.read(t, op.arg, text);
    } else if (op.verb == "write") {
      sink.write(t, op.arg, text);
    } else if (op.verb == "lock") {
      sink.acquire(t, op.arg);
    } else if (op.verb == "unlock") {
      sink.release(t, op.arg);
    } else if (op.verb == "send") {
      sink.channel_send(t, op.arg);
    } else if (op.verb == "recv") {
      sink.channel_recv(t, op.arg);
    } else if (op.verb == "barrier") {
      at_barrier.insert(t);
      if (at_barrier.size() == tids.size()) {
        sink.barrier(std::vector<ThreadId>(at_barrier.begin(), at_barrier.end()));
        at_barrier.clear();
      }
    } else {
      throw Error("replay op '" + text + "': unknown verb '" + op.verb + "'");
    }
  }

  ReplayResult result;
  result.races = sink.races();
  result.events = sink.events();
  result.schedule = interleaving;
  return result;
}

std::vector<ReplayResult> replay_all_interleavings(
    const std::vector<std::vector<std::string>>& scripts, std::size_t limit) {
  // Stream schedules straight into the detector instead of
  // materializing the full os::all_interleavings set first — the only
  // retained state is the results the caller asked for. Thread tags
  // make every position-choice path a distinct schedule, so the path
  // count the enumerator caps equals the old distinct count.
  std::vector<ReplayResult> results;
  (void)os::for_each_interleaving(
      tag_threads(scripts), [&](const std::vector<std::string>& schedule) {
        require(results.size() < limit, "interleaving enumeration exceeds the limit");
        results.push_back(replay(schedule));
        return true;
      });
  // The materializing path returned schedules in sorted order; keep
  // that contract so summaries and first-racy-schedule demos are
  // byte-stable across the refactor.
  std::sort(results.begin(), results.end(),
            [](const ReplayResult& a, const ReplayResult& b) {
              return a.schedule < b.schedule;
            });
  return results;
}

ReplayStats summarize(const std::vector<ReplayResult>& results) {
  ReplayStats stats;
  stats.schedules = results.size();
  for (const ReplayResult& r : results) {
    if (!r.race_free()) ++stats.racy;
  }
  stats.distinct = distinct_races(results).size();
  return stats;
}

std::vector<RaceReport> distinct_races(const std::vector<ReplayResult>& results) {
  std::vector<RaceReport> out;
  std::set<std::string> seen;
  for (const ReplayResult& result : results) {
    for (const RaceReport& r : result.races) {
      if (seen.insert(race_pair_key(r.variable, r.first, r.second)).second) {
        out.push_back(r);
      }
    }
  }
  return out;
}

}  // namespace cs31::race
