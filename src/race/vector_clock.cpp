#include "race/vector_clock.hpp"

#include <algorithm>
#include <sstream>

namespace cs31::race {

Clock VectorClock::get(ThreadId t) const {
  return t < clocks_.size() ? clocks_[t] : 0;
}

void VectorClock::set(ThreadId t, Clock c) {
  if (t >= clocks_.size()) clocks_.resize(t + 1, 0);
  clocks_[t] = c;
}

void VectorClock::tick(ThreadId t) { set(t, get(t) + 1); }

void VectorClock::join(const VectorClock& other) {
  if (other.clocks_.size() > clocks_.size()) clocks_.resize(other.clocks_.size(), 0);
  for (std::size_t i = 0; i < other.clocks_.size(); ++i) {
    clocks_[i] = std::max(clocks_[i], other.clocks_[i]);
  }
}

bool VectorClock::leq(const VectorClock& other) const {
  for (std::size_t i = 0; i < clocks_.size(); ++i) {
    if (clocks_[i] > other.get(static_cast<ThreadId>(i))) return false;
  }
  return true;
}

std::string VectorClock::to_string() const {
  std::ostringstream out;
  out << '<';
  for (std::size_t i = 0; i < clocks_.size(); ++i) {
    if (i > 0) out << ", ";
    out << clocks_[i];
  }
  out << '>';
  return out.str();
}

std::string to_string(Epoch e) {
  return std::to_string(e.clock) + '@' + std::to_string(e.tid);
}

VectorClock to_clock(Epoch e) {
  VectorClock vc;
  vc.set(e.tid, e.clock);
  return vc;
}

bool happens_before(const VectorClock& a, const VectorClock& b) {
  return a.leq(b) && a != b;
}

bool concurrent(const VectorClock& a, const VectorClock& b) {
  return !a.leq(b) && !b.leq(a);
}

}  // namespace cs31::race
