// ReferenceDetector — PR 1's full-vector-clock happens-before detector,
// kept verbatim as the executable specification that the compressed
// FastTrack detector (detector.hpp) is differentially fuzzed against.
//
// It is deliberately naive where Detector is clever: variables, locks,
// and channels are keyed by std::string in std::maps, every variable
// carries the full clock of its last write plus a per-thread read
// vector clock and a per-thread map of read sites, and access sites
// store their strings eagerly. That makes it slow and fat — and easy to
// believe. tests/race_diff_test.cpp drives thousands of seeded random
// traces through both detectors and asserts bit-identical verdicts;
// bench_race_overhead quantifies what the compression buys.
//
// The only behavioural change from PR 1 is shared with Detector: race
// reports deduplicate per (variable, site pair) — race_pair_key in
// detector.hpp — instead of per (variable, thread pair), so the two
// detectors' report sets are comparable key-for-key.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "race/detector.hpp"
#include "race/vector_clock.hpp"

namespace cs31::race {

class ReferenceDetector final : public EventSink {
 public:
  ReferenceDetector();

  ReferenceDetector(const ReferenceDetector&) = delete;
  ReferenceDetector& operator=(const ReferenceDetector&) = delete;

  [[nodiscard]] ThreadId register_thread() override;
  [[nodiscard]] ThreadId fork(ThreadId parent) override;
  void join(ThreadId parent, ThreadId child) override;
  void acquire(ThreadId t, const std::string& lock) override;
  void release(ThreadId t, const std::string& lock) override;
  void barrier(const std::vector<ThreadId>& waiters) override;
  void channel_send(ThreadId t, const std::string& channel) override;
  void channel_recv(ThreadId t, const std::string& channel) override;
  void read(ThreadId t, const std::string& var, const std::string& where = "") override;
  void write(ThreadId t, const std::string& var, const std::string& where = "") override;

  [[nodiscard]] const std::vector<RaceReport>& races() const override;
  [[nodiscard]] bool race_free() const override;
  [[nodiscard]] std::uint64_t race_count() const override;
  [[nodiscard]] std::uint64_t events() const override;
  [[nodiscard]] std::size_t threads() const override;
  [[nodiscard]] std::size_t shadow_bytes() const override;
  [[nodiscard]] std::string summary() const override;

  /// Current clock of a thread (teaching/diagnostic).
  [[nodiscard]] VectorClock clock_of(ThreadId t) const;

 private:
  struct ThreadState {
    VectorClock vc;
    std::vector<std::string> held;  // lock names, acquisition order
  };

  /// Shadow state of one traced variable: the last write as an epoch
  /// PLUS its full clock, and a full per-thread read clock with full
  /// access sites — the uncompressed representation.
  struct VarState {
    bool has_write = false;
    Epoch write_epoch;            // last write as c@t
    AccessSite write_site;
    VectorClock write_vc;         // full clock of the last write
    VectorClock read_vc;          // per-thread clock of the last read
    std::map<ThreadId, AccessSite> read_sites;  // last read per thread
  };

  ThreadState& state(ThreadId t);
  void check_and_record(ThreadId t, const std::string& var, AccessKind kind,
                        const std::string& where);
  void report(const std::string& var, const AccessSite& first, const AccessSite& second,
              const std::string& why);
  AccessSite make_site(ThreadId t, AccessKind kind, const std::string& where) const;

  mutable std::mutex mutex_;
  std::vector<ThreadState> threads_;
  std::map<std::string, VectorClock> locks_;
  std::map<std::string, VectorClock> channels_;
  std::map<std::string, VarState> vars_;
  std::vector<RaceReport> races_;
  std::set<std::string> reported_;  // race_pair_key dedup
  std::uint64_t race_count_ = 0;
  std::uint64_t events_ = 0;
};

}  // namespace cs31::race
