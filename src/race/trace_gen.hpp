// Seeded synthetic-trace generator for differential testing of race
// detectors. A Trace is a structurally valid linearized event stream —
// fork/join trees, nested lock sections, barrier cycles over live
// subsets, channel sends/recvs, and reads/writes over a small variable
// pool — generated deterministically from a 64-bit seed (its own
// splitmix64 PRNG; no std::uniform_int_distribution, whose output is
// implementation-defined). "Structurally valid" means a trace never
// trips the detectors' own error checks: releases name held locks,
// joins name live non-root threads, barriers wait on live threads.
//
// The same Trace replayed into any two EventSinks feeds them an
// identical event sequence, so their verdicts — race count, racy
// (variable, site pair) set, full report text — must agree if the
// implementations are equivalent. Every divergence is a one-line repro:
// re-run with the printed seed (and config) to regenerate the exact
// trace; Trace::to_string() prints it op by op.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "race/detector.hpp"

namespace cs31::race {

/// Knobs for the generator. The defaults make small, sync-dense traces
/// that mix racy and race-free verdicts roughly evenly.
struct TraceGenConfig {
  std::size_t ops = 64;          ///< target op count (trace may run a little over)
  std::size_t max_threads = 6;   ///< total threads ever forked (incl. root)
  std::size_t vars = 4;          ///< shared variable pool "v0".."v{n-1}"
  std::size_t locks = 2;         ///< lock pool "m0".."m{n-1}"
  std::size_t channels = 2;      ///< channel pool "q0".."q{n-1}"
  std::size_t max_locks_held = 3;  ///< nesting bound per thread
};

struct TraceOp {
  enum class Kind : std::uint8_t {
    Fork,     ///< actor forks thread `object`
    Join,     ///< actor joins thread `object` (which then goes dead)
    Acquire,  ///< actor locks "m<object>"
    Release,  ///< actor unlocks "m<object>"
    Read,     ///< actor reads "v<object>"
    Write,    ///< actor writes "v<object>"
    Send,     ///< actor sends on "q<object>"
    Recv,     ///< actor receives on "q<object>"
    Barrier,  ///< `waiters` complete a barrier cycle together
  };
  Kind kind = Kind::Read;
  std::uint32_t actor = 0;   ///< dense generator thread index; 0 = root
  std::uint32_t object = 0;  ///< var/lock/channel index, or the child thread
  std::vector<std::uint32_t> waiters;  ///< Barrier only

  [[nodiscard]] std::string to_string() const;  ///< e.g. "t1 write v3"
};

struct Trace {
  std::uint64_t seed = 0;
  TraceGenConfig config;
  std::size_t threads = 1;  ///< total threads the ops mention (incl. root)
  std::vector<TraceOp> ops;

  /// One op per line, preceded by a "# seed=<n>" header — paste into a
  /// bug report, or regenerate from the seed alone.
  [[nodiscard]] std::string to_string() const;
};

/// Deterministically generate a structurally valid trace from `seed`.
[[nodiscard]] Trace generate_trace(std::uint64_t seed, TraceGenConfig config = {});

/// Replay the trace into a detector. Thread indices map to sink ids via
/// the sink's own fork() returns; every read/write is labelled with its
/// op index ("#<k>"), so reports from two sinks fed the same trace are
/// comparable site-for-site.
void run_trace(const Trace& trace, EventSink& sink);

}  // namespace cs31::race
