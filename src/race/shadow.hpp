// Instrumentation ("shadow") layer between real running code and the
// happens-before detector: a TraceContext that maps OS threads to dense
// detector thread ids and mirrors thread create/join, plus traced
// drop-ins — TracedMutex for std::mutex and TracedVar<T> for a shared
// variable. The parallel runtime plugs in here: ThreadTeam has a traced
// constructor (fork/join edges), Barrier::attach_tracer turns each
// barrier cycle into a happens-before edge among its waiters, and
// BoundedBuffer::attach_tracer reports put/get as channel send/recv.
//
// TracedVar guards its value with an internal mutex that is *not*
// reported to the detector, so a deliberately "racy" demo is observable
// (logical race reported) without committing real undefined behaviour —
// the same trick ThreadSanitizer's shadow memory plays.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "race/detector.hpp"

namespace cs31::race {

/// Owns a Detector and the OS-thread <-> ThreadId binding. One
/// TraceContext per experiment; the main (constructing) thread is bound
/// to ThreadId 0.
class TraceContext {
 public:
  TraceContext();

  TraceContext(const TraceContext&) = delete;
  TraceContext& operator=(const TraceContext&) = delete;

  /// The detector id bound to the calling OS thread. Throws cs31::Error
  /// when the thread was never bound (spawned outside the hooks).
  [[nodiscard]] ThreadId self() const;

  /// on_thread_create hook: called by the *parent* before spawning;
  /// returns the child's id (HB edge parent -> child).
  [[nodiscard]] ThreadId on_thread_create();

  /// Bind the calling OS thread to `tid` — the first statement a
  /// spawned thread runs.
  void bind_self(ThreadId tid);

  /// on_thread_join hook: called by the parent after joining `child`
  /// (HB edge child -> parent). Unbinds nothing; ids are never reused.
  void on_thread_join(ThreadId child);

  /// Convenience forwarders that use the calling thread's binding.
  void read(const std::string& var, const std::string& where = "");
  void write(const std::string& var, const std::string& where = "");
  void acquire(const std::string& lock);
  void release(const std::string& lock);
  void send(const std::string& channel);
  void recv(const std::string& channel);

  /// Interned fast path: TracedVar/TracedMutex intern their names once
  /// at construction and fire per-access events by id — no string
  /// hashing on the hot path (the FastTrack compression only pays if
  /// the instrumentation doesn't hand the detector strings per access).
  void read(NameId var, NameId site);
  void write(NameId var, NameId site);
  void acquire(NameId lock);
  void release(NameId lock);

  [[nodiscard]] Detector& detector() { return detector_; }
  [[nodiscard]] const Detector& detector() const { return detector_; }

 private:
  Detector detector_;
  mutable std::mutex mutex_;
  std::map<std::thread::id, ThreadId> bindings_;
};

/// std::mutex drop-in that reports acquire/release to the detector —
/// the happens-before edges a lock actually provides. Works with
/// std::scoped_lock / std::unique_lock via lock()/unlock()/try_lock().
class TracedMutex {
 public:
  TracedMutex(std::string name, TraceContext& ctx)
      : name_(std::move(name)), ctx_(ctx), id_(ctx.detector().intern_lock(name_)) {}

  TracedMutex(const TracedMutex&) = delete;
  TracedMutex& operator=(const TracedMutex&) = delete;

  void lock() {
    mutex_.lock();
    ctx_.acquire(id_);
  }
  void unlock() {
    ctx_.release(id_);
    mutex_.unlock();
  }
  bool try_lock() {
    if (!mutex_.try_lock()) return false;
    ctx_.acquire(id_);
    return true;
  }

  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  std::string name_;
  TraceContext& ctx_;
  NameId id_;
  std::mutex mutex_;
};

/// A shared variable whose every load/store is reported to the
/// detector. The unsynchronized counter demo is
///   const auto v = counter.load("read counter");
///   counter.store(v + 1, "write counter");
/// — a logical read-modify-write race the detector flags
/// deterministically, whatever the scheduler did.
template <typename T>
class TracedVar {
 public:
  TracedVar(std::string name, TraceContext& ctx, T initial = T{})
      : name_(std::move(name)),
        ctx_(ctx),
        value_(std::move(initial)),
        var_(ctx.detector().intern_var(name_)),
        atomic_lock_(ctx.detector().intern_lock("<atomic:" + name_ + ">")),
        load_site_(ctx.detector().intern_site("load " + name_)),
        store_site_(ctx.detector().intern_site("store " + name_)),
        rmw_site_(ctx.detector().intern_site("fetch_add " + name_)) {}

  TracedVar(const TracedVar&) = delete;
  TracedVar& operator=(const TracedVar&) = delete;

  [[nodiscard]] T load(const std::string& where = "") {
    if (where.empty()) {
      ctx_.read(var_, load_site_);  // interned fast path
    } else {
      ctx_.read(name_, where);
    }
    std::scoped_lock lock(guard_);
    return value_;
  }

  void store(T v, const std::string& where = "") {
    if (where.empty()) {
      ctx_.write(var_, store_site_);  // interned fast path
    } else {
      ctx_.write(name_, where);
    }
    std::scoped_lock lock(guard_);
    value_ = std::move(v);
  }

  /// Atomic fetch-add analogue: one indivisible read-modify-write that
  /// creates the same happens-before edges a std::atomic RMW would.
  /// The guard must be held across the *detector events* too, so the
  /// acquire/read/write/release of two RMWs can never interleave in
  /// the event stream — without that, a second thread's acquire could
  /// slip in before the first one's release and the detector would see
  /// (and correctly report!) an unordered conflict that the real
  /// operation never allows.
  T fetch_add(T delta, const std::string& where = "") {
    std::scoped_lock lock(guard_);
    ctx_.acquire(atomic_lock_);
    if (where.empty()) {
      ctx_.read(var_, rmw_site_);
      ctx_.write(var_, rmw_site_);
    } else {
      ctx_.read(name_, where);
      ctx_.write(name_, where);
    }
    ctx_.release(atomic_lock_);
    const T old = value_;
    value_ = value_ + delta;
    return old;
  }

  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  std::string name_;
  TraceContext& ctx_;
  T value_;
  NameId var_;
  NameId atomic_lock_;
  NameId load_site_;
  NameId store_site_;
  NameId rmw_site_;
  std::mutex guard_;  // protects the value only; invisible to the detector
};

}  // namespace cs31::race
