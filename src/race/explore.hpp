// Detector-guided DPOR schedule exploration — the pruned, prioritized,
// parallel replacement for exhaustively replaying os::all_interleavings.
//
// The fused homework ("identify the possible outputs" × "find the data
// race") used to replay every interleaving of the per-thread op scripts
// through the happens-before detector, which walks into the multinomial
// wall fast: 2 threads × 10 ops each is already 184756 schedules. But
// most of those schedules are equivalent evidence: swapping two
// adjacent *independent* ops (different threads, no conflicting object)
// cannot change which races the detector reports. `Explorer` replays
// exactly one representative per such Mazurkiewicz equivalence class
// using dynamic partial-order reduction (Flanagan & Godefroid, POPL
// 2005: backtrack sets + sleep sets), so the `distinct_races` verdict
// is provably identical to the exhaustive sweep at a fraction of the
// schedules — the differential tier in tests/race_explore_test.cpp
// asserts exactly that on an exhaustively-enumerable corpus.
//
// Dependence relation (derived from the script grammar in replay.hpp;
// two ops of different threads are dependent iff):
//   - read/write or write/write on the same variable (read/read
//     commutes: the detector keeps reader sites sorted by thread id);
//   - lock/unlock on the same mutex (release publishes the lock clock);
//   - send/recv on the same channel (send mutates the channel clock);
//   - either op is a barrier arrival: the *completing* arrival joins
//     EVERY waiter's clock, so a barrier op is conservatively dependent
//     with every other thread's ops, not just other arrivals.
// Conservative over-approximation is sound: extra dependence only costs
// schedules, never coverage.
//
// Detector guidance: prior RaceReports (or a previous ExploreResult)
// seed a priority over exploration order — backtrack choices whose next
// op labels a reported site pair, or lead toward one, are explored
// first, so a budgeted re-run confirms known races in a handful of
// schedules. New discoveries re-prioritize the remaining frontier
// mid-run (after a fixed settle window; see the determinism contract).
//
// Parallel replay, deterministic output: the DPOR tree walk itself is
// sequential — a subtree's exploration can add backtrack points at ANY
// ancestor, so subtrees are not independent units of tree growth — but
// the walk is the cheap part (position vectors + clock joins). The
// expensive part, replaying each emitted schedule through a fresh
// FastTrack detector, fans out in batches over a shared
// common::BoundedQueue to N workers, and results merge strictly by
// emission index (the PR 4/PR 6 arrival-index pattern). Guidance
// feedback folds in only once a result is merged, and merging is
// clamped to a fixed settle window behind emission, so the hint set at
// every decision point — and therefore every byte of the output — is
// identical across {1,2,4,8} workers, budgeted or not.
//
// Budgeted mode: `max_schedules` / `max_events` replace the exhaustive
// path's hard multinomial throw. When a budget binds, the result says
// so honestly (`complete == false`, and summary() reports schedules
// covered out of the — saturating — total) instead of pretending the
// space was covered.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "race/replay.hpp"

namespace cs31::race {

struct ExploreOptions {
  std::size_t workers = 1;  ///< replay worker threads (the walk stays sequential)

  /// Budgets; 0 = unbounded. Replaces replay_all_interleavings' throw:
  /// the explorer stops emitting when a budget binds and reports
  /// partial coverage instead.
  std::uint64_t max_schedules = 0;
  std::uint64_t max_events = 0;

  /// Prior reports whose (first.where, second.where) site pairs seed
  /// the exploration priority — e.g. yesterday's ExploreResult.races.
  std::vector<RaceReport> hints;

  /// Fold newly discovered races into the priority mid-run (after the
  /// settle window). Off = only the seeded hints steer.
  bool reprioritize_on_discovery = true;

  std::size_t batch = 8;           ///< schedules per worker claim
  std::size_t queue_capacity = 4;  ///< work-queue capacity, in batches

  /// Emissions a replay result may trail the walk before the walk
  /// blocks on it. Fixed (worker-count-independent) so the hint set at
  /// emission k is always exactly f(results 0..k-window-1) — the
  /// determinism contract.
  std::size_t settle_window = 32;

  /// Model real blocking semantics (ReplayOptions::model_blocking) in
  /// the walk: a lock on a held mutex, a recv on an empty channel, and
  /// a thread parked at an incomplete barrier are DISABLED, never
  /// scheduled. The walk then reaches exactly the feasible schedules —
  /// including maximal-but-stuck prefixes, which are emitted for race
  /// coverage and recorded as deadlocks (ExploreResult::deadlocks).
  /// Off (the default) keeps the PR 9 behaviour bit-identical.
  bool model_blocking = false;

  /// Variables whose cross-thread accesses are proven race-free —
  /// thread-local or consistently locked (analyze::seed_explore_options
  /// fills this from a ConcurSummary). Their accesses are treated as
  /// INDEPENDENT, shrinking backtrack sets and the explored tree. Only
  /// sound under blocking semantics (without blocking, two "guarded"
  /// accesses can still interleave inside one critical section), so the
  /// constructor rejects a non-empty list unless model_blocking is set.
  /// Unknown names are ignored.
  std::vector<std::string> independent_vars;

  /// Mutexes that are pure guards: every critical section on them
  /// contains only accesses to variables they consistently protect
  /// (analyze::seed_explore_options proves this per-script). Cross-
  /// thread lock/unlock pairs on such a mutex are treated as
  /// INDEPENDENT — two pure-guard critical sections commute as atomic
  /// blocks (a Lipton-style reduction), so one acquisition order per
  /// pair suffices and the explored tree collapses. Only sound under
  /// blocking semantics, same constructor rule as independent_vars.
  /// Unknown names are ignored.
  std::vector<std::string> independent_mutexes;
};

struct ExploreResult {
  static constexpr std::uint64_t kNoRace = ~std::uint64_t{0};

  /// Distinct races (one per race_pair_key), first-seen in emission
  /// order — byte-identical across worker counts, and set-identical to
  /// distinct_races(replay_all_interleavings(...)) when complete.
  std::vector<RaceReport> races;

  std::uint64_t schedules_replayed = 0;
  std::uint64_t events_replayed = 0;
  std::uint64_t racy_schedules = 0;
  std::uint64_t first_race_at = kNoRace;  ///< emission index of first racy schedule

  std::uint64_t interleavings_total = 0;  ///< multinomial count (saturating)
  bool total_saturated = false;           ///< count hit UINT64_MAX
  bool complete = false;  ///< full reduced tree explored (no budget bound)

  // Walk statistics (deterministic, for the bench/demo narrative).
  std::uint64_t nodes_visited = 0;
  std::uint64_t sleep_pruned = 0;       ///< sleep-blocked leaves (redundant suffixes cut)
  std::uint64_t backtrack_points = 0;   ///< race-analysis additions

  /// Blocking mode only (always empty / 0 otherwise): the distinct
  /// stuck states the walk reached (deduplicated by position vector,
  /// deterministic across worker counts — they are found by the
  /// sequential walk, not the replay pool) and how many emitted
  /// schedules ended stuck rather than complete.
  std::vector<DeadlockState> deadlocks;
  std::uint64_t deadlocked_schedules = 0;

  /// One honest line: "explored 31 of 3432 interleavings (complete): 18
  /// racy, 2 distinct race(s), 434 events" — says "budget hit after N"
  /// and ">1.8e19 (saturated)" when that is the truth.
  [[nodiscard]] std::string summary() const;
};

/// The DPOR explorer over untagged per-thread scripts (same input shape
/// as replay_all_interleavings; tagging happens internally). The
/// constructor parses and validates every op up front — malformed ops,
/// a release without a program-order acquire, or independent_vars
/// without model_blocking (the pruning is unsound when critical
/// sections can overlap) throw here, never from a worker mid-run.
class Explorer {
 public:
  explicit Explorer(std::vector<std::vector<std::string>> scripts,
                    ExploreOptions options = {});

  /// Run one exploration. Deterministic: same scripts + options (modulo
  /// `workers`, `batch`, `queue_capacity`) give byte-identical results.
  [[nodiscard]] ExploreResult run();

  [[nodiscard]] const ExploreOptions& options() const { return options_; }

 private:
  std::vector<std::vector<std::string>> scripts_;
  ExploreOptions options_;
};

/// One-shot convenience: Explorer(scripts, options).run().
[[nodiscard]] ExploreResult explore_races(
    const std::vector<std::vector<std::string>>& scripts, ExploreOptions options = {});

/// Seeded random-script generator for the differential tier and the
/// bench corpus (the trace_gen pattern, script-shaped): structurally
/// valid per-thread scripts — unlocks always follow a program-order
/// lock, equal barrier counts per thread — over small shared/private
/// variable, mutex, and channel pools.
struct ScriptGenConfig {
  std::size_t threads = 3;
  std::size_t ops_per_thread = 4;
  std::size_t shared_vars = 2;   ///< "z0".."z{n-1}", racy surface
  std::size_t private_vars = 1;  ///< "p<t>_0".., per-thread (independent ops)
  std::size_t locks = 1;         ///< "m0"..
  std::size_t channels = 1;      ///< "q0"..
  bool barriers = false;         ///< one barrier arrival per thread

  // Shape injectors for the static deadlock checks and the pruning
  // differential (all default off: the PR 9 corpus stays bit-identical).

  /// Roughly half the threads open with a two-lock nest in a
  /// thread-rotated order ("lock m<t%L>", "lock m<(t+1)%L>") — with
  /// >= 2 locks the classic ABBA lock-order-cycle shapes appear.
  bool lock_cycles = false;

  /// Roughly half the threads append an extra trailing recv, so
  /// send/recv totals go unbalanced and recv-no-send (plus reachable
  /// communication deadlocks) appear in the corpus.
  bool channel_misuse = false;

  /// Lock-disciplined mode: every shared-variable access is wrapped in
  /// "lock m<v%L>" .. "unlock m<v%L>" (one consistent guard per
  /// variable) and standalone lock/unlock ops are not generated — the
  /// corpus the static analyzer proves consistently-guarded, for the
  /// pruned-vs-unpruned exploration differential.
  bool lock_discipline = false;
};

[[nodiscard]] std::vector<std::vector<std::string>> generate_script(
    std::uint64_t seed, ScriptGenConfig config = {});

}  // namespace cs31::race
