#include "race/detector.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"

namespace cs31::race {

std::string to_string(AccessKind kind) {
  return kind == AccessKind::Read ? "read" : "write";
}

std::string AccessSite::to_string() const {
  std::ostringstream out;
  out << "thread " << thread << ' ' << race::to_string(kind);
  if (!where.empty()) out << " at \"" << where << '"';
  out << " (event " << event << ", holding {";
  for (std::size_t i = 0; i < locks_held.size(); ++i) {
    if (i > 0) out << ", ";
    out << locks_held[i];
  }
  out << "})";
  return out.str();
}

std::string RaceReport::to_string() const {
  std::ostringstream out;
  out << "DATA RACE on `" << variable << "`\n"
      << "  first:  " << first.to_string() << '\n'
      << "  second: " << second.to_string() << '\n'
      << "  why:    " << explanation;
  return out.str();
}

Detector::Detector() {
  // Thread 0 is the main/root thread.
  ThreadState main;
  main.vc.set(0, 1);
  threads_.push_back(std::move(main));
}

ThreadId Detector::register_thread() {
  std::scoped_lock lock(mutex_);
  const auto tid = static_cast<ThreadId>(threads_.size());
  ThreadState ts;
  ts.vc.set(tid, 1);
  threads_.push_back(std::move(ts));
  return tid;
}

ThreadId Detector::fork(ThreadId parent) {
  std::scoped_lock lock(mutex_);
  ++events_;
  ThreadState& p = state(parent);
  const auto child = static_cast<ThreadId>(threads_.size());
  ThreadState ts;
  ts.vc = p.vc;  // child observes everything the parent did before the fork
  ts.vc.set(child, 1);
  threads_.push_back(std::move(ts));
  threads_[parent].vc.tick(parent);  // parent enters a new epoch
  return child;
}

void Detector::join(ThreadId parent, ThreadId child) {
  std::scoped_lock lock(mutex_);
  ++events_;
  ThreadState& c = state(child);
  state(parent).vc.join(c.vc);  // parent observes the child's whole life
  c.vc.tick(child);
}

void Detector::acquire(ThreadId t, const std::string& lock_name) {
  std::scoped_lock lock(mutex_);
  ++events_;
  ThreadState& ts = state(t);
  ts.vc.join(locks_[lock_name]);  // observe the previous critical section
  ts.held.push_back(lock_name);
}

void Detector::release(ThreadId t, const std::string& lock_name) {
  std::scoped_lock lock(mutex_);
  ++events_;
  ThreadState& ts = state(t);
  locks_[lock_name] = ts.vc;  // publish this critical section to the lock
  ts.vc.tick(t);
  const auto it = std::find(ts.held.rbegin(), ts.held.rend(), lock_name);
  require(it != ts.held.rend(), "release of lock '" + lock_name + "' not held by thread " +
                                    std::to_string(t));
  ts.held.erase(std::next(it).base());
}

void Detector::barrier(const std::vector<ThreadId>& waiters) {
  std::scoped_lock lock(mutex_);
  require(!waiters.empty(), "barrier needs at least one waiter");
  ++events_;
  VectorClock all;
  for (const ThreadId w : waiters) all.join(state(w).vc);
  for (const ThreadId w : waiters) {
    ThreadState& ts = state(w);
    ts.vc = all;     // everyone observes everyone's pre-barrier work
    ts.vc.tick(w);   // and starts a fresh epoch on the far side
  }
}

void Detector::channel_send(ThreadId t, const std::string& channel) {
  std::scoped_lock lock(mutex_);
  ++events_;
  ThreadState& ts = state(t);
  channels_[channel].join(ts.vc);
  ts.vc.tick(t);
}

void Detector::channel_recv(ThreadId t, const std::string& channel) {
  std::scoped_lock lock(mutex_);
  ++events_;
  state(t).vc.join(channels_[channel]);
}

void Detector::read(ThreadId t, const std::string& var, const std::string& where) {
  std::scoped_lock lock(mutex_);
  check_and_record(t, var, AccessKind::Read, where);
}

void Detector::write(ThreadId t, const std::string& var, const std::string& where) {
  std::scoped_lock lock(mutex_);
  check_and_record(t, var, AccessKind::Write, where);
}

void Detector::check_and_record(ThreadId t, const std::string& var, AccessKind kind,
                                const std::string& where) {
  ++events_;
  ThreadState& ts = state(t);
  VarState& vs = vars_[var];
  const AccessSite site = make_site(t, kind, where);

  // Write-check (both kinds): is the last write ordered before us?
  if (vs.has_write && vs.write_epoch.tid != t && !ts.vc.contains(vs.write_epoch)) {
    report(var, vs.write_site, site,
           kind == AccessKind::Read ? "write-read conflict" : "write-write conflict");
  }

  if (kind == AccessKind::Read) {
    vs.read_vc.set(t, ts.vc.get(t));
    vs.read_sites[t] = site;
    return;
  }

  // Read-check (writes only): every read since the last write must be
  // ordered before this write.
  for (const auto& [reader, read_site] : vs.read_sites) {
    if (reader != t && vs.read_vc.get(reader) > ts.vc.get(reader)) {
      report(var, read_site, site, "read-write conflict");
    }
  }

  vs.has_write = true;
  vs.write_epoch = Epoch{t, ts.vc.get(t)};
  vs.write_site = site;
  vs.write_vc = ts.vc;
  vs.read_vc = VectorClock{};  // reads before an ordered write are subsumed
  vs.read_sites.clear();
}

AccessSite Detector::make_site(ThreadId t, AccessKind kind, const std::string& where) const {
  AccessSite site;
  site.thread = t;
  site.kind = kind;
  site.where = where;
  site.event = events_;
  site.locks_held = threads_[t].held;
  return site;
}

void Detector::report(const std::string& var, const AccessSite& first,
                      const AccessSite& second, const std::string& why) {
  ++race_count_;
  const ThreadId lo = std::min(first.thread, second.thread);
  const ThreadId hi = std::max(first.thread, second.thread);
  const std::string key = var + '|' + std::to_string(lo) + '|' + std::to_string(hi);
  if (reported_pairs_[key]++ > 0) return;  // one report per (var, thread pair)

  // Lockset view for the explanation: a true race's held-lock sets are
  // disjoint (had they shared a lock, release/acquire would have made a
  // happens-before edge and we would not be here).
  std::vector<std::string> common;
  for (const std::string& l : first.locks_held) {
    if (std::find(second.locks_held.begin(), second.locks_held.end(), l) !=
        second.locks_held.end()) {
      common.push_back(l);
    }
  }
  std::ostringstream why_out;
  why_out << why << ": no fork/join, lock, barrier, or channel edge orders thread "
          << first.thread << "'s " << race::to_string(first.kind) << " before thread "
          << second.thread << "'s " << race::to_string(second.kind);
  if (common.empty()) {
    why_out << "; the two sides hold no lock in common";
  } else {
    // Possible when a shared lock was released before the conflicting
    // epoch was published — still worth surfacing for discussion.
    why_out << "; note both sides hold {";
    for (std::size_t i = 0; i < common.size(); ++i) {
      if (i > 0) why_out << ", ";
      why_out << common[i];
    }
    why_out << '}';
  }

  RaceReport r;
  r.variable = var;
  r.first = first;
  r.second = second;
  r.explanation = why_out.str();
  races_.push_back(std::move(r));
}

Detector::ThreadState& Detector::state(ThreadId t) {
  require(t < threads_.size(), "unknown thread id " + std::to_string(t));
  return threads_[t];
}

const std::vector<RaceReport>& Detector::races() const { return races_; }

bool Detector::race_free() const {
  std::scoped_lock lock(mutex_);
  return races_.empty();
}

std::uint64_t Detector::race_count() const {
  std::scoped_lock lock(mutex_);
  return race_count_;
}

std::uint64_t Detector::events() const {
  std::scoped_lock lock(mutex_);
  return events_;
}

std::size_t Detector::threads() const {
  std::scoped_lock lock(mutex_);
  return threads_.size();
}

VectorClock Detector::clock_of(ThreadId t) const {
  std::scoped_lock lock(mutex_);
  require(t < threads_.size(), "unknown thread id " + std::to_string(t));
  return threads_[t].vc;
}

std::string Detector::summary() const {
  std::scoped_lock lock(mutex_);
  std::ostringstream out;
  if (races_.empty()) {
    out << "race-free: no data races over " << events_ << " events, "
        << threads_.size() << " threads";
    return out.str();
  }
  out << races_.size() << " distinct race(s), " << race_count_ << " racy access(es), over "
      << events_ << " events:\n";
  for (const RaceReport& r : races_) out << r.to_string() << '\n';
  return out.str();
}

}  // namespace cs31::race
